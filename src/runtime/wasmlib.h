// A small Wasm-side "libc" generated with the builder DSL: bump allocator,
// memcpy/memset, decimal printing, and string output through the bsx write
// syscall. Workload generators add this library to their module and call the
// returned function indices.
#ifndef SRC_RUNTIME_WASMLIB_H_
#define SRC_RUNTIME_WASMLIB_H_

#include <cstdint>

#include "src/builder/builder.h"
#include "src/runtime/runtime.h"

namespace nsf {

// Scratch region used by the printing helpers (64 bytes).
inline constexpr uint32_t kWasmScratchAddr = 64;

struct WasmLib {
  SyscallImports sys;
  uint32_t heap_ptr_global = 0;  // bump pointer
  uint32_t memset = 0;       // (dst, val, len) -> ()
  uint32_t memcpy = 0;       // (dst, src, len) -> ()
  uint32_t strlen = 0;       // (p) -> len
  uint32_t malloc = 0;       // (n) -> ptr (8-aligned; grows memory on demand)
  uint32_t print_u32 = 0;    // (fd, v) -> ()
  uint32_t print_i32 = 0;    // (fd, v) -> ()
  uint32_t print_f64 = 0;    // (fd, v, decimals) -> () fixed-point decimal
  uint32_t write_cstr = 0;   // (fd, ptr) -> ()
  uint32_t newline = 0;      // (fd) -> ()
};

// Declares syscall imports (must be called before any defined function) and
// adds the library functions. `heap_start` is where the bump allocator
// begins (data segments must end below it).
WasmLib AddWasmLib(ModuleBuilder* mb, uint32_t heap_start);

}  // namespace nsf

#endif  // SRC_RUNTIME_WASMLIB_H_
