#include "src/runtime/runtime.h"

#include <cstring>

#include "src/builder/builder.h"

namespace nsf {

bool InstanceMemPort::Read(uint32_t addr, void* out, uint32_t size) {
  auto& mem = instance_->memory();
  if (uint64_t{addr} + size > mem.size()) {
    return false;
  }
  std::memcpy(out, mem.data() + addr, size);
  return true;
}

bool InstanceMemPort::Write(uint32_t addr, const void* data, uint32_t size) {
  auto& mem = instance_->memory();
  if (uint64_t{addr} + size > mem.size()) {
    return false;
  }
  std::memcpy(mem.data() + addr, data, size);
  return true;
}

SyscallImports DeclareSyscallImports(ModuleBuilder* mb) {
  SyscallImports s;
  const auto i32 = ValType::kI32;
  s.open = mb->AddFuncImport("bsx", "open", {i32, i32}, {i32});
  s.close = mb->AddFuncImport("bsx", "close", {i32}, {i32});
  s.read = mb->AddFuncImport("bsx", "read", {i32, i32, i32}, {i32});
  s.write = mb->AddFuncImport("bsx", "write", {i32, i32, i32}, {i32});
  s.lseek = mb->AddFuncImport("bsx", "lseek", {i32, i32, i32}, {i32});
  s.fsize = mb->AddFuncImport("bsx", "fsize", {i32}, {i32});
  s.unlink = mb->AddFuncImport("bsx", "unlink", {i32}, {i32});
  s.mkdir = mb->AddFuncImport("bsx", "mkdir", {i32}, {i32});
  s.exit = mb->AddFuncImport("bsx", "exit", {i32}, {});
  s.time_ms = mb->AddFuncImport("bsx", "time_ms", {}, {i32});
  s.arg_count = mb->AddFuncImport("bsx", "arg_count", {}, {i32});
  s.arg_copy = mb->AddFuncImport("bsx", "arg_copy", {i32, i32}, {i32});
  return s;
}

namespace {

// Dispatches one bsx call by import name. Arguments arrive as raw u64 values;
// returns the value for rax (or the interp result).
uint64_t Dispatch(Process* p, const std::string& name, uint64_t a0, uint64_t a1, uint64_t a2,
                  uint64_t elapsed_ms) {
  auto i32 = [](uint64_t v) { return static_cast<uint32_t>(v); };
  auto ret = [](int64_t v) { return static_cast<uint64_t>(static_cast<uint32_t>(v)); };
  if (name == "open") {
    return ret(p->Open(p->ReadCString(i32(a0)), static_cast<int>(i32(a1))));
  }
  if (name == "close") {
    return ret(p->Close(static_cast<int>(i32(a0))));
  }
  if (name == "read") {
    return ret(p->Read(static_cast<int>(i32(a0)), i32(a1), i32(a2)));
  }
  if (name == "write") {
    return ret(p->Write(static_cast<int>(i32(a0)), i32(a1), i32(a2)));
  }
  if (name == "lseek") {
    return ret(p->Seek(static_cast<int>(i32(a0)), static_cast<int32_t>(i32(a1)),
                       static_cast<int>(i32(a2))));
  }
  if (name == "fsize") {
    Stat st;
    int32_t r = p->Fstat(static_cast<int>(i32(a0)), &st);
    return ret(r < 0 ? r : static_cast<int64_t>(st.size));
  }
  if (name == "unlink") {
    return ret(p->Unlink(p->ReadCString(i32(a0))));
  }
  if (name == "mkdir") {
    return ret(p->Mkdir(p->ReadCString(i32(a0))));
  }
  if (name == "exit") {
    p->exited = true;
    p->exit_code = static_cast<int>(i32(a0));
    return 0;
  }
  if (name == "time_ms") {
    return ret(static_cast<int64_t>(elapsed_ms));
  }
  if (name == "arg_count") {
    return ret(static_cast<int64_t>(p->argv().size()));
  }
  if (name == "arg_copy") {
    uint32_t idx = i32(a0);
    if (idx >= p->argv().size()) {
      return ret(-1);
    }
    const std::string& arg = p->argv()[idx];
    if (!p->mem()->Write(i32(a1), arg.data(), static_cast<uint32_t>(arg.size() + 1))) {
      return ret(-1);
    }
    return ret(static_cast<int64_t>(arg.size()));
  }
  return ret(-1);
}

}  // namespace

void BindSyscalls(SimMachine* machine, const CompileResult& /*compiled*/,
                  const Module& module, Process* process) {
  uint32_t import_index = 0;
  for (const Import& imp : module.imports) {
    if (imp.kind != ExternalKind::kFunc) {
      continue;
    }
    std::string name = imp.name;
    SimMachine* m = machine;
    Process* p = process;
    machine->RegisterHost(import_index, [name, m, p](SimMachine& mach) {
      uint64_t ms =
          static_cast<uint64_t>(mach.SecondsFromCycles(mach.counters().cycles()) * 1000.0);
      uint64_t r = Dispatch(p, name, mach.gpr(Gpr::kRdi), mach.gpr(Gpr::kRsi),
                            mach.gpr(Gpr::kRdx), ms);
      mach.set_gpr(Gpr::kRax, r);
      (void)m;
    });
    import_index++;
  }
}

std::unique_ptr<HostModule> MakeInterpSyscalls(Process* process) {
  auto host = std::make_unique<HostModule>();
  static const char* kNames[] = {"open",   "close", "read", "write",   "lseek",     "fsize",
                                 "unlink", "mkdir", "exit", "time_ms", "arg_count", "arg_copy"};
  for (const char* n : kNames) {
    std::string name = n;
    host->Register("bsx", name,
                   [name, process](Instance& /*inst*/, const std::vector<TypedValue>& args) {
                     auto get = [&args](size_t i) -> uint64_t {
                       return i < args.size() ? args[i].value.i32 : 0;
                     };
                     uint64_t r = Dispatch(process, name, get(0), get(1), get(2),
                                           /*elapsed_ms=*/0);
                     ExecResult out;
                     out.ok = true;
                     if (name != "exit") {
                       out.values.push_back(TypedValue::I32(static_cast<uint32_t>(r)));
                     }
                     return out;
                   });
  }
  return host;
}

}  // namespace nsf
