// Emscripten-like userspace runtime: binds a compiled (or interpreted) Wasm
// program's "bsx" imports to a Browsix Process, and stages argv.
//
// Import ABI (module "bsx"):
//   open(path_ptr, flags) -> fd          read(fd, buf, len)   -> n
//   close(fd) -> 0/-errno                write(fd, buf, len)  -> n
//   lseek(fd, offset, whence) -> pos     fsize(fd)            -> size
//   unlink(path_ptr) -> 0/-errno         mkdir(path_ptr)      -> 0/-errno
//   exit(code)                           time_ms()            -> i32
//   arg_count() -> argc                  arg_copy(i, buf)     -> len
// All pointers are Wasm heap addresses; strings are NUL-terminated.
#ifndef SRC_RUNTIME_RUNTIME_H_
#define SRC_RUNTIME_RUNTIME_H_

#include <memory>
#include <string>
#include <vector>

#include "src/codegen/codegen.h"
#include "src/interp/interp.h"
#include "src/kernel/kernel.h"
#include "src/machine/machine.h"

namespace nsf {

// MemPort adapter over the simulated machine.
class MachineMemPort : public MemPort {
 public:
  explicit MachineMemPort(SimMachine* machine) : machine_(machine) {}
  bool Read(uint32_t addr, void* out, uint32_t size) override {
    return machine_->HeapRead(addr, out, size);
  }
  bool Write(uint32_t addr, const void* data, uint32_t size) override {
    return machine_->HeapWrite(addr, data, size);
  }
  void ChargeCycles(uint64_t cycles) override { machine_->ChargeHostCycles(cycles); }

 private:
  SimMachine* machine_;
};

// MemPort adapter over the reference interpreter.
class InstanceMemPort : public MemPort {
 public:
  explicit InstanceMemPort(Instance* instance) : instance_(instance) {}
  bool Read(uint32_t addr, void* out, uint32_t size) override;
  bool Write(uint32_t addr, const void* data, uint32_t size) override;

 private:
  Instance* instance_;
};

// Declares the bsx imports on a ModuleBuilder; returns their function indices
// in a struct the workload generators use.
struct SyscallImports {
  uint32_t open = 0;
  uint32_t close = 0;
  uint32_t read = 0;
  uint32_t write = 0;
  uint32_t lseek = 0;
  uint32_t fsize = 0;
  uint32_t unlink = 0;
  uint32_t mkdir = 0;
  uint32_t exit = 0;
  uint32_t time_ms = 0;
  uint32_t arg_count = 0;
  uint32_t arg_copy = 0;
};

class ModuleBuilder;
SyscallImports DeclareSyscallImports(ModuleBuilder* mb);

// Binds the module's function imports (which must be the bsx set, in
// DeclareSyscallImports order) to `process` via machine host hooks.
// `import_hooks` comes from CompileResult.
void BindSyscalls(SimMachine* machine, const CompileResult& compiled, const Module& module,
                  Process* process);

// Equivalent binding for the reference interpreter.
std::unique_ptr<HostModule> MakeInterpSyscalls(Process* process);

}  // namespace nsf

#endif  // SRC_RUNTIME_RUNTIME_H_
