#include "src/runtime/wasmlib.h"

namespace nsf {

WasmLib AddWasmLib(ModuleBuilder* mb, uint32_t heap_start) {
  WasmLib lib;
  lib.sys = DeclareSyscallImports(mb);
  lib.heap_ptr_global =
      mb->AddGlobal(ValType::kI32, true, Instr::ConstI32(static_cast<int32_t>(heap_start)));
  const auto i32 = ValType::kI32;
  const auto f64 = ValType::kF64;

  // memset(dst, val, len)
  {
    auto& f = mb->AddInternalFunction("lib_memset", {i32, i32, i32}, {});
    uint32_t i = f.AddLocal(i32);
    f.ForI32Dyn(i, 0, 2, 1, [&] {
      f.LocalGet(0).LocalGet(i).I32Add();
      f.LocalGet(1);
      f.I32Store8(0);
    });
    lib.memset = f.index();
  }
  // memcpy(dst, src, len) — byte copy, forward.
  {
    auto& f = mb->AddInternalFunction("lib_memcpy", {i32, i32, i32}, {});
    uint32_t i = f.AddLocal(i32);
    f.ForI32Dyn(i, 0, 2, 1, [&] {
      f.LocalGet(0).LocalGet(i).I32Add();
      f.LocalGet(1).LocalGet(i).I32Add().I32Load8U(0);
      f.I32Store8(0);
    });
    lib.memcpy = f.index();
  }
  // strlen(p)
  {
    auto& f = mb->AddInternalFunction("lib_strlen", {i32}, {i32});
    uint32_t n = f.AddLocal(i32);
    f.While([&] { f.LocalGet(0).LocalGet(n).I32Add().I32Load8U(0); },
            [&] { f.LocalGet(n).I32Const(1).I32Add().LocalSet(n); });
    f.LocalGet(n);
    lib.strlen = f.index();
  }
  // malloc(n) -> 8-aligned pointer; grows memory when needed.
  {
    auto& f = mb->AddInternalFunction("lib_malloc", {i32}, {i32});
    uint32_t old = f.AddLocal(i32);
    uint32_t endp = f.AddLocal(i32);
    // n = (n + 7) & ~7
    f.LocalGet(0).I32Const(7).I32Add().I32Const(~7).I32And().LocalSet(0);
    f.GlobalGet(lib.heap_ptr_global).LocalSet(old);
    f.LocalGet(old).LocalGet(0).I32Add().LocalSet(endp);
    // if (endp > memory.size << 16) grow((endp - size<<16 + 65535) >> 16)
    f.LocalGet(endp);
    f.Op(Opcode::kMemorySize).I32Const(16).I32Shl();
    f.Op(Opcode::kI32GtU);
    f.If([&] {
      f.LocalGet(endp);
      f.Op(Opcode::kMemorySize).I32Const(16).I32Shl();
      f.I32Sub().I32Const(65535).I32Add().I32Const(16).I32ShrU();
      f.Op(Opcode::kMemoryGrow).Drop();
    });
    f.GlobalGet(lib.heap_ptr_global).LocalSet(old);
    f.LocalGet(endp).GlobalSet(lib.heap_ptr_global);
    lib.malloc = f.index();
    // Note: `old` reloaded after potential growth for clarity; the pointer
    // value is unchanged by growth.
    f.LocalGet(old);
  }
  // print_u32(fd, v): decimal digits, no sign.
  {
    auto& f = mb->AddInternalFunction("lib_print_u32", {i32, i32}, {});
    uint32_t v = 1;  // param
    uint32_t pos = f.AddLocal(i32);
    // pos starts at scratch+32 and moves left.
    f.I32Const(static_cast<int32_t>(kWasmScratchAddr + 32)).LocalSet(pos);
    // do { *--pos = '0' + v % 10; v /= 10; } while (v);
    f.Block([&] {
      f.LoopBlock([&] {
        f.LocalGet(pos).I32Const(1).I32Sub().LocalSet(pos);
        f.LocalGet(pos);
        f.LocalGet(v).I32Const(10).I32RemU().I32Const('0').I32Add();
        f.I32Store8(0);
        f.LocalGet(v).I32Const(10).I32DivU().LocalSet(v);
        f.LocalGet(v).Emit(Instr::Simple(Opcode::kI32Eqz)).BrIf(1);
        f.Br(0);
      });
    });
    // write(fd, pos, scratch+32 - pos)
    f.LocalGet(0).LocalGet(pos);
    f.I32Const(static_cast<int32_t>(kWasmScratchAddr + 32)).LocalGet(pos).I32Sub();
    f.Call(lib.sys.write).Drop();
    lib.print_u32 = f.index();
  }
  // print_i32(fd, v)
  {
    auto& f = mb->AddInternalFunction("lib_print_i32", {i32, i32}, {});
    f.LocalGet(1).I32Const(0).I32LtS();
    f.If([&] {
      // write '-'
      f.I32Const(static_cast<int32_t>(kWasmScratchAddr + 40)).I32Const('-').I32Store8(0);
      f.LocalGet(0).I32Const(static_cast<int32_t>(kWasmScratchAddr + 40)).I32Const(1);
      f.Call(lib.sys.write).Drop();
      f.I32Const(0).LocalGet(1).I32Sub().LocalSet(1);
    });
    f.LocalGet(0).LocalGet(1).Call(lib.print_u32);
    lib.print_i32 = f.index();
  }
  // print_f64(fd, v, decimals): fixed-point, rounded on the last digit.
  // NaN prints "nan", |v| >= 1e9 prints "ovf" (keeps the i32 paths safe).
  {
    auto& f = mb->AddInternalFunction("lib_print_f64", {i32, f64, i32}, {});
    uint32_t ip = f.AddLocal(i32);
    uint32_t pow = f.AddLocal(i32);
    uint32_t k = f.AddLocal(i32);
    uint32_t frac = f.AddLocal(i32);
    // NaN guard: v != v.
    f.LocalGet(1).LocalGet(1).Op(Opcode::kF64Ne);
    f.If([&] {
      f.I32Const(static_cast<int32_t>(kWasmScratchAddr + 44)).I32Const('n').I32Store8(0);
      f.I32Const(static_cast<int32_t>(kWasmScratchAddr + 45)).I32Const('a').I32Store8(0);
      f.I32Const(static_cast<int32_t>(kWasmScratchAddr + 46)).I32Const('n').I32Store8(0);
      f.LocalGet(0).I32Const(static_cast<int32_t>(kWasmScratchAddr + 44)).I32Const(3);
      f.Call(lib.sys.write).Drop();
      f.Return();
    });
    // Overflow guard.
    f.LocalGet(1).F64Abs().F64Const(1e9).F64Ge();
    f.If([&] {
      f.I32Const(static_cast<int32_t>(kWasmScratchAddr + 44)).I32Const('o').I32Store8(0);
      f.I32Const(static_cast<int32_t>(kWasmScratchAddr + 45)).I32Const('v').I32Store8(0);
      f.I32Const(static_cast<int32_t>(kWasmScratchAddr + 46)).I32Const('f').I32Store8(0);
      f.LocalGet(0).I32Const(static_cast<int32_t>(kWasmScratchAddr + 44)).I32Const(3);
      f.Call(lib.sys.write).Drop();
      f.Return();
    });
    // Sign.
    f.LocalGet(1).F64Const(0.0).F64Lt();
    f.If([&] {
      f.I32Const(static_cast<int32_t>(kWasmScratchAddr + 40)).I32Const('-').I32Store8(0);
      f.LocalGet(0).I32Const(static_cast<int32_t>(kWasmScratchAddr + 40)).I32Const(1);
      f.Call(lib.sys.write).Drop();
      f.LocalGet(1).F64Neg().LocalSet(1);
    });
    // pow = 10^decimals
    f.I32Const(1).LocalSet(pow);
    f.ForI32Dyn(k, 0, 2, 1, [&] { f.LocalGet(pow).I32Const(10).I32Mul().LocalSet(pow); });
    // ip = trunc(v); frac = round((v - ip) * pow), carrying into ip.
    f.LocalGet(1).Op(Opcode::kF64Floor).I32TruncF64S().LocalSet(ip);
    f.LocalGet(1).LocalGet(1).Op(Opcode::kF64Floor).F64Sub();
    f.LocalGet(pow).F64ConvertI32S().F64Mul();
    f.F64Const(0.5).F64Add().Op(Opcode::kF64Floor).I32TruncF64S().LocalSet(frac);
    f.LocalGet(frac).LocalGet(pow).I32GeS();
    f.If([&] {
      f.LocalGet(ip).I32Const(1).I32Add().LocalSet(ip);
      f.I32Const(0).LocalSet(frac);
    });
    f.LocalGet(0).LocalGet(ip).Call(lib.print_i32);
    // '.'
    f.LocalGet(2).I32Const(0).I32GtS();
    f.If([&] {
      f.I32Const(static_cast<int32_t>(kWasmScratchAddr + 40)).I32Const('.').I32Store8(0);
      f.LocalGet(0).I32Const(static_cast<int32_t>(kWasmScratchAddr + 40)).I32Const(1);
      f.Call(lib.sys.write).Drop();
      // Zero-padded fraction: repeatedly peel the most significant digit.
      f.ForI32Dyn(k, 0, 2, 1, [&] {
        f.LocalGet(pow).I32Const(10).I32DivU().LocalSet(pow);
        f.LocalGet(0);
        f.LocalGet(frac).LocalGet(pow).I32DivU().I32Const(10).I32RemU();
        f.Call(lib.print_u32);
        f.LocalGet(frac).LocalGet(pow).I32RemU().LocalSet(frac);
      });
    });
    lib.print_f64 = f.index();
  }
  // write_cstr(fd, p)
  {
    auto& f = mb->AddInternalFunction("lib_write_cstr", {i32, i32}, {});
    f.LocalGet(0).LocalGet(1);
    f.LocalGet(1).Call(lib.strlen);
    f.Call(lib.sys.write).Drop();
    lib.write_cstr = f.index();
  }
  // newline(fd)
  {
    auto& f = mb->AddInternalFunction("lib_newline", {i32}, {});
    f.I32Const(static_cast<int32_t>(kWasmScratchAddr + 41)).I32Const('\n').I32Store8(0);
    f.LocalGet(0).I32Const(static_cast<int32_t>(kWasmScratchAddr + 41)).I32Const(1);
    f.Call(lib.sys.write).Drop();
    lib.newline = f.index();
  }
  return lib;
}

}  // namespace nsf
