// Fluent construction of Wasm modules. This is the "frontend" all workloads
// in this repository are written against: PolyBench kernels, the SPEC-like
// suite, and tests build modules with ModuleBuilder/FunctionBuilder instead of
// hand-assembling instruction vectors.
//
// The builder emits plain MVP instruction sequences (the same Instr structs
// the decoder produces), so everything downstream — validator, interpreter,
// encoder, codegen — treats built and decoded modules identically.
#ifndef SRC_BUILDER_BUILDER_H_
#define SRC_BUILDER_BUILDER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "src/wasm/module.h"

namespace nsf {

class ModuleBuilder;

// Builds one function body. Methods append instructions; structured-control
// helpers (Block/Loop/If) take lambdas so nesting mirrors source structure.
class FunctionBuilder {
 public:
  FunctionBuilder(ModuleBuilder* module, uint32_t func_index, uint32_t defined_index)
      : module_(module), func_index_(func_index), defined_index_(defined_index) {}

  // Index in the joint (imports-first) function index space — what Call takes.
  uint32_t index() const { return func_index_; }

  // --- Locals ---
  // Declares a new local of type `t`, returning its index (params precede
  // declared locals automatically).
  uint32_t AddLocal(ValType t);

  // --- Raw emission ---
  FunctionBuilder& Emit(Instr instr);
  FunctionBuilder& Op(Opcode op);

  // --- Constants ---
  FunctionBuilder& I32Const(int32_t v);
  FunctionBuilder& I64Const(int64_t v);
  FunctionBuilder& F32Const(float v);
  FunctionBuilder& F64Const(double v);

  // --- Locals/globals ---
  FunctionBuilder& LocalGet(uint32_t idx);
  FunctionBuilder& LocalSet(uint32_t idx);
  FunctionBuilder& LocalTee(uint32_t idx);
  FunctionBuilder& GlobalGet(uint32_t idx);
  FunctionBuilder& GlobalSet(uint32_t idx);

  // --- Memory (offset in bytes; natural alignment) ---
  FunctionBuilder& Load(Opcode op, uint32_t offset = 0);
  FunctionBuilder& Store(Opcode op, uint32_t offset = 0);
  FunctionBuilder& I32Load(uint32_t offset = 0) { return Load(Opcode::kI32Load, offset); }
  FunctionBuilder& I32Store(uint32_t offset = 0) { return Store(Opcode::kI32Store, offset); }
  FunctionBuilder& F64Load(uint32_t offset = 0) { return Load(Opcode::kF64Load, offset); }
  FunctionBuilder& F64Store(uint32_t offset = 0) { return Store(Opcode::kF64Store, offset); }
  FunctionBuilder& I32Load8U(uint32_t offset = 0) { return Load(Opcode::kI32Load8U, offset); }
  FunctionBuilder& I32Store8(uint32_t offset = 0) { return Store(Opcode::kI32Store8, offset); }

  // --- Control flow ---
  FunctionBuilder& Block(std::function<void()> body);
  FunctionBuilder& Block(ValType result, std::function<void()> body);
  FunctionBuilder& LoopBlock(std::function<void()> body);
  FunctionBuilder& If(std::function<void()> then_body);
  FunctionBuilder& IfElse(std::function<void()> then_body, std::function<void()> else_body);
  FunctionBuilder& IfElse(ValType result, std::function<void()> then_body,
                          std::function<void()> else_body);
  FunctionBuilder& Br(uint32_t depth);
  FunctionBuilder& BrIf(uint32_t depth);
  FunctionBuilder& Return();
  FunctionBuilder& Call(uint32_t func_index);
  FunctionBuilder& CallIndirect(uint32_t type_index);
  FunctionBuilder& Unreachable();
  FunctionBuilder& Drop();
  FunctionBuilder& Select();

  // --- High-level loop helpers ---
  // Emits: for (local i = begin; i < end (signed); i += step) { body(); }
  // `i` must be an i32 local. The loop body may use Continue()/BreakLoop()
  // via the depths documented below (body runs at block-depth +2: the
  // enclosing block is depth 1, the loop header depth 0).
  FunctionBuilder& ForI32(uint32_t i, int32_t begin, int32_t end, int32_t step,
                          std::function<void()> body);
  // Same with dynamic end: end_local is read each iteration.
  FunctionBuilder& ForI32Dyn(uint32_t i, int32_t begin, uint32_t end_local, int32_t step,
                             std::function<void()> body);

  // Simple while: loops while cond() leaves non-zero i32 on the stack.
  FunctionBuilder& While(std::function<void()> cond, std::function<void()> body);

  // --- Arithmetic shorthands (i32) ---
  FunctionBuilder& I32Add() { return Op(Opcode::kI32Add); }
  FunctionBuilder& I32Sub() { return Op(Opcode::kI32Sub); }
  FunctionBuilder& I32Mul() { return Op(Opcode::kI32Mul); }
  FunctionBuilder& I32And() { return Op(Opcode::kI32And); }
  FunctionBuilder& I32Or() { return Op(Opcode::kI32Or); }
  FunctionBuilder& I32Xor() { return Op(Opcode::kI32Xor); }
  FunctionBuilder& I32Shl() { return Op(Opcode::kI32Shl); }
  FunctionBuilder& I32ShrU() { return Op(Opcode::kI32ShrU); }
  FunctionBuilder& I32ShrS() { return Op(Opcode::kI32ShrS); }
  FunctionBuilder& I32Eq() { return Op(Opcode::kI32Eq); }
  FunctionBuilder& I32Ne() { return Op(Opcode::kI32Ne); }
  FunctionBuilder& I32LtS() { return Op(Opcode::kI32LtS); }
  FunctionBuilder& I32LtU() { return Op(Opcode::kI32LtU); }
  FunctionBuilder& I32GtS() { return Op(Opcode::kI32GtS); }
  FunctionBuilder& I32GeS() { return Op(Opcode::kI32GeS); }
  FunctionBuilder& I32LeS() { return Op(Opcode::kI32LeS); }
  FunctionBuilder& I32Eqz() { return Op(Opcode::kI32Eqz); }
  FunctionBuilder& I32DivS() { return Op(Opcode::kI32DivS); }
  FunctionBuilder& I32DivU() { return Op(Opcode::kI32DivU); }
  FunctionBuilder& I32RemU() { return Op(Opcode::kI32RemU); }
  FunctionBuilder& I32RemS() { return Op(Opcode::kI32RemS); }

  // --- Arithmetic shorthands (f64) ---
  FunctionBuilder& F64Add() { return Op(Opcode::kF64Add); }
  FunctionBuilder& F64Sub() { return Op(Opcode::kF64Sub); }
  FunctionBuilder& F64Mul() { return Op(Opcode::kF64Mul); }
  FunctionBuilder& F64Div() { return Op(Opcode::kF64Div); }
  FunctionBuilder& F64Sqrt() { return Op(Opcode::kF64Sqrt); }
  FunctionBuilder& F64Neg() { return Op(Opcode::kF64Neg); }
  FunctionBuilder& F64Abs() { return Op(Opcode::kF64Abs); }
  FunctionBuilder& F64Lt() { return Op(Opcode::kF64Lt); }
  FunctionBuilder& F64Gt() { return Op(Opcode::kF64Gt); }
  FunctionBuilder& F64Le() { return Op(Opcode::kF64Le); }
  FunctionBuilder& F64Ge() { return Op(Opcode::kF64Ge); }
  FunctionBuilder& F64Eq() { return Op(Opcode::kF64Eq); }
  FunctionBuilder& F64ConvertI32S() { return Op(Opcode::kF64ConvertI32S); }
  FunctionBuilder& I32TruncF64S() { return Op(Opcode::kI32TruncF64S); }

  // Computes address expr: base_local + index_local * elem_size, leaving an
  // i32 address on the stack (elem_size must be a power of two or small
  // constant; emitted as shl when possible).
  FunctionBuilder& AddrBaseIndex(uint32_t base_local, uint32_t index_local, uint32_t elem_size);

  // Finishes the body with the implicit `end`. Called automatically by
  // ModuleBuilder::Build if omitted.
  void End();

 private:
  Function& func();

  ModuleBuilder* module_;
  uint32_t func_index_;
  uint32_t defined_index_;
  bool ended_ = false;
};

// Builds a whole module. Typical usage:
//
//   ModuleBuilder mb("kernel");
//   mb.AddMemory(16);
//   auto& f = mb.AddFunction("run", {ValType::kI32}, {ValType::kI32});
//   ... f.LocalGet(0) ... ;
//   Module m = mb.Build();
class ModuleBuilder {
 public:
  explicit ModuleBuilder(std::string name = "");

  // Returns (creating if needed) the index of `type`.
  uint32_t AddType(const FuncType& type);

  // Imports must be added before any defined function.
  uint32_t AddFuncImport(const std::string& module, const std::string& name,
                         const std::vector<ValType>& params, const std::vector<ValType>& results);

  // Adds a defined+exported function; returns the builder for its body.
  FunctionBuilder& AddFunction(const std::string& export_name, const std::vector<ValType>& params,
                               const std::vector<ValType>& results);
  // Adds a defined internal (non-exported) function.
  FunctionBuilder& AddInternalFunction(const std::string& debug_name,
                                       const std::vector<ValType>& params,
                                       const std::vector<ValType>& results);

  void AddMemory(uint32_t min_pages, uint32_t max_pages = kMaxMemoryPages);
  uint32_t AddGlobal(ValType type, bool mut, Instr init);
  void AddData(uint32_t offset, const std::vector<uint8_t>& bytes);
  void AddData(uint32_t offset, const std::string& bytes);
  // Declares a funcref table of the given size and fills [offset..] with the
  // listed function indices.
  void AddTable(uint32_t size);
  void AddElements(uint32_t offset, const std::vector<uint32_t>& func_indices);
  void SetStart(uint32_t func_index);
  void ExportMemory(const std::string& name);

  // Finalizes and returns the module (appends missing `end`s). The builder
  // must not be reused after Build().
  Module Build();

  Module& module() { return module_; }

 private:
  friend class FunctionBuilder;

  Module module_;
  std::deque<FunctionBuilder> builders_;  // deque: stable references
  bool built_ = false;
};

}  // namespace nsf

#endif  // SRC_BUILDER_BUILDER_H_
