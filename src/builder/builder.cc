#include "src/builder/builder.h"

namespace nsf {

namespace {

// Natural alignment (log2) for a memory-access opcode, used as the default.
uint32_t NaturalAlignLog2(Opcode op) {
  switch (op) {
    case Opcode::kI32Load8S:
    case Opcode::kI32Load8U:
    case Opcode::kI64Load8S:
    case Opcode::kI64Load8U:
    case Opcode::kI32Store8:
    case Opcode::kI64Store8:
      return 0;
    case Opcode::kI32Load16S:
    case Opcode::kI32Load16U:
    case Opcode::kI64Load16S:
    case Opcode::kI64Load16U:
    case Opcode::kI32Store16:
    case Opcode::kI64Store16:
      return 1;
    case Opcode::kI32Load:
    case Opcode::kF32Load:
    case Opcode::kI64Load32S:
    case Opcode::kI64Load32U:
    case Opcode::kI32Store:
    case Opcode::kF32Store:
    case Opcode::kI64Store32:
      return 2;
    default:
      return 3;
  }
}

}  // namespace

Function& FunctionBuilder::func() { return module_->module_.functions[defined_index_]; }

uint32_t FunctionBuilder::AddLocal(ValType t) {
  Function& f = func();
  uint32_t nparams =
      static_cast<uint32_t>(module_->module_.types[f.type_index].params.size());
  f.locals.push_back(t);
  return nparams + static_cast<uint32_t>(f.locals.size()) - 1;
}

FunctionBuilder& FunctionBuilder::Emit(Instr instr) {
  func().body.push_back(std::move(instr));
  return *this;
}

FunctionBuilder& FunctionBuilder::Op(Opcode op) { return Emit(Instr::Simple(op)); }

FunctionBuilder& FunctionBuilder::I32Const(int32_t v) { return Emit(Instr::ConstI32(v)); }
FunctionBuilder& FunctionBuilder::I64Const(int64_t v) { return Emit(Instr::ConstI64(v)); }
FunctionBuilder& FunctionBuilder::F32Const(float v) { return Emit(Instr::ConstF32(v)); }
FunctionBuilder& FunctionBuilder::F64Const(double v) { return Emit(Instr::ConstF64(v)); }

FunctionBuilder& FunctionBuilder::LocalGet(uint32_t idx) {
  return Emit(Instr::Idx(Opcode::kLocalGet, idx));
}
FunctionBuilder& FunctionBuilder::LocalSet(uint32_t idx) {
  return Emit(Instr::Idx(Opcode::kLocalSet, idx));
}
FunctionBuilder& FunctionBuilder::LocalTee(uint32_t idx) {
  return Emit(Instr::Idx(Opcode::kLocalTee, idx));
}
FunctionBuilder& FunctionBuilder::GlobalGet(uint32_t idx) {
  return Emit(Instr::Idx(Opcode::kGlobalGet, idx));
}
FunctionBuilder& FunctionBuilder::GlobalSet(uint32_t idx) {
  return Emit(Instr::Idx(Opcode::kGlobalSet, idx));
}

FunctionBuilder& FunctionBuilder::Load(Opcode op, uint32_t offset) {
  return Emit(Instr::Mem(op, NaturalAlignLog2(op), offset));
}
FunctionBuilder& FunctionBuilder::Store(Opcode op, uint32_t offset) {
  return Emit(Instr::Mem(op, NaturalAlignLog2(op), offset));
}

FunctionBuilder& FunctionBuilder::Block(std::function<void()> body) {
  Instr i;
  i.op = Opcode::kBlock;
  Emit(i);
  body();
  return Op(Opcode::kEnd);
}

FunctionBuilder& FunctionBuilder::Block(ValType result, std::function<void()> body) {
  Instr i;
  i.op = Opcode::kBlock;
  // ValType codes (0x7c..0x7f) appear in s33 block types as their
  // single-byte sign-extended values: code - 0x80 (e.g. i32 0x7f -> -1).
  i.block_type = static_cast<int64_t>(static_cast<uint8_t>(result)) - 0x80;
  Emit(i);
  body();
  return Op(Opcode::kEnd);
}

FunctionBuilder& FunctionBuilder::LoopBlock(std::function<void()> body) {
  Instr i;
  i.op = Opcode::kLoop;
  Emit(i);
  body();
  return Op(Opcode::kEnd);
}

FunctionBuilder& FunctionBuilder::If(std::function<void()> then_body) {
  Instr i;
  i.op = Opcode::kIf;
  Emit(i);
  then_body();
  return Op(Opcode::kEnd);
}

FunctionBuilder& FunctionBuilder::IfElse(std::function<void()> then_body,
                                         std::function<void()> else_body) {
  Instr i;
  i.op = Opcode::kIf;
  Emit(i);
  then_body();
  Op(Opcode::kElse);
  else_body();
  return Op(Opcode::kEnd);
}

FunctionBuilder& FunctionBuilder::IfElse(ValType result, std::function<void()> then_body,
                                         std::function<void()> else_body) {
  Instr i;
  i.op = Opcode::kIf;
  i.block_type = static_cast<int64_t>(static_cast<uint8_t>(result)) - 0x80;
  Emit(i);
  then_body();
  Op(Opcode::kElse);
  else_body();
  return Op(Opcode::kEnd);
}

FunctionBuilder& FunctionBuilder::Br(uint32_t depth) {
  return Emit(Instr::Idx(Opcode::kBr, depth));
}
FunctionBuilder& FunctionBuilder::BrIf(uint32_t depth) {
  return Emit(Instr::Idx(Opcode::kBrIf, depth));
}
FunctionBuilder& FunctionBuilder::Return() { return Op(Opcode::kReturn); }
FunctionBuilder& FunctionBuilder::Call(uint32_t func_index) {
  return Emit(Instr::Idx(Opcode::kCall, func_index));
}
FunctionBuilder& FunctionBuilder::CallIndirect(uint32_t type_index) {
  return Emit(Instr::Idx(Opcode::kCallIndirect, type_index));
}
FunctionBuilder& FunctionBuilder::Unreachable() { return Op(Opcode::kUnreachable); }
FunctionBuilder& FunctionBuilder::Drop() { return Op(Opcode::kDrop); }
FunctionBuilder& FunctionBuilder::Select() { return Op(Opcode::kSelect); }

FunctionBuilder& FunctionBuilder::ForI32(uint32_t i, int32_t begin, int32_t end, int32_t step,
                                         std::function<void()> body) {
  I32Const(begin);
  LocalSet(i);
  Block([&] {
    LoopBlock([&] {
      // Exit when i >= end (for positive step) / i <= end (negative step).
      LocalGet(i);
      I32Const(end);
      if (step > 0) {
        Op(Opcode::kI32GeS);
      } else {
        Op(Opcode::kI32LeS);
      }
      BrIf(1);
      body();
      LocalGet(i);
      I32Const(step);
      I32Add();
      LocalSet(i);
      Br(0);
    });
  });
  return *this;
}

FunctionBuilder& FunctionBuilder::ForI32Dyn(uint32_t i, int32_t begin, uint32_t end_local,
                                            int32_t step, std::function<void()> body) {
  I32Const(begin);
  LocalSet(i);
  Block([&] {
    LoopBlock([&] {
      LocalGet(i);
      LocalGet(end_local);
      if (step > 0) {
        Op(Opcode::kI32GeS);
      } else {
        Op(Opcode::kI32LeS);
      }
      BrIf(1);
      body();
      LocalGet(i);
      I32Const(step);
      I32Add();
      LocalSet(i);
      Br(0);
    });
  });
  return *this;
}

FunctionBuilder& FunctionBuilder::While(std::function<void()> cond, std::function<void()> body) {
  Block([&] {
    LoopBlock([&] {
      cond();
      Op(Opcode::kI32Eqz);
      BrIf(1);
      body();
      Br(0);
    });
  });
  return *this;
}

FunctionBuilder& FunctionBuilder::AddrBaseIndex(uint32_t base_local, uint32_t index_local,
                                                uint32_t elem_size) {
  LocalGet(base_local);
  LocalGet(index_local);
  if (elem_size == 1) {
    I32Add();
    return *this;
  }
  // Power of two -> shift; otherwise multiply.
  if ((elem_size & (elem_size - 1)) == 0) {
    uint32_t shift = 0;
    while ((1u << shift) != elem_size) {
      shift++;
    }
    I32Const(static_cast<int32_t>(shift));
    I32Shl();
  } else {
    I32Const(static_cast<int32_t>(elem_size));
    I32Mul();
  }
  I32Add();
  return *this;
}

void FunctionBuilder::End() {
  if (!ended_) {
    Op(Opcode::kEnd);
    ended_ = true;
  }
}

ModuleBuilder::ModuleBuilder(std::string name) { module_.name = std::move(name); }

uint32_t ModuleBuilder::AddType(const FuncType& type) {
  for (size_t i = 0; i < module_.types.size(); i++) {
    if (module_.types[i] == type) {
      return static_cast<uint32_t>(i);
    }
  }
  module_.types.push_back(type);
  return static_cast<uint32_t>(module_.types.size()) - 1;
}

uint32_t ModuleBuilder::AddFuncImport(const std::string& module, const std::string& name,
                                      const std::vector<ValType>& params,
                                      const std::vector<ValType>& results) {
  Import imp;
  imp.module = module;
  imp.name = name;
  imp.kind = ExternalKind::kFunc;
  imp.type_index = AddType(FuncType{params, results});
  module_.imports.push_back(std::move(imp));
  return module_.NumImportedFuncs() - 1;
}

FunctionBuilder& ModuleBuilder::AddFunction(const std::string& export_name,
                                            const std::vector<ValType>& params,
                                            const std::vector<ValType>& results) {
  FunctionBuilder& fb = AddInternalFunction(export_name, params, results);
  Export e;
  e.name = export_name;
  e.kind = ExternalKind::kFunc;
  e.index = fb.index();
  module_.exports.push_back(std::move(e));
  return fb;
}

FunctionBuilder& ModuleBuilder::AddInternalFunction(const std::string& debug_name,
                                                    const std::vector<ValType>& params,
                                                    const std::vector<ValType>& results) {
  Function f;
  f.type_index = AddType(FuncType{params, results});
  f.debug_name = debug_name;
  module_.functions.push_back(std::move(f));
  uint32_t defined_index = static_cast<uint32_t>(module_.functions.size()) - 1;
  uint32_t func_index = module_.NumImportedFuncs() + defined_index;
  builders_.emplace_back(this, func_index, defined_index);
  return builders_.back();
}

void ModuleBuilder::AddMemory(uint32_t min_pages, uint32_t max_pages) {
  MemorySec m;
  m.limits.min = min_pages;
  m.limits.max = max_pages;
  module_.memories.push_back(m);
}

uint32_t ModuleBuilder::AddGlobal(ValType type, bool mut, Instr init) {
  Global g;
  g.type.type = type;
  g.type.mut = mut;
  g.init = std::move(init);
  module_.globals.push_back(std::move(g));
  return module_.NumTotalGlobals() - 1;
}

void ModuleBuilder::AddData(uint32_t offset, const std::vector<uint8_t>& bytes) {
  DataSegment d;
  d.offset = Instr::ConstI32(static_cast<int32_t>(offset));
  d.bytes = bytes;
  module_.data.push_back(std::move(d));
}

void ModuleBuilder::AddData(uint32_t offset, const std::string& bytes) {
  AddData(offset, std::vector<uint8_t>(bytes.begin(), bytes.end()));
}

void ModuleBuilder::AddTable(uint32_t size) {
  Table t;
  t.limits.min = size;
  t.limits.max = size;
  module_.tables.push_back(t);
}

void ModuleBuilder::AddElements(uint32_t offset, const std::vector<uint32_t>& func_indices) {
  ElementSegment seg;
  seg.offset = Instr::ConstI32(static_cast<int32_t>(offset));
  seg.func_indices = func_indices;
  module_.elements.push_back(std::move(seg));
}

void ModuleBuilder::SetStart(uint32_t func_index) { module_.start = func_index; }

void ModuleBuilder::ExportMemory(const std::string& name) {
  Export e;
  e.name = name;
  e.kind = ExternalKind::kMemory;
  e.index = 0;
  module_.exports.push_back(std::move(e));
}

Module ModuleBuilder::Build() {
  for (FunctionBuilder& fb : builders_) {
    fb.End();
  }
  built_ = true;
  return std::move(module_);
}

}  // namespace nsf
