#include "src/kernel/kernel.h"

#include <cstring>

namespace nsf {

BrowsixKernel::BrowsixKernel(GrowthPolicy policy) : fs_(policy) {}

std::unique_ptr<Process> BrowsixKernel::CreateProcess(MemPort* mem,
                                                      std::vector<std::string> argv) {
  return std::make_unique<Process>(this, mem, std::move(argv), next_pid_++);
}

uint64_t BrowsixKernel::TransportCycles(uint64_t bytes) const {
  // Each 64 MB chunk is a separate kernel message (§2).
  uint64_t chunks = bytes == 0 ? 1 : (bytes + costs_.chunk_bytes - 1) / costs_.chunk_bytes;
  return chunks * costs_.per_syscall + bytes * costs_.per_byte_num / costs_.per_byte_den;
}

Process::Process(BrowsixKernel* kernel, MemPort* mem, std::vector<std::string> argv, int pid)
    : kernel_(kernel), fs_(&kernel->fs_), mem_(mem), argv_(std::move(argv)), pid_(pid) {
  // fds 0/1/2.
  auto mk = [this](OpenFile::Kind kind) {
    auto f = std::make_unique<OpenFile>();
    f->kind = kind;
    fds_.push_back(std::move(f));
  };
  mk(OpenFile::Kind::kStdin);
  mk(OpenFile::Kind::kStdout);
  mk(OpenFile::Kind::kStderr);
}

void Process::Charge(uint64_t bytes) {
  uint64_t cycles = kernel_->TransportCycles(bytes);
  browsix_cycles_ += cycles;
  syscall_count_++;
  kernel_->Account(bytes);
  if (mem_ != nullptr) {
    mem_->ChargeCycles(cycles);
  }
}

OpenFile* Process::GetFd(int fd) {
  if (fd < 0 || static_cast<size_t>(fd) >= fds_.size() || fds_[fd] == nullptr) {
    return nullptr;
  }
  return fds_[fd].get();
}

std::string Process::ReadCString(uint32_t addr, uint32_t max_len) {
  std::string out;
  for (uint32_t i = 0; i < max_len; i++) {
    uint8_t c;
    if (!mem_->Read(addr + i, &c, 1)) {
      break;
    }
    if (c == 0) {
      break;
    }
    out.push_back(static_cast<char>(c));
  }
  return out;
}

int32_t Process::Open(const std::string& path, int flags) {
  Charge(path.size());
  int32_t inode;
  if ((flags & kO_CREAT) != 0) {
    inode = fs_->CreateFile(path);
  } else {
    inode = fs_->Lookup(path);
  }
  if (inode < 0) {
    return inode;
  }
  if ((flags & kO_TRUNC) != 0 && !fs_->IsDir(inode)) {
    fs_->Truncate(inode, 0);
  }
  auto f = std::make_unique<OpenFile>();
  f->kind = OpenFile::Kind::kInode;
  f->inode = static_cast<uint32_t>(inode);
  f->flags = flags;
  if ((flags & kO_APPEND) != 0) {
    f->offset = fs_->SizeOf(inode);
  }
  // Lowest free slot.
  for (size_t i = 0; i < fds_.size(); i++) {
    if (fds_[i] == nullptr) {
      fds_[i] = std::move(f);
      return static_cast<int32_t>(i);
    }
  }
  fds_.push_back(std::move(f));
  return static_cast<int32_t>(fds_.size()) - 1;
}

int32_t Process::Close(int fd) {
  OpenFile* f = GetFd(fd);
  if (f == nullptr) {
    return kEBADF;
  }
  Charge(0);
  if (f->kind == OpenFile::Kind::kPipeWrite && f->pipe) {
    f->pipe->writer_closed = true;
  }
  if (f->kind == OpenFile::Kind::kPipeRead && f->pipe) {
    f->pipe->reader_closed = true;
  }
  fds_[fd] = nullptr;
  return 0;
}

int64_t Process::Read(int fd, uint32_t buf_addr, uint32_t len) {
  OpenFile* f = GetFd(fd);
  if (f == nullptr) {
    return kEBADF;
  }
  std::vector<uint8_t> tmp(len);
  int64_t n = 0;
  switch (f->kind) {
    case OpenFile::Kind::kStdin: {
      uint64_t avail = stdin_.size() - stdin_pos_;
      n = static_cast<int64_t>(std::min<uint64_t>(len, avail));
      std::memcpy(tmp.data(), stdin_.data() + stdin_pos_, n);
      stdin_pos_ += n;
      break;
    }
    case OpenFile::Kind::kPipeRead: {
      uint64_t avail = f->pipe->buffer.size() - f->pipe->read_pos;
      n = static_cast<int64_t>(std::min<uint64_t>(len, avail));
      std::memcpy(tmp.data(), f->pipe->buffer.data() + f->pipe->read_pos, n);
      f->pipe->read_pos += n;
      break;
    }
    case OpenFile::Kind::kInode:
      n = fs_->ReadAt(f->inode, f->offset, tmp.data(), len);
      if (n > 0) {
        f->offset += static_cast<uint64_t>(n);
      }
      break;
    default:
      return kEBADF;
  }
  Charge(n > 0 ? static_cast<uint64_t>(n) : 0);
  if (n > 0 && !mem_->Write(buf_addr, tmp.data(), static_cast<uint32_t>(n))) {
    return kEINVAL;
  }
  return n;
}

int64_t Process::Write(int fd, uint32_t buf_addr, uint32_t len) {
  OpenFile* f = GetFd(fd);
  if (f == nullptr) {
    return kEBADF;
  }
  std::vector<uint8_t> tmp(len);
  if (!mem_->Read(buf_addr, tmp.data(), len)) {
    return kEINVAL;
  }
  Charge(len);
  switch (f->kind) {
    case OpenFile::Kind::kStdout:
      stdout_.insert(stdout_.end(), tmp.begin(), tmp.end());
      return len;
    case OpenFile::Kind::kStderr:
      stderr_.insert(stderr_.end(), tmp.begin(), tmp.end());
      return len;
    case OpenFile::Kind::kPipeWrite:
      f->pipe->buffer.insert(f->pipe->buffer.end(), tmp.begin(), tmp.end());
      return len;
    case OpenFile::Kind::kInode: {
      int64_t n = fs_->WriteAt(f->inode, f->offset, tmp.data(), len);
      if (n > 0) {
        f->offset += static_cast<uint64_t>(n);
      }
      return n;
    }
    default:
      return kEBADF;
  }
}

int64_t Process::Seek(int fd, int64_t offset, int whence) {
  OpenFile* f = GetFd(fd);
  if (f == nullptr) {
    return kEBADF;
  }
  if (f->kind != OpenFile::Kind::kInode) {
    return kESPIPE;
  }
  Charge(0);
  int64_t base;
  switch (whence) {
    case kSeekSet:
      base = 0;
      break;
    case kSeekCur:
      base = static_cast<int64_t>(f->offset);
      break;
    case kSeekEnd:
      base = static_cast<int64_t>(fs_->SizeOf(f->inode));
      break;
    default:
      return kEINVAL;
  }
  int64_t pos = base + offset;
  if (pos < 0) {
    return kEINVAL;
  }
  f->offset = static_cast<uint64_t>(pos);
  return pos;
}

int32_t Process::StatPath(const std::string& path, Stat* out) {
  Charge(path.size() + sizeof(Stat));
  int32_t inode = fs_->Lookup(path);
  if (inode < 0) {
    return inode;
  }
  out->inode = static_cast<uint32_t>(inode);
  out->mode = fs_->IsDir(inode) ? 0x4000 : 0x8000;
  out->size = fs_->SizeOf(inode);
  out->nlink = fs_->inode(inode).nlink;
  return 0;
}

int32_t Process::Fstat(int fd, Stat* out) {
  OpenFile* f = GetFd(fd);
  if (f == nullptr) {
    return kEBADF;
  }
  Charge(sizeof(Stat));
  if (f->kind != OpenFile::Kind::kInode) {
    out->mode = 0x1000;  // fifo-ish
    out->size = 0;
    return 0;
  }
  out->inode = f->inode;
  out->mode = fs_->IsDir(f->inode) ? 0x4000 : 0x8000;
  out->size = fs_->SizeOf(f->inode);
  return 0;
}

int32_t Process::Dup2(int oldfd, int newfd) {
  OpenFile* f = GetFd(oldfd);
  if (f == nullptr || newfd < 0 || newfd > 1024) {
    return kEBADF;
  }
  Charge(0);
  if (static_cast<size_t>(newfd) >= fds_.size()) {
    fds_.resize(newfd + 1);
  }
  auto copy = std::make_unique<OpenFile>(*f);
  fds_[newfd] = std::move(copy);
  return newfd;
}

int32_t Process::MakePipe(int* read_fd, int* write_fd) {
  Charge(0);
  auto pipe = std::make_shared<Pipe>();
  auto r = std::make_unique<OpenFile>();
  r->kind = OpenFile::Kind::kPipeRead;
  r->pipe = pipe;
  auto w = std::make_unique<OpenFile>();
  w->kind = OpenFile::Kind::kPipeWrite;
  w->pipe = pipe;
  fds_.push_back(std::move(r));
  *read_fd = static_cast<int>(fds_.size()) - 1;
  fds_.push_back(std::move(w));
  *write_fd = static_cast<int>(fds_.size()) - 1;
  return 0;
}

int32_t Process::Ftruncate(int fd, uint64_t size) {
  OpenFile* f = GetFd(fd);
  if (f == nullptr || f->kind != OpenFile::Kind::kInode) {
    return kEBADF;
  }
  Charge(0);
  return fs_->Truncate(f->inode, size);
}

}  // namespace nsf
