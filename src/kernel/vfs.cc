#include "src/kernel/vfs.h"

#include <algorithm>
#include <cstring>

#include "src/support/str.h"

namespace nsf {

MemFs::MemFs(GrowthPolicy policy) : policy_(policy) {
  Inode root;
  root.kind = InodeKind::kDir;
  inodes_.push_back(std::move(root));
}

MemFs::Resolved MemFs::Resolve(const std::string& path) const {
  Resolved r;
  if (path.empty() || path[0] != '/') {
    return r;
  }
  std::vector<std::string> parts;
  for (const std::string& p : StrSplit(path.substr(1), '/')) {
    if (p.empty() || p == ".") {
      continue;
    }
    if (p == "..") {
      if (!parts.empty()) {
        parts.pop_back();
      }
      continue;
    }
    parts.push_back(p);
  }
  uint32_t cur = 0;  // root
  if (parts.empty()) {
    r.parent = 0;
    r.node = 0;
    r.leaf = "";
    return r;
  }
  for (size_t i = 0; i + 1 < parts.size(); i++) {
    const Inode& node = inodes_[cur];
    if (node.kind != InodeKind::kDir) {
      r.parent = kENOTDIR;
      return r;
    }
    auto it = node.entries.find(parts[i]);
    if (it == node.entries.end()) {
      r.parent = kENOENT;
      return r;
    }
    cur = it->second;
  }
  if (inodes_[cur].kind != InodeKind::kDir) {
    r.parent = kENOTDIR;
    return r;
  }
  r.parent = static_cast<int32_t>(cur);
  r.leaf = parts.back();
  auto it = inodes_[cur].entries.find(r.leaf);
  r.node = it == inodes_[cur].entries.end() ? kENOENT : static_cast<int32_t>(it->second);
  return r;
}

int32_t MemFs::Lookup(const std::string& path) const {
  Resolved r = Resolve(path);
  if (r.parent < 0) {
    return r.parent;
  }
  return r.node;
}

int32_t MemFs::CreateFile(const std::string& path) {
  Resolved r = Resolve(path);
  if (r.parent < 0) {
    return r.parent;
  }
  if (r.node >= 0) {
    return inodes_[r.node].kind == InodeKind::kFile ? r.node : kEISDIR;
  }
  Inode node;
  node.kind = InodeKind::kFile;
  inodes_.push_back(std::move(node));
  uint32_t id = static_cast<uint32_t>(inodes_.size()) - 1;
  inodes_[r.parent].entries[r.leaf] = id;
  return static_cast<int32_t>(id);
}

int32_t MemFs::Mkdir(const std::string& path) {
  Resolved r = Resolve(path);
  if (r.parent < 0) {
    return r.parent;
  }
  if (r.node >= 0) {
    return kEEXIST;
  }
  Inode node;
  node.kind = InodeKind::kDir;
  inodes_.push_back(std::move(node));
  uint32_t id = static_cast<uint32_t>(inodes_.size()) - 1;
  inodes_[r.parent].entries[r.leaf] = id;
  return static_cast<int32_t>(id);
}

int32_t MemFs::Unlink(const std::string& path) {
  Resolved r = Resolve(path);
  if (r.parent < 0) {
    return r.parent;
  }
  if (r.node < 0) {
    return kENOENT;
  }
  if (inodes_[r.node].kind == InodeKind::kDir) {
    return kEISDIR;
  }
  inodes_[r.parent].entries.erase(r.leaf);
  return 0;
}

int32_t MemFs::Rmdir(const std::string& path) {
  Resolved r = Resolve(path);
  if (r.parent < 0) {
    return r.parent;
  }
  if (r.node < 0) {
    return kENOENT;
  }
  if (inodes_[r.node].kind != InodeKind::kDir) {
    return kENOTDIR;
  }
  if (!inodes_[r.node].entries.empty()) {
    return kENOTEMPTY;
  }
  inodes_[r.parent].entries.erase(r.leaf);
  return 0;
}

int32_t MemFs::Rename(const std::string& from, const std::string& to) {
  Resolved rf = Resolve(from);
  if (rf.parent < 0 || rf.node < 0) {
    return rf.parent < 0 ? rf.parent : kENOENT;
  }
  Resolved rt = Resolve(to);
  if (rt.parent < 0) {
    return rt.parent;
  }
  inodes_[rt.parent].entries[rt.leaf] = static_cast<uint32_t>(rf.node);
  inodes_[rf.parent].entries.erase(rf.leaf);
  return 0;
}

void MemFs::Grow(Inode& node, uint64_t needed) {
  if (needed <= node.capacity) {
    return;
  }
  uint64_t new_cap;
  if (policy_ == GrowthPolicy::kExact) {
    // Pre-fix BrowserFS: a fresh exact-size buffer and a full copy of the
    // old contents on every extension.
    new_cap = needed;
    node.copy_bytes += node.data.size();
  } else {
    // Fixed behaviour: at least 4 KiB extra (we also double up to 1 MiB,
    // matching amortized growth).
    uint64_t bump = std::max<uint64_t>(4096, std::min<uint64_t>(node.capacity, 1 << 20));
    new_cap = std::max(needed, node.capacity + bump);
    node.copy_bytes += node.data.size();  // one copy per (rare) growth
  }
  node.capacity = new_cap;
}

int64_t MemFs::ReadAt(uint32_t inode_id, uint64_t offset, uint8_t* out, uint64_t len) const {
  const Inode& node = inodes_[inode_id];
  if (node.kind != InodeKind::kFile) {
    return kEISDIR;
  }
  if (offset >= node.data.size()) {
    return 0;
  }
  uint64_t n = std::min<uint64_t>(len, node.data.size() - offset);
  std::memcpy(out, node.data.data() + offset, n);
  return static_cast<int64_t>(n);
}

int64_t MemFs::WriteAt(uint32_t inode_id, uint64_t offset, const uint8_t* data, uint64_t len) {
  Inode& node = inodes_[inode_id];
  if (node.kind != InodeKind::kFile) {
    return kEISDIR;
  }
  uint64_t end = offset + len;
  if (end > node.data.size()) {
    Grow(node, end);
    node.data.resize(end);
  }
  std::memcpy(node.data.data() + offset, data, len);
  return static_cast<int64_t>(len);
}

int32_t MemFs::Truncate(uint32_t inode_id, uint64_t size) {
  Inode& node = inodes_[inode_id];
  if (node.kind != InodeKind::kFile) {
    return kEISDIR;
  }
  if (size > node.data.size()) {
    Grow(node, size);
  }
  node.data.resize(size);
  return 0;
}

std::vector<std::string> MemFs::List(uint32_t dir_inode) const {
  std::vector<std::string> names;
  for (const auto& [name, id] : inodes_[dir_inode].entries) {
    names.push_back(name);
  }
  return names;
}

bool MemFs::WriteFile(const std::string& path, const std::string& contents) {
  return WriteFile(path, std::vector<uint8_t>(contents.begin(), contents.end()));
}

bool MemFs::WriteFile(const std::string& path, const std::vector<uint8_t>& contents) {
  int32_t id = CreateFile(path);
  if (id < 0) {
    return false;
  }
  inodes_[id].data.clear();
  inodes_[id].capacity = 0;
  return WriteAt(static_cast<uint32_t>(id), 0, contents.data(), contents.size()) ==
         static_cast<int64_t>(contents.size());
}

bool MemFs::ReadFile(const std::string& path, std::vector<uint8_t>* out) const {
  int32_t id = Lookup(path);
  if (id < 0 || inodes_[id].kind != InodeKind::kFile) {
    return false;
  }
  *out = inodes_[id].data;
  return true;
}

std::string MemFs::ReadFileString(const std::string& path) const {
  std::vector<uint8_t> bytes;
  if (!ReadFile(path, &bytes)) {
    return "";
  }
  return std::string(bytes.begin(), bytes.end());
}

uint64_t MemFs::total_copy_bytes() const {
  uint64_t total = 0;
  for (const Inode& node : inodes_) {
    total += node.copy_bytes;
  }
  return total;
}

}  // namespace nsf
