// BROWSIX-WASM kernel: processes, file descriptors, pipes, and the syscall
// layer with auxiliary-buffer transport accounting.
//
// The paper's kernel lives in the browser's main JS context; processes are
// WebWorkers that marshal syscall arguments through a 64 MB
// SharedArrayBuffer. Here the kernel is an in-process object and "transport"
// is a cost model: every syscall charges a fixed message cost plus a
// per-byte copy cost, chunked at 64 MB — the same accounting §2 describes.
// The charged cycles are tracked separately so the Figure 4 experiment can
// report "% time in Browsix".
#ifndef SRC_KERNEL_KERNEL_H_
#define SRC_KERNEL_KERNEL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/kernel/vfs.h"

namespace nsf {

// Open-file flags (subset of POSIX).
inline constexpr int kO_RDONLY = 0x0;
inline constexpr int kO_WRONLY = 0x1;
inline constexpr int kO_RDWR = 0x2;
inline constexpr int kO_CREAT = 0x40;
inline constexpr int kO_TRUNC = 0x200;
inline constexpr int kO_APPEND = 0x400;

inline constexpr int kSeekSet = 0;
inline constexpr int kSeekCur = 1;
inline constexpr int kSeekEnd = 2;

struct Pipe {
  std::vector<uint8_t> buffer;
  size_t read_pos = 0;
  bool writer_closed = false;
  bool reader_closed = false;
};

struct OpenFile {
  enum class Kind { kInode, kPipeRead, kPipeWrite, kStdout, kStderr, kStdin } kind = Kind::kInode;
  uint32_t inode = 0;
  uint64_t offset = 0;
  int flags = 0;
  std::shared_ptr<Pipe> pipe;
};

struct Stat {
  uint32_t inode = 0;
  uint32_t mode = 0;  // 0x4000 dir | 0x8000 file
  uint64_t size = 0;
  uint32_t nlink = 1;
};

// Transport cost model (cycles); see DESIGN.md §5.
struct TransportCosts {
  uint64_t per_syscall = 4000;  // postMessage round trip between JS contexts
  uint64_t per_byte_num = 1;    // copy in/out of the aux buffer: 1/4 cycle
  uint64_t per_byte_den = 4;    //   per byte (memcpy at ~16B/cycle, 2 copies)
  uint64_t chunk_bytes = 64ull << 20;  // aux buffer size (§2)
};

class Process;

// Memory port: how the kernel reaches a process's linear memory. Adapters
// exist for the simulated machine (counting transport cycles) and for the
// reference interpreter (used in differential tests).
class MemPort {
 public:
  virtual ~MemPort() = default;
  virtual bool Read(uint32_t addr, void* out, uint32_t size) = 0;
  virtual bool Write(uint32_t addr, const void* data, uint32_t size) = 0;
  // Charges `cycles` of kernel time to the process (no-op for interp).
  virtual void ChargeCycles(uint64_t /*cycles*/) {}
};

class BrowsixKernel {
 public:
  explicit BrowsixKernel(GrowthPolicy policy = GrowthPolicy::kChunked);

  MemFs& fs() { return fs_; }
  const TransportCosts& costs() const { return costs_; }
  void set_costs(const TransportCosts& costs) { costs_ = costs; }

  // Creates a process whose memory is reachable through `mem` (not owned).
  // argv[0] is the program name.
  std::unique_ptr<Process> CreateProcess(MemPort* mem, std::vector<std::string> argv);

  // Cycle cost of transporting `bytes` payload bytes for one syscall,
  // including 64 MB chunking.
  uint64_t TransportCycles(uint64_t bytes) const;

  // Aggregate accounting across all processes (Fig. 4).
  uint64_t total_syscalls() const { return total_syscalls_; }
  uint64_t total_transport_bytes() const { return total_transport_bytes_; }

 private:
  friend class Process;

  void Account(uint64_t bytes) {
    total_syscalls_++;
    total_transport_bytes_ += bytes;
  }

  MemFs fs_;
  TransportCosts costs_;
  uint64_t total_syscalls_ = 0;
  uint64_t total_transport_bytes_ = 0;
  int next_pid_ = 1;
};

// One Browsix process: fd table + syscall implementations. Syscalls read and
// write the process's Wasm heap through the machine, charging transport.
class Process {
 public:
  Process(BrowsixKernel* kernel, MemPort* mem, std::vector<std::string> argv, int pid);

  int pid() const { return pid_; }
  const std::vector<std::string>& argv() const { return argv_; }
  MemPort* mem() { return mem_; }

  // --- Syscalls (return value or negative errno) ---
  int32_t Open(const std::string& path, int flags);
  int32_t Close(int fd);
  int64_t Read(int fd, uint32_t buf_addr, uint32_t len);
  int64_t Write(int fd, uint32_t buf_addr, uint32_t len);
  int64_t Seek(int fd, int64_t offset, int whence);
  int32_t StatPath(const std::string& path, Stat* out);
  int32_t Fstat(int fd, Stat* out);
  int32_t Dup2(int oldfd, int newfd);
  int32_t MakePipe(int* read_fd, int* write_fd);
  int32_t Ftruncate(int fd, uint64_t size);
  int32_t Unlink(const std::string& path) { return fs_->Unlink(path); }
  int32_t Mkdir(const std::string& path) {
    int32_t r = fs_->Mkdir(path);
    return r >= 0 ? 0 : r;
  }

  // Reads a NUL-terminated string out of the process heap (for path args).
  std::string ReadCString(uint32_t addr, uint32_t max_len = 4096);

  // Captured stdout/stderr bytes.
  const std::vector<uint8_t>& stdout_bytes() const { return stdout_; }
  const std::vector<uint8_t>& stderr_bytes() const { return stderr_; }
  std::string StdoutString() const { return std::string(stdout_.begin(), stdout_.end()); }
  void FeedStdin(const std::vector<uint8_t>& bytes) { stdin_ = bytes; }

  // Time the kernel charged to this process (Fig. 4 numerator).
  uint64_t browsix_cycles() const { return browsix_cycles_; }
  uint64_t syscall_count() const { return syscall_count_; }

  // Exit bookkeeping (set by the exit syscall hook).
  bool exited = false;
  int exit_code = 0;

 private:
  // Charges one syscall's transport for `bytes` of payload.
  void Charge(uint64_t bytes);
  OpenFile* GetFd(int fd);

  BrowsixKernel* kernel_;
  MemFs* fs_;
  MemPort* mem_;
  std::vector<std::string> argv_;
  int pid_;
  std::vector<std::unique_ptr<OpenFile>> fds_;
  std::vector<uint8_t> stdout_;
  std::vector<uint8_t> stderr_;
  std::vector<uint8_t> stdin_;
  uint64_t stdin_pos_ = 0;
  uint64_t browsix_cycles_ = 0;
  uint64_t syscall_count_ = 0;
};

}  // namespace nsf

#endif  // SRC_KERNEL_KERNEL_H_
