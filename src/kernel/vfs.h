// In-memory filesystem (the BROWSERFS stand-in). Supports the two append
// growth strategies the paper discusses in §2: the original
// allocate-exact-and-copy behaviour (which made 464.h264ref spend 25s in
// Browsix) and the fixed grow-by-at-least-4KB behaviour.
#ifndef SRC_KERNEL_VFS_H_
#define SRC_KERNEL_VFS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace nsf {

enum class GrowthPolicy {
  kExact,    // pre-fix BrowserFS: new buffer per append, full copy
  kChunked,  // fixed: grow capacity by >= 4 KiB
};

enum class InodeKind { kFile, kDir };

struct Inode {
  InodeKind kind = InodeKind::kFile;
  std::vector<uint8_t> data;        // file payload (size = file size)
  size_t capacity = 0;              // modeled capacity (kChunked)
  std::map<std::string, uint32_t> entries;  // directories
  uint64_t copy_bytes = 0;          // bytes copied due to growth (modeled)
  uint32_t nlink = 1;
};

// Result codes follow errno conventions (negative errno on failure).
inline constexpr int kEPERM = -1;
inline constexpr int kENOENT = -2;
inline constexpr int kEBADF = -9;
inline constexpr int kEEXIST = -17;
inline constexpr int kENOTDIR = -20;
inline constexpr int kEISDIR = -21;
inline constexpr int kEINVAL = -22;
inline constexpr int kENOTEMPTY = -39;
inline constexpr int kESPIPE = -29;

class MemFs {
 public:
  explicit MemFs(GrowthPolicy policy = GrowthPolicy::kChunked);

  // Path resolution ('/'-separated absolute paths; "." and ".." supported).
  // Returns inode id or kENOENT/kENOTDIR.
  int32_t Lookup(const std::string& path) const;

  // Creates a regular file (parents must exist). Returns inode id or -errno.
  int32_t CreateFile(const std::string& path);
  int32_t Mkdir(const std::string& path);
  int32_t Unlink(const std::string& path);
  int32_t Rmdir(const std::string& path);
  int32_t Rename(const std::string& from, const std::string& to);

  // Data access by inode id. ReadAt returns bytes read (0 at EOF).
  int64_t ReadAt(uint32_t inode, uint64_t offset, uint8_t* out, uint64_t len) const;
  // WriteAt extends the file as needed and returns bytes written.
  int64_t WriteAt(uint32_t inode, uint64_t offset, const uint8_t* data, uint64_t len);
  int32_t Truncate(uint32_t inode, uint64_t size);

  const Inode& inode(uint32_t id) const { return inodes_[id]; }
  Inode& inode(uint32_t id) { return inodes_[id]; }
  bool IsDir(uint32_t id) const { return inodes_[id].kind == InodeKind::kDir; }
  uint64_t SizeOf(uint32_t id) const { return inodes_[id].data.size(); }

  // Lists a directory's entry names (sorted).
  std::vector<std::string> List(uint32_t dir_inode) const;

  // Convenience helpers used by tests/harness.
  bool WriteFile(const std::string& path, const std::string& contents);
  bool WriteFile(const std::string& path, const std::vector<uint8_t>& contents);
  bool ReadFile(const std::string& path, std::vector<uint8_t>* out) const;
  std::string ReadFileString(const std::string& path) const;

  // Total bytes copied by the growth policy across all files — the §2
  // pathology metric.
  uint64_t total_copy_bytes() const;
  GrowthPolicy policy() const { return policy_; }

 private:
  struct Resolved {
    int32_t parent = kENOENT;
    int32_t node = kENOENT;  // may be kENOENT when last component missing
    std::string leaf;
  };
  Resolved Resolve(const std::string& path) const;
  void Grow(Inode& node, uint64_t needed);

  GrowthPolicy policy_;
  std::vector<Inode> inodes_;  // inode 0 = root dir
};

}  // namespace nsf

#endif  // SRC_KERNEL_VFS_H_
