// Predecode (MFunction -> DecodedFunc) and the threaded-dispatch execution
// core (SimMachine::ExecDecoded). See decode.h for the design contract; the
// invariant that matters everywhere below is BIT-IDENTICAL PerfCounters with
// SimMachine::ExecLegacy — same fetch sequence through the L1i model, same
// retirement/fuel order, same cycle charges, same data-access order on trap
// paths. tests/decode_test.cc enforces this differentially.
#include "src/machine/decode.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>

#include "src/machine/bits.h"
#include "src/machine/machine.h"
#include "src/support/str.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/trace.h"

namespace nsf {

static_assert(static_cast<size_t>(HOp::kCount) <= kMaxDispatchHandlers,
              "grow kMaxDispatchHandlers (and SimMachine::dispatch_retires_)");

// --- Dynamic dispatch statistics (see decode.h) ---
//
// Machines count into a plain per-machine array (no atomics in the dispatch
// loop); ~SimMachine folds it into this process-wide table.

#ifdef NSF_DISPATCH_STATS
namespace {
std::atomic<uint64_t> g_dispatch_retires[kMaxDispatchHandlers] = {};
// Adjacent-pair retires, indexed first * kMaxDispatchHandlers + second.
// Heap-allocated once (128 KiB) instead of static so unused stats builds of
// short-lived tools don't page it in.
std::atomic<uint64_t>* PairTable() {
  static std::atomic<uint64_t>* table =
      new std::atomic<uint64_t>[kMaxDispatchHandlers * kMaxDispatchHandlers]();
  return table;
}
}  // namespace
#endif

bool DispatchStatsEnabled() {
#ifdef NSF_DISPATCH_STATS
  return true;
#else
  return false;
#endif
}

uint32_t DataPairFusionMask() {
  static const uint32_t mask = [] {
    const char* env = std::getenv("NSF_DATA_PAIRS");
    if (env != nullptr) {
      if (std::strcmp(env, "all") == 0) {
        return kDataPairMovRIMovRR | kDataPairLoadZMovRR | kDataPairMovRRAddRR;
      }
      if (std::strcmp(env, "none") == 0) {
        return 0u;
      }
      return static_cast<uint32_t>(std::strtoul(env, nullptr, 0));
    }
    return kDataPairDefaultFusionMask;
  }();
  return mask;
}

void AccumulateDispatchStats(const uint64_t* counts) {
#ifdef NSF_DISPATCH_STATS
  for (size_t i = 0; i < static_cast<size_t>(HOp::kCount); i++) {
    if (counts[i] != 0) {
      g_dispatch_retires[i].fetch_add(counts[i], std::memory_order_relaxed);
    }
  }
#else
  (void)counts;
#endif
}

void AccumulateDispatchPairs(const uint64_t* counts) {
#ifdef NSF_DISPATCH_STATS
  std::atomic<uint64_t>* table = PairTable();
  for (size_t f = 0; f < static_cast<size_t>(HOp::kCount); f++) {
    for (size_t s = 0; s < static_cast<size_t>(HOp::kCount); s++) {
      size_t i = f * kMaxDispatchHandlers + s;
      if (counts[i] != 0) {
        table[i].fetch_add(counts[i], std::memory_order_relaxed);
      }
    }
  }
#else
  (void)counts;
#endif
}

std::vector<DispatchPairStat> DispatchPairsSnapshot() {
  std::vector<DispatchPairStat> out;
#ifdef NSF_DISPATCH_STATS
  std::atomic<uint64_t>* table = PairTable();
  for (size_t f = 0; f < static_cast<size_t>(HOp::kCount); f++) {
    for (size_t s = 0; s < static_cast<size_t>(HOp::kCount); s++) {
      uint64_t n = table[f * kMaxDispatchHandlers + s].load(std::memory_order_relaxed);
      if (n != 0) {
        DispatchPairStat p;
        p.first = static_cast<HOp>(f);
        p.second = static_cast<HOp>(s);
        p.first_name = HOpName(p.first);
        p.second_name = HOpName(p.second);
        p.count = n;
        out.push_back(p);
      }
    }
  }
  std::sort(out.begin(), out.end(), [](const DispatchPairStat& a, const DispatchPairStat& b) {
    if (a.count != b.count) return a.count > b.count;
    if (a.first != b.first) return a.first < b.first;
    return a.second < b.second;
  });
#endif
  return out;
}

std::vector<DispatchStat> DispatchStatsSnapshot() {
  std::vector<DispatchStat> out;
#ifdef NSF_DISPATCH_STATS
  for (size_t i = 0; i < static_cast<size_t>(HOp::kCount); i++) {
    uint64_t n = g_dispatch_retires[i].load(std::memory_order_relaxed);
    if (n != 0) {
      HOp h = static_cast<HOp>(i);
      out.push_back(DispatchStat{h, HOpName(h), n});
    }
  }
  std::sort(out.begin(), out.end(), [](const DispatchStat& a, const DispatchStat& b) {
    if (a.retires != b.retires) return a.retires > b.retires;
    return a.handler < b.handler;
  });
#endif
  return out;
}

void ResetDispatchStats() {
#ifdef NSF_DISPATCH_STATS
  for (auto& c : g_dispatch_retires) {
    c.store(0, std::memory_order_relaxed);
  }
  std::atomic<uint64_t>* table = PairTable();
  for (size_t i = 0; i < kMaxDispatchHandlers * kMaxDispatchHandlers; i++) {
    table[i].store(0, std::memory_order_relaxed);
  }
#endif
}

const char* SimDispatchBackend() {
#if NSF_COMPUTED_GOTO
  return "computed-goto";
#else
  return "switch";
#endif
}

const char* HOpName(HOp h) {
  switch (h) {
#define NSF_H(name)   \
  case HOp::k##name:  \
    return #name;
    NSF_HANDLER_LIST(NSF_H)
#undef NSF_H
    default:
      return "?";
  }
}

namespace {

// The L1i line size is fixed at 64 bytes (machine.h's CacheModel config);
// the line-span precomputation hardcodes the shift accordingly.
constexpr uint32_t kLineShift = 6;

int8_t OptReg(const std::optional<Gpr>& r) {
  return r.has_value() ? static_cast<int8_t>(static_cast<uint8_t>(*r)) : int8_t{-1};
}

DMem LowerMem(const MemRef& m) {
  DMem d;
  d.base = OptReg(m.base);
  d.index = OptReg(m.index);
  d.scale = m.scale;
  d.disp = m.disp;
  return d;
}

uint8_t LineSpan(uint64_t addr, uint32_t size) {
  uint64_t first = addr >> kLineShift;
  uint64_t last = (addr + (size > 0 ? size - 1 : 0)) >> kLineShift;
  return static_cast<uint8_t>(last - first + 1);
}

uint64_t DAddr(const uint64_t* gprs, const DMem& m) {
  uint64_t addr = static_cast<uint64_t>(static_cast<int64_t>(m.disp));
  if (m.base >= 0) {
    addr += gprs[m.base];
  }
  if (m.index >= 0) {
    addr += gprs[m.index] * m.scale;
  }
  return addr;
}

bool IsR(const Operand& o) { return o.kind == OperandKind::kGpr; }
bool IsI(const Operand& o) { return o.kind == OperandKind::kImm; }
bool IsM(const Operand& o) { return o.kind == OperandKind::kMem; }
bool IsX(const Operand& o) { return o.kind == OperandKind::kXmm; }

void Use(DInstr* d, HOp h) { d->handler = static_cast<uint16_t>(h); }

// Resolves the cmp|test primary of a fused pair to its Fused* handler.
void LowerFusedPrimary(const MInstr& in, DInstr* d) {
  d->width = in.width;
  if (in.op == MOp::kCmp) {
    if (IsR(in.dst) && IsR(in.src)) {
      d->a = static_cast<uint8_t>(in.dst.gpr);
      d->b = static_cast<uint8_t>(in.src.gpr);
      Use(d, HOp::kFusedCmpJccRR);
      return;
    }
    if (IsR(in.dst) && IsI(in.src)) {
      d->a = static_cast<uint8_t>(in.dst.gpr);
      d->imm = static_cast<int64_t>(TruncToWidth(static_cast<uint64_t>(in.src.imm), in.width));
      Use(d, HOp::kFusedCmpJccRI);
      return;
    }
    if (IsR(in.dst) && IsM(in.src)) {
      d->a = static_cast<uint8_t>(in.dst.gpr);
      d->mem = LowerMem(in.src.mem);
      Use(d, HOp::kFusedCmpJccRM);
      return;
    }
  } else {  // kTest
    if (IsR(in.dst) && IsR(in.src)) {
      d->a = static_cast<uint8_t>(in.dst.gpr);
      d->b = static_cast<uint8_t>(in.src.gpr);
      Use(d, HOp::kFusedTestJccRR);
      return;
    }
    if (IsR(in.dst) && IsI(in.src)) {
      d->a = static_cast<uint8_t>(in.dst.gpr);
      d->imm = static_cast<int64_t>(TruncToWidth(static_cast<uint64_t>(in.src.imm), in.width));
      Use(d, HOp::kFusedTestJccRI);
      return;
    }
  }
  Use(d, HOp::kFusedGenJcc);
}

// Round-2 data-pair fusion: the handler for adjacent (first, second), or
// kCount when the pair is not one of the fused shapes. The shape tests must
// agree exactly with LowerOne's specialization rules — a pair is only fused
// when both elements would have lowered to the specialized handlers the
// fused body replicates. Each shape is additionally gated on
// DataPairFusionMask(): round 2 cost ~3% of interpreter wall clock, so a
// fused record must earn its keep on a measured sim_throughput A/B (the gate
// cannot move PerfCounters — fused and unfused pairs count identically).
HOp DataPairHandler(const MInstr& a, const MInstr& b) {
  const uint32_t mask = DataPairFusionMask();
  auto is_mov_rr = [](const MInstr& in) {
    return (in.op == MOp::kMov || in.op == MOp::kMovImm64) && IsR(in.dst) && IsR(in.src);
  };
  if (is_mov_rr(b)) {
    if ((mask & kDataPairMovRIMovRR) != 0 && (a.op == MOp::kMov || a.op == MOp::kMovImm64) &&
        IsR(a.dst) && IsI(a.src)) {
      return HOp::kFusedMovRIMovRR;
    }
    if ((mask & kDataPairLoadZMovRR) != 0 && a.op == MOp::kLoad && IsR(a.dst) && IsM(a.src) &&
        !a.sign_extend) {
      return HOp::kFusedLoadZMovRR;
    }
  }
  if ((mask & kDataPairMovRRAddRR) != 0 && is_mov_rr(a) && b.op == MOp::kAdd && IsR(b.dst) &&
      IsR(b.src)) {
    return HOp::kFusedMovRRAddRR;
  }
  return HOp::kCount;
}

// Lowers a fused data pair into one record. The first element's operands use
// the regular fields; the second element is always reg-reg and packs into the
// (branch-free) target field as dst | src << 8 | width << 16.
void LowerFusedDataPair(const MInstr& first, const MInstr& second, DInstr* d) {
  HOp h = DataPairHandler(first, second);
  d->width = first.width;
  switch (h) {
    case HOp::kFusedMovRIMovRR:
      d->a = static_cast<uint8_t>(first.dst.gpr);
      d->imm =
          static_cast<int64_t>(TruncToWidth(static_cast<uint64_t>(first.src.imm), first.width));
      break;
    case HOp::kFusedLoadZMovRR:
      d->a = static_cast<uint8_t>(first.dst.gpr);
      d->mem = LowerMem(first.src.mem);
      break;
    default:  // kFusedMovRRAddRR
      d->a = static_cast<uint8_t>(first.dst.gpr);
      d->b = static_cast<uint8_t>(first.src.gpr);
      break;
  }
  d->target = static_cast<uint32_t>(static_cast<uint8_t>(second.dst.gpr)) |
              (static_cast<uint32_t>(static_cast<uint8_t>(second.src.gpr)) << 8) |
              (uint32_t{second.width} << 16);
  Use(d, h);
}

// Resolves one unfused instruction to its specialized handler, or kGeneric.
// Control flow always gets a dedicated handler (the generic body cannot steer
// the decoded pc); `map_label` converts an original-pc label to a decoded
// index. kCallHost is split per builtin so the hot path never re-tests ids.
template <typename MapLabel>
void LowerOne(const MInstr& in, DInstr* d, const MapLabel& map_label) {
  d->width = in.width;
  if (in.sign_extend) {
    d->flags |= DInstr::kFlagSignExtend;
  }
  switch (in.op) {
    case MOp::kJmp:
      d->target = map_label(in.label);
      Use(d, HOp::kJmp);
      return;
    case MOp::kJcc:
      d->cond = static_cast<uint8_t>(in.cond);
      d->target = map_label(in.label);
      Use(d, HOp::kJcc);
      return;
    case MOp::kCall:
      d->target = in.func;
      Use(d, HOp::kCall);
      return;
    case MOp::kCallReg:
      d->a = static_cast<uint8_t>(in.dst.gpr);
      Use(d, HOp::kCallReg);
      return;
    case MOp::kRet:
      Use(d, HOp::kRet);
      return;
    case MOp::kCallHost:
      switch (in.func) {
        case kBuiltinTrapUnreachable:
          d->imm = static_cast<int64_t>(TrapKind::kUnreachable);
          Use(d, HOp::kCallHostTrap);
          return;
        case kBuiltinTrapStack:
          d->imm = static_cast<int64_t>(TrapKind::kCallStackExhausted);
          Use(d, HOp::kCallHostTrap);
          return;
        case kBuiltinTrapOob:
          d->imm = static_cast<int64_t>(TrapKind::kIndirectCallOutOfBounds);
          Use(d, HOp::kCallHostTrap);
          return;
        case kBuiltinTrapNull:
          d->imm = static_cast<int64_t>(TrapKind::kIndirectCallNull);
          Use(d, HOp::kCallHostTrap);
          return;
        case kBuiltinTrapSig:
          d->imm = static_cast<int64_t>(TrapKind::kIndirectCallTypeMismatch);
          Use(d, HOp::kCallHostTrap);
          return;
        case kBuiltinMemorySize:
          Use(d, HOp::kCallHostMemSize);
          return;
        case kBuiltinMemoryGrow:
          Use(d, HOp::kCallHostMemGrow);
          return;
        default:
          d->target = in.func;
          Use(d, HOp::kCallHostHook);
          return;
      }

    case MOp::kMov:
    case MOp::kMovImm64:
      if (IsR(in.dst)) {
        d->a = static_cast<uint8_t>(in.dst.gpr);
        if (IsR(in.src)) {
          d->b = static_cast<uint8_t>(in.src.gpr);
          Use(d, HOp::kMovRR);
          return;
        }
        if (IsI(in.src)) {
          // Pre-truncated to the final register value (write of width < 8
          // truncates again, which is idempotent).
          d->imm =
              static_cast<int64_t>(TruncToWidth(static_cast<uint64_t>(in.src.imm), in.width));
          Use(d, HOp::kMovRI);
          return;
        }
        if (IsM(in.src)) {
          d->mem = LowerMem(in.src.mem);
          Use(d, HOp::kMovRM);
          return;
        }
      } else if (IsM(in.dst)) {
        d->mem = LowerMem(in.dst.mem);
        if (IsR(in.src)) {
          d->b = static_cast<uint8_t>(in.src.gpr);
          Use(d, HOp::kMovMR);
          return;
        }
        if (IsI(in.src)) {
          d->imm =
              static_cast<int64_t>(TruncToWidth(static_cast<uint64_t>(in.src.imm), in.width));
          Use(d, HOp::kMovMI);
          return;
        }
      }
      break;

    case MOp::kLoad:
      if (IsR(in.dst) && IsM(in.src)) {
        d->a = static_cast<uint8_t>(in.dst.gpr);
        d->mem = LowerMem(in.src.mem);
        Use(d, in.sign_extend ? HOp::kLoadS : HOp::kLoadZ);
        return;
      }
      break;

    case MOp::kStore:
      if (IsM(in.dst)) {
        d->mem = LowerMem(in.dst.mem);
        if (IsR(in.src)) {
          d->b = static_cast<uint8_t>(in.src.gpr);
          Use(d, HOp::kStoreR);
          return;
        }
        if (IsI(in.src)) {
          d->imm =
              static_cast<int64_t>(TruncToWidth(static_cast<uint64_t>(in.src.imm), in.width));
          Use(d, HOp::kStoreI);
          return;
        }
      }
      break;

    case MOp::kLea:
      if (IsR(in.dst) && IsM(in.src)) {
        d->a = static_cast<uint8_t>(in.dst.gpr);
        d->mem = LowerMem(in.src.mem);
        Use(d, HOp::kLea);
        return;
      }
      break;

    case MOp::kPush:
      d->a = static_cast<uint8_t>(in.dst.gpr);
      Use(d, HOp::kPush);
      return;
    case MOp::kPop:
      d->a = static_cast<uint8_t>(in.dst.gpr);
      Use(d, HOp::kPop);
      return;
    case MOp::kXchg:
      if (IsR(in.dst) && IsR(in.src)) {
        d->a = static_cast<uint8_t>(in.dst.gpr);
        d->b = static_cast<uint8_t>(in.src.gpr);
        Use(d, HOp::kXchg);
        return;
      }
      break;

    case MOp::kAdd:
    case MOp::kSub:
    case MOp::kAnd:
    case MOp::kOr:
    case MOp::kXor:
    case MOp::kImul:
      if (IsR(in.dst)) {
        d->a = static_cast<uint8_t>(in.dst.gpr);
        int shape;  // 0 = RR, 1 = RI, 2 = RM
        if (IsR(in.src)) {
          d->b = static_cast<uint8_t>(in.src.gpr);
          shape = 0;
        } else if (IsI(in.src)) {
          d->imm =
              static_cast<int64_t>(TruncToWidth(static_cast<uint64_t>(in.src.imm), in.width));
          shape = 1;
        } else if (IsM(in.src)) {
          d->mem = LowerMem(in.src.mem);
          shape = 2;
        } else {
          break;
        }
        static constexpr HOp kAluTable[6][3] = {
            {HOp::kAddRR, HOp::kAddRI, HOp::kAddRM},
            {HOp::kSubRR, HOp::kSubRI, HOp::kSubRM},
            {HOp::kAndRR, HOp::kAndRI, HOp::kAndRM},
            {HOp::kOrRR, HOp::kOrRI, HOp::kOrRM},
            {HOp::kXorRR, HOp::kXorRI, HOp::kXorRM},
            {HOp::kImulRR, HOp::kImulRI, HOp::kImulRM},
        };
        int row = in.op == MOp::kAdd   ? 0
                  : in.op == MOp::kSub ? 1
                  : in.op == MOp::kAnd ? 2
                  : in.op == MOp::kOr  ? 3
                  : in.op == MOp::kXor ? 4
                                       : 5;
        Use(d, kAluTable[row][shape]);
        return;
      }
      break;

    case MOp::kNeg:
      if (IsR(in.dst)) {
        d->a = static_cast<uint8_t>(in.dst.gpr);
        Use(d, HOp::kNegR);
        return;
      }
      break;
    case MOp::kNot:
      if (IsR(in.dst)) {
        d->a = static_cast<uint8_t>(in.dst.gpr);
        Use(d, HOp::kNotR);
        return;
      }
      break;

    case MOp::kShl:
    case MOp::kShr:
    case MOp::kSar:
      if (IsR(in.dst) && in.src2.is_imm()) {
        d->a = static_cast<uint8_t>(in.dst.gpr);
        // Pre-masked to the operation width, as the unfused path does at exec.
        d->imm = static_cast<int64_t>(static_cast<uint64_t>(in.src2.imm) &
                                      (uint32_t{in.width} * 8 - 1));
        Use(d, in.op == MOp::kShl   ? HOp::kShlRI
               : in.op == MOp::kShr ? HOp::kShrRI
                                    : HOp::kSarRI);
        return;
      }
      break;

    case MOp::kCmp:
      if (IsR(in.dst)) {
        d->a = static_cast<uint8_t>(in.dst.gpr);
        if (IsR(in.src)) {
          d->b = static_cast<uint8_t>(in.src.gpr);
          Use(d, HOp::kCmpRR);
          return;
        }
        if (IsI(in.src)) {
          d->imm =
              static_cast<int64_t>(TruncToWidth(static_cast<uint64_t>(in.src.imm), in.width));
          Use(d, HOp::kCmpRI);
          return;
        }
        if (IsM(in.src)) {
          d->mem = LowerMem(in.src.mem);
          Use(d, HOp::kCmpRM);
          return;
        }
      }
      break;

    case MOp::kTest:
      if (IsR(in.dst)) {
        d->a = static_cast<uint8_t>(in.dst.gpr);
        if (IsR(in.src)) {
          d->b = static_cast<uint8_t>(in.src.gpr);
          Use(d, HOp::kTestRR);
          return;
        }
        if (IsI(in.src)) {
          d->imm =
              static_cast<int64_t>(TruncToWidth(static_cast<uint64_t>(in.src.imm), in.width));
          Use(d, HOp::kTestRI);
          return;
        }
      }
      break;

    case MOp::kSetcc:
      d->a = static_cast<uint8_t>(in.dst.gpr);
      d->cond = static_cast<uint8_t>(in.cond);
      Use(d, HOp::kSetcc);
      return;
    case MOp::kCdq:
      Use(d, HOp::kCdq);
      return;
    case MOp::kIdiv:
    case MOp::kDiv:
      if (IsR(in.src)) {
        d->b = static_cast<uint8_t>(in.src.gpr);
        Use(d, in.op == MOp::kIdiv ? HOp::kIdivR : HOp::kDivR);
        return;
      }
      break;
    case MOp::kMovsxd:
      if (IsR(in.src)) {
        d->a = static_cast<uint8_t>(in.dst.gpr);
        d->b = static_cast<uint8_t>(in.src.gpr);
        Use(d, HOp::kMovsxdRR);
        return;
      }
      break;

    case MOp::kMovsd:
    case MOp::kMovss:
      d->width = in.op == MOp::kMovss ? 4 : 8;
      if (IsX(in.dst)) {
        d->a = static_cast<uint8_t>(in.dst.xmm);
        if (IsX(in.src)) {
          d->b = static_cast<uint8_t>(in.src.xmm);
          Use(d, HOp::kFpMovXX);
          return;
        }
        if (IsM(in.src)) {
          d->mem = LowerMem(in.src.mem);
          Use(d, HOp::kFpMovXM);
          return;
        }
      } else if (IsM(in.dst) && IsX(in.src)) {
        d->b = static_cast<uint8_t>(in.src.xmm);
        d->mem = LowerMem(in.dst.mem);
        Use(d, HOp::kFpMovMX);
        return;
      }
      break;

    case MOp::kAddsd:
    case MOp::kSubsd:
    case MOp::kMulsd:
    case MOp::kDivsd:
      if (IsX(in.dst)) {
        d->a = static_cast<uint8_t>(in.dst.xmm);
        static constexpr HOp kFpTable[4][2] = {
            {HOp::kAddsdXX, HOp::kAddsdXM},
            {HOp::kSubsdXX, HOp::kSubsdXM},
            {HOp::kMulsdXX, HOp::kMulsdXM},
            {HOp::kDivsdXX, HOp::kDivsdXM},
        };
        int row = in.op == MOp::kAddsd   ? 0
                  : in.op == MOp::kSubsd ? 1
                  : in.op == MOp::kMulsd ? 2
                                         : 3;
        if (IsX(in.src)) {
          d->b = static_cast<uint8_t>(in.src.xmm);
          Use(d, kFpTable[row][0]);
          return;
        }
        if (IsM(in.src)) {
          d->mem = LowerMem(in.src.mem);
          Use(d, kFpTable[row][1]);
          return;
        }
      }
      break;

    case MOp::kSqrtsd:
      if (IsX(in.dst) && IsX(in.src)) {
        d->a = static_cast<uint8_t>(in.dst.xmm);
        d->b = static_cast<uint8_t>(in.src.xmm);
        Use(d, HOp::kSqrtsdXX);
        return;
      }
      break;

    case MOp::kUcomisd:
    case MOp::kUcomiss:
      if (IsX(in.dst) && IsX(in.src)) {
        d->width = in.op == MOp::kUcomiss ? 4 : 8;
        d->a = static_cast<uint8_t>(in.dst.xmm);
        d->b = static_cast<uint8_t>(in.src.xmm);
        Use(d, HOp::kUcomisXX);
        return;
      }
      break;

    case MOp::kCvtsi2sd:
      if (IsX(in.dst) && IsR(in.src)) {
        d->a = static_cast<uint8_t>(in.dst.xmm);
        d->b = static_cast<uint8_t>(in.src.gpr);
        Use(d, HOp::kCvtsi2sdXR);
        return;
      }
      break;
    case MOp::kCvttsd2si:
      if (IsR(in.dst) && IsX(in.src)) {
        d->a = static_cast<uint8_t>(in.dst.gpr);
        d->b = static_cast<uint8_t>(in.src.xmm);
        Use(d, HOp::kCvttsd2siRX);
        return;
      }
      break;

    case MOp::kMovqToXmm:
      d->a = static_cast<uint8_t>(in.dst.xmm);
      d->b = static_cast<uint8_t>(in.src.gpr);
      Use(d, HOp::kMovqToXmm);
      return;
    case MOp::kMovqFromXmm:
      d->a = static_cast<uint8_t>(in.dst.gpr);
      d->b = static_cast<uint8_t>(in.src.xmm);
      Use(d, HOp::kMovqFromXmm);
      return;

    default:
      break;
  }
  Use(d, HOp::kGeneric);
}

}  // namespace

DecodedProgram Predecode(const MProgram& program) {
  telemetry::Span span("predecode", "machine");
  const auto t0 = std::chrono::steady_clock::now();
  DecodedProgram dp;
  dp.program = &program;
  dp.funcs.resize(program.funcs.size());
  for (size_t fi = 0; fi < program.funcs.size(); fi++) {
    const MFunction& f = program.funcs[fi];
    DecodedFunc& df = dp.funcs[fi];
    const size_t n = f.code.size();
    dp.stats.instrs += n;

    // Branch-target marks: a jcc that is itself a target cannot be consumed
    // into a fused pair (jumping to it must execute only the jcc).
    std::vector<uint8_t> is_target(n + 1, 0);
    for (const MInstr& in : f.code) {
      if (in.op == MOp::kJmp || in.op == MOp::kJcc) {
        is_target[in.label <= n ? in.label : n] = 1;
      }
    }

    // Pass 1: fusion decisions + the original-pc -> decoded-index map.
    // fuse_at: 0 = unfused, 1 = cmp|test+jcc macro-op, 2 = data pair.
    df.pc_to_index.assign(n, 0);
    std::vector<uint8_t> fuse_at(n, 0);
    uint32_t record_count = 0;
    for (size_t i = 0; i < n; i++) {
      df.pc_to_index[i] = record_count;
      uint8_t fuse = 0;
      if (i + 1 < n && !is_target[i + 1]) {
        if ((f.code[i].op == MOp::kCmp || f.code[i].op == MOp::kTest) &&
            f.code[i + 1].op == MOp::kJcc) {
          fuse = 1;
        } else if (DataPairHandler(f.code[i], f.code[i + 1]) != HOp::kCount) {
          fuse = 2;
        }
      }
      if (fuse != 0) {
        fuse_at[i] = fuse;
        df.pc_to_index[i + 1] = record_count;  // unreachable as an entry point
        i++;
      }
      record_count++;
    }
    const uint32_t sentinel = record_count;
    auto map_label = [&](uint32_t label) -> uint32_t {
      // Off-the-end (or out-of-range) targets land on the kEndOfCode
      // sentinel, which raises the legacy loop's "pc out of range" trap.
      return label < n ? df.pc_to_index[label] : sentinel;
    };

    // Pass 2: emit records.
    df.code.reserve(record_count + 1);
    for (size_t i = 0; i < n; i++) {
      DInstr d;
      const MInstr& in = f.code[i];
      d.orig = &in;
      d.fetch_addr = f.code_base + f.instr_offsets[i];
      d.fetch_size = EncodedSize(in);
      d.fetch_lines = LineSpan(d.fetch_addr, d.fetch_size);
      if (fuse_at[i] == 1) {
        const MInstr& jcc = f.code[i + 1];
        LowerFusedPrimary(in, &d);
        d.cond = static_cast<uint8_t>(jcc.cond);
        d.target = map_label(jcc.label);
        d.fetch_addr2 = f.code_base + f.instr_offsets[i + 1];
        d.fetch_size2 = EncodedSize(jcc);
        d.fetch_lines2 = LineSpan(d.fetch_addr2, d.fetch_size2);
        dp.stats.fused_pairs++;
        if (d.handler == static_cast<uint16_t>(HOp::kFusedGenJcc)) {
          dp.stats.generic++;
        }
        i++;
      } else if (fuse_at[i] == 2) {
        const MInstr& second = f.code[i + 1];
        LowerFusedDataPair(in, second, &d);
        d.fetch_addr2 = f.code_base + f.instr_offsets[i + 1];
        d.fetch_size2 = EncodedSize(second);
        d.fetch_lines2 = LineSpan(d.fetch_addr2, d.fetch_size2);
        dp.stats.fused_pairs++;
        i++;
      } else {
        LowerOne(in, &d, map_label);
        if (d.handler == static_cast<uint16_t>(HOp::kGeneric)) {
          dp.stats.generic++;
        }
      }
      df.code.push_back(d);
    }
    dp.stats.records += df.code.size();
    DInstr end;
    end.handler = static_cast<uint16_t>(HOp::kEndOfCode);
    df.code.push_back(end);
  }
  static telemetry::Histogram* predecode_ns =
      telemetry::MetricsRegistry::Global().GetHistogram("machine.predecode_ns");
  predecode_ns->Record(static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                                 std::chrono::steady_clock::now() - t0)
                                                 .count()));
  span.arg("instrs", dp.stats.instrs);
  span.arg("records", dp.stats.records);
  span.arg("fused_pairs", dp.stats.fused_pairs);
  return dp;
}

// ---------------------------------------------------------------------------
// The execution core. One set of handler bodies, two dispatch backends:
// computed goto (labels as values) or a portable switch. NSF_CASE opens a
// handler and charges the instruction fetch + retirement + fuel (the shared
// prologue); NSF_NEXT transfers to the record at the given decoded index.
// ---------------------------------------------------------------------------

TrapKind SimMachine::ExecDecoded() {
  const DecodedProgram& dp = *decoded_;
  const uint64_t fuel = fuel_ != 0 ? fuel_ : kSimDefaultFuel;
  const DecodedFunc* dfunc = &dp.funcs[cur_func_];
  const DInstr* code = dfunc->code.data();
  uint32_t dpc = 0;
  const DInstr* d = code;

#define NSF_PROLOGUE(fa, fsz, flines)                       \
  do {                                                      \
    if ((flines) == 1) {                                    \
      if (!l1i_.Access(fa)) {                               \
        counters_.l1i_misses++;                             \
        counters_.micro_cycles += cost_.l1_miss;            \
        if (!l2_.Access(fa)) {                              \
          counters_.l2_misses++;                            \
          counters_.micro_cycles += cost_.l2_miss;          \
        }                                                   \
      }                                                     \
    } else {                                                \
      FetchL1i((fa), (fsz));                                \
    }                                                       \
    counters_.instructions_retired++;                       \
    if (counters_.instructions_retired > fuel) {            \
      pending_trap_ = TrapKind::kFuelExhausted;             \
      trap_msg_ = "instruction budget exceeded";            \
      return pending_trap_;                                 \
    }                                                       \
  } while (0)

// Per-handler retire counting (-DNSF_DISPATCH_STATS=ON only): lives in
// NSF_CASE, not NSF_PROLOGUE, so a fused macro-op — whose jcc tail runs the
// prologue a second time — counts ONCE for its fused handler. kEndOfCode
// (NSF_CASE_RAW) is a trap sentinel, not a retirement, and is not counted.
#ifdef NSF_DISPATCH_STATS
#define NSF_COUNT_DISPATCH()                                                      \
  do {                                                                            \
    dispatch_retires_[d->handler]++;                                              \
    if (nsf_prev_handler < static_cast<uint16_t>(HOp::kCount)) {                  \
      dispatch_pairs_[nsf_prev_handler * kMaxDispatchHandlers + d->handler]++;    \
    }                                                                             \
    nsf_prev_handler = d->handler;                                                \
  } while (0)
  uint16_t nsf_prev_handler = static_cast<uint16_t>(HOp::kCount);
#else
#define NSF_COUNT_DISPATCH() ((void)0)
#endif

// Sampled always-on profiling (continuous tiering, see SimMachine::
// set_sampler): every sample_period_-th back-edge/call records one sample
// into machine-local vectors. When sampling is off (period 0, the default)
// each hook is one predictable compare against a cached member; the cold
// RecordSample slice re-arms the countdown out of line. The hooks read only
// sampling-local state — PerfCounters are bit-identical with sampling on,
// off, or the sink absent.
#define NSF_SAMPLE_CALL()                                          \
  do {                                                             \
    if (sample_period_ != 0 && --sample_tick_ == 0) {              \
      RecordSample(cur_func_, /*backedge=*/false);                 \
    }                                                              \
  } while (0)
#define NSF_SAMPLE_BACKEDGE(tgt)                                   \
  do {                                                             \
    if (sample_period_ != 0 && (tgt) <= dpc && --sample_tick_ == 0) { \
      RecordSample(cur_func_, /*backedge=*/true);                  \
    }                                                              \
  } while (0)

#if NSF_COMPUTED_GOTO
  static const void* const kLabels[] = {
#define NSF_H(name) &&L_##name,
      NSF_HANDLER_LIST(NSF_H)
#undef NSF_H
  };
#define NSF_CASE(name) \
  L_##name:            \
  NSF_COUNT_DISPATCH(); \
  NSF_PROLOGUE(d->fetch_addr, d->fetch_size, d->fetch_lines);
#define NSF_CASE_RAW(name) L_##name:
#define NSF_NEXT(n)              \
  do {                           \
    dpc = (n);                   \
    d = code + dpc;              \
    goto* kLabels[d->handler];   \
  } while (0)
  goto* kLabels[d->handler];
#else
#define NSF_CASE(name)  \
  case HOp::k##name:    \
    NSF_COUNT_DISPATCH(); \
    NSF_PROLOGUE(d->fetch_addr, d->fetch_size, d->fetch_lines);
#define NSF_CASE_RAW(name) case HOp::k##name:
#define NSF_NEXT(n)     \
  do {                  \
    dpc = (n);          \
    goto nsf_dispatch;  \
  } while (0)
nsf_dispatch:
  d = code + dpc;
  switch (static_cast<HOp>(d->handler)) {
#endif

  // --- control ---

  NSF_CASE_RAW(EndOfCode) {
    // Running (or jumping) off the end of a function: the legacy loop's
    // bounds check, without the per-instruction cost. No fetch, no retire.
    pending_trap_ = TrapKind::kHostError;
    trap_msg_ = StrFormat("pc out of range in %s", program_->funcs[cur_func_].name.c_str());
    return pending_trap_;
  }

  NSF_CASE(Generic) {
    if (!ExecGenericOp(*d->orig)) {
      return pending_trap_;
    }
    NSF_NEXT(dpc + 1);
  }

  NSF_CASE(Jmp) {
    counters_.micro_cycles += cost_.branch + cost_.branch_taken_extra;
    counters_.branches_retired++;
    counters_.taken_branches++;
    NSF_SAMPLE_BACKEDGE(d->target);
    NSF_NEXT(d->target);
  }

  NSF_CASE(Jcc) {
    counters_.micro_cycles += cost_.branch;
    counters_.branches_retired++;
    counters_.cond_branches_retired++;
    if (EvalCond(static_cast<Cond>(d->cond))) {
      counters_.taken_branches++;
      counters_.micro_cycles += cost_.branch_taken_extra;
      NSF_SAMPLE_BACKEDGE(d->target);
      NSF_NEXT(d->target);
    }
    NSF_NEXT(dpc + 1);
  }

  NSF_CASE(Call) {
    counters_.micro_cycles += cost_.call;
    counters_.branches_retired++;
    counters_.calls++;
    // Return-address push (architecturally a store).
    uint64_t rsp = gpr(Gpr::kRsp) - 8;
    set_gpr(Gpr::kRsp, rsp);
    uint8_t* p;
    if (!DataAccess(rsp, 8, true, &p)) {
      return pending_trap_;
    }
    if (frames_.size() >= 4096) {
      pending_trap_ = TrapKind::kCallStackExhausted;
      return pending_trap_;
    }
    frames_.push_back(Frame{cur_func_, dpc + 1});
    cur_func_ = d->target;
    dfunc = &dp.funcs[cur_func_];
    code = dfunc->code.data();
    NSF_SAMPLE_CALL();
    NSF_NEXT(0);
  }

  NSF_CASE(CallReg) {
    counters_.micro_cycles += cost_.call;
    counters_.branches_retired++;
    counters_.calls++;
    uint64_t target = gprs_[d->a];
    if (target >= program_->funcs.size()) {
      pending_trap_ = TrapKind::kIndirectCallOutOfBounds;
      trap_msg_ = "bad indirect target";
      return pending_trap_;
    }
    uint64_t rsp = gpr(Gpr::kRsp) - 8;
    set_gpr(Gpr::kRsp, rsp);
    uint8_t* p;
    if (!DataAccess(rsp, 8, true, &p)) {
      return pending_trap_;
    }
    if (frames_.size() >= 4096) {
      pending_trap_ = TrapKind::kCallStackExhausted;
      return pending_trap_;
    }
    frames_.push_back(Frame{cur_func_, dpc + 1});
    cur_func_ = static_cast<uint32_t>(target);
    dfunc = &dp.funcs[cur_func_];
    code = dfunc->code.data();
    NSF_SAMPLE_CALL();
    NSF_NEXT(0);
  }

  NSF_CASE(Ret) {
    counters_.micro_cycles += cost_.ret;
    counters_.branches_retired++;
    if (frames_.empty()) {
      return TrapKind::kNone;  // outermost return: done
    }
    // Return-address pop (architecturally a load).
    uint8_t* p;
    if (!DataAccess(gpr(Gpr::kRsp), 8, false, &p)) {
      return pending_trap_;
    }
    set_gpr(Gpr::kRsp, gpr(Gpr::kRsp) + 8);
    Frame f = frames_.back();
    frames_.pop_back();
    cur_func_ = f.func;
    dfunc = &dp.funcs[cur_func_];
    code = dfunc->code.data();
    NSF_NEXT(f.ret_pc);
  }

  NSF_CASE(CallHostHook) {
    counters_.micro_cycles += cost_.host_call;
    counters_.branches_retired++;
    counters_.calls++;
    if (d->target < hooks_.size() && hooks_[d->target]) {
      hooks_[d->target](*this);
      if (pending_trap_ != TrapKind::kNone) {
        return pending_trap_;
      }
    } else {
      pending_trap_ = TrapKind::kHostError;
      trap_msg_ = StrFormat("no host hook %u", d->target);
      return pending_trap_;
    }
    NSF_NEXT(dpc + 1);
  }

  NSF_CASE(CallHostTrap) {
    counters_.micro_cycles += cost_.host_call;
    counters_.branches_retired++;
    counters_.calls++;
    pending_trap_ = static_cast<TrapKind>(d->imm);
    trap_msg_ = "trap stub";
    return pending_trap_;
  }

  NSF_CASE(CallHostMemSize) {
    counters_.micro_cycles += cost_.host_call;
    counters_.branches_retired++;
    counters_.calls++;
    set_gpr(Gpr::kRax, heap_pages());
    NSF_NEXT(dpc + 1);
  }

  NSF_CASE(CallHostMemGrow) {
    counters_.micro_cycles += cost_.host_call;
    counters_.branches_retired++;
    counters_.calls++;
    uint64_t delta = TruncToWidth(gpr(Gpr::kRdi), 4);
    uint64_t old_pages = heap_pages();
    if (old_pages + delta > max_heap_pages_) {
      set_gpr(Gpr::kRax, TruncToWidth(~uint64_t{0}, 4));
    } else {
      heap_.resize((old_pages + delta) * 65536);
      set_gpr(Gpr::kRax, old_pages);
    }
    NSF_NEXT(dpc + 1);
  }

  // --- fused cmp|test + jcc ---
  // The primary executes exactly like the unfused compare — including
  // writing the compare state, which later setcc/jcc may read — then the
  // second element is fetched/retired/fueled and branches.

#define NSF_FUSED_TAIL()                                            \
  NSF_PROLOGUE(d->fetch_addr2, d->fetch_size2, d->fetch_lines2);    \
  counters_.micro_cycles += cost_.branch;                           \
  counters_.branches_retired++;                                     \
  counters_.cond_branches_retired++;                                \
  if (EvalCond(static_cast<Cond>(d->cond))) {                       \
    counters_.taken_branches++;                                     \
    counters_.micro_cycles += cost_.branch_taken_extra;             \
    NSF_SAMPLE_BACKEDGE(d->target);                                 \
    NSF_NEXT(d->target);                                            \
  }                                                                 \
  NSF_NEXT(dpc + 1)

  NSF_CASE(FusedCmpJccRR) {
    counters_.micro_cycles += cost_.simple;
    uint64_t av = TruncToWidth(gprs_[d->a], d->width);
    uint64_t bv = TruncToWidth(gprs_[d->b], d->width);
    cmp_kind_ = CmpKind::kInt;
    cmp_ua_ = av;
    cmp_ub_ = bv;
    cmp_sa_ = SignExtend(av, d->width);
    cmp_sb_ = SignExtend(bv, d->width);
    NSF_FUSED_TAIL();
  }

  NSF_CASE(FusedCmpJccRI) {
    counters_.micro_cycles += cost_.simple;
    uint64_t av = TruncToWidth(gprs_[d->a], d->width);
    uint64_t bv = static_cast<uint64_t>(d->imm);
    cmp_kind_ = CmpKind::kInt;
    cmp_ua_ = av;
    cmp_ub_ = bv;
    cmp_sa_ = SignExtend(av, d->width);
    cmp_sb_ = SignExtend(bv, d->width);
    NSF_FUSED_TAIL();
  }

  NSF_CASE(FusedCmpJccRM) {
    counters_.micro_cycles += cost_.simple;
    uint64_t av = TruncToWidth(gprs_[d->a], d->width);
    uint8_t* p;
    if (!DataAccess(DAddr(gprs_, d->mem), d->width, false, &p)) {
      return pending_trap_;
    }
    uint64_t bv = 0;
    std::memcpy(&bv, p, d->width);
    cmp_kind_ = CmpKind::kInt;
    cmp_ua_ = av;
    cmp_ub_ = bv;
    cmp_sa_ = SignExtend(av, d->width);
    cmp_sb_ = SignExtend(bv, d->width);
    NSF_FUSED_TAIL();
  }

  NSF_CASE(FusedTestJccRR) {
    counters_.micro_cycles += cost_.simple;
    uint64_t av = TruncToWidth(gprs_[d->a], d->width);
    uint64_t bv = TruncToWidth(gprs_[d->b], d->width);
    cmp_kind_ = CmpKind::kTest;
    cmp_test_ = av & bv;
    cmp_test_sign_ = SignExtend(cmp_test_, d->width) < 0;
    NSF_FUSED_TAIL();
  }

  NSF_CASE(FusedTestJccRI) {
    counters_.micro_cycles += cost_.simple;
    uint64_t av = TruncToWidth(gprs_[d->a], d->width);
    uint64_t bv = static_cast<uint64_t>(d->imm);
    cmp_kind_ = CmpKind::kTest;
    cmp_test_ = av & bv;
    cmp_test_sign_ = SignExtend(cmp_test_, d->width) < 0;
    NSF_FUSED_TAIL();
  }

  NSF_CASE(FusedGenJcc) {
    if (!ExecGenericOp(*d->orig)) {
      return pending_trap_;
    }
    NSF_FUSED_TAIL();
  }

#undef NSF_FUSED_TAIL

  // --- fused data-movement/ALU pairs (round 2) ---
  // Chosen from the -DNSF_DISPATCH_STATS adjacent-pair table (mov-imm+mov
  // 15%, load+mov 11%, mov+add 10% of dynamic dispatches). Each first element
  // executes exactly like its unfused handler, then the second element runs
  // its own prologue (fetch + retire + fuel) and body — the counter stream is
  // bit-identical to the unfused pair. The second element is always reg-reg,
  // packed into the branch-free target field as dst | src << 8 | width << 16.

#define NSF_PAIR2_DST (d->target & 0xff)
#define NSF_PAIR2_SRC ((d->target >> 8) & 0xff)
#define NSF_PAIR2_W ((d->target >> 16) & 0xff)

  NSF_CASE(FusedMovRIMovRR) {
    counters_.micro_cycles += cost_.simple;
    gprs_[d->a] = static_cast<uint64_t>(d->imm);
    NSF_PROLOGUE(d->fetch_addr2, d->fetch_size2, d->fetch_lines2);
    counters_.micro_cycles += cost_.simple;
    gprs_[NSF_PAIR2_DST] = TruncToWidth(gprs_[NSF_PAIR2_SRC], NSF_PAIR2_W);
    NSF_NEXT(dpc + 1);
  }

  NSF_CASE(FusedLoadZMovRR) {
    counters_.micro_cycles += cost_.simple;  // load cost added in DataAccess
    uint8_t* p;
    if (!DataAccess(DAddr(gprs_, d->mem), d->width, false, &p)) {
      return pending_trap_;
    }
    uint64_t v = 0;
    std::memcpy(&v, p, d->width);
    gprs_[d->a] = v;
    NSF_PROLOGUE(d->fetch_addr2, d->fetch_size2, d->fetch_lines2);
    counters_.micro_cycles += cost_.simple;
    gprs_[NSF_PAIR2_DST] = TruncToWidth(gprs_[NSF_PAIR2_SRC], NSF_PAIR2_W);
    NSF_NEXT(dpc + 1);
  }

  NSF_CASE(FusedMovRRAddRR) {
    counters_.micro_cycles += cost_.simple;
    gprs_[d->a] = TruncToWidth(gprs_[d->b], d->width);
    NSF_PROLOGUE(d->fetch_addr2, d->fetch_size2, d->fetch_lines2);
    counters_.micro_cycles += cost_.simple;
    const uint32_t w2 = NSF_PAIR2_W;
    uint64_t av = TruncToWidth(gprs_[NSF_PAIR2_DST], w2);
    uint64_t bv = TruncToWidth(gprs_[NSF_PAIR2_SRC], w2);
    uint64_t rv = av + bv;
    gprs_[NSF_PAIR2_DST] = w2 == 8 ? rv : TruncToWidth(rv, w2);
    NSF_NEXT(dpc + 1);
  }

#undef NSF_PAIR2_DST
#undef NSF_PAIR2_SRC
#undef NSF_PAIR2_W

  // --- data movement ---

  NSF_CASE(MovRR) {
    counters_.micro_cycles += cost_.simple;
    gprs_[d->a] = TruncToWidth(gprs_[d->b], d->width);
    NSF_NEXT(dpc + 1);
  }

  NSF_CASE(MovRI) {
    counters_.micro_cycles += cost_.simple;
    gprs_[d->a] = static_cast<uint64_t>(d->imm);
    NSF_NEXT(dpc + 1);
  }

  NSF_CASE(MovRM) {
    counters_.micro_cycles += cost_.simple;
    uint8_t* p;
    if (!DataAccess(DAddr(gprs_, d->mem), d->width, false, &p)) {
      return pending_trap_;
    }
    uint64_t v = 0;
    std::memcpy(&v, p, d->width);
    gprs_[d->a] = v;
    NSF_NEXT(dpc + 1);
  }

  NSF_CASE(MovMR) {
    counters_.micro_cycles += cost_.simple;
    uint64_t t = TruncToWidth(gprs_[d->b], d->width);
    uint8_t* p;
    if (!DataAccess(DAddr(gprs_, d->mem), d->width, true, &p)) {
      return pending_trap_;
    }
    std::memcpy(p, &t, d->width);
    NSF_NEXT(dpc + 1);
  }

  NSF_CASE(MovMI) {
    counters_.micro_cycles += cost_.simple;
    uint64_t t = static_cast<uint64_t>(d->imm);
    uint8_t* p;
    if (!DataAccess(DAddr(gprs_, d->mem), d->width, true, &p)) {
      return pending_trap_;
    }
    std::memcpy(p, &t, d->width);
    NSF_NEXT(dpc + 1);
  }

  NSF_CASE(LoadZ) {
    counters_.micro_cycles += cost_.simple;  // load cost added in DataAccess
    uint8_t* p;
    if (!DataAccess(DAddr(gprs_, d->mem), d->width, false, &p)) {
      return pending_trap_;
    }
    uint64_t v = 0;
    std::memcpy(&v, p, d->width);
    gprs_[d->a] = v;
    NSF_NEXT(dpc + 1);
  }

  NSF_CASE(LoadS) {
    counters_.micro_cycles += cost_.simple;
    uint8_t* p;
    if (!DataAccess(DAddr(gprs_, d->mem), d->width, false, &p)) {
      return pending_trap_;
    }
    uint64_t v = 0;
    std::memcpy(&v, p, d->width);
    gprs_[d->a] = static_cast<uint64_t>(SignExtend(v, d->width));
    NSF_NEXT(dpc + 1);
  }

  NSF_CASE(StoreR) {
    counters_.micro_cycles += cost_.simple;
    uint64_t v = TruncToWidth(gprs_[d->b], d->width);
    uint8_t* p;
    if (!DataAccess(DAddr(gprs_, d->mem), d->width, true, &p)) {
      return pending_trap_;
    }
    std::memcpy(p, &v, d->width);
    NSF_NEXT(dpc + 1);
  }

  NSF_CASE(StoreI) {
    counters_.micro_cycles += cost_.simple;
    uint64_t v = static_cast<uint64_t>(d->imm);
    uint8_t* p;
    if (!DataAccess(DAddr(gprs_, d->mem), d->width, true, &p)) {
      return pending_trap_;
    }
    std::memcpy(p, &v, d->width);
    NSF_NEXT(dpc + 1);
  }

  NSF_CASE(Lea) {
    counters_.micro_cycles += cost_.simple;
    uint64_t ea = DAddr(gprs_, d->mem);
    gprs_[d->a] = d->width == 8 ? ea : TruncToWidth(ea, 4);
    NSF_NEXT(dpc + 1);
  }

  NSF_CASE(Push) {
    counters_.micro_cycles += cost_.simple;
    uint64_t rsp = gpr(Gpr::kRsp) - 8;
    set_gpr(Gpr::kRsp, rsp);
    uint8_t* p;
    if (!DataAccess(rsp, 8, true, &p)) {
      return pending_trap_;
    }
    uint64_t v = gprs_[d->a];
    std::memcpy(p, &v, 8);
    NSF_NEXT(dpc + 1);
  }

  NSF_CASE(Pop) {
    counters_.micro_cycles += cost_.simple;
    uint8_t* p;
    if (!DataAccess(gpr(Gpr::kRsp), 8, false, &p)) {
      return pending_trap_;
    }
    uint64_t v;
    std::memcpy(&v, p, 8);
    gprs_[d->a] = v;
    set_gpr(Gpr::kRsp, gpr(Gpr::kRsp) + 8);
    NSF_NEXT(dpc + 1);
  }

  NSF_CASE(Xchg) {
    counters_.micro_cycles += cost_.simple;
    uint64_t t = gprs_[d->a];
    gprs_[d->a] = gprs_[d->b];
    gprs_[d->b] = t;
    NSF_NEXT(dpc + 1);
  }

  // --- integer ALU ---

#define NSF_ALU_BODY(rv_expr)                                          \
  do {                                                                 \
    uint64_t rv = (rv_expr);                                           \
    gprs_[d->a] = d->width == 8 ? rv : TruncToWidth(rv, d->width);     \
  } while (0)

#define NSF_ALU(name, OP)                                              \
  NSF_CASE(name##RR) {                                                 \
    counters_.micro_cycles += cost_.simple;                            \
    uint64_t av = TruncToWidth(gprs_[d->a], d->width);                 \
    uint64_t bv = TruncToWidth(gprs_[d->b], d->width);                 \
    NSF_ALU_BODY(av OP bv);                                            \
    NSF_NEXT(dpc + 1);                                                 \
  }                                                                    \
  NSF_CASE(name##RI) {                                                 \
    counters_.micro_cycles += cost_.simple;                            \
    uint64_t av = TruncToWidth(gprs_[d->a], d->width);                 \
    uint64_t bv = static_cast<uint64_t>(d->imm);                       \
    NSF_ALU_BODY(av OP bv);                                            \
    NSF_NEXT(dpc + 1);                                                 \
  }                                                                    \
  NSF_CASE(name##RM) {                                                 \
    counters_.micro_cycles += cost_.simple;                            \
    uint64_t av = TruncToWidth(gprs_[d->a], d->width);                 \
    uint8_t* p;                                                        \
    if (!DataAccess(DAddr(gprs_, d->mem), d->width, false, &p)) {      \
      return pending_trap_;                                            \
    }                                                                  \
    uint64_t bv = 0;                                                   \
    std::memcpy(&bv, p, d->width);                                     \
    NSF_ALU_BODY(av OP bv);                                            \
    NSF_NEXT(dpc + 1);                                                 \
  }

  NSF_ALU(Add, +)
  NSF_ALU(Sub, -)
  NSF_ALU(And, &)
  NSF_ALU(Or, |)
  NSF_ALU(Xor, ^)

#undef NSF_ALU

  NSF_CASE(ImulRR) {
    counters_.micro_cycles += cost_.imul;
    uint64_t av = TruncToWidth(gprs_[d->a], d->width);
    uint64_t bv = TruncToWidth(gprs_[d->b], d->width);
    NSF_ALU_BODY(av * bv);
    NSF_NEXT(dpc + 1);
  }

  NSF_CASE(ImulRI) {
    counters_.micro_cycles += cost_.imul;
    uint64_t av = TruncToWidth(gprs_[d->a], d->width);
    uint64_t bv = static_cast<uint64_t>(d->imm);
    NSF_ALU_BODY(av * bv);
    NSF_NEXT(dpc + 1);
  }

  NSF_CASE(ImulRM) {
    counters_.micro_cycles += cost_.imul;
    uint64_t av = TruncToWidth(gprs_[d->a], d->width);
    uint8_t* p;
    if (!DataAccess(DAddr(gprs_, d->mem), d->width, false, &p)) {
      return pending_trap_;
    }
    uint64_t bv = 0;
    std::memcpy(&bv, p, d->width);
    NSF_ALU_BODY(av * bv);
    NSF_NEXT(dpc + 1);
  }

  NSF_CASE(NegR) {
    counters_.micro_cycles += cost_.simple;
    uint64_t av = TruncToWidth(gprs_[d->a], d->width);
    NSF_ALU_BODY(0 - av);
    NSF_NEXT(dpc + 1);
  }

  NSF_CASE(NotR) {
    counters_.micro_cycles += cost_.simple;
    uint64_t av = TruncToWidth(gprs_[d->a], d->width);
    NSF_ALU_BODY(~av);
    NSF_NEXT(dpc + 1);
  }

  NSF_CASE(ShlRI) {
    counters_.micro_cycles += cost_.simple;
    uint64_t av = TruncToWidth(gprs_[d->a], d->width);
    NSF_ALU_BODY(av << d->imm);
    NSF_NEXT(dpc + 1);
  }

  NSF_CASE(ShrRI) {
    counters_.micro_cycles += cost_.simple;
    uint64_t av = TruncToWidth(gprs_[d->a], d->width);
    NSF_ALU_BODY(av >> d->imm);
    NSF_NEXT(dpc + 1);
  }

  NSF_CASE(SarRI) {
    counters_.micro_cycles += cost_.simple;
    uint64_t av = TruncToWidth(gprs_[d->a], d->width);
    NSF_ALU_BODY(static_cast<uint64_t>(SignExtend(av, d->width) >> d->imm));
    NSF_NEXT(dpc + 1);
  }

#undef NSF_ALU_BODY

  NSF_CASE(CmpRR) {
    counters_.micro_cycles += cost_.simple;
    uint64_t av = TruncToWidth(gprs_[d->a], d->width);
    uint64_t bv = TruncToWidth(gprs_[d->b], d->width);
    cmp_kind_ = CmpKind::kInt;
    cmp_ua_ = av;
    cmp_ub_ = bv;
    cmp_sa_ = SignExtend(av, d->width);
    cmp_sb_ = SignExtend(bv, d->width);
    NSF_NEXT(dpc + 1);
  }

  NSF_CASE(CmpRI) {
    counters_.micro_cycles += cost_.simple;
    uint64_t av = TruncToWidth(gprs_[d->a], d->width);
    uint64_t bv = static_cast<uint64_t>(d->imm);
    cmp_kind_ = CmpKind::kInt;
    cmp_ua_ = av;
    cmp_ub_ = bv;
    cmp_sa_ = SignExtend(av, d->width);
    cmp_sb_ = SignExtend(bv, d->width);
    NSF_NEXT(dpc + 1);
  }

  NSF_CASE(CmpRM) {
    counters_.micro_cycles += cost_.simple;
    uint64_t av = TruncToWidth(gprs_[d->a], d->width);
    uint8_t* p;
    if (!DataAccess(DAddr(gprs_, d->mem), d->width, false, &p)) {
      return pending_trap_;
    }
    uint64_t bv = 0;
    std::memcpy(&bv, p, d->width);
    cmp_kind_ = CmpKind::kInt;
    cmp_ua_ = av;
    cmp_ub_ = bv;
    cmp_sa_ = SignExtend(av, d->width);
    cmp_sb_ = SignExtend(bv, d->width);
    NSF_NEXT(dpc + 1);
  }

  NSF_CASE(TestRR) {
    counters_.micro_cycles += cost_.simple;
    uint64_t av = TruncToWidth(gprs_[d->a], d->width);
    uint64_t bv = TruncToWidth(gprs_[d->b], d->width);
    cmp_kind_ = CmpKind::kTest;
    cmp_test_ = av & bv;
    cmp_test_sign_ = SignExtend(cmp_test_, d->width) < 0;
    NSF_NEXT(dpc + 1);
  }

  NSF_CASE(TestRI) {
    counters_.micro_cycles += cost_.simple;
    uint64_t av = TruncToWidth(gprs_[d->a], d->width);
    uint64_t bv = static_cast<uint64_t>(d->imm);
    cmp_kind_ = CmpKind::kTest;
    cmp_test_ = av & bv;
    cmp_test_sign_ = SignExtend(cmp_test_, d->width) < 0;
    NSF_NEXT(dpc + 1);
  }

  NSF_CASE(Setcc) {
    counters_.micro_cycles += cost_.simple;
    gprs_[d->a] = EvalCond(static_cast<Cond>(d->cond)) ? 1 : 0;
    NSF_NEXT(dpc + 1);
  }

  NSF_CASE(Cdq) {
    counters_.micro_cycles += cost_.simple;
    if (d->width == 8) {
      set_gpr(Gpr::kRdx, static_cast<int64_t>(gpr(Gpr::kRax)) < 0 ? ~uint64_t{0} : 0);
    } else {
      uint32_t eax = static_cast<uint32_t>(gpr(Gpr::kRax));
      set_gpr(Gpr::kRdx, static_cast<int32_t>(eax) < 0 ? 0xffffffffull : 0);
    }
    NSF_NEXT(dpc + 1);
  }

  NSF_CASE(IdivR) {
    counters_.micro_cycles += cost_.idiv;
    if (!DivOp(true, d->width, TruncToWidth(gprs_[d->b], d->width))) {
      return pending_trap_;
    }
    NSF_NEXT(dpc + 1);
  }

  NSF_CASE(DivR) {
    counters_.micro_cycles += cost_.idiv;
    if (!DivOp(false, d->width, TruncToWidth(gprs_[d->b], d->width))) {
      return pending_trap_;
    }
    NSF_NEXT(dpc + 1);
  }

  NSF_CASE(MovsxdRR) {
    counters_.micro_cycles += cost_.simple;
    gprs_[d->a] = static_cast<uint64_t>(
        static_cast<int64_t>(static_cast<int32_t>(TruncToWidth(gprs_[d->b], 4))));
    NSF_NEXT(dpc + 1);
  }

  // --- SSE scalar ---

  NSF_CASE(FpMovXX) {
    counters_.micro_cycles += cost_.fp_mov;
    uint64_t v = xmms_[d->b];
    xmms_[d->a] = d->width == 4 ? (v & 0xffffffffull) : v;
    NSF_NEXT(dpc + 1);
  }

  NSF_CASE(FpMovXM) {
    counters_.micro_cycles += cost_.fp_mov;
    uint8_t* p;
    if (!DataAccess(DAddr(gprs_, d->mem), d->width, false, &p)) {
      return pending_trap_;
    }
    uint64_t v = 0;
    std::memcpy(&v, p, d->width);
    xmms_[d->a] = d->width == 4 ? (v & 0xffffffffull) : v;
    NSF_NEXT(dpc + 1);
  }

  NSF_CASE(FpMovMX) {
    counters_.micro_cycles += cost_.fp_mov;
    uint64_t v = xmms_[d->b];
    uint8_t* p;
    if (!DataAccess(DAddr(gprs_, d->mem), d->width, true, &p)) {
      return pending_trap_;
    }
    std::memcpy(p, &v, d->width);
    NSF_NEXT(dpc + 1);
  }

#define NSF_FP_ARITH(name, COST, EXPR)                                 \
  NSF_CASE(name##XX) {                                                 \
    counters_.micro_cycles += (COST);                                  \
    double fa = BitsToF64(xmms_[d->a]);                                \
    double fb = BitsToF64(xmms_[d->b]);                                \
    xmms_[d->a] = F64ToBits(EXPR);                                     \
    NSF_NEXT(dpc + 1);                                                 \
  }                                                                    \
  NSF_CASE(name##XM) {                                                 \
    counters_.micro_cycles += (COST);                                  \
    double fa = BitsToF64(xmms_[d->a]);                                \
    uint8_t* p;                                                        \
    if (!DataAccess(DAddr(gprs_, d->mem), 8, false, &p)) {             \
      return pending_trap_;                                            \
    }                                                                  \
    uint64_t bb = 0;                                                   \
    std::memcpy(&bb, p, 8);                                            \
    double fb = BitsToF64(bb);                                         \
    xmms_[d->a] = F64ToBits(EXPR);                                     \
    NSF_NEXT(dpc + 1);                                                 \
  }

  NSF_FP_ARITH(Addsd, cost_.fp_simple, fa + fb)
  NSF_FP_ARITH(Subsd, cost_.fp_simple, fa - fb)
  NSF_FP_ARITH(Mulsd, cost_.fp_simple, fa * fb)
  NSF_FP_ARITH(Divsd, cost_.fp_div, fa / fb)

#undef NSF_FP_ARITH

  NSF_CASE(SqrtsdXX) {
    counters_.micro_cycles += cost_.fp_sqrt;
    xmms_[d->a] = F64ToBits(std::sqrt(BitsToF64(xmms_[d->b])));
    NSF_NEXT(dpc + 1);
  }

  NSF_CASE(UcomisXX) {
    counters_.micro_cycles += cost_.fp_simple / 2;
    uint64_t ab = xmms_[d->a];
    uint64_t bb = xmms_[d->b];
    double fa = d->width == 4 ? BitsToF32(ab) : BitsToF64(ab);
    double fb = d->width == 4 ? BitsToF32(bb) : BitsToF64(bb);
    cmp_kind_ = CmpKind::kFloat;
    fp_unordered_ = std::isnan(fa) || std::isnan(fb);
    fp_equal_ = fa == fb;
    fp_less_ = fa < fb;
    NSF_NEXT(dpc + 1);
  }

  NSF_CASE(Cvtsi2sdXR) {
    counters_.micro_cycles += cost_.fp_simple;
    uint64_t v = TruncToWidth(gprs_[d->b], d->width);
    double r = (d->flags & DInstr::kFlagSignExtend)
                   ? static_cast<double>(SignExtend(v, d->width))
                   : static_cast<double>(v);
    xmms_[d->a] = F64ToBits(r);
    NSF_NEXT(dpc + 1);
  }

  NSF_CASE(Cvttsd2siRX) {
    counters_.micro_cycles += cost_.fp_simple;
    double v = BitsToF64(xmms_[d->b]);
    uint64_t r;
    if (!TruncFloatToInt(v, d->width, (d->flags & DInstr::kFlagSignExtend) != 0, &r)) {
      return pending_trap_;
    }
    gprs_[d->a] = r;
    NSF_NEXT(dpc + 1);
  }

  NSF_CASE(MovqToXmm) {
    counters_.micro_cycles += cost_.fp_mov;
    xmms_[d->a] = gprs_[d->b];
    NSF_NEXT(dpc + 1);
  }

  NSF_CASE(MovqFromXmm) {
    counters_.micro_cycles += cost_.fp_mov;
    gprs_[d->a] = xmms_[d->b];
    NSF_NEXT(dpc + 1);
  }

#if !NSF_COMPUTED_GOTO
  }
  pending_trap_ = TrapKind::kHostError;
  trap_msg_ = "unknown handler";
  return pending_trap_;
#endif

#undef NSF_CASE
#undef NSF_CASE_RAW
#undef NSF_NEXT
#undef NSF_PROLOGUE
#undef NSF_COUNT_DISPATCH
#undef NSF_SAMPLE_CALL
#undef NSF_SAMPLE_BACKEDGE
}

}  // namespace nsf
