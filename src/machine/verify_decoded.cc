#include "src/machine/verify_decoded.h"

#include <cstdint>
#include <vector>

#include "src/support/str.h"

namespace nsf {

namespace {

bool IsFusedHandler(HOp h) {
  switch (h) {
    case HOp::kFusedCmpJccRR:
    case HOp::kFusedCmpJccRI:
    case HOp::kFusedCmpJccRM:
    case HOp::kFusedTestJccRR:
    case HOp::kFusedTestJccRI:
    case HOp::kFusedGenJcc:
      return true;
    default:
      return false;
  }
}

// Round-2 fused data pairs: target holds packed second-element operands, NOT
// a branch target, so these are deliberately excluded from both
// IsFusedHandler (no jcc checks apply) and IsDecodedBranchHandler.
bool IsFusedDataHandler(HOp h) {
  return h == HOp::kFusedMovRIMovRR || h == HOp::kFusedLoadZMovRR ||
         h == HOp::kFusedMovRRAddRR;
}

bool IsDecodedBranchHandler(HOp h) {
  return h == HOp::kJmp || h == HOp::kJcc || IsFusedHandler(h);
}

bool ProducesCompareState(MOp op) {
  return op == MOp::kCmp || op == MOp::kTest || op == MOp::kUcomisd || op == MOp::kUcomiss;
}

}  // namespace

std::string VerifyDecodedProgram(const MProgram& prog, const DecodedProgram& dp) {
  if (dp.program != &prog) {
    return "decoded program references a different MProgram than the one it is keyed to";
  }
  if (dp.funcs.size() != prog.funcs.size()) {
    return StrFormat("decoded program has %zu functions, MProgram has %zu", dp.funcs.size(),
                     prog.funcs.size());
  }

  for (size_t fi = 0; fi < dp.funcs.size(); fi++) {
    const DecodedFunc& df = dp.funcs[fi];
    const MFunction& mf = prog.funcs[fi];
    auto at = [&](size_t di, const std::string& msg) {
      return StrFormat("decoded func '%s' (#%zu) record #%zu [%s]: %s", mf.name.c_str(), fi, di,
                       di < df.code.size() ? HOpName(static_cast<HOp>(df.code[di].handler)) : "?",
                       msg.c_str());
    };
    if (mf.instr_offsets.size() != mf.code.size()) {
      return StrFormat("decoded func '%s' (#%zu): MProgram is not linked (instr_offsets %zu for "
                       "%zu instructions)",
                       mf.name.c_str(), fi, mf.instr_offsets.size(), mf.code.size());
    }
    if (df.pc_to_index.size() != mf.code.size()) {
      return StrFormat("decoded func '%s' (#%zu): pc_to_index covers %zu pcs, function has %zu "
                       "instructions",
                       mf.name.c_str(), fi, df.pc_to_index.size(), mf.code.size());
    }
    if (df.code.empty() || static_cast<HOp>(df.code.back().handler) != HOp::kEndOfCode) {
      return StrFormat("decoded func '%s' (#%zu): missing kEndOfCode sentinel", mf.name.c_str(),
                       fi);
    }

    // Which original pcs are branch targets — a fused record's jcc must not
    // be one, or jumps into the middle of the macro-op would be lost.
    std::vector<bool> is_target(mf.code.size(), false);
    for (const MInstr& in : mf.code) {
      if ((in.op == MOp::kJmp || in.op == MOp::kJcc) && in.label < is_target.size()) {
        is_target[in.label] = true;
      }
    }

    for (size_t di = 0; di + 1 < df.code.size(); di++) {  // skip the sentinel
      const DInstr& d = df.code[di];
      HOp h = static_cast<HOp>(d.handler);
      if (d.handler >= static_cast<uint16_t>(HOp::kCount)) {
        return at(di, StrFormat("handler id %u out of range", d.handler));
      }
      if (d.orig == nullptr) {
        return at(di, "null orig pointer");
      }
      if (d.orig < mf.code.data() || d.orig >= mf.code.data() + mf.code.size()) {
        return at(di, "orig pointer outside this function's code");
      }
      size_t oi = static_cast<size_t>(d.orig - mf.code.data());
      if (df.pc_to_index[oi] != di) {
        return at(di, StrFormat("pc_to_index[%zu] = %u does not map back to this record", oi,
                                df.pc_to_index[oi]));
      }
      if (d.fetch_addr != mf.code_base + mf.instr_offsets[oi]) {
        return at(di, StrFormat("fetch_addr %llu != code_base + instr_offsets[%zu] = %llu",
                                static_cast<unsigned long long>(d.fetch_addr), oi,
                                static_cast<unsigned long long>(mf.code_base +
                                                                mf.instr_offsets[oi])));
      }
      if (d.fetch_size != EncodedSize(*d.orig)) {
        return at(di, StrFormat("fetch_size %u != EncodedSize(%s) = %u", d.fetch_size,
                                MInstrToString(*d.orig).c_str(), EncodedSize(*d.orig)));
      }
      if (IsDecodedBranchHandler(h) && d.target >= df.code.size()) {
        return at(di, StrFormat("branch target %u out of range (%zu decoded records)", d.target,
                                df.code.size()));
      }
      if (h == HOp::kCall && d.target >= prog.funcs.size()) {
        return at(di, StrFormat("call target f%u out of range (%zu functions)", d.target,
                                prog.funcs.size()));
      }
      if (IsFusedHandler(h)) {
        if (!ProducesCompareState(d.orig->op)) {
          return at(di, StrFormat("fused record's primary instruction [%s] does not produce "
                                  "compare state",
                                  MInstrToString(*d.orig).c_str()));
        }
        if (oi + 1 >= mf.code.size() || mf.code[oi + 1].op != MOp::kJcc) {
          return at(di, "fused record's primary instruction is not followed by a jcc");
        }
        if (is_target[oi + 1]) {
          return at(di, StrFormat("fused pair's jcc at pc %zu is itself a branch target "
                                  "(illegal fusion)",
                                  oi + 1));
        }
        if (static_cast<Cond>(d.cond) != mf.code[oi + 1].cond) {
          return at(di, StrFormat("fused record's cond %s != the jcc's cond %s",
                                  CondName(static_cast<Cond>(d.cond)),
                                  CondName(mf.code[oi + 1].cond)));
        }
        if (d.fetch_addr2 != mf.code_base + mf.instr_offsets[oi + 1] ||
            d.fetch_size2 != EncodedSize(mf.code[oi + 1])) {
          return at(di, "fused record's second fetch does not match the jcc's address/size");
        }
      }
      if (IsFusedDataHandler(h)) {
        if (oi + 1 >= mf.code.size()) {
          return at(di, "fused data pair's primary is the function's last instruction");
        }
        if (is_target[oi + 1]) {
          return at(di, StrFormat("fused data pair's second element at pc %zu is itself a "
                                  "branch target (illegal fusion)",
                                  oi + 1));
        }
        if (d.fetch_addr2 != mf.code_base + mf.instr_offsets[oi + 1] ||
            d.fetch_size2 != EncodedSize(mf.code[oi + 1])) {
          return at(di, "fused data pair's second fetch does not match the second element");
        }
      }
    }
  }

  // Decode is deterministic: the loaded/cached decoded form must be exactly
  // what a fresh Predecode produces. Any surviving divergence is a named
  // field mismatch.
  DecodedProgram fresh = Predecode(prog);
  for (size_t fi = 0; fi < dp.funcs.size(); fi++) {
    const DecodedFunc& df = dp.funcs[fi];
    const DecodedFunc& ef = fresh.funcs[fi];
    const MFunction& mf = prog.funcs[fi];
    if (df.code.size() != ef.code.size()) {
      return StrFormat("decoded func '%s' (#%zu): %zu records, fresh predecode produces %zu",
                       mf.name.c_str(), fi, df.code.size(), ef.code.size());
    }
    if (df.pc_to_index != ef.pc_to_index) {
      return StrFormat("decoded func '%s' (#%zu): pc_to_index diverges from a fresh predecode",
                       mf.name.c_str(), fi);
    }
    for (size_t di = 0; di < df.code.size(); di++) {
      const DInstr& d = df.code[di];
      const DInstr& e = ef.code[di];
      const char* field = nullptr;
      if (d.handler != e.handler) {
        field = "handler";
      } else if (d.width != e.width) {
        field = "width";
      } else if (d.a != e.a) {
        field = "a (dst reg)";
      } else if (d.b != e.b) {
        field = "b (src reg)";
      } else if (d.cond != e.cond) {
        field = "cond";
      } else if (d.flags != e.flags) {
        field = "flags";
      } else if (d.fetch_lines != e.fetch_lines) {
        field = "fetch_lines";
      } else if (d.fetch_addr != e.fetch_addr) {
        field = "fetch_addr";
      } else if (d.fetch_size != e.fetch_size) {
        field = "fetch_size";
      } else if (d.target != e.target) {
        field = "target";
      } else if (d.imm != e.imm) {
        field = "imm";
      } else if (d.mem.base != e.mem.base || d.mem.index != e.mem.index ||
                 d.mem.scale != e.mem.scale || d.mem.disp != e.mem.disp) {
        field = "mem operand";
      } else if (d.fetch_addr2 != e.fetch_addr2 || d.fetch_size2 != e.fetch_size2 ||
                 d.fetch_lines2 != e.fetch_lines2) {
        field = "fused second fetch";
      } else if (d.orig != e.orig) {
        field = "orig pointer";
      }
      if (field != nullptr) {
        return StrFormat("decoded func '%s' (#%zu) record #%zu [%s]: %s does not round-trip to "
                         "the MInstr it was decoded from (fresh predecode disagrees)",
                         mf.name.c_str(), fi, di,
                         HOpName(static_cast<HOp>(e.handler)), field);
      }
    }
  }
  return "";
}

}  // namespace nsf
