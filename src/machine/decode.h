// Predecode stage for the simulated CPU: lowers each MFunction into a dense
// DecodedProgram the machine executes under threaded dispatch.
//
// The legacy interpreter (SimMachine::ExecLegacy) re-derives everything per
// retired instruction: operand kinds (switches in read_int/write_int), the
// encoded byte size (EncodedSize's switch), the fetch address
// (code_base + instr_offsets[pc]), and branch targets. Predecoding resolves
// all of that once per code-cache entry:
//
//   - one record per instruction with a SPECIALIZED HANDLER ID — operand-kind
//     combinations are resolved at decode time (kAddRR vs kAddRM, ...); rare
//     shapes fall back to a kGeneric handler that runs the legacy body off
//     the original MInstr, so every op/operand combination stays bit-exact;
//   - precomputed fetch address, encoded size, and L1i line span (almost all
//     instructions fit one 64 B line, so the hot fetch is a single
//     CacheModel::Access instead of an AccessRange loop);
//   - pre-truncated immediates and decoded [base+index*scale+disp] operands;
//   - branch targets resolved to decoded-record indices;
//   - fused `cmp|test + jcc` macro-ops: one record executes both, charging
//     fetches, retirement, fuel, and cycle costs exactly as the unfused pair
//     (and still writing the compare state, which later instructions may
//     read). A pair is only fused when the jcc is not itself a branch target.
//   - fused data pairs (mov-imm+mov, load+mov, mov+add) chosen from the
//     -DNSF_DISPATCH_STATS adjacent-pair table, under the same legality rule
//     (second element not a branch target) and the same counter contract
//     (both elements fetch, retire, and burn fuel exactly as when unfused).
//
// Dispatch is computed-goto (labels as values) on GCC/Clang; configuring with
// -DNSF_NO_COMPUTED_GOTO=ON (or building with a compiler without the
// extension) selects a portable switch over the same handler bodies. Both
// backends and the legacy interpreter produce bit-identical PerfCounters —
// tests/decode_test.cc holds them to that differentially.
#ifndef SRC_MACHINE_DECODE_H_
#define SRC_MACHINE_DECODE_H_

#include <cstdint>
#include <vector>

#include "src/x64/insts.h"

namespace nsf {

// Threaded dispatch backend selection: labels-as-values is a GNU extension;
// NSF_NO_COMPUTED_GOTO (CMake option of the same name) forces the portable
// switch so MSVC/strict builds and the CI matrix leg exercise that path.
#if !defined(NSF_NO_COMPUTED_GOTO) && (defined(__GNUC__) || defined(__clang__))
#define NSF_COMPUTED_GOTO 1
#else
#define NSF_COMPUTED_GOTO 0
#endif

// The dispatch backend compiled into this binary ("computed-goto"/"switch");
// reported by bench/sim_throughput so perf trajectories name their engine.
const char* SimDispatchBackend();

// --- Round-2 data-pair fusion gate ---
//
// The round-2 superinstructions (mov-imm+mov, load+mov, mov+add) came from
// the adjacent-pair table under a suspicion that as a group they cost
// interpreter wall clock (bigger handler bodies pushing the hot dispatch
// loop past the L1i sweet spot). Each shape is therefore gated individually
// and must earn its keep on a measured bench/sim_throughput A/B
// (NSF_DATA_PAIRS=all vs none vs the per-shape masks). The gate is
// decode-time only and cannot move PerfCounters: fused and unfused pairs
// fetch, retire, and charge cycles identically.
inline constexpr uint32_t kDataPairMovRIMovRR = 1u << 0;
inline constexpr uint32_t kDataPairLoadZMovRR = 1u << 1;
inline constexpr uint32_t kDataPairMovRRAddRR = 1u << 2;
// Measured (predecoded-vs-legacy geomean over the 23-kernel PolyBench
// suite, min-of-3 walls, computed-goto dispatch): none 1.87x, mov-imm+mov
// alone 1.92x, load+mov alone 1.90x, mov+add alone 1.88x, all three 1.95x.
// Every shape wins individually and they compose, so the committed default
// keeps all three; the suspected regression did not survive measurement.
inline constexpr uint32_t kDataPairDefaultFusionMask =
    kDataPairMovRIMovRR | kDataPairLoadZMovRR | kDataPairMovRRAddRR;
// The active mask: NSF_DATA_PAIRS=all|none|<numeric mask> overrides the
// default. Read once per process (decode results are cached per code-cache
// entry, so a mid-process flip would desynchronize cached entries).
uint32_t DataPairFusionMask();

// Specialized handler ids. One X-macro list generates the enum, the
// computed-goto label table, and the switch cases — the three must agree on
// order, so there is exactly one source of truth.
//
// Naming: suffix letters are the resolved operand shapes (R = gpr, I = imm,
// M = mem, X = xmm), dst first. kGeneric runs the legacy body off the
// original MInstr for every shape not specialized here.
#define NSF_HANDLER_LIST(V)                                                 \
  /* control */                                                             \
  V(EndOfCode) V(Generic)                                                   \
  V(Jmp) V(Jcc) V(Call) V(CallReg) V(Ret)                                   \
  V(CallHostHook) V(CallHostTrap) V(CallHostMemSize) V(CallHostMemGrow)     \
  /* fused cmp|test + jcc macro-ops */                                      \
  V(FusedCmpJccRR) V(FusedCmpJccRI) V(FusedCmpJccRM)                        \
  V(FusedTestJccRR) V(FusedTestJccRI) V(FusedGenJcc)                        \
  /* fused data-movement/ALU pairs (round 2, from the adjacent-pair table) */\
  V(FusedMovRIMovRR) V(FusedLoadZMovRR) V(FusedMovRRAddRR)                  \
  /* data movement */                                                       \
  V(MovRR) V(MovRI) V(MovRM) V(MovMR) V(MovMI)                              \
  V(LoadZ) V(LoadS) V(StoreR) V(StoreI) V(Lea)                              \
  V(Push) V(Pop) V(Xchg)                                                    \
  /* integer ALU */                                                         \
  V(AddRR) V(AddRI) V(AddRM) V(SubRR) V(SubRI) V(SubRM)                     \
  V(AndRR) V(AndRI) V(AndRM) V(OrRR) V(OrRI) V(OrRM)                        \
  V(XorRR) V(XorRI) V(XorRM)                                                \
  V(ImulRR) V(ImulRI) V(ImulRM)                                             \
  V(NegR) V(NotR)                                                           \
  V(ShlRI) V(ShrRI) V(SarRI)                                                \
  V(CmpRR) V(CmpRI) V(CmpRM) V(TestRR) V(TestRI)                            \
  V(Setcc) V(Cdq) V(IdivR) V(DivR) V(MovsxdRR)                              \
  /* SSE scalar */                                                          \
  V(FpMovXX) V(FpMovXM) V(FpMovMX)                                          \
  V(AddsdXX) V(AddsdXM) V(SubsdXX) V(SubsdXM)                               \
  V(MulsdXX) V(MulsdXM) V(DivsdXX) V(DivsdXM)                               \
  V(SqrtsdXX) V(UcomisXX) V(Cvtsi2sdXR) V(Cvttsd2siRX)                      \
  V(MovqToXmm) V(MovqFromXmm)

enum class HOp : uint16_t {
#define NSF_H(name) k##name,
  NSF_HANDLER_LIST(NSF_H)
#undef NSF_H
      kCount,
};

const char* HOpName(HOp h);

// Decoded memory operand: MemRef with the optionals resolved to -1 sentinels
// so the effective-address computation is two predictable branches.
struct DMem {
  int8_t base = -1;   // gpr index, -1 = absent
  int8_t index = -1;  // gpr index, -1 = absent
  uint8_t scale = 1;
  int32_t disp = 0;
};

// One decoded record. Fused pairs occupy one record; `orig` points at the
// primary original MInstr (the cmp of a fused pair) for the generic fallback
// bodies and diagnostics.
struct DInstr {
  uint16_t handler = 0;     // HOp
  uint8_t width = 8;        // operation width in bytes
  uint8_t a = 0;            // dst gpr/xmm index
  uint8_t b = 0;            // src gpr/xmm index
  uint8_t cond = 0;         // Cond (jcc/setcc, incl. the fused jcc)
  uint8_t flags = 0;        // kFlagSignExtend
  uint8_t fetch_lines = 1;  // L1i lines spanned by this fetch (>=1)
  uint64_t fetch_addr = 0;  // code_base + instr_offsets[pc]
  uint32_t fetch_size = 0;  // EncodedSize(instr)
  uint32_t target = 0;      // branch: decoded index; call: func; host: hook id
  int64_t imm = 0;          // pre-truncated immediate / shift count / trap kind
  DMem mem;                 // the (at most one) memory operand
  // Fused second element (the jcc): its own fetch record.
  uint64_t fetch_addr2 = 0;
  uint32_t fetch_size2 = 0;
  uint8_t fetch_lines2 = 1;
  const MInstr* orig = nullptr;  // original primary instruction

  static constexpr uint8_t kFlagSignExtend = 1;
};

struct DecodedFunc {
  // Decoded records in original order (fused pairs collapsed), terminated by
  // one kEndOfCode sentinel — running off the end lands on it and raises the
  // same "pc out of range" trap the legacy loop's bounds check does, without
  // a per-instruction check.
  std::vector<DInstr> code;
  // Original pc -> decoded index (second elements of fused pairs map to their
  // pair's record). Size code.size()+... = original instruction count.
  std::vector<uint32_t> pc_to_index;
};

// Decode statistics, surfaced by bench/sim_throughput.
struct DecodeStats {
  uint64_t instrs = 0;       // original instructions decoded
  uint64_t records = 0;      // decoded records emitted (excl. sentinels)
  uint64_t fused_pairs = 0;  // cmp|test+jcc pairs collapsed
  uint64_t generic = 0;      // records using the kGeneric/kFusedGenJcc bodies
};

// The predecoded form of one linked MProgram. References `program` (for
// function names, host-hook tables, and the generic fallback's MInstrs):
// the program must outlive the DecodedProgram. engine::CompiledModule owns
// both, so predecode is paid once per code-cache entry — a backend compile or
// a disk-tier artifact load — never per Instance or per run.
struct DecodedProgram {
  const MProgram* program = nullptr;
  std::vector<DecodedFunc> funcs;
  DecodeStats stats;
};

// Lowers `program` (must be Link()ed: fetch addresses come from
// code_base/instr_offsets). Deterministic; safe to share across threads once
// built (immutable afterwards).
DecodedProgram Predecode(const MProgram& program);

// --- Dynamic dispatch statistics (-DNSF_DISPATCH_STATS=ON) ---
//
// Per-handler retire counts in the threaded interpreter, for ranking which
// specializations/fusions to build next (bench/sim_throughput prints the
// top-N table). Compiled OUT by default: the dispatch loop's prologue gains
// one non-atomic array increment only under the build flag, and a
// differential test holds PerfCounters bit-identical either way. Each
// SimMachine counts locally and folds into a process-wide atomic table on
// destruction; a fused macro-op counts once for its fused handler.

// True when this binary was built with -DNSF_DISPATCH_STATS=ON.
bool DispatchStatsEnabled();

// One handler's aggregate across all destroyed machines in this process.
struct DispatchStat {
  HOp handler = HOp::kCount;
  const char* name = "?";
  uint64_t retires = 0;
};

// One ADJACENT handler pair's aggregate: `second` retired immediately after
// `first` in the dispatch loop (straight-line or via a taken branch). This is
// the table superinstruction selection reads: a hot (first, second) pair
// whose second element is never a branch target is a fusion candidate.
struct DispatchPairStat {
  HOp first = HOp::kCount;
  HOp second = HOp::kCount;
  const char* first_name = "?";
  const char* second_name = "?";
  uint64_t count = 0;
};

// All handlers with a nonzero count, sorted by retires descending. Empty
// when the flag is off or nothing ran.
std::vector<DispatchStat> DispatchStatsSnapshot();
// All adjacent pairs with a nonzero count, sorted descending. Empty when the
// flag is off or nothing ran.
std::vector<DispatchPairStat> DispatchPairsSnapshot();
void ResetDispatchStats();

// Folds one machine's local counts (indexed by HOp) into the global table.
// No-op when the flag is off.
void AccumulateDispatchStats(const uint64_t* counts);
// Folds one machine's local pair counts (first * kMaxDispatchHandlers +
// second) into the global pair table. No-op when the flag is off.
void AccumulateDispatchPairs(const uint64_t* counts);

// Upper bound on handler ids, for embedding a fixed-size local count array
// without pulling HOp::kCount into machine.h (decode.cc static_asserts that
// kCount fits).
inline constexpr size_t kMaxDispatchHandlers = 128;

}  // namespace nsf

#endif  // SRC_MACHINE_DECODE_H_
