#include "src/machine/cache.h"

#include <cstddef>

namespace nsf {

namespace {
uint32_t Log2(uint32_t v) {
  uint32_t s = 0;
  while ((1u << s) < v) {
    s++;
  }
  return s;
}
}  // namespace

CacheModel::CacheModel(uint32_t size_bytes, uint32_t line_size, uint32_t ways)
    : line_size_(line_size),
      ways_(ways),
      num_sets_(size_bytes / (line_size * ways)),
      line_shift_(Log2(line_size)),
      sets_(size_t{num_sets_} * ways) {}

bool CacheModel::Access(uint64_t addr) {
  uint64_t line = addr >> line_shift_;
  uint32_t set = static_cast<uint32_t>(line % num_sets_);
  Way* base = &sets_[size_t{set} * ways_];
  tick_++;
  Way* victim = base;
  for (uint32_t w = 0; w < ways_; w++) {
    if (base[w].tag == line) {
      base[w].lru = tick_;
      hits_++;
      return true;
    }
    if (base[w].lru < victim->lru) {
      victim = &base[w];
    }
  }
  victim->tag = line;
  victim->lru = tick_;
  misses_++;
  return false;
}

uint32_t CacheModel::AccessRange(uint64_t addr, uint32_t size) {
  uint32_t miss_count = 0;
  uint64_t first = addr >> line_shift_;
  uint64_t last = (addr + (size > 0 ? size - 1 : 0)) >> line_shift_;
  for (uint64_t line = first; line <= last; line++) {
    if (!Access(line << line_shift_)) {
      miss_count++;
    }
  }
  return miss_count;
}

void CacheModel::Reset() {
  for (Way& w : sets_) {
    w = Way{};
  }
  tick_ = 0;
  hits_ = 0;
  misses_ = 0;
}

}  // namespace nsf
