// The simulated CPU that executes MPrograms and maintains architectural
// performance counters — the stand-in for the paper's Xeon + `perf` setup.
//
// Two dispatch paths execute the same ISA with bit-identical PerfCounters:
//   - kPredecoded (default): a DecodedProgram (src/machine/decode.h) run
//     under threaded dispatch — computed goto where available, a portable
//     switch behind NSF_NO_COMPUTED_GOTO. This is the fast path every
//     engine::Instance uses.
//   - kLegacy: the original giant-switch interpreter over raw MInstrs, kept
//     as the reference semantics for the differential suite
//     (tests/decode_test.cc) and the bench/sim_throughput speedup baseline.
//
// Address-space layout (all code agrees on these):
//   [kStackBase,  kStackBase + kStackSize)   native call stack (rsp herein)
//   [kGlobalsBase, ...)                      Wasm globals, 8 bytes per slot
//   [kTableBase,  ...)                       indirect-call table image,
//                                            8 bytes per entry: sig_id,func
//   [kHeapBase,   kHeapBase + memory)        Wasm linear memory
#ifndef SRC_MACHINE_MACHINE_H_
#define SRC_MACHINE_MACHINE_H_

#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/machine/cache.h"
#include "src/support/str.h"
#include "src/wasm/trap.h"
#include "src/x64/insts.h"

namespace nsf {

struct DecodedProgram;
struct DInstr;
class SampledProfile;

inline constexpr uint64_t kStackBase = 0x00100000;
inline constexpr uint64_t kStackSize = 8 * 1024 * 1024;
inline constexpr uint64_t kGlobalsBase = 0x04000000;
inline constexpr uint64_t kTableBase = 0x05000000;
inline constexpr uint64_t kHeapBase = 0x10000000;

// Default execution budget when set_fuel was never called (see SimMachine).
inline constexpr uint64_t kSimDefaultFuel = 200ull * 1000 * 1000 * 1000;

// Builtin host-hook ids handled by the machine itself.
inline constexpr uint32_t kBuiltinMemorySize = 0xffff0000;
inline constexpr uint32_t kBuiltinMemoryGrow = 0xffff0001;
// Trap builtins: generated check sequences branch to stubs invoking these.
inline constexpr uint32_t kBuiltinTrapUnreachable = 0xffff0002;
inline constexpr uint32_t kBuiltinTrapStack = 0xffff0003;
inline constexpr uint32_t kBuiltinTrapOob = 0xffff0004;
inline constexpr uint32_t kBuiltinTrapNull = 0xffff0005;
inline constexpr uint32_t kBuiltinTrapSig = 0xffff0006;

// Cycle cost model, in quarter-cycle units (micro-units). The defaults model
// a modest out-of-order core at ~2 IPC for simple ops; ablation benches
// override individual entries.
struct CostModel {
  uint32_t simple = 2;        // mov/alu/lea/cmp/test/setcc/push/pop
  uint32_t load = 4;          // L1-hit load
  uint32_t store = 2;
  uint32_t imul = 6;
  uint32_t idiv = 80;
  uint32_t fp_simple = 8;     // addsd/subsd/mulsd/cvt/min/max/round
  uint32_t fp_div = 52;
  uint32_t fp_sqrt = 64;
  uint32_t fp_mov = 2;
  uint32_t branch = 2;        // not-taken jcc / jmp issue
  uint32_t branch_taken_extra = 4;  // front-end bubble for taken branches
  uint32_t call = 10;
  uint32_t ret = 10;
  uint32_t host_call = 160;   // context switch into host (40 cycles)
  uint32_t l1_miss = 48;      // +12 cycles to L2
  uint32_t l2_miss = 132;     // further +33 cycles to memory
  uint32_t clock_ghz = 35;    // *0.1 GHz: 35 => 3.5 GHz (paper's Xeon E5-1650v3)
};

// The counter set of the paper's Table 3.
struct PerfCounters {
  uint64_t instructions_retired = 0;
  uint64_t micro_cycles = 0;  // quarter-cycles
  uint64_t loads_retired = 0;
  uint64_t stores_retired = 0;
  uint64_t branches_retired = 0;       // jmp + jcc + call + ret
  uint64_t cond_branches_retired = 0;  // jcc only
  uint64_t taken_branches = 0;
  uint64_t calls = 0;
  uint64_t l1i_misses = 0;
  uint64_t l1d_misses = 0;
  uint64_t l2_misses = 0;

  uint64_t cycles() const { return micro_cycles / 4; }

  PerfCounters operator-(const PerfCounters& other) const;
  PerfCounters& operator+=(const PerfCounters& other);
  bool operator==(const PerfCounters& other) const = default;
};

struct MachineResult {
  bool ok = false;
  TrapKind trap = TrapKind::kNone;
  std::string error;
  uint64_t ret_i = 0;   // rax on return
  double ret_f = 0.0;   // xmm0 on return
};

// Which interpreter core executes the program.
enum class SimDispatch : uint8_t {
  kPredecoded,  // decoded stream, threaded dispatch (default)
  kLegacy,      // pre-predecode switch interpreter (reference semantics)
};

class SimMachine;
// A host hook reads arguments from registers/memory and writes results back.
using HostHook = std::function<void(SimMachine&)>;

// Recycles the big simulated-memory buffers (the 8 MB stack, the Wasm heap,
// globals, and the table image) across SimMachine constructions: a machine
// built from a pool takes the previous run's buffers — already scrubbed back
// to zero on release, and only over the ranges that run actually dirtied —
// instead of page-faulting fresh allocations every run. Single-slot and
// deliberately not thread-safe: the Session that owns it runs one machine at
// a time (each ExecutorPool worker has its own Session, hence its own pool).
class SimBufferPool {
 public:
  uint64_t acquires() const { return acquires_; }
  // Acquisitions that found recycled buffers (0 on the first run).
  uint64_t reuses() const { return reuses_; }

 private:
  friend class SimMachine;
  std::vector<uint8_t> stack_;
  std::vector<uint8_t> heap_;
  std::vector<uint8_t> table_;
  std::vector<uint64_t> globals_;
  bool has_buffers_ = false;
  uint64_t acquires_ = 0;
  uint64_t reuses_ = 0;
};

class SimMachine {
 public:
  explicit SimMachine(const MProgram* program, CostModel cost = CostModel());

  // Engine path: executes `decoded` (which references its MProgram; both must
  // outlive the machine), borrowing buffers from `pool` when non-null.
  // Either argument may be null: a null `decoded` predecodes lazily on the
  // first non-legacy Run, a null `pool` allocates fresh buffers.
  SimMachine(const MProgram* program, const DecodedProgram* decoded, SimBufferPool* pool,
             CostModel cost = CostModel());

  ~SimMachine();
  SimMachine(const SimMachine&) = delete;
  SimMachine& operator=(const SimMachine&) = delete;

  // Registers a host hook for kCallHost index `idx` (dense, small indices).
  void RegisterHost(uint32_t idx, HostHook hook);

  // Runs function `func_index` with up to 6 integer args (SysV order:
  // rdi, rsi, rdx, rcx, r8, r9). FP args can be set through xmm() first.
  MachineResult Run(uint32_t func_index, const std::vector<uint64_t>& int_args = {});

  // Runs `func_index` under the compiled-code ABI: stack arguments staged by
  // the caller at `args_base` (see WriteStack); rsp is set to args_base - 8,
  // as if a call instruction had just pushed the return address.
  MachineResult RunAt(uint32_t func_index, uint64_t args_base);

  // Writes 8 bytes into the simulated stack region (not performance-counted);
  // used to stage arguments for RunAt.
  void WriteStack(uint64_t addr, uint64_t bits);

  // Selects the interpreter core for subsequent Run/RunAt calls. Both modes
  // produce bit-identical PerfCounters; kLegacy exists as the differential
  // reference and perf baseline.
  void set_dispatch(SimDispatch dispatch) { dispatch_ = dispatch; }
  SimDispatch dispatch() const { return dispatch_; }

  // --- Register access (for hooks and tests) ---
  uint64_t gpr(Gpr r) const { return gprs_[static_cast<uint8_t>(r)]; }
  void set_gpr(Gpr r, uint64_t v) { gprs_[static_cast<uint8_t>(r)] = v; }
  uint64_t xmm_bits(Xmm r) const { return xmms_[static_cast<uint8_t>(r)]; }
  void set_xmm_bits(Xmm r, uint64_t v) { xmms_[static_cast<uint8_t>(r)] = v; }
  double xmm_f64(Xmm r) const;
  void set_xmm_f64(Xmm r, double v);

  // --- Memory access (modeled, but *not* counted — host/syscall side) ---
  // Reads/writes the Wasm heap by Wasm address (0-based).
  bool HeapRead(uint32_t addr, void* out, uint32_t size) const;
  bool HeapWrite(uint32_t addr, const void* data, uint32_t size);
  uint32_t heap_pages() const { return static_cast<uint32_t>(heap_.size() / 65536); }
  std::vector<uint8_t>& heap() {
    // The caller can now write anywhere, any time: the pool scrub must treat
    // the whole heap as dirtied.
    heap_exposed_ = true;
    return heap_;
  }

  uint64_t global_bits(uint32_t slot) const { return globals_[slot]; }
  void set_global_bits(uint32_t slot, uint64_t v) { globals_[slot] = v; }

  const PerfCounters& counters() const { return counters_; }
  void ResetCounters();

  // Charges `cycles` full cycles to the run (used by the kernel to model
  // syscall transport costs) and tracks them separately as "browsix time".
  void ChargeHostCycles(uint64_t cycles);
  uint64_t host_micro_cycles() const { return host_micro_cycles_; }

  // Execution budget in retired instructions (0 = default 200G safety cap).
  void set_fuel(uint64_t fuel) { fuel_ = fuel; }

  // Sampled always-on profiling (continuous tiering): every `period`-th
  // back-edge/call in the predecoded interpreter records one sample into
  // machine-local count vectors, folded into `sink` on destruction. period
  // == 0 (the default) disables sampling entirely — the hot path then pays
  // one predictable compare per back-edge/call and PerfCounters are
  // untouched either way. Deterministic: same program + same period =>
  // identical counts.
  void set_sampler(SampledProfile* sink, uint32_t period);
  uint32_t sample_period() const { return sample_period_; }

  // Wall-clock seconds implied by the cost model's clock.
  double SecondsFromCycles(uint64_t cycles) const {
    return static_cast<double>(cycles) / (static_cast<double>(cost_.clock_ghz) * 1e8);
  }

  const CostModel& cost_model() const { return cost_; }

 private:
  struct Frame {
    uint32_t func = 0;
    uint32_t ret_pc = 0;  // original pc (legacy) or decoded index (predecoded)
  };

  // Memory routing: translates a simulated address to a host pointer, or
  // nullptr when out of range.
  uint8_t* MemPtr(uint64_t addr, uint32_t size) {
    if (addr >= kHeapBase) {
      uint64_t off = addr - kHeapBase;
      if (off + size <= heap_.size()) {
        return heap_.data() + off;
      }
      return nullptr;
    }
    if (addr >= kTableBase) {
      uint64_t off = addr - kTableBase;
      if (off + size <= table_image_.size()) {
        return table_image_.data() + off;
      }
      return nullptr;
    }
    if (addr >= kGlobalsBase) {
      uint64_t off = addr - kGlobalsBase;
      if (off + size <= globals_.size() * 8) {
        return reinterpret_cast<uint8_t*>(globals_.data()) + off;
      }
      return nullptr;
    }
    if (addr >= kStackBase) {
      uint64_t off = addr - kStackBase;
      if (off + size <= stack_.size()) {
        return stack_.data() + off;
      }
      return nullptr;
    }
    return nullptr;
  }

  // Pool-scrub bookkeeping: remembers which byte ranges a run dirtied so the
  // destructor only memsets those, not the whole 8 MB + heap.
  void NoteStore(uint64_t addr, uint32_t size) {
    if (addr >= kHeapBase) {
      uint64_t off = addr - kHeapBase;
      if (off < heap_dirty_lo_) {
        heap_dirty_lo_ = off;
      }
      if (off + size > heap_dirty_hi_) {
        heap_dirty_hi_ = off + size;
      }
    } else if (addr < kGlobalsBase) {
      uint64_t off = addr - kStackBase;
      if (off < stack_dirty_lo_) {
        stack_dirty_lo_ = off;
      }
    }
  }

  // Data access shared by both dispatch paths: routes, counts, charges cache
  // penalties. Inline — this is the hottest helper in the simulator.
  bool DataAccess(uint64_t addr, uint32_t size, bool is_store, uint8_t** out) {
    uint8_t* p = MemPtr(addr, size);
    if (p == nullptr) {
      pending_trap_ = TrapKind::kMemoryOutOfBounds;
      trap_msg_ = StrFormat("data access at 0x%llx size %u", (unsigned long long)addr, size);
      return false;
    }
    if (is_store) {
      counters_.stores_retired++;
      counters_.micro_cycles += cost_.store;
      NoteStore(addr, size);
    } else {
      counters_.loads_retired++;
      counters_.micro_cycles += cost_.load;
    }
    if (!l1d_.Access(addr)) {
      counters_.l1d_misses++;
      counters_.micro_cycles += cost_.l1_miss;
      if (!l2_.Access(addr)) {
        counters_.l2_misses++;
        counters_.micro_cycles += cost_.l2_miss;
      }
    }
    *out = p;
    return true;
  }

  uint64_t EffectiveAddr(const MemRef& m) const;
  bool EvalCond(Cond c) const;

  // Operand accessors for the legacy/generic bodies (operand-kind switches).
  bool ReadInt(const Operand& o, uint8_t width, uint64_t* out);
  bool WriteInt(const Operand& o, uint8_t width, uint64_t v);
  bool ReadFpBits(const Operand& o, uint8_t width, uint64_t* out);
  bool WriteFpBits(const Operand& o, uint8_t width, uint64_t v);

  // Instruction fetch through the L1i model for a possibly multi-line span
  // (the predecoded path inlines the common single-line case).
  void FetchL1i(uint64_t addr, uint32_t size);

  // rdx:rax division convention shared by both paths. False on trap.
  bool DivOp(bool is_signed, uint8_t width, uint64_t divisor);
  // Truncating float->int with Wasm trap semantics. False on trap.
  bool TruncFloatToInt(double v, uint8_t width, bool sign_extend, uint64_t* out);

  // Executes one NON-control-flow instruction's legacy body (cost charge +
  // semantics; fetch/retire/fuel are the caller's). False on trap. This is
  // the single source of truth the predecoded kGeneric handler and the
  // legacy loop share for every un-specialized shape.
  bool ExecGenericOp(const MInstr& instr);

  TrapKind ExecLegacy();    // pre-predecode switch interpreter
  TrapKind ExecDecoded();   // threaded dispatch over decoded_ (decode.cc)
  void EnsureDecoded();

  void InitMemory(SimBufferPool* pool);
  void ReleaseBuffers();  // scrub dirtied ranges, hand buffers back to pool_

  const MProgram* program_;
  const DecodedProgram* decoded_ = nullptr;
  std::unique_ptr<DecodedProgram> owned_decoded_;
  SimBufferPool* pool_ = nullptr;
  SimDispatch dispatch_ = SimDispatch::kPredecoded;
  CostModel cost_;
  uint64_t gprs_[16] = {};
  uint64_t xmms_[16] = {};

  // Compare state (set by cmp/test/ucomis*).
  enum class CmpKind : uint8_t { kInt, kTest, kFloat };
  CmpKind cmp_kind_ = CmpKind::kInt;
  int64_t cmp_sa_ = 0, cmp_sb_ = 0;
  uint64_t cmp_ua_ = 0, cmp_ub_ = 0;
  uint64_t cmp_test_ = 0;
  bool cmp_test_sign_ = false;
  bool fp_unordered_ = false, fp_equal_ = false, fp_less_ = false;

  std::vector<uint8_t> stack_;
  std::vector<uint8_t> heap_;
  uint32_t max_heap_pages_ = 65536;
  std::vector<uint64_t> globals_;
  std::vector<uint8_t> table_image_;
  std::vector<HostHook> hooks_;

  // Dirty tracking for the pool scrub (see NoteStore / ReleaseBuffers).
  uint64_t stack_dirty_lo_ = kStackSize;
  uint64_t heap_dirty_lo_ = UINT64_MAX;
  uint64_t heap_dirty_hi_ = 0;
  bool heap_exposed_ = false;

  std::vector<Frame> frames_;
  uint32_t cur_func_ = 0;
  uint32_t pc_ = 0;

  // L1i is scaled to 4 KB: our workloads are size-reduced SPEC equivalents,
  // so the cache is shrunk proportionally to preserve the paper's
  // code-size-vs-L1i pressure (Fig 10). L1d/L2 keep desktop sizes.
  CacheModel l1i_{4 * 1024, 64, 8};
  CacheModel l1d_{32 * 1024, 64, 8};
  CacheModel l2_{512 * 1024, 64, 8};

  PerfCounters counters_;
  uint64_t host_micro_cycles_ = 0;
  uint64_t fuel_ = 0;
  TrapKind pending_trap_ = TrapKind::kNone;
  std::string trap_msg_;

  // Sampling state (see set_sampler). The countdown and per-function count
  // vectors are machine-local plain integers — the decoded dispatch loop
  // never touches shared state; the destructor folds into sample_sink_'s
  // atomics (the dispatch-stats pattern).
  SampledProfile* sample_sink_ = nullptr;
  uint32_t sample_period_ = 0;
  uint32_t sample_tick_ = 0;
  std::vector<uint64_t> sample_entries_;    // per machine function: call samples
  std::vector<uint64_t> sample_backedges_;  // per machine function: back-edge samples
  // Out-of-line cold slice of the sampling hook: re-arms the countdown and
  // bumps the local count. Called once every `sample_period_` events.
  void RecordSample(uint32_t func, bool backedge);

#ifdef NSF_DISPATCH_STATS
  // Per-handler retire counts, indexed by HOp (decode.h). 128 mirrors
  // decode.h's kMaxDispatchHandlers (machine.h only forward-declares the
  // decode types; decode.cc static_asserts the two agree). Non-atomic —
  // folded into the process-wide table by the destructor.
  uint64_t dispatch_retires_[128] = {};
  // Adjacent-pair retires (first * 128 + second) — the superinstruction
  // candidate table. 128 KiB per machine, stats builds only.
  uint64_t dispatch_pairs_[128 * 128] = {};
#endif
};

}  // namespace nsf

#endif  // SRC_MACHINE_MACHINE_H_
