// Set-associative LRU cache model used for both L1i and L1d (with a shared
// unified L2 behind them).
#ifndef SRC_MACHINE_CACHE_H_
#define SRC_MACHINE_CACHE_H_

#include <cstdint>
#include <vector>

namespace nsf {

class CacheModel {
 public:
  // size_bytes must be a multiple of line_size * ways.
  CacheModel(uint32_t size_bytes, uint32_t line_size, uint32_t ways);

  // Touches the line containing `addr`; returns true on hit.
  bool Access(uint64_t addr);

  // Touches every line in [addr, addr+size); returns the number of misses.
  uint32_t AccessRange(uint64_t addr, uint32_t size);

  void Reset();

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint32_t line_size() const { return line_size_; }

 private:
  struct Way {
    uint64_t tag = UINT64_MAX;
    uint64_t lru = 0;
  };

  uint32_t line_size_;
  uint32_t ways_;
  uint32_t num_sets_;
  uint32_t line_shift_;
  std::vector<Way> sets_;  // num_sets_ * ways_
  uint64_t tick_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace nsf

#endif  // SRC_MACHINE_CACHE_H_
