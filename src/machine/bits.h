// Width/bit-pattern helpers shared by the legacy switch interpreter
// (machine.cc) and the predecoded handlers (decode.cc). Both dispatch paths
// must produce bit-identical results, so they use one set of primitives.
#ifndef SRC_MACHINE_BITS_H_
#define SRC_MACHINE_BITS_H_

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>

namespace nsf {

inline uint64_t TruncToWidth(uint64_t v, uint8_t width) {
  switch (width) {
    case 1:
      return v & 0xff;
    case 2:
      return v & 0xffff;
    case 4:
      return v & 0xffffffffull;
    default:
      return v;
  }
}

inline int64_t SignExtend(uint64_t v, uint8_t width) {
  switch (width) {
    case 1:
      return static_cast<int8_t>(v);
    case 2:
      return static_cast<int16_t>(v);
    case 4:
      return static_cast<int32_t>(v);
    default:
      return static_cast<int64_t>(v);
  }
}

inline float BitsToF32(uint64_t bits) {
  float f;
  uint32_t b32 = static_cast<uint32_t>(bits);
  std::memcpy(&f, &b32, 4);
  return f;
}

inline uint64_t F32ToBits(float f) {
  uint32_t b32;
  std::memcpy(&b32, &f, 4);
  return b32;
}

inline double BitsToF64(uint64_t bits) {
  double d;
  std::memcpy(&d, &bits, 8);
  return d;
}

inline uint64_t F64ToBits(double d) {
  uint64_t b;
  std::memcpy(&b, &d, 8);
  return b;
}

// Wasm min/max semantics (NaN-propagating, -0 < +0).
inline double CanonMin(double a, double b) {
  if (std::isnan(a) || std::isnan(b)) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  if (a == b) {
    return std::signbit(a) ? a : b;
  }
  return a < b ? a : b;
}

inline double CanonMax(double a, double b) {
  if (std::isnan(a) || std::isnan(b)) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  if (a == b) {
    return std::signbit(a) ? b : a;
  }
  return a > b ? a : b;
}

// roundsd/roundss immediate: 0 nearest, 1 floor, 2 ceil, 3 trunc.
inline double ApplyRounding(double v, int mode) {
  switch (mode) {
    case 0:
      return std::nearbyint(v);
    case 1:
      return std::floor(v);
    case 2:
      return std::ceil(v);
    default:
      return std::trunc(v);
  }
}

}  // namespace nsf

#endif  // SRC_MACHINE_BITS_H_
