// DecodedProgram cross-checker: asserts that every decoded record round-trips
// to the MInstr it was decoded from. Two layers:
//
//   1. Structural checks with precise diagnostics — each record's handler id
//      is a real HOp, its `orig` pointer lands inside the function it claims
//      to come from, its fetch address/size match the linked program's
//      instr_offsets/EncodedSize for that MInstr, branch targets are valid
//      decoded indices, and fused records are LEGAL pairs (a compare-state
//      producer immediately followed by a jcc whose pc is not itself a
//      branch target, with the record's cond equal to the jcc's).
//   2. A field-by-field comparison against a fresh Predecode(prog) — decode
//      is deterministic, so any divergence (stale cache entry, bit-flipped
//      artifact that survived the codec checksum, a future decode bug) shows
//      up as a named field mismatch at a named record.
//
// Returns "" when the decoded program is exactly what Predecode(prog)
// produces, else one diagnostic naming the function, decoded index, and
// mismatching field. Used by the engine after BuildDecoded when verification
// is hot, and by tests/verify_test.cc's hand-corrupted records.
#ifndef SRC_MACHINE_VERIFY_DECODED_H_
#define SRC_MACHINE_VERIFY_DECODED_H_

#include <string>

#include "src/machine/decode.h"
#include "src/x64/insts.h"

namespace nsf {

std::string VerifyDecodedProgram(const MProgram& prog, const DecodedProgram& dp);

}  // namespace nsf

#endif  // SRC_MACHINE_VERIFY_DECODED_H_
