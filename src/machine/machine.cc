#include "src/machine/machine.h"

#include <bit>
#include <cmath>
#include <cstring>
#include <limits>

#include "src/support/str.h"

namespace nsf {

namespace {

constexpr uint64_t kDefaultFuel = 200ull * 1000 * 1000 * 1000;

uint64_t TruncToWidth(uint64_t v, uint8_t width) {
  switch (width) {
    case 1:
      return v & 0xff;
    case 2:
      return v & 0xffff;
    case 4:
      return v & 0xffffffffull;
    default:
      return v;
  }
}

int64_t SignExtend(uint64_t v, uint8_t width) {
  switch (width) {
    case 1:
      return static_cast<int8_t>(v);
    case 2:
      return static_cast<int16_t>(v);
    case 4:
      return static_cast<int32_t>(v);
    default:
      return static_cast<int64_t>(v);
  }
}

float BitsToF32(uint64_t bits) {
  float f;
  uint32_t b32 = static_cast<uint32_t>(bits);
  std::memcpy(&f, &b32, 4);
  return f;
}

uint64_t F32ToBits(float f) {
  uint32_t b32;
  std::memcpy(&b32, &f, 4);
  return b32;
}

double BitsToF64(uint64_t bits) {
  double d;
  std::memcpy(&d, &bits, 8);
  return d;
}

uint64_t F64ToBits(double d) {
  uint64_t b;
  std::memcpy(&b, &d, 8);
  return b;
}

double CanonMin(double a, double b) {
  if (std::isnan(a) || std::isnan(b)) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  if (a == b) {
    return std::signbit(a) ? a : b;
  }
  return a < b ? a : b;
}

double CanonMax(double a, double b) {
  if (std::isnan(a) || std::isnan(b)) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  if (a == b) {
    return std::signbit(a) ? b : a;
  }
  return a > b ? a : b;
}

double ApplyRounding(double v, int mode) {
  switch (mode) {
    case 0:
      return std::nearbyint(v);
    case 1:
      return std::floor(v);
    case 2:
      return std::ceil(v);
    default:
      return std::trunc(v);
  }
}

}  // namespace

PerfCounters PerfCounters::operator-(const PerfCounters& other) const {
  PerfCounters r = *this;
  r.instructions_retired -= other.instructions_retired;
  r.micro_cycles -= other.micro_cycles;
  r.loads_retired -= other.loads_retired;
  r.stores_retired -= other.stores_retired;
  r.branches_retired -= other.branches_retired;
  r.cond_branches_retired -= other.cond_branches_retired;
  r.taken_branches -= other.taken_branches;
  r.calls -= other.calls;
  r.l1i_misses -= other.l1i_misses;
  r.l1d_misses -= other.l1d_misses;
  r.l2_misses -= other.l2_misses;
  return r;
}

PerfCounters& PerfCounters::operator+=(const PerfCounters& other) {
  instructions_retired += other.instructions_retired;
  micro_cycles += other.micro_cycles;
  loads_retired += other.loads_retired;
  stores_retired += other.stores_retired;
  branches_retired += other.branches_retired;
  cond_branches_retired += other.cond_branches_retired;
  taken_branches += other.taken_branches;
  calls += other.calls;
  l1i_misses += other.l1i_misses;
  l1d_misses += other.l1d_misses;
  l2_misses += other.l2_misses;
  return *this;
}

SimMachine::SimMachine(const MProgram* program, CostModel cost)
    : program_(program), cost_(cost), stack_(kStackSize) {
  heap_.resize(size_t{program->memory_pages} * 65536);
  max_heap_pages_ = program->max_memory_pages;
  globals_.resize(program->num_globals + 8);  // slot 0 reserved: stack limit
  globals_[MProgram::kStackLimitSlot] = kStackBase + 4096;  // red zone
  for (const auto& [slot, bits] : program->global_inits) {
    globals_[slot] = bits;
  }
  table_image_.resize(program->table.size() * 8);
  for (size_t i = 0; i < program->table.size(); i++) {
    uint32_t sig = program->table[i].sig_id;
    uint32_t fn = program->table[i].func_index;
    std::memcpy(&table_image_[i * 8], &sig, 4);
    std::memcpy(&table_image_[i * 8 + 4], &fn, 4);
  }
  for (const auto& [offset, bytes] : program->data_segments) {
    if (size_t{offset} + bytes.size() <= heap_.size()) {
      std::memcpy(heap_.data() + offset, bytes.data(), bytes.size());
    }
  }
}

void SimMachine::RegisterHost(uint32_t idx, HostHook hook) {
  if (hooks_.size() <= idx) {
    hooks_.resize(idx + 1);
  }
  hooks_[idx] = std::move(hook);
}

double SimMachine::xmm_f64(Xmm r) const { return BitsToF64(xmms_[static_cast<uint8_t>(r)]); }
void SimMachine::set_xmm_f64(Xmm r, double v) { xmms_[static_cast<uint8_t>(r)] = F64ToBits(v); }

bool SimMachine::HeapRead(uint32_t addr, void* out, uint32_t size) const {
  if (uint64_t{addr} + size > heap_.size()) {
    return false;
  }
  std::memcpy(out, heap_.data() + addr, size);
  return true;
}

bool SimMachine::HeapWrite(uint32_t addr, const void* data, uint32_t size) {
  if (uint64_t{addr} + size > heap_.size()) {
    return false;
  }
  std::memcpy(heap_.data() + addr, data, size);
  return true;
}

void SimMachine::ResetCounters() {
  counters_ = PerfCounters{};
  host_micro_cycles_ = 0;
  l1i_.Reset();
  l1d_.Reset();
  l2_.Reset();
}

void SimMachine::ChargeHostCycles(uint64_t cycles) {
  counters_.micro_cycles += cycles * 4;
  host_micro_cycles_ += cycles * 4;
}

uint8_t* SimMachine::MemPtr(uint64_t addr, uint32_t size) {
  if (addr >= kHeapBase) {
    uint64_t off = addr - kHeapBase;
    if (off + size <= heap_.size()) {
      return heap_.data() + off;
    }
    return nullptr;
  }
  if (addr >= kTableBase) {
    uint64_t off = addr - kTableBase;
    if (off + size <= table_image_.size()) {
      return table_image_.data() + off;
    }
    return nullptr;
  }
  if (addr >= kGlobalsBase) {
    uint64_t off = addr - kGlobalsBase;
    if (off + size <= globals_.size() * 8) {
      return reinterpret_cast<uint8_t*>(globals_.data()) + off;
    }
    return nullptr;
  }
  if (addr >= kStackBase) {
    uint64_t off = addr - kStackBase;
    if (off + size <= stack_.size()) {
      return stack_.data() + off;
    }
    return nullptr;
  }
  return nullptr;
}

uint64_t SimMachine::EffectiveAddr(const MemRef& m) const {
  uint64_t addr = static_cast<uint64_t>(static_cast<int64_t>(m.disp));
  if (m.base.has_value()) {
    addr += gpr(*m.base);
  }
  if (m.index.has_value()) {
    addr += gpr(*m.index) * m.scale;
  }
  return addr;
}

bool SimMachine::EvalCond(Cond c) const {
  if (cmp_kind_ == CmpKind::kFloat) {
    // ucomisd semantics: unordered sets ZF, PF, CF.
    bool zf = fp_equal_ || fp_unordered_;
    bool cf = fp_less_ || fp_unordered_;
    bool pf = fp_unordered_;
    switch (c) {
      case Cond::kE: return zf;
      case Cond::kNe: return !zf;
      case Cond::kB: return cf;
      case Cond::kBe: return cf || zf;
      case Cond::kA: return !cf && !zf;
      case Cond::kAe: return !cf;
      case Cond::kP: return pf;
      case Cond::kNp: return !pf;
      default: return false;  // signed conds unused after FP compare
    }
  }
  if (cmp_kind_ == CmpKind::kTest) {
    bool zf = cmp_test_ == 0;
    bool sf = cmp_test_sign_;
    switch (c) {
      case Cond::kE: return zf;
      case Cond::kNe: return !zf;
      case Cond::kS: return sf;
      case Cond::kNs: return !sf;
      case Cond::kL: return sf;        // OF=0 after test
      case Cond::kGe: return !sf;
      case Cond::kLe: return zf || sf;
      case Cond::kG: return !zf && !sf;
      default: return false;
    }
  }
  switch (c) {
    case Cond::kE: return cmp_ua_ == cmp_ub_;
    case Cond::kNe: return cmp_ua_ != cmp_ub_;
    case Cond::kL: return cmp_sa_ < cmp_sb_;
    case Cond::kLe: return cmp_sa_ <= cmp_sb_;
    case Cond::kG: return cmp_sa_ > cmp_sb_;
    case Cond::kGe: return cmp_sa_ >= cmp_sb_;
    case Cond::kB: return cmp_ua_ < cmp_ub_;
    case Cond::kBe: return cmp_ua_ <= cmp_ub_;
    case Cond::kA: return cmp_ua_ > cmp_ub_;
    case Cond::kAe: return cmp_ua_ >= cmp_ub_;
    case Cond::kS: return cmp_sa_ - cmp_sb_ < 0;
    case Cond::kNs: return cmp_sa_ - cmp_sb_ >= 0;
    default: return false;
  }
}

void SimMachine::WriteStack(uint64_t addr, uint64_t bits) {
  uint8_t* p = MemPtr(addr, 8);
  if (p != nullptr) {
    std::memcpy(p, &bits, 8);
  }
}

MachineResult SimMachine::RunAt(uint32_t func_index, uint64_t args_base) {
  MachineResult result;
  if (func_index >= program_->funcs.size()) {
    result.error = "function index out of range";
    result.trap = TrapKind::kHostError;
    return result;
  }
  set_gpr(Gpr::kRsp, args_base - 8);
  set_gpr(Gpr::kRbx, kHeapBase);
  set_gpr(Gpr::kR15, kHeapBase);
  frames_.clear();
  cur_func_ = func_index;
  pc_ = 0;
  pending_trap_ = TrapKind::kNone;
  trap_msg_.clear();
  TrapKind trap = Exec();
  if (trap != TrapKind::kNone) {
    result.ok = false;
    result.trap = trap;
    result.error = trap_msg_.empty() ? TrapKindName(trap) : trap_msg_;
    return result;
  }
  result.ok = true;
  result.ret_i = gpr(Gpr::kRax);
  result.ret_f = xmm_f64(Xmm::kXmm0);
  return result;
}

MachineResult SimMachine::Run(uint32_t func_index, const std::vector<uint64_t>& int_args) {
  MachineResult result;
  if (func_index >= program_->funcs.size()) {
    result.error = "function index out of range";
    result.trap = TrapKind::kHostError;
    return result;
  }
  static const Gpr kArgRegs[6] = {Gpr::kRdi, Gpr::kRsi, Gpr::kRdx,
                                  Gpr::kRcx, Gpr::kR8,  Gpr::kR9};
  for (size_t i = 0; i < int_args.size() && i < 6; i++) {
    set_gpr(kArgRegs[i], int_args[i]);
  }
  set_gpr(Gpr::kRsp, kStackBase + kStackSize);
  set_gpr(Gpr::kRbx, kHeapBase);   // heap base for JIT-profile code
  set_gpr(Gpr::kR15, kHeapBase);   // heap base for Firefox-profile code
  frames_.clear();
  cur_func_ = func_index;
  pc_ = 0;
  pending_trap_ = TrapKind::kNone;
  trap_msg_.clear();

  TrapKind trap = Exec();
  if (trap != TrapKind::kNone) {
    result.ok = false;
    result.trap = trap;
    result.error = trap_msg_.empty() ? TrapKindName(trap) : trap_msg_;
    return result;
  }
  result.ok = true;
  result.ret_i = gpr(Gpr::kRax);
  result.ret_f = xmm_f64(Xmm::kXmm0);
  return result;
}

TrapKind SimMachine::Exec() {
  uint64_t fuel = fuel_ != 0 ? fuel_ : kDefaultFuel;

  // Data access helper: routes, counts, charges cache penalties.
  auto data_access = [&](uint64_t addr, uint32_t size, bool is_store,
                         uint8_t** out) -> bool {
    uint8_t* p = MemPtr(addr, size);
    if (p == nullptr) {
      pending_trap_ = TrapKind::kMemoryOutOfBounds;
      trap_msg_ = StrFormat("data access at 0x%llx size %u", (unsigned long long)addr, size);
      return false;
    }
    if (is_store) {
      counters_.stores_retired++;
      counters_.micro_cycles += cost_.store;
    } else {
      counters_.loads_retired++;
      counters_.micro_cycles += cost_.load;
    }
    if (!l1d_.Access(addr)) {
      counters_.l1d_misses++;
      counters_.micro_cycles += cost_.l1_miss;
      if (!l2_.Access(addr)) {
        counters_.l2_misses++;
        counters_.micro_cycles += cost_.l2_miss;
      }
    }
    *out = p;
    return true;
  };

  // Reads an integer operand value (width-truncated, optionally sign-extended
  // by the caller). Returns false on memory trap.
  auto read_int = [&](const Operand& o, uint8_t width, uint64_t* out) -> bool {
    switch (o.kind) {
      case OperandKind::kGpr:
        *out = TruncToWidth(gpr(o.gpr), width);
        return true;
      case OperandKind::kImm:
        *out = TruncToWidth(static_cast<uint64_t>(o.imm), width);
        return true;
      case OperandKind::kMem: {
        uint8_t* p;
        if (!data_access(EffectiveAddr(o.mem), width, false, &p)) {
          return false;
        }
        uint64_t v = 0;
        std::memcpy(&v, p, width);
        *out = v;
        return true;
      }
      default:
        pending_trap_ = TrapKind::kHostError;
        trap_msg_ = "bad int operand";
        return false;
    }
  };

  // Writes an integer result. Width-4 register writes zero the upper half
  // (x86 semantics); widths 1/2 to registers write the full value zero-based
  // (we only use them via explicit Load/Setcc).
  auto write_int = [&](const Operand& o, uint8_t width, uint64_t v) -> bool {
    switch (o.kind) {
      case OperandKind::kGpr:
        set_gpr(o.gpr, width == 8 ? v : TruncToWidth(v, width));
        return true;
      case OperandKind::kMem: {
        uint8_t* p;
        if (!data_access(EffectiveAddr(o.mem), width, true, &p)) {
          return false;
        }
        uint64_t t = TruncToWidth(v, width);
        std::memcpy(p, &t, width);
        return true;
      }
      default:
        pending_trap_ = TrapKind::kHostError;
        trap_msg_ = "bad int dest";
        return false;
    }
  };

  auto read_fp_bits = [&](const Operand& o, uint8_t width, uint64_t* out) -> bool {
    switch (o.kind) {
      case OperandKind::kXmm:
        *out = xmms_[static_cast<uint8_t>(o.xmm)];
        return true;
      case OperandKind::kImm:
        *out = static_cast<uint64_t>(o.imm);
        return true;
      case OperandKind::kGpr:
        *out = gpr(o.gpr);
        return true;
      case OperandKind::kMem: {
        uint8_t* p;
        if (!data_access(EffectiveAddr(o.mem), width, false, &p)) {
          return false;
        }
        uint64_t v = 0;
        std::memcpy(&v, p, width);
        *out = v;
        return true;
      }
      default:
        pending_trap_ = TrapKind::kHostError;
        trap_msg_ = "bad fp operand";
        return false;
    }
  };

  auto write_fp_bits = [&](const Operand& o, uint8_t width, uint64_t v) -> bool {
    switch (o.kind) {
      case OperandKind::kXmm:
        xmms_[static_cast<uint8_t>(o.xmm)] = width == 4 ? (v & 0xffffffffull) : v;
        return true;
      case OperandKind::kMem: {
        uint8_t* p;
        if (!data_access(EffectiveAddr(o.mem), width, true, &p)) {
          return false;
        }
        std::memcpy(p, &v, width);
        return true;
      }
      default:
        pending_trap_ = TrapKind::kHostError;
        trap_msg_ = "bad fp dest";
        return false;
    }
  };

  while (true) {
    const MFunction& func = program_->funcs[cur_func_];
    if (pc_ >= func.code.size()) {
      pending_trap_ = TrapKind::kHostError;
      trap_msg_ = StrFormat("pc out of range in %s", func.name.c_str());
      return pending_trap_;
    }
    const MInstr& instr = func.code[pc_];

    // Instruction fetch through the L1i model.
    uint64_t fetch_addr = func.code_base + func.instr_offsets[pc_];
    uint32_t fetch_size = EncodedSize(instr);
    uint32_t imiss = l1i_.AccessRange(fetch_addr, fetch_size);
    if (imiss > 0) {
      counters_.l1i_misses += imiss;
      counters_.micro_cycles += cost_.l1_miss * imiss;
      for (uint32_t k = 0; k < imiss; k++) {
        if (!l2_.Access(fetch_addr + uint64_t{k} * 64)) {
          counters_.l2_misses++;
          counters_.micro_cycles += cost_.l2_miss;
        }
      }
    }

    counters_.instructions_retired++;
    if (counters_.instructions_retired > fuel) {
      pending_trap_ = TrapKind::kFuelExhausted;
      trap_msg_ = "instruction budget exceeded";
      return pending_trap_;
    }

    uint32_t next_pc = pc_ + 1;

    switch (instr.op) {
      case MOp::kNop:
        counters_.micro_cycles += cost_.simple;
        break;

      case MOp::kMov:
      case MOp::kMovImm64: {
        counters_.micro_cycles += cost_.simple;
        uint64_t v;
        if (!read_int(instr.src, instr.width, &v)) {
          return pending_trap_;
        }
        if (!write_int(instr.dst, instr.width, v)) {
          return pending_trap_;
        }
        break;
      }

      case MOp::kLoad: {
        counters_.micro_cycles += cost_.simple;  // load cost added in data_access
        uint8_t* p;
        if (!data_access(EffectiveAddr(instr.src.mem), instr.width, false, &p)) {
          return pending_trap_;
        }
        uint64_t v = 0;
        std::memcpy(&v, p, instr.width);
        if (instr.sign_extend) {
          v = static_cast<uint64_t>(SignExtend(v, instr.width));
          if (instr.width != 8) {
            // movsx to 64-bit register keeps full sign extension; 32-bit
            // target forms are modeled by the codegen choosing width.
          }
        }
        set_gpr(instr.dst.gpr, instr.sign_extend ? v : TruncToWidth(v, instr.width));
        break;
      }

      case MOp::kStore: {
        counters_.micro_cycles += cost_.simple;
        uint64_t v;
        if (!read_int(instr.src, instr.width, &v)) {
          return pending_trap_;
        }
        uint8_t* p;
        if (!data_access(EffectiveAddr(instr.dst.mem), instr.width, true, &p)) {
          return pending_trap_;
        }
        std::memcpy(p, &v, instr.width);
        break;
      }

      case MOp::kLea: {
        counters_.micro_cycles += cost_.simple;
        set_gpr(instr.dst.gpr,
                instr.width == 8 ? EffectiveAddr(instr.src.mem)
                                 : TruncToWidth(EffectiveAddr(instr.src.mem), 4));
        break;
      }

      case MOp::kPush: {
        counters_.micro_cycles += cost_.simple;
        set_gpr(Gpr::kRsp, gpr(Gpr::kRsp) - 8);
        uint8_t* p;
        if (!data_access(gpr(Gpr::kRsp), 8, true, &p)) {
          return pending_trap_;
        }
        uint64_t v = gpr(instr.dst.gpr);
        std::memcpy(p, &v, 8);
        break;
      }

      case MOp::kPop: {
        counters_.micro_cycles += cost_.simple;
        uint8_t* p;
        if (!data_access(gpr(Gpr::kRsp), 8, false, &p)) {
          return pending_trap_;
        }
        uint64_t v;
        std::memcpy(&v, p, 8);
        set_gpr(instr.dst.gpr, v);
        set_gpr(Gpr::kRsp, gpr(Gpr::kRsp) + 8);
        break;
      }

      case MOp::kXchg: {
        counters_.micro_cycles += cost_.simple;
        uint64_t a = gpr(instr.dst.gpr);
        set_gpr(instr.dst.gpr, gpr(instr.src.gpr));
        set_gpr(instr.src.gpr, a);
        break;
      }

      case MOp::kAdd:
      case MOp::kSub:
      case MOp::kAnd:
      case MOp::kOr:
      case MOp::kXor: {
        counters_.micro_cycles += cost_.simple;
        uint64_t a;
        uint64_t b;
        if (!read_int(instr.dst, instr.width, &a) || !read_int(instr.src, instr.width, &b)) {
          return pending_trap_;
        }
        uint64_t r = 0;
        switch (instr.op) {
          case MOp::kAdd: r = a + b; break;
          case MOp::kSub: r = a - b; break;
          case MOp::kAnd: r = a & b; break;
          case MOp::kOr: r = a | b; break;
          default: r = a ^ b; break;
        }
        if (!write_int(instr.dst, instr.width, r)) {
          return pending_trap_;
        }
        break;
      }

      case MOp::kImul: {
        counters_.micro_cycles += cost_.imul;
        uint64_t a;
        uint64_t b;
        if (!read_int(instr.dst, instr.width, &a) || !read_int(instr.src, instr.width, &b)) {
          return pending_trap_;
        }
        if (!write_int(instr.dst, instr.width, a * b)) {
          return pending_trap_;
        }
        break;
      }

      case MOp::kNeg: {
        counters_.micro_cycles += cost_.simple;
        uint64_t a;
        if (!read_int(instr.dst, instr.width, &a)) {
          return pending_trap_;
        }
        if (!write_int(instr.dst, instr.width, 0 - a)) {
          return pending_trap_;
        }
        break;
      }

      case MOp::kNot: {
        counters_.micro_cycles += cost_.simple;
        uint64_t a;
        if (!read_int(instr.dst, instr.width, &a)) {
          return pending_trap_;
        }
        if (!write_int(instr.dst, instr.width, ~a)) {
          return pending_trap_;
        }
        break;
      }

      case MOp::kShl:
      case MOp::kShr:
      case MOp::kSar:
      case MOp::kRol:
      case MOp::kRor: {
        counters_.micro_cycles += cost_.simple;
        uint64_t a;
        if (!read_int(instr.dst, instr.width, &a)) {
          return pending_trap_;
        }
        uint64_t count;
        if (instr.src2.is_imm()) {
          count = static_cast<uint64_t>(instr.src2.imm);
        } else {
          count = gpr(Gpr::kRcx);  // cl convention
        }
        uint32_t bits = instr.width * 8;
        count &= bits - 1;
        uint64_t r = 0;
        switch (instr.op) {
          case MOp::kShl:
            r = a << count;
            break;
          case MOp::kShr:
            r = a >> count;
            break;
          case MOp::kSar:
            r = static_cast<uint64_t>(SignExtend(a, instr.width) >> count);
            break;
          case MOp::kRol:
            r = count == 0 ? a : (a << count) | (a >> (bits - count));
            break;
          default:
            r = count == 0 ? a : (a >> count) | (a << (bits - count));
            break;
        }
        if (!write_int(instr.dst, instr.width, r)) {
          return pending_trap_;
        }
        break;
      }

      case MOp::kCmp: {
        counters_.micro_cycles += cost_.simple;
        uint64_t a;
        uint64_t b;
        if (!read_int(instr.dst, instr.width, &a) || !read_int(instr.src, instr.width, &b)) {
          return pending_trap_;
        }
        cmp_kind_ = CmpKind::kInt;
        cmp_ua_ = a;
        cmp_ub_ = b;
        cmp_sa_ = SignExtend(a, instr.width);
        cmp_sb_ = SignExtend(b, instr.width);
        break;
      }

      case MOp::kTest: {
        counters_.micro_cycles += cost_.simple;
        uint64_t a;
        uint64_t b;
        if (!read_int(instr.dst, instr.width, &a) || !read_int(instr.src, instr.width, &b)) {
          return pending_trap_;
        }
        cmp_kind_ = CmpKind::kTest;
        cmp_test_ = a & b;
        cmp_test_sign_ = SignExtend(cmp_test_, instr.width) < 0;
        break;
      }

      case MOp::kCdq: {
        counters_.micro_cycles += cost_.simple;
        if (instr.width == 8) {
          set_gpr(Gpr::kRdx,
                  static_cast<int64_t>(gpr(Gpr::kRax)) < 0 ? ~uint64_t{0} : 0);
        } else {
          uint32_t eax = static_cast<uint32_t>(gpr(Gpr::kRax));
          set_gpr(Gpr::kRdx, static_cast<int32_t>(eax) < 0 ? 0xffffffffull : 0);
        }
        break;
      }

      case MOp::kIdiv:
      case MOp::kDiv: {
        counters_.micro_cycles += cost_.idiv;
        uint64_t divisor;
        if (!read_int(instr.src, instr.width, &divisor)) {
          return pending_trap_;
        }
        if (divisor == 0) {
          pending_trap_ = TrapKind::kDivByZero;
          trap_msg_ = "division by zero";
          return pending_trap_;
        }
        if (instr.width == 4) {
          uint64_t dividend =
              (TruncToWidth(gpr(Gpr::kRdx), 4) << 32) | TruncToWidth(gpr(Gpr::kRax), 4);
          if (instr.op == MOp::kIdiv) {
            int64_t sdividend = static_cast<int64_t>(dividend);
            int64_t sdiv = SignExtend(divisor, 4);
            int64_t q = sdividend / sdiv;
            if (q > INT32_MAX || q < INT32_MIN) {
              pending_trap_ = TrapKind::kIntegerOverflow;
              trap_msg_ = "idiv overflow";
              return pending_trap_;
            }
            set_gpr(Gpr::kRax, TruncToWidth(static_cast<uint64_t>(q), 4));
            set_gpr(Gpr::kRdx, TruncToWidth(static_cast<uint64_t>(sdividend % sdiv), 4));
          } else {
            uint64_t q = dividend / divisor;
            if (q > UINT32_MAX) {
              pending_trap_ = TrapKind::kIntegerOverflow;
              trap_msg_ = "div overflow";
              return pending_trap_;
            }
            set_gpr(Gpr::kRax, q);
            set_gpr(Gpr::kRdx, dividend % divisor);
          }
        } else {
          // 64-bit: model the common cqo+idiv pair (dividend = rax).
          if (instr.op == MOp::kIdiv) {
            int64_t sdividend = static_cast<int64_t>(gpr(Gpr::kRax));
            int64_t sdiv = static_cast<int64_t>(divisor);
            if (sdividend == INT64_MIN && sdiv == -1) {
              pending_trap_ = TrapKind::kIntegerOverflow;
              trap_msg_ = "idiv overflow";
              return pending_trap_;
            }
            set_gpr(Gpr::kRax, static_cast<uint64_t>(sdividend / sdiv));
            set_gpr(Gpr::kRdx, static_cast<uint64_t>(sdividend % sdiv));
          } else {
            uint64_t dividend = gpr(Gpr::kRax);
            set_gpr(Gpr::kRax, dividend / divisor);
            set_gpr(Gpr::kRdx, dividend % divisor);
          }
        }
        break;
      }

      case MOp::kSetcc: {
        counters_.micro_cycles += cost_.simple;
        set_gpr(instr.dst.gpr, EvalCond(instr.cond) ? 1 : 0);
        break;
      }

      case MOp::kLzcnt: {
        counters_.micro_cycles += cost_.simple;
        uint64_t a;
        if (!read_int(instr.src, instr.width, &a)) {
          return pending_trap_;
        }
        uint64_t r = instr.width == 8 ? static_cast<uint64_t>(std::countl_zero(a))
                                      : std::countl_zero(static_cast<uint32_t>(a));
        set_gpr(instr.dst.gpr, r);
        break;
      }

      case MOp::kTzcnt: {
        counters_.micro_cycles += cost_.simple;
        uint64_t a;
        if (!read_int(instr.src, instr.width, &a)) {
          return pending_trap_;
        }
        uint64_t r = instr.width == 8 ? static_cast<uint64_t>(std::countr_zero(a))
                                      : std::countr_zero(static_cast<uint32_t>(a));
        set_gpr(instr.dst.gpr, r);
        break;
      }

      case MOp::kPopcnt: {
        counters_.micro_cycles += cost_.simple;
        uint64_t a;
        if (!read_int(instr.src, instr.width, &a)) {
          return pending_trap_;
        }
        set_gpr(instr.dst.gpr, static_cast<uint64_t>(std::popcount(a)));
        break;
      }

      case MOp::kMovsxd: {
        counters_.micro_cycles += cost_.simple;
        uint64_t a;
        if (!read_int(instr.src, 4, &a)) {
          return pending_trap_;
        }
        set_gpr(instr.dst.gpr, static_cast<uint64_t>(static_cast<int64_t>(static_cast<int32_t>(a))));
        break;
      }

      case MOp::kJmp: {
        counters_.micro_cycles += cost_.branch + cost_.branch_taken_extra;
        counters_.branches_retired++;
        counters_.taken_branches++;
        next_pc = instr.label;
        break;
      }

      case MOp::kJcc: {
        counters_.micro_cycles += cost_.branch;
        counters_.branches_retired++;
        counters_.cond_branches_retired++;
        if (EvalCond(instr.cond)) {
          counters_.taken_branches++;
          counters_.micro_cycles += cost_.branch_taken_extra;
          next_pc = instr.label;
        }
        break;
      }

      case MOp::kCall: {
        counters_.micro_cycles += cost_.call;
        counters_.branches_retired++;
        counters_.calls++;
        // Return-address push (architecturally a store).
        set_gpr(Gpr::kRsp, gpr(Gpr::kRsp) - 8);
        uint8_t* p;
        if (!data_access(gpr(Gpr::kRsp), 8, true, &p)) {
          return pending_trap_;
        }
        if (frames_.size() >= 4096) {
          pending_trap_ = TrapKind::kCallStackExhausted;
          return pending_trap_;
        }
        frames_.push_back(Frame{cur_func_, pc_ + 1});
        cur_func_ = instr.func;
        next_pc = 0;
        break;
      }

      case MOp::kCallReg: {
        counters_.micro_cycles += cost_.call;
        counters_.branches_retired++;
        counters_.calls++;
        uint64_t target = gpr(instr.dst.gpr);
        if (target >= program_->funcs.size()) {
          pending_trap_ = TrapKind::kIndirectCallOutOfBounds;
          trap_msg_ = "bad indirect target";
          return pending_trap_;
        }
        set_gpr(Gpr::kRsp, gpr(Gpr::kRsp) - 8);
        uint8_t* p;
        if (!data_access(gpr(Gpr::kRsp), 8, true, &p)) {
          return pending_trap_;
        }
        if (frames_.size() >= 4096) {
          pending_trap_ = TrapKind::kCallStackExhausted;
          return pending_trap_;
        }
        frames_.push_back(Frame{cur_func_, pc_ + 1});
        cur_func_ = static_cast<uint32_t>(target);
        next_pc = 0;
        break;
      }

      case MOp::kCallHost: {
        counters_.micro_cycles += cost_.host_call;
        counters_.branches_retired++;
        counters_.calls++;
        if (instr.func == kBuiltinTrapUnreachable || instr.func == kBuiltinTrapStack ||
            instr.func == kBuiltinTrapOob || instr.func == kBuiltinTrapNull ||
            instr.func == kBuiltinTrapSig) {
          switch (instr.func) {
            case kBuiltinTrapStack:
              pending_trap_ = TrapKind::kCallStackExhausted;
              break;
            case kBuiltinTrapOob:
              pending_trap_ = TrapKind::kIndirectCallOutOfBounds;
              break;
            case kBuiltinTrapNull:
              pending_trap_ = TrapKind::kIndirectCallNull;
              break;
            case kBuiltinTrapSig:
              pending_trap_ = TrapKind::kIndirectCallTypeMismatch;
              break;
            default:
              pending_trap_ = TrapKind::kUnreachable;
              break;
          }
          trap_msg_ = "trap stub";
          return pending_trap_;
        } else if (instr.func == kBuiltinMemorySize) {
          set_gpr(Gpr::kRax, heap_pages());
        } else if (instr.func == kBuiltinMemoryGrow) {
          uint64_t delta = TruncToWidth(gpr(Gpr::kRdi), 4);
          uint64_t old_pages = heap_pages();
          if (old_pages + delta > max_heap_pages_) {
            set_gpr(Gpr::kRax, TruncToWidth(~uint64_t{0}, 4));
          } else {
            heap_.resize((old_pages + delta) * 65536);
            set_gpr(Gpr::kRax, old_pages);
          }
        } else if (instr.func < hooks_.size() && hooks_[instr.func]) {
          hooks_[instr.func](*this);
          if (pending_trap_ != TrapKind::kNone) {
            return pending_trap_;
          }
        } else {
          pending_trap_ = TrapKind::kHostError;
          trap_msg_ = StrFormat("no host hook %u", instr.func);
          return pending_trap_;
        }
        break;
      }

      case MOp::kRet: {
        counters_.micro_cycles += cost_.ret;
        counters_.branches_retired++;
        if (frames_.empty()) {
          return TrapKind::kNone;  // outermost return: done
        }
        // Return-address pop (architecturally a load).
        uint8_t* p;
        if (!data_access(gpr(Gpr::kRsp), 8, false, &p)) {
          return pending_trap_;
        }
        set_gpr(Gpr::kRsp, gpr(Gpr::kRsp) + 8);
        Frame f = frames_.back();
        frames_.pop_back();
        cur_func_ = f.func;
        next_pc = f.ret_pc;
        break;
      }

      // ---------------- SSE double ----------------
      case MOp::kMovsd:
      case MOp::kMovss: {
        uint8_t w = instr.op == MOp::kMovss ? 4 : 8;
        counters_.micro_cycles += cost_.fp_mov;
        uint64_t v;
        if (!read_fp_bits(instr.src, w, &v)) {
          return pending_trap_;
        }
        if (!write_fp_bits(instr.dst, w, v)) {
          return pending_trap_;
        }
        break;
      }

      case MOp::kAddsd:
      case MOp::kSubsd:
      case MOp::kMulsd:
      case MOp::kDivsd:
      case MOp::kMinsd:
      case MOp::kMaxsd: {
        counters_.micro_cycles += instr.op == MOp::kDivsd ? cost_.fp_div : cost_.fp_simple;
        uint64_t ab;
        uint64_t bb;
        if (!read_fp_bits(instr.dst, 8, &ab) || !read_fp_bits(instr.src, 8, &bb)) {
          return pending_trap_;
        }
        double a = BitsToF64(ab);
        double b = BitsToF64(bb);
        double r = 0;
        switch (instr.op) {
          case MOp::kAddsd: r = a + b; break;
          case MOp::kSubsd: r = a - b; break;
          case MOp::kMulsd: r = a * b; break;
          case MOp::kDivsd: r = a / b; break;
          case MOp::kMinsd: r = CanonMin(a, b); break;
          default: r = CanonMax(a, b); break;
        }
        write_fp_bits(instr.dst, 8, F64ToBits(r));
        break;
      }

      case MOp::kSqrtsd: {
        counters_.micro_cycles += cost_.fp_sqrt;
        uint64_t bb;
        if (!read_fp_bits(instr.src, 8, &bb)) {
          return pending_trap_;
        }
        write_fp_bits(instr.dst, 8, F64ToBits(std::sqrt(BitsToF64(bb))));
        break;
      }

      case MOp::kAndpd:
      case MOp::kXorpd:
      case MOp::kOrpd: {
        counters_.micro_cycles += cost_.fp_simple;
        uint64_t ab;
        uint64_t bb;
        if (!read_fp_bits(instr.dst, 8, &ab) || !read_fp_bits(instr.src, 8, &bb)) {
          return pending_trap_;
        }
        uint64_t r = instr.op == MOp::kAndpd ? (ab & bb)
                     : instr.op == MOp::kOrpd ? (ab | bb)
                                              : (ab ^ bb);
        write_fp_bits(instr.dst, 8, r);
        break;
      }

      case MOp::kUcomisd:
      case MOp::kUcomiss: {
        counters_.micro_cycles += cost_.fp_simple / 2;
        uint8_t w = instr.op == MOp::kUcomiss ? 4 : 8;
        uint64_t ab;
        uint64_t bb;
        if (!read_fp_bits(instr.dst, w, &ab) || !read_fp_bits(instr.src, w, &bb)) {
          return pending_trap_;
        }
        double a = w == 4 ? BitsToF32(ab) : BitsToF64(ab);
        double b = w == 4 ? BitsToF32(bb) : BitsToF64(bb);
        cmp_kind_ = CmpKind::kFloat;
        fp_unordered_ = std::isnan(a) || std::isnan(b);
        fp_equal_ = a == b;
        fp_less_ = a < b;
        break;
      }

      case MOp::kCvtsi2sd: {
        counters_.micro_cycles += cost_.fp_simple;
        uint64_t v;
        if (!read_int(instr.src, instr.width, &v)) {
          return pending_trap_;
        }
        double r;
        if (instr.sign_extend) {
          r = static_cast<double>(SignExtend(v, instr.width));
        } else {
          r = static_cast<double>(v);
        }
        write_fp_bits(instr.dst, 8, F64ToBits(r));
        break;
      }

      case MOp::kCvtsi2ss: {
        counters_.micro_cycles += cost_.fp_simple;
        uint64_t v;
        if (!read_int(instr.src, instr.width, &v)) {
          return pending_trap_;
        }
        float r = instr.sign_extend ? static_cast<float>(SignExtend(v, instr.width))
                                    : static_cast<float>(v);
        write_fp_bits(instr.dst, 4, F32ToBits(r));
        break;
      }

      case MOp::kCvttsd2si:
      case MOp::kCvttss2si: {
        counters_.micro_cycles += cost_.fp_simple;
        uint64_t bb;
        uint8_t srcw = instr.op == MOp::kCvttss2si ? 4 : 8;
        if (!read_fp_bits(instr.src, srcw, &bb)) {
          return pending_trap_;
        }
        double v = srcw == 4 ? static_cast<double>(BitsToF32(bb)) : BitsToF64(bb);
        if (std::isnan(v)) {
          pending_trap_ = TrapKind::kInvalidConversion;
          trap_msg_ = "NaN to integer";
          return pending_trap_;
        }
        double t = std::trunc(v);
        bool ok;
        uint64_t r = 0;
        if (instr.width == 4) {
          if (instr.sign_extend) {
            ok = t >= -2147483648.0 && t <= 2147483647.0;
            if (ok) {
              r = TruncToWidth(static_cast<uint64_t>(static_cast<int64_t>(t)), 4);
            }
          } else {
            ok = t >= 0.0 && t <= 4294967295.0;
            if (ok) {
              r = static_cast<uint64_t>(t);
            }
          }
        } else {
          if (instr.sign_extend) {
            ok = t >= -9223372036854775808.0 && t < 9223372036854775808.0;
            if (ok) {
              r = static_cast<uint64_t>(static_cast<int64_t>(t));
            }
          } else {
            ok = t >= 0.0 && t < 18446744073709551616.0;
            if (ok) {
              r = static_cast<uint64_t>(t);
            }
          }
        }
        if (!ok) {
          pending_trap_ = TrapKind::kIntegerOverflow;
          trap_msg_ = "float to int overflow";
          return pending_trap_;
        }
        set_gpr(instr.dst.gpr, r);
        break;
      }

      case MOp::kRoundsd: {
        counters_.micro_cycles += cost_.fp_simple;
        uint64_t bb;
        if (!read_fp_bits(instr.src, 8, &bb)) {
          return pending_trap_;
        }
        write_fp_bits(instr.dst, 8,
                      F64ToBits(ApplyRounding(BitsToF64(bb), static_cast<int>(instr.src2.imm))));
        break;
      }

      case MOp::kRoundss: {
        counters_.micro_cycles += cost_.fp_simple;
        uint64_t bb;
        if (!read_fp_bits(instr.src, 4, &bb)) {
          return pending_trap_;
        }
        float r = static_cast<float>(
            ApplyRounding(static_cast<double>(BitsToF32(bb)), static_cast<int>(instr.src2.imm)));
        write_fp_bits(instr.dst, 4, F32ToBits(r));
        break;
      }

      case MOp::kAddss:
      case MOp::kSubss:
      case MOp::kMulss:
      case MOp::kDivss:
      case MOp::kMinss:
      case MOp::kMaxss: {
        counters_.micro_cycles += instr.op == MOp::kDivss ? cost_.fp_div : cost_.fp_simple;
        uint64_t ab;
        uint64_t bb;
        if (!read_fp_bits(instr.dst, 4, &ab) || !read_fp_bits(instr.src, 4, &bb)) {
          return pending_trap_;
        }
        float a = BitsToF32(ab);
        float b = BitsToF32(bb);
        float r = 0;
        switch (instr.op) {
          case MOp::kAddss: r = a + b; break;
          case MOp::kSubss: r = a - b; break;
          case MOp::kMulss: r = a * b; break;
          case MOp::kDivss: r = a / b; break;
          case MOp::kMinss: r = static_cast<float>(CanonMin(a, b)); break;
          default: r = static_cast<float>(CanonMax(a, b)); break;
        }
        write_fp_bits(instr.dst, 4, F32ToBits(r));
        break;
      }

      case MOp::kSqrtss: {
        counters_.micro_cycles += cost_.fp_sqrt;
        uint64_t bb;
        if (!read_fp_bits(instr.src, 4, &bb)) {
          return pending_trap_;
        }
        write_fp_bits(instr.dst, 4, F32ToBits(std::sqrt(BitsToF32(bb))));
        break;
      }

      case MOp::kCvtss2sd: {
        counters_.micro_cycles += cost_.fp_simple;
        uint64_t bb;
        if (!read_fp_bits(instr.src, 4, &bb)) {
          return pending_trap_;
        }
        write_fp_bits(instr.dst, 8, F64ToBits(static_cast<double>(BitsToF32(bb))));
        break;
      }

      case MOp::kCvtsd2ss: {
        counters_.micro_cycles += cost_.fp_simple;
        uint64_t bb;
        if (!read_fp_bits(instr.src, 8, &bb)) {
          return pending_trap_;
        }
        write_fp_bits(instr.dst, 4, F32ToBits(static_cast<float>(BitsToF64(bb))));
        break;
      }

      case MOp::kMovqToXmm: {
        counters_.micro_cycles += cost_.fp_mov;
        xmms_[static_cast<uint8_t>(instr.dst.xmm)] = gpr(instr.src.gpr);
        break;
      }

      case MOp::kMovqFromXmm: {
        counters_.micro_cycles += cost_.fp_mov;
        set_gpr(instr.dst.gpr, xmms_[static_cast<uint8_t>(instr.src.xmm)]);
        break;
      }
    }

    pc_ = next_pc;
  }
}

}  // namespace nsf
