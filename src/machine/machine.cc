#include "src/machine/machine.h"

#include <bit>
#include <cmath>
#include <cstring>
#include <limits>

#include "src/machine/bits.h"
#include "src/machine/decode.h"
#include "src/profile/sampled.h"
#include "src/support/str.h"
#include "src/telemetry/trace.h"

namespace nsf {

PerfCounters PerfCounters::operator-(const PerfCounters& other) const {
  PerfCounters r = *this;
  r.instructions_retired -= other.instructions_retired;
  r.micro_cycles -= other.micro_cycles;
  r.loads_retired -= other.loads_retired;
  r.stores_retired -= other.stores_retired;
  r.branches_retired -= other.branches_retired;
  r.cond_branches_retired -= other.cond_branches_retired;
  r.taken_branches -= other.taken_branches;
  r.calls -= other.calls;
  r.l1i_misses -= other.l1i_misses;
  r.l1d_misses -= other.l1d_misses;
  r.l2_misses -= other.l2_misses;
  return r;
}

PerfCounters& PerfCounters::operator+=(const PerfCounters& other) {
  instructions_retired += other.instructions_retired;
  micro_cycles += other.micro_cycles;
  loads_retired += other.loads_retired;
  stores_retired += other.stores_retired;
  branches_retired += other.branches_retired;
  cond_branches_retired += other.cond_branches_retired;
  taken_branches += other.taken_branches;
  calls += other.calls;
  l1i_misses += other.l1i_misses;
  l1d_misses += other.l1d_misses;
  l2_misses += other.l2_misses;
  return *this;
}

SimMachine::SimMachine(const MProgram* program, CostModel cost)
    : SimMachine(program, nullptr, nullptr, cost) {}

SimMachine::SimMachine(const MProgram* program, const DecodedProgram* decoded,
                       SimBufferPool* pool, CostModel cost)
    : program_(program), decoded_(decoded), pool_(pool), cost_(cost) {
  InitMemory(pool);
}

void SimMachine::InitMemory(SimBufferPool* pool) {
  if (pool != nullptr) {
    pool->acquires_++;
    if (pool->has_buffers_) {
      // Recycled buffers are scrubbed back to all-zero on release, so after
      // the resizes below they are indistinguishable from fresh allocations —
      // minus the page faults.
      pool->reuses_++;
      stack_ = std::move(pool->stack_);
      heap_ = std::move(pool->heap_);
      table_image_ = std::move(pool->table_);
      globals_ = std::move(pool->globals_);
      pool->has_buffers_ = false;
    }
  }
  stack_.resize(kStackSize);
  heap_.resize(size_t{program_->memory_pages} * 65536);
  max_heap_pages_ = program_->max_memory_pages;
  globals_.assign(program_->num_globals + 8, 0);  // slot 0 reserved: stack limit
  globals_[MProgram::kStackLimitSlot] = kStackBase + 4096;  // red zone
  for (const auto& [slot, bits] : program_->global_inits) {
    globals_[slot] = bits;
  }
  table_image_.resize(program_->table.size() * 8);
  for (size_t i = 0; i < program_->table.size(); i++) {
    uint32_t sig = program_->table[i].sig_id;
    uint32_t fn = program_->table[i].func_index;
    std::memcpy(&table_image_[i * 8], &sig, 4);
    std::memcpy(&table_image_[i * 8 + 4], &fn, 4);
  }
  for (const auto& [offset, bytes] : program_->data_segments) {
    if (size_t{offset} + bytes.size() <= heap_.size()) {
      std::memcpy(heap_.data() + offset, bytes.data(), bytes.size());
      if (offset < heap_dirty_lo_) {
        heap_dirty_lo_ = offset;
      }
      if (offset + bytes.size() > heap_dirty_hi_) {
        heap_dirty_hi_ = offset + bytes.size();
      }
    }
  }
}

SimMachine::~SimMachine() {
#ifdef NSF_DISPATCH_STATS
  static_assert(sizeof(dispatch_retires_) / sizeof(dispatch_retires_[0]) == kMaxDispatchHandlers,
                "machine.h's array size must mirror decode.h's kMaxDispatchHandlers");
  AccumulateDispatchStats(dispatch_retires_);
  AccumulateDispatchPairs(dispatch_pairs_);
#endif
  if (sample_sink_ != nullptr && !sample_entries_.empty()) {
    sample_sink_->Fold(sample_entries_.data(), sample_backedges_.data(),
                       static_cast<uint32_t>(sample_entries_.size()));
  }
  ReleaseBuffers();
}

void SimMachine::set_sampler(SampledProfile* sink, uint32_t period) {
  sample_sink_ = sink;
  sample_period_ = sink == nullptr ? 0 : period;
  sample_tick_ = sample_period_;
  if (sample_period_ != 0) {
    sample_entries_.assign(program_->funcs.size(), 0);
    sample_backedges_.assign(program_->funcs.size(), 0);
  }
}

void SimMachine::RecordSample(uint32_t func, bool backedge) {
  sample_tick_ = sample_period_;
  if (func < sample_entries_.size()) {
    (backedge ? sample_backedges_ : sample_entries_)[func]++;
  }
}

void SimMachine::ReleaseBuffers() {
  if (pool_ == nullptr) {
    return;
  }
  telemetry::Span span("pool.scrub", "machine");
  // Restore the all-zero invariant over exactly the ranges this run dirtied.
  if (stack_dirty_lo_ < stack_.size()) {
    std::memset(stack_.data() + stack_dirty_lo_, 0, stack_.size() - stack_dirty_lo_);
  }
  uint64_t heap_hi = heap_exposed_ ? heap_.size()
                                   : (heap_dirty_hi_ < heap_.size() ? heap_dirty_hi_
                                                                    : heap_.size());
  uint64_t heap_lo = heap_exposed_ ? 0 : heap_dirty_lo_;
  if (heap_lo < heap_hi) {
    std::memset(heap_.data() + heap_lo, 0, heap_hi - heap_lo);
  }
  if (span.active()) {
    span.arg("stack_bytes", stack_dirty_lo_ < stack_.size() ? stack_.size() - stack_dirty_lo_ : 0);
    span.arg("heap_bytes", heap_lo < heap_hi ? heap_hi - heap_lo : 0);
  }
  std::fill(globals_.begin(), globals_.end(), 0);
  // The table image is fully overwritten at construction, so it needs no
  // scrub; vector::resize zero-fills any growth on the next acquire.
  pool_->stack_ = std::move(stack_);
  pool_->heap_ = std::move(heap_);
  pool_->table_ = std::move(table_image_);
  pool_->globals_ = std::move(globals_);
  pool_->has_buffers_ = true;
}

void SimMachine::RegisterHost(uint32_t idx, HostHook hook) {
  if (hooks_.size() <= idx) {
    hooks_.resize(idx + 1);
  }
  hooks_[idx] = std::move(hook);
}

double SimMachine::xmm_f64(Xmm r) const { return BitsToF64(xmms_[static_cast<uint8_t>(r)]); }
void SimMachine::set_xmm_f64(Xmm r, double v) { xmms_[static_cast<uint8_t>(r)] = F64ToBits(v); }

bool SimMachine::HeapRead(uint32_t addr, void* out, uint32_t size) const {
  if (uint64_t{addr} + size > heap_.size()) {
    return false;
  }
  std::memcpy(out, heap_.data() + addr, size);
  return true;
}

bool SimMachine::HeapWrite(uint32_t addr, const void* data, uint32_t size) {
  if (uint64_t{addr} + size > heap_.size()) {
    return false;
  }
  std::memcpy(heap_.data() + addr, data, size);
  NoteStore(kHeapBase + addr, size);
  return true;
}

void SimMachine::ResetCounters() {
  counters_ = PerfCounters{};
  host_micro_cycles_ = 0;
  l1i_.Reset();
  l1d_.Reset();
  l2_.Reset();
}

void SimMachine::ChargeHostCycles(uint64_t cycles) {
  counters_.micro_cycles += cycles * 4;
  host_micro_cycles_ += cycles * 4;
}

uint64_t SimMachine::EffectiveAddr(const MemRef& m) const {
  uint64_t addr = static_cast<uint64_t>(static_cast<int64_t>(m.disp));
  if (m.base.has_value()) {
    addr += gpr(*m.base);
  }
  if (m.index.has_value()) {
    addr += gpr(*m.index) * m.scale;
  }
  return addr;
}

bool SimMachine::EvalCond(Cond c) const {
  if (cmp_kind_ == CmpKind::kFloat) {
    // ucomisd semantics: unordered sets ZF, PF, CF.
    bool zf = fp_equal_ || fp_unordered_;
    bool cf = fp_less_ || fp_unordered_;
    bool pf = fp_unordered_;
    switch (c) {
      case Cond::kE: return zf;
      case Cond::kNe: return !zf;
      case Cond::kB: return cf;
      case Cond::kBe: return cf || zf;
      case Cond::kA: return !cf && !zf;
      case Cond::kAe: return !cf;
      case Cond::kP: return pf;
      case Cond::kNp: return !pf;
      default: return false;  // signed conds unused after FP compare
    }
  }
  if (cmp_kind_ == CmpKind::kTest) {
    bool zf = cmp_test_ == 0;
    bool sf = cmp_test_sign_;
    switch (c) {
      case Cond::kE: return zf;
      case Cond::kNe: return !zf;
      case Cond::kS: return sf;
      case Cond::kNs: return !sf;
      case Cond::kL: return sf;        // OF=0 after test
      case Cond::kGe: return !sf;
      case Cond::kLe: return zf || sf;
      case Cond::kG: return !zf && !sf;
      default: return false;
    }
  }
  switch (c) {
    case Cond::kE: return cmp_ua_ == cmp_ub_;
    case Cond::kNe: return cmp_ua_ != cmp_ub_;
    case Cond::kL: return cmp_sa_ < cmp_sb_;
    case Cond::kLe: return cmp_sa_ <= cmp_sb_;
    case Cond::kG: return cmp_sa_ > cmp_sb_;
    case Cond::kGe: return cmp_sa_ >= cmp_sb_;
    case Cond::kB: return cmp_ua_ < cmp_ub_;
    case Cond::kBe: return cmp_ua_ <= cmp_ub_;
    case Cond::kA: return cmp_ua_ > cmp_ub_;
    case Cond::kAe: return cmp_ua_ >= cmp_ub_;
    case Cond::kS: return cmp_sa_ - cmp_sb_ < 0;
    case Cond::kNs: return cmp_sa_ - cmp_sb_ >= 0;
    default: return false;
  }
}

void SimMachine::WriteStack(uint64_t addr, uint64_t bits) {
  uint8_t* p = MemPtr(addr, 8);
  if (p != nullptr) {
    std::memcpy(p, &bits, 8);
    NoteStore(addr, 8);
  }
}

void SimMachine::FetchL1i(uint64_t addr, uint32_t size) {
  uint32_t imiss = l1i_.AccessRange(addr, size);
  if (imiss > 0) {
    counters_.l1i_misses += imiss;
    counters_.micro_cycles += cost_.l1_miss * imiss;
    for (uint32_t k = 0; k < imiss; k++) {
      if (!l2_.Access(addr + uint64_t{k} * 64)) {
        counters_.l2_misses++;
        counters_.micro_cycles += cost_.l2_miss;
      }
    }
  }
}

void SimMachine::EnsureDecoded() {
  if (decoded_ == nullptr) {
    owned_decoded_ = std::make_unique<DecodedProgram>(Predecode(*program_));
    decoded_ = owned_decoded_.get();
  }
}

MachineResult SimMachine::RunAt(uint32_t func_index, uint64_t args_base) {
  MachineResult result;
  if (func_index >= program_->funcs.size()) {
    result.error = "function index out of range";
    result.trap = TrapKind::kHostError;
    return result;
  }
  set_gpr(Gpr::kRsp, args_base - 8);
  set_gpr(Gpr::kRbx, kHeapBase);
  set_gpr(Gpr::kR15, kHeapBase);
  frames_.clear();
  cur_func_ = func_index;
  pc_ = 0;
  pending_trap_ = TrapKind::kNone;
  trap_msg_.clear();
  TrapKind trap;
  if (dispatch_ == SimDispatch::kLegacy) {
    trap = ExecLegacy();
  } else {
    EnsureDecoded();
    trap = ExecDecoded();
  }
  if (trap != TrapKind::kNone) {
    result.ok = false;
    result.trap = trap;
    result.error = trap_msg_.empty() ? TrapKindName(trap) : trap_msg_;
    return result;
  }
  result.ok = true;
  result.ret_i = gpr(Gpr::kRax);
  result.ret_f = xmm_f64(Xmm::kXmm0);
  return result;
}

MachineResult SimMachine::Run(uint32_t func_index, const std::vector<uint64_t>& int_args) {
  MachineResult result;
  if (func_index >= program_->funcs.size()) {
    result.error = "function index out of range";
    result.trap = TrapKind::kHostError;
    return result;
  }
  static const Gpr kArgRegs[6] = {Gpr::kRdi, Gpr::kRsi, Gpr::kRdx,
                                  Gpr::kRcx, Gpr::kR8,  Gpr::kR9};
  for (size_t i = 0; i < int_args.size() && i < 6; i++) {
    set_gpr(kArgRegs[i], int_args[i]);
  }
  set_gpr(Gpr::kRsp, kStackBase + kStackSize);
  set_gpr(Gpr::kRbx, kHeapBase);   // heap base for JIT-profile code
  set_gpr(Gpr::kR15, kHeapBase);   // heap base for Firefox-profile code
  frames_.clear();
  cur_func_ = func_index;
  pc_ = 0;
  pending_trap_ = TrapKind::kNone;
  trap_msg_.clear();

  TrapKind trap;
  if (dispatch_ == SimDispatch::kLegacy) {
    trap = ExecLegacy();
  } else {
    EnsureDecoded();
    trap = ExecDecoded();
  }
  if (trap != TrapKind::kNone) {
    result.ok = false;
    result.trap = trap;
    result.error = trap_msg_.empty() ? TrapKindName(trap) : trap_msg_;
    return result;
  }
  result.ok = true;
  result.ret_i = gpr(Gpr::kRax);
  result.ret_f = xmm_f64(Xmm::kXmm0);
  return result;
}

// --- Operand accessors (legacy/generic bodies) ---

// Reads an integer operand value (width-truncated, optionally sign-extended
// by the caller). Returns false on memory trap.
bool SimMachine::ReadInt(const Operand& o, uint8_t width, uint64_t* out) {
  switch (o.kind) {
    case OperandKind::kGpr:
      *out = TruncToWidth(gpr(o.gpr), width);
      return true;
    case OperandKind::kImm:
      *out = TruncToWidth(static_cast<uint64_t>(o.imm), width);
      return true;
    case OperandKind::kMem: {
      uint8_t* p;
      if (!DataAccess(EffectiveAddr(o.mem), width, false, &p)) {
        return false;
      }
      uint64_t v = 0;
      std::memcpy(&v, p, width);
      *out = v;
      return true;
    }
    default:
      pending_trap_ = TrapKind::kHostError;
      trap_msg_ = "bad int operand";
      return false;
  }
}

// Writes an integer result. Width-4 register writes zero the upper half
// (x86 semantics); widths 1/2 to registers write the full value zero-based
// (we only use them via explicit Load/Setcc).
bool SimMachine::WriteInt(const Operand& o, uint8_t width, uint64_t v) {
  switch (o.kind) {
    case OperandKind::kGpr:
      set_gpr(o.gpr, width == 8 ? v : TruncToWidth(v, width));
      return true;
    case OperandKind::kMem: {
      uint8_t* p;
      if (!DataAccess(EffectiveAddr(o.mem), width, true, &p)) {
        return false;
      }
      uint64_t t = TruncToWidth(v, width);
      std::memcpy(p, &t, width);
      return true;
    }
    default:
      pending_trap_ = TrapKind::kHostError;
      trap_msg_ = "bad int dest";
      return false;
  }
}

bool SimMachine::ReadFpBits(const Operand& o, uint8_t width, uint64_t* out) {
  switch (o.kind) {
    case OperandKind::kXmm:
      *out = xmms_[static_cast<uint8_t>(o.xmm)];
      return true;
    case OperandKind::kImm:
      *out = static_cast<uint64_t>(o.imm);
      return true;
    case OperandKind::kGpr:
      *out = gpr(o.gpr);
      return true;
    case OperandKind::kMem: {
      uint8_t* p;
      if (!DataAccess(EffectiveAddr(o.mem), width, false, &p)) {
        return false;
      }
      uint64_t v = 0;
      std::memcpy(&v, p, width);
      *out = v;
      return true;
    }
    default:
      pending_trap_ = TrapKind::kHostError;
      trap_msg_ = "bad fp operand";
      return false;
  }
}

bool SimMachine::WriteFpBits(const Operand& o, uint8_t width, uint64_t v) {
  switch (o.kind) {
    case OperandKind::kXmm:
      xmms_[static_cast<uint8_t>(o.xmm)] = width == 4 ? (v & 0xffffffffull) : v;
      return true;
    case OperandKind::kMem: {
      uint8_t* p;
      if (!DataAccess(EffectiveAddr(o.mem), width, true, &p)) {
        return false;
      }
      std::memcpy(p, &v, width);
      return true;
    }
    default:
      pending_trap_ = TrapKind::kHostError;
      trap_msg_ = "bad fp dest";
      return false;
  }
}

bool SimMachine::DivOp(bool is_signed, uint8_t width, uint64_t divisor) {
  if (divisor == 0) {
    pending_trap_ = TrapKind::kDivByZero;
    trap_msg_ = "division by zero";
    return false;
  }
  if (width == 4) {
    uint64_t dividend =
        (TruncToWidth(gpr(Gpr::kRdx), 4) << 32) | TruncToWidth(gpr(Gpr::kRax), 4);
    if (is_signed) {
      int64_t sdividend = static_cast<int64_t>(dividend);
      int64_t sdiv = SignExtend(divisor, 4);
      int64_t q = sdividend / sdiv;
      if (q > INT32_MAX || q < INT32_MIN) {
        pending_trap_ = TrapKind::kIntegerOverflow;
        trap_msg_ = "idiv overflow";
        return false;
      }
      set_gpr(Gpr::kRax, TruncToWidth(static_cast<uint64_t>(q), 4));
      set_gpr(Gpr::kRdx, TruncToWidth(static_cast<uint64_t>(sdividend % sdiv), 4));
    } else {
      uint64_t q = dividend / divisor;
      if (q > UINT32_MAX) {
        pending_trap_ = TrapKind::kIntegerOverflow;
        trap_msg_ = "div overflow";
        return false;
      }
      set_gpr(Gpr::kRax, q);
      set_gpr(Gpr::kRdx, dividend % divisor);
    }
  } else {
    // 64-bit: model the common cqo+idiv pair (dividend = rax).
    if (is_signed) {
      int64_t sdividend = static_cast<int64_t>(gpr(Gpr::kRax));
      int64_t sdiv = static_cast<int64_t>(divisor);
      if (sdividend == INT64_MIN && sdiv == -1) {
        pending_trap_ = TrapKind::kIntegerOverflow;
        trap_msg_ = "idiv overflow";
        return false;
      }
      set_gpr(Gpr::kRax, static_cast<uint64_t>(sdividend / sdiv));
      set_gpr(Gpr::kRdx, static_cast<uint64_t>(sdividend % sdiv));
    } else {
      uint64_t dividend = gpr(Gpr::kRax);
      set_gpr(Gpr::kRax, dividend / divisor);
      set_gpr(Gpr::kRdx, dividend % divisor);
    }
  }
  return true;
}

bool SimMachine::TruncFloatToInt(double v, uint8_t width, bool sign_extend, uint64_t* out) {
  if (std::isnan(v)) {
    pending_trap_ = TrapKind::kInvalidConversion;
    trap_msg_ = "NaN to integer";
    return false;
  }
  double t = std::trunc(v);
  bool ok;
  uint64_t r = 0;
  if (width == 4) {
    if (sign_extend) {
      ok = t >= -2147483648.0 && t <= 2147483647.0;
      if (ok) {
        r = TruncToWidth(static_cast<uint64_t>(static_cast<int64_t>(t)), 4);
      }
    } else {
      ok = t >= 0.0 && t <= 4294967295.0;
      if (ok) {
        r = static_cast<uint64_t>(t);
      }
    }
  } else {
    if (sign_extend) {
      ok = t >= -9223372036854775808.0 && t < 9223372036854775808.0;
      if (ok) {
        r = static_cast<uint64_t>(static_cast<int64_t>(t));
      }
    } else {
      ok = t >= 0.0 && t < 18446744073709551616.0;
      if (ok) {
        r = static_cast<uint64_t>(t);
      }
    }
  }
  if (!ok) {
    pending_trap_ = TrapKind::kIntegerOverflow;
    trap_msg_ = "float to int overflow";
    return false;
  }
  *out = r;
  return true;
}

// One non-control-flow instruction's legacy body: cycle-cost charge plus
// semantics, exactly as the pre-predecode interpreter executed it. Fetch,
// retirement, and the fuel check belong to the caller. Returns false on trap.
bool SimMachine::ExecGenericOp(const MInstr& instr) {
  switch (instr.op) {
    case MOp::kNop:
      counters_.micro_cycles += cost_.simple;
      return true;

    case MOp::kMov:
    case MOp::kMovImm64: {
      counters_.micro_cycles += cost_.simple;
      uint64_t v;
      if (!ReadInt(instr.src, instr.width, &v)) {
        return false;
      }
      return WriteInt(instr.dst, instr.width, v);
    }

    case MOp::kLoad: {
      counters_.micro_cycles += cost_.simple;  // load cost added in DataAccess
      uint8_t* p;
      if (!DataAccess(EffectiveAddr(instr.src.mem), instr.width, false, &p)) {
        return false;
      }
      uint64_t v = 0;
      std::memcpy(&v, p, instr.width);
      if (instr.sign_extend) {
        v = static_cast<uint64_t>(SignExtend(v, instr.width));
      }
      set_gpr(instr.dst.gpr, instr.sign_extend ? v : TruncToWidth(v, instr.width));
      return true;
    }

    case MOp::kStore: {
      counters_.micro_cycles += cost_.simple;
      uint64_t v;
      if (!ReadInt(instr.src, instr.width, &v)) {
        return false;
      }
      uint8_t* p;
      if (!DataAccess(EffectiveAddr(instr.dst.mem), instr.width, true, &p)) {
        return false;
      }
      std::memcpy(p, &v, instr.width);
      return true;
    }

    case MOp::kLea: {
      counters_.micro_cycles += cost_.simple;
      set_gpr(instr.dst.gpr,
              instr.width == 8 ? EffectiveAddr(instr.src.mem)
                               : TruncToWidth(EffectiveAddr(instr.src.mem), 4));
      return true;
    }

    case MOp::kPush: {
      counters_.micro_cycles += cost_.simple;
      set_gpr(Gpr::kRsp, gpr(Gpr::kRsp) - 8);
      uint8_t* p;
      if (!DataAccess(gpr(Gpr::kRsp), 8, true, &p)) {
        return false;
      }
      uint64_t v = gpr(instr.dst.gpr);
      std::memcpy(p, &v, 8);
      return true;
    }

    case MOp::kPop: {
      counters_.micro_cycles += cost_.simple;
      uint8_t* p;
      if (!DataAccess(gpr(Gpr::kRsp), 8, false, &p)) {
        return false;
      }
      uint64_t v;
      std::memcpy(&v, p, 8);
      set_gpr(instr.dst.gpr, v);
      set_gpr(Gpr::kRsp, gpr(Gpr::kRsp) + 8);
      return true;
    }

    case MOp::kXchg: {
      counters_.micro_cycles += cost_.simple;
      uint64_t a = gpr(instr.dst.gpr);
      set_gpr(instr.dst.gpr, gpr(instr.src.gpr));
      set_gpr(instr.src.gpr, a);
      return true;
    }

    case MOp::kAdd:
    case MOp::kSub:
    case MOp::kAnd:
    case MOp::kOr:
    case MOp::kXor: {
      counters_.micro_cycles += cost_.simple;
      uint64_t a;
      uint64_t b;
      if (!ReadInt(instr.dst, instr.width, &a) || !ReadInt(instr.src, instr.width, &b)) {
        return false;
      }
      uint64_t r = 0;
      switch (instr.op) {
        case MOp::kAdd: r = a + b; break;
        case MOp::kSub: r = a - b; break;
        case MOp::kAnd: r = a & b; break;
        case MOp::kOr: r = a | b; break;
        default: r = a ^ b; break;
      }
      return WriteInt(instr.dst, instr.width, r);
    }

    case MOp::kImul: {
      counters_.micro_cycles += cost_.imul;
      uint64_t a;
      uint64_t b;
      if (!ReadInt(instr.dst, instr.width, &a) || !ReadInt(instr.src, instr.width, &b)) {
        return false;
      }
      return WriteInt(instr.dst, instr.width, a * b);
    }

    case MOp::kNeg: {
      counters_.micro_cycles += cost_.simple;
      uint64_t a;
      if (!ReadInt(instr.dst, instr.width, &a)) {
        return false;
      }
      return WriteInt(instr.dst, instr.width, 0 - a);
    }

    case MOp::kNot: {
      counters_.micro_cycles += cost_.simple;
      uint64_t a;
      if (!ReadInt(instr.dst, instr.width, &a)) {
        return false;
      }
      return WriteInt(instr.dst, instr.width, ~a);
    }

    case MOp::kShl:
    case MOp::kShr:
    case MOp::kSar:
    case MOp::kRol:
    case MOp::kRor: {
      counters_.micro_cycles += cost_.simple;
      uint64_t a;
      if (!ReadInt(instr.dst, instr.width, &a)) {
        return false;
      }
      uint64_t count;
      if (instr.src2.is_imm()) {
        count = static_cast<uint64_t>(instr.src2.imm);
      } else {
        count = gpr(Gpr::kRcx);  // cl convention
      }
      uint32_t bits = instr.width * 8;
      count &= bits - 1;
      uint64_t r = 0;
      switch (instr.op) {
        case MOp::kShl:
          r = a << count;
          break;
        case MOp::kShr:
          r = a >> count;
          break;
        case MOp::kSar:
          r = static_cast<uint64_t>(SignExtend(a, instr.width) >> count);
          break;
        case MOp::kRol:
          r = count == 0 ? a : (a << count) | (a >> (bits - count));
          break;
        default:
          r = count == 0 ? a : (a >> count) | (a << (bits - count));
          break;
      }
      return WriteInt(instr.dst, instr.width, r);
    }

    case MOp::kCmp: {
      counters_.micro_cycles += cost_.simple;
      uint64_t a;
      uint64_t b;
      if (!ReadInt(instr.dst, instr.width, &a) || !ReadInt(instr.src, instr.width, &b)) {
        return false;
      }
      cmp_kind_ = CmpKind::kInt;
      cmp_ua_ = a;
      cmp_ub_ = b;
      cmp_sa_ = SignExtend(a, instr.width);
      cmp_sb_ = SignExtend(b, instr.width);
      return true;
    }

    case MOp::kTest: {
      counters_.micro_cycles += cost_.simple;
      uint64_t a;
      uint64_t b;
      if (!ReadInt(instr.dst, instr.width, &a) || !ReadInt(instr.src, instr.width, &b)) {
        return false;
      }
      cmp_kind_ = CmpKind::kTest;
      cmp_test_ = a & b;
      cmp_test_sign_ = SignExtend(cmp_test_, instr.width) < 0;
      return true;
    }

    case MOp::kCdq: {
      counters_.micro_cycles += cost_.simple;
      if (instr.width == 8) {
        set_gpr(Gpr::kRdx,
                static_cast<int64_t>(gpr(Gpr::kRax)) < 0 ? ~uint64_t{0} : 0);
      } else {
        uint32_t eax = static_cast<uint32_t>(gpr(Gpr::kRax));
        set_gpr(Gpr::kRdx, static_cast<int32_t>(eax) < 0 ? 0xffffffffull : 0);
      }
      return true;
    }

    case MOp::kIdiv:
    case MOp::kDiv: {
      counters_.micro_cycles += cost_.idiv;
      uint64_t divisor;
      if (!ReadInt(instr.src, instr.width, &divisor)) {
        return false;
      }
      return DivOp(instr.op == MOp::kIdiv, instr.width, divisor);
    }

    case MOp::kSetcc: {
      counters_.micro_cycles += cost_.simple;
      set_gpr(instr.dst.gpr, EvalCond(instr.cond) ? 1 : 0);
      return true;
    }

    case MOp::kLzcnt: {
      counters_.micro_cycles += cost_.simple;
      uint64_t a;
      if (!ReadInt(instr.src, instr.width, &a)) {
        return false;
      }
      uint64_t r = instr.width == 8 ? static_cast<uint64_t>(std::countl_zero(a))
                                    : std::countl_zero(static_cast<uint32_t>(a));
      set_gpr(instr.dst.gpr, r);
      return true;
    }

    case MOp::kTzcnt: {
      counters_.micro_cycles += cost_.simple;
      uint64_t a;
      if (!ReadInt(instr.src, instr.width, &a)) {
        return false;
      }
      uint64_t r = instr.width == 8 ? static_cast<uint64_t>(std::countr_zero(a))
                                    : std::countr_zero(static_cast<uint32_t>(a));
      set_gpr(instr.dst.gpr, r);
      return true;
    }

    case MOp::kPopcnt: {
      counters_.micro_cycles += cost_.simple;
      uint64_t a;
      if (!ReadInt(instr.src, instr.width, &a)) {
        return false;
      }
      set_gpr(instr.dst.gpr, static_cast<uint64_t>(std::popcount(a)));
      return true;
    }

    case MOp::kMovsxd: {
      counters_.micro_cycles += cost_.simple;
      uint64_t a;
      if (!ReadInt(instr.src, 4, &a)) {
        return false;
      }
      set_gpr(instr.dst.gpr,
              static_cast<uint64_t>(static_cast<int64_t>(static_cast<int32_t>(a))));
      return true;
    }

    // ---------------- SSE double ----------------
    case MOp::kMovsd:
    case MOp::kMovss: {
      uint8_t w = instr.op == MOp::kMovss ? 4 : 8;
      counters_.micro_cycles += cost_.fp_mov;
      uint64_t v;
      if (!ReadFpBits(instr.src, w, &v)) {
        return false;
      }
      return WriteFpBits(instr.dst, w, v);
    }

    case MOp::kAddsd:
    case MOp::kSubsd:
    case MOp::kMulsd:
    case MOp::kDivsd:
    case MOp::kMinsd:
    case MOp::kMaxsd: {
      counters_.micro_cycles += instr.op == MOp::kDivsd ? cost_.fp_div : cost_.fp_simple;
      uint64_t ab;
      uint64_t bb;
      if (!ReadFpBits(instr.dst, 8, &ab) || !ReadFpBits(instr.src, 8, &bb)) {
        return false;
      }
      double a = BitsToF64(ab);
      double b = BitsToF64(bb);
      double r = 0;
      switch (instr.op) {
        case MOp::kAddsd: r = a + b; break;
        case MOp::kSubsd: r = a - b; break;
        case MOp::kMulsd: r = a * b; break;
        case MOp::kDivsd: r = a / b; break;
        case MOp::kMinsd: r = CanonMin(a, b); break;
        default: r = CanonMax(a, b); break;
      }
      // The pre-predecode interpreter ignored this write's trap status
      // (arith destinations are registers in practice); preserved verbatim.
      WriteFpBits(instr.dst, 8, F64ToBits(r));
      return true;
    }

    case MOp::kSqrtsd: {
      counters_.micro_cycles += cost_.fp_sqrt;
      uint64_t bb;
      if (!ReadFpBits(instr.src, 8, &bb)) {
        return false;
      }
      WriteFpBits(instr.dst, 8, F64ToBits(std::sqrt(BitsToF64(bb))));
      return true;
    }

    case MOp::kAndpd:
    case MOp::kXorpd:
    case MOp::kOrpd: {
      counters_.micro_cycles += cost_.fp_simple;
      uint64_t ab;
      uint64_t bb;
      if (!ReadFpBits(instr.dst, 8, &ab) || !ReadFpBits(instr.src, 8, &bb)) {
        return false;
      }
      uint64_t r = instr.op == MOp::kAndpd ? (ab & bb)
                   : instr.op == MOp::kOrpd ? (ab | bb)
                                            : (ab ^ bb);
      WriteFpBits(instr.dst, 8, r);
      return true;
    }

    case MOp::kUcomisd:
    case MOp::kUcomiss: {
      counters_.micro_cycles += cost_.fp_simple / 2;
      uint8_t w = instr.op == MOp::kUcomiss ? 4 : 8;
      uint64_t ab;
      uint64_t bb;
      if (!ReadFpBits(instr.dst, w, &ab) || !ReadFpBits(instr.src, w, &bb)) {
        return false;
      }
      double a = w == 4 ? BitsToF32(ab) : BitsToF64(ab);
      double b = w == 4 ? BitsToF32(bb) : BitsToF64(bb);
      cmp_kind_ = CmpKind::kFloat;
      fp_unordered_ = std::isnan(a) || std::isnan(b);
      fp_equal_ = a == b;
      fp_less_ = a < b;
      return true;
    }

    case MOp::kCvtsi2sd: {
      counters_.micro_cycles += cost_.fp_simple;
      uint64_t v;
      if (!ReadInt(instr.src, instr.width, &v)) {
        return false;
      }
      double r;
      if (instr.sign_extend) {
        r = static_cast<double>(SignExtend(v, instr.width));
      } else {
        r = static_cast<double>(v);
      }
      WriteFpBits(instr.dst, 8, F64ToBits(r));
      return true;
    }

    case MOp::kCvtsi2ss: {
      counters_.micro_cycles += cost_.fp_simple;
      uint64_t v;
      if (!ReadInt(instr.src, instr.width, &v)) {
        return false;
      }
      float r = instr.sign_extend ? static_cast<float>(SignExtend(v, instr.width))
                                  : static_cast<float>(v);
      WriteFpBits(instr.dst, 4, F32ToBits(r));
      return true;
    }

    case MOp::kCvttsd2si:
    case MOp::kCvttss2si: {
      counters_.micro_cycles += cost_.fp_simple;
      uint64_t bb;
      uint8_t srcw = instr.op == MOp::kCvttss2si ? 4 : 8;
      if (!ReadFpBits(instr.src, srcw, &bb)) {
        return false;
      }
      double v = srcw == 4 ? static_cast<double>(BitsToF32(bb)) : BitsToF64(bb);
      uint64_t r;
      if (!TruncFloatToInt(v, instr.width, instr.sign_extend, &r)) {
        return false;
      }
      set_gpr(instr.dst.gpr, r);
      return true;
    }

    case MOp::kRoundsd: {
      counters_.micro_cycles += cost_.fp_simple;
      uint64_t bb;
      if (!ReadFpBits(instr.src, 8, &bb)) {
        return false;
      }
      WriteFpBits(instr.dst, 8,
                  F64ToBits(ApplyRounding(BitsToF64(bb), static_cast<int>(instr.src2.imm))));
      return true;
    }

    case MOp::kRoundss: {
      counters_.micro_cycles += cost_.fp_simple;
      uint64_t bb;
      if (!ReadFpBits(instr.src, 4, &bb)) {
        return false;
      }
      float r = static_cast<float>(
          ApplyRounding(static_cast<double>(BitsToF32(bb)), static_cast<int>(instr.src2.imm)));
      WriteFpBits(instr.dst, 4, F32ToBits(r));
      return true;
    }

    case MOp::kAddss:
    case MOp::kSubss:
    case MOp::kMulss:
    case MOp::kDivss:
    case MOp::kMinss:
    case MOp::kMaxss: {
      counters_.micro_cycles += instr.op == MOp::kDivss ? cost_.fp_div : cost_.fp_simple;
      uint64_t ab;
      uint64_t bb;
      if (!ReadFpBits(instr.dst, 4, &ab) || !ReadFpBits(instr.src, 4, &bb)) {
        return false;
      }
      float a = BitsToF32(ab);
      float b = BitsToF32(bb);
      float r = 0;
      switch (instr.op) {
        case MOp::kAddss: r = a + b; break;
        case MOp::kSubss: r = a - b; break;
        case MOp::kMulss: r = a * b; break;
        case MOp::kDivss: r = a / b; break;
        case MOp::kMinss: r = static_cast<float>(CanonMin(a, b)); break;
        default: r = static_cast<float>(CanonMax(a, b)); break;
      }
      WriteFpBits(instr.dst, 4, F32ToBits(r));
      return true;
    }

    case MOp::kSqrtss: {
      counters_.micro_cycles += cost_.fp_sqrt;
      uint64_t bb;
      if (!ReadFpBits(instr.src, 4, &bb)) {
        return false;
      }
      WriteFpBits(instr.dst, 4, F32ToBits(std::sqrt(BitsToF32(bb))));
      return true;
    }

    case MOp::kCvtss2sd: {
      counters_.micro_cycles += cost_.fp_simple;
      uint64_t bb;
      if (!ReadFpBits(instr.src, 4, &bb)) {
        return false;
      }
      WriteFpBits(instr.dst, 8, F64ToBits(static_cast<double>(BitsToF32(bb))));
      return true;
    }

    case MOp::kCvtsd2ss: {
      counters_.micro_cycles += cost_.fp_simple;
      uint64_t bb;
      if (!ReadFpBits(instr.src, 8, &bb)) {
        return false;
      }
      WriteFpBits(instr.dst, 4, F32ToBits(static_cast<float>(BitsToF64(bb))));
      return true;
    }

    case MOp::kMovqToXmm: {
      counters_.micro_cycles += cost_.fp_mov;
      xmms_[static_cast<uint8_t>(instr.dst.xmm)] = gpr(instr.src.gpr);
      return true;
    }

    case MOp::kMovqFromXmm: {
      counters_.micro_cycles += cost_.fp_mov;
      set_gpr(instr.dst.gpr, xmms_[static_cast<uint8_t>(instr.src.xmm)]);
      return true;
    }

    // Control flow never reaches the generic body: the legacy loop handles it
    // inline and predecode always emits dedicated handlers for it.
    case MOp::kJmp:
    case MOp::kJcc:
    case MOp::kCall:
    case MOp::kCallReg:
    case MOp::kCallHost:
    case MOp::kRet:
      break;
  }
  pending_trap_ = TrapKind::kHostError;
  trap_msg_ = "control-flow op in generic body";
  return false;
}

// The pre-predecode interpreter: fetch/decode/execute over raw MInstrs with
// a switch per instruction. Kept as the reference semantics (differential
// suite) and the perf baseline (bench/sim_throughput) — ExecDecoded must
// match its PerfCounters bit for bit.
TrapKind SimMachine::ExecLegacy() {
  uint64_t fuel = fuel_ != 0 ? fuel_ : kSimDefaultFuel;

  while (true) {
    const MFunction& func = program_->funcs[cur_func_];
    if (pc_ >= func.code.size()) {
      pending_trap_ = TrapKind::kHostError;
      trap_msg_ = StrFormat("pc out of range in %s", func.name.c_str());
      return pending_trap_;
    }
    const MInstr& instr = func.code[pc_];

    // Instruction fetch through the L1i model.
    uint64_t fetch_addr = func.code_base + func.instr_offsets[pc_];
    FetchL1i(fetch_addr, EncodedSize(instr));

    counters_.instructions_retired++;
    if (counters_.instructions_retired > fuel) {
      pending_trap_ = TrapKind::kFuelExhausted;
      trap_msg_ = "instruction budget exceeded";
      return pending_trap_;
    }

    uint32_t next_pc = pc_ + 1;

    switch (instr.op) {
      case MOp::kJmp: {
        counters_.micro_cycles += cost_.branch + cost_.branch_taken_extra;
        counters_.branches_retired++;
        counters_.taken_branches++;
        next_pc = instr.label;
        break;
      }

      case MOp::kJcc: {
        counters_.micro_cycles += cost_.branch;
        counters_.branches_retired++;
        counters_.cond_branches_retired++;
        if (EvalCond(instr.cond)) {
          counters_.taken_branches++;
          counters_.micro_cycles += cost_.branch_taken_extra;
          next_pc = instr.label;
        }
        break;
      }

      case MOp::kCall: {
        counters_.micro_cycles += cost_.call;
        counters_.branches_retired++;
        counters_.calls++;
        // Return-address push (architecturally a store).
        set_gpr(Gpr::kRsp, gpr(Gpr::kRsp) - 8);
        uint8_t* p;
        if (!DataAccess(gpr(Gpr::kRsp), 8, true, &p)) {
          return pending_trap_;
        }
        if (frames_.size() >= 4096) {
          pending_trap_ = TrapKind::kCallStackExhausted;
          return pending_trap_;
        }
        frames_.push_back(Frame{cur_func_, pc_ + 1});
        cur_func_ = instr.func;
        next_pc = 0;
        break;
      }

      case MOp::kCallReg: {
        counters_.micro_cycles += cost_.call;
        counters_.branches_retired++;
        counters_.calls++;
        uint64_t target = gpr(instr.dst.gpr);
        if (target >= program_->funcs.size()) {
          pending_trap_ = TrapKind::kIndirectCallOutOfBounds;
          trap_msg_ = "bad indirect target";
          return pending_trap_;
        }
        set_gpr(Gpr::kRsp, gpr(Gpr::kRsp) - 8);
        uint8_t* p;
        if (!DataAccess(gpr(Gpr::kRsp), 8, true, &p)) {
          return pending_trap_;
        }
        if (frames_.size() >= 4096) {
          pending_trap_ = TrapKind::kCallStackExhausted;
          return pending_trap_;
        }
        frames_.push_back(Frame{cur_func_, pc_ + 1});
        cur_func_ = static_cast<uint32_t>(target);
        next_pc = 0;
        break;
      }

      case MOp::kCallHost: {
        counters_.micro_cycles += cost_.host_call;
        counters_.branches_retired++;
        counters_.calls++;
        if (instr.func == kBuiltinTrapUnreachable || instr.func == kBuiltinTrapStack ||
            instr.func == kBuiltinTrapOob || instr.func == kBuiltinTrapNull ||
            instr.func == kBuiltinTrapSig) {
          switch (instr.func) {
            case kBuiltinTrapStack:
              pending_trap_ = TrapKind::kCallStackExhausted;
              break;
            case kBuiltinTrapOob:
              pending_trap_ = TrapKind::kIndirectCallOutOfBounds;
              break;
            case kBuiltinTrapNull:
              pending_trap_ = TrapKind::kIndirectCallNull;
              break;
            case kBuiltinTrapSig:
              pending_trap_ = TrapKind::kIndirectCallTypeMismatch;
              break;
            default:
              pending_trap_ = TrapKind::kUnreachable;
              break;
          }
          trap_msg_ = "trap stub";
          return pending_trap_;
        } else if (instr.func == kBuiltinMemorySize) {
          set_gpr(Gpr::kRax, heap_pages());
        } else if (instr.func == kBuiltinMemoryGrow) {
          uint64_t delta = TruncToWidth(gpr(Gpr::kRdi), 4);
          uint64_t old_pages = heap_pages();
          if (old_pages + delta > max_heap_pages_) {
            set_gpr(Gpr::kRax, TruncToWidth(~uint64_t{0}, 4));
          } else {
            heap_.resize((old_pages + delta) * 65536);
            set_gpr(Gpr::kRax, old_pages);
          }
        } else if (instr.func < hooks_.size() && hooks_[instr.func]) {
          hooks_[instr.func](*this);
          if (pending_trap_ != TrapKind::kNone) {
            return pending_trap_;
          }
        } else {
          pending_trap_ = TrapKind::kHostError;
          trap_msg_ = StrFormat("no host hook %u", instr.func);
          return pending_trap_;
        }
        break;
      }

      case MOp::kRet: {
        counters_.micro_cycles += cost_.ret;
        counters_.branches_retired++;
        if (frames_.empty()) {
          return TrapKind::kNone;  // outermost return: done
        }
        // Return-address pop (architecturally a load).
        uint8_t* p;
        if (!DataAccess(gpr(Gpr::kRsp), 8, false, &p)) {
          return pending_trap_;
        }
        set_gpr(Gpr::kRsp, gpr(Gpr::kRsp) + 8);
        Frame f = frames_.back();
        frames_.pop_back();
        cur_func_ = f.func;
        next_pc = f.ret_pc;
        break;
      }

      default:
        if (!ExecGenericOp(instr)) {
          return pending_trap_;
        }
        break;
    }

    pc_ = next_pc;
  }
}

}  // namespace nsf
