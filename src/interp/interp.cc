#include "src/interp/interp.h"

#include <bit>
#include <cmath>
#include <cstring>
#include <limits>
#include <unordered_map>

#include "src/profile/profile.h"
#include "src/support/str.h"

namespace nsf {

namespace {

constexpr uint32_t kNullFunc = UINT32_MAX;

// Guest recursion rides the host stack (CallFunction recurses), so the limit
// must keep max-depth native usage under the 8 MB host stack. ASan pads every
// frame with redzones — CallFunction grows from a few KB to tens of KB — so
// the sanitizer build needs a proportionally lower limit to trap cleanly
// (kCallStackExhausted) instead of overflowing the real stack.
#if defined(__SANITIZE_ADDRESS__)
#define NSF_ASAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define NSF_ASAN_BUILD 1
#endif
#endif
#ifdef NSF_ASAN_BUILD
constexpr int kMaxCallDepth = 128;
#else
constexpr int kMaxCallDepth = 512;
#endif

// Pre-computed structured-control-flow targets for one function body.
struct SideTable {
  // For each pc holding block/loop/if: index just past the matching end.
  std::unordered_map<uint32_t, uint32_t> end_of;
  // For each pc holding if: index just past the matching else (or == end_of
  // when there is no else).
  std::unordered_map<uint32_t, uint32_t> else_of;
};

SideTable BuildSideTable(const Function& func) {
  SideTable table;
  std::vector<uint32_t> stack;           // pcs of open block/loop/if
  std::vector<uint32_t> pending_else;    // pcs of open ifs without else yet
  for (uint32_t pc = 0; pc < func.body.size(); pc++) {
    switch (func.body[pc].op) {
      case Opcode::kBlock:
      case Opcode::kLoop:
        stack.push_back(pc);
        break;
      case Opcode::kIf:
        stack.push_back(pc);
        break;
      case Opcode::kElse: {
        uint32_t if_pc = stack.back();
        table.else_of[if_pc] = pc + 1;
        break;
      }
      case Opcode::kEnd: {
        if (stack.empty()) {
          // The function's own closing end.
          break;
        }
        uint32_t open_pc = stack.back();
        stack.pop_back();
        table.end_of[open_pc] = pc + 1;
        if (func.body[open_pc].op == Opcode::kIf &&
            table.else_of.find(open_pc) == table.else_of.end()) {
          table.else_of[open_pc] = pc + 1;
        }
        break;
      }
      default:
        break;
    }
  }
  return table;
}

struct Label {
  Opcode op;           // kBlock / kLoop / kIf (+ kElse arm treated as block)
  uint32_t start_pc;   // pc of the opening instruction
  uint32_t cont_pc;    // where a branch to this label lands
  uint32_t height;     // value-stack height at entry
  uint32_t arity;      // values a branch transports (block results; loop: 0)
};

ExecResult Trap(TrapKind kind, const std::string& msg) {
  ExecResult r;
  r.ok = false;
  r.trap = kind;
  r.error = msg;
  return r;
}

bool F64ToI32S(double v, uint32_t* out, TrapKind* trap) {
  if (std::isnan(v)) {
    *trap = TrapKind::kInvalidConversion;
    return false;
  }
  double t = std::trunc(v);
  if (t < -2147483648.0 || t > 2147483647.0) {
    *trap = TrapKind::kIntegerOverflow;
    return false;
  }
  *out = static_cast<uint32_t>(static_cast<int32_t>(t));
  return true;
}

bool F64ToI32U(double v, uint32_t* out, TrapKind* trap) {
  if (std::isnan(v)) {
    *trap = TrapKind::kInvalidConversion;
    return false;
  }
  double t = std::trunc(v);
  if (t < 0.0 || t > 4294967295.0) {
    *trap = TrapKind::kIntegerOverflow;
    return false;
  }
  *out = static_cast<uint32_t>(t);
  return true;
}

bool F64ToI64S(double v, uint64_t* out, TrapKind* trap) {
  if (std::isnan(v)) {
    *trap = TrapKind::kInvalidConversion;
    return false;
  }
  double t = std::trunc(v);
  if (t < -9223372036854775808.0 || t >= 9223372036854775808.0) {
    *trap = TrapKind::kIntegerOverflow;
    return false;
  }
  *out = static_cast<uint64_t>(static_cast<int64_t>(t));
  return true;
}

bool F64ToI64U(double v, uint64_t* out, TrapKind* trap) {
  if (std::isnan(v)) {
    *trap = TrapKind::kInvalidConversion;
    return false;
  }
  double t = std::trunc(v);
  if (t < 0.0 || t >= 18446744073709551616.0) {
    *trap = TrapKind::kIntegerOverflow;
    return false;
  }
  *out = static_cast<uint64_t>(t);
  return true;
}

float CanonMinF32(float a, float b) {
  if (std::isnan(a) || std::isnan(b)) {
    return std::numeric_limits<float>::quiet_NaN();
  }
  if (a == b) {
    return std::signbit(a) ? a : b;  // min(-0, +0) = -0
  }
  return a < b ? a : b;
}

float CanonMaxF32(float a, float b) {
  if (std::isnan(a) || std::isnan(b)) {
    return std::numeric_limits<float>::quiet_NaN();
  }
  if (a == b) {
    return std::signbit(a) ? b : a;
  }
  return a > b ? a : b;
}

double CanonMinF64(double a, double b) {
  if (std::isnan(a) || std::isnan(b)) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  if (a == b) {
    return std::signbit(a) ? a : b;
  }
  return a < b ? a : b;
}

double CanonMaxF64(double a, double b) {
  if (std::isnan(a) || std::isnan(b)) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  if (a == b) {
    return std::signbit(a) ? b : a;
  }
  return a > b ? a : b;
}

}  // namespace


void HostModule::Register(const std::string& module, const std::string& name, HostFunc fn) {
  entries_.push_back({module, name, std::move(fn)});
}

const HostFunc* HostModule::ResolveFunc(const std::string& module, const std::string& name,
                                        const FuncType& /*type*/) {
  for (const Entry& e : entries_) {
    if (e.module == module && e.name == name) {
      return &e.fn;
    }
  }
  return nullptr;
}

// Per-instance side tables, one per defined function, stored behind the
// opaque Instance::side_tables_ pointer.
namespace {
struct InstanceSideTables {
  std::vector<SideTable> tables;
};
}  // namespace

std::unique_ptr<Instance> Instance::Create(const Module& module, ImportResolver* resolver,
                                           std::string* error) {
  auto inst = std::unique_ptr<Instance>(new Instance(module));
  // Resolve function imports.
  for (const Import& imp : module.imports) {
    switch (imp.kind) {
      case ExternalKind::kFunc: {
        const FuncType& type = module.types[imp.type_index];
        const HostFunc* fn =
            resolver != nullptr ? resolver->ResolveFunc(imp.module, imp.name, type) : nullptr;
        if (fn == nullptr) {
          *error = StrFormat("unresolved import %s.%s", imp.module.c_str(), imp.name.c_str());
          return nullptr;
        }
        inst->host_funcs_.push_back(fn);
        break;
      }
      case ExternalKind::kMemory:
        inst->memory_.resize(size_t{imp.limits.min} * kWasmPageSize);
        if (imp.limits.max.has_value()) {
          inst->max_pages_ = *imp.limits.max;
        }
        break;
      case ExternalKind::kTable:
        inst->table_.assign(imp.limits.min, kNullFunc);
        break;
      case ExternalKind::kGlobal:
        // Imported globals are materialized as zero-initialized slots; the
        // embedder can set them through globals() before running.
        inst->globals_.push_back(TypedValue{imp.global_type.type, Value()});
        break;
    }
  }
  // Defined memory/table.
  for (const MemorySec& m : module.memories) {
    inst->memory_.resize(size_t{m.limits.min} * kWasmPageSize);
    if (m.limits.max.has_value()) {
      inst->max_pages_ = *m.limits.max;
    }
  }
  for (const Table& t : module.tables) {
    inst->table_.assign(t.limits.min, kNullFunc);
  }
  // Defined globals.
  for (const Global& g : module.globals) {
    TypedValue v;
    v.type = g.type.type;
    switch (g.init.op) {
      case Opcode::kI32Const:
        v.value = Value::I32(static_cast<uint32_t>(g.init.imm));
        break;
      case Opcode::kI64Const:
        v.value = Value::I64(g.init.imm);
        break;
      case Opcode::kF32Const:
        v.value = Value::F32(g.init.AsF32());
        break;
      case Opcode::kF64Const:
        v.value = Value::F64(g.init.AsF64());
        break;
      case Opcode::kGlobalGet:
        v.value = inst->globals_[g.init.a].value;
        break;
      default:
        *error = "bad global initializer";
        return nullptr;
    }
    inst->globals_.push_back(v);
  }
  // Element segments.
  for (const ElementSegment& seg : module.elements) {
    uint32_t offset = seg.offset.op == Opcode::kGlobalGet
                          ? inst->globals_[seg.offset.a].value.i32
                          : static_cast<uint32_t>(seg.offset.imm);
    if (size_t{offset} + seg.func_indices.size() > inst->table_.size()) {
      *error = "element segment out of bounds";
      return nullptr;
    }
    for (size_t i = 0; i < seg.func_indices.size(); i++) {
      inst->table_[offset + i] = seg.func_indices[i];
    }
  }
  // Data segments.
  for (const DataSegment& seg : module.data) {
    uint32_t offset = seg.offset.op == Opcode::kGlobalGet
                          ? inst->globals_[seg.offset.a].value.i32
                          : static_cast<uint32_t>(seg.offset.imm);
    if (size_t{offset} + seg.bytes.size() > inst->memory_.size()) {
      *error = "data segment out of bounds";
      return nullptr;
    }
    std::memcpy(inst->memory_.data() + offset, seg.bytes.data(), seg.bytes.size());
  }
  // Pre-build side tables.
  auto tables = std::make_shared<InstanceSideTables>();
  tables->tables.reserve(module.functions.size());
  for (const Function& f : module.functions) {
    tables->tables.push_back(BuildSideTable(f));
  }
  inst->side_tables_ = std::move(tables);
  return inst;
}

ExecResult Instance::RunStart() {
  if (!module_.start.has_value()) {
    ExecResult ok;
    ok.ok = true;
    return ok;
  }
  return CallFunction(*module_.start, {});
}

ExecResult Instance::CallExport(const std::string& name, const std::vector<TypedValue>& args) {
  const Export* e = module_.FindExport(name, ExternalKind::kFunc);
  if (e == nullptr) {
    return Trap(TrapKind::kHostError, StrFormat("no exported function %s", name.c_str()));
  }
  return CallFunction(e->index, args);
}

ExecResult Instance::CallFunction(uint32_t func_index, const std::vector<TypedValue>& args) {
  if (call_depth_ >= kMaxCallDepth) {
    return Trap(TrapKind::kCallStackExhausted, "call depth limit");
  }
  call_depth_++;
  struct DepthGuard {
    int* depth;
    ~DepthGuard() { (*depth)--; }
  } guard{&call_depth_};

  const FuncType& type = module_.FuncTypeOf(func_index);
  if (args.size() != type.params.size()) {
    return Trap(TrapKind::kHostError, "argument count mismatch");
  }

  FuncProfile* fprof = collector_ != nullptr ? collector_->OnFuncEntry(func_index) : nullptr;

  if (module_.IsImportedFunc(func_index)) {
    return (*host_funcs_[func_index])(*this, args);
  }

  uint32_t defined_index = func_index - module_.NumImportedFuncs();
  const Function& func = module_.functions[defined_index];
  const SideTable& side =
      static_cast<const InstanceSideTables*>(side_tables_.get())->tables[defined_index];
  // pc -> profile-site ordinal (loops / branches / indirect calls).
  const uint32_t* site_map =
      fprof != nullptr ? collector_->site_map(defined_index).data() : nullptr;

  // Locals: params then zero-initialized declared locals.
  std::vector<Value> locals(type.params.size() + func.locals.size());
  for (size_t i = 0; i < args.size(); i++) {
    locals[i] = args[i].value;
  }

  std::vector<Value> stack;
  stack.reserve(64);
  std::vector<Label> labels;
  labels.push_back(Label{Opcode::kBlock, 0, static_cast<uint32_t>(func.body.size()), 0,
                         static_cast<uint32_t>(type.results.size())});

  auto pop = [&stack]() {
    Value v = stack.back();
    stack.pop_back();
    return v;
  };
  auto push_i32 = [&stack](uint32_t v) { stack.push_back(Value::I32(v)); };
  auto push_i64 = [&stack](uint64_t v) { stack.push_back(Value::I64(v)); };
  auto push_f32 = [&stack](float v) { stack.push_back(Value::F32(v)); };
  auto push_f64 = [&stack](double v) { stack.push_back(Value::F64(v)); };

  auto mem_addr = [this](uint32_t base, uint32_t offset, uint32_t width,
                         uint64_t* addr) -> bool {
    uint64_t a = uint64_t{base} + uint64_t{offset};
    if (a + width > memory_.size()) {
      return false;
    }
    *addr = a;
    return true;
  };

  uint32_t pc = 0;
  const uint32_t body_size = static_cast<uint32_t>(func.body.size());

  // Performs a branch to relative depth `d`; returns new pc.
  auto do_branch = [&](uint32_t d) -> uint32_t {
    size_t idx = labels.size() - 1 - d;
    Label target = labels[idx];
    if (target.op == Opcode::kLoop) {
      if (fprof != nullptr) {
        fprof->loop_trips[site_map[target.start_pc]]++;
      }
      // Re-enter the loop: keep the loop label, drop inner labels.
      labels.resize(idx + 1);
      stack.resize(target.height);
      return target.cont_pc;  // pc of first instr inside the loop
    }
    // Forward branch: transport `arity` values, drop label and inner ones.
    std::vector<Value> xfer(target.arity);
    for (size_t i = xfer.size(); i > 0; i--) {
      xfer[i - 1] = pop();
    }
    stack.resize(target.height);
    for (const Value& v : xfer) {
      stack.push_back(v);
    }
    labels.resize(idx);
    return target.cont_pc;
  };

  while (pc < body_size) {
    const Instr& instr = func.body[pc];
    instr_count_++;
    if (fprof != nullptr) {
      fprof->instrs_retired++;
    }
    if (fuel_limit_ != 0 && instr_count_ > fuel_limit_) {
      return Trap(TrapKind::kFuelExhausted, "execution budget exceeded");
    }
    switch (instr.op) {
      case Opcode::kUnreachable:
        return Trap(TrapKind::kUnreachable, "unreachable executed");
      case Opcode::kNop:
        pc++;
        break;
      case Opcode::kBlock: {
        uint32_t arity = instr.block_type == kVoidBlockType ? 0 : 1;
        labels.push_back(Label{Opcode::kBlock, pc, side.end_of.at(pc),
                               static_cast<uint32_t>(stack.size()), arity});
        pc++;
        break;
      }
      case Opcode::kLoop: {
        labels.push_back(
            Label{Opcode::kLoop, pc, pc + 1, static_cast<uint32_t>(stack.size()), 0});
        pc++;
        break;
      }
      case Opcode::kIf: {
        uint32_t cond = pop().i32;
        if (fprof != nullptr) {
          // "Taken" = the lowered branch-to-else fires, i.e. condition zero.
          BranchSiteProfile& b = fprof->branches[site_map[pc]];
          (cond == 0 ? b.taken : b.not_taken)++;
        }
        uint32_t arity = instr.block_type == kVoidBlockType ? 0 : 1;
        uint32_t end_pc = side.end_of.at(pc);
        uint32_t else_pc = side.else_of.at(pc);
        if (cond != 0) {
          labels.push_back(
              Label{Opcode::kIf, pc, end_pc, static_cast<uint32_t>(stack.size()), arity});
          pc++;
        } else if (else_pc != end_pc) {
          labels.push_back(
              Label{Opcode::kIf, pc, end_pc, static_cast<uint32_t>(stack.size()), arity});
          pc = else_pc;
        } else {
          // No else arm: skip the whole if, including its end.
          pc = end_pc;
        }
        break;
      }
      case Opcode::kElse: {
        // Falling into else from the then-arm: jump past the end.
        Label label = labels.back();
        labels.pop_back();
        pc = side.end_of.at(label.start_pc);
        break;
      }
      case Opcode::kEnd: {
        labels.pop_back();
        pc++;
        break;
      }
      case Opcode::kBr:
        pc = do_branch(instr.a);
        break;
      case Opcode::kBrIf: {
        uint32_t cond = pop().i32;
        if (fprof != nullptr) {
          BranchSiteProfile& b = fprof->branches[site_map[pc]];
          (cond != 0 ? b.taken : b.not_taken)++;
        }
        pc = cond != 0 ? do_branch(instr.a) : pc + 1;
        break;
      }
      case Opcode::kBrTable: {
        uint32_t index = pop().i32;
        uint32_t n = static_cast<uint32_t>(instr.table.size()) - 1;
        uint32_t depth = index < n ? instr.table[index] : instr.table[n];
        pc = do_branch(depth);
        break;
      }
      case Opcode::kReturn:
        pc = body_size;
        break;
      case Opcode::kCall: {
        const FuncType& callee_type = module_.FuncTypeOf(instr.a);
        std::vector<TypedValue> call_args(callee_type.params.size());
        for (size_t i = call_args.size(); i > 0; i--) {
          call_args[i - 1].type = callee_type.params[i - 1];
          call_args[i - 1].value = pop();
        }
        ExecResult r = CallFunction(instr.a, call_args);
        if (!r.ok) {
          return r;
        }
        for (const TypedValue& v : r.values) {
          stack.push_back(v.value);
        }
        pc++;
        break;
      }
      case Opcode::kCallIndirect: {
        uint32_t elem = pop().i32;
        if (elem >= table_.size()) {
          return Trap(TrapKind::kIndirectCallOutOfBounds, "table index out of bounds");
        }
        uint32_t target = table_[elem];
        if (target == kNullFunc) {
          return Trap(TrapKind::kIndirectCallNull, "null table entry");
        }
        const FuncType& expect = module_.types[instr.a];
        if (!(module_.FuncTypeOf(target) == expect)) {
          return Trap(TrapKind::kIndirectCallTypeMismatch, "signature mismatch");
        }
        if (fprof != nullptr) {
          fprof->indirect_sites[site_map[pc]].targets[elem]++;
        }
        std::vector<TypedValue> call_args(expect.params.size());
        for (size_t i = call_args.size(); i > 0; i--) {
          call_args[i - 1].type = expect.params[i - 1];
          call_args[i - 1].value = pop();
        }
        ExecResult r = CallFunction(target, call_args);
        if (!r.ok) {
          return r;
        }
        for (const TypedValue& v : r.values) {
          stack.push_back(v.value);
        }
        pc++;
        break;
      }
      case Opcode::kDrop:
        pop();
        pc++;
        break;
      case Opcode::kSelect: {
        uint32_t cond = pop().i32;
        Value b = pop();
        Value a = pop();
        stack.push_back(cond != 0 ? a : b);
        pc++;
        break;
      }
      case Opcode::kLocalGet:
        stack.push_back(locals[instr.a]);
        pc++;
        break;
      case Opcode::kLocalSet:
        locals[instr.a] = pop();
        pc++;
        break;
      case Opcode::kLocalTee:
        locals[instr.a] = stack.back();
        pc++;
        break;
      case Opcode::kGlobalGet:
        stack.push_back(globals_[instr.a].value);
        pc++;
        break;
      case Opcode::kGlobalSet:
        globals_[instr.a].value = pop();
        pc++;
        break;

#define NSF_LOAD_CASE(opname, ctype, width, pusher, convert)                           \
  case Opcode::opname: {                                                               \
    uint32_t base = pop().i32;                                                         \
    uint64_t addr;                                                                     \
    if (!mem_addr(base, instr.b, width, &addr)) {                                      \
      return Trap(TrapKind::kMemoryOutOfBounds,                                        \
                  StrFormat("load at %u+%u", base, instr.b));                          \
    }                                                                                  \
    ctype raw;                                                                         \
    std::memcpy(&raw, memory_.data() + addr, width);                                   \
    pusher(convert(raw));                                                              \
    pc++;                                                                              \
    break;                                                                             \
  }

      NSF_LOAD_CASE(kI32Load, uint32_t, 4, push_i32, )
      NSF_LOAD_CASE(kI64Load, uint64_t, 8, push_i64, )
      NSF_LOAD_CASE(kF32Load, float, 4, push_f32, )
      NSF_LOAD_CASE(kF64Load, double, 8, push_f64, )
      NSF_LOAD_CASE(kI32Load8S, int8_t, 1, push_i32, static_cast<uint32_t>)
      NSF_LOAD_CASE(kI32Load8U, uint8_t, 1, push_i32, static_cast<uint32_t>)
      NSF_LOAD_CASE(kI32Load16S, int16_t, 2, push_i32, static_cast<uint32_t>)
      NSF_LOAD_CASE(kI32Load16U, uint16_t, 2, push_i32, static_cast<uint32_t>)
      NSF_LOAD_CASE(kI64Load8S, int8_t, 1, push_i64, static_cast<uint64_t>)
      NSF_LOAD_CASE(kI64Load8U, uint8_t, 1, push_i64, static_cast<uint64_t>)
      NSF_LOAD_CASE(kI64Load16S, int16_t, 2, push_i64, static_cast<uint64_t>)
      NSF_LOAD_CASE(kI64Load16U, uint16_t, 2, push_i64, static_cast<uint64_t>)
      NSF_LOAD_CASE(kI64Load32S, int32_t, 4, push_i64, static_cast<uint64_t>)
      NSF_LOAD_CASE(kI64Load32U, uint32_t, 4, push_i64, static_cast<uint64_t>)
#undef NSF_LOAD_CASE

#define NSF_STORE_CASE(opname, ctype, width, getter)                                   \
  case Opcode::opname: {                                                               \
    Value val = pop();                                                                 \
    uint32_t base = pop().i32;                                                         \
    uint64_t addr;                                                                     \
    if (!mem_addr(base, instr.b, width, &addr)) {                                      \
      return Trap(TrapKind::kMemoryOutOfBounds,                                        \
                  StrFormat("store at %u+%u", base, instr.b));                         \
    }                                                                                  \
    ctype raw = static_cast<ctype>(val.getter);                                        \
    std::memcpy(memory_.data() + addr, &raw, width);                                   \
    pc++;                                                                              \
    break;                                                                             \
  }

      NSF_STORE_CASE(kI32Store, uint32_t, 4, i32)
      NSF_STORE_CASE(kI64Store, uint64_t, 8, i64)
      NSF_STORE_CASE(kF32Store, float, 4, f32)
      NSF_STORE_CASE(kF64Store, double, 8, f64)
      NSF_STORE_CASE(kI32Store8, uint8_t, 1, i32)
      NSF_STORE_CASE(kI32Store16, uint16_t, 2, i32)
      NSF_STORE_CASE(kI64Store8, uint8_t, 1, i64)
      NSF_STORE_CASE(kI64Store16, uint16_t, 2, i64)
      NSF_STORE_CASE(kI64Store32, uint32_t, 4, i64)
#undef NSF_STORE_CASE

      case Opcode::kMemorySize:
        push_i32(memory_pages());
        pc++;
        break;
      case Opcode::kMemoryGrow: {
        uint32_t delta = pop().i32;
        uint32_t old_pages = memory_pages();
        uint64_t new_pages = uint64_t{old_pages} + delta;
        if (new_pages > max_pages_) {
          push_i32(static_cast<uint32_t>(-1));
        } else {
          memory_.resize(new_pages * kWasmPageSize);
          push_i32(old_pages);
        }
        pc++;
        break;
      }

      case Opcode::kI32Const:
        push_i32(static_cast<uint32_t>(instr.imm));
        pc++;
        break;
      case Opcode::kI64Const:
        push_i64(instr.imm);
        pc++;
        break;
      case Opcode::kF32Const:
        push_f32(instr.AsF32());
        pc++;
        break;
      case Opcode::kF64Const:
        push_f64(instr.AsF64());
        pc++;
        break;

#define NSF_I32_CMP(opname, type, cmpop)                        \
  case Opcode::opname: {                                        \
    type b = static_cast<type>(pop().i32);                      \
    type a = static_cast<type>(pop().i32);                      \
    push_i32(a cmpop b ? 1 : 0);                                \
    pc++;                                                       \
    break;                                                      \
  }
      NSF_I32_CMP(kI32Eq, uint32_t, ==)
      NSF_I32_CMP(kI32Ne, uint32_t, !=)
      NSF_I32_CMP(kI32LtS, int32_t, <)
      NSF_I32_CMP(kI32LtU, uint32_t, <)
      NSF_I32_CMP(kI32GtS, int32_t, >)
      NSF_I32_CMP(kI32GtU, uint32_t, >)
      NSF_I32_CMP(kI32LeS, int32_t, <=)
      NSF_I32_CMP(kI32LeU, uint32_t, <=)
      NSF_I32_CMP(kI32GeS, int32_t, >=)
      NSF_I32_CMP(kI32GeU, uint32_t, >=)
#undef NSF_I32_CMP

#define NSF_I64_CMP(opname, type, cmpop)                        \
  case Opcode::opname: {                                        \
    type b = static_cast<type>(pop().i64);                      \
    type a = static_cast<type>(pop().i64);                      \
    push_i32(a cmpop b ? 1 : 0);                                \
    pc++;                                                       \
    break;                                                      \
  }
      NSF_I64_CMP(kI64Eq, uint64_t, ==)
      NSF_I64_CMP(kI64Ne, uint64_t, !=)
      NSF_I64_CMP(kI64LtS, int64_t, <)
      NSF_I64_CMP(kI64LtU, uint64_t, <)
      NSF_I64_CMP(kI64GtS, int64_t, >)
      NSF_I64_CMP(kI64GtU, uint64_t, >)
      NSF_I64_CMP(kI64LeS, int64_t, <=)
      NSF_I64_CMP(kI64LeU, uint64_t, <=)
      NSF_I64_CMP(kI64GeS, int64_t, >=)
      NSF_I64_CMP(kI64GeU, uint64_t, >=)
#undef NSF_I64_CMP

#define NSF_F_CMP(opname, field, cmpop)                         \
  case Opcode::opname: {                                        \
    auto b = pop().field;                                       \
    auto a = pop().field;                                       \
    push_i32(a cmpop b ? 1 : 0);                                \
    pc++;                                                       \
    break;                                                      \
  }
      NSF_F_CMP(kF32Eq, f32, ==)
      NSF_F_CMP(kF32Ne, f32, !=)
      NSF_F_CMP(kF32Lt, f32, <)
      NSF_F_CMP(kF32Gt, f32, >)
      NSF_F_CMP(kF32Le, f32, <=)
      NSF_F_CMP(kF32Ge, f32, >=)
      NSF_F_CMP(kF64Eq, f64, ==)
      NSF_F_CMP(kF64Ne, f64, !=)
      NSF_F_CMP(kF64Lt, f64, <)
      NSF_F_CMP(kF64Gt, f64, >)
      NSF_F_CMP(kF64Le, f64, <=)
      NSF_F_CMP(kF64Ge, f64, >=)
#undef NSF_F_CMP

      case Opcode::kI32Eqz:
        push_i32(pop().i32 == 0 ? 1 : 0);
        pc++;
        break;
      case Opcode::kI64Eqz:
        push_i32(pop().i64 == 0 ? 1 : 0);
        pc++;
        break;
      case Opcode::kI32Clz:
        push_i32(static_cast<uint32_t>(std::countl_zero(pop().i32)));
        pc++;
        break;
      case Opcode::kI32Ctz:
        push_i32(static_cast<uint32_t>(std::countr_zero(pop().i32)));
        pc++;
        break;
      case Opcode::kI32Popcnt:
        push_i32(static_cast<uint32_t>(std::popcount(pop().i32)));
        pc++;
        break;
      case Opcode::kI64Clz:
        push_i64(static_cast<uint64_t>(std::countl_zero(pop().i64)));
        pc++;
        break;
      case Opcode::kI64Ctz:
        push_i64(static_cast<uint64_t>(std::countr_zero(pop().i64)));
        pc++;
        break;
      case Opcode::kI64Popcnt:
        push_i64(static_cast<uint64_t>(std::popcount(pop().i64)));
        pc++;
        break;

#define NSF_I32_BIN(opname, expr)                               \
  case Opcode::opname: {                                        \
    uint32_t b = pop().i32;                                     \
    uint32_t a = pop().i32;                                     \
    (void)a;                                                    \
    (void)b;                                                    \
    push_i32(expr);                                             \
    pc++;                                                       \
    break;                                                      \
  }
      NSF_I32_BIN(kI32Add, a + b)
      NSF_I32_BIN(kI32Sub, a - b)
      NSF_I32_BIN(kI32Mul, a * b)
      NSF_I32_BIN(kI32And, a & b)
      NSF_I32_BIN(kI32Or, a | b)
      NSF_I32_BIN(kI32Xor, a ^ b)
      NSF_I32_BIN(kI32Shl, a << (b & 31))
      NSF_I32_BIN(kI32ShrU, a >> (b & 31))
      NSF_I32_BIN(kI32ShrS, static_cast<uint32_t>(static_cast<int32_t>(a) >> (b & 31)))
      NSF_I32_BIN(kI32Rotl, (a << (b & 31)) | (a >> ((32 - b) & 31)))
      NSF_I32_BIN(kI32Rotr, (a >> (b & 31)) | (a << ((32 - b) & 31)))
#undef NSF_I32_BIN

      case Opcode::kI32DivS: {
        int32_t b = static_cast<int32_t>(pop().i32);
        int32_t a = static_cast<int32_t>(pop().i32);
        if (b == 0) {
          return Trap(TrapKind::kDivByZero, "i32.div_s by zero");
        }
        if (a == INT32_MIN && b == -1) {
          return Trap(TrapKind::kIntegerOverflow, "i32.div_s overflow");
        }
        push_i32(static_cast<uint32_t>(a / b));
        pc++;
        break;
      }
      case Opcode::kI32DivU: {
        uint32_t b = pop().i32;
        uint32_t a = pop().i32;
        if (b == 0) {
          return Trap(TrapKind::kDivByZero, "i32.div_u by zero");
        }
        push_i32(a / b);
        pc++;
        break;
      }
      case Opcode::kI32RemS: {
        int32_t b = static_cast<int32_t>(pop().i32);
        int32_t a = static_cast<int32_t>(pop().i32);
        if (b == 0) {
          return Trap(TrapKind::kDivByZero, "i32.rem_s by zero");
        }
        push_i32(a == INT32_MIN && b == -1 ? 0 : static_cast<uint32_t>(a % b));
        pc++;
        break;
      }
      case Opcode::kI32RemU: {
        uint32_t b = pop().i32;
        uint32_t a = pop().i32;
        if (b == 0) {
          return Trap(TrapKind::kDivByZero, "i32.rem_u by zero");
        }
        push_i32(a % b);
        pc++;
        break;
      }

#define NSF_I64_BIN(opname, expr)                               \
  case Opcode::opname: {                                        \
    uint64_t b = pop().i64;                                     \
    uint64_t a = pop().i64;                                     \
    (void)a;                                                    \
    (void)b;                                                    \
    push_i64(expr);                                             \
    pc++;                                                       \
    break;                                                      \
  }
      NSF_I64_BIN(kI64Add, a + b)
      NSF_I64_BIN(kI64Sub, a - b)
      NSF_I64_BIN(kI64Mul, a * b)
      NSF_I64_BIN(kI64And, a & b)
      NSF_I64_BIN(kI64Or, a | b)
      NSF_I64_BIN(kI64Xor, a ^ b)
      NSF_I64_BIN(kI64Shl, a << (b & 63))
      NSF_I64_BIN(kI64ShrU, a >> (b & 63))
      NSF_I64_BIN(kI64ShrS, static_cast<uint64_t>(static_cast<int64_t>(a) >> (b & 63)))
      NSF_I64_BIN(kI64Rotl, (a << (b & 63)) | (a >> ((64 - b) & 63)))
      NSF_I64_BIN(kI64Rotr, (a >> (b & 63)) | (a << ((64 - b) & 63)))
#undef NSF_I64_BIN

      case Opcode::kI64DivS: {
        int64_t b = static_cast<int64_t>(pop().i64);
        int64_t a = static_cast<int64_t>(pop().i64);
        if (b == 0) {
          return Trap(TrapKind::kDivByZero, "i64.div_s by zero");
        }
        if (a == INT64_MIN && b == -1) {
          return Trap(TrapKind::kIntegerOverflow, "i64.div_s overflow");
        }
        push_i64(static_cast<uint64_t>(a / b));
        pc++;
        break;
      }
      case Opcode::kI64DivU: {
        uint64_t b = pop().i64;
        uint64_t a = pop().i64;
        if (b == 0) {
          return Trap(TrapKind::kDivByZero, "i64.div_u by zero");
        }
        push_i64(a / b);
        pc++;
        break;
      }
      case Opcode::kI64RemS: {
        int64_t b = static_cast<int64_t>(pop().i64);
        int64_t a = static_cast<int64_t>(pop().i64);
        if (b == 0) {
          return Trap(TrapKind::kDivByZero, "i64.rem_s by zero");
        }
        push_i64(a == INT64_MIN && b == -1 ? 0 : static_cast<uint64_t>(a % b));
        pc++;
        break;
      }
      case Opcode::kI64RemU: {
        uint64_t b = pop().i64;
        uint64_t a = pop().i64;
        if (b == 0) {
          return Trap(TrapKind::kDivByZero, "i64.rem_u by zero");
        }
        push_i64(a % b);
        pc++;
        break;
      }

#define NSF_F32_UN(opname, expr)                                \
  case Opcode::opname: {                                        \
    float a = pop().f32;                                        \
    push_f32(expr);                                             \
    pc++;                                                       \
    break;                                                      \
  }
      NSF_F32_UN(kF32Abs, std::fabs(a))
      NSF_F32_UN(kF32Neg, -a)
      NSF_F32_UN(kF32Ceil, std::ceil(a))
      NSF_F32_UN(kF32Floor, std::floor(a))
      NSF_F32_UN(kF32Trunc, std::trunc(a))
      NSF_F32_UN(kF32Nearest, std::nearbyint(a))
      NSF_F32_UN(kF32Sqrt, std::sqrt(a))
#undef NSF_F32_UN

#define NSF_F32_BIN(opname, expr)                               \
  case Opcode::opname: {                                        \
    float b = pop().f32;                                        \
    float a = pop().f32;                                        \
    push_f32(expr);                                             \
    pc++;                                                       \
    break;                                                      \
  }
      NSF_F32_BIN(kF32Add, a + b)
      NSF_F32_BIN(kF32Sub, a - b)
      NSF_F32_BIN(kF32Mul, a * b)
      NSF_F32_BIN(kF32Div, a / b)
      NSF_F32_BIN(kF32Min, CanonMinF32(a, b))
      NSF_F32_BIN(kF32Max, CanonMaxF32(a, b))
      NSF_F32_BIN(kF32Copysign, std::copysign(a, b))
#undef NSF_F32_BIN

#define NSF_F64_UN(opname, expr)                                \
  case Opcode::opname: {                                        \
    double a = pop().f64;                                       \
    push_f64(expr);                                             \
    pc++;                                                       \
    break;                                                      \
  }
      NSF_F64_UN(kF64Abs, std::fabs(a))
      NSF_F64_UN(kF64Neg, -a)
      NSF_F64_UN(kF64Ceil, std::ceil(a))
      NSF_F64_UN(kF64Floor, std::floor(a))
      NSF_F64_UN(kF64Trunc, std::trunc(a))
      NSF_F64_UN(kF64Nearest, std::nearbyint(a))
      NSF_F64_UN(kF64Sqrt, std::sqrt(a))
#undef NSF_F64_UN

#define NSF_F64_BIN(opname, expr)                               \
  case Opcode::opname: {                                        \
    double b = pop().f64;                                       \
    double a = pop().f64;                                       \
    push_f64(expr);                                             \
    pc++;                                                       \
    break;                                                      \
  }
      NSF_F64_BIN(kF64Add, a + b)
      NSF_F64_BIN(kF64Sub, a - b)
      NSF_F64_BIN(kF64Mul, a * b)
      NSF_F64_BIN(kF64Div, a / b)
      NSF_F64_BIN(kF64Min, CanonMinF64(a, b))
      NSF_F64_BIN(kF64Max, CanonMaxF64(a, b))
      NSF_F64_BIN(kF64Copysign, std::copysign(a, b))
#undef NSF_F64_BIN

      case Opcode::kI32WrapI64:
        push_i32(static_cast<uint32_t>(pop().i64));
        pc++;
        break;
      case Opcode::kI64ExtendI32S:
        push_i64(static_cast<uint64_t>(static_cast<int64_t>(static_cast<int32_t>(pop().i32))));
        pc++;
        break;
      case Opcode::kI64ExtendI32U:
        push_i64(uint64_t{pop().i32});
        pc++;
        break;

      case Opcode::kI32TruncF32S:
      case Opcode::kI32TruncF64S: {
        double v = instr.op == Opcode::kI32TruncF32S ? static_cast<double>(pop().f32) : pop().f64;
        uint32_t out;
        TrapKind trap;
        if (!F64ToI32S(v, &out, &trap)) {
          return Trap(trap, "i32.trunc");
        }
        push_i32(out);
        pc++;
        break;
      }
      case Opcode::kI32TruncF32U:
      case Opcode::kI32TruncF64U: {
        double v = instr.op == Opcode::kI32TruncF32U ? static_cast<double>(pop().f32) : pop().f64;
        uint32_t out;
        TrapKind trap;
        if (!F64ToI32U(v, &out, &trap)) {
          return Trap(trap, "i32.trunc_u");
        }
        push_i32(out);
        pc++;
        break;
      }
      case Opcode::kI64TruncF32S:
      case Opcode::kI64TruncF64S: {
        double v = instr.op == Opcode::kI64TruncF32S ? static_cast<double>(pop().f32) : pop().f64;
        uint64_t out;
        TrapKind trap;
        if (!F64ToI64S(v, &out, &trap)) {
          return Trap(trap, "i64.trunc");
        }
        push_i64(out);
        pc++;
        break;
      }
      case Opcode::kI64TruncF32U:
      case Opcode::kI64TruncF64U: {
        double v = instr.op == Opcode::kI64TruncF32U ? static_cast<double>(pop().f32) : pop().f64;
        uint64_t out;
        TrapKind trap;
        if (!F64ToI64U(v, &out, &trap)) {
          return Trap(trap, "i64.trunc_u");
        }
        push_i64(out);
        pc++;
        break;
      }

      case Opcode::kF32ConvertI32S:
        push_f32(static_cast<float>(static_cast<int32_t>(pop().i32)));
        pc++;
        break;
      case Opcode::kF32ConvertI32U:
        push_f32(static_cast<float>(pop().i32));
        pc++;
        break;
      case Opcode::kF32ConvertI64S:
        push_f32(static_cast<float>(static_cast<int64_t>(pop().i64)));
        pc++;
        break;
      case Opcode::kF32ConvertI64U:
        push_f32(static_cast<float>(pop().i64));
        pc++;
        break;
      case Opcode::kF32DemoteF64:
        push_f32(static_cast<float>(pop().f64));
        pc++;
        break;
      case Opcode::kF64ConvertI32S:
        push_f64(static_cast<double>(static_cast<int32_t>(pop().i32)));
        pc++;
        break;
      case Opcode::kF64ConvertI32U:
        push_f64(static_cast<double>(pop().i32));
        pc++;
        break;
      case Opcode::kF64ConvertI64S:
        push_f64(static_cast<double>(static_cast<int64_t>(pop().i64)));
        pc++;
        break;
      case Opcode::kF64ConvertI64U:
        push_f64(static_cast<double>(pop().i64));
        pc++;
        break;
      case Opcode::kF64PromoteF32:
        push_f64(static_cast<double>(pop().f32));
        pc++;
        break;
      case Opcode::kI32ReinterpretF32: {
        float f = pop().f32;
        uint32_t bits;
        std::memcpy(&bits, &f, 4);
        push_i32(bits);
        pc++;
        break;
      }
      case Opcode::kI64ReinterpretF64: {
        double d = pop().f64;
        uint64_t bits;
        std::memcpy(&bits, &d, 8);
        push_i64(bits);
        pc++;
        break;
      }
      case Opcode::kF32ReinterpretI32: {
        uint32_t bits = pop().i32;
        float f;
        std::memcpy(&f, &bits, 4);
        push_f32(f);
        pc++;
        break;
      }
      case Opcode::kF64ReinterpretI64: {
        uint64_t bits = pop().i64;
        double d;
        std::memcpy(&d, &bits, 8);
        push_f64(d);
        pc++;
        break;
      }

      default:
        return Trap(TrapKind::kHostError,
                    StrFormat("unhandled opcode %s", OpcodeName(instr.op)));
    }
  }

  ExecResult result;
  result.ok = true;
  for (size_t i = 0; i < type.results.size(); i++) {
    TypedValue v;
    v.type = type.results[type.results.size() - 1 - i];
    v.value = pop();
    result.values.insert(result.values.begin(), v);
  }
  return result;
}

}  // namespace nsf
