// Reference interpreter for validated Wasm modules. Used as the semantic
// oracle in differential tests against the compiled (simulated-x64) path, and
// as a convenient way to execute small modules in examples.
#ifndef SRC_INTERP_INTERP_H_
#define SRC_INTERP_INTERP_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/wasm/module.h"
#include "src/wasm/trap.h"
#include "src/wasm/types.h"

namespace nsf {

class ProfileCollector;

struct ExecResult {
  bool ok = false;
  TrapKind trap = TrapKind::kNone;
  std::string error;
  std::vector<TypedValue> values;  // results when ok
};

// A host function callable from Wasm via imports. Receives argument values
// and the instance (for memory access); returns results or a trap.
class Instance;
using HostFunc = std::function<ExecResult(Instance& instance, const std::vector<TypedValue>& args)>;

// Resolves imports at instantiation time.
class ImportResolver {
 public:
  virtual ~ImportResolver() = default;
  // Returns nullptr if the import cannot be resolved.
  virtual const HostFunc* ResolveFunc(const std::string& module, const std::string& name,
                                      const FuncType& type) = 0;
};

// A simple map-backed resolver.
class HostModule : public ImportResolver {
 public:
  void Register(const std::string& module, const std::string& name, HostFunc fn);
  const HostFunc* ResolveFunc(const std::string& module, const std::string& name,
                              const FuncType& type) override;

 private:
  struct Entry {
    std::string module;
    std::string name;
    HostFunc fn;
  };
  std::vector<Entry> entries_;
};

// An instantiated module: linear memory, globals, table, and execution state.
class Instance {
 public:
  // Instantiates `module` (which must be valid). `resolver` may be null when
  // the module has no function imports. Runs data/element segment
  // initialization; does NOT run the start function (call RunStart()).
  static std::unique_ptr<Instance> Create(const Module& module, ImportResolver* resolver,
                                          std::string* error);

  const Module& module() const { return module_; }

  // Linear memory.
  std::vector<uint8_t>& memory() { return memory_; }
  const std::vector<uint8_t>& memory() const { return memory_; }
  uint32_t memory_pages() const { return static_cast<uint32_t>(memory_.size() / kWasmPageSize); }

  // Globals, in the joint (imports-first) index space.
  std::vector<TypedValue>& globals() { return globals_; }

  // Function table (element index -> function index, UINT32_MAX = null).
  std::vector<uint32_t>& table() { return table_; }

  // Executes the start function if the module declares one.
  ExecResult RunStart();

  // Calls exported function `name` with `args`.
  ExecResult CallExport(const std::string& name, const std::vector<TypedValue>& args);

  // Calls function `func_index` (joint index space) with `args`.
  ExecResult CallFunction(uint32_t func_index, const std::vector<TypedValue>& args);

  // Execution budget: total instructions an outermost call may retire before
  // trapping with kFuelExhausted. 0 = unlimited.
  void set_fuel(uint64_t fuel) { fuel_limit_ = fuel; }
  uint64_t instructions_retired() const { return instr_count_; }

  // Profile-guided-optimization hook (src/profile/): while set, execution
  // populates the collector with call counts, loop back-edge counts, branch
  // directions, and indirect-call target histograms. Null disables
  // instrumentation (the default; no overhead beyond one pointer test).
  void set_profile_collector(ProfileCollector* collector) { collector_ = collector; }

 private:
  Instance(const Module& module) : module_(module) {}

  friend class Frame;

  const Module& module_;
  std::vector<uint8_t> memory_;
  uint32_t max_pages_ = kMaxMemoryPages;
  std::vector<TypedValue> globals_;
  std::vector<uint32_t> table_;
  std::vector<const HostFunc*> host_funcs_;  // one per imported function
  // Pre-computed control-flow side tables (opaque; see interp.cc).
  std::shared_ptr<void> side_tables_;
  uint64_t fuel_limit_ = 0;
  uint64_t instr_count_ = 0;
  int call_depth_ = 0;
  ProfileCollector* collector_ = nullptr;
};

}  // namespace nsf

#endif  // SRC_INTERP_INTERP_H_
