// Instruction set of the simulated x86-64 target.
//
// This is not a byte-exact x86 encoder: instructions are kept in structured
// form and executed directly by the machine. What *is* modeled faithfully:
//   - the register file (incl. rsp-based stack, rax/rdx division convention,
//     cl shift-count convention),
//   - full [base + index*scale + disp] addressing modes, with optional
//     memory operands on ALU instructions (register-memory forms),
//   - per-instruction encoded byte sizes (driving the L1i cache model),
//   - flags via compare-and-branch condition codes.
// These are exactly the properties the paper's analysis depends on (§5, §6).
#ifndef SRC_X64_INSTS_H_
#define SRC_X64_INSTS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/x64/regs.h"

namespace nsf {

// Condition codes for Jcc / Setcc.
enum class Cond : uint8_t {
  kE,   // equal / zero
  kNe,
  kL,   // signed <
  kLe,
  kG,
  kGe,
  kB,   // unsigned <
  kBe,
  kA,
  kAe,
  kS,   // sign
  kNs,
  kP,   // parity (FP unordered)
  kNp,
};

const char* CondName(Cond c);
Cond NegateCond(Cond c);

// Memory operand: [base + index*scale + disp32].
struct MemRef {
  std::optional<Gpr> base;
  std::optional<Gpr> index;
  uint8_t scale = 1;  // 1/2/4/8
  int32_t disp = 0;

  static MemRef BaseDisp(Gpr base, int32_t disp = 0) {
    MemRef m;
    m.base = base;
    m.disp = disp;
    return m;
  }
  static MemRef BaseIndex(Gpr base, Gpr index, uint8_t scale, int32_t disp = 0) {
    MemRef m;
    m.base = base;
    m.index = index;
    m.scale = scale;
    m.disp = disp;
    return m;
  }
  static MemRef Abs(int32_t disp) {
    MemRef m;
    m.disp = disp;
    return m;
  }
};

enum class OperandKind : uint8_t { kNone, kGpr, kXmm, kImm, kMem };

struct Operand {
  OperandKind kind = OperandKind::kNone;
  Gpr gpr = Gpr::kRax;
  Xmm xmm = Xmm::kXmm0;
  int64_t imm = 0;
  MemRef mem;

  static Operand R(Gpr r) {
    Operand o;
    o.kind = OperandKind::kGpr;
    o.gpr = r;
    return o;
  }
  static Operand X(Xmm r) {
    Operand o;
    o.kind = OperandKind::kXmm;
    o.xmm = r;
    return o;
  }
  static Operand Imm(int64_t v) {
    Operand o;
    o.kind = OperandKind::kImm;
    o.imm = v;
    return o;
  }
  static Operand M(MemRef m) {
    Operand o;
    o.kind = OperandKind::kMem;
    o.mem = m;
    return o;
  }
  bool is_reg() const { return kind == OperandKind::kGpr; }
  bool is_mem() const { return kind == OperandKind::kMem; }
  bool is_imm() const { return kind == OperandKind::kImm; }
  bool is_xmm() const { return kind == OperandKind::kXmm; }
};

// Machine opcodes. Integer ops use `width` (4 or 8 bytes) like the 32/64-bit
// forms of the real ISA; loads additionally honor `width` 1/2 with
// `sign_extend`.
enum class MOp : uint8_t {
  // Data movement.
  kMov,     // dst <- src (reg/imm/mem; one side must not be mem for both)
  kMovImm64,  // dst reg <- 64-bit immediate (10-byte form)
  kLoad,    // dst reg <- [mem], width 1/2/4/8, sign_extend for sub-word
  kStore,   // [mem] <- src (reg or imm), width 1/2/4/8
  kLea,     // dst reg <- address of mem operand
  kPush,    // push reg
  kPop,     // pop reg
  kXchg,

  // Integer ALU (dst: reg or mem; src: reg, imm, or mem — not both mem).
  kAdd,
  kSub,
  kImul,    // dst reg <- dst * src (two-operand form)
  kAnd,
  kOr,
  kXor,
  kNeg,
  kNot,
  kShl,     // count: imm or rcx (cl)
  kShr,
  kSar,
  kRol,
  kRor,
  kCmp,
  kTest,
  kCdq,     // sign-extend rax into rdx (width 4) / cqo (width 8)
  kIdiv,    // signed divide rdx:rax by src; quotient rax, remainder rdx
  kDiv,     // unsigned divide
  kSetcc,   // dst reg (byte) <- cond
  kLzcnt,
  kTzcnt,
  kPopcnt,
  kMovsxd,  // dst64 <- sign-extended src32

  // Control flow.
  kJmp,     // target: label index
  kJcc,     // cond + label index
  kCall,    // direct call, target function index
  kCallReg, // indirect call, target function id in gpr
  kCallHost,// call host hook `imm`
  kRet,

  // SSE scalar double.
  kMovsd,     // xmm<->xmm / xmm<->mem
  kAddsd,
  kSubsd,
  kMulsd,
  kDivsd,
  kSqrtsd,
  kMinsd,     // Wasm min/max semantics (engines emit branchy sequences;
  kMaxsd,     // modeled as one slower instruction)
  kAndpd,     // used for abs (mask constant via imm)
  kXorpd,     // used for neg
  kOrpd,      // used for copysign
  kUcomisd,   // sets ZF/CF/PF like the real instruction
  kCvtsi2sd,  // int (width 4/8, signedness via sign_extend) -> f64
  kCvttsd2si, // f64 -> int truncating; traps on overflow/NaN like Wasm
  kRoundsd,   // imm: 0 nearest, 1 floor, 2 ceil, 3 trunc

  // SSE scalar float.
  kMovss,
  kAddss,
  kSubss,
  kMulss,
  kDivss,
  kSqrtss,
  kMinss,
  kMaxss,
  kUcomiss,
  kCvtss2sd,
  kCvtsd2ss,
  kCvtsi2ss,
  kCvttss2si,
  kRoundss,

  // GPR <-> XMM bit moves.
  kMovqToXmm,   // xmm <- gpr bits
  kMovqFromXmm, // gpr <- xmm bits

  kNop,
};

const char* MOpName(MOp op);

struct MInstr {
  MOp op = MOp::kNop;
  Operand dst;
  Operand src;
  Operand src2;           // shift counts / roundsd immediates
  uint8_t width = 8;      // operation width in bytes (1/2/4/8)
  bool sign_extend = false;
  Cond cond = Cond::kE;   // kJcc / kSetcc
  uint32_t label = 0;     // branch target: instruction index within function
  uint32_t func = 0;      // kCall target / kCallHost hook index
  std::string comment;    // printed by the lister; no semantic effect

  // --- Constructors for common shapes ---
  static MInstr RR(MOp op, Gpr dst, Gpr src, uint8_t width = 8);
  static MInstr RI(MOp op, Gpr dst, int64_t imm, uint8_t width = 8);
  static MInstr RM(MOp op, Gpr dst, MemRef mem, uint8_t width = 8);
  static MInstr MR(MOp op, MemRef mem, Gpr src, uint8_t width = 8);
  static MInstr Jump(uint32_t label);
  static MInstr JumpCc(Cond cond, uint32_t label);
};

// Estimated encoded size in bytes of `instr` (drives instruction addresses
// for the L1i model). Deterministic and roughly faithful to x86-64 sizes.
uint32_t EncodedSize(const MInstr& instr);

// One compiled function.
struct MFunction {
  std::string name;
  std::vector<MInstr> code;
  uint32_t frame_slots = 0;     // spill slots (8 bytes each) below rbp
  uint64_t code_base = 0;       // byte address of the function (assigned at link)
  std::vector<uint32_t> instr_offsets;  // byte offset of each instruction
};

// A linked program: functions plus the indirect-call table image.
struct MProgram {
  std::vector<MFunction> funcs;
  // Indirect-call table: pairs (sig_id, func_index); written into machine
  // memory at kTableBase so the checking sequence performs real loads.
  struct TableEntry {
    uint32_t sig_id = UINT32_MAX;
    uint32_t func_index = UINT32_MAX;
  };
  std::vector<TableEntry> table;
  uint32_t entry_func = 0;
  uint64_t total_code_bytes = 0;
  // Code-layout order: function indices in the order their code is placed in
  // memory (PGO packs hot functions first to cut L1i misses). Must be a
  // permutation of [0, funcs.size()); empty = identity. Function *indices*
  // (call targets) are unaffected — only code_base assignment changes.
  std::vector<uint32_t> layout_order;
  uint32_t memory_pages = 0;          // initial wasm memory size
  uint32_t max_memory_pages = 65536;
  std::vector<std::pair<uint32_t, std::vector<uint8_t>>> data_segments;
  uint32_t num_globals = 0;
  std::vector<std::pair<uint32_t, uint64_t>> global_inits;  // slot -> bits
  // Stack-limit global slot used by JIT-profile stack checks.
  static constexpr uint32_t kStackLimitSlot = 0;

  // Assigns code_base / instr_offsets / total_code_bytes.
  void Link();
};

// Renders one instruction in Intel-ish syntax.
std::string MInstrToString(const MInstr& instr);
// Renders a whole function listing.
std::string MFunctionToString(const MFunction& func);

}  // namespace nsf

#endif  // SRC_X64_INSTS_H_
