#include "src/x64/insts.h"

#include "src/support/str.h"

namespace nsf {

const char* CondName(Cond c) {
  switch (c) {
    case Cond::kE: return "e";
    case Cond::kNe: return "ne";
    case Cond::kL: return "l";
    case Cond::kLe: return "le";
    case Cond::kG: return "g";
    case Cond::kGe: return "ge";
    case Cond::kB: return "b";
    case Cond::kBe: return "be";
    case Cond::kA: return "a";
    case Cond::kAe: return "ae";
    case Cond::kS: return "s";
    case Cond::kNs: return "ns";
    case Cond::kP: return "p";
    case Cond::kNp: return "np";
  }
  return "?";
}

Cond NegateCond(Cond c) {
  switch (c) {
    case Cond::kE: return Cond::kNe;
    case Cond::kNe: return Cond::kE;
    case Cond::kL: return Cond::kGe;
    case Cond::kLe: return Cond::kG;
    case Cond::kG: return Cond::kLe;
    case Cond::kGe: return Cond::kL;
    case Cond::kB: return Cond::kAe;
    case Cond::kBe: return Cond::kA;
    case Cond::kA: return Cond::kBe;
    case Cond::kAe: return Cond::kB;
    case Cond::kS: return Cond::kNs;
    case Cond::kNs: return Cond::kS;
    case Cond::kP: return Cond::kNp;
    case Cond::kNp: return Cond::kP;
  }
  return Cond::kE;
}

const char* MOpName(MOp op) {
  switch (op) {
    case MOp::kMov: return "mov";
    case MOp::kMovImm64: return "movabs";
    case MOp::kLoad: return "mov";
    case MOp::kStore: return "mov";
    case MOp::kLea: return "lea";
    case MOp::kPush: return "push";
    case MOp::kPop: return "pop";
    case MOp::kXchg: return "xchg";
    case MOp::kAdd: return "add";
    case MOp::kSub: return "sub";
    case MOp::kImul: return "imul";
    case MOp::kAnd: return "and";
    case MOp::kOr: return "or";
    case MOp::kXor: return "xor";
    case MOp::kNeg: return "neg";
    case MOp::kNot: return "not";
    case MOp::kShl: return "shl";
    case MOp::kShr: return "shr";
    case MOp::kSar: return "sar";
    case MOp::kRol: return "rol";
    case MOp::kRor: return "ror";
    case MOp::kCmp: return "cmp";
    case MOp::kTest: return "test";
    case MOp::kCdq: return "cdq";
    case MOp::kIdiv: return "idiv";
    case MOp::kDiv: return "div";
    case MOp::kSetcc: return "set";
    case MOp::kLzcnt: return "lzcnt";
    case MOp::kTzcnt: return "tzcnt";
    case MOp::kPopcnt: return "popcnt";
    case MOp::kMovsxd: return "movsxd";
    case MOp::kJmp: return "jmp";
    case MOp::kJcc: return "j";
    case MOp::kCall: return "call";
    case MOp::kCallReg: return "call";
    case MOp::kCallHost: return "callhost";
    case MOp::kRet: return "ret";
    case MOp::kMovsd: return "movsd";
    case MOp::kAddsd: return "addsd";
    case MOp::kSubsd: return "subsd";
    case MOp::kMulsd: return "mulsd";
    case MOp::kDivsd: return "divsd";
    case MOp::kSqrtsd: return "sqrtsd";
    case MOp::kMinsd: return "minsd*";
    case MOp::kMaxsd: return "maxsd*";
    case MOp::kAndpd: return "andpd";
    case MOp::kXorpd: return "xorpd";
    case MOp::kOrpd: return "orpd";
    case MOp::kUcomisd: return "ucomisd";
    case MOp::kCvtsi2sd: return "cvtsi2sd";
    case MOp::kCvttsd2si: return "cvttsd2si";
    case MOp::kRoundsd: return "roundsd";
    case MOp::kMovss: return "movss";
    case MOp::kAddss: return "addss";
    case MOp::kSubss: return "subss";
    case MOp::kMulss: return "mulss";
    case MOp::kDivss: return "divss";
    case MOp::kSqrtss: return "sqrtss";
    case MOp::kMinss: return "minss*";
    case MOp::kMaxss: return "maxss*";
    case MOp::kUcomiss: return "ucomiss";
    case MOp::kCvtss2sd: return "cvtss2sd";
    case MOp::kCvtsd2ss: return "cvtsd2ss";
    case MOp::kCvtsi2ss: return "cvtsi2ss";
    case MOp::kCvttss2si: return "cvttss2si";
    case MOp::kRoundss: return "roundss";
    case MOp::kMovqToXmm: return "movq";
    case MOp::kMovqFromXmm: return "movq";
    case MOp::kNop: return "nop";
  }
  return "?";
}

MInstr MInstr::RR(MOp op, Gpr dst, Gpr src, uint8_t width) {
  MInstr i;
  i.op = op;
  i.dst = Operand::R(dst);
  i.src = Operand::R(src);
  i.width = width;
  return i;
}

MInstr MInstr::RI(MOp op, Gpr dst, int64_t imm, uint8_t width) {
  MInstr i;
  i.op = op;
  i.dst = Operand::R(dst);
  i.src = Operand::Imm(imm);
  i.width = width;
  return i;
}

MInstr MInstr::RM(MOp op, Gpr dst, MemRef mem, uint8_t width) {
  MInstr i;
  i.op = op;
  i.dst = Operand::R(dst);
  i.src = Operand::M(mem);
  i.width = width;
  return i;
}

MInstr MInstr::MR(MOp op, MemRef mem, Gpr src, uint8_t width) {
  MInstr i;
  i.op = op;
  i.dst = Operand::M(mem);
  i.src = Operand::R(src);
  i.width = width;
  return i;
}

MInstr MInstr::Jump(uint32_t label) {
  MInstr i;
  i.op = MOp::kJmp;
  i.label = label;
  return i;
}

MInstr MInstr::JumpCc(Cond cond, uint32_t label) {
  MInstr i;
  i.op = MOp::kJcc;
  i.cond = cond;
  i.label = label;
  return i;
}

namespace {

uint32_t MemRefBytes(const MemRef& m) {
  uint32_t bytes = 1;  // ModRM
  if (m.index.has_value() || !m.base.has_value()) {
    bytes += 1;  // SIB
  }
  if (m.disp == 0 && m.base.has_value() && *m.base != Gpr::kRbp) {
    // no displacement
  } else if (m.disp >= -128 && m.disp <= 127) {
    bytes += 1;
  } else {
    bytes += 4;
  }
  return bytes;
}

uint32_t ImmBytes(int64_t v) { return v >= -128 && v <= 127 ? 1 : 4; }

}  // namespace

uint32_t EncodedSize(const MInstr& instr) {
  switch (instr.op) {
    case MOp::kNop:
      return 1;
    case MOp::kRet:
      return 1;
    case MOp::kPush:
    case MOp::kPop:
      return static_cast<uint8_t>(instr.dst.gpr) >= 8 ? 2 : 1;
    case MOp::kJmp:
      return 2;  // assume short form dominates intra-function
    case MOp::kJcc:
      return 3;
    case MOp::kCall:
    case MOp::kCallHost:
      return 5;
    case MOp::kCallReg:
      return 3;
    case MOp::kMovImm64:
      return 10;
    case MOp::kCdq:
      return instr.width == 8 ? 2 : 1;
    default:
      break;
  }
  uint32_t bytes = 1;  // primary opcode
  if (instr.width == 8) {
    bytes += 1;  // REX.W
  }
  // Two-byte opcodes for SSE / movzx / setcc / popcnt families.
  switch (instr.op) {
    case MOp::kMovsd:
    case MOp::kAddsd:
    case MOp::kSubsd:
    case MOp::kMulsd:
    case MOp::kDivsd:
    case MOp::kSqrtsd:
    case MOp::kMinsd:
    case MOp::kMaxsd:
    case MOp::kAndpd:
    case MOp::kXorpd:
    case MOp::kOrpd:
    case MOp::kUcomisd:
    case MOp::kCvtsi2sd:
    case MOp::kCvttsd2si:
    case MOp::kMovss:
    case MOp::kAddss:
    case MOp::kSubss:
    case MOp::kMulss:
    case MOp::kDivss:
    case MOp::kSqrtss:
    case MOp::kMinss:
    case MOp::kMaxss:
    case MOp::kUcomiss:
    case MOp::kCvtss2sd:
    case MOp::kCvtsd2ss:
    case MOp::kCvtsi2ss:
    case MOp::kCvttss2si:
    case MOp::kMovqToXmm:
    case MOp::kMovqFromXmm:
    case MOp::kSetcc:
    case MOp::kLzcnt:
    case MOp::kTzcnt:
    case MOp::kPopcnt:
      bytes += 2;  // prefix + 0x0F
      break;
    case MOp::kRoundsd:
    case MOp::kRoundss:
      bytes += 4;  // 66 0F 3A xx + imm8
      break;
    case MOp::kLoad:
      if (instr.width < 4) {
        bytes += 1;  // movzx/movsx are 0F-escaped
      }
      break;
    default:
      break;
  }
  if (instr.dst.is_mem()) {
    bytes += MemRefBytes(instr.dst.mem);
  } else if (instr.src.is_mem()) {
    bytes += MemRefBytes(instr.src.mem);
  } else if (instr.dst.is_reg() || instr.dst.is_xmm()) {
    bytes += 1;  // ModRM reg-reg
  }
  if (instr.src.is_imm()) {
    bytes += ImmBytes(instr.src.imm);
  }
  if (instr.src2.is_imm() && (instr.op == MOp::kShl || instr.op == MOp::kShr ||
                              instr.op == MOp::kSar || instr.op == MOp::kRol ||
                              instr.op == MOp::kRor)) {
    bytes += 1;
  }
  return bytes;
}

namespace {

std::string OperandToString(const Operand& o, uint8_t width) {
  switch (o.kind) {
    case OperandKind::kNone:
      return "";
    case OperandKind::kGpr:
      return width == 8 ? GprName(o.gpr) : GprName32(o.gpr);
    case OperandKind::kXmm:
      return XmmName(o.xmm);
    case OperandKind::kImm:
      return StrFormat("%lld", static_cast<long long>(o.imm));
    case OperandKind::kMem: {
      std::string s = "[";
      bool need_plus = false;
      if (o.mem.base.has_value()) {
        s += GprName(*o.mem.base);
        need_plus = true;
      }
      if (o.mem.index.has_value()) {
        if (need_plus) {
          s += "+";
        }
        s += StrFormat("%s*%u", GprName(*o.mem.index), o.mem.scale);
        need_plus = true;
      }
      if (o.mem.disp != 0 || !need_plus) {
        if (need_plus && o.mem.disp >= 0) {
          s += "+";
        }
        s += StrFormat("%d", o.mem.disp);
      }
      s += "]";
      return s;
    }
  }
  return "";
}

}  // namespace

std::string MInstrToString(const MInstr& instr) {
  std::string s;
  switch (instr.op) {
    case MOp::kJmp:
      s = StrFormat("jmp L%u", instr.label);
      break;
    case MOp::kJcc:
      s = StrFormat("j%s L%u", CondName(instr.cond), instr.label);
      break;
    case MOp::kCall:
      s = StrFormat("call f%u", instr.func);
      break;
    case MOp::kCallHost:
      s = StrFormat("call host%u", instr.func);
      break;
    case MOp::kCallReg:
      s = StrFormat("call %s", GprName(instr.dst.gpr));
      break;
    case MOp::kSetcc:
      s = StrFormat("set%s %s", CondName(instr.cond), OperandToString(instr.dst, 4).c_str());
      break;
    case MOp::kCdq:
      s = instr.width == 8 ? "cqo" : "cdq";
      break;
    default: {
      s = MOpName(instr.op);
      std::string dst = OperandToString(instr.dst, instr.width);
      std::string src = OperandToString(instr.src, instr.width);
      std::string src2 = OperandToString(instr.src2, 4);
      if (!dst.empty()) {
        s += " " + dst;
      }
      if (!src.empty()) {
        s += ", " + src;
      }
      if (!src2.empty()) {
        s += ", " + src2;
      }
      break;
    }
  }
  if (!instr.comment.empty()) {
    while (s.size() < 36) {
      s += ' ';
    }
    s += " # " + instr.comment;
  }
  return s;
}

std::string MFunctionToString(const MFunction& func) {
  std::string out = func.name + ":\n";
  for (size_t i = 0; i < func.code.size(); i++) {
    out += StrFormat("  %4zu: %s\n", i, MInstrToString(func.code[i]).c_str());
  }
  return out;
}

void MProgram::Link() {
  std::vector<uint32_t> order;
  if (layout_order.size() == funcs.size()) {
    order = layout_order;
  } else {
    order.resize(funcs.size());
    for (uint32_t i = 0; i < funcs.size(); i++) {
      order[i] = i;
    }
  }
  uint64_t base = 0;
  for (uint32_t fi : order) {
    MFunction& f = funcs[fi];
    f.code_base = base;
    f.instr_offsets.clear();
    f.instr_offsets.reserve(f.code.size());
    uint32_t off = 0;
    for (const MInstr& instr : f.code) {
      f.instr_offsets.push_back(off);
      off += EncodedSize(instr);
    }
    base += off;
    // Align functions to 16 bytes like real JITs/linkers.
    base = (base + 15) & ~uint64_t{15};
  }
  total_code_bytes = base;
}

}  // namespace nsf
