// Register file of the simulated x86-64 target.
#ifndef SRC_X64_REGS_H_
#define SRC_X64_REGS_H_

#include <cstdint>

namespace nsf {

// General-purpose registers, in x86-64 encoding order.
enum class Gpr : uint8_t {
  kRax = 0,
  kRcx = 1,
  kRdx = 2,
  kRbx = 3,
  kRsp = 4,
  kRbp = 5,
  kRsi = 6,
  kRdi = 7,
  kR8 = 8,
  kR9 = 9,
  kR10 = 10,
  kR11 = 11,
  kR12 = 12,
  kR13 = 13,
  kR14 = 14,
  kR15 = 15,
};
inline constexpr int kNumGprs = 16;

// SSE registers (modeled as 64-bit scalar lanes; f32 values live in the low
// 32 bits with the usual single-precision rounding applied by ops).
enum class Xmm : uint8_t {
  kXmm0 = 0,
  kXmm1,
  kXmm2,
  kXmm3,
  kXmm4,
  kXmm5,
  kXmm6,
  kXmm7,
  kXmm8,
  kXmm9,
  kXmm10,
  kXmm11,
  kXmm12,
  kXmm13,
  kXmm14,
  kXmm15,
};
inline constexpr int kNumXmms = 16;

const char* GprName(Gpr r);       // 64-bit name (rax)
const char* GprName32(Gpr r);     // 32-bit name (eax)
const char* XmmName(Xmm r);

}  // namespace nsf

#endif  // SRC_X64_REGS_H_
