#include "src/x64/regs.h"

namespace nsf {

namespace {
const char* const kGprNames[16] = {"rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi",
                                   "r8",  "r9",  "r10", "r11", "r12", "r13", "r14", "r15"};
const char* const kGprNames32[16] = {"eax", "ecx", "edx",  "ebx",  "esp",  "ebp",  "esi",  "edi",
                                     "r8d", "r9d", "r10d", "r11d", "r12d", "r13d", "r14d", "r15d"};
const char* const kXmmNames[16] = {"xmm0",  "xmm1",  "xmm2",  "xmm3", "xmm4",  "xmm5",
                                   "xmm6",  "xmm7",  "xmm8",  "xmm9", "xmm10", "xmm11",
                                   "xmm12", "xmm13", "xmm14", "xmm15"};
}  // namespace

const char* GprName(Gpr r) { return kGprNames[static_cast<uint8_t>(r)]; }
const char* GprName32(Gpr r) { return kGprNames32[static_cast<uint8_t>(r)]; }
const char* XmmName(Xmm r) { return kXmmNames[static_cast<uint8_t>(r)]; }

}  // namespace nsf
