#include "src/profile/profile.h"

#include <algorithm>
#include <numeric>

#include "src/support/leb128.h"
#include "src/support/str.h"

namespace nsf {

uint64_t IndirectSiteProfile::total() const {
  uint64_t n = 0;
  for (const auto& [elem, count] : targets) {
    n += count;
  }
  return n;
}

bool IndirectSiteProfile::Monomorphic(uint32_t* elem, double min_fraction,
                                      uint64_t min_calls) const {
  uint64_t sum = total();
  if (sum < min_calls) {
    return false;
  }
  uint32_t best_elem = 0;
  uint64_t best = 0;
  for (const auto& [e, count] : targets) {
    if (count > best) {
      best = count;
      best_elem = e;
    }
  }
  if (static_cast<double>(best) < min_fraction * static_cast<double>(sum)) {
    return false;
  }
  *elem = best_elem;
  return true;
}

std::vector<uint32_t> BuildSiteMap(const Function& func) {
  std::vector<uint32_t> map(func.body.size(), kNoProfileSite);
  uint32_t loops = 0, branches = 0, indirects = 0;
  for (size_t pc = 0; pc < func.body.size(); pc++) {
    switch (func.body[pc].op) {
      case Opcode::kLoop:
        map[pc] = loops++;
        break;
      case Opcode::kIf:
      case Opcode::kBrIf:
        map[pc] = branches++;
        break;
      case Opcode::kCallIndirect:
        map[pc] = indirects++;
        break;
      default:
        break;
    }
  }
  return map;
}

Profile Profile::ForModule(const Module& module) {
  Profile p(module.NumTotalFuncs());
  uint32_t imported = module.NumImportedFuncs();
  for (uint32_t d = 0; d < module.functions.size(); d++) {
    const Function& f = module.functions[d];
    uint32_t loops = 0, branches = 0, indirects = 0;
    for (const Instr& instr : f.body) {
      switch (instr.op) {
        case Opcode::kLoop:
          loops++;
          break;
        case Opcode::kIf:
        case Opcode::kBrIf:
          branches++;
          break;
        case Opcode::kCallIndirect:
          indirects++;
          break;
        default:
          break;
      }
    }
    FuncProfile& fp = p.func(imported + d);
    fp.loop_trips.assign(loops, 0);
    fp.branches.assign(branches, BranchSiteProfile{});
    fp.indirect_sites.assign(indirects, IndirectSiteProfile{});
  }
  return p;
}

uint64_t Profile::total_instrs() const {
  uint64_t n = 0;
  for (const FuncProfile& fp : funcs_) {
    n += fp.instrs_retired;
  }
  return n;
}

uint64_t Profile::Weight(uint32_t joint_index) const {
  const FuncProfile& fp = funcs_[joint_index];
  // The per-entry charge keeps hot import stubs (no body instructions) ahead
  // of cold defined code.
  return fp.instrs_retired + 8 * fp.entry_count;
}

std::vector<uint32_t> Profile::FunctionsByHotness() const {
  std::vector<uint32_t> order(funcs_.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [this](uint32_t a, uint32_t b) {
    return Weight(a) > Weight(b);
  });
  return order;
}

std::vector<uint32_t> Profile::HotFunctions(double coverage) const {
  std::vector<uint32_t> order = FunctionsByHotness();
  uint64_t total = 0;
  for (uint32_t i = 0; i < num_funcs(); i++) {
    total += Weight(i);
  }
  std::vector<uint32_t> hot;
  uint64_t acc = 0;
  for (uint32_t f : order) {
    uint64_t w = Weight(f);
    if (w == 0 || (total > 0 && static_cast<double>(acc) >= coverage * static_cast<double>(total))) {
      break;
    }
    hot.push_back(f);
    acc += w;
  }
  return hot;
}

void Profile::Merge(const Profile& other) {
  if (funcs_.size() < other.funcs_.size()) {
    funcs_.resize(other.funcs_.size());
  }
  for (uint32_t i = 0; i < other.num_funcs(); i++) {
    const FuncProfile& src = other.funcs_[i];
    FuncProfile& dst = funcs_[i];
    dst.entry_count += src.entry_count;
    dst.instrs_retired += src.instrs_retired;
    if (dst.loop_trips.size() < src.loop_trips.size()) {
      dst.loop_trips.resize(src.loop_trips.size(), 0);
    }
    for (size_t s = 0; s < src.loop_trips.size(); s++) {
      dst.loop_trips[s] += src.loop_trips[s];
    }
    if (dst.branches.size() < src.branches.size()) {
      dst.branches.resize(src.branches.size());
    }
    for (size_t s = 0; s < src.branches.size(); s++) {
      dst.branches[s].taken += src.branches[s].taken;
      dst.branches[s].not_taken += src.branches[s].not_taken;
    }
    if (dst.indirect_sites.size() < src.indirect_sites.size()) {
      dst.indirect_sites.resize(src.indirect_sites.size());
    }
    for (size_t s = 0; s < src.indirect_sites.size(); s++) {
      for (const auto& [elem, count] : src.indirect_sites[s].targets) {
        dst.indirect_sites[s].targets[elem] += count;
      }
    }
  }
}

// --- Binary serialization ---

namespace {
constexpr uint8_t kMagic[4] = {'N', 'S', 'F', 'P'};
constexpr uint32_t kVersion = 1;
}  // namespace

std::vector<uint8_t> Profile::SerializeBinary() const {
  std::vector<uint8_t> out;
  // push_back, not insert(range): GCC 12's -Wstringop-overflow false-fires
  // on the memmove the range insert lowers to when the vector starts empty.
  for (uint8_t b : kMagic) {
    out.push_back(b);
  }
  WriteVarU32(out, kVersion);
  WriteVarU32(out, num_funcs());
  for (const FuncProfile& fp : funcs_) {
    WriteVarU64(out, fp.entry_count);
    WriteVarU64(out, fp.instrs_retired);
    WriteVarU32(out, static_cast<uint32_t>(fp.loop_trips.size()));
    for (uint64_t t : fp.loop_trips) {
      WriteVarU64(out, t);
    }
    WriteVarU32(out, static_cast<uint32_t>(fp.branches.size()));
    for (const BranchSiteProfile& b : fp.branches) {
      WriteVarU64(out, b.taken);
      WriteVarU64(out, b.not_taken);
    }
    WriteVarU32(out, static_cast<uint32_t>(fp.indirect_sites.size()));
    for (const IndirectSiteProfile& site : fp.indirect_sites) {
      WriteVarU32(out, static_cast<uint32_t>(site.targets.size()));
      for (const auto& [elem, count] : site.targets) {
        WriteVarU32(out, elem);
        WriteVarU64(out, count);
      }
    }
  }
  return out;
}

bool Profile::ParseBinary(const std::vector<uint8_t>& bytes, Profile* out,
                          std::string* error) {
  ByteReader r(bytes);
  for (uint8_t m : kMagic) {
    if (r.ReadByte() != m) {
      *error = "bad profile magic";
      return false;
    }
  }
  if (r.ReadVarU32() != kVersion) {
    *error = "unsupported profile version";
    return false;
  }
  uint32_t n = r.ReadVarU32();
  // Each function record needs at least 5 bytes (two counts + three site
  // lengths), so bound the up-front allocation by what the payload could
  // actually hold — a truncated header must not force a huge resize.
  if (!r.ok() || n > (1u << 24) || static_cast<size_t>(n) > r.remaining() / 5 + 1) {
    *error = "malformed profile header";
    return false;
  }
  Profile p(n);
  for (uint32_t i = 0; i < n; i++) {
    FuncProfile& fp = p.func(i);
    fp.entry_count = r.ReadVarU64();
    fp.instrs_retired = r.ReadVarU64();
    uint32_t loops = r.ReadVarU32();
    if (!r.ok() || loops > (1u << 24)) {
      *error = StrFormat("malformed loop sites in func %u", i);
      return false;
    }
    fp.loop_trips.resize(loops);
    for (uint32_t s = 0; s < loops; s++) {
      fp.loop_trips[s] = r.ReadVarU64();
    }
    uint32_t branches = r.ReadVarU32();
    if (!r.ok() || branches > (1u << 24)) {
      *error = StrFormat("malformed branch sites in func %u", i);
      return false;
    }
    fp.branches.resize(branches);
    for (uint32_t s = 0; s < branches; s++) {
      fp.branches[s].taken = r.ReadVarU64();
      fp.branches[s].not_taken = r.ReadVarU64();
    }
    uint32_t indirects = r.ReadVarU32();
    if (!r.ok() || indirects > (1u << 24)) {
      *error = StrFormat("malformed indirect sites in func %u", i);
      return false;
    }
    fp.indirect_sites.resize(indirects);
    for (uint32_t s = 0; s < indirects; s++) {
      uint32_t targets = r.ReadVarU32();
      if (!r.ok() || targets > (1u << 24)) {
        *error = StrFormat("malformed histogram in func %u", i);
        return false;
      }
      for (uint32_t t = 0; t < targets; t++) {
        uint32_t elem = r.ReadVarU32();
        uint64_t count = r.ReadVarU64();
        fp.indirect_sites[s].targets[elem] = count;
      }
    }
  }
  if (!r.ok() || !r.AtEnd()) {
    *error = "trailing or truncated profile bytes";
    return false;
  }
  *out = std::move(p);
  return true;
}

// --- Text serialization ---

std::string Profile::SerializeText() const {
  std::string out = StrFormat("nsfprofile v%u funcs %u\n", kVersion, num_funcs());
  for (uint32_t i = 0; i < num_funcs(); i++) {
    const FuncProfile& fp = funcs_[i];
    out += StrFormat("func %u entries %llu instrs %llu\n", i,
                     static_cast<unsigned long long>(fp.entry_count),
                     static_cast<unsigned long long>(fp.instrs_retired));
    for (size_t s = 0; s < fp.loop_trips.size(); s++) {
      out += StrFormat("  loop %zu %llu\n", s,
                       static_cast<unsigned long long>(fp.loop_trips[s]));
    }
    for (size_t s = 0; s < fp.branches.size(); s++) {
      out += StrFormat("  branch %zu %llu %llu\n", s,
                       static_cast<unsigned long long>(fp.branches[s].taken),
                       static_cast<unsigned long long>(fp.branches[s].not_taken));
    }
    for (size_t s = 0; s < fp.indirect_sites.size(); s++) {
      out += StrFormat("  indirect %zu", s);
      for (const auto& [elem, count] : fp.indirect_sites[s].targets) {
        out += StrFormat(" %u:%llu", elem, static_cast<unsigned long long>(count));
      }
      out += "\n";
    }
  }
  return out;
}

namespace {

// Strict decimal u64 parse: the whole string must be digits and fit. Avoids
// std::stoull, which throws on garbage instead of honoring the bool+error
// contract.
bool ParseU64(const std::string& s, uint64_t* out) {
  if (s.empty() || s.size() > 20) {
    return false;
  }
  uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') {
      return false;
    }
    uint64_t digit = static_cast<uint64_t>(c - '0');
    if (v > (UINT64_MAX - digit) / 10) {
      return false;
    }
    v = v * 10 + digit;
  }
  *out = v;
  return true;
}

bool ParseU32(const std::string& s, uint32_t* out) {
  uint64_t v = 0;
  if (!ParseU64(s, &v) || v > UINT32_MAX) {
    return false;
  }
  *out = static_cast<uint32_t>(v);
  return true;
}

// Site indices in text profiles are bounded like the binary form, so one bad
// line cannot force a multi-gigabyte resize.
constexpr uint32_t kMaxTextSite = 1u << 24;

}  // namespace

bool Profile::ParseText(const std::string& text, Profile* out, std::string* error) {
  std::vector<std::string> lines = StrSplit(text, '\n');
  auto fields = [](const std::string& line) {
    std::vector<std::string> raw = StrSplit(line, ' ');
    std::vector<std::string> kept;
    for (std::string& f : raw) {
      if (!f.empty()) {
        kept.push_back(std::move(f));
      }
    }
    return kept;
  };
  size_t ln = 0;
  auto fail = [&](const char* msg) {
    *error = StrFormat("profile text line %zu: %s", ln + 1, msg);
    return false;
  };
  if (lines.empty()) {
    return fail("empty input");
  }
  std::vector<std::string> header = fields(lines[0]);
  uint32_t num_funcs = 0;
  if (header.size() != 4 || header[0] != "nsfprofile" ||
      header[1] != StrFormat("v%u", kVersion) || header[2] != "funcs" ||
      !ParseU32(header[3], &num_funcs) || num_funcs > kMaxTextSite) {
    return fail("bad header");
  }
  Profile p(num_funcs);
  FuncProfile* cur = nullptr;
  for (ln = 1; ln < lines.size(); ln++) {
    std::vector<std::string> f = fields(lines[ln]);
    if (f.empty()) {
      continue;
    }
    if (f[0] == "func") {
      uint32_t idx = 0;
      if (f.size() != 6 || f[2] != "entries" || f[4] != "instrs" || !ParseU32(f[1], &idx)) {
        return fail("bad func line");
      }
      if (idx >= p.num_funcs()) {
        return fail("func index out of range");
      }
      cur = &p.func(idx);
      if (!ParseU64(f[3], &cur->entry_count) || !ParseU64(f[5], &cur->instrs_retired)) {
        return fail("bad func counts");
      }
    } else if (f[0] == "loop") {
      uint32_t site = 0;
      if (cur == nullptr || f.size() != 3 || !ParseU32(f[1], &site) || site > kMaxTextSite) {
        return fail("bad loop line");
      }
      if (cur->loop_trips.size() <= site) {
        cur->loop_trips.resize(site + 1, 0);
      }
      if (!ParseU64(f[2], &cur->loop_trips[site])) {
        return fail("bad loop count");
      }
    } else if (f[0] == "branch") {
      uint32_t site = 0;
      if (cur == nullptr || f.size() != 4 || !ParseU32(f[1], &site) || site > kMaxTextSite) {
        return fail("bad branch line");
      }
      if (cur->branches.size() <= site) {
        cur->branches.resize(site + 1);
      }
      if (!ParseU64(f[2], &cur->branches[site].taken) ||
          !ParseU64(f[3], &cur->branches[site].not_taken)) {
        return fail("bad branch counts");
      }
    } else if (f[0] == "indirect") {
      uint32_t site = 0;
      if (cur == nullptr || f.size() < 2 || !ParseU32(f[1], &site) || site > kMaxTextSite) {
        return fail("bad indirect line");
      }
      if (cur->indirect_sites.size() <= site) {
        cur->indirect_sites.resize(site + 1);
      }
      for (size_t i = 2; i < f.size(); i++) {
        size_t colon = f[i].find(':');
        uint32_t elem = 0;
        uint64_t count = 0;
        if (colon == std::string::npos || !ParseU32(f[i].substr(0, colon), &elem) ||
            !ParseU64(f[i].substr(colon + 1), &count)) {
          return fail("bad histogram entry");
        }
        cur->indirect_sites[site].targets[elem] = count;
      }
    } else {
      return fail("unknown directive");
    }
  }
  *out = std::move(p);
  return true;
}

ProfileCollector::ProfileCollector(const Module& module)
    : profile_(Profile::ForModule(module)) {
  site_maps_.reserve(module.functions.size());
  for (const Function& f : module.functions) {
    site_maps_.push_back(BuildSiteMap(f));
  }
}

}  // namespace nsf
