// Tier-up driver for the PGO subsystem: runs a workload once under the
// instrumented reference interpreter (tier 0, the warm-up run), then hands
// the collected Profile to profile-guided codegen (tier 1 recompilation).
#ifndef SRC_PROFILE_TIER_H_
#define SRC_PROFILE_TIER_H_

#include <map>
#include <string>

#include "src/codegen/codegen.h"
#include "src/engine/workload.h"
#include "src/profile/profile.h"

namespace nsf {

// Which PGO transforms the tier-up recompilation enables.
struct TierConfig {
  bool layout = true;            // CodegenOptions::pgo_layout
  bool rotate_hot_loops = true;  // CodegenOptions::pgo_rotate_hot_loops
  bool devirtualize = true;      // CodegenOptions::devirtualize_monomorphic
  uint64_t profile_fuel = 0;     // interpreter budget for the warm-up (0 = unlimited)
};

class TierManager {
 public:
  explicit TierManager(TierConfig config = TierConfig()) : config_(config) {}

  // Runs `spec` once under the interpreter with Browsix syscalls bound (the
  // same setup the machine path uses), collecting its profile. Results are
  // cached by spec.name; the returned pointer stays valid for the
  // TierManager's lifetime. Returns null and sets *error on failure.
  const Profile* ProfileFor(const WorkloadSpec& spec, std::string* error);

  // The warm-up run alone, without touching the cache: collects `spec`'s
  // profile into *out. const because it mutates no manager state — callers
  // that serialize cache access themselves (engine::TieringPolicy's per-key
  // latches) run Collect outside their lock so unrelated warm-ups overlap.
  bool Collect(const WorkloadSpec& spec, Profile* out, std::string* error) const;

  // Caches `profile` under `name` and returns the node-stable pointer. If an
  // entry already exists it is kept and returned (first writer wins).
  const Profile* Insert(const std::string& name, Profile profile);

  // The cached profile for `name`, or null. Pointer is node-stable.
  const Profile* CachedProfile(const std::string& name) const {
    auto it = cache_.find(name);
    return it == cache_.end() ? nullptr : &it->second;
  }

  // Returns `base` with PGO flags enabled per the config and `profile`
  // attached. The profile must outlive every compile using the result.
  CodegenOptions TierUp(const CodegenOptions& base, const Profile* profile) const;

  // ProfileFor + TierUp. Returns `base` unchanged (and sets *error) when the
  // warm-up run fails.
  CodegenOptions TierUpFor(const WorkloadSpec& spec, const CodegenOptions& base,
                           std::string* error);

  // True when a profile for `name` is already cached (no warm-up needed).
  bool HasProfileFor(const std::string& name) const { return cache_.count(name) != 0; }

 private:
  TierConfig config_;
  std::map<std::string, Profile> cache_;
};

}  // namespace nsf

#endif  // SRC_PROFILE_TIER_H_
