#include "src/profile/sampled.h"

namespace nsf {

SampledProfile::SampledProfile(uint32_t num_funcs, uint32_t period)
    : num_funcs_(num_funcs),
      period_(period),
      entries_(new std::atomic<uint64_t>[num_funcs]),
      backedges_(new std::atomic<uint64_t>[num_funcs]) {
  Reset();
}

void SampledProfile::Fold(const uint64_t* entries, const uint64_t* backedges, uint32_t n) {
  if (n > num_funcs_) {
    n = num_funcs_;
  }
  uint64_t folded = 0;
  for (uint32_t f = 0; f < n; f++) {
    if (entries[f] != 0) {
      entries_[f].fetch_add(entries[f], std::memory_order_relaxed);
    }
    if (backedges[f] != 0) {
      backedges_[f].fetch_add(backedges[f], std::memory_order_relaxed);
    }
    folded += entries[f] + backedges[f];
  }
  if (folded != 0) {
    total_.fetch_add(folded, std::memory_order_relaxed);
  }
}

Profile SampledProfile::ToProfile(uint32_t num_imported) const {
  Profile profile(num_imported + num_funcs_);
  MergeInto(&profile, num_imported);
  return profile;
}

void SampledProfile::MergeInto(Profile* out, uint32_t num_imported) const {
  const uint64_t scale = period_ == 0 ? 1 : period_;
  for (uint32_t f = 0; f < num_funcs_; f++) {
    uint32_t joint = num_imported + f;
    if (joint >= out->num_funcs()) {
      break;
    }
    uint64_t e = entries_[f].load(std::memory_order_relaxed);
    uint64_t b = backedges_[f].load(std::memory_order_relaxed);
    if (e == 0 && b == 0) {
      continue;
    }
    FuncProfile& fp = out->func(joint);
    fp.entry_count += e * scale;
    // Each sample stands for ~period dispatch events of progress inside the
    // function, so the combined scaled count is the self-weight proxy the
    // layout pass ranks by.
    fp.instrs_retired += (e + b) * scale;
  }
}

void SampledProfile::Reset() {
  for (uint32_t f = 0; f < num_funcs_; f++) {
    entries_[f].store(0, std::memory_order_relaxed);
    backedges_[f].store(0, std::memory_order_relaxed);
  }
  total_.store(0, std::memory_order_relaxed);
}

}  // namespace nsf
