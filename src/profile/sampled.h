// Sampled, always-on profiling for continuous tiering: the predecoded
// interpreter counts every Nth back-edge/call ("sampling event") into a
// SampledProfile instead of running the full instrumented warm-up.
//
// Contract with the machine (src/machine/decode.cc):
//   - The interpreter keeps a plain countdown and LOCAL per-function count
//     vectors; only SimMachine's destructor folds them into this object's
//     atomics (the same fold-on-destruction pattern as the dispatch-stats
//     tables), so the hot path never touches shared state.
//   - Sampling is invisible to PerfCounters: the hooks only read the decoded
//     stream and bump sampling-local state — bit-identical counters with
//     sampling on, off, or compiled out entirely.
//   - Deterministic: the countdown is seeded from the period and every Nth
//     event samples, so the same program + same period yields the same
//     counts on every run.
//
// Consumption: ToProfile() reconstructs a hotness-only Profile (entry counts
// and self-instruction weight scaled by the period, EMPTY site vectors —
// Profile::Merge explicitly accepts empty site vectors, so a sampled profile
// merges cleanly into a full instrumented one). The background tierer feeds
// it to the existing PGO pipeline for layout decisions, or uses the sample
// totals purely as a hotness trigger for a full warm-up collected off the
// serve path.
#ifndef SRC_PROFILE_SAMPLED_H_
#define SRC_PROFILE_SAMPLED_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "src/profile/profile.h"

namespace nsf {

class SampledProfile {
 public:
  // `num_funcs` is the machine-level (defined) function count; `period`
  // is the sampling stride (every Nth back-edge/call records one sample).
  // period == 0 is a valid "never samples" sink.
  SampledProfile(uint32_t num_funcs, uint32_t period);

  uint32_t num_funcs() const { return num_funcs_; }
  uint32_t period() const { return period_; }

  // Folds one machine's local count vectors (sized num_funcs) in. Called
  // from SimMachine's destructor; concurrent folds from racing machine
  // teardowns are safe (relaxed atomic adds — the totals are a hotness
  // signal, never a correctness input).
  void Fold(const uint64_t* entries, const uint64_t* backedges, uint32_t n);

  uint64_t entry_samples(uint32_t func) const {
    return func < num_funcs_ ? entries_[func].load(std::memory_order_relaxed) : 0;
  }
  uint64_t backedge_samples(uint32_t func) const {
    return func < num_funcs_ ? backedges_[func].load(std::memory_order_relaxed) : 0;
  }
  // All samples ever folded (entries + back-edges) — the hotness trigger the
  // background tierer polls.
  uint64_t total_samples() const { return total_.load(std::memory_order_relaxed); }

  // Reconstructs a hotness-only Profile: machine function f maps to joint
  // index `num_imported + f`; entry_count and instrs_retired are the sample
  // counts scaled back up by the period; all site vectors stay empty.
  Profile ToProfile(uint32_t num_imported = 0) const;

  // Accumulates this sink's reconstruction into `out` (Profile::Merge
  // semantics: empty site vectors merge into anything), so sampling windows
  // can refine a previously collected full profile.
  void MergeInto(Profile* out, uint32_t num_imported = 0) const;

  void Reset();

 private:
  uint32_t num_funcs_;
  uint32_t period_;
  std::unique_ptr<std::atomic<uint64_t>[]> entries_;
  std::unique_ptr<std::atomic<uint64_t>[]> backedges_;
  std::atomic<uint64_t> total_{0};
};

}  // namespace nsf

#endif  // SRC_PROFILE_SAMPLED_H_
