// Profile data model for the PGO subsystem: per-function call/instruction
// counts, per-site loop-trip and branch-direction counts, and indirect-call
// target histograms, collected by an interpreter warm-up run and consumed by
// the compiler (see CodegenOptions::profile).
//
// Profile sites are keyed by *ordinal*: the n-th kLoop / {kIf,kBrIf} /
// kCallIndirect opcode in a function body, counted in body order. Both the
// interpreter (via ProfileCollector) and the lowering pass enumerate sites
// the same way, so no pc-level mapping has to survive compilation.
#ifndef SRC_PROFILE_PROFILE_H_
#define SRC_PROFILE_PROFILE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/wasm/module.h"

namespace nsf {

inline constexpr uint32_t kNoProfileSite = UINT32_MAX;

// One conditional-branch site (a Wasm `if` or `br_if`). For `br_if`, taken
// means the condition was non-zero; for `if`, taken means the condition was
// zero (matching the branch-to-else shape lowering emits), so in both cases
// `taken` counts executions of the emitted forward branch.
struct BranchSiteProfile {
  uint64_t taken = 0;
  uint64_t not_taken = 0;

  uint64_t total() const { return taken + not_taken; }
  bool operator==(const BranchSiteProfile&) const = default;
};

// One call_indirect site: histogram of table element indices invoked.
struct IndirectSiteProfile {
  std::map<uint32_t, uint64_t> targets;  // table element index -> call count

  uint64_t total() const;
  // True when a single element receives >= min_fraction of at least
  // min_calls calls; *elem is that element.
  bool Monomorphic(uint32_t* elem, double min_fraction = 0.95,
                   uint64_t min_calls = 16) const;
  bool operator==(const IndirectSiteProfile&) const = default;
};

struct FuncProfile {
  uint64_t entry_count = 0;    // times the function was entered
  uint64_t instrs_retired = 0; // Wasm instructions executed in this body (self)
  std::vector<uint64_t> loop_trips;            // back-edge executions per kLoop site
  std::vector<BranchSiteProfile> branches;     // per kIf/kBrIf site
  std::vector<IndirectSiteProfile> indirect_sites;  // per kCallIndirect site

  bool operator==(const FuncProfile&) const = default;
};

// A whole-module profile, indexed by joint (imports-first) function index.
class Profile {
 public:
  Profile() = default;
  explicit Profile(uint32_t num_funcs) : funcs_(num_funcs) {}
  // Sizes every per-site vector to match `module`'s bodies.
  static Profile ForModule(const Module& module);

  uint32_t num_funcs() const { return static_cast<uint32_t>(funcs_.size()); }
  FuncProfile& func(uint32_t joint_index) { return funcs_[joint_index]; }
  const FuncProfile& func(uint32_t joint_index) const { return funcs_[joint_index]; }
  const std::vector<FuncProfile>& funcs() const { return funcs_; }

  uint64_t total_instrs() const;

  // Hotness weight used for code layout: self instructions plus a per-entry
  // charge (so frequently-called leaf stubs rank above never-run code).
  uint64_t Weight(uint32_t joint_index) const;

  // All function indices sorted hottest-first (ties broken by index, so the
  // order is deterministic).
  std::vector<uint32_t> FunctionsByHotness() const;

  // The hottest functions that together cover `coverage` of total weight.
  std::vector<uint32_t> HotFunctions(double coverage = 0.99) const;

  // Accumulates `other` (site vectors must be compatible or empty).
  void Merge(const Profile& other);

  // --- Serialization ---
  // Compact binary form (magic "NSFP", LEB128 payload). Round-trips
  // byte-identically: Serialize(Parse(Serialize(p))) == Serialize(p).
  std::vector<uint8_t> SerializeBinary() const;
  static bool ParseBinary(const std::vector<uint8_t>& bytes, Profile* out,
                          std::string* error);
  // Human-readable text form; also round-trips.
  std::string SerializeText() const;
  static bool ParseText(const std::string& text, Profile* out, std::string* error);

  bool operator==(const Profile&) const = default;

 private:
  std::vector<FuncProfile> funcs_;
};

// Maps body pc -> profile site ordinal for the site-bearing opcodes (kLoop,
// kIf, kBrIf, kCallIndirect); kNoProfileSite elsewhere. The three site kinds
// use disjoint opcodes, so one vector serves all of them.
std::vector<uint32_t> BuildSiteMap(const Function& func);

// Interpreter-facing collection state: a Profile sized for one module plus
// the per-function pc -> site maps the interpreter indexes while running.
class ProfileCollector {
 public:
  explicit ProfileCollector(const Module& module);

  // Bumps the entry count and returns the per-function slot the interpreter
  // increments directly on its hot path (null is never returned).
  FuncProfile* OnFuncEntry(uint32_t joint_index) {
    FuncProfile& fp = profile_.func(joint_index);
    fp.entry_count++;
    return &fp;
  }

  // pc -> site ordinal map for defined function `defined_index`.
  const std::vector<uint32_t>& site_map(uint32_t defined_index) const {
    return site_maps_[defined_index];
  }

  Profile& profile() { return profile_; }
  const Profile& profile() const { return profile_; }

 private:
  Profile profile_;
  std::vector<std::vector<uint32_t>> site_maps_;  // per defined function
};

}  // namespace nsf

#endif  // SRC_PROFILE_PROFILE_H_
