#include "src/profile/tier.h"

#include <memory>

#include "src/interp/interp.h"
#include "src/kernel/kernel.h"
#include "src/runtime/runtime.h"
#include "src/wasm/validator.h"

namespace nsf {

namespace {

// Imports must resolve before the Instance exists, but the syscall layer's
// memory port needs the Instance — the same two-phase bind the differential
// tests use.
class ForwardingResolver : public ImportResolver {
 public:
  ImportResolver* inner = nullptr;
  const HostFunc* ResolveFunc(const std::string& module, const std::string& name,
                              const FuncType& type) override {
    return inner == nullptr ? nullptr : inner->ResolveFunc(module, name, type);
  }
};

}  // namespace

const Profile* TierManager::ProfileFor(const WorkloadSpec& spec, std::string* error) {
  const Profile* cached = CachedProfile(spec.name);
  if (cached != nullptr) {
    return cached;
  }
  Profile profile;
  if (!Collect(spec, &profile, error)) {
    return nullptr;
  }
  return Insert(spec.name, std::move(profile));
}

bool TierManager::Collect(const WorkloadSpec& spec, Profile* out, std::string* error) const {
  Module module = spec.build();
  ValidationResult vr = ValidateModule(module);
  if (!vr.ok) {
    *error = spec.name + ": module invalid: " + vr.error;
    return false;
  }

  BrowsixKernel kernel;
  if (spec.setup) {
    spec.setup(kernel);
  }
  auto port = std::make_unique<InstanceMemPort>(nullptr);
  auto process = kernel.CreateProcess(port.get(), spec.argv);
  auto host = MakeInterpSyscalls(process.get());
  ForwardingResolver resolver;
  resolver.inner = host.get();

  std::string err;
  auto instance = Instance::Create(module, &resolver, &err);
  if (instance == nullptr) {
    *error = spec.name + ": instantiation failed: " + err;
    return false;
  }
  *port = InstanceMemPort(instance.get());

  ProfileCollector collector(module);
  instance->set_profile_collector(&collector);
  if (config_.profile_fuel != 0) {
    instance->set_fuel(config_.profile_fuel);
  }
  ExecResult r = instance->CallExport(spec.entry, {});
  // A fuel-capped warm-up that runs out of budget is the expected way to
  // bound profiling cost: the truncated profile is exactly the artifact we
  // wanted. Any other trap means the profile is untrustworthy.
  if (!r.ok && !(config_.profile_fuel != 0 && r.trap == TrapKind::kFuelExhausted)) {
    *error = spec.name + ": warm-up run trapped: " + r.error;
    return false;
  }

  *out = std::move(collector.profile());
  return true;
}

const Profile* TierManager::Insert(const std::string& name, Profile profile) {
  auto inserted = cache_.emplace(name, std::move(profile));
  return &inserted.first->second;
}

CodegenOptions TierManager::TierUp(const CodegenOptions& base, const Profile* profile) const {
  CodegenOptions tiered = base;
  tiered.profile_name = base.profile_name + "+pgo";
  tiered.profile = profile;
  tiered.pgo_layout = config_.layout;
  tiered.pgo_rotate_hot_loops = config_.rotate_hot_loops;
  tiered.devirtualize_monomorphic = config_.devirtualize;
  return tiered;
}

CodegenOptions TierManager::TierUpFor(const WorkloadSpec& spec, const CodegenOptions& base,
                                      std::string* error) {
  const Profile* profile = ProfileFor(spec, error);
  if (profile == nullptr) {
    return base;
  }
  return TierUp(base, profile);
}

}  // namespace nsf
