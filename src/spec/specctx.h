// Shared emission context for the SPEC-like workload generators: integer
// array addressing, an in-module xorshift32 RNG, and the main-function
// scaffold (open /out.txt, run, print results, return 0).
#ifndef SRC_SPEC_SPECCTX_H_
#define SRC_SPEC_SPECCTX_H_

#include <string>

#include "src/builder/builder.h"
#include "src/runtime/wasmlib.h"

namespace nsf {

class SpecCtx {
 public:
  explicit SpecCtx(const std::string& name, uint32_t pages = 256) : mb_(name) {
    mb_.AddMemory(pages, 4096);
    lib_ = AddWasmLib(&mb_, (pages - 16) * 65536u);
    mb_.AddData(256, std::string("/out.txt"));
    rng_state_ = mb_.AddGlobal(ValType::kI32, true, Instr::ConstI32(0x12345));
    // xorshift32: s ^= s<<13; s ^= s>>17; s ^= s<<5.
    auto& r = mb_.AddInternalFunction("rng", {}, {ValType::kI32});
    uint32_t s = r.AddLocal(ValType::kI32);
    r.GlobalGet(rng_state_).LocalSet(s);
    r.LocalGet(s).LocalGet(s).I32Const(13).I32Shl().I32Xor().LocalSet(s);
    r.LocalGet(s).LocalGet(s).I32Const(17).I32ShrU().I32Xor().LocalSet(s);
    r.LocalGet(s).LocalGet(s).I32Const(5).I32Shl().I32Xor().LocalSet(s);
    r.LocalGet(s).GlobalSet(rng_state_);
    r.LocalGet(s);
    rng_fn_ = r.index();
  }

  ModuleBuilder& mb() { return mb_; }
  const WasmLib& lib() const { return lib_; }
  FunctionBuilder& f() { return *f_; }
  // Directs the emission helpers (AddrI32/LdI32/...) at `fb`; BeginMain
  // re-targets them at main. Call this at the top of every internal-function
  // emitter that uses the helpers.
  void SetFunc(FunctionBuilder* fb) { f_ = fb; }
  uint32_t rng_fn() const { return rng_fn_; }
  uint32_t fd_local() const { return fd_; }

  void BeginMain() {
    f_ = &mb_.AddFunction("main", {}, {ValType::kI32});
    fd_ = f_->AddLocal(ValType::kI32);
    f_->I32Const(256).I32Const(0x241).Call(lib_.sys.open).LocalSet(fd_);
  }

  void EndMain() {
    f_->LocalGet(fd_).Call(lib_.sys.close).Drop();
    f_->I32Const(0);
  }

  // Prints "label=value\n" to the result file (i32 value on the Wasm stack
  // must be pushed by the caller right before PrintResultTail).
  void PrintLabel(const std::string& label) {
    uint32_t addr = next_str_;
    mb_.AddData(addr, label);
    next_str_ += static_cast<uint32_t>(label.size()) + 1;  // NUL from zero mem
    f_->LocalGet(fd_).I32Const(static_cast<int32_t>(addr)).Call(lib_.write_cstr);
  }
  // value must be in local `v`.
  void PrintResult(const std::string& label, uint32_t v_local) {
    PrintLabel(label + "=");
    f_->LocalGet(fd_).LocalGet(v_local).Call(lib_.print_i32);
    f_->LocalGet(fd_).Call(lib_.newline);
  }
  void PrintResultF64(const std::string& label, uint32_t v_local) {
    PrintLabel(label + "=");
    f_->LocalGet(fd_).LocalGet(v_local).I32Const(4).Call(lib_.print_f64);
    f_->LocalGet(fd_).Call(lib_.newline);
  }

  // --- address helpers (i32 elements unless noted) ---
  // Pushes base + idx_local*4.
  void AddrI32(uint32_t base, uint32_t idx_local) {
    f_->LocalGet(idx_local).I32Const(2).I32Shl();
    f_->I32Const(static_cast<int32_t>(base)).I32Add();
  }
  void LdI32(uint32_t base, uint32_t idx_local) {
    AddrI32(base, idx_local);
    f_->I32Load(0);
  }
  // Pushes base + idx_local*8 (f64 elements).
  void AddrF64(uint32_t base, uint32_t idx_local) {
    f_->LocalGet(idx_local).I32Const(3).I32Shl();
    f_->I32Const(static_cast<int32_t>(base)).I32Add();
  }
  void LdF64(uint32_t base, uint32_t idx_local) {
    AddrF64(base, idx_local);
    f_->F64Load(0);
  }

 private:
  ModuleBuilder mb_;
  WasmLib lib_;
  FunctionBuilder* f_ = nullptr;
  uint32_t fd_ = 0;
  uint32_t rng_state_ = 0;
  uint32_t rng_fn_ = 0;
  uint32_t next_str_ = 512;  // string constants 512..4095
};

}  // namespace nsf

#endif  // SRC_SPEC_SPECCTX_H_
