// SPEC-like integer workloads, part 1: 401.bzip2, 429.mcf, 445.gobmk,
// 458.sjeng.
#include "src/spec/spec_int.h"

#include "src/spec/specctx.h"
#include "src/support/rng.h"

namespace nsf {

namespace {
const auto kI32 = ValType::kI32;
}  // namespace

// 401.bzip2 — block compression: move-to-front transform + run-length
// encoding + order-0 frequency "entropy" accounting, over an input file, in
// multiple passes. Integer, table-driven, branchy.
WorkloadSpec SpecBzip2(int scale) {
  WorkloadSpec spec;
  spec.name = "401.bzip2";
  spec.output_files = {"/out.txt"};
  int input_size = 48 * 1024 * scale;
  spec.setup = [input_size](BrowsixKernel& kernel) {
    // Compressible synthetic text: repeated words with drift.
    Rng rng(42);
    std::vector<uint8_t> data;
    data.reserve(input_size);
    const char* words[] = {"the ", "quick ", "brown ", "fox ", "jumps ", "over ", "lazy "};
    while (data.size() < static_cast<size_t>(input_size)) {
      const char* w = words[rng.NextBelow(7)];
      for (const char* p = w; *p; p++) {
        data.push_back(static_cast<uint8_t>(*p));
      }
      if (rng.NextBelow(13) == 0) {
        data.push_back('\n');
      }
    }
    data.resize(input_size);
    kernel.fs().WriteFile("/input.txt", data);
  };
  spec.build = [input_size]() {
    SpecCtx c("bzip2");
    c.mb().AddData(300, std::string("/input.txt"));
    const uint32_t kIn = 1u << 20;       // input buffer
    const uint32_t kMtf = 3u << 20;      // MTF output
    const uint32_t kRle = 5u << 20;      // RLE output
    const uint32_t kTable = 9u << 20;    // MTF symbol table (256 entries)
    const uint32_t kFreq = kTable + 2048;  // frequency table

    // mtf_block(src, dst, n) -> dst bytes written (== n).
    auto& mtf = c.mb().AddInternalFunction("mtf_block", {kI32, kI32, kI32}, {kI32});
    {
      auto& f = mtf;
      uint32_t i = f.AddLocal(kI32);
      uint32_t sym = f.AddLocal(kI32);
      uint32_t j = f.AddLocal(kI32);
      uint32_t prev = f.AddLocal(kI32);
      uint32_t cur = f.AddLocal(kI32);
      // Init table[k] = k.
      f.ForI32(j, 0, 256, 1, [&] {
        f.LocalGet(j).I32Const(2).I32Shl().I32Const(static_cast<int32_t>(kTable)).I32Add();
        f.LocalGet(j);
        f.I32Store(0);
      });
      f.ForI32Dyn(i, 0, 2, 1, [&] {
        f.LocalGet(0).LocalGet(i).I32Add().I32Load8U(0).LocalSet(sym);
        // Find rank j of sym; shift table entries down (the MTF inner loop —
        // the branchy hot path).
        f.I32Const(0).LocalSet(j);
        f.LocalGet(sym).LocalSet(prev);
        f.Block([&] {
          f.LoopBlock([&] {
            f.LocalGet(j).I32Const(2).I32Shl().I32Const(static_cast<int32_t>(kTable)).I32Add();
            f.I32Load(0).LocalSet(cur);
            // swap table[j] <- prev
            f.LocalGet(j).I32Const(2).I32Shl().I32Const(static_cast<int32_t>(kTable)).I32Add();
            f.LocalGet(prev);
            f.I32Store(0);
            f.LocalGet(cur).LocalGet(sym).I32Eq().BrIf(1);
            f.LocalGet(cur).LocalSet(prev);
            f.LocalGet(j).I32Const(1).I32Add().LocalSet(j);
            f.Br(0);
          });
        });
        // table[0] = sym; emit rank j.
        f.I32Const(static_cast<int32_t>(kTable)).LocalGet(sym).I32Store(0);
        f.LocalGet(1).LocalGet(i).I32Add().LocalGet(j).I32Store8(0);
      });
      f.LocalGet(2);
    }

    // rle_block(src, dst, n) -> bytes written.
    auto& rle = c.mb().AddInternalFunction("rle_block", {kI32, kI32, kI32}, {kI32});
    {
      auto& f = rle;
      uint32_t i = f.AddLocal(kI32);
      uint32_t o = f.AddLocal(kI32);
      uint32_t run = f.AddLocal(kI32);
      uint32_t b = f.AddLocal(kI32);
      f.Block([&] {
        f.LoopBlock([&] {
          f.LocalGet(i).LocalGet(2).I32GeS().BrIf(1);
          f.LocalGet(0).LocalGet(i).I32Add().I32Load8U(0).LocalSet(b);
          f.I32Const(1).LocalSet(run);
          f.Block([&] {
            f.LoopBlock([&] {
              f.LocalGet(i).LocalGet(run).I32Add().LocalGet(2).I32GeS().BrIf(1);
              f.LocalGet(run).I32Const(255).I32GeS().BrIf(1);
              f.LocalGet(0).LocalGet(i).I32Add().LocalGet(run).I32Add().I32Load8U(0);
              f.LocalGet(b).I32Ne().BrIf(1);
              f.LocalGet(run).I32Const(1).I32Add().LocalSet(run);
              f.Br(0);
            });
          });
          f.LocalGet(1).LocalGet(o).I32Add().LocalGet(b).I32Store8(0);
          f.LocalGet(1).LocalGet(o).I32Add().LocalGet(run).I32Store8(1);
          f.LocalGet(o).I32Const(2).I32Add().LocalSet(o);
          f.LocalGet(i).LocalGet(run).I32Add().LocalSet(i);
          f.Br(0);
        });
      });
      f.LocalGet(o);
    }

    // entropy_bits(src, n) -> approximate code length in bits: counts symbol
    // frequencies, charges (32 - clz(freq_max/freq)) bits per symbol class.
    auto& ent = c.mb().AddInternalFunction("entropy_bits", {kI32, kI32}, {kI32});
    {
      auto& f = ent;
      uint32_t i = f.AddLocal(kI32);
      uint32_t bits = f.AddLocal(kI32);
      uint32_t fr = f.AddLocal(kI32);
      f.ForI32(i, 0, 256, 1, [&] {
        f.LocalGet(i).I32Const(2).I32Shl().I32Const(static_cast<int32_t>(kFreq)).I32Add();
        f.I32Const(0);
        f.I32Store(0);
      });
      f.ForI32Dyn(i, 0, 1, 1, [&] {
        uint32_t sym = f.AddLocal(kI32);
        f.LocalGet(0).LocalGet(i).I32Add().I32Load8U(0).LocalSet(sym);
        f.LocalGet(sym).I32Const(2).I32Shl().I32Const(static_cast<int32_t>(kFreq)).I32Add();
        f.LocalGet(sym).I32Const(2).I32Shl().I32Const(static_cast<int32_t>(kFreq)).I32Add();
        f.I32Load(0).I32Const(1).I32Add();
        f.I32Store(0);
      });
      f.ForI32(i, 0, 256, 1, [&] {
        f.LocalGet(i).I32Const(2).I32Shl().I32Const(static_cast<int32_t>(kFreq)).I32Add();
        f.I32Load(0).LocalSet(fr);
        f.LocalGet(fr).If([&] {
          // bits += freq * (33 - clz(freq))  (shorter codes for common syms)
          f.LocalGet(bits);
          f.LocalGet(fr);
          f.I32Const(33).LocalGet(fr).Op(Opcode::kI32Clz).I32Sub();
          f.I32Mul().I32Add().LocalSet(bits);
        });
      });
      f.LocalGet(bits);
    }

    c.BeginMain();
    auto& f = c.f();
    uint32_t in_fd = f.AddLocal(kI32);
    uint32_t n = f.AddLocal(kI32);
    uint32_t mlen = f.AddLocal(kI32);
    uint32_t rlen = f.AddLocal(kI32);
    uint32_t total_bits = f.AddLocal(kI32);
    uint32_t pass = f.AddLocal(kI32);
    f.I32Const(300).I32Const(0).Call(c.lib().sys.open).LocalSet(in_fd);
    f.LocalGet(in_fd).I32Const(static_cast<int32_t>(kIn))
        .I32Const(input_size).Call(c.lib().sys.read).LocalSet(n);
    f.LocalGet(in_fd).Call(c.lib().sys.close).Drop();
    f.ForI32(pass, 0, 3, 1, [&] {
      f.I32Const(static_cast<int32_t>(kIn)).I32Const(static_cast<int32_t>(kMtf)).LocalGet(n);
      f.Call(mtf.index()).LocalSet(mlen);
      f.I32Const(static_cast<int32_t>(kMtf)).I32Const(static_cast<int32_t>(kRle)).LocalGet(mlen);
      f.Call(rle.index()).LocalSet(rlen);
      f.LocalGet(total_bits);
      f.I32Const(static_cast<int32_t>(kRle)).LocalGet(rlen).Call(ent.index());
      f.I32Add().LocalSet(total_bits);
    });
    c.PrintResult("input_bytes", n);
    c.PrintResult("rle_bytes", rlen);
    c.PrintResult("entropy_bits", total_bits);
    c.EndMain();
    return c.mb().Build();
  };
  return spec;
}

// 429.mcf — network-simplex-regime: SPFA/Bellman-Ford relaxation over a
// sparse grid network stored as arrays of arcs. Pointer-chasing and
// memory-bound with a small hot loop.
WorkloadSpec SpecMcf(int scale) {
  WorkloadSpec spec;
  spec.name = "429.mcf";
  spec.output_files = {"/out.txt"};
  int grid = 110 * scale;  // grid x grid nodes, ~4 arcs each
  spec.build = [grid]() {
    SpecCtx c("mcf", 512);
    const int n_nodes = grid * grid;
    const uint32_t kDist = 1u << 20;
    const uint32_t kHead = kDist + 4u * n_nodes;      // arc list heads
    const uint32_t kNext = kHead + 4u * n_nodes;      // arc next pointers
    const uint32_t kTo = kNext + 4u * n_nodes * 4;
    const uint32_t kCost = kTo + 4u * n_nodes * 4;
    const uint32_t kQueue = kCost + 4u * n_nodes * 4;
    const uint32_t kInQ = kQueue + 4u * n_nodes * 2;

    // build_graph(): grid arcs with deterministic costs.
    auto& build = c.mb().AddInternalFunction("build_graph", {}, {});
    {
      auto& f = build;
      c.SetFunc(&f);
      uint32_t v = f.AddLocal(kI32);
      uint32_t arc = f.AddLocal(kI32);
      uint32_t x = f.AddLocal(kI32);
      uint32_t y = f.AddLocal(kI32);
      auto add_arc = [&](std::function<void()> push_to, int costk) {
        // to = push_to(); arcs[arc] = {to, cost}; next[arc]=head[v]; head[v]=arc.
        f.LocalGet(arc).I32Const(2).I32Shl().I32Const(static_cast<int32_t>(kTo)).I32Add();
        push_to();
        f.I32Store(0);
        f.LocalGet(arc).I32Const(2).I32Shl().I32Const(static_cast<int32_t>(kCost)).I32Add();
        f.LocalGet(v).I32Const(costk).I32Mul().I32Const(9973).I32RemS().I32Const(1).I32Add();
        f.I32Store(0);
        f.LocalGet(arc).I32Const(2).I32Shl().I32Const(static_cast<int32_t>(kNext)).I32Add();
        c.AddrI32(kHead, v);
        f.I32Load(0);
        f.I32Store(0);
        c.AddrI32(kHead, v);
        f.LocalGet(arc);
        f.I32Store(0);
        f.LocalGet(arc).I32Const(1).I32Add().LocalSet(arc);
      };
      const int g = grid;
      f.ForI32(v, 0, g * g, 1, [&] {
        c.AddrI32(kHead, v);
        f.I32Const(-1);
        f.I32Store(0);
      });
      f.I32Const(0).LocalSet(arc);
      f.ForI32(v, 0, g * g, 1, [&] {
        f.LocalGet(v).I32Const(g).I32RemS().LocalSet(x);
        f.LocalGet(v).I32Const(g).I32DivS().LocalSet(y);
        // Right neighbor.
        f.LocalGet(x).I32Const(g - 1).I32LtS();
        f.If([&] { add_arc([&] { f.LocalGet(v).I32Const(1).I32Add(); }, 17); });
        // Down neighbor.
        f.LocalGet(y).I32Const(g - 1).I32LtS();
        f.If([&] { add_arc([&] { f.LocalGet(v).I32Const(g).I32Add(); }, 31); });
        // Left.
        f.LocalGet(x).I32Const(0).I32GtS();
        f.If([&] { add_arc([&] { f.LocalGet(v).I32Const(1).I32Sub(); }, 23); });
        // Up.
        f.LocalGet(y).I32Const(0).I32GtS();
        f.If([&] { add_arc([&] { f.LocalGet(v).I32Const(g).I32Sub(); }, 41); });
      });
    }

    c.BeginMain();
    auto& f = c.f();
    const int g = grid;
    const int inf = 0x3fffffff;
    uint32_t i = f.AddLocal(kI32);
    uint32_t qh = f.AddLocal(kI32);
    uint32_t qt = f.AddLocal(kI32);
    uint32_t u = f.AddLocal(kI32);
    uint32_t a = f.AddLocal(kI32);
    uint32_t to = f.AddLocal(kI32);
    uint32_t nd = f.AddLocal(kI32);
    uint32_t relax = f.AddLocal(kI32);
    f.Call(build.index());
    f.ForI32(i, 0, g * g, 1, [&] {
      c.AddrI32(kDist, i);
      f.I32Const(inf);
      f.I32Store(0);
      c.AddrI32(kInQ, i);
      f.I32Const(0);
      f.I32Store(0);
    });
    // dist[0] = 0; queue = {0} (ring buffer of 2*n).
    f.I32Const(static_cast<int32_t>(kDist)).I32Const(0).I32Store(0);
    f.I32Const(static_cast<int32_t>(kQueue)).I32Const(0).I32Store(0);
    f.I32Const(0).LocalSet(qh);
    f.I32Const(1).LocalSet(qt);
    // SPFA main loop.
    f.Block([&] {
      f.LoopBlock([&] {
        f.LocalGet(qh).LocalGet(qt).I32Eq().BrIf(1);
        // u = queue[qh % 2n]; qh++
        f.LocalGet(qh).I32Const(2 * g * g).I32RemU().I32Const(2).I32Shl()
            .I32Const(static_cast<int32_t>(kQueue)).I32Add().I32Load(0).LocalSet(u);
        f.LocalGet(qh).I32Const(1).I32Add().LocalSet(qh);
        c.AddrI32(kInQ, u);
        f.I32Const(0);
        f.I32Store(0);
        // for (a = head[u]; a != -1; a = next[a]) relax.
        c.LdI32(kHead, u);
        f.LocalSet(a);
        f.Block([&] {
          f.LoopBlock([&] {
            f.LocalGet(a).I32Const(-1).I32Eq().BrIf(1);
            c.LdI32(kTo, a);
            f.LocalSet(to);
            c.LdI32(kDist, u);
            c.LdI32(kCost, a);
            f.I32Add().LocalSet(nd);
            f.LocalGet(nd);
            c.LdI32(kDist, to);
            f.I32LtS();
            f.If([&] {
              c.AddrI32(kDist, to);
              f.LocalGet(nd);
              f.I32Store(0);
              f.LocalGet(relax).I32Const(1).I32Add().LocalSet(relax);
              c.LdI32(kInQ, to);
              f.I32Eqz();
              f.If([&] {
                c.AddrI32(kInQ, to);
                f.I32Const(1);
                f.I32Store(0);
                f.LocalGet(qt).I32Const(2 * g * g).I32RemU().I32Const(2).I32Shl()
                    .I32Const(static_cast<int32_t>(kQueue)).I32Add();
                f.LocalGet(to);
                f.I32Store(0);
                f.LocalGet(qt).I32Const(1).I32Add().LocalSet(qt);
              });
            });
            c.LdI32(kNext, a);
            f.LocalSet(a);
            f.Br(0);
          });
        });
        f.Br(0);
      });
    });
    uint32_t corner = f.AddLocal(kI32);
    f.I32Const(g * g - 1).LocalSet(i);
    c.LdI32(kDist, i);
    f.LocalSet(corner);
    c.PrintResult("relaxations", relax);
    c.PrintResult("dist_corner", corner);
    c.EndMain();
    return c.mb().Build();
  };
  return spec;
}

// 445.gobmk — Go board analysis: liberties counting via iterative flood
// fill, deterministic move generation, capture detection. Branch- and
// call-heavy integer code.
WorkloadSpec SpecGobmk(int scale) {
  WorkloadSpec spec;
  spec.name = "445.gobmk";
  spec.output_files = {"/out.txt"};
  int moves = 260 * scale;
  spec.build = [moves]() {
    SpecCtx c("gobmk");
    const int N = 19;
    const uint32_t kBoard = 1u << 20;           // N*N cells: 0 empty, 1/2 stones
    const uint32_t kMark = kBoard + 4 * N * N;  // flood-fill marks
    const uint32_t kStack = kMark + 4 * N * N;  // explicit DFS stack

    // liberties(pos, color) -> liberty count of the group at pos.
    auto& libf = c.mb().AddInternalFunction("liberties", {kI32, kI32}, {kI32});
    {
      auto& f = libf;
      c.SetFunc(&f);
      uint32_t i = f.AddLocal(kI32);
      uint32_t sp = f.AddLocal(kI32);
      uint32_t cur = f.AddLocal(kI32);
      uint32_t nb = f.AddLocal(kI32);
      uint32_t libs = f.AddLocal(kI32);
      uint32_t x = f.AddLocal(kI32);
      f.ForI32(i, 0, N * N, 1, [&] {
        c.AddrI32(kMark, i);
        f.I32Const(0);
        f.I32Store(0);
      });
      // push pos; mark it.
      f.I32Const(static_cast<int32_t>(kStack)).LocalGet(0).I32Store(0);
      f.I32Const(1).LocalSet(sp);
      f.LocalGet(0).I32Const(2).I32Shl().I32Const(static_cast<int32_t>(kMark)).I32Add();
      f.I32Const(1);
      f.I32Store(0);
      f.Block([&] {
        f.LoopBlock([&] {
          f.LocalGet(sp).I32Eqz().BrIf(1);
          f.LocalGet(sp).I32Const(1).I32Sub().LocalSet(sp);
          f.LocalGet(sp).I32Const(2).I32Shl().I32Const(static_cast<int32_t>(kStack)).I32Add();
          f.I32Load(0).LocalSet(cur);
          // Visit the 4 neighbors (guard, then delta).
          auto handle_nb = [&](std::function<void()> guard, int delta) {
            guard();
            f.If([&] {
              f.LocalGet(cur).I32Const(delta).I32Add().LocalSet(nb);
              c.LdI32(kBoard, nb);
              f.LocalSet(x);
              f.LocalGet(x).I32Eqz();
              f.If([&] {
                // Empty: count as liberty once per mark.
                c.LdI32(kMark, nb);
                f.I32Eqz();
                f.If([&] {
                  c.AddrI32(kMark, nb);
                  f.I32Const(2);
                  f.I32Store(0);
                  f.LocalGet(libs).I32Const(1).I32Add().LocalSet(libs);
                });
              });
              f.LocalGet(x).LocalGet(1).I32Eq();
              f.If([&] {
                c.LdI32(kMark, nb);
                f.I32Eqz();
                f.If([&] {
                  c.AddrI32(kMark, nb);
                  f.I32Const(1);
                  f.I32Store(0);
                  f.LocalGet(sp).I32Const(2).I32Shl()
                      .I32Const(static_cast<int32_t>(kStack)).I32Add();
                  f.LocalGet(nb);
                  f.I32Store(0);
                  f.LocalGet(sp).I32Const(1).I32Add().LocalSet(sp);
                });
              });
            });
          };
          handle_nb([&] { f.LocalGet(cur).I32Const(N).I32RemS().I32Const(0).I32GtS(); }, -1);
          handle_nb([&] { f.LocalGet(cur).I32Const(N).I32RemS().I32Const(N - 1).I32LtS(); }, 1);
          handle_nb([&] { f.LocalGet(cur).I32Const(N).I32GeS(); }, -N);
          handle_nb([&] { f.LocalGet(cur).I32Const(N * (N - 1)).I32LtS(); }, N);
          f.Br(0);
        });
      });
      f.LocalGet(libs);
    }

    // remove_group(pos) -> stones removed (marked group cells == 1).
    auto& removef = c.mb().AddInternalFunction("remove_group", {}, {kI32});
    {
      auto& f = removef;
      c.SetFunc(&f);
      uint32_t i = f.AddLocal(kI32);
      uint32_t cnt = f.AddLocal(kI32);
      f.ForI32(i, 0, N * N, 1, [&] {
        c.LdI32(kMark, i);
        f.I32Const(1).I32Eq();
        f.If([&] {
          c.AddrI32(kBoard, i);
          f.I32Const(0);
          f.I32Store(0);
          f.LocalGet(cnt).I32Const(1).I32Add().LocalSet(cnt);
        });
      });
      f.LocalGet(cnt);
    }

    c.BeginMain();
    auto& f = c.f();
    uint32_t m = f.AddLocal(kI32);
    uint32_t pos = f.AddLocal(kI32);
    uint32_t color = f.AddLocal(kI32);
    uint32_t captures = f.AddLocal(kI32);
    uint32_t stones = f.AddLocal(kI32);
    uint32_t tries = f.AddLocal(kI32);
    f.ForI32(m, 0, moves, 1, [&] {
      f.LocalGet(m).I32Const(1).I32And().I32Const(1).I32Add().LocalSet(color);
      // Find an empty cell deterministically.
      f.I32Const(0).LocalSet(tries);
      f.Block([&] {
        f.LoopBlock([&] {
          f.Call(c.rng_fn()).I32Const(N * N).I32RemU().LocalSet(pos);
          c.LdI32(kBoard, pos);
          f.I32Eqz().BrIf(1);
          f.LocalGet(tries).I32Const(1).I32Add().LocalTee(tries);
          f.I32Const(60).I32GeS().BrIf(1);
          f.Br(0);
        });
      });
      c.LdI32(kBoard, pos);
      f.I32Eqz();
      f.If([&] {
        c.AddrI32(kBoard, pos);
        f.LocalGet(color);
        f.I32Store(0);
        f.LocalGet(stones).I32Const(1).I32Add().LocalSet(stones);
        // Check opponent neighbors for captures.
        auto check = [&](std::function<void()> guard, int delta) {
          guard();
          f.If([&] {
            uint32_t nb = f.AddLocal(kI32);
            f.LocalGet(pos).I32Const(delta).I32Add().LocalSet(nb);
            c.LdI32(kBoard, nb);
            f.I32Const(3).LocalGet(color).I32Sub().I32Eq();
            f.If([&] {
              f.LocalGet(nb).I32Const(3).LocalGet(color).I32Sub().Call(libf.index());
              f.I32Eqz();
              f.If([&] {
                f.Call(removef.index());
                f.LocalGet(captures).I32Add().LocalSet(captures);
              });
            });
          });
        };
        check([&] { f.LocalGet(pos).I32Const(N).I32RemS().I32Const(0).I32GtS(); }, -1);
        check([&] { f.LocalGet(pos).I32Const(N).I32RemS().I32Const(N - 1).I32LtS(); }, 1);
        check([&] { f.LocalGet(pos).I32Const(N).I32GeS(); }, -N);
        check([&] { f.LocalGet(pos).I32Const(N * (N - 1)).I32LtS(); }, N);
      });
    });
    c.PrintResult("stones", stones);
    c.PrintResult("captures", captures);
    c.EndMain();
    return c.mb().Build();
  };
  return spec;
}

// 458.sjeng — alpha-beta game-tree search with a hash-based evaluation.
// Deep recursion, heavy branching, integer arithmetic.
WorkloadSpec SpecSjeng(int scale) {
  WorkloadSpec spec;
  spec.name = "458.sjeng";
  spec.output_files = {"/out.txt"};
  int depth = 7;
  int roots = 6 * scale;
  spec.build = [depth, roots]() {
    SpecCtx c("sjeng");
    const auto i32 = kI32;
    // eval(key) -> score in [-1000, 1000]: a few hash rounds.
    auto& ev = c.mb().AddInternalFunction("eval_pos", {i32}, {i32});
    {
      auto& f = ev;
      uint32_t h = f.AddLocal(i32);
      f.LocalGet(0).I32Const(0x9e3779b9u).I32Mul().LocalSet(h);
      f.LocalGet(h).LocalGet(h).I32Const(13).I32ShrU().I32Xor().LocalSet(h);
      f.LocalGet(h).I32Const(0x85ebca6bu).I32Mul().LocalSet(h);
      f.LocalGet(h).LocalGet(h).I32Const(16).I32ShrU().I32Xor().LocalSet(h);
      f.LocalGet(h).I32Const(2001).I32RemU().I32Const(1000).I32Sub();
    }
    // search(key, depth, alpha, beta) -> score. 8 moves per node.
    auto& se = c.mb().AddInternalFunction("search", {i32, i32, i32, i32}, {i32});
    {
      auto& f = se;
      uint32_t best = f.AddLocal(i32);
      uint32_t mv = f.AddLocal(i32);
      uint32_t child = f.AddLocal(i32);
      uint32_t score = f.AddLocal(i32);
      uint32_t alpha = f.AddLocal(i32);
      f.LocalGet(1).I32Eqz();
      f.If([&] { f.LocalGet(0).Call(ev.index()).Return(); });
      f.I32Const(-100000).LocalSet(best);
      f.LocalGet(2).LocalSet(alpha);
      f.Block([&] {
        f.ForI32(mv, 0, 8, 1, [&] {
          // child = key*8 + mv + depth (deterministic move hash).
          f.LocalGet(0).I32Const(8).I32Mul().LocalGet(mv).I32Add().LocalGet(1).I32Add()
              .LocalSet(child);
          // score = -search(child, depth-1, -beta, -alpha)
          f.LocalGet(child);
          f.LocalGet(1).I32Const(1).I32Sub();
          f.I32Const(0).LocalGet(3).I32Sub();
          f.I32Const(0).LocalGet(alpha).I32Sub();
          f.Call(se.index());
          f.I32Const(-1).I32Mul().LocalSet(score);
          f.LocalGet(score).LocalGet(best).I32GtS();
          f.If([&] { f.LocalGet(score).LocalSet(best); });
          f.LocalGet(score).LocalGet(alpha).I32GtS();
          f.If([&] { f.LocalGet(score).LocalSet(alpha); });
          // Beta cutoff.
          f.LocalGet(alpha).LocalGet(3).I32GeS().BrIf(1);
        });
      });
      f.LocalGet(best);
    }
    c.BeginMain();
    auto& f = c.f();
    uint32_t r = f.AddLocal(kI32);
    uint32_t total = f.AddLocal(kI32);
    f.ForI32(r, 0, roots, 1, [&] {
      f.LocalGet(total);
      f.LocalGet(r).I32Const(1).I32Add();
      f.I32Const(depth);
      f.I32Const(-100000);
      f.I32Const(100000);
      f.Call(se.index());
      f.I32Add().LocalSet(total);
    });
    c.PrintResult("search_total", total);
    c.EndMain();
    return c.mb().Build();
  };
  return spec;
}

}  // namespace nsf
