// SPEC-like floating-point workloads, part 1: 433.milc, 444.namd, 470.lbm,
// 644.nab_s.
#include "src/spec/spec_fp.h"

#include "src/spec/specctx.h"

namespace nsf {

namespace {
const auto kI32 = ValType::kI32;
const auto kF64 = ValType::kF64;
}  // namespace

// 433.milc — lattice-QCD regime: complex 3x3 matrix products over a 4D
// lattice (flattened); accumulates plaquette traces. Memory-streaming FP.
WorkloadSpec SpecMilc(int scale) {
  WorkloadSpec spec;
  spec.name = "433.milc";
  spec.output_files = {"/out.txt"};
  int lattice = 6 + 2 * (scale - 1);  // L^4 sites
  spec.build = [lattice]() {
    SpecCtx c("milc", 1024);
    const int L = lattice;
    const int sites = L * L * L * L;
    // Each site holds 4 links; each link is a complex 3x3 matrix = 18 f64.
    const uint32_t kLinks = 1u << 20;
    const uint32_t kScratch = kLinks + 8u * 18 * 4 * sites;

    // cm3_mul(a_off, b_off, dst_off): complex 3x3 product.
    auto& mul = c.mb().AddInternalFunction("cm3_mul", {kI32, kI32, kI32}, {});
    {
      auto& f = mul;
      uint32_t i = f.AddLocal(kI32);
      uint32_t j = f.AddLocal(kI32);
      uint32_t k = f.AddLocal(kI32);
      uint32_t re = f.AddLocal(kF64);
      uint32_t im = f.AddLocal(kF64);
      auto elem = [&](uint32_t base_param, uint32_t row, uint32_t col, int im_part) {
        // addr = base + ((row*3 + col)*2 + im_part)*8
        f.LocalGet(base_param);
        f.LocalGet(row).I32Const(3).I32Mul().LocalGet(col).I32Add();
        f.I32Const(1).I32Shl();
        if (im_part != 0) {
          f.I32Const(1).I32Add();
        }
        f.I32Const(3).I32Shl().I32Add();
        f.F64Load(0);
      };
      f.ForI32(i, 0, 3, 1, [&] {
        f.ForI32(j, 0, 3, 1, [&] {
          f.F64Const(0.0).LocalSet(re);
          f.F64Const(0.0).LocalSet(im);
          f.ForI32(k, 0, 3, 1, [&] {
            // re += a.re*b.re - a.im*b.im ; im += a.re*b.im + a.im*b.re
            f.LocalGet(re);
            elem(0, i, k, 0);
            elem(1, k, j, 0);
            f.F64Mul().F64Add();
            elem(0, i, k, 1);
            elem(1, k, j, 1);
            f.F64Mul().F64Sub().LocalSet(re);
            f.LocalGet(im);
            elem(0, i, k, 0);
            elem(1, k, j, 1);
            f.F64Mul().F64Add();
            elem(0, i, k, 1);
            elem(1, k, j, 0);
            f.F64Mul().F64Add().LocalSet(im);
          });
          // dst[i][j] = (re, im)
          f.LocalGet(2);
          f.LocalGet(i).I32Const(3).I32Mul().LocalGet(j).I32Add().I32Const(1).I32Shl();
          f.I32Const(3).I32Shl().I32Add();
          f.LocalGet(re);
          f.F64Store(0);
          f.LocalGet(2);
          f.LocalGet(i).I32Const(3).I32Mul().LocalGet(j).I32Add().I32Const(1).I32Shl()
              .I32Const(1).I32Add();
          f.I32Const(3).I32Shl().I32Add();
          f.LocalGet(im);
          f.F64Store(0);
        });
      });
    }
    // trace_re(off) -> real part of the trace.
    auto& tr = c.mb().AddInternalFunction("cm3_trace", {kI32}, {kF64});
    {
      auto& f = tr;
      uint32_t i = f.AddLocal(kI32);
      uint32_t t = f.AddLocal(kF64);
      f.ForI32(i, 0, 3, 1, [&] {
        f.LocalGet(t);
        f.LocalGet(0);
        f.LocalGet(i).I32Const(3).I32Mul().LocalGet(i).I32Add().I32Const(1).I32Shl();
        f.I32Const(3).I32Shl().I32Add();
        f.F64Load(0);
        f.F64Add().LocalSet(t);
      });
      f.LocalGet(t);
    }

    c.BeginMain();
    auto& f = c.f();
    uint32_t s = f.AddLocal(kI32);
    uint32_t d = f.AddLocal(kI32);
    uint32_t k = f.AddLocal(kI32);
    uint32_t link = f.AddLocal(kI32);
    uint32_t other = f.AddLocal(kI32);
    uint32_t action = f.AddLocal(kF64);
    // Initialize links deterministically (near-unit matrices).
    f.ForI32(s, 0, sites, 1, [&] {
      f.ForI32(d, 0, 4, 1, [&] {
        f.ForI32(k, 0, 18, 1, [&] {
          // addr = kLinks + ((s*4 + d)*18 + k)*8
          f.LocalGet(s).I32Const(4).I32Mul().LocalGet(d).I32Add().I32Const(18).I32Mul()
              .LocalGet(k).I32Add();
          f.I32Const(3).I32Shl().I32Const(static_cast<int32_t>(kLinks)).I32Add();
          // diag real -> 1 + eps, else eps
          f.LocalGet(k).I32Const(0).I32Eq();
          f.LocalGet(k).I32Const(8).I32Eq().I32Or();
          f.LocalGet(k).I32Const(16).I32Eq().I32Or();
          f.IfElse(ValType::kF64,
                   [&] { f.F64Const(1.0); },
                   [&] {
                     f.LocalGet(s).I32Const(7).I32Mul().LocalGet(k).I32Add().I32Const(97)
                         .I32RemS().F64ConvertI32S().F64Const(970.0).F64Div();
                   });
          f.F64Store(0);
        });
      });
    });
    // Plaquette-ish sweep: for each site, multiply link(d) by link(d+1 mod 4)
    // of the next site and accumulate the trace.
    f.ForI32(s, 0, sites, 1, [&] {
      f.ForI32(d, 0, 4, 1, [&] {
        f.LocalGet(s).I32Const(4).I32Mul().LocalGet(d).I32Add().I32Const(18 * 8).I32Mul()
            .I32Const(static_cast<int32_t>(kLinks)).I32Add().LocalSet(link);
        // other = link of site (s+1) mod sites, direction (d+1)&3.
        f.LocalGet(s).I32Const(1).I32Add().I32Const(sites).I32RemS().I32Const(4).I32Mul();
        f.LocalGet(d).I32Const(1).I32Add().I32Const(3).I32And().I32Add();
        f.I32Const(18 * 8).I32Mul().I32Const(static_cast<int32_t>(kLinks)).I32Add()
            .LocalSet(other);
        f.LocalGet(link).LocalGet(other).I32Const(static_cast<int32_t>(kScratch));
        f.Call(mul.index());
        f.LocalGet(action);
        f.I32Const(static_cast<int32_t>(kScratch)).Call(tr.index());
        f.F64Add().LocalSet(action);
      });
    });
    uint32_t out = f.AddLocal(kF64);
    f.LocalGet(action).LocalSet(out);
    c.PrintResultF64("action", out);
    c.EndMain();
    return c.mb().Build();
  };
  return spec;
}

// 444.namd — molecular dynamics: O(N^2) Lennard-Jones forces with cutoff,
// a few integration steps. Compute-bound FP inner loops.
WorkloadSpec SpecNamd(int scale) {
  WorkloadSpec spec;
  spec.name = "444.namd";
  spec.output_files = {"/out.txt"};
  int atoms = 220 * scale;
  spec.build = [atoms]() {
    SpecCtx c("namd", 512);
    const int n = atoms;
    const uint32_t kPos = 1u << 20;           // x,y,z per atom
    const uint32_t kVel = kPos + 24u * n;
    const uint32_t kForce = kVel + 24u * n;

    c.BeginMain();
    auto& f = c.f();
    uint32_t i = f.AddLocal(kI32);
    uint32_t j = f.AddLocal(kI32);
    uint32_t step = f.AddLocal(kI32);
    uint32_t ax = f.AddLocal(kI32);  // byte offsets
    uint32_t bx = f.AddLocal(kI32);
    uint32_t dx = f.AddLocal(kF64);
    uint32_t dy = f.AddLocal(kF64);
    uint32_t dz = f.AddLocal(kF64);
    uint32_t r2 = f.AddLocal(kF64);
    uint32_t inv6 = f.AddLocal(kF64);
    uint32_t fmag = f.AddLocal(kF64);
    uint32_t energy = f.AddLocal(kF64);
    // Init positions on a jittered line, zero velocities.
    f.ForI32(i, 0, n, 1, [&] {
      f.LocalGet(i).I32Const(24).I32Mul().I32Const(static_cast<int32_t>(kPos)).I32Add()
          .LocalSet(ax);
      f.LocalGet(ax);
      f.LocalGet(i).F64ConvertI32S().F64Const(0.7).F64Mul();
      f.F64Store(0);
      f.LocalGet(ax);
      f.LocalGet(i).I32Const(13).I32Mul().I32Const(89).I32RemS().F64ConvertI32S()
          .F64Const(89.0).F64Div();
      f.F64Store(8);
      f.LocalGet(ax);
      f.LocalGet(i).I32Const(29).I32Mul().I32Const(83).I32RemS().F64ConvertI32S()
          .F64Const(83.0).F64Div();
      f.F64Store(16);
      f.LocalGet(i).I32Const(24).I32Mul().I32Const(static_cast<int32_t>(kVel)).I32Add()
          .LocalSet(ax);
      f.LocalGet(ax).F64Const(0.0).F64Store(0);
      f.LocalGet(ax).F64Const(0.0).F64Store(8);
      f.LocalGet(ax).F64Const(0.0).F64Store(16);
    });
    f.ForI32(step, 0, 3, 1, [&] {
      // Zero forces.
      f.ForI32(i, 0, n, 1, [&] {
        f.LocalGet(i).I32Const(24).I32Mul().I32Const(static_cast<int32_t>(kForce)).I32Add()
            .LocalSet(ax);
        f.LocalGet(ax).F64Const(0.0).F64Store(0);
        f.LocalGet(ax).F64Const(0.0).F64Store(8);
        f.LocalGet(ax).F64Const(0.0).F64Store(16);
      });
      // Pairwise LJ with cutoff r2 < 9.
      f.ForI32(i, 0, n, 1, [&] {
        f.LocalGet(i).I32Const(24).I32Mul().I32Const(static_cast<int32_t>(kPos)).I32Add()
            .LocalSet(ax);
        f.ForI32Dyn(j, 0, i, 1, [&] {
          f.LocalGet(j).I32Const(24).I32Mul().I32Const(static_cast<int32_t>(kPos)).I32Add()
              .LocalSet(bx);
          f.LocalGet(ax).F64Load(0);
          f.LocalGet(bx).F64Load(0);
          f.F64Sub().LocalSet(dx);
          f.LocalGet(ax).F64Load(8);
          f.LocalGet(bx).F64Load(8);
          f.F64Sub().LocalSet(dy);
          f.LocalGet(ax).F64Load(16);
          f.LocalGet(bx).F64Load(16);
          f.F64Sub().LocalSet(dz);
          f.LocalGet(dx).LocalGet(dx).F64Mul();
          f.LocalGet(dy).LocalGet(dy).F64Mul().F64Add();
          f.LocalGet(dz).LocalGet(dz).F64Mul().F64Add().LocalSet(r2);
          f.LocalGet(r2).F64Const(9.0).F64Lt();
          f.LocalGet(r2).F64Const(0.01).F64Gt();
          f.I32And();
          f.If([&] {
            // inv6 = 1/r2^3 ; energy += 4*(inv6^2 - inv6)
            f.F64Const(1.0).LocalGet(r2).LocalGet(r2).F64Mul().LocalGet(r2).F64Mul().F64Div()
                .LocalSet(inv6);
            f.LocalGet(energy);
            f.F64Const(4.0);
            f.LocalGet(inv6).LocalGet(inv6).F64Mul().LocalGet(inv6).F64Sub();
            f.F64Mul().F64Add().LocalSet(energy);
            // fmag = 24*(2*inv6^2 - inv6)/r2
            f.F64Const(24.0);
            f.F64Const(2.0).LocalGet(inv6).F64Mul().LocalGet(inv6).F64Mul().LocalGet(inv6)
                .F64Sub();
            f.F64Mul().LocalGet(r2).F64Div().LocalSet(fmag);
            // force[i] += fmag*d ; force[j] -= fmag*d (x component then y, z)
            auto apply = [&](int off, uint32_t dloc) {
              f.LocalGet(i).I32Const(24).I32Mul().I32Const(static_cast<int32_t>(kForce))
                  .I32Add();
              f.LocalGet(i).I32Const(24).I32Mul().I32Const(static_cast<int32_t>(kForce))
                  .I32Add().F64Load(off);
              f.LocalGet(fmag).LocalGet(dloc).F64Mul().F64Add();
              f.F64Store(off);
              f.LocalGet(j).I32Const(24).I32Mul().I32Const(static_cast<int32_t>(kForce))
                  .I32Add();
              f.LocalGet(j).I32Const(24).I32Mul().I32Const(static_cast<int32_t>(kForce))
                  .I32Add().F64Load(off);
              f.LocalGet(fmag).LocalGet(dloc).F64Mul().F64Sub();
              f.F64Store(off);
            };
            apply(0, dx);
            apply(8, dy);
            apply(16, dz);
          });
        });
      });
      // Integrate (velocity Verlet, dt = 0.001).
      f.ForI32(i, 0, n, 1, [&] {
        auto integ = [&](int off) {
          f.LocalGet(i).I32Const(24).I32Mul().I32Const(static_cast<int32_t>(kVel)).I32Add();
          f.LocalGet(i).I32Const(24).I32Mul().I32Const(static_cast<int32_t>(kVel)).I32Add()
              .F64Load(off);
          f.LocalGet(i).I32Const(24).I32Mul().I32Const(static_cast<int32_t>(kForce)).I32Add()
              .F64Load(off);
          f.F64Const(0.001).F64Mul().F64Add();
          f.F64Store(off);
          f.LocalGet(i).I32Const(24).I32Mul().I32Const(static_cast<int32_t>(kPos)).I32Add();
          f.LocalGet(i).I32Const(24).I32Mul().I32Const(static_cast<int32_t>(kPos)).I32Add()
              .F64Load(off);
          f.LocalGet(i).I32Const(24).I32Mul().I32Const(static_cast<int32_t>(kVel)).I32Add()
              .F64Load(off);
          f.F64Const(0.001).F64Mul().F64Add();
          f.F64Store(off);
        };
        integ(0);
        integ(8);
        integ(16);
      });
    });
    uint32_t out = f.AddLocal(kF64);
    f.LocalGet(energy).LocalSet(out);
    c.PrintResultF64("energy", out);
    c.EndMain();
    return c.mb().Build();
  };
  return spec;
}

// 470.lbm — D2Q9 lattice Boltzmann: stream + BGK collision over a 2D grid.
// FP streaming stencil.
WorkloadSpec SpecLbm(int scale) {
  WorkloadSpec spec;
  spec.name = "470.lbm";
  spec.output_files = {"/out.txt"};
  int dim = 48;
  int steps = 6 * scale;
  spec.build = [dim, steps]() {
    SpecCtx c("lbm", 1024);
    const int D = dim;
    const int cells = D * D;
    const uint32_t kF0 = 1u << 20;                 // 9 distributions, 2 buffers
    const uint32_t kF1 = kF0 + 8u * 9 * cells;
    // D2Q9 velocity set and weights.
    static const int ex[9] = {0, 1, 0, -1, 0, 1, -1, -1, 1};
    static const int ey[9] = {0, 0, 1, 0, -1, 1, 1, -1, -1};
    static const double wt[9] = {4.0 / 9, 1.0 / 9, 1.0 / 9, 1.0 / 9, 1.0 / 9,
                                 1.0 / 36, 1.0 / 36, 1.0 / 36, 1.0 / 36};

    c.BeginMain();
    auto& f = c.f();
    uint32_t x = f.AddLocal(kI32);
    uint32_t y = f.AddLocal(kI32);
    uint32_t q = f.AddLocal(kI32);
    uint32_t t = f.AddLocal(kI32);
    uint32_t cell = f.AddLocal(kI32);
    uint32_t src = f.AddLocal(kI32);
    uint32_t rho = f.AddLocal(kF64);
    uint32_t ux = f.AddLocal(kF64);
    uint32_t uy = f.AddLocal(kF64);
    uint32_t eu = f.AddLocal(kF64);
    uint32_t feq = f.AddLocal(kF64);
    uint32_t cur = f.AddLocal(kI32);   // current buffer base
    uint32_t nxt = f.AddLocal(kI32);
    uint32_t tmpb = f.AddLocal(kI32);
    // dist addr = base + (q*cells + cell)*8
    auto dist_addr = [&](uint32_t base_local, uint32_t q_imm_local, uint32_t cell_local) {
      f.LocalGet(q_imm_local).I32Const(cells).I32Mul().LocalGet(cell_local).I32Add();
      f.I32Const(3).I32Shl();
      f.LocalGet(base_local).I32Add();
    };
    // Init equilibrium at rest with a density bump.
    f.I32Const(static_cast<int32_t>(kF0)).LocalSet(cur);
    f.I32Const(static_cast<int32_t>(kF1)).LocalSet(nxt);
    f.ForI32(q, 0, 9, 1, [&] {
      f.ForI32(cell, 0, cells, 1, [&] {
        dist_addr(cur, q, cell);
        // rho = 1 + 0.05 * ((cell*13)%101)/101
        f.LocalGet(cell).I32Const(13).I32Mul().I32Const(101).I32RemS().F64ConvertI32S();
        f.F64Const(101.0).F64Div().F64Const(0.05).F64Mul().F64Const(1.0).F64Add();
        // scaled by per-q weight (applied via multiply below)
        f.F64Const(1.0).F64Mul();
        f.F64Store(0);
        // Apply weight: f = w[q] * rho  (done in a second store for clarity)
        dist_addr(cur, q, cell);
        dist_addr(cur, q, cell);
        f.F64Load(0);
        // multiply by weight constant chosen per q below
        f.F64Const(0.0).F64Add();  // placeholder; weights applied next loop
        f.F64Store(0);
      });
    });
    // Apply weights (one pass per q with its constant).
    for (int qi = 0; qi < 9; qi++) {
      uint32_t qv = f.AddLocal(kI32);
      f.I32Const(qi).LocalSet(qv);
      f.ForI32(cell, 0, cells, 1, [&] {
        dist_addr(cur, qv, cell);
        dist_addr(cur, qv, cell);
        f.F64Load(0);
        f.F64Const(wt[qi]).F64Mul();
        f.F64Store(0);
      });
    }
    f.ForI32(t, 0, steps, 1, [&] {
      // Stream: next[q][x,y] = cur[q][x-ex, y-ey] (periodic).
      for (int qi = 0; qi < 9; qi++) {
        uint32_t qv = f.AddLocal(kI32);
        f.I32Const(qi).LocalSet(qv);
        f.ForI32(y, 0, D, 1, [&] {
          f.ForI32(x, 0, D, 1, [&] {
            f.LocalGet(y).I32Const(D).I32Mul().LocalGet(x).I32Add().LocalSet(cell);
            // src cell with periodic wrap.
            f.LocalGet(x).I32Const(D - ex[qi]).I32Add().I32Const(D).I32RemS();
            f.LocalGet(y).I32Const(D - ey[qi]).I32Add().I32Const(D).I32RemS();
            f.I32Const(D).I32Mul().I32Add().LocalSet(src);
            dist_addr(nxt, qv, cell);
            dist_addr(cur, qv, src);
            f.F64Load(0);
            f.F64Store(0);
          });
        });
      }
      // Collide on next buffer.
      f.ForI32(cell, 0, cells, 1, [&] {
        f.F64Const(0.0).LocalSet(rho);
        f.F64Const(0.0).LocalSet(ux);
        f.F64Const(0.0).LocalSet(uy);
        for (int qi = 0; qi < 9; qi++) {
          uint32_t qv = f.AddLocal(kI32);
          f.I32Const(qi).LocalSet(qv);
          f.LocalGet(rho);
          dist_addr(nxt, qv, cell);
          f.F64Load(0);
          f.F64Add().LocalSet(rho);
          if (ex[qi] != 0) {
            f.LocalGet(ux);
            dist_addr(nxt, qv, cell);
            f.F64Load(0);
            f.F64Const(static_cast<double>(ex[qi])).F64Mul().F64Add().LocalSet(ux);
          }
          if (ey[qi] != 0) {
            f.LocalGet(uy);
            dist_addr(nxt, qv, cell);
            f.F64Load(0);
            f.F64Const(static_cast<double>(ey[qi])).F64Mul().F64Add().LocalSet(uy);
          }
        }
        f.LocalGet(ux).LocalGet(rho).F64Div().LocalSet(ux);
        f.LocalGet(uy).LocalGet(rho).F64Div().LocalSet(uy);
        for (int qi = 0; qi < 9; qi++) {
          uint32_t qv = f.AddLocal(kI32);
          f.I32Const(qi).LocalSet(qv);
          // eu = 3*(ex*ux + ey*uy)
          f.F64Const(3.0);
          f.F64Const(static_cast<double>(ex[qi])).LocalGet(ux).F64Mul();
          f.F64Const(static_cast<double>(ey[qi])).LocalGet(uy).F64Mul().F64Add();
          f.F64Mul().LocalSet(eu);
          // feq = w*rho*(1 + eu + eu^2/2 - 1.5*(ux^2+uy^2))
          f.F64Const(wt[qi]).LocalGet(rho).F64Mul();
          f.F64Const(1.0).LocalGet(eu).F64Add();
          f.LocalGet(eu).LocalGet(eu).F64Mul().F64Const(0.5).F64Mul().F64Add();
          f.F64Const(1.5);
          f.LocalGet(ux).LocalGet(ux).F64Mul().LocalGet(uy).LocalGet(uy).F64Mul().F64Add();
          f.F64Mul().F64Sub();
          f.F64Mul().LocalSet(feq);
          // f = f + omega*(feq - f), omega = 1.2
          dist_addr(nxt, qv, cell);
          dist_addr(nxt, qv, cell);
          f.F64Load(0);
          f.F64Const(1.2);
          f.LocalGet(feq);
          dist_addr(nxt, qv, cell);
          f.F64Load(0);
          f.F64Sub();
          f.F64Mul();
          f.F64Add();
          f.F64Store(0);
        }
      });
      // Swap buffers.
      f.LocalGet(cur).LocalSet(tmpb);
      f.LocalGet(nxt).LocalSet(cur);
      f.LocalGet(tmpb).LocalSet(nxt);
    });
    // Total mass (conserved-ish) as the checksum.
    uint32_t mass = f.AddLocal(kF64);
    f.ForI32(q, 0, 9, 1, [&] {
      f.ForI32(cell, 0, cells, 1, [&] {
        f.LocalGet(mass);
        dist_addr(cur, q, cell);
        f.F64Load(0);
        f.F64Add().LocalSet(mass);
      });
    });
    c.PrintResultF64("mass", mass);
    c.EndMain();
    return c.mb().Build();
  };
  return spec;
}

// 644.nab_s — nucleic-acid-builder regime: chain molecular dynamics with
// bonded springs + nonbonded LJ within a window; the longest-running
// benchmark as in Table 1.
WorkloadSpec SpecNab(int scale) {
  WorkloadSpec spec;
  spec.name = "644.nab_s";
  spec.output_files = {"/out.txt"};
  int atoms = 420 * scale;
  int steps = 5;
  spec.build = [atoms, steps]() {
    SpecCtx c("nab", 512);
    const int n = atoms;
    const uint32_t kPos = 1u << 20;
    const uint32_t kVel = kPos + 24u * n;
    const uint32_t kForce = kVel + 24u * n;

    c.BeginMain();
    auto& f = c.f();
    uint32_t i = f.AddLocal(kI32);
    uint32_t j = f.AddLocal(kI32);
    uint32_t step = f.AddLocal(kI32);
    uint32_t pa = f.AddLocal(kI32);
    uint32_t pb = f.AddLocal(kI32);
    uint32_t dx = f.AddLocal(kF64);
    uint32_t dy = f.AddLocal(kF64);
    uint32_t dz = f.AddLocal(kF64);
    uint32_t r2 = f.AddLocal(kF64);
    uint32_t r = f.AddLocal(kF64);
    uint32_t fmag = f.AddLocal(kF64);
    uint32_t energy = f.AddLocal(kF64);
    auto pos_of = [&](uint32_t idx, uint32_t dst) {
      f.LocalGet(idx).I32Const(24).I32Mul().I32Const(static_cast<int32_t>(kPos)).I32Add()
          .LocalSet(dst);
    };
    // Helix-ish initial chain.
    f.ForI32(i, 0, n, 1, [&] {
      pos_of(i, pa);
      f.LocalGet(pa);
      f.LocalGet(i).F64ConvertI32S().F64Const(0.34).F64Mul();
      f.F64Store(0);
      f.LocalGet(pa);
      f.LocalGet(i).I32Const(17).I32Mul().I32Const(71).I32RemS().F64ConvertI32S()
          .F64Const(71.0).F64Div();
      f.F64Store(8);
      f.LocalGet(pa);
      f.LocalGet(i).I32Const(23).I32Mul().I32Const(73).I32RemS().F64ConvertI32S()
          .F64Const(73.0).F64Div();
      f.F64Store(16);
      f.LocalGet(i).I32Const(24).I32Mul().I32Const(static_cast<int32_t>(kVel)).I32Add()
          .LocalSet(pb);
      f.LocalGet(pb).F64Const(0.0).F64Store(0);
      f.LocalGet(pb).F64Const(0.0).F64Store(8);
      f.LocalGet(pb).F64Const(0.0).F64Store(16);
    });
    f.ForI32(step, 0, steps, 1, [&] {
      f.ForI32(i, 0, n, 1, [&] {
        f.LocalGet(i).I32Const(24).I32Mul().I32Const(static_cast<int32_t>(kForce)).I32Add()
            .LocalSet(pa);
        f.LocalGet(pa).F64Const(0.0).F64Store(0);
        f.LocalGet(pa).F64Const(0.0).F64Store(8);
        f.LocalGet(pa).F64Const(0.0).F64Store(16);
      });
      // Bonded springs along the chain: k*(r - r0)^2 with r0 = 0.35.
      f.ForI32(i, 1, n, 1, [&] {
        pos_of(i, pa);
        uint32_t im1 = f.AddLocal(kI32);
        f.LocalGet(i).I32Const(1).I32Sub().LocalSet(im1);
        pos_of(im1, pb);
        f.LocalGet(pa).F64Load(0);
        f.LocalGet(pb).F64Load(0);
        f.F64Sub().LocalSet(dx);
        f.LocalGet(pa).F64Load(8);
        f.LocalGet(pb).F64Load(8);
        f.F64Sub().LocalSet(dy);
        f.LocalGet(pa).F64Load(16);
        f.LocalGet(pb).F64Load(16);
        f.F64Sub().LocalSet(dz);
        f.LocalGet(dx).LocalGet(dx).F64Mul();
        f.LocalGet(dy).LocalGet(dy).F64Mul().F64Add();
        f.LocalGet(dz).LocalGet(dz).F64Mul().F64Add().LocalSet(r2);
        f.LocalGet(r2).F64Sqrt().LocalSet(r);
        f.LocalGet(energy);
        f.F64Const(50.0);
        f.LocalGet(r).F64Const(0.35).F64Sub();
        f.LocalGet(r).F64Const(0.35).F64Sub();
        f.F64Mul().F64Mul().F64Add().LocalSet(energy);
        // fmag = -100*(r - r0)/r
        f.F64Const(-100.0).LocalGet(r).F64Const(0.35).F64Sub().F64Mul().LocalGet(r).F64Div()
            .LocalSet(fmag);
        auto apply = [&](int off, uint32_t dloc, uint32_t idxa, uint32_t idxb) {
          f.LocalGet(idxa).I32Const(24).I32Mul().I32Const(static_cast<int32_t>(kForce))
              .I32Add();
          f.LocalGet(idxa).I32Const(24).I32Mul().I32Const(static_cast<int32_t>(kForce))
              .I32Add().F64Load(off);
          f.LocalGet(fmag).LocalGet(dloc).F64Mul().F64Add();
          f.F64Store(off);
          f.LocalGet(idxb).I32Const(24).I32Mul().I32Const(static_cast<int32_t>(kForce))
              .I32Add();
          f.LocalGet(idxb).I32Const(24).I32Mul().I32Const(static_cast<int32_t>(kForce))
              .I32Add().F64Load(off);
          f.LocalGet(fmag).LocalGet(dloc).F64Mul().F64Sub();
          f.F64Store(off);
        };
        apply(0, dx, i, im1);
        apply(8, dy, i, im1);
        apply(16, dz, i, im1);
      });
      // Nonbonded LJ within a +-24 neighbor window.
      f.ForI32(i, 0, n, 1, [&] {
        pos_of(i, pa);
        uint32_t jmax = f.AddLocal(kI32);
        f.LocalGet(i).I32Const(24).I32Add().LocalSet(jmax);
        f.LocalGet(jmax).I32Const(n).I32GeS();
        f.If([&] { f.I32Const(n - 1).LocalSet(jmax); });
        f.LocalGet(i).I32Const(2).I32Add().LocalSet(j);
        f.Block([&] {
          f.LoopBlock([&] {
            f.LocalGet(j).LocalGet(jmax).I32GtS().BrIf(1);
            pos_of(j, pb);
            f.LocalGet(pa).F64Load(0);
            f.LocalGet(pb).F64Load(0);
            f.F64Sub().LocalSet(dx);
            f.LocalGet(pa).F64Load(8);
            f.LocalGet(pb).F64Load(8);
            f.F64Sub().LocalSet(dy);
            f.LocalGet(pa).F64Load(16);
            f.LocalGet(pb).F64Load(16);
            f.F64Sub().LocalSet(dz);
            f.LocalGet(dx).LocalGet(dx).F64Mul();
            f.LocalGet(dy).LocalGet(dy).F64Mul().F64Add();
            f.LocalGet(dz).LocalGet(dz).F64Mul().F64Add().LocalSet(r2);
            f.LocalGet(r2).F64Const(0.01).F64Gt();
            f.If([&] {
              uint32_t inv6 = fmag;  // reuse
              f.F64Const(1.0).LocalGet(r2).LocalGet(r2).F64Mul().LocalGet(r2).F64Mul()
                  .F64Div().LocalSet(inv6);
              f.LocalGet(energy);
              f.F64Const(0.2);
              f.LocalGet(inv6).LocalGet(inv6).F64Mul().LocalGet(inv6).F64Sub();
              f.F64Mul().F64Add().LocalSet(energy);
            });
            f.LocalGet(j).I32Const(1).I32Add().LocalSet(j);
            f.Br(0);
          });
        });
      });
      // Integrate.
      f.ForI32(i, 0, n, 1, [&] {
        auto integ = [&](int off) {
          f.LocalGet(i).I32Const(24).I32Mul().I32Const(static_cast<int32_t>(kVel)).I32Add();
          f.LocalGet(i).I32Const(24).I32Mul().I32Const(static_cast<int32_t>(kVel)).I32Add()
              .F64Load(off);
          f.LocalGet(i).I32Const(24).I32Mul().I32Const(static_cast<int32_t>(kForce)).I32Add()
              .F64Load(off);
          f.F64Const(0.0005).F64Mul().F64Add();
          f.F64Store(off);
          f.LocalGet(i).I32Const(24).I32Mul().I32Const(static_cast<int32_t>(kPos)).I32Add();
          f.LocalGet(i).I32Const(24).I32Mul().I32Const(static_cast<int32_t>(kPos)).I32Add()
              .F64Load(off);
          f.LocalGet(i).I32Const(24).I32Mul().I32Const(static_cast<int32_t>(kVel)).I32Add()
              .F64Load(off);
          f.F64Const(0.0005).F64Mul().F64Add();
          f.F64Store(off);
        };
        integ(0);
        integ(8);
        integ(16);
      });
    });
    uint32_t out = f.AddLocal(kF64);
    f.LocalGet(energy).LocalSet(out);
    c.PrintResultF64("energy", out);
    c.EndMain();
    return c.mb().Build();
  };
  return spec;
}

}  // namespace nsf
