// Integer SPEC-like workload constructors (see spec.h for the registry).
#ifndef SRC_SPEC_SPEC_INT_H_
#define SRC_SPEC_SPEC_INT_H_

#include "src/harness/harness.h"

namespace nsf {

WorkloadSpec SpecBzip2(int scale);
WorkloadSpec SpecMcf(int scale);
WorkloadSpec SpecGobmk(int scale);
WorkloadSpec SpecSjeng(int scale);
WorkloadSpec SpecLibquantum(int scale);
WorkloadSpec SpecH264ref(int scale);
WorkloadSpec SpecAstar(int scale);
WorkloadSpec SpecLeela(int scale);

}  // namespace nsf

#endif  // SRC_SPEC_SPEC_INT_H_
