// SPEC-like integer workloads, part 2: 462.libquantum, 464.h264ref,
// 473.astar, 641.leela_s.
#include "src/spec/spec_int.h"

#include "src/spec/specctx.h"

namespace nsf {

namespace {
const auto kI32 = ValType::kI32;
const auto kF64 = ValType::kF64;
}  // namespace

// 462.libquantum — quantum register simulation: Hadamard and CNOT gates over
// a dense amplitude vector (re/im f64 pairs), plus bit-twiddling index math.
WorkloadSpec SpecLibquantum(int scale) {
  WorkloadSpec spec;
  spec.name = "462.libquantum";
  spec.output_files = {"/out.txt"};
  int qubits = 12 + (scale > 1 ? 1 : 0);
  spec.build = [qubits]() {
    SpecCtx c("libquantum", 512);
    const int n = 1 << qubits;
    const uint32_t kRe = 1u << 20;
    const uint32_t kIm = kRe + 8u * n;

    // hadamard(target_bit): butterfly over pairs differing in the bit.
    auto& had = c.mb().AddInternalFunction("hadamard", {kI32}, {});
    {
      auto& f = had;
      c.SetFunc(&f);
      uint32_t i = f.AddLocal(kI32);
      uint32_t j = f.AddLocal(kI32);
      uint32_t ar = f.AddLocal(kF64);
      uint32_t ai = f.AddLocal(kF64);
      uint32_t br = f.AddLocal(kF64);
      uint32_t bi = f.AddLocal(kF64);
      const double inv_sqrt2 = 0.7071067811865476;
      f.ForI32(i, 0, n, 1, [&] {
        // Only process when bit is clear: j = i | (1<<t).
        f.LocalGet(i).I32Const(1).LocalGet(0).I32Shl().I32And().I32Eqz();
        f.If([&] {
          f.LocalGet(i).I32Const(1).LocalGet(0).I32Shl().I32Or().LocalSet(j);
          c.LdF64(kRe, i);
          f.LocalSet(ar);
          c.LdF64(kIm, i);
          f.LocalSet(ai);
          c.LdF64(kRe, j);
          f.LocalSet(br);
          c.LdF64(kIm, j);
          f.LocalSet(bi);
          c.AddrF64(kRe, i);
          f.LocalGet(ar).LocalGet(br).F64Add().F64Const(inv_sqrt2).F64Mul();
          f.F64Store(0);
          c.AddrF64(kIm, i);
          f.LocalGet(ai).LocalGet(bi).F64Add().F64Const(inv_sqrt2).F64Mul();
          f.F64Store(0);
          c.AddrF64(kRe, j);
          f.LocalGet(ar).LocalGet(br).F64Sub().F64Const(inv_sqrt2).F64Mul();
          f.F64Store(0);
          c.AddrF64(kIm, j);
          f.LocalGet(ai).LocalGet(bi).F64Sub().F64Const(inv_sqrt2).F64Mul();
          f.F64Store(0);
        });
      });
    }
    // cnot(control, target): swap amplitudes where control bit set.
    auto& cnot = c.mb().AddInternalFunction("cnot", {kI32, kI32}, {});
    {
      auto& f = cnot;
      c.SetFunc(&f);
      uint32_t i = f.AddLocal(kI32);
      uint32_t j = f.AddLocal(kI32);
      uint32_t t = f.AddLocal(kF64);
      f.ForI32(i, 0, n, 1, [&] {
        f.LocalGet(i).I32Const(1).LocalGet(0).I32Shl().I32And();
        f.If([&] {
          f.LocalGet(i).I32Const(1).LocalGet(1).I32Shl().I32And().I32Eqz();
          f.If([&] {
            f.LocalGet(i).I32Const(1).LocalGet(1).I32Shl().I32Or().LocalSet(j);
            // swap re
            c.LdF64(kRe, i);
            f.LocalSet(t);
            c.AddrF64(kRe, i);
            c.LdF64(kRe, j);
            f.F64Store(0);
            c.AddrF64(kRe, j);
            f.LocalGet(t);
            f.F64Store(0);
            // swap im
            c.LdF64(kIm, i);
            f.LocalSet(t);
            c.AddrF64(kIm, i);
            c.LdF64(kIm, j);
            f.F64Store(0);
            c.AddrF64(kIm, j);
            f.LocalGet(t);
            f.F64Store(0);
          });
        });
      });
    }
    c.BeginMain();
    auto& f = c.f();
    uint32_t i = f.AddLocal(kI32);
    uint32_t round = f.AddLocal(kI32);
    uint32_t prob = f.AddLocal(kF64);
    // |0...0> initial state.
    f.ForI32(i, 0, n, 1, [&] {
      c.AddrF64(kRe, i);
      f.F64Const(0.0);
      f.F64Store(0);
      c.AddrF64(kIm, i);
      f.F64Const(0.0);
      f.F64Store(0);
    });
    f.I32Const(static_cast<int32_t>(kRe)).F64Const(1.0).F64Store(0);
    // Gate sequence (Grover-flavored rounds).
    f.ForI32(round, 0, 4, 1, [&] {
      f.ForI32(i, 0, qubits, 1, [&] { f.LocalGet(i).Call(had.index()); });
      f.ForI32(i, 0, qubits - 1, 1, [&] {
        f.LocalGet(i);
        f.LocalGet(i).I32Const(1).I32Add();
        f.Call(cnot.index());
      });
    });
    // Probability mass of the lower half (sanity: should be ~deterministic).
    f.F64Const(0.0).LocalSet(prob);
    f.ForI32(i, 0, n / 2, 1, [&] {
      f.LocalGet(prob);
      c.LdF64(kRe, i);
      c.LdF64(kRe, i);
      f.F64Mul();
      c.LdF64(kIm, i);
      c.LdF64(kIm, i);
      f.F64Mul();
      f.F64Add().F64Add().LocalSet(prob);
    });
    uint32_t scaled = f.AddLocal(kI32);
    f.LocalGet(prob).F64Const(1e6).F64Mul().I32TruncF64S().LocalSet(scaled);
    c.PrintResult("prob_ppm", scaled);
    c.EndMain();
    return c.mb().Build();
  };
  return spec;
}

// 464.h264ref — video encoding inner loops: 16x16 SAD motion search over a
// reference frame plus a 4x4 integer transform/quantization pass; emits a
// byte stream to the filesystem (exercising the §2 append path).
WorkloadSpec SpecH264ref(int scale) {
  WorkloadSpec spec;
  spec.name = "464.h264ref";
  spec.output_files = {"/out.txt", "/bitstream.bin"};
  int frames = 2 * scale;
  spec.build = [frames]() {
    SpecCtx c("h264ref", 512);
    const int W = 64;
    const int H = 64;
    const uint32_t kCur = 1u << 20;   // current frame bytes
    const uint32_t kRef = kCur + W * H;
    const uint32_t kOut = kRef + W * H;  // bitstream staging
    c.mb().AddData(320, std::string("/bitstream.bin"));

    // sad16(cur_off, ref_off) -> sum abs diff over a 16x16 block.
    auto& sad = c.mb().AddInternalFunction("sad16", {kI32, kI32}, {kI32});
    {
      auto& f = sad;
      uint32_t y = f.AddLocal(kI32);
      uint32_t x = f.AddLocal(kI32);
      uint32_t acc = f.AddLocal(kI32);
      uint32_t d = f.AddLocal(kI32);
      f.ForI32(y, 0, 16, 1, [&] {
        f.ForI32(x, 0, 16, 1, [&] {
          f.LocalGet(0).LocalGet(y).I32Const(W).I32Mul().I32Add().LocalGet(x).I32Add();
          f.I32Load8U(0);
          f.LocalGet(1).LocalGet(y).I32Const(W).I32Mul().I32Add().LocalGet(x).I32Add();
          f.I32Load8U(0);
          f.I32Sub().LocalSet(d);
          f.LocalGet(d).I32Const(0).I32LtS();
          f.If([&] { f.I32Const(0).LocalGet(d).I32Sub().LocalSet(d); });
          f.LocalGet(acc).LocalGet(d).I32Add().LocalSet(acc);
        });
      });
      f.LocalGet(acc);
    }
    // dct4_quant(block_off) -> quantized energy of a 4x4 block (in-place-ish
    // integer butterfly + shift quantization).
    auto& dct = c.mb().AddInternalFunction("dct4_quant", {kI32}, {kI32});
    {
      auto& f = dct;
      uint32_t y = f.AddLocal(kI32);
      uint32_t a = f.AddLocal(kI32);
      uint32_t b = f.AddLocal(kI32);
      uint32_t s0 = f.AddLocal(kI32);
      uint32_t s1 = f.AddLocal(kI32);
      uint32_t energy = f.AddLocal(kI32);
      f.ForI32(y, 0, 4, 1, [&] {
        // Row butterfly on bytes (a±b pairs), accumulate quantized energy.
        f.LocalGet(0).LocalGet(y).I32Const(W).I32Mul().I32Add().I32Load8U(0).LocalSet(a);
        f.LocalGet(0).LocalGet(y).I32Const(W).I32Mul().I32Add().I32Load8U(1).LocalSet(b);
        f.LocalGet(a).LocalGet(b).I32Add().LocalSet(s0);
        f.LocalGet(a).LocalGet(b).I32Sub().LocalSet(s1);
        f.LocalGet(0).LocalGet(y).I32Const(W).I32Mul().I32Add().I32Load8U(2).LocalSet(a);
        f.LocalGet(0).LocalGet(y).I32Const(W).I32Mul().I32Add().I32Load8U(3).LocalSet(b);
        f.LocalGet(energy);
        f.LocalGet(s0).LocalGet(a).I32Add().LocalGet(b).I32Add().I32Const(3).I32ShrS();
        f.I32Add();
        f.LocalGet(s1).LocalGet(a).I32Sub().I32Const(2).I32ShrS();
        f.I32Add().LocalSet(energy);
      });
      f.LocalGet(energy);
    }

    c.BeginMain();
    auto& f = c.f();
    uint32_t bs_fd = f.AddLocal(kI32);
    uint32_t frame = f.AddLocal(kI32);
    uint32_t i = f.AddLocal(kI32);
    uint32_t bx = f.AddLocal(kI32);
    uint32_t by = f.AddLocal(kI32);
    uint32_t dx = f.AddLocal(kI32);
    uint32_t dy = f.AddLocal(kI32);
    uint32_t best = f.AddLocal(kI32);
    uint32_t cost = f.AddLocal(kI32);
    uint32_t total_sad = f.AddLocal(kI32);
    uint32_t total_energy = f.AddLocal(kI32);
    uint32_t out_len = f.AddLocal(kI32);
    f.I32Const(320).I32Const(0x241).Call(c.lib().sys.open).LocalSet(bs_fd);
    f.ForI32(frame, 0, frames, 1, [&] {
      // Synthesize frame content: cur = pattern(frame), ref = pattern(frame-1).
      f.ForI32(i, 0, W * H, 1, [&] {
        f.I32Const(static_cast<int32_t>(kCur)).LocalGet(i).I32Add();
        f.LocalGet(i).LocalGet(frame).I32Const(31).I32Mul().I32Add().I32Const(251).I32RemU();
        f.I32Store8(0);
        f.I32Const(static_cast<int32_t>(kRef)).LocalGet(i).I32Add();
        f.LocalGet(i).LocalGet(frame).I32Const(1).I32Sub().I32Const(31).I32Mul().I32Add()
            .I32Const(251).I32RemU();
        f.I32Store8(0);
      });
      f.I32Const(0).LocalSet(out_len);
      // Motion search: for each 16x16 block, search ±4 in the ref frame.
      f.ForI32(by, 0, (H / 16), 1, [&] {
        f.ForI32(bx, 0, (W / 16), 1, [&] {
          f.I32Const(0x7fffffff).LocalSet(best);
          f.ForI32(dy, -4, 5, 1, [&] {
            f.ForI32(dx, -4, 5, 1, [&] {
              // Bounds: block origin + motion must stay in frame.
              uint32_t oy = f.AddLocal(kI32);
              uint32_t ox = f.AddLocal(kI32);
              f.LocalGet(by).I32Const(16).I32Mul().LocalGet(dy).I32Add().LocalSet(oy);
              f.LocalGet(bx).I32Const(16).I32Mul().LocalGet(dx).I32Add().LocalSet(ox);
              f.LocalGet(oy).I32Const(0).I32GeS();
              f.LocalGet(oy).I32Const(H - 16).I32LeS().I32And();
              f.LocalGet(ox).I32Const(0).I32GeS().I32And();
              f.LocalGet(ox).I32Const(W - 16).I32LeS().I32And();
              f.If([&] {
                f.I32Const(static_cast<int32_t>(kCur));
                f.LocalGet(by).I32Const(16 * W).I32Mul().I32Add();
                f.LocalGet(bx).I32Const(16).I32Mul().I32Add();
                f.I32Const(static_cast<int32_t>(kRef));
                f.LocalGet(oy).I32Const(W).I32Mul().I32Add();
                f.LocalGet(ox).I32Add();
                f.Call(sad.index()).LocalSet(cost);
                f.LocalGet(cost).LocalGet(best).I32LtS();
                f.If([&] { f.LocalGet(cost).LocalSet(best); });
              });
            });
          });
          f.LocalGet(total_sad).LocalGet(best).I32Add().LocalSet(total_sad);
          // Emit 2 bytes per block into the staging buffer.
          f.I32Const(static_cast<int32_t>(kOut)).LocalGet(out_len).I32Add();
          f.LocalGet(best).I32Const(255).I32And();
          f.I32Store8(0);
          f.I32Const(static_cast<int32_t>(kOut)).LocalGet(out_len).I32Add();
          f.LocalGet(best).I32Const(8).I32ShrU().I32Const(255).I32And();
          f.I32Store8(1);
          f.LocalGet(out_len).I32Const(2).I32Add().LocalSet(out_len);
        });
      });
      // Transform pass over 4x4 blocks of the current frame.
      f.ForI32(by, 0, H / 4, 1, [&] {
        f.ForI32(bx, 0, W / 4, 1, [&] {
          f.I32Const(static_cast<int32_t>(kCur));
          f.LocalGet(by).I32Const(4 * W).I32Mul().I32Add();
          f.LocalGet(bx).I32Const(4).I32Mul().I32Add();
          f.Call(dct.index());
          f.LocalGet(total_energy).I32Add().LocalSet(total_energy);
        });
      });
      // Append this frame's bytes to the bitstream (many small writes — the
      // BrowserFS growth-policy path).
      f.LocalGet(bs_fd).I32Const(static_cast<int32_t>(kOut)).LocalGet(out_len);
      f.Call(c.lib().sys.write).Drop();
    });
    f.LocalGet(bs_fd).Call(c.lib().sys.close).Drop();
    c.PrintResult("total_sad", total_sad);
    c.PrintResult("total_energy", total_energy);
    c.EndMain();
    return c.mb().Build();
  };
  return spec;
}

// 473.astar — A* over a deterministic obstacle grid with an array-backed
// binary heap. Pointer/heap manipulation, data-dependent branches.
WorkloadSpec SpecAstar(int scale) {
  WorkloadSpec spec;
  spec.name = "473.astar";
  spec.output_files = {"/out.txt"};
  int grid = 96;
  int queries = 18 * scale;
  spec.build = [grid, queries]() {
    SpecCtx c("astar", 512);
    const int g = grid;
    const uint32_t kGridA = 1u << 20;                 // blocked flags
    const uint32_t kDist = kGridA + 4u * g * g;       // g-scores
    const uint32_t kClosed = kDist + 4u * g * g;
    const uint32_t kHeap = kClosed + 4u * g * g;      // (key,node) pairs
    // heap_push(key, node, size) -> new size.
    auto& push = c.mb().AddInternalFunction("heap_push", {kI32, kI32, kI32}, {kI32});
    {
      auto& f = push;
      uint32_t i = f.AddLocal(kI32);
      uint32_t parent = f.AddLocal(kI32);
      uint32_t tk = f.AddLocal(kI32);
      uint32_t tn = f.AddLocal(kI32);
      auto key_at = [&](uint32_t idx) {
        f.LocalGet(idx).I32Const(3).I32Shl().I32Const(static_cast<int32_t>(kHeap)).I32Add()
            .I32Load(0);
      };
      f.LocalGet(2).LocalSet(i);
      // heap[i] = (key, node)
      f.LocalGet(i).I32Const(3).I32Shl().I32Const(static_cast<int32_t>(kHeap)).I32Add();
      f.LocalGet(0);
      f.I32Store(0);
      f.LocalGet(i).I32Const(3).I32Shl().I32Const(static_cast<int32_t>(kHeap)).I32Add();
      f.LocalGet(1);
      f.I32Store(4);
      // Sift up.
      f.Block([&] {
        f.LoopBlock([&] {
          f.LocalGet(i).I32Eqz().BrIf(1);
          f.LocalGet(i).I32Const(1).I32Sub().I32Const(1).I32ShrS().LocalSet(parent);
          key_at(parent);
          key_at(i);
          f.I32LeS().BrIf(1);
          // swap heap[i] <-> heap[parent]
          f.LocalGet(parent).I32Const(3).I32Shl().I32Const(static_cast<int32_t>(kHeap))
              .I32Add().I32Load(0).LocalSet(tk);
          f.LocalGet(parent).I32Const(3).I32Shl().I32Const(static_cast<int32_t>(kHeap))
              .I32Add().I32Load(4).LocalSet(tn);
          f.LocalGet(parent).I32Const(3).I32Shl().I32Const(static_cast<int32_t>(kHeap)).I32Add();
          key_at(i);
          f.I32Store(0);
          f.LocalGet(parent).I32Const(3).I32Shl().I32Const(static_cast<int32_t>(kHeap)).I32Add();
          f.LocalGet(i).I32Const(3).I32Shl().I32Const(static_cast<int32_t>(kHeap)).I32Add()
              .I32Load(4);
          f.I32Store(4);
          f.LocalGet(i).I32Const(3).I32Shl().I32Const(static_cast<int32_t>(kHeap)).I32Add();
          f.LocalGet(tk);
          f.I32Store(0);
          f.LocalGet(i).I32Const(3).I32Shl().I32Const(static_cast<int32_t>(kHeap)).I32Add();
          f.LocalGet(tn);
          f.I32Store(4);
          f.LocalGet(parent).LocalSet(i);
          f.Br(0);
        });
      });
      f.LocalGet(2).I32Const(1).I32Add();
    }
    // heap_pop(size) -> new size; leaves popped (key,node) at heap[size-1].
    auto& pop = c.mb().AddInternalFunction("heap_pop", {kI32}, {kI32});
    {
      auto& f = pop;
      uint32_t last = f.AddLocal(kI32);
      uint32_t i = f.AddLocal(kI32);
      uint32_t child = f.AddLocal(kI32);
      uint32_t tk = f.AddLocal(kI32);
      uint32_t tn = f.AddLocal(kI32);
      auto key_at = [&](uint32_t idx) {
        f.LocalGet(idx).I32Const(3).I32Shl().I32Const(static_cast<int32_t>(kHeap)).I32Add()
            .I32Load(0);
      };
      auto swap = [&](uint32_t xi, uint32_t yi) {
        f.LocalGet(xi).I32Const(3).I32Shl().I32Const(static_cast<int32_t>(kHeap)).I32Add()
            .I32Load(0).LocalSet(tk);
        f.LocalGet(xi).I32Const(3).I32Shl().I32Const(static_cast<int32_t>(kHeap)).I32Add()
            .I32Load(4).LocalSet(tn);
        f.LocalGet(xi).I32Const(3).I32Shl().I32Const(static_cast<int32_t>(kHeap)).I32Add();
        key_at(yi);
        f.I32Store(0);
        f.LocalGet(xi).I32Const(3).I32Shl().I32Const(static_cast<int32_t>(kHeap)).I32Add();
        f.LocalGet(yi).I32Const(3).I32Shl().I32Const(static_cast<int32_t>(kHeap)).I32Add()
            .I32Load(4);
        f.I32Store(4);
        f.LocalGet(yi).I32Const(3).I32Shl().I32Const(static_cast<int32_t>(kHeap)).I32Add();
        f.LocalGet(tk);
        f.I32Store(0);
        f.LocalGet(yi).I32Const(3).I32Shl().I32Const(static_cast<int32_t>(kHeap)).I32Add();
        f.LocalGet(tn);
        f.I32Store(4);
      };
      f.LocalGet(0).I32Const(1).I32Sub().LocalSet(last);
      f.I32Const(0).LocalSet(i);
      swap(i, last);
      // Sift down within [0, last).
      f.Block([&] {
        f.LoopBlock([&] {
          f.LocalGet(i).I32Const(1).I32Shl().I32Const(1).I32Add().LocalSet(child);
          f.LocalGet(child).LocalGet(last).I32GeS().BrIf(1);
          // Pick smaller child.
          f.LocalGet(child).I32Const(1).I32Add().LocalGet(last).I32LtS();
          f.If([&] {
            uint32_t c2 = tn;  // reuse tn as scratch index? avoid: compute inline
            (void)c2;
            f.LocalGet(child).I32Const(1).I32Add().I32Const(3).I32Shl()
                .I32Const(static_cast<int32_t>(kHeap)).I32Add().I32Load(0);
            key_at(child);
            f.I32LtS();
            f.If([&] { f.LocalGet(child).I32Const(1).I32Add().LocalSet(child); });
          });
          key_at(i);
          key_at(child);
          f.I32LeS().BrIf(1);
          swap(i, child);
          f.LocalGet(child).LocalSet(i);
          f.Br(0);
        });
      });
      f.LocalGet(last);
    }

    c.BeginMain();
    auto& f = c.f();
    uint32_t i = f.AddLocal(kI32);
    uint32_t q = f.AddLocal(kI32);
    uint32_t size = f.AddLocal(kI32);
    uint32_t node = f.AddLocal(kI32);
    uint32_t nd = f.AddLocal(kI32);
    uint32_t goal = f.AddLocal(kI32);
    uint32_t expanded = f.AddLocal(kI32);
    uint32_t path_total = f.AddLocal(kI32);
    const int inf = 0x3fffffff;
    // Build obstacle grid: blocked when hash(i) % 4 == 0, but keep the
    // border clear so paths exist.
    f.ForI32(i, 0, g * g, 1, [&] {
      c.AddrI32(kGridA, i);
      f.LocalGet(i).I32Const(2654435761u).I32Mul().I32Const(26).I32ShrU().I32Const(4)
          .I32RemU().I32Eqz();
      f.I32Store(0);
    });
    f.ForI32(i, 0, g, 1, [&] {
      c.AddrI32(kGridA, i);
      f.I32Const(0);
      f.I32Store(0);
      uint32_t t = f.AddLocal(kI32);
      f.LocalGet(i).I32Const(g).I32Mul().LocalSet(t);
      c.AddrI32(kGridA, t);
      f.I32Const(0);
      f.I32Store(0);
    });
    f.ForI32(q, 0, queries, 1, [&] {
      // start = q-th cell on top row; goal = opposite corner area.
      uint32_t start = f.AddLocal(kI32);
      f.LocalGet(q).I32Const(7).I32Mul().I32Const(g).I32RemU().LocalSet(start);
      f.I32Const(g * g - 1).LocalGet(q).I32Const(13).I32Mul().I32Const(g).I32RemU().I32Sub()
          .LocalSet(goal);
      f.ForI32(i, 0, g * g, 1, [&] {
        c.AddrI32(kDist, i);
        f.I32Const(inf);
        f.I32Store(0);
        c.AddrI32(kClosed, i);
        f.I32Const(0);
        f.I32Store(0);
      });
      c.AddrI32(kDist, start);
      f.I32Const(0);
      f.I32Store(0);
      f.I32Const(0).LocalGet(start).I32Const(0).Call(push.index()).LocalSet(size);
      f.Block([&] {
        f.LoopBlock([&] {
          f.LocalGet(size).I32Eqz().BrIf(1);
          f.LocalGet(size).Call(pop.index()).LocalSet(size);
          // popped node at heap[size].
          f.LocalGet(size).I32Const(3).I32Shl().I32Const(static_cast<int32_t>(kHeap)).I32Add()
              .I32Load(4).LocalSet(node);
          c.LdI32(kClosed, node);
          f.If([&] { f.Br(1); });  // continue
          c.AddrI32(kClosed, node);
          f.I32Const(1);
          f.I32Store(0);
          f.LocalGet(expanded).I32Const(1).I32Add().LocalSet(expanded);
          f.LocalGet(node).LocalGet(goal).I32Eq().BrIf(1);
          // Relax 4 neighbors.
          auto relax = [&](std::function<void()> guard, int delta) {
            guard();
            f.If([&] {
              uint32_t nb = f.AddLocal(kI32);
              f.LocalGet(node).I32Const(delta).I32Add().LocalSet(nb);
              c.LdI32(kGridA, nb);
              f.I32Eqz();
              f.If([&] {
                c.LdI32(kDist, node);
                f.I32Const(1).I32Add().LocalSet(nd);
                f.LocalGet(nd);
                c.LdI32(kDist, nb);
                f.I32LtS();
                f.If([&] {
                  c.AddrI32(kDist, nb);
                  f.LocalGet(nd);
                  f.I32Store(0);
                  // f = g + manhattan(nb, goal)
                  uint32_t hx = f.AddLocal(kI32);
                  uint32_t hy = f.AddLocal(kI32);
                  f.LocalGet(nb).I32Const(g).I32RemS().LocalGet(goal).I32Const(g).I32RemS()
                      .I32Sub().LocalSet(hx);
                  f.LocalGet(hx).I32Const(0).I32LtS();
                  f.If([&] { f.I32Const(0).LocalGet(hx).I32Sub().LocalSet(hx); });
                  f.LocalGet(nb).I32Const(g).I32DivS().LocalGet(goal).I32Const(g).I32DivS()
                      .I32Sub().LocalSet(hy);
                  f.LocalGet(hy).I32Const(0).I32LtS();
                  f.If([&] { f.I32Const(0).LocalGet(hy).I32Sub().LocalSet(hy); });
                  f.LocalGet(nd).LocalGet(hx).I32Add().LocalGet(hy).I32Add();
                  f.LocalGet(nb);
                  f.LocalGet(size);
                  f.Call(push.index()).LocalSet(size);
                });
              });
            });
          };
          relax([&] { f.LocalGet(node).I32Const(g).I32RemS().I32Const(0).I32GtS(); }, -1);
          relax([&] { f.LocalGet(node).I32Const(g).I32RemS().I32Const(g - 1).I32LtS(); }, 1);
          relax([&] { f.LocalGet(node).I32Const(g).I32GeS(); }, -g);
          relax([&] { f.LocalGet(node).I32Const(g * (g - 1)).I32LtS(); }, g);
          f.Br(0);
        });
      });
      c.LdI32(kDist, goal);
      f.LocalGet(path_total).I32Add().LocalSet(path_total);
    });
    c.PrintResult("expanded", expanded);
    c.PrintResult("path_total", path_total);
    c.EndMain();
    return c.mb().Build();
  };
  return spec;
}

// 641.leela_s — Monte-Carlo playouts on a 9x9 board with capture logic and
// AMAF statistics. RNG-driven, branch-heavy.
WorkloadSpec SpecLeela(int scale) {
  WorkloadSpec spec;
  spec.name = "641.leela_s";
  spec.output_files = {"/out.txt"};
  int playouts = 110 * scale;
  spec.build = [playouts]() {
    SpecCtx c("leela");
    const int N = 9;
    const uint32_t kBoard = 1u << 20;
    const uint32_t kAmaf = kBoard + 4 * N * N;

    // count_neighbors(pos, color) -> 4-neighborhood count of `color`.
    auto& cn = c.mb().AddInternalFunction("count_nb", {kI32, kI32}, {kI32});
    {
      auto& f = cn;
      c.SetFunc(&f);
      uint32_t cnt = f.AddLocal(kI32);
      auto look = [&](std::function<void()> guard, int delta) {
        guard();
        f.If([&] {
          uint32_t nb = f.AddLocal(kI32);
          f.LocalGet(0).I32Const(delta).I32Add().LocalSet(nb);
          c.LdI32(kBoard, nb);
          f.LocalGet(1).I32Eq();
          f.If([&] { f.LocalGet(cnt).I32Const(1).I32Add().LocalSet(cnt); });
        });
      };
      look([&] { f.LocalGet(0).I32Const(N).I32RemS().I32Const(0).I32GtS(); }, -1);
      look([&] { f.LocalGet(0).I32Const(N).I32RemS().I32Const(N - 1).I32LtS(); }, 1);
      look([&] { f.LocalGet(0).I32Const(N).I32GeS(); }, -N);
      look([&] { f.LocalGet(0).I32Const(N * (N - 1)).I32LtS(); }, N);
      f.LocalGet(cnt);
    }

    c.BeginMain();
    auto& f = c.f();
    uint32_t p = f.AddLocal(kI32);
    uint32_t mv = f.AddLocal(kI32);
    uint32_t pos = f.AddLocal(kI32);
    uint32_t color = f.AddLocal(kI32);
    uint32_t i = f.AddLocal(kI32);
    uint32_t wins = f.AddLocal(kI32);
    uint32_t score = f.AddLocal(kI32);
    uint32_t amaf_mass = f.AddLocal(kI32);
    f.ForI32(i, 0, N * N, 1, [&] {
      c.AddrI32(kAmaf, i);
      f.I32Const(0);
      f.I32Store(0);
    });
    f.ForI32(p, 0, playouts, 1, [&] {
      // Clear board; play ~60 pseudo-random moves; surrounded stones flip.
      f.ForI32(i, 0, N * N, 1, [&] {
        c.AddrI32(kBoard, i);
        f.I32Const(0);
        f.I32Store(0);
      });
      f.ForI32(mv, 0, 60, 1, [&] {
        f.Call(c.rng_fn()).I32Const(N * N).I32RemU().LocalSet(pos);
        f.LocalGet(mv).I32Const(1).I32And().I32Const(1).I32Add().LocalSet(color);
        c.LdI32(kBoard, pos);
        f.I32Eqz();
        f.If([&] {
          c.AddrI32(kBoard, pos);
          f.LocalGet(color);
          f.I32Store(0);
          // "Capture": if fully surrounded by opponent, flip.
          f.LocalGet(pos).I32Const(3).LocalGet(color).I32Sub().Call(cn.index());
          f.I32Const(3).I32GeS();
          f.If([&] {
            c.AddrI32(kBoard, pos);
            f.I32Const(3).LocalGet(color).I32Sub();
            f.I32Store(0);
          });
          c.AddrI32(kAmaf, pos);
          c.LdI32(kAmaf, pos);
          f.I32Const(1).I32Add();
          f.I32Store(0);
        });
      });
      // Score: black-minus-white stones; count a win for black if positive.
      f.I32Const(0).LocalSet(score);
      f.ForI32(i, 0, N * N, 1, [&] {
        c.LdI32(kBoard, i);
        f.I32Const(1).I32Eq();
        f.If([&] { f.LocalGet(score).I32Const(1).I32Add().LocalSet(score); });
        c.LdI32(kBoard, i);
        f.I32Const(2).I32Eq();
        f.If([&] { f.LocalGet(score).I32Const(1).I32Sub().LocalSet(score); });
      });
      f.LocalGet(score).I32Const(0).I32GtS();
      f.If([&] { f.LocalGet(wins).I32Const(1).I32Add().LocalSet(wins); });
    });
    f.ForI32(i, 0, N * N, 1, [&] {
      f.LocalGet(amaf_mass);
      c.LdI32(kAmaf, i);
      f.I32Add().LocalSet(amaf_mass);
    });
    c.PrintResult("wins", wins);
    c.PrintResult("amaf_mass", amaf_mass);
    c.EndMain();
    return c.mb().Build();
  };
  return spec;
}

}  // namespace nsf
