// The SPEC CPU stand-in suite: 15 open workloads, one per benchmark the
// paper measures (Table 1 / Figure 3b). Each workload exercises the same
// algorithmic regime as its SPEC counterpart (see DESIGN.md §3), performs
// real file I/O through the Browsix kernel, and writes a validated result
// file.
#ifndef SRC_SPEC_SPEC_H_
#define SRC_SPEC_SPEC_H_

#include <string>
#include <vector>

#include "src/harness/harness.h"

namespace nsf {

// Benchmark names in the paper's Table 1 order.
std::vector<std::string> SpecWorkloadNames();

// Builds the WorkloadSpec for `name`; `scale` >= 1 grows the input.
WorkloadSpec SpecWorkload(const std::string& name, int scale = 1);

}  // namespace nsf

#endif  // SRC_SPEC_SPEC_H_
