#include "src/spec/spec.h"

#include "src/spec/spec_fp.h"
#include "src/spec/spec_int.h"

namespace nsf {

std::vector<std::string> SpecWorkloadNames() {
  return {"401.bzip2",  "429.mcf",        "433.milc",    "444.namd",   "445.gobmk",
          "450.soplex", "453.povray",     "458.sjeng",   "462.libquantum",
          "464.h264ref", "470.lbm",       "473.astar",   "482.sphinx3",
          "641.leela_s", "644.nab_s"};
}

WorkloadSpec SpecWorkload(const std::string& name, int scale) {
  if (name == "401.bzip2") {
    return SpecBzip2(scale);
  }
  if (name == "429.mcf") {
    return SpecMcf(scale);
  }
  if (name == "433.milc") {
    return SpecMilc(scale);
  }
  if (name == "444.namd") {
    return SpecNamd(scale);
  }
  if (name == "445.gobmk") {
    return SpecGobmk(scale);
  }
  if (name == "450.soplex") {
    return SpecSoplex(scale);
  }
  if (name == "453.povray") {
    return SpecPovray(scale);
  }
  if (name == "458.sjeng") {
    return SpecSjeng(scale);
  }
  if (name == "462.libquantum") {
    return SpecLibquantum(scale);
  }
  if (name == "464.h264ref") {
    return SpecH264ref(scale);
  }
  if (name == "470.lbm") {
    return SpecLbm(scale);
  }
  if (name == "473.astar") {
    return SpecAstar(scale);
  }
  if (name == "482.sphinx3") {
    return SpecSphinx3(scale);
  }
  if (name == "641.leela_s") {
    return SpecLeela(scale);
  }
  if (name == "644.nab_s") {
    return SpecNab(scale);
  }
  return WorkloadSpec{};
}

}  // namespace nsf
