// Floating-point SPEC-like workload constructors (see spec.h).
#ifndef SRC_SPEC_SPEC_FP_H_
#define SRC_SPEC_SPEC_FP_H_

#include "src/harness/harness.h"

namespace nsf {

WorkloadSpec SpecMilc(int scale);
WorkloadSpec SpecNamd(int scale);
WorkloadSpec SpecSoplex(int scale);
WorkloadSpec SpecPovray(int scale);
WorkloadSpec SpecLbm(int scale);
WorkloadSpec SpecSphinx3(int scale);
WorkloadSpec SpecNab(int scale);

}  // namespace nsf

#endif  // SRC_SPEC_SPEC_FP_H_
