// SPEC-like floating-point workloads, part 2: 450.soplex, 453.povray,
// 482.sphinx3.
#include "src/spec/spec_fp.h"

#include "src/spec/specctx.h"

namespace nsf {

namespace {
const auto kI32 = ValType::kI32;
const auto kF64 = ValType::kF64;
}  // namespace

// 450.soplex — dense simplex: entering-column selection, ratio test, and
// tableau pivots. FP with data-dependent control flow.
WorkloadSpec SpecSoplex(int scale) {
  WorkloadSpec spec;
  spec.name = "450.soplex";
  spec.output_files = {"/out.txt"};
  int vars = 60 * scale;
  int cons = 40 * scale;
  spec.build = [vars, cons]() {
    SpecCtx c("soplex", 512);
    const int n = vars;   // columns (incl. slack below)
    const int m = cons;   // rows
    const int width = n + m + 1;  // + RHS column
    const uint32_t kTab = 1u << 20;   // (m+1) x width tableau, row 0 = objective

    c.BeginMain();
    auto& f = c.f();
    uint32_t i = f.AddLocal(kI32);
    uint32_t j = f.AddLocal(kI32);
    uint32_t it = f.AddLocal(kI32);
    uint32_t piv_col = f.AddLocal(kI32);
    uint32_t piv_row = f.AddLocal(kI32);
    uint32_t best = f.AddLocal(kF64);
    uint32_t ratio = f.AddLocal(kF64);
    uint32_t pv = f.AddLocal(kF64);
    uint32_t factor = f.AddLocal(kF64);
    uint32_t iterations = f.AddLocal(kI32);
    auto addr = [&](uint32_t row, uint32_t col) {
      f.LocalGet(row).I32Const(width).I32Mul().LocalGet(col).I32Add();
      f.I32Const(3).I32Shl().I32Const(static_cast<int32_t>(kTab)).I32Add();
    };
    auto ld = [&](uint32_t row, uint32_t col) {
      addr(row, col);
      f.F64Load(0);
    };
    // Build a feasible LP: max c.x st A x <= b, x >= 0, slack basis.
    f.ForI32(i, 0, m + 1, 1, [&] {
      f.ForI32(j, 0, width, 1, [&] {
        addr(i, j);
        f.F64Const(0.0);
        f.F64Store(0);
      });
    });
    // Objective row: -c (simplex minimizes the reduced row).
    f.ForI32(j, 0, n, 1, [&] {
      addr(i, j);  // i == m+1? ensure i holds 0: use explicit zero local
      f.Drop();
      uint32_t zero = f.AddLocal(kI32);
      f.I32Const(0).LocalSet(zero);
      addr(zero, j);
      f.LocalGet(j).I32Const(7).I32Mul().I32Const(23).I32RemS().I32Const(1).I32Add()
          .F64ConvertI32S().F64Neg();
      f.F64Store(0);
    });
    // Constraint rows: A entries, slack identity, positive RHS.
    f.ForI32(i, 1, m + 1, 1, [&] {
      f.ForI32(j, 0, n, 1, [&] {
        addr(i, j);
        f.LocalGet(i).I32Const(13).I32Mul().LocalGet(j).I32Const(7).I32Mul().I32Add()
            .I32Const(19).I32RemS().I32Const(1).I32Add().F64ConvertI32S();
        f.F64Store(0);
      });
      // Slack column n+i-1.
      uint32_t sc = f.AddLocal(kI32);
      f.LocalGet(i).I32Const(n - 1).I32Add().LocalSet(sc);
      addr(i, sc);
      f.F64Const(1.0);
      f.F64Store(0);
      // RHS.
      uint32_t rhs = f.AddLocal(kI32);
      f.I32Const(width - 1).LocalSet(rhs);
      addr(i, rhs);
      f.LocalGet(i).I32Const(29).I32Mul().I32Const(37).I32RemS().I32Const(40).I32Add()
          .F64ConvertI32S();
      f.F64Store(0);
    });
    // Simplex iterations (bounded).
    uint32_t rhs_col = f.AddLocal(kI32);
    f.I32Const(width - 1).LocalSet(rhs_col);
    uint32_t zero_r = f.AddLocal(kI32);
    f.I32Const(0).LocalSet(zero_r);
    f.ForI32(it, 0, 2 * m, 1, [&] {
      // Entering column: most negative objective entry.
      f.I32Const(-1).LocalSet(piv_col);
      f.F64Const(-1e-9).LocalSet(best);
      f.ForI32(j, 0, width - 1, 1, [&] {
        ld(zero_r, j);
        f.LocalGet(best).F64Lt();
        f.If([&] {
          ld(zero_r, j);
          f.LocalSet(best);
          f.LocalGet(j).LocalSet(piv_col);
        });
      });
      f.LocalGet(piv_col).I32Const(0).I32LtS();
      f.If([&] { f.Br(2); });  // optimal: exit the iteration block
      // Ratio test.
      f.I32Const(-1).LocalSet(piv_row);
      f.F64Const(1e30).LocalSet(ratio);
      f.ForI32(i, 1, m + 1, 1, [&] {
        ld(i, piv_col);
        f.F64Const(1e-9).F64Gt();
        f.If([&] {
          ld(i, rhs_col);
          ld(i, piv_col);
          f.F64Div().LocalSet(pv);
          f.LocalGet(pv).LocalGet(ratio).F64Lt();
          f.If([&] {
            f.LocalGet(pv).LocalSet(ratio);
            f.LocalGet(i).LocalSet(piv_row);
          });
        });
      });
      f.LocalGet(piv_row).I32Const(0).I32LtS();
      f.If([&] { f.Br(2); });  // unbounded: exit
      // Pivot: normalize pivot row, eliminate the column elsewhere.
      ld(piv_row, piv_col);
      f.LocalSet(pv);
      f.ForI32(j, 0, width, 1, [&] {
        addr(piv_row, j);
        ld(piv_row, j);
        f.LocalGet(pv).F64Div();
        f.F64Store(0);
      });
      f.ForI32(i, 0, m + 1, 1, [&] {
        f.LocalGet(i).LocalGet(piv_row).I32Ne();
        f.If([&] {
          ld(i, piv_col);
          f.LocalSet(factor);
          f.LocalGet(factor).F64Abs().F64Const(1e-12).F64Gt();
          f.If([&] {
            f.ForI32(j, 0, width, 1, [&] {
              addr(i, j);
              ld(i, j);
              f.LocalGet(factor);
              ld(piv_row, j);
              f.F64Mul().F64Sub();
              f.F64Store(0);
            });
          });
        });
      });
      f.LocalGet(iterations).I32Const(1).I32Add().LocalSet(iterations);
    });
    uint32_t objective = f.AddLocal(kF64);
    ld(zero_r, rhs_col);
    f.LocalSet(objective);
    c.PrintResult("iterations", iterations);
    c.PrintResultF64("objective", objective);
    c.EndMain();
    return c.mb().Build();
  };
  return spec;
}

// 453.povray — recursive ray tracer over spheres + ground plane, with
// reflections. Call-dense FP with sqrt everywhere; writes a PGM image.
WorkloadSpec SpecPovray(int scale) {
  WorkloadSpec spec;
  spec.name = "453.povray";
  spec.output_files = {"/out.txt", "/image.pgm"};
  int res = 40 * scale;
  spec.build = [res]() {
    SpecCtx c("povray", 512);
    const int W = res;
    const int H = res;
    const int kNumSpheres = 5;
    const uint32_t kSpheres = 1u << 20;   // cx,cy,cz,r,reflect per sphere (5 f64)
    const uint32_t kImage = kSpheres + 8 * 5 * kNumSpheres;
    c.mb().AddData(320, std::string("/image.pgm"));

    // sphere_hit(ray 6 f64 via globals? pass via memory) — signature:
    // hit_t(ox,oy,oz,dx,dy,dz, sphere_index) -> t (1e30 = miss).
    auto& hit = c.mb().AddInternalFunction(
        "sphere_hit", {kF64, kF64, kF64, kF64, kF64, kF64, kI32}, {kF64});
    {
      auto& f = hit;
      uint32_t cx = f.AddLocal(kF64);
      uint32_t cy = f.AddLocal(kF64);
      uint32_t cz = f.AddLocal(kF64);
      uint32_t rr = f.AddLocal(kF64);
      uint32_t b = f.AddLocal(kF64);
      uint32_t cc = f.AddLocal(kF64);
      uint32_t disc = f.AddLocal(kF64);
      uint32_t t = f.AddLocal(kF64);
      auto sph = [&](int field) {
        f.LocalGet(6).I32Const(40).I32Mul().I32Const(8 * field).I32Add()
            .I32Const(static_cast<int32_t>(kSpheres)).I32Add();
        f.F64Load(0);
      };
      sph(0);
      f.LocalGet(0).F64Sub().LocalSet(cx);  // cx = sphere.x - ox
      sph(1);
      f.LocalGet(1).F64Sub().LocalSet(cy);
      sph(2);
      f.LocalGet(2).F64Sub().LocalSet(cz);
      sph(3);
      f.LocalSet(rr);
      // b = dot(d, oc); cc = |oc|^2 - r^2; disc = b^2 - cc.
      f.LocalGet(3).LocalGet(cx).F64Mul();
      f.LocalGet(4).LocalGet(cy).F64Mul().F64Add();
      f.LocalGet(5).LocalGet(cz).F64Mul().F64Add().LocalSet(b);
      f.LocalGet(cx).LocalGet(cx).F64Mul();
      f.LocalGet(cy).LocalGet(cy).F64Mul().F64Add();
      f.LocalGet(cz).LocalGet(cz).F64Mul().F64Add();
      f.LocalGet(rr).LocalGet(rr).F64Mul().F64Sub().LocalSet(cc);
      f.LocalGet(b).LocalGet(b).F64Mul().LocalGet(cc).F64Sub().LocalSet(disc);
      f.LocalGet(disc).F64Const(0.0).F64Lt();
      f.If([&] { f.F64Const(1e30).Return(); });
      f.LocalGet(b).LocalGet(disc).F64Sqrt().F64Sub().LocalSet(t);
      f.LocalGet(t).F64Const(0.001).F64Lt();
      f.If([&] { f.F64Const(1e30).Return(); });
      f.LocalGet(t);
    }

    // trace(ox..dz, depth) -> brightness [0,1]: nearest sphere or plane,
    // diffuse light + recursive reflection.
    auto& trace = c.mb().AddInternalFunction(
        "trace_ray", {kF64, kF64, kF64, kF64, kF64, kF64, kI32}, {kF64});
    {
      auto& f = trace;
      uint32_t best_t = f.AddLocal(kF64);
      uint32_t best_s = f.AddLocal(kI32);
      uint32_t si = f.AddLocal(kI32);
      uint32_t t = f.AddLocal(kF64);
      uint32_t px = f.AddLocal(kF64);
      uint32_t py = f.AddLocal(kF64);
      uint32_t pz = f.AddLocal(kF64);
      uint32_t nx = f.AddLocal(kF64);
      uint32_t ny = f.AddLocal(kF64);
      uint32_t nz = f.AddLocal(kF64);
      uint32_t nl = f.AddLocal(kF64);
      uint32_t diff = f.AddLocal(kF64);
      uint32_t refl = f.AddLocal(kF64);
      uint32_t dn = f.AddLocal(kF64);
      f.F64Const(1e30).LocalSet(best_t);
      f.I32Const(-1).LocalSet(best_s);
      f.ForI32(si, 0, kNumSpheres, 1, [&] {
        f.LocalGet(0).LocalGet(1).LocalGet(2).LocalGet(3).LocalGet(4).LocalGet(5);
        f.LocalGet(si);
        f.Call(hit.index()).LocalSet(t);
        f.LocalGet(t).LocalGet(best_t).F64Lt();
        f.If([&] {
          f.LocalGet(t).LocalSet(best_t);
          f.LocalGet(si).LocalSet(best_s);
        });
      });
      // Ground plane y = -1 when dy < 0.
      f.LocalGet(4).F64Const(-1e-6).F64Lt();
      f.If([&] {
        // t = (-1 - oy) / dy
        f.F64Const(-1.0).LocalGet(1).F64Sub().LocalGet(4).F64Div().LocalSet(t);
        f.LocalGet(t).F64Const(0.001).F64Gt();
        f.LocalGet(t).LocalGet(best_t).F64Lt().I32And();
        f.If([&] {
          f.LocalGet(t).LocalSet(best_t);
          f.I32Const(-2).LocalSet(best_s);  // plane marker
        });
      });
      f.LocalGet(best_s).I32Const(-1).I32Eq();
      f.If([&] {
        // Sky gradient by dy.
        f.F64Const(0.25).LocalGet(4).F64Const(0.25).F64Mul().F64Add().Return();
      });
      // Hit point.
      f.LocalGet(0).LocalGet(3).LocalGet(best_t).F64Mul().F64Add().LocalSet(px);
      f.LocalGet(1).LocalGet(4).LocalGet(best_t).F64Mul().F64Add().LocalSet(py);
      f.LocalGet(2).LocalGet(5).LocalGet(best_t).F64Mul().F64Add().LocalSet(pz);
      f.LocalGet(best_s).I32Const(-2).I32Eq();
      f.IfElse(
          [&] {
            // Plane: checkerboard diffuse, normal up.
            f.F64Const(0.0).LocalSet(nx);
            f.F64Const(1.0).LocalSet(ny);
            f.F64Const(0.0).LocalSet(nz);
            // checker = (floor(px) + floor(pz)) & 1
            f.LocalGet(px).Op(Opcode::kF64Floor).I32TruncF64S();
            f.LocalGet(pz).Op(Opcode::kF64Floor).I32TruncF64S();
            f.I32Add().I32Const(1).I32And();
            f.IfElse(ValType::kF64, [&] { f.F64Const(0.85); }, [&] { f.F64Const(0.25); });
            f.LocalSet(diff);
            f.F64Const(0.15).LocalSet(refl);
          },
          [&] {
            // Sphere: normal = (p - c)/r; diffuse 0.6; reflect from table.
            auto sph = [&](int field) {
              f.LocalGet(best_s).I32Const(40).I32Mul().I32Const(8 * field).I32Add()
                  .I32Const(static_cast<int32_t>(kSpheres)).I32Add();
              f.F64Load(0);
            };
            f.LocalGet(px);
            sph(0);
            f.F64Sub().LocalSet(nx);
            f.LocalGet(py);
            sph(1);
            f.F64Sub().LocalSet(ny);
            f.LocalGet(pz);
            sph(2);
            f.F64Sub().LocalSet(nz);
            f.LocalGet(nx).LocalGet(nx).F64Mul();
            f.LocalGet(ny).LocalGet(ny).F64Mul().F64Add();
            f.LocalGet(nz).LocalGet(nz).F64Mul().F64Add().F64Sqrt().LocalSet(nl);
            f.LocalGet(nx).LocalGet(nl).F64Div().LocalSet(nx);
            f.LocalGet(ny).LocalGet(nl).F64Div().LocalSet(ny);
            f.LocalGet(nz).LocalGet(nl).F64Div().LocalSet(nz);
            f.F64Const(0.6).LocalSet(diff);
            sph(4);
            f.LocalSet(refl);
          });
      // Light from direction L = normalize(0.5, 1, -0.3) (precomputed).
      const double lx = 0.4170288281141495;
      const double ly = 0.834057656228299;
      const double lz = -0.2502172968684897;
      f.LocalGet(nx).F64Const(lx).F64Mul();
      f.LocalGet(ny).F64Const(ly).F64Mul().F64Add();
      f.LocalGet(nz).F64Const(lz).F64Mul().F64Add().LocalSet(nl);
      f.LocalGet(nl).F64Const(0.0).F64Lt();
      f.If([&] { f.F64Const(0.0).LocalSet(nl); });
      f.LocalGet(diff).LocalGet(nl).F64Mul().LocalSet(diff);
      // Reflection.
      f.LocalGet(6).I32Const(0).I32GtS();
      f.LocalGet(refl).F64Const(0.01).F64Gt().I32And();
      f.If([&] {
        // r = d - 2(d.n)n
        f.LocalGet(3).LocalGet(nx).F64Mul();
        f.LocalGet(4).LocalGet(ny).F64Mul().F64Add();
        f.LocalGet(5).LocalGet(nz).F64Mul().F64Add().LocalSet(dn);
        f.LocalGet(px).LocalGet(py).LocalGet(pz);
        f.LocalGet(3).F64Const(2.0).LocalGet(dn).F64Mul().LocalGet(nx).F64Mul().F64Sub();
        f.LocalGet(4).F64Const(2.0).LocalGet(dn).F64Mul().LocalGet(ny).F64Mul().F64Sub();
        f.LocalGet(5).F64Const(2.0).LocalGet(dn).F64Mul().LocalGet(nz).F64Mul().F64Sub();
        f.LocalGet(6).I32Const(1).I32Sub();
        f.Call(trace.index());
        f.LocalGet(refl).F64Mul();
        f.LocalGet(diff).F64Add().LocalSet(diff);
      });
      f.LocalGet(diff);
    }

    c.BeginMain();
    auto& f = c.f();
    uint32_t x = f.AddLocal(kI32);
    uint32_t y = f.AddLocal(kI32);
    uint32_t img_fd = f.AddLocal(kI32);
    uint32_t bright = f.AddLocal(kF64);
    uint32_t total = f.AddLocal(kI32);
    uint32_t dxl = f.AddLocal(kF64);
    uint32_t dyl = f.AddLocal(kF64);
    uint32_t dl = f.AddLocal(kF64);
    // Scene: 5 spheres with deterministic placement.
    for (int si = 0; si < kNumSpheres; si++) {
      double cx = -2.0 + si * 1.1;
      double cy = 0.2 + 0.3 * ((si * 7) % 3);
      double cz = 3.0 + 0.8 * si;
      double r = 0.5 + 0.1 * (si % 3);
      double refl = 0.2 + 0.12 * si;
      double vals[5] = {cx, cy, cz, r, refl};
      for (int k = 0; k < 5; k++) {
        f.I32Const(static_cast<int32_t>(kSpheres + 40 * si + 8 * k));
        f.F64Const(vals[k]);
        f.F64Store(0);
      }
    }
    f.I32Const(320).I32Const(0x241).Call(c.lib().sys.open).LocalSet(img_fd);
    f.ForI32(y, 0, H, 1, [&] {
      f.ForI32(x, 0, W, 1, [&] {
        // Camera ray through pixel (normalized; camera at origin).
        f.LocalGet(x).F64ConvertI32S().F64Const(static_cast<double>(W) / 2).F64Sub()
            .F64Const(static_cast<double>(W)).F64Div().LocalSet(dxl);
        f.F64Const(0.5).LocalGet(y).F64ConvertI32S().F64Const(static_cast<double>(H)).F64Div()
            .F64Sub().LocalSet(dyl);
        // normalize (dx, dy, 1)
        f.LocalGet(dxl).LocalGet(dxl).F64Mul();
        f.LocalGet(dyl).LocalGet(dyl).F64Mul().F64Add();
        f.F64Const(1.0).F64Add().F64Sqrt().LocalSet(dl);
        f.F64Const(0.0).F64Const(0.0).F64Const(0.0);
        f.LocalGet(dxl).LocalGet(dl).F64Div();
        f.LocalGet(dyl).LocalGet(dl).F64Div();
        f.F64Const(1.0).LocalGet(dl).F64Div();
        f.I32Const(3);  // reflection depth
        f.Call(trace.index()).LocalSet(bright);
        f.LocalGet(bright).F64Const(1.0).F64Gt();
        f.If([&] { f.F64Const(1.0).LocalSet(bright); });
        // Pixel byte.
        uint32_t pix = f.AddLocal(kI32);
        f.LocalGet(bright).F64Const(255.0).F64Mul().I32TruncF64S().LocalSet(pix);
        f.I32Const(static_cast<int32_t>(kImage));
        f.LocalGet(y).I32Const(W).I32Mul().LocalGet(x).I32Add().I32Add();
        f.LocalGet(pix);
        f.I32Store8(0);
        f.LocalGet(total).LocalGet(pix).I32Add().LocalSet(total);
      });
    });
    f.LocalGet(img_fd).I32Const(static_cast<int32_t>(kImage)).I32Const(W * H);
    f.Call(c.lib().sys.write).Drop();
    f.LocalGet(img_fd).Call(c.lib().sys.close).Drop();
    c.PrintResult("brightness_sum", total);
    c.EndMain();
    return c.mb().Build();
  };
  return spec;
}

// 482.sphinx3 — speech-recognition regime: GMM log-likelihood evaluation
// (dense dot products) followed by a Viterbi pass over an HMM.
WorkloadSpec SpecSphinx3(int scale) {
  WorkloadSpec spec;
  spec.name = "482.sphinx3";
  spec.output_files = {"/out.txt"};
  int frames = 60 * scale;
  spec.build = [frames]() {
    SpecCtx c("sphinx3", 512);
    const int T = frames;
    const int S = 24;   // HMM states
    const int M = 4;    // mixtures per state
    const int D = 13;   // feature dimension
    const uint32_t kFeat = 1u << 20;                    // T x D
    const uint32_t kMean = kFeat + 8u * T * D;          // S*M x D
    const uint32_t kVar = kMean + 8u * S * M * D;       // S*M x D (inverse vars)
    const uint32_t kScore = kVar + 8u * S * M * D;      // T x S emission scores
    const uint32_t kDp = kScore + 8u * T * S;           // Viterbi scores (2 rows)

    // gmm_score(t, s) -> max-mixture log likelihood (negative quadratic).
    auto& gmm = c.mb().AddInternalFunction("gmm_score", {kI32, kI32}, {kF64});
    {
      auto& f = gmm;
      uint32_t mix = f.AddLocal(kI32);
      uint32_t d = f.AddLocal(kI32);
      uint32_t acc = f.AddLocal(kF64);
      uint32_t bestv = f.AddLocal(kF64);
      uint32_t diff = f.AddLocal(kF64);
      f.F64Const(-1e30).LocalSet(bestv);
      f.ForI32(mix, 0, M, 1, [&] {
        f.F64Const(0.0).LocalSet(acc);
        f.ForI32(d, 0, D, 1, [&] {
          // diff = feat[t][d] - mean[(s*M+mix)][d]
          f.LocalGet(0).I32Const(D).I32Mul().LocalGet(d).I32Add().I32Const(3).I32Shl()
              .I32Const(static_cast<int32_t>(kFeat)).I32Add().F64Load(0);
          f.LocalGet(1).I32Const(M).I32Mul().LocalGet(mix).I32Add().I32Const(D).I32Mul()
              .LocalGet(d).I32Add().I32Const(3).I32Shl()
              .I32Const(static_cast<int32_t>(kMean)).I32Add().F64Load(0);
          f.F64Sub().LocalSet(diff);
          // acc -= diff^2 * invvar
          f.LocalGet(acc);
          f.LocalGet(diff).LocalGet(diff).F64Mul();
          f.LocalGet(1).I32Const(M).I32Mul().LocalGet(mix).I32Add().I32Const(D).I32Mul()
              .LocalGet(d).I32Add().I32Const(3).I32Shl()
              .I32Const(static_cast<int32_t>(kVar)).I32Add().F64Load(0);
          f.F64Mul().F64Sub().LocalSet(acc);
        });
        f.LocalGet(acc).LocalGet(bestv).F64Gt();
        f.If([&] { f.LocalGet(acc).LocalSet(bestv); });
      });
      f.LocalGet(bestv);
    }

    c.BeginMain();
    auto& f = c.f();
    uint32_t t = f.AddLocal(kI32);
    uint32_t s = f.AddLocal(kI32);
    uint32_t d = f.AddLocal(kI32);
    uint32_t prev = f.AddLocal(kI32);
    uint32_t bestp = f.AddLocal(kF64);
    uint32_t cand = f.AddLocal(kF64);
    // Synthesize features / means / inverse variances.
    f.ForI32(t, 0, T, 1, [&] {
      f.ForI32(d, 0, D, 1, [&] {
        f.LocalGet(t).I32Const(D).I32Mul().LocalGet(d).I32Add().I32Const(3).I32Shl()
            .I32Const(static_cast<int32_t>(kFeat)).I32Add();
        f.LocalGet(t).I32Const(17).I32Mul().LocalGet(d).I32Const(7).I32Mul().I32Add()
            .I32Const(61).I32RemS().F64ConvertI32S().F64Const(61.0).F64Div();
        f.F64Store(0);
      });
    });
    f.ForI32(s, 0, S * M, 1, [&] {
      f.ForI32(d, 0, D, 1, [&] {
        f.LocalGet(s).I32Const(D).I32Mul().LocalGet(d).I32Add().I32Const(3).I32Shl()
            .I32Const(static_cast<int32_t>(kMean)).I32Add();
        f.LocalGet(s).I32Const(11).I32Mul().LocalGet(d).I32Const(5).I32Mul().I32Add()
            .I32Const(53).I32RemS().F64ConvertI32S().F64Const(53.0).F64Div();
        f.F64Store(0);
        f.LocalGet(s).I32Const(D).I32Mul().LocalGet(d).I32Add().I32Const(3).I32Shl()
            .I32Const(static_cast<int32_t>(kVar)).I32Add();
        f.LocalGet(s).LocalGet(d).I32Add().I32Const(7).I32RemS().I32Const(1).I32Add()
            .F64ConvertI32S().F64Const(4.0).F64Div();
        f.F64Store(0);
      });
    });
    // Emission scores.
    f.ForI32(t, 0, T, 1, [&] {
      f.ForI32(s, 0, S, 1, [&] {
        f.LocalGet(t).I32Const(S).I32Mul().LocalGet(s).I32Add().I32Const(3).I32Shl()
            .I32Const(static_cast<int32_t>(kScore)).I32Add();
        f.LocalGet(t).LocalGet(s).Call(gmm.index());
        f.F64Store(0);
      });
    });
    // Viterbi: left-to-right HMM, transitions stay or advance.
    auto dp_addr = [&](uint32_t row_imm, uint32_t col_local) {
      f.LocalGet(col_local).I32Const(3).I32Shl()
          .I32Const(static_cast<int32_t>(kDp + 8 * S * row_imm)).I32Add();
    };
    f.ForI32(s, 0, S, 1, [&] {
      dp_addr(0, s);
      f.F64Const(-1e30);
      f.F64Store(0);
    });
    uint32_t z = f.AddLocal(kI32);
    f.I32Const(0).LocalSet(z);
    dp_addr(0, z);
    f.I32Const(0).I32Const(S).I32Mul().I32Const(0).I32Add().I32Const(3).I32Shl()
        .I32Const(static_cast<int32_t>(kScore)).I32Add().F64Load(0);
    f.F64Store(0);
    f.ForI32(t, 1, T, 1, [&] {
      f.ForI32(s, 0, S, 1, [&] {
        // best of stay / advance.
        dp_addr(0, s);
        f.F64Load(0).F64Const(-0.105).F64Add().LocalSet(bestp);  // stay penalty
        f.LocalGet(s).I32Const(0).I32GtS();
        f.If([&] {
          f.LocalGet(s).I32Const(1).I32Sub().LocalSet(prev);
          dp_addr(0, prev);
          f.F64Load(0).F64Const(-0.223).F64Add().LocalSet(cand);  // advance
          f.LocalGet(cand).LocalGet(bestp).F64Gt();
          f.If([&] { f.LocalGet(cand).LocalSet(bestp); });
        });
        dp_addr(1, s);
        f.LocalGet(bestp);
        f.LocalGet(t).I32Const(S).I32Mul().LocalGet(s).I32Add().I32Const(3).I32Shl()
            .I32Const(static_cast<int32_t>(kScore)).I32Add().F64Load(0);
        f.F64Add();
        f.F64Store(0);
      });
      // Copy row 1 -> row 0.
      f.ForI32(s, 0, S, 1, [&] {
        dp_addr(0, s);
        dp_addr(1, s);
        f.F64Load(0);
        f.F64Store(0);
      });
    });
    uint32_t final_score = f.AddLocal(kF64);
    uint32_t last = f.AddLocal(kI32);
    f.I32Const(S - 1).LocalSet(last);
    dp_addr(0, last);
    f.F64Load(0).LocalSet(final_score);
    c.PrintResultF64("viterbi", final_score);
    c.EndMain();
    return c.mb().Build();
  };
  return spec;
}

}  // namespace nsf
