// Versioned binary serialization for CompiledArtifact (src/codegen/artifact.h)
// — the wire format of the Engine's disk code-cache tier.
//
// Container layout:
//
//   "NSFA"            magic (4 bytes)
//   version           fixed u32 (kArtifactFormatVersion)
//   source_fp         fixed u64: build-time fingerprint of src/ (generated
//                     by cmake/nsf_build_id.cmake) — artifacts from a
//                     binary built from different compiler sources are
//                     rejected, so a persistent cache can never serve stale
//                     machine code after a codegen change that nobody
//                     version-bumped
//   payload_checksum  fixed u64: FNV-1a over every byte after this field
//   payload           module bytes (the Wasm binary encoding), provenance,
//                     compile stats/maps, and the MProgram in structured form
//
// Deserialize rejects (returns false, never crashes) on: short input, bad
// magic, version or source-fingerprint mismatch, checksum mismatch,
// truncated or malformed payload, a payload whose embedded module fails to
// decode, and decoded index fields that would write out of bounds at machine
// construction (layout permutation, global-init slots, entry/table function
// indices). The artifact is relocatable: code_base / instr_offsets /
// total_code_bytes are not stored; DeserializeArtifact re-runs
// MProgram::Link(), which is deterministic, so a round-tripped artifact is
// byte-identical when serialized again.
#ifndef SRC_WASM_ARTIFACT_CODEC_H_
#define SRC_WASM_ARTIFACT_CODEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/codegen/artifact.h"

namespace nsf {

inline constexpr uint32_t kArtifactFormatVersion = 1;

// Encodes `artifact` (which must be ok(): failed compiles are not artifacts).
std::vector<uint8_t> SerializeArtifact(const CompiledArtifact& artifact);

// Decodes `bytes` into *out. On failure returns false and sets *error to a
// human-readable reason; *out is left in an unspecified but destructible
// state. Tolerant of arbitrary garbage input by construction: every read is
// bounds-checked and the checksum gates the structured decode.
bool DeserializeArtifact(const std::vector<uint8_t>& bytes, CompiledArtifact* out,
                         std::string* error);

}  // namespace nsf

#endif  // SRC_WASM_ARTIFACT_CODEC_H_
