#include "src/wasm/types.h"

#include "src/support/str.h"

namespace nsf {

const char* ValTypeName(ValType t) {
  switch (t) {
    case ValType::kI32:
      return "i32";
    case ValType::kI64:
      return "i64";
    case ValType::kF32:
      return "f32";
    case ValType::kF64:
      return "f64";
  }
  return "<bad>";
}

bool IsValidValType(uint8_t byte) {
  return byte == 0x7f || byte == 0x7e || byte == 0x7d || byte == 0x7c;
}

std::string FuncTypeToString(const FuncType& type) {
  std::string s = "(";
  for (size_t i = 0; i < type.params.size(); i++) {
    if (i != 0) {
      s += ", ";
    }
    s += ValTypeName(type.params[i]);
  }
  s += ") -> (";
  for (size_t i = 0; i < type.results.size(); i++) {
    if (i != 0) {
      s += ", ";
    }
    s += ValTypeName(type.results[i]);
  }
  s += ")";
  return s;
}

}  // namespace nsf
