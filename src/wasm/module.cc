#include "src/wasm/module.h"

#include <cstring>

namespace nsf {

Instr Instr::ConstF32(float v) {
  Instr i;
  i.op = Opcode::kF32Const;
  uint32_t bits;
  std::memcpy(&bits, &v, 4);
  i.imm = bits;
  return i;
}

Instr Instr::ConstF64(double v) {
  Instr i;
  i.op = Opcode::kF64Const;
  uint64_t bits;
  std::memcpy(&bits, &v, 8);
  i.imm = bits;
  return i;
}

float Instr::AsF32() const {
  uint32_t bits = static_cast<uint32_t>(imm);
  float f;
  std::memcpy(&f, &bits, 4);
  return f;
}

double Instr::AsF64() const {
  double d;
  std::memcpy(&d, &imm, 8);
  return d;
}

uint32_t Module::NumImportedFuncs() const {
  uint32_t n = 0;
  for (const Import& imp : imports) {
    if (imp.kind == ExternalKind::kFunc) {
      n++;
    }
  }
  return n;
}

uint32_t Module::NumImportedGlobals() const {
  uint32_t n = 0;
  for (const Import& imp : imports) {
    if (imp.kind == ExternalKind::kGlobal) {
      n++;
    }
  }
  return n;
}

const FuncType& Module::FuncTypeOf(uint32_t func_index) const {
  uint32_t imported = NumImportedFuncs();
  if (func_index < imported) {
    return types[FuncImportOf(func_index).type_index];
  }
  return types[functions[func_index - imported].type_index];
}

const Import& Module::FuncImportOf(uint32_t func_index) const {
  uint32_t n = 0;
  for (const Import& imp : imports) {
    if (imp.kind == ExternalKind::kFunc) {
      if (n == func_index) {
        return imp;
      }
      n++;
    }
  }
  // Callers must pass a valid imported function index; returning the last
  // import would mask bugs, so fail loudly.
  static const Import kBad{};
  return kBad;
}

GlobalType Module::GlobalTypeOf(uint32_t global_index) const {
  uint32_t n = 0;
  for (const Import& imp : imports) {
    if (imp.kind == ExternalKind::kGlobal) {
      if (n == global_index) {
        return imp.global_type;
      }
      n++;
    }
  }
  return globals[global_index - n].type;
}

const Export* Module::FindExport(const std::string& name, ExternalKind kind) const {
  for (const Export& e : exports) {
    if (e.kind == kind && e.name == name) {
      return &e;
    }
  }
  return nullptr;
}

}  // namespace nsf
