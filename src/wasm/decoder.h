// Parses the WebAssembly MVP binary format into a Module.
#ifndef SRC_WASM_DECODER_H_
#define SRC_WASM_DECODER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/wasm/module.h"

namespace nsf {

struct DecodeResult {
  bool ok = false;
  std::string error;   // human-readable, with byte offset, when !ok
  Module module;
};

// Decodes a binary module. Performs syntactic checks only (magic/version,
// section ordering, LEB well-formedness, known opcodes); semantic checks are
// the validator's job.
DecodeResult DecodeModule(const uint8_t* data, size_t size);
DecodeResult DecodeModule(const std::vector<uint8_t>& bytes);

}  // namespace nsf

#endif  // SRC_WASM_DECODER_H_
