#include "src/wasm/wat.h"

#include "src/support/str.h"

namespace nsf {

namespace {

std::string BlockTypeToWat(int64_t block_type) {
  if (block_type == kVoidBlockType) {
    return "";
  }
  return StrFormat(" (result %s)",
                   ValTypeName(static_cast<ValType>(static_cast<uint8_t>(block_type & 0x7f))));
}

}  // namespace

std::string InstrToWat(const Instr& instr) {
  std::string s = OpcodeName(instr.op);
  switch (OpcodeImmKind(instr.op)) {
    case ImmKind::kNone:
      break;
    case ImmKind::kBlockType:
      s += BlockTypeToWat(instr.block_type);
      break;
    case ImmKind::kLabel:
    case ImmKind::kFunc:
    case ImmKind::kLocal:
    case ImmKind::kGlobal:
      s += StrFormat(" %u", instr.a);
      break;
    case ImmKind::kCallInd:
      s += StrFormat(" (type %u)", instr.a);
      break;
    case ImmKind::kLabelTable: {
      for (uint32_t t : instr.table) {
        s += StrFormat(" %u", t);
      }
      break;
    }
    case ImmKind::kMem:
      if (instr.b != 0) {
        s += StrFormat(" offset=%u", instr.b);
      }
      break;
    case ImmKind::kMemIdx:
      break;
    case ImmKind::kI32:
      s += StrFormat(" %d", instr.AsI32());
      break;
    case ImmKind::kI64:
      s += StrFormat(" %lld", static_cast<long long>(instr.AsI64()));
      break;
    case ImmKind::kF32:
      s += StrFormat(" %g", static_cast<double>(instr.AsF32()));
      break;
    case ImmKind::kF64:
      s += StrFormat(" %g", instr.AsF64());
      break;
  }
  return s;
}

std::string ModuleToWat(const Module& module) {
  std::string out = "(module";
  if (!module.name.empty()) {
    out += " $" + module.name;
  }
  out += "\n";
  for (size_t i = 0; i < module.types.size(); i++) {
    out += StrFormat("  (type %zu %s)\n", i, FuncTypeToString(module.types[i]).c_str());
  }
  for (const Import& imp : module.imports) {
    const char* kind = "";
    switch (imp.kind) {
      case ExternalKind::kFunc:
        kind = "func";
        break;
      case ExternalKind::kTable:
        kind = "table";
        break;
      case ExternalKind::kMemory:
        kind = "memory";
        break;
      case ExternalKind::kGlobal:
        kind = "global";
        break;
    }
    out += StrFormat("  (import \"%s\" \"%s\" (%s))\n", imp.module.c_str(), imp.name.c_str(),
                     kind);
  }
  for (const MemorySec& m : module.memories) {
    if (m.limits.max.has_value()) {
      out += StrFormat("  (memory %u %u)\n", m.limits.min, *m.limits.max);
    } else {
      out += StrFormat("  (memory %u)\n", m.limits.min);
    }
  }
  for (const Table& t : module.tables) {
    out += StrFormat("  (table %u funcref)\n", t.limits.min);
  }
  for (size_t i = 0; i < module.globals.size(); i++) {
    const Global& g = module.globals[i];
    out += StrFormat("  (global %zu %s%s (%s))\n", i, g.type.mut ? "mut " : "",
                     ValTypeName(g.type.type), InstrToWat(g.init).c_str());
  }
  uint32_t base = module.NumImportedFuncs();
  for (size_t i = 0; i < module.functions.size(); i++) {
    const Function& f = module.functions[i];
    out += StrFormat("  (func %u", base + static_cast<uint32_t>(i));
    if (!f.debug_name.empty()) {
      out += " $" + f.debug_name;
    }
    out += " " + FuncTypeToString(module.types[f.type_index]);
    if (!f.locals.empty()) {
      out += " (local";
      for (ValType t : f.locals) {
        out += StrFormat(" %s", ValTypeName(t));
      }
      out += ")";
    }
    out += "\n";
    int indent = 2;
    for (const Instr& instr : f.body) {
      if (instr.op == Opcode::kEnd || instr.op == Opcode::kElse) {
        indent = indent > 2 ? indent - 1 : 2;
      }
      for (int s = 0; s < indent; s++) {
        out += "  ";
      }
      out += InstrToWat(instr) + "\n";
      if (instr.op == Opcode::kBlock || instr.op == Opcode::kLoop || instr.op == Opcode::kIf ||
          instr.op == Opcode::kElse) {
        indent++;
      }
    }
    out += "  )\n";
  }
  for (const Export& e : module.exports) {
    const char* kind = "";
    switch (e.kind) {
      case ExternalKind::kFunc:
        kind = "func";
        break;
      case ExternalKind::kTable:
        kind = "table";
        break;
      case ExternalKind::kMemory:
        kind = "memory";
        break;
      case ExternalKind::kGlobal:
        kind = "global";
        break;
    }
    out += StrFormat("  (export \"%s\" (%s %u))\n", e.name.c_str(), kind, e.index);
  }
  out += ")\n";
  return out;
}

}  // namespace nsf
