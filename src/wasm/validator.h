// Semantic validation of a decoded Module per the WebAssembly MVP spec:
// index bounds, import/export sanity, and full function-body type checking
// using the typed control-stack algorithm (including unreachable-code typing).
#ifndef SRC_WASM_VALIDATOR_H_
#define SRC_WASM_VALIDATOR_H_

#include <string>

#include "src/wasm/module.h"

namespace nsf {

struct ValidationResult {
  bool ok = false;
  std::string error;  // "func <i>: <message>" for body errors
};

ValidationResult ValidateModule(const Module& module);

}  // namespace nsf

#endif  // SRC_WASM_VALIDATOR_H_
