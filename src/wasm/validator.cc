#include "src/wasm/validator.h"

#include <optional>

#include "src/support/str.h"

namespace nsf {

namespace {

// Signature metadata for the fixed-arity numeric opcodes, derived from the
// opcode value ranges of the MVP encoding.
struct OpSig {
  int arity = 0;               // number of popped operands
  ValType in = ValType::kI32;  // operand type (both operands share it)
  ValType out = ValType::kI32;
  bool has_out = true;
};

std::optional<OpSig> NumericSig(Opcode op) {
  uint8_t b = static_cast<uint8_t>(op);
  auto sig = [](int arity, ValType in, ValType out) {
    OpSig s;
    s.arity = arity;
    s.in = in;
    s.out = out;
    return s;
  };
  // Comparisons.
  if (b == 0x45) return sig(1, ValType::kI32, ValType::kI32);                 // i32.eqz
  if (b >= 0x46 && b <= 0x4f) return sig(2, ValType::kI32, ValType::kI32);    // i32 cmp
  if (b == 0x50) return sig(1, ValType::kI64, ValType::kI32);                 // i64.eqz
  if (b >= 0x51 && b <= 0x5a) return sig(2, ValType::kI64, ValType::kI32);    // i64 cmp
  if (b >= 0x5b && b <= 0x60) return sig(2, ValType::kF32, ValType::kI32);    // f32 cmp
  if (b >= 0x61 && b <= 0x66) return sig(2, ValType::kF64, ValType::kI32);    // f64 cmp
  // Integer unary / binary.
  if (b >= 0x67 && b <= 0x69) return sig(1, ValType::kI32, ValType::kI32);    // clz..popcnt
  if (b >= 0x6a && b <= 0x78) return sig(2, ValType::kI32, ValType::kI32);
  if (b >= 0x79 && b <= 0x7b) return sig(1, ValType::kI64, ValType::kI64);
  if (b >= 0x7c && b <= 0x8a) return sig(2, ValType::kI64, ValType::kI64);
  // Float unary / binary.
  if (b >= 0x8b && b <= 0x91) return sig(1, ValType::kF32, ValType::kF32);
  if (b >= 0x92 && b <= 0x98) return sig(2, ValType::kF32, ValType::kF32);
  if (b >= 0x99 && b <= 0x9f) return sig(1, ValType::kF64, ValType::kF64);
  if (b >= 0xa0 && b <= 0xa6) return sig(2, ValType::kF64, ValType::kF64);
  // Conversions.
  switch (op) {
    case Opcode::kI32WrapI64:
      return sig(1, ValType::kI64, ValType::kI32);
    case Opcode::kI32TruncF32S:
    case Opcode::kI32TruncF32U:
      return sig(1, ValType::kF32, ValType::kI32);
    case Opcode::kI32TruncF64S:
    case Opcode::kI32TruncF64U:
      return sig(1, ValType::kF64, ValType::kI32);
    case Opcode::kI64ExtendI32S:
    case Opcode::kI64ExtendI32U:
      return sig(1, ValType::kI32, ValType::kI64);
    case Opcode::kI64TruncF32S:
    case Opcode::kI64TruncF32U:
      return sig(1, ValType::kF32, ValType::kI64);
    case Opcode::kI64TruncF64S:
    case Opcode::kI64TruncF64U:
      return sig(1, ValType::kF64, ValType::kI64);
    case Opcode::kF32ConvertI32S:
    case Opcode::kF32ConvertI32U:
      return sig(1, ValType::kI32, ValType::kF32);
    case Opcode::kF32ConvertI64S:
    case Opcode::kF32ConvertI64U:
      return sig(1, ValType::kI64, ValType::kF32);
    case Opcode::kF32DemoteF64:
      return sig(1, ValType::kF64, ValType::kF32);
    case Opcode::kF64ConvertI32S:
    case Opcode::kF64ConvertI32U:
      return sig(1, ValType::kI32, ValType::kF64);
    case Opcode::kF64ConvertI64S:
    case Opcode::kF64ConvertI64U:
      return sig(1, ValType::kI64, ValType::kF64);
    case Opcode::kF64PromoteF32:
      return sig(1, ValType::kF32, ValType::kF64);
    case Opcode::kI32ReinterpretF32:
      return sig(1, ValType::kF32, ValType::kI32);
    case Opcode::kI64ReinterpretF64:
      return sig(1, ValType::kF64, ValType::kI64);
    case Opcode::kF32ReinterpretI32:
      return sig(1, ValType::kI32, ValType::kF32);
    case Opcode::kF64ReinterpretI64:
      return sig(1, ValType::kI64, ValType::kF64);
    default:
      return std::nullopt;
  }
}

// Memory-access metadata: value type and natural width (bytes).
struct MemSig {
  ValType type;
  uint32_t width;
  bool is_store;
};

std::optional<MemSig> MemAccessSig(Opcode op) {
  switch (op) {
    case Opcode::kI32Load: return MemSig{ValType::kI32, 4, false};
    case Opcode::kI64Load: return MemSig{ValType::kI64, 8, false};
    case Opcode::kF32Load: return MemSig{ValType::kF32, 4, false};
    case Opcode::kF64Load: return MemSig{ValType::kF64, 8, false};
    case Opcode::kI32Load8S:
    case Opcode::kI32Load8U: return MemSig{ValType::kI32, 1, false};
    case Opcode::kI32Load16S:
    case Opcode::kI32Load16U: return MemSig{ValType::kI32, 2, false};
    case Opcode::kI64Load8S:
    case Opcode::kI64Load8U: return MemSig{ValType::kI64, 1, false};
    case Opcode::kI64Load16S:
    case Opcode::kI64Load16U: return MemSig{ValType::kI64, 2, false};
    case Opcode::kI64Load32S:
    case Opcode::kI64Load32U: return MemSig{ValType::kI64, 4, false};
    case Opcode::kI32Store: return MemSig{ValType::kI32, 4, true};
    case Opcode::kI64Store: return MemSig{ValType::kI64, 8, true};
    case Opcode::kF32Store: return MemSig{ValType::kF32, 4, true};
    case Opcode::kF64Store: return MemSig{ValType::kF64, 8, true};
    case Opcode::kI32Store8: return MemSig{ValType::kI32, 1, true};
    case Opcode::kI32Store16: return MemSig{ValType::kI32, 2, true};
    case Opcode::kI64Store8: return MemSig{ValType::kI64, 1, true};
    case Opcode::kI64Store16: return MemSig{ValType::kI64, 2, true};
    case Opcode::kI64Store32: return MemSig{ValType::kI64, 4, true};
    default:
      return std::nullopt;
  }
}

// The spec's abstract type-checking machine.
class FuncValidator {
 public:
  FuncValidator(const Module& module, const Function& func)
      : module_(module), func_(func), func_type_(module.types[func.type_index]) {
    locals_ = func_type_.params;
    locals_.insert(locals_.end(), func.locals.begin(), func.locals.end());
  }

  bool Run(std::string* error) {
    // The implicit function block.
    PushCtrl(Opcode::kBlock, {}, func_type_.results);
    for (size_t pc = 0; pc < func_.body.size(); pc++) {
      if (!Step(func_.body[pc])) {
        *error = StrFormat("instr %zu (%s): %s", pc, OpcodeName(func_.body[pc].op),
                           error_.c_str());
        return false;
      }
      if (ctrl_.empty()) {
        if (pc + 1 != func_.body.size()) {
          *error = "instructions after final end";
          return false;
        }
        return true;
      }
    }
    *error = "function body missing final end";
    return false;
  }

 private:
  struct CtrlFrame {
    Opcode op;
    std::vector<ValType> start_types;  // label params (MVP: empty)
    std::vector<ValType> end_types;    // result types
    size_t height = 0;
    bool unreachable = false;
  };

  bool Fail(const std::string& msg) {
    error_ = msg;
    return false;
  }

  void PushVal(ValType t) { vals_.push_back(t); }

  bool PopVal(ValType expect, ValType* out = nullptr) {
    CtrlFrame& frame = ctrl_.back();
    if (vals_.size() == frame.height) {
      if (frame.unreachable) {
        if (out != nullptr) {
          *out = expect;
        }
        return true;  // polymorphic stack
      }
      return Fail("value stack underflow");
    }
    ValType actual = vals_.back();
    vals_.pop_back();
    if (out != nullptr) {
      *out = actual;
    }
    return true;
  }

  bool PopExpect(ValType expect) {
    CtrlFrame& frame = ctrl_.back();
    if (vals_.size() == frame.height) {
      if (frame.unreachable) {
        return true;
      }
      return Fail(StrFormat("value stack underflow (wanted %s)", ValTypeName(expect)));
    }
    ValType actual = vals_.back();
    vals_.pop_back();
    if (actual != expect) {
      return Fail(StrFormat("type mismatch: expected %s, got %s", ValTypeName(expect),
                            ValTypeName(actual)));
    }
    return true;
  }

  void PushCtrl(Opcode op, std::vector<ValType> in, std::vector<ValType> out) {
    CtrlFrame frame;
    frame.op = op;
    frame.start_types = std::move(in);
    frame.end_types = std::move(out);
    frame.height = vals_.size();
    ctrl_.push_back(std::move(frame));
    for (ValType t : ctrl_.back().start_types) {
      PushVal(t);
    }
  }

  bool PopCtrl(CtrlFrame* out) {
    if (ctrl_.empty()) {
      return Fail("control stack underflow");
    }
    CtrlFrame frame = ctrl_.back();
    // Result values must be on the stack exactly.
    for (auto it = frame.end_types.rbegin(); it != frame.end_types.rend(); ++it) {
      if (!PopExpect(*it)) {
        return false;
      }
    }
    if (vals_.size() != frame.height) {
      return Fail("values remain on stack at end of block");
    }
    ctrl_.pop_back();
    *out = std::move(frame);
    return true;
  }

  void SetUnreachable() {
    CtrlFrame& frame = ctrl_.back();
    vals_.resize(frame.height);
    frame.unreachable = true;
  }

  // Types a branch to relative depth `depth` must provide (MVP: loop labels
  // take nothing; block/if labels take the result types).
  bool LabelTypes(uint32_t depth, std::vector<ValType>* out) {
    if (depth >= ctrl_.size()) {
      return Fail(StrFormat("branch depth %u out of range", depth));
    }
    const CtrlFrame& frame = ctrl_[ctrl_.size() - 1 - depth];
    *out = frame.op == Opcode::kLoop ? frame.start_types : frame.end_types;
    return true;
  }

  bool PopLabelTypes(const std::vector<ValType>& types) {
    for (auto it = types.rbegin(); it != types.rend(); ++it) {
      if (!PopExpect(*it)) {
        return false;
      }
    }
    return true;
  }

  std::vector<ValType> BlockResults(int64_t block_type) {
    if (block_type == kVoidBlockType) {
      return {};
    }
    return {static_cast<ValType>(static_cast<uint8_t>(block_type & 0x7f))};
  }

  bool Step(const Instr& instr) {
    // Fixed-signature numeric ops first.
    if (auto sig = NumericSig(instr.op)) {
      for (int i = 0; i < sig->arity; i++) {
        if (!PopExpect(sig->in)) {
          return false;
        }
      }
      PushVal(sig->out);
      return true;
    }
    if (auto mem = MemAccessSig(instr.op)) {
      if (module_.memories.empty() && !HasImportedMemory()) {
        return Fail("memory access without memory");
      }
      if ((1u << instr.a) > mem->width) {
        return Fail("alignment larger than natural");
      }
      if (mem->is_store) {
        if (!PopExpect(mem->type)) {
          return false;
        }
        return PopExpect(ValType::kI32);
      }
      if (!PopExpect(ValType::kI32)) {
        return false;
      }
      PushVal(mem->type);
      return true;
    }
    switch (instr.op) {
      case Opcode::kNop:
        return true;
      case Opcode::kUnreachable:
        SetUnreachable();
        return true;
      case Opcode::kBlock:
      case Opcode::kLoop:
        PushCtrl(instr.op, {}, BlockResults(instr.block_type));
        return true;
      case Opcode::kIf:
        if (!PopExpect(ValType::kI32)) {
          return false;
        }
        PushCtrl(Opcode::kIf, {}, BlockResults(instr.block_type));
        return true;
      case Opcode::kElse: {
        CtrlFrame frame;
        if (!PopCtrl(&frame)) {
          return false;
        }
        if (frame.op != Opcode::kIf) {
          return Fail("else without if");
        }
        PushCtrl(Opcode::kElse, frame.start_types, frame.end_types);
        return true;
      }
      case Opcode::kEnd: {
        CtrlFrame frame;
        if (!PopCtrl(&frame)) {
          return false;
        }
        // An if without else must have empty result type (no value produced
        // on the fall-through path).
        if (frame.op == Opcode::kIf && !frame.end_types.empty()) {
          return Fail("if without else cannot yield a value");
        }
        for (ValType t : frame.end_types) {
          PushVal(t);
        }
        return true;
      }
      case Opcode::kBr: {
        std::vector<ValType> types;
        if (!LabelTypes(instr.a, &types) || !PopLabelTypes(types)) {
          return false;
        }
        SetUnreachable();
        return true;
      }
      case Opcode::kBrIf: {
        if (!PopExpect(ValType::kI32)) {
          return false;
        }
        std::vector<ValType> types;
        if (!LabelTypes(instr.a, &types) || !PopLabelTypes(types)) {
          return false;
        }
        for (ValType t : types) {
          PushVal(t);
        }
        return true;
      }
      case Opcode::kBrTable: {
        if (instr.table.empty()) {
          return Fail("br_table without default");
        }
        if (!PopExpect(ValType::kI32)) {
          return false;
        }
        std::vector<ValType> default_types;
        if (!LabelTypes(instr.table.back(), &default_types)) {
          return false;
        }
        for (size_t i = 0; i + 1 < instr.table.size(); i++) {
          std::vector<ValType> types;
          if (!LabelTypes(instr.table[i], &types)) {
            return false;
          }
          if (types != default_types) {
            return Fail("br_table label type mismatch");
          }
        }
        if (!PopLabelTypes(default_types)) {
          return false;
        }
        SetUnreachable();
        return true;
      }
      case Opcode::kReturn: {
        for (auto it = func_type_.results.rbegin(); it != func_type_.results.rend(); ++it) {
          if (!PopExpect(*it)) {
            return false;
          }
        }
        SetUnreachable();
        return true;
      }
      case Opcode::kCall: {
        if (instr.a >= module_.NumTotalFuncs()) {
          return Fail("call target out of range");
        }
        const FuncType& sig = module_.FuncTypeOf(instr.a);
        for (auto it = sig.params.rbegin(); it != sig.params.rend(); ++it) {
          if (!PopExpect(*it)) {
            return false;
          }
        }
        for (ValType t : sig.results) {
          PushVal(t);
        }
        return true;
      }
      case Opcode::kCallIndirect: {
        bool has_table = !module_.tables.empty();
        for (const Import& imp : module_.imports) {
          has_table = has_table || imp.kind == ExternalKind::kTable;
        }
        if (!has_table) {
          return Fail("call_indirect without table");
        }
        if (instr.a >= module_.types.size()) {
          return Fail("call_indirect type index out of range");
        }
        if (!PopExpect(ValType::kI32)) {
          return false;
        }
        const FuncType& sig = module_.types[instr.a];
        for (auto it = sig.params.rbegin(); it != sig.params.rend(); ++it) {
          if (!PopExpect(*it)) {
            return false;
          }
        }
        for (ValType t : sig.results) {
          PushVal(t);
        }
        return true;
      }
      case Opcode::kDrop: {
        ValType t;
        return PopVal(ValType::kI32, &t);
      }
      case Opcode::kSelect: {
        if (!PopExpect(ValType::kI32)) {
          return false;
        }
        ValType t1;
        ValType t2;
        if (!PopVal(ValType::kI32, &t1) || !PopVal(t1, &t2)) {
          return false;
        }
        if (!ctrl_.back().unreachable && t1 != t2) {
          return Fail("select operand types differ");
        }
        PushVal(t2);
        return true;
      }
      case Opcode::kLocalGet:
        if (instr.a >= locals_.size()) {
          return Fail("local index out of range");
        }
        PushVal(locals_[instr.a]);
        return true;
      case Opcode::kLocalSet:
        if (instr.a >= locals_.size()) {
          return Fail("local index out of range");
        }
        return PopExpect(locals_[instr.a]);
      case Opcode::kLocalTee:
        if (instr.a >= locals_.size()) {
          return Fail("local index out of range");
        }
        if (!PopExpect(locals_[instr.a])) {
          return false;
        }
        PushVal(locals_[instr.a]);
        return true;
      case Opcode::kGlobalGet:
        if (instr.a >= module_.NumTotalGlobals()) {
          return Fail("global index out of range");
        }
        PushVal(module_.GlobalTypeOf(instr.a).type);
        return true;
      case Opcode::kGlobalSet: {
        if (instr.a >= module_.NumTotalGlobals()) {
          return Fail("global index out of range");
        }
        GlobalType gt = module_.GlobalTypeOf(instr.a);
        if (!gt.mut) {
          return Fail("assignment to immutable global");
        }
        return PopExpect(gt.type);
      }
      case Opcode::kMemorySize:
        PushVal(ValType::kI32);
        return true;
      case Opcode::kMemoryGrow:
        if (!PopExpect(ValType::kI32)) {
          return false;
        }
        PushVal(ValType::kI32);
        return true;
      case Opcode::kI32Const:
        PushVal(ValType::kI32);
        return true;
      case Opcode::kI64Const:
        PushVal(ValType::kI64);
        return true;
      case Opcode::kF32Const:
        PushVal(ValType::kF32);
        return true;
      case Opcode::kF64Const:
        PushVal(ValType::kF64);
        return true;
      default:
        return Fail("unhandled opcode");
    }
  }

  bool HasImportedMemory() const {
    for (const Import& imp : module_.imports) {
      if (imp.kind == ExternalKind::kMemory) {
        return true;
      }
    }
    return false;
  }

  const Module& module_;
  const Function& func_;
  const FuncType& func_type_;
  std::vector<ValType> locals_;
  std::vector<ValType> vals_;
  std::vector<CtrlFrame> ctrl_;
  std::string error_;
};

ValidationResult Err(const std::string& msg) {
  ValidationResult r;
  r.ok = false;
  r.error = msg;
  return r;
}

}  // namespace

ValidationResult ValidateModule(const Module& module) {
  // Types referenced by imports and functions must exist.
  for (const Import& imp : module.imports) {
    if (imp.kind == ExternalKind::kFunc && imp.type_index >= module.types.size()) {
      return Err(StrFormat("import %s.%s: type index out of range", imp.module.c_str(),
                           imp.name.c_str()));
    }
  }
  for (size_t i = 0; i < module.functions.size(); i++) {
    if (module.functions[i].type_index >= module.types.size()) {
      return Err(StrFormat("func %zu: type index out of range", i));
    }
  }
  for (const FuncType& t : module.types) {
    if (t.results.size() > 1) {
      return Err("multi-value results not supported in MVP");
    }
  }
  // At most one memory / table in MVP (imports included).
  uint32_t memories = static_cast<uint32_t>(module.memories.size());
  uint32_t tables = static_cast<uint32_t>(module.tables.size());
  for (const Import& imp : module.imports) {
    if (imp.kind == ExternalKind::kMemory) {
      memories++;
    }
    if (imp.kind == ExternalKind::kTable) {
      tables++;
    }
  }
  if (memories > 1) {
    return Err("multiple memories");
  }
  if (tables > 1) {
    return Err("multiple tables");
  }
  for (const MemorySec& m : module.memories) {
    if (m.limits.min > kMaxMemoryPages ||
        (m.limits.max.has_value() && *m.limits.max > kMaxMemoryPages)) {
      return Err("memory limits exceed 4 GiB");
    }
  }
  // Globals: initializer type must match; global.get initializers must refer
  // to imported immutable globals.
  uint32_t imported_globals = module.NumImportedGlobals();
  for (size_t i = 0; i < module.globals.size(); i++) {
    const Global& g = module.globals[i];
    ValType want = g.type.type;
    switch (g.init.op) {
      case Opcode::kI32Const:
        if (want != ValType::kI32) {
          return Err(StrFormat("global %zu: init type mismatch", i));
        }
        break;
      case Opcode::kI64Const:
        if (want != ValType::kI64) {
          return Err(StrFormat("global %zu: init type mismatch", i));
        }
        break;
      case Opcode::kF32Const:
        if (want != ValType::kF32) {
          return Err(StrFormat("global %zu: init type mismatch", i));
        }
        break;
      case Opcode::kF64Const:
        if (want != ValType::kF64) {
          return Err(StrFormat("global %zu: init type mismatch", i));
        }
        break;
      case Opcode::kGlobalGet:
        if (g.init.a >= imported_globals) {
          return Err(StrFormat("global %zu: init refers to non-imported global", i));
        }
        if (module.GlobalTypeOf(g.init.a).type != want) {
          return Err(StrFormat("global %zu: init type mismatch", i));
        }
        break;
      default:
        return Err(StrFormat("global %zu: unsupported initializer", i));
    }
  }
  // Exports: indices in range, names unique.
  for (const Export& e : module.exports) {
    uint32_t limit = 0;
    switch (e.kind) {
      case ExternalKind::kFunc:
        limit = module.NumTotalFuncs();
        break;
      case ExternalKind::kTable:
        limit = tables;
        break;
      case ExternalKind::kMemory:
        limit = memories;
        break;
      case ExternalKind::kGlobal:
        limit = module.NumTotalGlobals();
        break;
    }
    if (e.index >= limit) {
      return Err(StrFormat("export %s: index out of range", e.name.c_str()));
    }
  }
  for (size_t i = 0; i < module.exports.size(); i++) {
    for (size_t j = i + 1; j < module.exports.size(); j++) {
      if (module.exports[i].name == module.exports[j].name) {
        return Err(StrFormat("duplicate export name %s", module.exports[i].name.c_str()));
      }
    }
  }
  // Start function: must exist, type () -> ().
  if (module.start.has_value()) {
    if (*module.start >= module.NumTotalFuncs()) {
      return Err("start function index out of range");
    }
    const FuncType& t = module.FuncTypeOf(*module.start);
    if (!t.params.empty() || !t.results.empty()) {
      return Err("start function must have type () -> ()");
    }
  }
  // Element segments.
  for (const ElementSegment& seg : module.elements) {
    if (seg.table_index >= tables) {
      return Err("element segment table index out of range");
    }
    if (seg.offset.op != Opcode::kI32Const && seg.offset.op != Opcode::kGlobalGet) {
      return Err("element segment offset must be constant");
    }
    for (uint32_t fi : seg.func_indices) {
      if (fi >= module.NumTotalFuncs()) {
        return Err("element segment function index out of range");
      }
    }
  }
  // Data segments.
  for (const DataSegment& seg : module.data) {
    if (seg.memory_index >= memories) {
      return Err("data segment memory index out of range");
    }
    if (seg.offset.op != Opcode::kI32Const && seg.offset.op != Opcode::kGlobalGet) {
      return Err("data segment offset must be constant");
    }
  }
  // Function bodies.
  for (size_t i = 0; i < module.functions.size(); i++) {
    FuncValidator fv(module, module.functions[i]);
    std::string error;
    if (!fv.Run(&error)) {
      return Err(StrFormat("func %zu: %s", i, error.c_str()));
    }
  }
  ValidationResult ok;
  ok.ok = true;
  return ok;
}

}  // namespace nsf
