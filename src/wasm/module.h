// In-memory representation of a WebAssembly MVP module, including fully
// decoded instruction sequences. This is the interchange format between the
// decoder/encoder, validator, interpreter, builder DSL, and codegen.
#ifndef SRC_WASM_MODULE_H_
#define SRC_WASM_MODULE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/wasm/opcodes.h"
#include "src/wasm/types.h"

namespace nsf {

// One decoded instruction. Immediate fields are interpreted per
// OpcodeImmKind(op):
//   kLabel/kFunc/kLocal/kGlobal : `a` holds the index
//   kCallInd                    : `a` holds the type index
//   kMem                        : `a` = log2(align), `b` = offset
//   kI32/kI64/kF32/kF64         : `imm` holds the (bit-pattern) constant
//   kBlockType                  : `block_type` holds s33 code (kVoidBlockType
//                                 or a ValType byte)
//   kLabelTable                 : `table` holds targets, last entry = default
struct Instr {
  Opcode op = Opcode::kNop;
  uint32_t a = 0;
  uint32_t b = 0;
  uint64_t imm = 0;
  int64_t block_type = kVoidBlockType;
  std::vector<uint32_t> table;

  static Instr Simple(Opcode op) {
    Instr i;
    i.op = op;
    return i;
  }
  static Instr Idx(Opcode op, uint32_t idx) {
    Instr i;
    i.op = op;
    i.a = idx;
    return i;
  }
  static Instr Mem(Opcode op, uint32_t align_log2, uint32_t offset) {
    Instr i;
    i.op = op;
    i.a = align_log2;
    i.b = offset;
    return i;
  }
  static Instr ConstI32(int32_t v) {
    Instr i;
    i.op = Opcode::kI32Const;
    i.imm = static_cast<uint32_t>(v);
    return i;
  }
  static Instr ConstI64(int64_t v) {
    Instr i;
    i.op = Opcode::kI64Const;
    i.imm = static_cast<uint64_t>(v);
    return i;
  }
  static Instr ConstF32(float v);
  static Instr ConstF64(double v);

  float AsF32() const;
  double AsF64() const;
  int32_t AsI32() const { return static_cast<int32_t>(static_cast<uint32_t>(imm)); }
  int64_t AsI64() const { return static_cast<int64_t>(imm); }
};

enum class ExternalKind : uint8_t {
  kFunc = 0,
  kTable = 1,
  kMemory = 2,
  kGlobal = 3,
};

struct Import {
  std::string module;
  std::string name;
  ExternalKind kind = ExternalKind::kFunc;
  uint32_t type_index = 0;  // kind == kFunc
  Limits limits;            // kind == kTable / kMemory
  GlobalType global_type;   // kind == kGlobal
};

struct Export {
  std::string name;
  ExternalKind kind = ExternalKind::kFunc;
  uint32_t index = 0;
};

// A function defined in this module (imports are tracked separately).
struct Function {
  uint32_t type_index = 0;
  // Locals beyond the parameters, in declaration order (run-length groups are
  // expanded on decode and re-compressed on encode).
  std::vector<ValType> locals;
  std::vector<Instr> body;  // terminated by kEnd
  std::string debug_name;   // optional, from/for the name section
};

struct Table {
  Limits limits;  // funcref elements
};

struct MemorySec {
  Limits limits;  // pages
};

struct Global {
  GlobalType type;
  Instr init;  // a single const instruction (MVP initializer subset)
};

struct ElementSegment {
  uint32_t table_index = 0;
  Instr offset;  // i32.const (MVP subset)
  std::vector<uint32_t> func_indices;
};

struct DataSegment {
  uint32_t memory_index = 0;
  Instr offset;  // i32.const (MVP subset)
  std::vector<uint8_t> bytes;
};

struct Module {
  std::vector<FuncType> types;
  std::vector<Import> imports;
  std::vector<Function> functions;  // defined functions only
  std::vector<Table> tables;
  std::vector<MemorySec> memories;
  std::vector<Global> globals;
  std::vector<Export> exports;
  std::optional<uint32_t> start;
  std::vector<ElementSegment> elements;
  std::vector<DataSegment> data;
  std::string name;  // module name (name section)

  // --- Index-space helpers (imports precede defined entities). ---
  uint32_t NumImportedFuncs() const;
  uint32_t NumImportedGlobals() const;
  uint32_t NumTotalFuncs() const {
    return NumImportedFuncs() + static_cast<uint32_t>(functions.size());
  }
  uint32_t NumTotalGlobals() const {
    return NumImportedGlobals() + static_cast<uint32_t>(globals.size());
  }
  bool IsImportedFunc(uint32_t func_index) const { return func_index < NumImportedFuncs(); }
  // Type of function `func_index` in the joint import+defined index space.
  // Precondition: index in range (checked by validator).
  const FuncType& FuncTypeOf(uint32_t func_index) const;
  // The import entry for imported function `func_index`.
  const Import& FuncImportOf(uint32_t func_index) const;
  // Defined function for a joint-space index >= NumImportedFuncs().
  const Function& DefinedFunc(uint32_t func_index) const {
    return functions[func_index - NumImportedFuncs()];
  }
  Function& DefinedFunc(uint32_t func_index) {
    return functions[func_index - NumImportedFuncs()];
  }
  // Global type of global `global_index` in the joint index space.
  GlobalType GlobalTypeOf(uint32_t global_index) const;
  // Returns the export with `name` and `kind`, or nullptr.
  const Export* FindExport(const std::string& name, ExternalKind kind) const;
};

}  // namespace nsf

#endif  // SRC_WASM_MODULE_H_
