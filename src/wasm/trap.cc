#include "src/wasm/trap.h"

namespace nsf {

const char* TrapKindName(TrapKind kind) {
  switch (kind) {
    case TrapKind::kNone:
      return "none";
    case TrapKind::kUnreachable:
      return "unreachable";
    case TrapKind::kMemoryOutOfBounds:
      return "memory access out of bounds";
    case TrapKind::kDivByZero:
      return "integer divide by zero";
    case TrapKind::kIntegerOverflow:
      return "integer overflow";
    case TrapKind::kInvalidConversion:
      return "invalid conversion to integer";
    case TrapKind::kCallStackExhausted:
      return "call stack exhausted";
    case TrapKind::kIndirectCallNull:
      return "uninitialized table element";
    case TrapKind::kIndirectCallOutOfBounds:
      return "undefined table element";
    case TrapKind::kIndirectCallTypeMismatch:
      return "indirect call type mismatch";
    case TrapKind::kFuelExhausted:
      return "fuel exhausted";
    case TrapKind::kHostError:
      return "host error";
  }
  return "<bad trap>";
}

}  // namespace nsf
