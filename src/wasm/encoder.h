// Serializes a Module to the WebAssembly MVP binary format.
#ifndef SRC_WASM_ENCODER_H_
#define SRC_WASM_ENCODER_H_

#include <cstdint>
#include <vector>

#include "src/wasm/module.h"

namespace nsf {

// Encodes `module` into binary form. The module is assumed well-formed
// (indices need not validate; the encoder is purely syntactic). Emits a name
// section when the module or any function carries a debug name.
std::vector<uint8_t> EncodeModule(const Module& module);

// Encodes a single instruction (used by tests and by the module encoder).
void EncodeInstr(std::vector<uint8_t>& out, const Instr& instr);

// Content hash of `module`: FNV-1a over its binary encoding. Two modules
// hash equal iff they encode to identical bytes (debug names included), so
// the hash is a sound content-address for compiled-code caching.
uint64_t HashModule(const Module& module);

}  // namespace nsf

#endif  // SRC_WASM_ENCODER_H_
