// WebAssembly MVP opcode table. The X-macro NSF_FOREACH_OPCODE captures, for
// every opcode: enum name, binary encoding byte, mnemonic, and immediate kind.
// All components (decoder, encoder, validator, interpreter, codegen, WAT
// printer) dispatch off this single table.
#ifndef SRC_WASM_OPCODES_H_
#define SRC_WASM_OPCODES_H_

#include <cstdint>

namespace nsf {

// Kinds of immediate operand that follow an opcode in the binary encoding.
enum class ImmKind : uint8_t {
  kNone,        // no immediate
  kBlockType,   // s33 block type (MVP: void or one value type)
  kLabel,       // u32 relative depth (br, br_if)
  kLabelTable,  // vector of u32 + default (br_table)
  kFunc,        // u32 function index (call)
  kCallInd,     // u32 type index + 0x00 table byte (call_indirect)
  kLocal,       // u32 local index
  kGlobal,      // u32 global index
  kMem,         // memarg: u32 align, u32 offset
  kMemIdx,      // 0x00 reserved byte (memory.size / memory.grow)
  kI32,         // s32 LEB constant
  kI64,         // s64 LEB constant
  kF32,         // 4-byte IEEE754
  kF64,         // 8-byte IEEE754
};

#define NSF_FOREACH_OPCODE(V)                      \
  V(Unreachable, 0x00, "unreachable", kNone)       \
  V(Nop, 0x01, "nop", kNone)                       \
  V(Block, 0x02, "block", kBlockType)              \
  V(Loop, 0x03, "loop", kBlockType)                \
  V(If, 0x04, "if", kBlockType)                    \
  V(Else, 0x05, "else", kNone)                     \
  V(End, 0x0b, "end", kNone)                       \
  V(Br, 0x0c, "br", kLabel)                        \
  V(BrIf, 0x0d, "br_if", kLabel)                   \
  V(BrTable, 0x0e, "br_table", kLabelTable)        \
  V(Return, 0x0f, "return", kNone)                 \
  V(Call, 0x10, "call", kFunc)                     \
  V(CallIndirect, 0x11, "call_indirect", kCallInd) \
  V(Drop, 0x1a, "drop", kNone)                     \
  V(Select, 0x1b, "select", kNone)                 \
  V(LocalGet, 0x20, "local.get", kLocal)           \
  V(LocalSet, 0x21, "local.set", kLocal)           \
  V(LocalTee, 0x22, "local.tee", kLocal)           \
  V(GlobalGet, 0x23, "global.get", kGlobal)        \
  V(GlobalSet, 0x24, "global.set", kGlobal)        \
  V(I32Load, 0x28, "i32.load", kMem)               \
  V(I64Load, 0x29, "i64.load", kMem)               \
  V(F32Load, 0x2a, "f32.load", kMem)               \
  V(F64Load, 0x2b, "f64.load", kMem)               \
  V(I32Load8S, 0x2c, "i32.load8_s", kMem)          \
  V(I32Load8U, 0x2d, "i32.load8_u", kMem)          \
  V(I32Load16S, 0x2e, "i32.load16_s", kMem)        \
  V(I32Load16U, 0x2f, "i32.load16_u", kMem)        \
  V(I64Load8S, 0x30, "i64.load8_s", kMem)          \
  V(I64Load8U, 0x31, "i64.load8_u", kMem)          \
  V(I64Load16S, 0x32, "i64.load16_s", kMem)        \
  V(I64Load16U, 0x33, "i64.load16_u", kMem)        \
  V(I64Load32S, 0x34, "i64.load32_s", kMem)        \
  V(I64Load32U, 0x35, "i64.load32_u", kMem)        \
  V(I32Store, 0x36, "i32.store", kMem)             \
  V(I64Store, 0x37, "i64.store", kMem)             \
  V(F32Store, 0x38, "f32.store", kMem)             \
  V(F64Store, 0x39, "f64.store", kMem)             \
  V(I32Store8, 0x3a, "i32.store8", kMem)           \
  V(I32Store16, 0x3b, "i32.store16", kMem)         \
  V(I64Store8, 0x3c, "i64.store8", kMem)           \
  V(I64Store16, 0x3d, "i64.store16", kMem)         \
  V(I64Store32, 0x3e, "i64.store32", kMem)         \
  V(MemorySize, 0x3f, "memory.size", kMemIdx)      \
  V(MemoryGrow, 0x40, "memory.grow", kMemIdx)      \
  V(I32Const, 0x41, "i32.const", kI32)             \
  V(I64Const, 0x42, "i64.const", kI64)             \
  V(F32Const, 0x43, "f32.const", kF32)             \
  V(F64Const, 0x44, "f64.const", kF64)             \
  V(I32Eqz, 0x45, "i32.eqz", kNone)                \
  V(I32Eq, 0x46, "i32.eq", kNone)                  \
  V(I32Ne, 0x47, "i32.ne", kNone)                  \
  V(I32LtS, 0x48, "i32.lt_s", kNone)               \
  V(I32LtU, 0x49, "i32.lt_u", kNone)               \
  V(I32GtS, 0x4a, "i32.gt_s", kNone)               \
  V(I32GtU, 0x4b, "i32.gt_u", kNone)               \
  V(I32LeS, 0x4c, "i32.le_s", kNone)               \
  V(I32LeU, 0x4d, "i32.le_u", kNone)               \
  V(I32GeS, 0x4e, "i32.ge_s", kNone)               \
  V(I32GeU, 0x4f, "i32.ge_u", kNone)               \
  V(I64Eqz, 0x50, "i64.eqz", kNone)                \
  V(I64Eq, 0x51, "i64.eq", kNone)                  \
  V(I64Ne, 0x52, "i64.ne", kNone)                  \
  V(I64LtS, 0x53, "i64.lt_s", kNone)               \
  V(I64LtU, 0x54, "i64.lt_u", kNone)               \
  V(I64GtS, 0x55, "i64.gt_s", kNone)               \
  V(I64GtU, 0x56, "i64.gt_u", kNone)               \
  V(I64LeS, 0x57, "i64.le_s", kNone)               \
  V(I64LeU, 0x58, "i64.le_u", kNone)               \
  V(I64GeS, 0x59, "i64.ge_s", kNone)               \
  V(I64GeU, 0x5a, "i64.ge_u", kNone)               \
  V(F32Eq, 0x5b, "f32.eq", kNone)                  \
  V(F32Ne, 0x5c, "f32.ne", kNone)                  \
  V(F32Lt, 0x5d, "f32.lt", kNone)                  \
  V(F32Gt, 0x5e, "f32.gt", kNone)                  \
  V(F32Le, 0x5f, "f32.le", kNone)                  \
  V(F32Ge, 0x60, "f32.ge", kNone)                  \
  V(F64Eq, 0x61, "f64.eq", kNone)                  \
  V(F64Ne, 0x62, "f64.ne", kNone)                  \
  V(F64Lt, 0x63, "f64.lt", kNone)                  \
  V(F64Gt, 0x64, "f64.gt", kNone)                  \
  V(F64Le, 0x65, "f64.le", kNone)                  \
  V(F64Ge, 0x66, "f64.ge", kNone)                  \
  V(I32Clz, 0x67, "i32.clz", kNone)                \
  V(I32Ctz, 0x68, "i32.ctz", kNone)                \
  V(I32Popcnt, 0x69, "i32.popcnt", kNone)          \
  V(I32Add, 0x6a, "i32.add", kNone)                \
  V(I32Sub, 0x6b, "i32.sub", kNone)                \
  V(I32Mul, 0x6c, "i32.mul", kNone)                \
  V(I32DivS, 0x6d, "i32.div_s", kNone)             \
  V(I32DivU, 0x6e, "i32.div_u", kNone)             \
  V(I32RemS, 0x6f, "i32.rem_s", kNone)             \
  V(I32RemU, 0x70, "i32.rem_u", kNone)             \
  V(I32And, 0x71, "i32.and", kNone)                \
  V(I32Or, 0x72, "i32.or", kNone)                  \
  V(I32Xor, 0x73, "i32.xor", kNone)                \
  V(I32Shl, 0x74, "i32.shl", kNone)                \
  V(I32ShrS, 0x75, "i32.shr_s", kNone)             \
  V(I32ShrU, 0x76, "i32.shr_u", kNone)             \
  V(I32Rotl, 0x77, "i32.rotl", kNone)              \
  V(I32Rotr, 0x78, "i32.rotr", kNone)              \
  V(I64Clz, 0x79, "i64.clz", kNone)                \
  V(I64Ctz, 0x7a, "i64.ctz", kNone)                \
  V(I64Popcnt, 0x7b, "i64.popcnt", kNone)          \
  V(I64Add, 0x7c, "i64.add", kNone)                \
  V(I64Sub, 0x7d, "i64.sub", kNone)                \
  V(I64Mul, 0x7e, "i64.mul", kNone)                \
  V(I64DivS, 0x7f, "i64.div_s", kNone)             \
  V(I64DivU, 0x80, "i64.div_u", kNone)             \
  V(I64RemS, 0x81, "i64.rem_s", kNone)             \
  V(I64RemU, 0x82, "i64.rem_u", kNone)             \
  V(I64And, 0x83, "i64.and", kNone)                \
  V(I64Or, 0x84, "i64.or", kNone)                  \
  V(I64Xor, 0x85, "i64.xor", kNone)                \
  V(I64Shl, 0x86, "i64.shl", kNone)                \
  V(I64ShrS, 0x87, "i64.shr_s", kNone)             \
  V(I64ShrU, 0x88, "i64.shr_u", kNone)             \
  V(I64Rotl, 0x89, "i64.rotl", kNone)              \
  V(I64Rotr, 0x8a, "i64.rotr", kNone)              \
  V(F32Abs, 0x8b, "f32.abs", kNone)                \
  V(F32Neg, 0x8c, "f32.neg", kNone)                \
  V(F32Ceil, 0x8d, "f32.ceil", kNone)              \
  V(F32Floor, 0x8e, "f32.floor", kNone)            \
  V(F32Trunc, 0x8f, "f32.trunc", kNone)            \
  V(F32Nearest, 0x90, "f32.nearest", kNone)        \
  V(F32Sqrt, 0x91, "f32.sqrt", kNone)              \
  V(F32Add, 0x92, "f32.add", kNone)                \
  V(F32Sub, 0x93, "f32.sub", kNone)                \
  V(F32Mul, 0x94, "f32.mul", kNone)                \
  V(F32Div, 0x95, "f32.div", kNone)                \
  V(F32Min, 0x96, "f32.min", kNone)                \
  V(F32Max, 0x97, "f32.max", kNone)                \
  V(F32Copysign, 0x98, "f32.copysign", kNone)      \
  V(F64Abs, 0x99, "f64.abs", kNone)                \
  V(F64Neg, 0x9a, "f64.neg", kNone)                \
  V(F64Ceil, 0x9b, "f64.ceil", kNone)              \
  V(F64Floor, 0x9c, "f64.floor", kNone)            \
  V(F64Trunc, 0x9d, "f64.trunc", kNone)            \
  V(F64Nearest, 0x9e, "f64.nearest", kNone)        \
  V(F64Sqrt, 0x9f, "f64.sqrt", kNone)              \
  V(F64Add, 0xa0, "f64.add", kNone)                \
  V(F64Sub, 0xa1, "f64.sub", kNone)                \
  V(F64Mul, 0xa2, "f64.mul", kNone)                \
  V(F64Div, 0xa3, "f64.div", kNone)                \
  V(F64Min, 0xa4, "f64.min", kNone)                \
  V(F64Max, 0xa5, "f64.max", kNone)                \
  V(F64Copysign, 0xa6, "f64.copysign", kNone)      \
  V(I32WrapI64, 0xa7, "i32.wrap_i64", kNone)       \
  V(I32TruncF32S, 0xa8, "i32.trunc_f32_s", kNone)  \
  V(I32TruncF32U, 0xa9, "i32.trunc_f32_u", kNone)  \
  V(I32TruncF64S, 0xaa, "i32.trunc_f64_s", kNone)  \
  V(I32TruncF64U, 0xab, "i32.trunc_f64_u", kNone)  \
  V(I64ExtendI32S, 0xac, "i64.extend_i32_s", kNone)\
  V(I64ExtendI32U, 0xad, "i64.extend_i32_u", kNone)\
  V(I64TruncF32S, 0xae, "i64.trunc_f32_s", kNone)  \
  V(I64TruncF32U, 0xaf, "i64.trunc_f32_u", kNone)  \
  V(I64TruncF64S, 0xb0, "i64.trunc_f64_s", kNone)  \
  V(I64TruncF64U, 0xb1, "i64.trunc_f64_u", kNone)  \
  V(F32ConvertI32S, 0xb2, "f32.convert_i32_s", kNone) \
  V(F32ConvertI32U, 0xb3, "f32.convert_i32_u", kNone) \
  V(F32ConvertI64S, 0xb4, "f32.convert_i64_s", kNone) \
  V(F32ConvertI64U, 0xb5, "f32.convert_i64_u", kNone) \
  V(F32DemoteF64, 0xb6, "f32.demote_f64", kNone)   \
  V(F64ConvertI32S, 0xb7, "f64.convert_i32_s", kNone) \
  V(F64ConvertI32U, 0xb8, "f64.convert_i32_u", kNone) \
  V(F64ConvertI64S, 0xb9, "f64.convert_i64_s", kNone) \
  V(F64ConvertI64U, 0xba, "f64.convert_i64_u", kNone) \
  V(F64PromoteF32, 0xbb, "f64.promote_f32", kNone) \
  V(I32ReinterpretF32, 0xbc, "i32.reinterpret_f32", kNone) \
  V(I64ReinterpretF64, 0xbd, "i64.reinterpret_f64", kNone) \
  V(F32ReinterpretI32, 0xbe, "f32.reinterpret_i32", kNone) \
  V(F64ReinterpretI64, 0xbf, "f64.reinterpret_i64", kNone)

enum class Opcode : uint8_t {
#define NSF_DECL_ENUM(name, byte, text, imm) k##name = byte,
  NSF_FOREACH_OPCODE(NSF_DECL_ENUM)
#undef NSF_DECL_ENUM
};

// Returns the mnemonic for `op`, or "<invalid>" for bytes outside the table.
const char* OpcodeName(Opcode op);

// Returns the immediate kind for `op`. Invalid opcodes report kNone; use
// IsValidOpcode to distinguish.
ImmKind OpcodeImmKind(Opcode op);

// True if `byte` encodes an MVP opcode we support.
bool IsValidOpcode(uint8_t byte);

}  // namespace nsf

#endif  // SRC_WASM_OPCODES_H_
