#include "src/wasm/decoder.h"

#include "src/support/leb128.h"
#include "src/support/str.h"

namespace nsf {

namespace {

constexpr uint32_t kMagic = 0x6d736100;
constexpr uint32_t kVersion = 1;

class ModuleDecoder {
 public:
  ModuleDecoder(const uint8_t* data, size_t size) : r_(data, size) {}

  DecodeResult Run() {
    DecodeResult result;
    if (r_.ReadFixedU32() != kMagic) {
      return Error("bad magic number");
    }
    if (r_.ReadFixedU32() != kVersion) {
      return Error("unsupported version");
    }
    int last_section = -1;
    while (!r_.AtEnd()) {
      uint8_t id = r_.ReadByte();
      uint32_t size = r_.ReadVarU32();
      if (!r_.ok()) {
        return Error("truncated section header");
      }
      size_t end = r_.pos() + size;
      if (end > r_.size()) {
        return Error("section extends past end of module");
      }
      if (id != 0) {
        if (static_cast<int>(id) <= last_section) {
          return Error(StrFormat("section %u out of order", id));
        }
        last_section = id;
      }
      bool ok = true;
      switch (id) {
        case 0:
          ok = DecodeCustomSection(end);
          break;
        case 1:
          ok = DecodeTypeSection();
          break;
        case 2:
          ok = DecodeImportSection();
          break;
        case 3:
          ok = DecodeFunctionSection();
          break;
        case 4:
          ok = DecodeTableSection();
          break;
        case 5:
          ok = DecodeMemorySection();
          break;
        case 6:
          ok = DecodeGlobalSection();
          break;
        case 7:
          ok = DecodeExportSection();
          break;
        case 8:
          module_.start = r_.ReadVarU32();
          break;
        case 9:
          ok = DecodeElementSection();
          break;
        case 10:
          ok = DecodeCodeSection();
          break;
        case 11:
          ok = DecodeDataSection();
          break;
        default:
          return Error(StrFormat("unknown section id %u", id));
      }
      if (!ok || !r_.ok()) {
        if (error_.empty()) {
          error_ = "malformed section";
        }
        return Error(error_);
      }
      if (r_.pos() != end) {
        return Error(StrFormat("section %u size mismatch", id));
      }
    }
    if (module_.functions.size() != num_declared_funcs_) {
      return Error("function and code section counts disagree");
    }
    result.ok = true;
    result.module = std::move(module_);
    return result;
  }

 private:
  DecodeResult Error(const std::string& msg) {
    DecodeResult result;
    result.ok = false;
    result.error = StrFormat("offset %zu: %s", r_.pos(), msg.c_str());
    return result;
  }

  bool Fail(const std::string& msg) {
    error_ = msg;
    return false;
  }

  bool ReadValType(ValType* out) {
    uint8_t b = r_.ReadByte();
    if (!IsValidValType(b)) {
      return Fail(StrFormat("invalid value type 0x%02x", b));
    }
    *out = static_cast<ValType>(b);
    return true;
  }

  bool ReadLimits(Limits* out) {
    uint8_t flags = r_.ReadByte();
    if (flags > 1) {
      return Fail("invalid limits flags");
    }
    out->min = r_.ReadVarU32();
    if (flags == 1) {
      out->max = r_.ReadVarU32();
      if (r_.ok() && *out->max < out->min) {
        return Fail("limits: max < min");
      }
    } else {
      out->max.reset();
    }
    return r_.ok();
  }

  bool DecodeTypeSection() {
    uint32_t count = r_.ReadVarU32();
    for (uint32_t i = 0; i < count && r_.ok(); i++) {
      if (r_.ReadByte() != 0x60) {
        return Fail("expected func type (0x60)");
      }
      FuncType type;
      uint32_t nparams = r_.ReadVarU32();
      for (uint32_t p = 0; p < nparams && r_.ok(); p++) {
        ValType t;
        if (!ReadValType(&t)) {
          return false;
        }
        type.params.push_back(t);
      }
      uint32_t nresults = r_.ReadVarU32();
      if (nresults > 1) {
        return Fail("MVP allows at most one result");
      }
      for (uint32_t q = 0; q < nresults && r_.ok(); q++) {
        ValType t;
        if (!ReadValType(&t)) {
          return false;
        }
        type.results.push_back(t);
      }
      module_.types.push_back(std::move(type));
    }
    return r_.ok();
  }

  bool DecodeImportSection() {
    uint32_t count = r_.ReadVarU32();
    for (uint32_t i = 0; i < count && r_.ok(); i++) {
      Import imp;
      imp.module = r_.ReadString(r_.ReadVarU32());
      imp.name = r_.ReadString(r_.ReadVarU32());
      uint8_t kind = r_.ReadByte();
      switch (kind) {
        case 0:
          imp.kind = ExternalKind::kFunc;
          imp.type_index = r_.ReadVarU32();
          break;
        case 1:
          imp.kind = ExternalKind::kTable;
          if (r_.ReadByte() != 0x70) {
            return Fail("imported table must be funcref");
          }
          if (!ReadLimits(&imp.limits)) {
            return false;
          }
          break;
        case 2:
          imp.kind = ExternalKind::kMemory;
          if (!ReadLimits(&imp.limits)) {
            return false;
          }
          break;
        case 3: {
          imp.kind = ExternalKind::kGlobal;
          ValType t;
          if (!ReadValType(&t)) {
            return false;
          }
          imp.global_type.type = t;
          imp.global_type.mut = r_.ReadByte() != 0;
          break;
        }
        default:
          return Fail("invalid import kind");
      }
      module_.imports.push_back(std::move(imp));
    }
    return r_.ok();
  }

  bool DecodeFunctionSection() {
    uint32_t count = r_.ReadVarU32();
    num_declared_funcs_ = count;
    declared_types_.reserve(count);
    for (uint32_t i = 0; i < count && r_.ok(); i++) {
      declared_types_.push_back(r_.ReadVarU32());
    }
    return r_.ok();
  }

  bool DecodeTableSection() {
    uint32_t count = r_.ReadVarU32();
    for (uint32_t i = 0; i < count && r_.ok(); i++) {
      if (r_.ReadByte() != 0x70) {
        return Fail("table element type must be funcref");
      }
      Table t;
      if (!ReadLimits(&t.limits)) {
        return false;
      }
      module_.tables.push_back(t);
    }
    return r_.ok();
  }

  bool DecodeMemorySection() {
    uint32_t count = r_.ReadVarU32();
    for (uint32_t i = 0; i < count && r_.ok(); i++) {
      MemorySec m;
      if (!ReadLimits(&m.limits)) {
        return false;
      }
      module_.memories.push_back(m);
    }
    return r_.ok();
  }

  bool DecodeConstInstr(Instr* out) {
    // MVP initializer: exactly one const / global.get followed by end.
    uint8_t b = r_.ReadByte();
    if (!IsValidOpcode(b)) {
      return Fail("invalid opcode in initializer");
    }
    Instr instr;
    instr.op = static_cast<Opcode>(b);
    switch (instr.op) {
      case Opcode::kI32Const:
        instr.imm = static_cast<uint32_t>(r_.ReadVarS32());
        break;
      case Opcode::kI64Const:
        instr.imm = static_cast<uint64_t>(r_.ReadVarS64());
        break;
      case Opcode::kF32Const:
        instr.imm = r_.ReadFixedU32();
        break;
      case Opcode::kF64Const:
        instr.imm = r_.ReadFixedU64();
        break;
      case Opcode::kGlobalGet:
        instr.a = r_.ReadVarU32();
        break;
      default:
        return Fail("unsupported initializer opcode");
    }
    if (r_.ReadByte() != static_cast<uint8_t>(Opcode::kEnd)) {
      return Fail("initializer must end with `end`");
    }
    *out = instr;
    return r_.ok();
  }

  bool DecodeGlobalSection() {
    uint32_t count = r_.ReadVarU32();
    for (uint32_t i = 0; i < count && r_.ok(); i++) {
      Global g;
      ValType t;
      if (!ReadValType(&t)) {
        return false;
      }
      g.type.type = t;
      g.type.mut = r_.ReadByte() != 0;
      if (!DecodeConstInstr(&g.init)) {
        return false;
      }
      module_.globals.push_back(g);
    }
    return r_.ok();
  }

  bool DecodeExportSection() {
    uint32_t count = r_.ReadVarU32();
    for (uint32_t i = 0; i < count && r_.ok(); i++) {
      Export e;
      e.name = r_.ReadString(r_.ReadVarU32());
      uint8_t kind = r_.ReadByte();
      if (kind > 3) {
        return Fail("invalid export kind");
      }
      e.kind = static_cast<ExternalKind>(kind);
      e.index = r_.ReadVarU32();
      module_.exports.push_back(std::move(e));
    }
    return r_.ok();
  }

  bool DecodeElementSection() {
    uint32_t count = r_.ReadVarU32();
    for (uint32_t i = 0; i < count && r_.ok(); i++) {
      ElementSegment seg;
      seg.table_index = r_.ReadVarU32();
      if (!DecodeConstInstr(&seg.offset)) {
        return false;
      }
      uint32_t n = r_.ReadVarU32();
      for (uint32_t k = 0; k < n && r_.ok(); k++) {
        seg.func_indices.push_back(r_.ReadVarU32());
      }
      module_.elements.push_back(std::move(seg));
    }
    return r_.ok();
  }

  bool DecodeInstr(Instr* out) {
    uint8_t b = r_.ReadByte();
    if (!r_.ok()) {
      return Fail("truncated function body");
    }
    if (!IsValidOpcode(b)) {
      return Fail(StrFormat("invalid opcode 0x%02x", b));
    }
    Instr instr;
    instr.op = static_cast<Opcode>(b);
    switch (OpcodeImmKind(instr.op)) {
      case ImmKind::kNone:
        break;
      case ImmKind::kBlockType: {
        int64_t bt = r_.ReadVarS33();
        if (bt != kVoidBlockType && !IsValidValType(static_cast<uint8_t>(bt & 0x7f))) {
          return Fail("invalid block type");
        }
        instr.block_type = bt;
        break;
      }
      case ImmKind::kLabel:
      case ImmKind::kFunc:
      case ImmKind::kLocal:
      case ImmKind::kGlobal:
        instr.a = r_.ReadVarU32();
        break;
      case ImmKind::kCallInd:
        instr.a = r_.ReadVarU32();
        if (r_.ReadByte() != 0) {
          return Fail("call_indirect reserved byte must be 0");
        }
        break;
      case ImmKind::kLabelTable: {
        uint32_t n = r_.ReadVarU32();
        if (n > 1u << 20) {
          return Fail("br_table too large");
        }
        instr.table.reserve(n + 1);
        for (uint32_t k = 0; k <= n && r_.ok(); k++) {
          instr.table.push_back(r_.ReadVarU32());
        }
        break;
      }
      case ImmKind::kMem:
        instr.a = r_.ReadVarU32();
        instr.b = r_.ReadVarU32();
        break;
      case ImmKind::kMemIdx:
        if (r_.ReadByte() != 0) {
          return Fail("memory index byte must be 0");
        }
        break;
      case ImmKind::kI32:
        instr.imm = static_cast<uint32_t>(r_.ReadVarS32());
        break;
      case ImmKind::kI64:
        instr.imm = static_cast<uint64_t>(r_.ReadVarS64());
        break;
      case ImmKind::kF32:
        instr.imm = r_.ReadFixedU32();
        break;
      case ImmKind::kF64:
        instr.imm = r_.ReadFixedU64();
        break;
    }
    *out = std::move(instr);
    return r_.ok();
  }

  bool DecodeCodeSection() {
    uint32_t count = r_.ReadVarU32();
    if (count != num_declared_funcs_) {
      return Fail("code count != function count");
    }
    for (uint32_t i = 0; i < count && r_.ok(); i++) {
      uint32_t body_size = r_.ReadVarU32();
      size_t body_end = r_.pos() + body_size;
      if (body_end > r_.size()) {
        return Fail("code body extends past section");
      }
      Function f;
      f.type_index = declared_types_[i];
      uint32_t ngroups = r_.ReadVarU32();
      uint64_t total_locals = 0;
      for (uint32_t g = 0; g < ngroups && r_.ok(); g++) {
        uint32_t n = r_.ReadVarU32();
        ValType t;
        if (!ReadValType(&t)) {
          return false;
        }
        total_locals += n;
        if (total_locals > 50000) {
          return Fail("too many locals");
        }
        f.locals.insert(f.locals.end(), n, t);
      }
      // Decode instructions until the body's closing `end` balances out.
      int depth = 1;
      while (depth > 0 && r_.ok()) {
        if (r_.pos() >= body_end) {
          return Fail("function body not terminated");
        }
        Instr instr;
        if (!DecodeInstr(&instr)) {
          return false;
        }
        switch (instr.op) {
          case Opcode::kBlock:
          case Opcode::kLoop:
          case Opcode::kIf:
            depth++;
            break;
          case Opcode::kEnd:
            depth--;
            break;
          default:
            break;
        }
        f.body.push_back(std::move(instr));
      }
      if (r_.pos() != body_end) {
        return Fail("code body size mismatch");
      }
      module_.functions.push_back(std::move(f));
    }
    return r_.ok();
  }

  bool DecodeDataSection() {
    uint32_t count = r_.ReadVarU32();
    for (uint32_t i = 0; i < count && r_.ok(); i++) {
      DataSegment seg;
      seg.memory_index = r_.ReadVarU32();
      if (!DecodeConstInstr(&seg.offset)) {
        return false;
      }
      uint32_t n = r_.ReadVarU32();
      if (!r_.ReadBytes(n, &seg.bytes)) {
        return Fail("truncated data segment");
      }
      module_.data.push_back(std::move(seg));
    }
    return r_.ok();
  }

  bool DecodeCustomSection(size_t end) {
    uint32_t name_len = r_.ReadVarU32();
    std::string name = r_.ReadString(name_len);
    if (name == "name") {
      DecodeNameSection(end);
      // Name-section errors are non-fatal per spec; skip whatever remains.
    }
    if (r_.pos() < end) {
      r_.Skip(end - r_.pos());
    }
    return r_.ok();
  }

  void DecodeNameSection(size_t end) {
    while (r_.pos() < end && r_.ok()) {
      uint8_t sub_id = r_.ReadByte();
      uint32_t sub_size = r_.ReadVarU32();
      size_t sub_end = r_.pos() + sub_size;
      if (sub_end > end) {
        return;
      }
      if (sub_id == 0) {
        module_.name = r_.ReadString(r_.ReadVarU32());
      } else if (sub_id == 1) {
        uint32_t count = r_.ReadVarU32();
        uint32_t imported = module_.NumImportedFuncs();
        for (uint32_t i = 0; i < count && r_.ok(); i++) {
          uint32_t idx = r_.ReadVarU32();
          std::string fname = r_.ReadString(r_.ReadVarU32());
          if (idx >= imported && idx - imported < module_.functions.size()) {
            module_.functions[idx - imported].debug_name = std::move(fname);
          }
        }
      }
      if (r_.pos() < sub_end) {
        r_.Skip(sub_end - r_.pos());
      }
    }
  }

  ByteReader r_;
  Module module_;
  std::vector<uint32_t> declared_types_;
  uint32_t num_declared_funcs_ = 0;
  std::string error_;
};

}  // namespace

DecodeResult DecodeModule(const uint8_t* data, size_t size) {
  return ModuleDecoder(data, size).Run();
}

DecodeResult DecodeModule(const std::vector<uint8_t>& bytes) {
  return DecodeModule(bytes.data(), bytes.size());
}

}  // namespace nsf
