#include "src/wasm/opcodes.h"

namespace nsf {

namespace {

struct OpcodeInfo {
  const char* name;
  ImmKind imm;
  bool valid;
};

constexpr OpcodeInfo BuildTableEntry(uint8_t byte) {
  OpcodeInfo info{"<invalid>", ImmKind::kNone, false};
#define NSF_FILL_ENTRY(name, opbyte, text, immkind)            \
  if (byte == (opbyte)) {                                      \
    info = OpcodeInfo{text, ImmKind::immkind, true};           \
  }
  NSF_FOREACH_OPCODE(NSF_FILL_ENTRY)
#undef NSF_FILL_ENTRY
  return info;
}

struct OpcodeTable {
  OpcodeInfo entries[256];
};

constexpr OpcodeTable BuildTable() {
  OpcodeTable table{};
  for (int i = 0; i < 256; i++) {
    table.entries[i] = BuildTableEntry(static_cast<uint8_t>(i));
  }
  return table;
}

constexpr OpcodeTable kTable = BuildTable();

}  // namespace

const char* OpcodeName(Opcode op) { return kTable.entries[static_cast<uint8_t>(op)].name; }

ImmKind OpcodeImmKind(Opcode op) { return kTable.entries[static_cast<uint8_t>(op)].imm; }

bool IsValidOpcode(uint8_t byte) { return kTable.entries[byte].valid; }

}  // namespace nsf
