// Trap kinds shared by every executor of Wasm semantics (the reference
// interpreter and the simulated-x64 machine).
#ifndef SRC_WASM_TRAP_H_
#define SRC_WASM_TRAP_H_

namespace nsf {

enum class TrapKind {
  kNone,
  kUnreachable,
  kMemoryOutOfBounds,
  kDivByZero,
  kIntegerOverflow,    // INT_MIN / -1 and float->int out of range
  kInvalidConversion,  // NaN -> int
  kCallStackExhausted,
  kIndirectCallNull,
  kIndirectCallOutOfBounds,
  kIndirectCallTypeMismatch,
  kFuelExhausted,  // execution budget exceeded (not a Wasm trap)
  kHostError,
};

const char* TrapKindName(TrapKind kind);

}  // namespace nsf

#endif  // SRC_WASM_TRAP_H_
