// Core WebAssembly value and composite types (MVP).
#ifndef SRC_WASM_TYPES_H_
#define SRC_WASM_TYPES_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace nsf {

// Value types. The numeric values are the binary-format codes.
enum class ValType : uint8_t {
  kI32 = 0x7f,
  kI64 = 0x7e,
  kF32 = 0x7d,
  kF64 = 0x7c,
};

// Block type code for "no result" in the binary format (s33 value -0x40).
inline constexpr int64_t kVoidBlockType = -0x40;

const char* ValTypeName(ValType t);
bool IsValidValType(uint8_t byte);
inline bool IsFloat(ValType t) { return t == ValType::kF32 || t == ValType::kF64; }
inline bool Is64Bit(ValType t) { return t == ValType::kI64 || t == ValType::kF64; }

// A function signature: parameter types and result types (MVP: <=1 result).
struct FuncType {
  std::vector<ValType> params;
  std::vector<ValType> results;

  bool operator==(const FuncType& other) const = default;
};

// Memory/table size limits in units of pages (memory) or elements (table).
struct Limits {
  uint32_t min = 0;
  std::optional<uint32_t> max;

  bool operator==(const Limits& other) const = default;
};

// Wasm page size: 64 KiB.
inline constexpr uint32_t kWasmPageSize = 64 * 1024;
// MVP limit: 4 GiB / 64 Ki pages.
inline constexpr uint32_t kMaxMemoryPages = 65536;

struct GlobalType {
  ValType type = ValType::kI32;
  bool mut = false;

  bool operator==(const GlobalType& other) const = default;
};

// A runtime value; the active member is implied by context (typed stacks).
union Value {
  uint32_t i32;
  uint64_t i64;
  float f32;
  double f64;

  Value() : i64(0) {}
  static Value I32(uint32_t v) {
    Value x;
    x.i64 = 0;
    x.i32 = v;
    return x;
  }
  static Value I64(uint64_t v) {
    Value x;
    x.i64 = v;
    return x;
  }
  static Value F32(float v) {
    Value x;
    x.i64 = 0;
    x.f32 = v;
    return x;
  }
  static Value F64(double v) {
    Value x;
    x.f64 = v;
    return x;
  }
};

// A typed value, used at API boundaries (arguments, results, globals).
struct TypedValue {
  ValType type = ValType::kI32;
  Value value;

  static TypedValue I32(uint32_t v) { return {ValType::kI32, Value::I32(v)}; }
  static TypedValue I64(uint64_t v) { return {ValType::kI64, Value::I64(v)}; }
  static TypedValue F32(float v) { return {ValType::kF32, Value::F32(v)}; }
  static TypedValue F64(double v) { return {ValType::kF64, Value::F64(v)}; }
};

std::string FuncTypeToString(const FuncType& type);

}  // namespace nsf

#endif  // SRC_WASM_TYPES_H_
