#include "src/wasm/encoder.h"

#include <cstring>

#include "src/support/leb128.h"
#include "src/support/str.h"

namespace nsf {

namespace {

constexpr uint32_t kMagic = 0x6d736100;  // "\0asm"
constexpr uint32_t kVersion = 1;

enum SectionId : uint8_t {
  kSecCustom = 0,
  kSecType = 1,
  kSecImport = 2,
  kSecFunction = 3,
  kSecTable = 4,
  kSecMemory = 5,
  kSecGlobal = 6,
  kSecExport = 7,
  kSecStart = 8,
  kSecElement = 9,
  kSecCode = 10,
  kSecData = 11,
};

void WriteLimits(std::vector<uint8_t>& out, const Limits& limits) {
  out.push_back(limits.max.has_value() ? 1 : 0);
  WriteVarU32(out, limits.min);
  if (limits.max.has_value()) {
    WriteVarU32(out, *limits.max);
  }
}

void WriteSection(std::vector<uint8_t>& out, uint8_t id, const std::vector<uint8_t>& payload) {
  if (payload.empty()) {
    return;
  }
  out.push_back(id);
  WriteVarU32(out, static_cast<uint32_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
}

}  // namespace

void EncodeInstr(std::vector<uint8_t>& out, const Instr& instr) {
  out.push_back(static_cast<uint8_t>(instr.op));
  switch (OpcodeImmKind(instr.op)) {
    case ImmKind::kNone:
      break;
    case ImmKind::kBlockType:
      // MVP block types are single-byte s33 values.
      WriteVarS64(out, instr.block_type);
      break;
    case ImmKind::kLabel:
    case ImmKind::kFunc:
    case ImmKind::kLocal:
    case ImmKind::kGlobal:
      WriteVarU32(out, instr.a);
      break;
    case ImmKind::kCallInd:
      WriteVarU32(out, instr.a);
      out.push_back(0x00);  // reserved table index
      break;
    case ImmKind::kLabelTable: {
      // table holds N targets followed by the default.
      WriteVarU32(out, static_cast<uint32_t>(instr.table.size()) - 1);
      for (uint32_t t : instr.table) {
        WriteVarU32(out, t);
      }
      break;
    }
    case ImmKind::kMem:
      WriteVarU32(out, instr.a);
      WriteVarU32(out, instr.b);
      break;
    case ImmKind::kMemIdx:
      out.push_back(0x00);
      break;
    case ImmKind::kI32:
      WriteVarS32(out, instr.AsI32());
      break;
    case ImmKind::kI64:
      WriteVarS64(out, instr.AsI64());
      break;
    case ImmKind::kF32: {
      uint32_t bits = static_cast<uint32_t>(instr.imm);
      WriteFixedU32(out, bits);
      break;
    }
    case ImmKind::kF64: {
      uint64_t bits = instr.imm;
      for (int i = 0; i < 8; i++) {
        out.push_back(static_cast<uint8_t>(bits >> (8 * i)));
      }
      break;
    }
  }
}

std::vector<uint8_t> EncodeModule(const Module& module) {
  std::vector<uint8_t> out;
  WriteFixedU32(out, kMagic);
  WriteFixedU32(out, kVersion);

  // Type section.
  if (!module.types.empty()) {
    std::vector<uint8_t> sec;
    WriteVarU32(sec, static_cast<uint32_t>(module.types.size()));
    for (const FuncType& t : module.types) {
      sec.push_back(0x60);
      WriteVarU32(sec, static_cast<uint32_t>(t.params.size()));
      for (ValType p : t.params) {
        sec.push_back(static_cast<uint8_t>(p));
      }
      WriteVarU32(sec, static_cast<uint32_t>(t.results.size()));
      for (ValType r : t.results) {
        sec.push_back(static_cast<uint8_t>(r));
      }
    }
    WriteSection(out, kSecType, sec);
  }

  // Import section.
  if (!module.imports.empty()) {
    std::vector<uint8_t> sec;
    WriteVarU32(sec, static_cast<uint32_t>(module.imports.size()));
    for (const Import& imp : module.imports) {
      WriteString(sec, imp.module);
      WriteString(sec, imp.name);
      sec.push_back(static_cast<uint8_t>(imp.kind));
      switch (imp.kind) {
        case ExternalKind::kFunc:
          WriteVarU32(sec, imp.type_index);
          break;
        case ExternalKind::kTable:
          sec.push_back(0x70);  // funcref
          WriteLimits(sec, imp.limits);
          break;
        case ExternalKind::kMemory:
          WriteLimits(sec, imp.limits);
          break;
        case ExternalKind::kGlobal:
          sec.push_back(static_cast<uint8_t>(imp.global_type.type));
          sec.push_back(imp.global_type.mut ? 1 : 0);
          break;
      }
    }
    WriteSection(out, kSecImport, sec);
  }

  // Function section.
  if (!module.functions.empty()) {
    std::vector<uint8_t> sec;
    WriteVarU32(sec, static_cast<uint32_t>(module.functions.size()));
    for (const Function& f : module.functions) {
      WriteVarU32(sec, f.type_index);
    }
    WriteSection(out, kSecFunction, sec);
  }

  // Table section.
  if (!module.tables.empty()) {
    std::vector<uint8_t> sec;
    WriteVarU32(sec, static_cast<uint32_t>(module.tables.size()));
    for (const Table& t : module.tables) {
      sec.push_back(0x70);  // funcref
      WriteLimits(sec, t.limits);
    }
    WriteSection(out, kSecTable, sec);
  }

  // Memory section.
  if (!module.memories.empty()) {
    std::vector<uint8_t> sec;
    WriteVarU32(sec, static_cast<uint32_t>(module.memories.size()));
    for (const MemorySec& m : module.memories) {
      WriteLimits(sec, m.limits);
    }
    WriteSection(out, kSecMemory, sec);
  }

  // Global section.
  if (!module.globals.empty()) {
    std::vector<uint8_t> sec;
    WriteVarU32(sec, static_cast<uint32_t>(module.globals.size()));
    for (const Global& g : module.globals) {
      sec.push_back(static_cast<uint8_t>(g.type.type));
      sec.push_back(g.type.mut ? 1 : 0);
      EncodeInstr(sec, g.init);
      sec.push_back(static_cast<uint8_t>(Opcode::kEnd));
    }
    WriteSection(out, kSecGlobal, sec);
  }

  // Export section.
  if (!module.exports.empty()) {
    std::vector<uint8_t> sec;
    WriteVarU32(sec, static_cast<uint32_t>(module.exports.size()));
    for (const Export& e : module.exports) {
      WriteString(sec, e.name);
      sec.push_back(static_cast<uint8_t>(e.kind));
      WriteVarU32(sec, e.index);
    }
    WriteSection(out, kSecExport, sec);
  }

  // Start section.
  if (module.start.has_value()) {
    std::vector<uint8_t> sec;
    WriteVarU32(sec, *module.start);
    WriteSection(out, kSecStart, sec);
  }

  // Element section.
  if (!module.elements.empty()) {
    std::vector<uint8_t> sec;
    WriteVarU32(sec, static_cast<uint32_t>(module.elements.size()));
    for (const ElementSegment& e : module.elements) {
      WriteVarU32(sec, e.table_index);
      EncodeInstr(sec, e.offset);
      sec.push_back(static_cast<uint8_t>(Opcode::kEnd));
      WriteVarU32(sec, static_cast<uint32_t>(e.func_indices.size()));
      for (uint32_t fi : e.func_indices) {
        WriteVarU32(sec, fi);
      }
    }
    WriteSection(out, kSecElement, sec);
  }

  // Code section.
  if (!module.functions.empty()) {
    std::vector<uint8_t> sec;
    WriteVarU32(sec, static_cast<uint32_t>(module.functions.size()));
    for (const Function& f : module.functions) {
      std::vector<uint8_t> body;
      // Compress locals into run-length groups.
      std::vector<std::pair<uint32_t, ValType>> groups;
      for (ValType t : f.locals) {
        if (!groups.empty() && groups.back().second == t) {
          groups.back().first++;
        } else {
          groups.push_back({1, t});
        }
      }
      WriteVarU32(body, static_cast<uint32_t>(groups.size()));
      for (const auto& [count, type] : groups) {
        WriteVarU32(body, count);
        body.push_back(static_cast<uint8_t>(type));
      }
      for (const Instr& instr : f.body) {
        EncodeInstr(body, instr);
      }
      WriteVarU32(sec, static_cast<uint32_t>(body.size()));
      sec.insert(sec.end(), body.begin(), body.end());
    }
    WriteSection(out, kSecCode, sec);
  }

  // Data section.
  if (!module.data.empty()) {
    std::vector<uint8_t> sec;
    WriteVarU32(sec, static_cast<uint32_t>(module.data.size()));
    for (const DataSegment& d : module.data) {
      WriteVarU32(sec, d.memory_index);
      EncodeInstr(sec, d.offset);
      sec.push_back(static_cast<uint8_t>(Opcode::kEnd));
      WriteVarU32(sec, static_cast<uint32_t>(d.bytes.size()));
      sec.insert(sec.end(), d.bytes.begin(), d.bytes.end());
    }
    WriteSection(out, kSecData, sec);
  }

  // Name section (custom), if any names present.
  bool has_names = !module.name.empty();
  for (const Function& f : module.functions) {
    has_names = has_names || !f.debug_name.empty();
  }
  if (has_names) {
    std::vector<uint8_t> sec;
    WriteString(sec, "name");
    if (!module.name.empty()) {
      std::vector<uint8_t> sub;
      WriteString(sub, module.name);
      sec.push_back(0);  // module name subsection
      WriteVarU32(sec, static_cast<uint32_t>(sub.size()));
      sec.insert(sec.end(), sub.begin(), sub.end());
    }
    // Function names subsection.
    std::vector<uint8_t> assoc;
    uint32_t named = 0;
    uint32_t base = module.NumImportedFuncs();
    for (size_t i = 0; i < module.functions.size(); i++) {
      if (!module.functions[i].debug_name.empty()) {
        named++;
      }
    }
    if (named > 0) {
      WriteVarU32(assoc, named);
      for (size_t i = 0; i < module.functions.size(); i++) {
        if (!module.functions[i].debug_name.empty()) {
          WriteVarU32(assoc, base + static_cast<uint32_t>(i));
          WriteString(assoc, module.functions[i].debug_name);
        }
      }
      sec.push_back(1);  // function names subsection
      WriteVarU32(sec, static_cast<uint32_t>(assoc.size()));
      sec.insert(sec.end(), assoc.begin(), assoc.end());
    }
    WriteSection(out, kSecCustom, sec);
  }

  return out;
}

uint64_t HashModule(const Module& module) {
  std::vector<uint8_t> bytes = EncodeModule(module);
  return Fnv1a(bytes.data(), bytes.size());
}

}  // namespace nsf
