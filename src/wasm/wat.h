// Renders a Module in a WAT-style (WebAssembly text format) listing for
// debugging, examples, and golden tests.
#ifndef SRC_WASM_WAT_H_
#define SRC_WASM_WAT_H_

#include <string>

#include "src/wasm/module.h"

namespace nsf {

// Prints the whole module. Instruction bodies are printed in linear (flat)
// form with indentation tracking block structure.
std::string ModuleToWat(const Module& module);

// Prints a single instruction (no trailing newline).
std::string InstrToWat(const Instr& instr);

}  // namespace nsf

#endif  // SRC_WASM_WAT_H_
