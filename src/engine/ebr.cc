#include "src/engine/ebr.h"

#include <utility>

#include "src/telemetry/metrics.h"
#include "src/telemetry/trace.h"

namespace nsf {
namespace ebr {

namespace {

telemetry::Counter& Count(const char* name) {
  return *telemetry::MetricsRegistry::Global().GetCounter(name);
}

}  // namespace

// All domain state lives behind a shared_ptr so a thread's exit hook can
// return its slot without racing domain destruction: thread records co-own
// the State, and whatever is still retired when the last owner drops is
// freed in ~State.
struct EbrDomain::State {
  std::atomic<uint64_t> global_epoch{EbrDomain::kGraceEpochs};

  // Slow-path state (writers, the collector, thread registration): never
  // touched by a warm read.
  mutable std::mutex mu;
  std::vector<std::unique_ptr<EpochSlot>> slots;
  std::vector<EpochSlot*> free_slots;  // returned by exited threads
  struct Retired {
    void* ptr;
    void (*deleter)(void*);
    uint64_t stamp;
  };
  std::vector<Retired> retired_list;

  std::atomic<uint64_t> retired{0};
  std::atomic<uint64_t> reclaimed{0};

  ~State() {
    // Last owner: no guard can be live, every grace period has trivially
    // elapsed. Free without ceremony.
    for (const Retired& r : retired_list) {
      r.deleter(r.ptr);
    }
  }

  EpochSlot* AcquireSlot() {
    std::lock_guard<std::mutex> lock(mu);
    if (!free_slots.empty()) {
      EpochSlot* s = free_slots.back();
      free_slots.pop_back();
      return s;
    }
    slots.push_back(std::make_unique<EpochSlot>());
    return slots.back().get();
  }

  void ReleaseSlot(EpochSlot* s) {
    s->epoch.store(EpochSlot::kQuiescent, std::memory_order_seq_cst);
    std::lock_guard<std::mutex> lock(mu);
    free_slots.push_back(s);
  }

  void RetireErased(void* p, void (*deleter)(void*)) {
    // Stamp BEFORE queueing: a concurrent advance between the stamp and the
    // push only makes the grace period conservatively longer.
    uint64_t stamp = global_epoch.load(std::memory_order_seq_cst);
    {
      std::lock_guard<std::mutex> lock(mu);
      retired_list.push_back(Retired{p, deleter, stamp});
    }
    retired.fetch_add(1, std::memory_order_relaxed);
    static telemetry::Counter& retired_count = Count("ebr.retired");
    retired_count.Add();
    // Retires are slow-path events (evictions, republishes, table growth);
    // collecting on every one keeps the pending list near-empty without any
    // reader-visible cost.
    Collect();
  }

  size_t Collect() {
    std::unique_lock<std::mutex> lock(mu, std::try_to_lock);
    if (!lock.owns_lock()) {
      return 0;  // another thread is already collecting
    }
    if (retired_list.empty()) {
      return 0;
    }
    telemetry::Span span("ebr.collect", "engine");
    // Advance is allowed only when every pinned slot has observed the
    // current epoch; seq_cst loads pair with the guards' seq_cst pin stores
    // (full fences — and a happens-before edge tsan understands).
    uint64_t e = global_epoch.load(std::memory_order_seq_cst);
    bool advance = true;
    for (const auto& s : slots) {
      uint64_t se = s->epoch.load(std::memory_order_seq_cst);
      if (se != EpochSlot::kQuiescent && se != e) {
        advance = false;
        break;
      }
    }
    if (advance) {
      global_epoch.store(e + 1, std::memory_order_seq_cst);
      e = e + 1;
    }
    // Grace elapsed for everything retired >= kGraceEpochs advances ago.
    // Swap the freeable tail out and run deleters OUTSIDE the lock: a
    // deleter may cascade (dropping the last shared_ptr reference to a
    // compiled module) and must not hold up registration or other retires.
    std::vector<Retired> freeable;
    size_t kept = 0;
    for (Retired& r : retired_list) {
      if (r.stamp + EbrDomain::kGraceEpochs <= e) {
        freeable.push_back(r);
      } else {
        retired_list[kept++] = r;
      }
    }
    retired_list.resize(kept);
    size_t deferred = retired_list.size();
    lock.unlock();
    for (const Retired& r : freeable) {
      r.deleter(r.ptr);
    }
    if (!freeable.empty()) {
      reclaimed.fetch_add(freeable.size(), std::memory_order_relaxed);
      static telemetry::Counter& reclaimed_count = Count("ebr.reclaimed");
      reclaimed_count.Add(freeable.size());
    }
    if (span.active()) {
      span.arg("freed", static_cast<uint64_t>(freeable.size()));
      span.arg("deferred", static_cast<uint64_t>(deferred));
      span.arg("advanced", static_cast<uint64_t>(advance ? 1 : 0));
    }
    return freeable.size();
  }
};

namespace {

// Per-thread registration records. The destructor runs at thread exit and
// returns each slot to its (co-owned, so still valid) domain state.
struct ThreadSlots {
  std::vector<std::pair<std::shared_ptr<EbrDomain::State>, EpochSlot*>> entries;

  ~ThreadSlots() {
    for (auto& [state, slot] : entries) {
      state->ReleaseSlot(slot);
    }
  }

  EpochSlot* FindOrAcquire(const std::shared_ptr<EbrDomain::State>& state) {
    for (auto& [s, slot] : entries) {
      if (s == state) {
        return slot;
      }
    }
    EpochSlot* slot = state->AcquireSlot();
    entries.emplace_back(state, slot);
    return slot;
  }
};

thread_local ThreadSlots t_slots;

}  // namespace

// --- EbrDomain ---

EbrDomain::EbrDomain() : state_(std::make_shared<State>()) {}

EbrDomain::~EbrDomain() = default;  // State freed when the last co-owner drops

EbrDomain& EbrDomain::Global() {
  // Leaked: worker threads may still unpin during static destruction.
  static EbrDomain* domain = new EbrDomain();
  return *domain;
}

EpochSlot* EbrDomain::SlotForThisThread() {
  // Single-entry cache for the hot path: one pointer compare on a pin. The
  // cached State is co-owned by t_slots, so an address match can never be a
  // recycled allocation.
  thread_local State* cached_state = nullptr;
  thread_local EpochSlot* cached_slot = nullptr;
  if (cached_state == state_.get()) {
    return cached_slot;
  }
  EpochSlot* slot = t_slots.FindOrAcquire(state_);
  cached_state = state_.get();
  cached_slot = slot;
  return slot;
}

void EbrDomain::RegisterCurrentThread() { SlotForThisThread(); }

void EbrDomain::RetireErased(void* p, void (*deleter)(void*)) {
  state_->RetireErased(p, deleter);
}

size_t EbrDomain::Collect() { return state_->Collect(); }

uint64_t EbrDomain::retired() const { return state_->retired.load(std::memory_order_relaxed); }

uint64_t EbrDomain::reclaimed() const {
  return state_->reclaimed.load(std::memory_order_relaxed);
}

size_t EbrDomain::pending() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->retired_list.size();
}

uint64_t EbrDomain::epoch() const {
  return state_->global_epoch.load(std::memory_order_relaxed);
}

// --- EbrGuard ---

EbrGuard::EbrGuard(EbrDomain& domain) : slot_(domain.SlotForThisThread()) {
  outermost_ = slot_->depth++ == 0;
  if (outermost_) {
    // The announced epoch may lag an in-flight advance by one; the collector
    // then simply cannot advance past us, which is safe (just slower).
    uint64_t e = domain.state_->global_epoch.load(std::memory_order_relaxed);
    slot_->epoch.store(e, std::memory_order_seq_cst);
  }
}

EbrGuard::~EbrGuard() {
  slot_->depth--;
  if (outermost_) {
    slot_->epoch.store(EpochSlot::kQuiescent, std::memory_order_seq_cst);
  }
}

}  // namespace ebr
}  // namespace nsf
