// Epoch-based reclamation (EBR): safe memory reclamation for wait-free read
// paths, built as a reusable component (the CodeCache's lock-free hit index
// is the first client; continuous tiering's hot code swap is the next).
//
// The problem: a reader traverses a lock-free structure and holds a raw
// pointer to a node while a writer unlinks and wants to free that node.
// Locks solve this by excluding the writer; EBR solves it by deferring the
// free until every reader that could possibly hold the pointer has provably
// moved on:
//
//   - Readers bracket each traversal with an EbrGuard. Entering a guard
//     PINS the thread: one seq_cst store of the current global epoch into
//     the thread's slot (wait-free — no loop, no CAS, no lock). Leaving
//     stores the quiescent sentinel.
//   - Writers never free unlinked nodes directly; they Retire() them. A
//     retired node is stamped with the global epoch at retirement.
//   - The collector (amortized into Retire, or explicit via Collect) tries
//     to ADVANCE the global epoch: allowed only when every pinned slot has
//     observed the current epoch. A node is freed once the global epoch has
//     advanced at least kGraceEpochs=2 beyond its stamp — by then every
//     thread pinned at retirement time has unpinned at least once, so no
//     live guard can hold the pointer (the classic three-epoch argument).
//
// Reader rules (the contract the CodeCache index relies on):
//   1. Take pointers out of the shared structure only while a guard is live.
//   2. Anything that must outlive the guard must be copied (the index copies
//      the shared_ptr payload, never the node) before the guard drops.
//   3. Guards must not nest across blocking operations: a pinned thread
//      stalls reclamation for the whole process (bounded memory relies on
//      guards being short).
//
// Synchronization: pin/unpin are seq_cst stores and the collector reads the
// slots seq_cst — full fences on x86/ARM, and a happens-before edge tsan
// understands (no atomic_thread_fence, which tsan ignores). Retire lists and
// the slot registry are mutex-guarded: they are slow-path only (writers and
// the collector), never touched by a warm read.
//
// Telemetry: `ebr.retired` / `ebr.reclaimed` counters and an `ebr.collect`
// span per grace-period collection (with freed/deferred counts).
#ifndef SRC_ENGINE_EBR_H_
#define SRC_ENGINE_EBR_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace nsf {
namespace ebr {

class EbrDomain;

// One thread's epoch announcement. Slots are never freed (threads that exit
// return theirs to a free list for reuse), so the collector may always read
// every registered slot. Cache-line sized: two pinning threads never share a
// line.
struct alignas(64) EpochSlot {
  static constexpr uint64_t kQuiescent = ~uint64_t{0};
  std::atomic<uint64_t> epoch{kQuiescent};
  // Guard nesting depth; touched only by the owning thread.
  uint32_t depth = 0;
};

// RAII pin. Construction announces the thread as a reader of the current
// epoch (wait-free: one load + one seq_cst store); destruction withdraws it.
// Re-entrant: nested guards on one thread share the outermost pin.
class EbrGuard {
 public:
  explicit EbrGuard(EbrDomain& domain);
  ~EbrGuard();

  EbrGuard(const EbrGuard&) = delete;
  EbrGuard& operator=(const EbrGuard&) = delete;

 private:
  EpochSlot* slot_;
  bool outermost_;
};

// A reclamation domain: one global epoch, one slot registry, one retire
// queue. Independent structures may share the process-wide Global() domain
// (fewer slots to scan) or own a private one (isolated grace periods).
class EbrDomain {
 public:
  // All domain state lives behind a shared_ptr (defined in ebr.cc): threads
  // that registered a slot co-own it, so a thread exiting after the domain
  // is destroyed never touches freed memory, and whatever is still retired
  // is freed when the last owner drops.
  struct State;

  EbrDomain();
  ~EbrDomain();  // no live guards may remain when the last owner drops

  // The process-wide default domain (the CodeCache uses this one).
  static EbrDomain& Global();

  // Ensures the calling thread has a slot, so the first pin on a hot path
  // never pays registration. ExecutorPool / ServingLoop workers call this
  // once at startup via Session.
  void RegisterCurrentThread();

  // Defers `delete p` until every reader pinned now has unpinned. Called by
  // writers on the slow path (under their own locks or not — Retire is
  // thread-safe). Amortizes a collection attempt every kCollectPeriod
  // retires.
  template <typename T>
  void Retire(T* p) {
    RetireErased(p, [](void* q) { delete static_cast<T*>(q); });
  }

  // Type-erased Retire for callers that already have a deleter.
  void RetireErased(void* p, void (*deleter)(void*));

  // Attempts one epoch advance and frees every retiree whose grace period
  // has elapsed. Returns the number of objects freed. Safe from any thread;
  // never blocks readers.
  size_t Collect();

  // Lifetime counters (relaxed reads; for tests and telemetry snapshots).
  uint64_t retired() const;
  uint64_t reclaimed() const;
  // Objects currently awaiting their grace period.
  size_t pending() const;
  uint64_t epoch() const;

  static constexpr uint64_t kGraceEpochs = 2;

 private:
  friend class EbrGuard;

  // The calling thread's slot in this domain, registering it on first use.
  EpochSlot* SlotForThisThread();

  std::shared_ptr<State> state_;
};

}  // namespace ebr
}  // namespace nsf

#endif  // SRC_ENGINE_EBR_H_
