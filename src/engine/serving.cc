#include "src/engine/serving.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <utility>

#include "src/support/str.h"
#include "src/telemetry/trace.h"

namespace nsf {
namespace engine {

namespace {

// SplitMix64: a tiny, well-mixed generator with a portable, standard-library-
// independent output sequence — the determinism the seeded-arrivals contract
// promises (std:: distributions are implementation-defined).
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d4d49fbf853625ull;
  return z ^ (z >> 31);
}

double UniformUnit(uint64_t* state) {  // [0, 1), 53-bit resolution
  return static_cast<double>(SplitMix64(state) >> 11) * 0x1.0p-53;
}

// Exponential inter-arrival draw at `rate` arrivals/second.
double ExpGap(uint64_t* state, double rate) {
  return -std::log1p(-UniformUnit(state)) / rate;
}

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

telemetry::Histogram& GlobalHist(const char* name) {
  return *telemetry::MetricsRegistry::Global().GetHistogram(name);
}
telemetry::Counter& GlobalCount(const char* name) {
  return *telemetry::MetricsRegistry::Global().GetCounter(name);
}

}  // namespace

const char* ArrivalKindName(ArrivalKind kind) {
  return kind == ArrivalKind::kPoisson ? "poisson" : "bursty";
}

const char* ServeOutcomeName(ServeOutcome outcome) {
  switch (outcome) {
    case ServeOutcome::kOk:
      return "ok";
    case ServeOutcome::kFailed:
      return "failed";
    case ServeOutcome::kShedQueue:
      return "shed_queue";
    case ServeOutcome::kShedSlo:
      return "shed_slo";
    case ServeOutcome::kAbandoned:
      return "abandoned";
  }
  return "unknown";
}

std::vector<double> GenerateArrivals(const ArrivalConfig& config, double duration_seconds) {
  std::vector<double> out;
  if (config.rate_rps <= 0 || duration_seconds <= 0) {
    return out;
  }
  uint64_t state = config.seed;
  if (config.kind == ArrivalKind::kPoisson) {
    out.reserve(static_cast<size_t>(config.rate_rps * duration_seconds * 1.25) + 8);
    double t = ExpGap(&state, config.rate_rps);
    while (t < duration_seconds) {
      out.push_back(t);
      t += ExpGap(&state, config.rate_rps);
    }
    return out;
  }

  // Bursty: on/off-modulated Poisson. The on-phase (burst_fraction of each
  // period) runs at rate*burst_factor; the off-phase rate is whatever keeps
  // the long-run mean at rate_rps, clamped at zero (burst_factor *
  // burst_fraction >= 1 concentrates every arrival into the bursts).
  // Memorylessness makes clipping a draw at a phase boundary and redrawing
  // at the new rate exactly equivalent to the modulated process.
  double period = config.period_seconds > 0 ? config.period_seconds : 0.25;
  double fraction = std::min(std::max(config.burst_fraction, 0.0), 1.0);
  double on_len = fraction * period;
  double off_len = period - on_len;
  double on_rate = config.rate_rps * std::max(config.burst_factor, 0.0);
  double off_rate = 0;
  if (off_len > 0) {
    off_rate = std::max(0.0, (config.rate_rps * period - on_rate * on_len) / off_len);
  }
  if (on_len <= 0) {  // no on-phase: degenerate to plain Poisson at rate_rps
    on_rate = 0;
    off_rate = config.rate_rps;
  }
  out.reserve(static_cast<size_t>(config.rate_rps * duration_seconds * 1.25) + 8);
  // Walk the on/off phases explicitly (never re-derive the phase from t:
  // floating-point round-trips at a boundary could re-enter the phase just
  // left and stall). Every iteration advances phase_begin by the phase
  // length, and on_len + off_len == period > 0, so the walk always ends.
  double phase_begin = 0;
  bool in_on = true;
  while (phase_begin < duration_seconds) {
    double len = in_on ? on_len : off_len;
    double rate_now = in_on ? on_rate : off_rate;
    double phase_end = phase_begin + len;
    if (len > 0 && rate_now > 0) {
      double t = phase_begin + ExpGap(&state, rate_now);
      while (t < phase_end && t < duration_seconds) {
        out.push_back(t);
        t += ExpGap(&state, rate_now);
      }
    }
    phase_begin = phase_end;
    in_on = !in_on;
  }
  return out;
}

// --- DrrQueue ---

DrrQueue::DrrQueue(std::vector<double> quanta) : quanta_(std::move(quanta)) {
  for (double& q : quanta_) {
    q = std::max(q, 1e-6);  // a zero quantum would stall the rotation
  }
  queues_.resize(quanta_.size());
}

void DrrQueue::Push(DrrItem item) {
  queues_[item.tenant].items.push_back(item);
  total_++;
}

bool DrrQueue::Pop(DrrItem* out) {
  if (total_ == 0) {
    return false;
  }
  // Each full rotation credits every backlogged tenant one quantum, so some
  // deficit eventually covers its head cost: guaranteed progress. A tenant
  // keeps serving (cursor parked) while its deficit lasts — that is what
  // makes service share proportional to quanta.
  for (;;) {
    Queue& q = queues_[cursor_];
    if (q.items.empty()) {
      q.deficit = 0;  // no banking credit while idle
      cursor_ = (cursor_ + 1) % queues_.size();
      continue;
    }
    if (q.deficit >= q.items.front().cost) {
      *out = q.items.front();
      q.items.pop_front();
      q.deficit -= out->cost;
      if (q.items.empty()) {
        q.deficit = 0;
      }
      total_--;
      return true;
    }
    q.deficit += quanta_[cursor_];
    cursor_ = (cursor_ + 1) % queues_.size();
  }
}

bool DrrQueue::PopUrgent(double now_seconds, DrrItem* out) {
  if (total_ == 0) {
    return false;
  }
  // Earliest passed deadline among the queue HEADS only: FIFO order within a
  // tenant is preserved, and the scan is one comparison per tenant.
  size_t best = queues_.size();
  for (size_t t = 0; t < queues_.size(); t++) {
    const Queue& q = queues_[t];
    if (q.items.empty()) {
      continue;
    }
    const DrrItem& head = q.items.front();
    if (head.deadline_seconds <= 0 || now_seconds < head.deadline_seconds) {
      continue;
    }
    if (best == queues_.size() ||
        head.deadline_seconds < queues_[best].items.front().deadline_seconds) {
      best = t;
    }
  }
  if (best == queues_.size()) {
    return false;
  }
  Queue& q = queues_[best];
  *out = q.items.front();
  q.items.pop_front();
  // Charge the jump against the tenant's deficit — possibly driving it
  // negative, so later Pop rotations make the tenant repay and long-run
  // shares stay proportional to quanta.
  q.deficit -= out->cost;
  if (q.items.empty()) {
    q.deficit = 0;
  }
  total_--;
  return true;
}

std::vector<DrrItem> DrrQueue::DrainAll() {
  std::vector<DrrItem> out;
  out.reserve(total_);
  for (Queue& q : queues_) {
    for (DrrItem& item : q.items) {
      out.push_back(item);
    }
    q.items.clear();
    q.deficit = 0;
  }
  total_ = 0;
  return out;
}

// --- ServingLoop ---

struct ServingLoop::TenantState {
  const TenantConfig* config = nullptr;
  // Accounting, guarded by LoopState::mu.
  uint64_t offered = 0;
  uint64_t admitted = 0;
  uint64_t shed_queue = 0;
  uint64_t shed_slo = 0;
  uint64_t completed = 0;
  uint64_t failed = 0;
  uint64_t abandoned = 0;
  uint64_t cold_compiles = 0;
  uint64_t compile_joins = 0;
  uint64_t disk_loads = 0;
  uint64_t tier_warmups = 0;
  uint64_t deadline_dispatches = 0;
  size_t next_mix = 0;
  uint64_t next_seq = 0;
  // Per-tenant latency histograms, owned by the loop's PRIVATE registry so
  // one Run()'s SLO decisions and report never see another run's samples.
  telemetry::Histogram* queue_ns = nullptr;
  telemetry::Histogram* service_ns = nullptr;
  telemetry::Histogram* e2e_ns = nullptr;
  std::vector<ServedRequest> slowest;  // sorted by e2e desc, bounded
};

struct ServingLoop::LoopState {
  explicit LoopState(std::vector<double> quanta) : queue(std::move(quanta)) {}

  std::mutex mu;
  std::condition_variable cv_work;  // workers: an item or shutdown is ready
  std::condition_variable cv_done;  // Run(): queue drained, nothing in flight
  DrrQueue queue;
  std::vector<TenantState> tenants;
  bool generating = true;
  bool stop = false;
  int inflight = 0;
  uint64_t history_flushes = 0;
  std::chrono::steady_clock::time_point start;
  // Merged, time-sorted arrival schedule over all tenants.
  struct Arrival {
    double time = 0;
    size_t tenant = 0;
  };
  std::vector<Arrival> schedule;
  // Private registry: one Run()'s histograms, isolated from the process-wide
  // registry (which still receives the aggregate serving.* instruments).
  telemetry::MetricsRegistry registry;
};

ServingLoop::ServingLoop(Engine* engine, ServingConfig config)
    : engine_(engine), config_(std::move(config)) {
  config_.workers = std::max(1, config_.workers);
  config_.drr_quantum_seconds = std::max(config_.drr_quantum_seconds, 1e-6);
  config_.min_cost_seconds = std::max(config_.min_cost_seconds, 1e-9);
}

void ServingLoop::GeneratorMain(LoopState* loop) {
  if (telemetry::TraceEnabled()) {
    telemetry::TraceRecorder::Global().SetThreadName("serving-generator");
  }
  static telemetry::Counter& offered_count = GlobalCount("serving.offered");
  static telemetry::Counter& admitted_count = GlobalCount("serving.admitted");
  static telemetry::Counter& shed_count = GlobalCount("serving.shed");

  const bool flush_enabled =
      config_.flush_period_seconds > 0 && !engine_->RunHistoryPath().empty();
  auto next_flush =
      loop->start + std::chrono::duration<double>(config_.flush_period_seconds);

  for (const LoopState::Arrival& arrival : loop->schedule) {
    auto at = loop->start + std::chrono::duration<double>(arrival.time);
    // Run-history flushes ride the gaps between arrivals: the table's
    // observations become durable on a period instead of only at ~Engine.
    while (flush_enabled && next_flush < at) {
      std::this_thread::sleep_until(next_flush);
      if (engine_->FlushRunHistory()) {
        std::lock_guard<std::mutex> lock(loop->mu);
        loop->history_flushes++;
      }
      next_flush += std::chrono::duration<double>(config_.flush_period_seconds);
    }
    std::this_thread::sleep_until(at);  // returns immediately when behind

    TenantState& ts = loop->tenants[arrival.tenant];
    const TenantConfig& cfg = *ts.config;
    bool enqueued = false;
    {
      std::lock_guard<std::mutex> lock(loop->mu);
      ts.offered++;
      offered_count.Add();
      // Admission control: fast-reject BEFORE queueing, so a shed request
      // costs the client one check instead of a queue slot and a timeout.
      if (loop->queue.depth(arrival.tenant) >= cfg.max_queue_depth) {
        ts.shed_queue++;
        shed_count.Add();
      } else if (cfg.p99_slo_seconds > 0 &&
                 ts.e2e_ns->count() >= config_.slo_min_samples &&
                 ts.e2e_ns->Percentile(0.99) >
                     static_cast<uint64_t>(cfg.p99_slo_seconds * 1e9)) {
        ts.shed_slo++;
        shed_count.Add();
      } else {
        DrrItem item;
        item.tenant = arrival.tenant;
        item.payload = ts.next_mix;
        ts.next_mix = (ts.next_mix + 1) % cfg.mix.size();
        item.seq = ts.next_seq++;
        item.enqueue_seconds = SecondsSince(loop->start);
        // DRR charges by estimated service cost: the run-history table's
        // observed mean when this key has run, else the cost floor. The
        // estimate sharpens as the loop serves (every completion records).
        item.cost = std::max(engine_->tiering().EstimateSeconds(cfg.mix[item.payload].spec.name),
                             config_.min_cost_seconds);
        // Dispatch deadline for SLO-aware scheduling: once this request has
        // aged through slo_urgency_fraction of its SLO budget, waiting for
        // its DRR turn risks the p99 — PopUrgent serves it first.
        if (config_.slo_aware_dispatch && cfg.p99_slo_seconds > 0) {
          item.deadline_seconds =
              item.enqueue_seconds + config_.slo_urgency_fraction * cfg.p99_slo_seconds;
        }
        loop->queue.Push(item);
        ts.admitted++;
        admitted_count.Add();
        enqueued = true;
      }
    }
    if (enqueued) {
      loop->cv_work.notify_one();
    }
  }

  {
    std::lock_guard<std::mutex> lock(loop->mu);
    loop->generating = false;
  }
  // Wake every worker: those finding an empty queue with generation over exit.
  loop->cv_work.notify_all();
  loop->cv_done.notify_all();
}

void ServingLoop::WorkerMain(LoopState* loop, int worker_index) {
  if (telemetry::TraceEnabled()) {
    telemetry::TraceRecorder::Global().SetThreadName(StrFormat("serve-%d", worker_index));
  }
  static telemetry::Histogram& g_queue_ns = GlobalHist("serving.queue_ns");
  static telemetry::Histogram& g_service_ns = GlobalHist("serving.service_ns");
  static telemetry::Histogram& g_e2e_ns = GlobalHist("serving.e2e_ns");

  // Constructing the Session registers this thread's epoch slot with the
  // EBR domain: warm code-cache hits on the serve path are wait-free from
  // the first request.
  Session session(engine_);
  static telemetry::Counter& deadline_pops = GlobalCount("serving.deadline_pops");
  for (;;) {
    DrrItem item;
    bool deadline_dispatch = false;
    {
      std::unique_lock<std::mutex> lock(loop->mu);
      loop->cv_work.wait(lock, [&] {
        return loop->stop || !loop->queue.empty() || !loop->generating;
      });
      if (loop->stop) {
        return;
      }
      if (loop->queue.empty()) {
        if (!loop->generating) {
          return;
        }
        continue;
      }
      // SLO-aware dispatch first: a head past its deadline preempts DRR
      // order. Otherwise the usual deficit rotation picks.
      if (config_.slo_aware_dispatch) {
        deadline_dispatch = loop->queue.PopUrgent(SecondsSince(loop->start), &item);
      }
      if (!deadline_dispatch) {
        loop->queue.Pop(&item);
      }
      loop->inflight++;
    }
    if (deadline_dispatch) {
      deadline_pops.Add();
    }

    TenantState& ts = loop->tenants[item.tenant];
    const TenantConfig& cfg = *ts.config;
    double dispatch_seconds = SecondsSince(loop->start);

    RunRequest request = cfg.mix[item.payload];
    bool tier_warmup = false;
    if (cfg.tier_up) {
      // Per-call attribution straight from the tiering policy: true exactly
      // when THIS request ran the interpreter warm-up or blocked on another
      // thread's (a disk-loaded or cached profile is the fast path and does
      // not count — that is the continuous-tiering win the report measures).
      std::string tier_error;
      request.options =
          engine_->TierUp(request.spec, request.options, &tier_error, &tier_warmup);
      // On warm-up failure TierUp returns the base options: serve untiered
      // rather than shed — the SLO covers the outcome either way.
    }

    BatchRunResult result =
        ExecuteRequest(&session, request, item.tenant, static_cast<int>(item.seq), worker_index);
    double complete_seconds = SecondsSince(loop->start);

    ServedRequest rec;
    rec.workload = request.spec.name;
    rec.worker = worker_index;
    rec.outcome = result.ok ? ServeOutcome::kOk : ServeOutcome::kFailed;
    rec.enqueue_seconds = item.enqueue_seconds;
    rec.queue_seconds = std::max(0.0, dispatch_seconds - item.enqueue_seconds);
    rec.service_seconds = std::max(0.0, complete_seconds - dispatch_seconds);
    rec.e2e_seconds = std::max(0.0, complete_seconds - item.enqueue_seconds);
    rec.cold_compile = result.compiled_backend;
    rec.compile_join = result.compile_joined;
    rec.disk_load = result.disk_loaded;
    rec.tier_warmup = tier_warmup;
    rec.deadline_dispatch = deadline_dispatch;

    {
      std::lock_guard<std::mutex> lock(loop->mu);
      loop->inflight--;
      if (result.ok) {
        ts.completed++;
      } else {
        ts.failed++;
      }
      ts.cold_compiles += rec.cold_compile ? 1 : 0;
      ts.compile_joins += rec.compile_join ? 1 : 0;
      ts.disk_loads += rec.disk_load ? 1 : 0;
      ts.tier_warmups += rec.tier_warmup ? 1 : 0;
      ts.deadline_dispatches += rec.deadline_dispatch ? 1 : 0;
      ts.queue_ns->RecordSeconds(rec.queue_seconds);
      ts.service_ns->RecordSeconds(rec.service_seconds);
      ts.e2e_ns->RecordSeconds(rec.e2e_seconds);
      g_queue_ns.RecordSeconds(rec.queue_seconds);
      g_service_ns.RecordSeconds(rec.service_seconds);
      g_e2e_ns.RecordSeconds(rec.e2e_seconds);
      // Keep the tenant's worst tail, attribution attached.
      ts.slowest.push_back(rec);
      std::sort(ts.slowest.begin(), ts.slowest.end(),
                [](const ServedRequest& a, const ServedRequest& b) {
                  return a.e2e_seconds > b.e2e_seconds;
                });
      if (ts.slowest.size() > config_.slowest_per_tenant) {
        ts.slowest.resize(config_.slowest_per_tenant);
      }
      if (loop->queue.empty() && loop->inflight == 0 && !loop->generating) {
        loop->cv_done.notify_all();
      }
    }
  }
}

ServingReport ServingLoop::Run(const std::vector<TenantConfig>& tenants) {
  telemetry::Span span("serving", "engine");
  if (span.active()) {
    span.arg("tenants", static_cast<uint64_t>(tenants.size()));
    span.arg("workers", config_.workers);
  }

  std::vector<double> quanta;
  quanta.reserve(tenants.size());
  for (const TenantConfig& t : tenants) {
    quanta.push_back(std::max(t.weight, 0.0) * config_.drr_quantum_seconds);
  }
  LoopState loop(std::move(quanta));
  loop.tenants.resize(tenants.size());
  for (size_t i = 0; i < tenants.size(); i++) {
    TenantState& ts = loop.tenants[i];
    ts.config = &tenants[i];
    ts.queue_ns = loop.registry.GetHistogram("serving." + tenants[i].name + ".queue_ns");
    ts.service_ns = loop.registry.GetHistogram("serving." + tenants[i].name + ".service_ns");
    ts.e2e_ns = loop.registry.GetHistogram("serving." + tenants[i].name + ".e2e_ns");
    if (tenants[i].mix.empty()) {
      continue;  // nothing to run: a mixless tenant offers no load
    }
    // Deterministic, per-tenant arrival schedule.
    for (double t : GenerateArrivals(tenants[i].arrivals, config_.duration_seconds)) {
      loop.schedule.push_back({t, i});
    }
  }
  std::stable_sort(loop.schedule.begin(), loop.schedule.end(),
                   [](const LoopState::Arrival& a, const LoopState::Arrival& b) {
                     return a.time < b.time;
                   });

  ServingReport report;
  report.workers = config_.workers;
  report.duration_seconds = config_.duration_seconds;
  report.stats_before = engine_->Stats();
  loop.start = std::chrono::steady_clock::now();

  std::vector<std::thread> workers;
  workers.reserve(config_.workers);
  for (int i = 0; i < config_.workers; i++) {
    workers.emplace_back([this, &loop, i] { WorkerMain(&loop, i); });
  }
  std::thread generator([this, &loop] { GeneratorMain(&loop); });
  generator.join();

  // Drain: generation is over; wait for the queues to empty and in-flight
  // requests to land. On timeout the leftovers are abandoned (counted, never
  // silently dropped) and workers stop after their current request.
  {
    std::unique_lock<std::mutex> lock(loop.mu);
    bool drained = loop.cv_done.wait_for(
        lock, std::chrono::duration<double>(config_.drain_timeout_seconds),
        [&] { return loop.queue.empty() && loop.inflight == 0; });
    if (!drained) {
      loop.stop = true;
      for (const DrrItem& item : loop.queue.DrainAll()) {
        loop.tenants[item.tenant].abandoned++;
      }
    }
  }
  loop.cv_work.notify_all();
  for (std::thread& w : workers) {
    w.join();
  }
  report.wall_seconds = SecondsSince(loop.start);
  report.stats_after = engine_->Stats();
  // Final run-history flush: everything this loop observed is durable even
  // if the process never destroys the Engine cleanly.
  if (engine_->FlushRunHistory()) {
    loop.history_flushes++;
  }
  report.history_flushes = loop.history_flushes;

  for (TenantState& ts : loop.tenants) {
    TenantReport tr;
    tr.name = ts.config->name;
    tr.offered = ts.offered;
    tr.admitted = ts.admitted;
    tr.shed_queue = ts.shed_queue;
    tr.shed_slo = ts.shed_slo;
    tr.completed = ts.completed;
    tr.failed = ts.failed;
    tr.abandoned = ts.abandoned;
    tr.offered_rps = config_.duration_seconds > 0
                         ? static_cast<double>(ts.offered) / config_.duration_seconds
                         : 0;
    tr.goodput_rps =
        report.wall_seconds > 0 ? static_cast<double>(ts.completed) / report.wall_seconds : 0;
    tr.queue_ns = ts.queue_ns->TakeSnapshot();
    tr.service_ns = ts.service_ns->TakeSnapshot();
    tr.e2e_ns = ts.e2e_ns->TakeSnapshot();
    tr.cold_compiles = ts.cold_compiles;
    tr.compile_joins = ts.compile_joins;
    tr.disk_loads = ts.disk_loads;
    tr.tier_warmups = ts.tier_warmups;
    tr.deadline_dispatches = ts.deadline_dispatches;
    tr.slowest = std::move(ts.slowest);
    report.offered += tr.offered;
    report.admitted += tr.admitted;
    report.shed += tr.shed();
    report.completed += tr.completed;
    report.failed += tr.failed;
    report.abandoned += tr.abandoned;
    report.tenants.push_back(std::move(tr));
  }
  report.offered_rps = config_.duration_seconds > 0
                           ? static_cast<double>(report.offered) / config_.duration_seconds
                           : 0;
  report.goodput_rps =
      report.wall_seconds > 0 ? static_cast<double>(report.completed) / report.wall_seconds : 0;
  if (span.active()) {
    span.arg("offered", report.offered);
    span.arg("completed", report.completed);
    span.arg("shed", report.shed);
  }
  return report;
}

}  // namespace engine
}  // namespace nsf
