// Serving-mode engine: the open-loop, multi-tenant layer over ExecutorPool's
// workers — the "millions of users" metric the ROADMAP's north star asks for.
//
// Batch execution (src/engine/executor.h) measures MAKESPAN: a closed loop
// where the next run starts when a worker frees up, so queueing delay is
// invisible by construction. Serving measures TAIL LATENCY: requests arrive
// on their own clock (an open-loop arrival process does not slow down when
// the system falls behind), wait in per-tenant FIFO queues, and either meet
// their SLO or are shed. Cold compiles, tier-up warm-ups, and disk-tier
// loads all become tail events attributed to the requests they stalled.
//
//   GenerateArrivals — deterministic (seeded) Poisson or bursty on/off
//                      arrival times; pure function, unit-testable.
//   DrrQueue         — per-tenant FIFO queues drained under deficit-round-
//                      robin: each visit credits a tenant's deficit by its
//                      quantum and serves while the deficit covers the head
//                      request's estimated cost, so service share tracks
//                      quanta (weights), not arrival rates — a flooding
//                      tenant cannot starve a polite one.
//   ServingLoop      — a generator thread enqueues arrivals in real time
//                      (shedding at admission when a tenant's queue depth or
//                      observed e2e p99 exceeds its SLO) while a worker pool
//                      (one Session per worker, same isolation contract as
//                      ExecutorPool) drains the DRR queue. Every request
//                      records enqueue -> dispatch -> complete timestamps
//                      into per-tenant queue/service/e2e histograms.
//
// Every completed run also feeds the engine's run-history table (the DRR
// cost estimates sharpen as the loop serves), and the loop periodically
// calls Engine::FlushRunHistory so a crashed process keeps what it learned.
#ifndef SRC_ENGINE_SERVING_H_
#define SRC_ENGINE_SERVING_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "src/engine/executor.h"
#include "src/telemetry/metrics.h"

namespace nsf {
namespace engine {

// --- Arrival processes ---

enum class ArrivalKind : uint8_t {
  kPoisson,  // memoryless: exponential inter-arrivals at rate_rps
  kBursty,   // on/off-modulated Poisson: rate_rps*burst_factor during the
             // on-phase (burst_fraction of each period), a compensating low
             // rate during the off-phase, so the long-run mean stays rate_rps
};

const char* ArrivalKindName(ArrivalKind kind);

struct ArrivalConfig {
  ArrivalKind kind = ArrivalKind::kPoisson;
  double rate_rps = 100.0;       // long-run mean arrival rate
  double burst_factor = 4.0;     // bursty only: on-phase rate multiplier
  double burst_fraction = 0.25;  // bursty only: on-phase share of each period
  double period_seconds = 0.25;  // bursty only: on/off cycle length
  uint64_t seed = 1;
};

// Arrival times in [0, duration_seconds), sorted ascending. Deterministic:
// the same config and duration always produce the identical schedule (the
// exponential draws are hand-rolled from a seeded xorshift-style generator,
// not std:: distributions, so the sequence is stable across standard
// libraries). Pure function — generation is decoupled from the real-time
// loop precisely so tests can assert on schedules without running one.
std::vector<double> GenerateArrivals(const ArrivalConfig& config, double duration_seconds);

// --- Deficit-round-robin queue ---

// One item waiting in a tenant's FIFO queue. `payload` is caller-defined
// (the serving loop stores the tenant's workload-mix index); `cost` is the
// estimated service cost in (approximate) seconds the DRR deficit is charged
// against; `enqueue_seconds` is the caller's enqueue timestamp.
struct DrrItem {
  size_t tenant = 0;
  size_t payload = 0;
  double cost = 0;
  double enqueue_seconds = 0;
  uint64_t seq = 0;  // caller-assigned sequence number (FIFO tiebreak/debug)
  // Dispatch deadline for SLO-aware scheduling (same clock/unit as
  // enqueue_seconds; 0 = none). Once `now` passes it, PopUrgent may serve
  // this item out of DRR order — the serving loop sets it to
  // enqueue + slo_urgency_fraction * the tenant's p99 SLO budget.
  double deadline_seconds = 0;
};

// Per-tenant FIFO queues drained under deficit round robin (Shreedhar &
// Varghese): visiting a non-empty tenant credits its deficit by its quantum;
// a tenant at the cursor is served while its deficit covers the head item's
// cost. A tenant whose queue empties forfeits its deficit (no banking idle
// credit). Service share therefore tracks quanta, not arrival rates or
// queue depths. NOT thread-safe — the serving loop guards it with its own
// mutex; tests drive it directly and deterministically.
class DrrQueue {
 public:
  // One quantum per tenant, in the same unit as DrrItem::cost. Quanta are
  // clamped to a small positive floor so every full rotation makes progress.
  explicit DrrQueue(std::vector<double> quanta);

  void Push(DrrItem item);  // item.tenant selects the FIFO queue
  // DRR-picks the next item to serve. False when every queue is empty.
  bool Pop(DrrItem* out);

  // SLO-aware escape hatch, tried BEFORE Pop: serves the head item whose
  // dispatch deadline has passed (earliest deadline first among queue
  // heads), regardless of whose DRR turn it is. The served tenant's deficit
  // is still charged — it may go negative, so the tenant repays the jump on
  // later rotations and long-run shares remain proportional to quanta.
  // False when no head is past its deadline (the common, fast case: one
  // comparison per tenant).
  bool PopUrgent(double now_seconds, DrrItem* out);

  size_t depth(size_t tenant) const { return queues_[tenant].items.size(); }
  size_t total_depth() const { return total_; }
  bool empty() const { return total_ == 0; }
  size_t tenants() const { return queues_.size(); }
  double deficit(size_t tenant) const { return queues_[tenant].deficit; }

  // Drains every queue in tenant order (shutdown accounting).
  std::vector<DrrItem> DrainAll();

 private:
  struct Queue {
    std::deque<DrrItem> items;
    double deficit = 0;
  };
  std::vector<Queue> queues_;
  std::vector<double> quanta_;
  size_t cursor_ = 0;
  size_t total_ = 0;
};

// --- Tenants ---

// One tenant: a named workload mix with a target arrival rate and an SLO.
// Arrivals round-robin over `mix` (each RunRequest's `reps` is ignored —
// one arrival is one execution).
struct TenantConfig {
  std::string name;
  std::vector<RunRequest> mix;
  ArrivalConfig arrivals;
  // DRR weight: quantum = weight * ServingConfig::drr_quantum_seconds.
  double weight = 1.0;
  // Admission control (fast-reject at enqueue, before any queueing):
  //   - shed when the tenant's queue already holds max_queue_depth requests;
  //   - shed while the tenant's observed e2e p99 exceeds p99_slo_seconds
  //     (0 disables the latency SLO; the check arms only after
  //     ServingConfig::slo_min_samples completions so a handful of warm-up
  //     outliers cannot blackhole a tenant).
  size_t max_queue_depth = 256;
  double p99_slo_seconds = 0;
  // Tier the mix's options through the engine's TieringPolicy before each
  // compile. The FIRST such request pays (or joins) the interpreter warm-up
  // — a tail event the report attributes to it.
  bool tier_up = false;
};

// --- Reports ---

// Why a request left the system the way it did.
enum class ServeOutcome : uint8_t {
  kOk,         // completed, results valid
  kFailed,     // compile error / instantiate failure / trap
  kShedQueue,  // fast-rejected at admission: queue depth at bound
  kShedSlo,    // fast-rejected at admission: observed p99 over SLO
  kAbandoned,  // still queued when the drain timeout expired
};

const char* ServeOutcomeName(ServeOutcome outcome);

// One served request's timeline and attribution (kept for the per-tenant
// `slowest` list; full per-request retention is optional).
struct ServedRequest {
  std::string workload;
  int worker = -1;
  ServeOutcome outcome = ServeOutcome::kOk;
  double enqueue_seconds = 0;   // relative to serving start
  double queue_seconds = 0;     // enqueue -> dispatch
  double service_seconds = 0;   // dispatch -> complete
  double e2e_seconds = 0;       // enqueue -> complete
  // Tail-event attribution: what this request stalled on (CompileInfo).
  bool cold_compile = false;  // paid a backend compile
  bool compile_join = false;  // blocked on another worker's compile
  bool disk_load = false;     // paid a disk-tier artifact deserialization
  bool tier_warmup = false;   // paid (or joined) an interpreter warm-up
  bool deadline_dispatch = false;  // served out of DRR order by PopUrgent
};

struct TenantReport {
  std::string name;
  uint64_t offered = 0;     // arrivals generated
  uint64_t admitted = 0;    // enqueued (offered - shed)
  uint64_t shed_queue = 0;  // fast-rejected: queue depth
  uint64_t shed_slo = 0;    // fast-rejected: p99 SLO
  uint64_t completed = 0;   // admitted requests that ran ok
  uint64_t failed = 0;      // admitted requests that errored/trapped
  uint64_t abandoned = 0;   // admitted requests dropped at drain timeout
  double offered_rps = 0;   // offered / generation duration
  double goodput_rps = 0;   // completed / wall_seconds
  // enqueue->dispatch, dispatch->complete, enqueue->complete (nanoseconds).
  telemetry::Histogram::Snapshot queue_ns;
  telemetry::Histogram::Snapshot service_ns;
  telemetry::Histogram::Snapshot e2e_ns;
  // Tail events this tenant's requests stalled on.
  uint64_t cold_compiles = 0;
  uint64_t compile_joins = 0;
  uint64_t disk_loads = 0;
  uint64_t tier_warmups = 0;
  uint64_t deadline_dispatches = 0;  // requests served out of DRR order
  // The tenant's slowest completed/failed requests by e2e, worst first —
  // the tail, with each request's stall attribution attached.
  std::vector<ServedRequest> slowest;

  uint64_t shed() const { return shed_queue + shed_slo; }
};

struct ServingReport {
  int workers = 0;
  double duration_seconds = 0;  // configured generation horizon
  double wall_seconds = 0;      // generation + drain, as executed
  uint64_t offered = 0;
  uint64_t admitted = 0;
  uint64_t shed = 0;
  uint64_t completed = 0;
  uint64_t failed = 0;
  uint64_t abandoned = 0;
  double offered_rps = 0;
  double goodput_rps = 0;
  uint64_t history_flushes = 0;  // periodic Engine::FlushRunHistory writes
  std::vector<TenantReport> tenants;
  EngineStats stats_before;
  EngineStats stats_after;

  // Conservation: every offered request is accounted exactly once.
  bool accounted() const {
    return offered == completed + failed + shed + abandoned;
  }
};

struct ServingConfig {
  int workers = 4;
  double duration_seconds = 1.0;    // arrival-generation horizon
  double drain_timeout_seconds = 60;  // max wait for queues to empty after it
  // DRR quantum per unit weight, in the cost unit (estimated seconds). Small
  // vs typical request cost => fine-grained interleaving; the floor keeps
  // rotation progressing when estimates are 0 (cold keys).
  double drr_quantum_seconds = 0.002;
  double min_cost_seconds = 1e-4;   // cost floor for unestimated requests
  // Arm latency-SLO shedding only after this many completions per tenant.
  uint64_t slo_min_samples = 32;
  // Period for Engine::FlushRunHistory from the generator thread (0 = only
  // the final flush when the loop ends).
  double flush_period_seconds = 0.5;
  size_t slowest_per_tenant = 8;    // tail depth kept in TenantReport::slowest
  // SLO-aware dispatch: when a queued request's age reaches
  // slo_urgency_fraction of its tenant's p99 SLO budget, workers serve it
  // deadline-first instead of waiting for its DRR turn (DrrQueue::PopUrgent).
  // Only affects tenants with p99_slo_seconds set; pure DRR otherwise.
  bool slo_aware_dispatch = true;
  double slo_urgency_fraction = 0.75;
};

// The serving loop itself. Construction is cheap; Run() spawns the workers
// and the generator, blocks until the horizon elapses and the queues drain
// (or the drain timeout fires), and aggregates the report. Run() may be
// called repeatedly; calls are serialized.
class ServingLoop {
 public:
  ServingLoop(Engine* engine, ServingConfig config);

  ServingReport Run(const std::vector<TenantConfig>& tenants);

  Engine* engine() { return engine_; }
  const ServingConfig& config() const { return config_; }

 private:
  struct TenantState;
  struct LoopState;

  void GeneratorMain(LoopState* loop);
  void WorkerMain(LoopState* loop, int worker_index);

  Engine* engine_;
  ServingConfig config_;
};

}  // namespace engine
}  // namespace nsf

#endif  // SRC_ENGINE_SERVING_H_
