#include "src/engine/tierer.h"

#include <chrono>
#include <string>
#include <utility>

#include "src/engine/ebr.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/trace.h"

namespace nsf {
namespace engine {

BackgroundTierer::BackgroundTierer(Engine* engine, uint64_t hot_samples,
                                   double scan_period_seconds)
    : engine_(engine),
      hot_samples_(hot_samples == 0 ? 1 : hot_samples),
      scan_period_seconds_(scan_period_seconds <= 0 ? 0.005 : scan_period_seconds) {
  thread_ = std::thread([this] { ThreadMain(); });
}

BackgroundTierer::~BackgroundTierer() {
  Stop();
  if (thread_.joinable()) {
    thread_.join();
  }
}

void BackgroundTierer::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  done_cv_.notify_all();
}

void BackgroundTierer::Watch(CompiledModuleRef code, WorkloadSpec spec, CodegenOptions base,
                             std::shared_ptr<SampledProfile> sampler) {
  if (code == nullptr || sampler == nullptr) {
    return;
  }
  auto w = std::make_unique<Watched>();
  w->module_hash = code->module_hash();
  w->fingerprint = code->fingerprint();
  w->code = std::move(code);
  w->spec = std::move(spec);
  w->base = std::move(base);
  w->sampler = std::move(sampler);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& existing : watches_) {
      if (existing->module_hash == w->module_hash && existing->fingerprint == w->fingerprint) {
        return;  // already watched (every warm CompileWorkload re-offers it)
      }
    }
    watches_.push_back(std::move(w));
  }
  cv_.notify_all();
}

size_t BackgroundTierer::watch_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return watches_.size();
}

bool BackgroundTierer::PendingLocked() const {
  for (const auto& w : watches_) {
    if (w->in_progress) {
      return true;
    }
    if (!w->swapped && w->attempts < kMaxAttempts &&
        w->sampler->total_samples() >= hot_samples_) {
      return true;
    }
  }
  return false;
}

void BackgroundTierer::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.notify_all();  // skip the remainder of the current scan sleep
  done_cv_.wait(lock, [&] { return stop_ || !PendingLocked(); });
}

void BackgroundTierer::ThreadMain() {
  // The recompile path probes the code cache's wait-free index; register
  // this thread's epoch slot up front like every executor thread does.
  ebr::EbrDomain::Global().RegisterCurrentThread();
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    Watched* pick = nullptr;
    for (const auto& w : watches_) {
      if (!w->in_progress && !w->swapped && w->attempts < kMaxAttempts &&
          w->sampler->total_samples() >= hot_samples_) {
        pick = w.get();
        break;
      }
    }
    if (pick == nullptr) {
      done_cv_.notify_all();
      cv_.wait_for(lock, std::chrono::duration<double>(scan_period_seconds_));
      continue;
    }
    pick->in_progress = true;
    lock.unlock();
    bool swapped = false;
    try {
      swapped = TierOne(*pick);
    } catch (...) {
      // A throwing warm-up/compile must not kill the scan thread; the watch
      // just burns an attempt.
    }
    lock.lock();
    pick->in_progress = false;
    pick->attempts++;
    pick->swapped = swapped;
    done_cv_.notify_all();
  }
  done_cv_.notify_all();
}

bool BackgroundTierer::TierOne(const Watched& w) {
  telemetry::Span span("tier.recompile", "engine");
  span.arg("workload", w.spec.name);

  // Preferred profile source: the full interpreter warm-up, run on THIS
  // thread (that is the whole point — the pause moves off the serve path).
  // It yields the same PGO options stop-the-world tiering would, so the
  // swapped-in code is byte-identical to the old tier-up pipeline's output,
  // and Engine::TierUp disk-persists the profile for the next process.
  std::string error;
  CodegenOptions tiered = engine_->TierUp(w.spec, w.base, &error);
  if (tiered.profile == nullptr) {
    // Warm-up failed (build error, trap, fuel misconfiguration): fall back
    // to the profile the samples themselves imply. Coarser — entry/back-edge
    // weights only, no per-site vectors — but enough for pgo_layout's
    // hot/cold partitioning. Insert under a distinct name so a later
    // successful warm-up is not shadowed.
    Profile sampled = w.sampler->ToProfile(w.code->module().NumImportedFuncs());
    if (sampled.num_funcs() == 0) {
      return false;
    }
    const Profile* stable =
        engine_->tiering().InsertProfile(w.spec.name + "#sampled", std::move(sampled));
    tiered = engine_->tiering().manager().TierUp(w.base, stable);
    if (tiered.profile == nullptr) {
      return false;
    }
  }

  engine_->background_recompiles_.fetch_add(1, std::memory_order_relaxed);
  CompileInfo info;
  CompiledModuleRef tiered_code = engine_->Compile(w.code->module(), tiered, &info);
  if (tiered_code == nullptr || !tiered_code->ok) {
    span.arg("error", tiered_code == nullptr ? "null result" : tiered_code->error);
    return false;
  }

  // The hot swap: publish the tiered module under the BASE key. Every future
  // lookup of the base (module, options) pair — which is what executors keep
  // asking for — now serves the recompiled code.
  telemetry::Span swap_span("tier.swap", "engine");
  swap_span.arg("workload", w.spec.name);
  swap_span.arg("profile", tiered_code->profile_name());
  engine_->cache().Republish(w.module_hash, w.fingerprint, tiered_code);
  engine_->tier_swaps_.fetch_add(1, std::memory_order_relaxed);
  static telemetry::Counter& swaps =
      *telemetry::MetricsRegistry::Global().GetCounter("engine.tier_swaps");
  swaps.Add();
  return true;
}

}  // namespace engine
}  // namespace nsf
