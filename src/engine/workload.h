// WorkloadSpec: how to build a benchmark program's module, stage its input
// files, and which output files constitute its result. This is the unit the
// Engine compiles and a Session runs; it lives below both the harness (which
// adds statistics/validation) and the tiering layer (which profiles it).
#ifndef SRC_ENGINE_WORKLOAD_H_
#define SRC_ENGINE_WORKLOAD_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/wasm/module.h"

namespace nsf {

class BrowsixKernel;

// A benchmark program: how to build its module, stage its inputs, and which
// output files constitute its result.
struct WorkloadSpec {
  std::string name;                         // e.g. "401.bzip2"
  std::function<Module()> build;            // builds the Wasm module
  std::function<void(BrowsixKernel&)> setup;  // stages input files
  std::vector<std::string> argv = {"prog"};
  std::string entry = "main";
  std::vector<std::string> output_files;    // validated via cmp
  uint64_t fuel = 0;                        // 0 = machine default cap
};

}  // namespace nsf

#endif  // SRC_ENGINE_WORKLOAD_H_
