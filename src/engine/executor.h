// Parallel batch execution over one shared Engine: the "serving-style"
// layer the ROADMAP's heavy-traffic north star asks for.
//
//   RunRequest   — one (workload, options) pair to execute `reps` times.
//   ExecutorPool — a fixed pool of worker threads, each owning its own
//                  Session (kernel + VFS), pulling jobs off a shared queue.
//                  The Engine behind the pool is shared, so every compile
//                  goes through the sharded code cache: N workers requesting
//                  the same (module, options) key trigger exactly one
//                  backend compile.
//   BatchReport  — per-run outcomes plus aggregates: ok/failed counts,
//                  total simulated seconds, the schedule's simulated
//                  makespan (max over workers), and engine-stats snapshots
//                  bracketing the batch.
//
// Isolation contract: a worker Reset()s its Session before every run, so no
// staged file, fd, or kernel accounting leaks between runs — whether two
// runs land on the same worker or different ones. Machine/heap state is
// fresh per run by Instance construction.
#ifndef SRC_ENGINE_EXECUTOR_H_
#define SRC_ENGINE_EXECUTOR_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/engine/engine.h"
#include "src/engine/workload.h"

namespace nsf {
namespace engine {

// One unit of batch work: run `spec` under `options`, `reps` times.
struct RunRequest {
  WorkloadSpec spec;
  CodegenOptions options;
  int reps = 1;
  bool collect_outputs = true;  // read spec.output_files back after each run
};

// How ExecutorPool orders jobs onto free workers.
//   kLpt  — longest-processing-time-first by each request's work estimate
//           (TieringPolicy::EstimateSeconds): the OBSERVED mean simulated
//           seconds from the run-history table when the key has run before,
//           else the warm-up profile's instruction count scaled to nominal
//           seconds. Classic greedy makespan heuristic: big jobs can't land
//           last and leave one worker running alone. Requests with neither
//           history nor profile carry estimate 0, so an entirely cold batch
//           degrades to exactly kFifo (the sort is stable).
//   kFifo — pure queue order (request-major, then rep), the pre-LPT behavior.
//
// Every completed run feeds the run-history table (TieringPolicy::RecordRun),
// so LPT estimates sharpen as batches repeat.
enum class SchedulePolicy : uint8_t { kLpt, kFifo };

const char* SchedulePolicyName(SchedulePolicy policy);

// One run's result inside a batch (request `request_index`, repetition `rep`,
// executed by worker `worker`).
struct BatchRunResult {
  size_t request_index = 0;
  int rep = 0;
  int worker = 0;
  bool ok = false;
  bool cache_hit = false;  // compile was served from the engine's code cache
  // Per-run compile attribution (CompileInfo, engine.h): whether THIS run
  // paid a backend compile, deserialized the artifact from the disk tier, or
  // blocked on another worker's in-flight compile. The serving layer
  // (src/engine/serving.h) uses these to attribute tail latency to the cold
  // event that caused it.
  bool compiled_backend = false;
  bool disk_loaded = false;
  bool compile_joined = false;
  std::string error;
  RunOutcome outcome;
  CompileStats compile;  // stats of the (possibly cached) compiled module
  std::vector<std::pair<std::string, std::vector<uint8_t>>> outputs;
  double wall_seconds = 0;  // host wall clock for this run (incl. cache fetch)
};

// Aggregated result of a batch. `sim_makespan_seconds` is the simulated
// finish time of the schedule the pool actually produced: the max over
// workers of the simulated seconds each worker executed. Throughput in the
// simulation's time domain is runs / sim_makespan_seconds; with one worker
// the makespan equals sim_seconds_total.
struct BatchReport {
  int workers = 0;
  SchedulePolicy schedule = SchedulePolicy::kLpt;  // policy the pool applied
  std::vector<BatchRunResult> runs;  // ordered by (request_index, rep)
  uint64_t ok_runs = 0;
  uint64_t failed_runs = 0;
  double wall_seconds = 0;        // host wall clock for the whole batch
  // Sum of simulated seconds across OK runs only. A trapped run carries the
  // partial simulated time it burned before the trap; folding that into the
  // throughput numerator would credit work whose results were discarded, so
  // it is reported separately below.
  double sim_seconds_total = 0;
  // Partial simulated seconds accumulated by FAILED runs before they
  // trapped; excluded from sim_seconds_total, worker makespans, and
  // throughput.
  double failed_sim_seconds = 0;
  double sim_makespan_seconds = 0;
  std::vector<double> worker_sim_seconds;  // indexed by worker; OK runs only
  // Under kLpt: how many requests carried an observed run-history estimate
  // (vs the profiled-work fallback or none). 0 under kFifo.
  uint64_t lpt_observed_requests = 0;
  EngineStats stats_before;  // engine snapshot when the batch started
  EngineStats stats_after;   // engine snapshot when the batch finished

  bool all_ok() const { return failed_runs == 0; }
};

// Executes one request-rep on `session`: Reset() for isolation, stage the
// workload's inputs, compile-or-fetch through the session's engine,
// instantiate, run, and optionally read the output files back. Shared by
// Session::RunBatch (serial) and ExecutorPool (parallel). Pass
// reset_first=false only when `session` is freshly constructed (its kernel
// is already pristine, so the Reset would just rebuild it).
BatchRunResult ExecuteRequest(Session* session, const RunRequest& request,
                              size_t request_index, int rep, int worker,
                              bool reset_first = true);

// Fixed-size worker pool over one Engine. Construction spawns the workers;
// each builds its Session on its own thread and keeps it across batches.
// Run() may be called repeatedly (batches are serialized); the pool shuts
// down on destruction.
class ExecutorPool {
 public:
  ExecutorPool(Engine* engine, int workers);
  ~ExecutorPool();

  ExecutorPool(const ExecutorPool&) = delete;
  ExecutorPool& operator=(const ExecutorPool&) = delete;

  // Expands `requests` into request×rep jobs, orders them by `schedule`
  // (LPT by profiled work by default, FIFO when nothing is profiled),
  // executes them across the workers (a free worker takes the next job),
  // blocks until every job finished, and aggregates the report. Results in
  // the report stay in (request_index, rep) order regardless of schedule.
  BatchReport Run(const std::vector<RunRequest>& requests,
                  SchedulePolicy schedule = SchedulePolicy::kLpt);

  int workers() const { return static_cast<int>(threads_.size()); }
  Engine* engine() { return engine_; }

 private:
  struct Job {
    const RunRequest* request = nullptr;
    size_t request_index = 0;
    int rep = 0;
    size_t slot = 0;  // index into the results vector
  };

  void WorkerMain(int worker_index);

  Engine* engine_;

  std::mutex mu_;
  std::condition_variable cv_work_;  // workers: "a job or shutdown is ready"
  std::condition_variable cv_done_;  // Run(): "all jobs of this batch done"
  std::vector<Job> jobs_;
  size_t next_job_ = 0;
  size_t jobs_done_ = 0;
  bool shutdown_ = false;
  std::vector<BatchRunResult>* results_ = nullptr;  // slot-indexed, preallocated

  std::mutex run_mu_;  // serializes concurrent Run() callers
  std::vector<std::thread> threads_;
};

// Fills the aggregate fields of `report` (ok/failed counts, sim totals,
// per-worker sim seconds, makespan) from report->runs and report->workers.
// Only OK runs count toward sim_seconds_total and the per-worker makespans;
// failed runs' partial simulated time lands in failed_sim_seconds.
void FinalizeBatchReport(BatchReport* report);

}  // namespace engine
}  // namespace nsf

#endif  // SRC_ENGINE_EXECUTOR_H_
