// Background recompilation thread for continuous tiering.
//
// The stop-the-world tiering story (TieringPolicy::TierUp on the serve path)
// pays the interpreter warm-up inline with a request — visible as tier_warmup
// tail events in serving p99. The BackgroundTierer moves the whole pipeline
// off the serve path:
//
//   1. Executors run base-tier code with sampled always-on profiling
//      (src/profile/sampled.h): every Nth back-edge/call folds into the
//      module's shared SampledProfile sink on machine teardown.
//   2. This thread scans the sinks on a period. When a watched module's
//      sample total crosses the hotness threshold it runs the existing PGO
//      pipeline — by preference the full interpreter warm-up (highest
//      fidelity, byte-identical artifacts to stop-the-world tiering, and the
//      profile disk-persists for the next process), falling back to a
//      profile reconstructed from the samples when the warm-up fails.
//   3. The recompiled module is hot-swapped into the CodeCache under the
//      BASE options key (CodeCache::Republish): the safe point is one
//      release-store into the wait-free hit index, in-flight runs finish on
//      the old code their shared_ptr pins, and the displaced index node is
//      retired through EBR.
//
// Executors never block on any of this: they keep taking warm hits on the
// old entry until the swap lands, then take warm hits on the new one.
//
// Owned by Engine (constructed when background_tiering + sample_period are
// both set); Engine::~Engine stops the thread before any shared state dies.
#ifndef SRC_ENGINE_TIERER_H_
#define SRC_ENGINE_TIERER_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/engine/engine.h"

namespace nsf {
namespace engine {

class BackgroundTierer {
 public:
  BackgroundTierer(Engine* engine, uint64_t hot_samples, double scan_period_seconds);
  ~BackgroundTierer();  // Stop() + join

  // Registers base-tier code for tier-up watching. Deduped by the compiled
  // module's (module_hash, fingerprint) key; `code` is retained so the
  // module stays rebuildable. Thread-safe.
  void Watch(CompiledModuleRef code, WorkloadSpec spec, CodegenOptions base,
             std::shared_ptr<SampledProfile> sampler);

  // Blocks until no watch is both past the threshold and still unswapped
  // (tests/benches want a deterministic "all swaps landed" point; production
  // never calls this). Watches that exhausted their attempts count as done.
  void Drain();

  // Stops the scan thread (idempotent; also done by the destructor).
  void Stop();

  size_t watch_count() const;

 private:
  struct Watched {
    // Immutable after registration (TierOne reads them without the lock).
    uint64_t module_hash = 0;
    uint64_t fingerprint = 0;  // BASE options key — the swap target
    CompiledModuleRef code;
    WorkloadSpec spec;
    CodegenOptions base;
    std::shared_ptr<SampledProfile> sampler;
    // Scan-thread state, guarded by mu_.
    bool in_progress = false;
    bool swapped = false;
    int attempts = 0;
  };
  static constexpr int kMaxAttempts = 2;

  void ThreadMain();
  // The slow path, run OUTSIDE mu_: profile -> PGO compile -> hot swap.
  // True when the swap was published.
  bool TierOne(const Watched& w);
  bool PendingLocked() const;

  Engine* engine_;
  const uint64_t hot_samples_;
  const double scan_period_seconds_;

  mutable std::mutex mu_;
  std::condition_variable cv_;       // wakes the scan thread
  std::condition_variable done_cv_;  // wakes Drain() waiters
  bool stop_ = false;
  std::vector<std::unique_ptr<Watched>> watches_;
  std::thread thread_;
};

}  // namespace engine
}  // namespace nsf

#endif  // SRC_ENGINE_TIERER_H_
