// On-disk tier of the Engine's two-level code cache: serialized
// CompiledArtifact files under one cache directory, keyed by
// (module_hash, CodegenOptions::Fingerprint()).
//
//   nsfa-<module_hash:016x>-<fingerprint:016x>.bin
//
// Safety properties (the disk is shared state — other threads, other
// processes, and stray editors all touch it):
//   - Writes are atomic: serialize to a uniquely named .tmp file in the same
//     directory, then rename() over the final name. Readers never observe a
//     half-written artifact.
//   - Loads reject anything the codec rejects (bad magic/version/checksum,
//     truncation) AND any artifact whose stored key disagrees with the file
//     name's key; rejected files are deleted and the caller recompiles.
//     A load failure is never fatal.
//   - Eviction is LRU, bounded by max_bytes: a store that pushes the
//     directory over budget evicts least-recently-used entries until it
//     fits. Concurrent eviction from another process just makes some loads
//     miss, which is safe.
//   - Cross-process single-writer: BeginCompile/EndCompile serialize cold
//     compiles of one key across PROCESSES with an exclusive-create
//     `.bin.lock` lease file. Two cold processes racing one NSF_CACHE_DIR
//     collapse onto one compiler: the loser waits for the lease to clear and
//     loads the winner's artifact. A lease whose file outlives its holder
//     (crash) is taken over once it looks stale.
//
// The manifest: size accounting and eviction order are kept in a persisted
// index file (`manifest.nsf`: one line per artifact with its size and a
// logical recency stamp) instead of walking the directory on every store
// that crosses the budget. The manifest is an accelerator, never a
// correctness dependency — when it is missing, unreadable, or disagrees with
// itself, it is rebuilt from one directory scan (which also reclaims
// orphaned .tmp and stale .lock files), and entries that turn out to be
// stale (the file vanished under another process) are simply dropped.
//
// Thread-safe. All counters are atomics; manifest state and eviction are
// serialized in-process by a mutex so two stores don't double-delete.
#ifndef SRC_ENGINE_DISK_CACHE_H_
#define SRC_ENGINE_DISK_CACHE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "src/codegen/artifact.h"

namespace nsf {

class Profile;

namespace engine {

struct DiskCacheStats {
  uint64_t hits = 0;           // artifact loaded and accepted
  uint64_t misses = 0;         // no usable artifact (absent or rejected)
  uint64_t evictions = 0;      // files removed by the LRU size bound
  uint64_t load_failures = 0;  // present-but-rejected files (corruption, version)
  uint64_t stores = 0;         // artifacts written
  uint64_t lease_waits = 0;      // BeginCompile found another holder and waited
  uint64_t lease_takeovers = 0;  // stale lease files forcibly removed
  uint64_t manifest_rebuilds = 0;  // manifest missing/corrupt -> directory scan
  double deserialize_seconds = 0;  // wall time decoding accepted artifacts
  double serialize_seconds = 0;    // wall time encoding + writing artifacts
};

class DiskCodeCache {
 public:
  // An empty `dir` disables the tier (every call becomes a cheap no-op).
  // The directory is created on first use. max_bytes == 0 means unbounded.
  DiskCodeCache(std::string dir, uint64_t max_bytes);
  ~DiskCodeCache();  // flushes pending manifest recency updates

  bool enabled() const { return !dir_.empty(); }
  const std::string& dir() const { return dir_; }
  uint64_t max_bytes() const { return max_bytes_; }

  // Loads and decodes the artifact for the key. True on an accepted artifact
  // (counted as a hit; the entry's recency is refreshed for LRU, on disk via
  // the file mtime and in the manifest). False on a miss or any rejection —
  // rejected files are deleted so they are not re-parsed on every future
  // miss.
  bool Load(uint64_t module_hash, uint64_t fingerprint, CompiledArtifact* out);

  // Serializes and atomically publishes the artifact, then enforces the size
  // bound. Failures (disk full, permissions) are swallowed: the disk tier is
  // an optimization, never a correctness dependency.
  void Store(const CompiledArtifact& artifact);

  // Deletes the key's file, counting a load failure — for artifacts the
  // caller loaded successfully but rejected AFTER Load() accepted them
  // (semantic verification, src/codegen/verify.h).
  void Discard(uint64_t module_hash, uint64_t fingerprint);

  // --- Tiering-profile persistence ---
  // Warm-up Profiles (src/profile/profile.h) stored next to the artifacts as
  //   nsfp-<fnv1a(workload name):016x>.bin
  // so a warm process seeds its tiering policy from disk and skips the
  // interpreter warm-up. Deliberately OUTSIDE the manifest and the LRU
  // bound: profiles are tiny, and evicting one would silently reintroduce a
  // warm-up pause. Same safety discipline as artifacts: atomic tmp+rename
  // stores, parse-rejected files deleted, failures never fatal.
  bool LoadProfile(const std::string& name, Profile* out);
  void StoreProfile(const std::string& name, const Profile& profile);
  // Full path of the profile file for a workload name (exposed for tests).
  std::string ProfilePathForName(const std::string& name) const;

  // Cross-process compile lease for one key. Returns true when the calling
  // process now HOLDS the key's lease (it created the `.bin.lock` file —
  // possibly after taking over a stale one) and must EndCompile() when its
  // compile+Store finishes, succeed or fail. Returns false when another
  // process held the lease and released it while we waited: the winner's
  // artifact should now be on disk, so re-probe Load() instead of compiling.
  // A disabled tier returns true (no cross-process state to serialize).
  //
  // Because a winner Store()s before it EndCompile()s, "lease acquired but
  // Exists() is already true" means another process published between the
  // caller's cold probe and its acquire — re-probe Load() in that case too.
  bool BeginCompile(uint64_t module_hash, uint64_t fingerprint);
  void EndCompile(uint64_t module_hash, uint64_t fingerprint);

  // True when a published artifact file for the key exists right now: one
  // stat, no decode, no hit/miss accounting.
  bool Exists(uint64_t module_hash, uint64_t fingerprint) const;

  // Sum of artifact bytes currently accounted in the manifest (seeded from a
  // directory scan when no manifest exists yet).
  uint64_t DirSizeBytes() const;

  // Full path of the artifact file for a key (exposed for tests that corrupt
  // or truncate cache entries on purpose).
  std::string PathForKey(uint64_t module_hash, uint64_t fingerprint) const;
  // Path of the key's lease file (exposed for tests that fake stale leases).
  std::string LockPathForKey(uint64_t module_hash, uint64_t fingerprint) const;

  // Shrinks the lease timing so tests can exercise waiting and stale-lease
  // takeover without multi-second sleeps. Call before any BeginCompile.
  void SetLeaseTimingForTest(uint64_t stale_age_ms, uint64_t poll_ms,
                             uint64_t wait_max_ms);

  DiskCacheStats stats() const;
  void ResetStats();

 private:
  struct ManifestEntry {
    uint64_t size = 0;
    uint64_t recency = 0;  // logical LRU clock; larger = more recent
  };

  void EvictToFit();
  bool EnsureDirLocked();
  // Loads the manifest into memory, rebuilding it from a directory scan when
  // the file is missing or fails to parse. Idempotent after the first call.
  void EnsureManifestLocked() const;
  void RebuildManifestLocked() const;
  // Folds the persisted manifest into memory (max recency per entry; unseen
  // entries adopted) so eviction honors other processes' LRU touches and
  // stores without walking the directory.
  void MergeManifestFromDiskLocked() const;
  void PersistManifestLocked() const;
  void ManifestEraseLocked(const std::string& name) const;

  std::string dir_;
  uint64_t max_bytes_;

  // Guards dir_ready_ and all manifest state. Mutable because read-side
  // accessors (DirSizeBytes, Load's recency touch) lazily load the manifest.
  mutable std::mutex dir_mu_;
  mutable bool dir_ready_ = false;  // directory creation attempted and succeeded
  mutable bool manifest_loaded_ = false;
  mutable bool manifest_dirty_ = false;  // in-memory newer than manifest.nsf
  mutable uint64_t recency_clock_ = 0;   // max recency ever issued
  mutable uint64_t manifest_total_bytes_ = 0;
  mutable std::map<std::string, ManifestEntry> manifest_;  // file name -> entry

  // Lease timing (test-tunable): a lock file older than stale_age is presumed
  // orphaned by a crashed holder and taken over; waiters poll every poll_ms;
  // wait_max is a backstop after which the waiter compiles anyway.
  uint64_t lease_stale_age_ms_ = 10000;
  uint64_t lease_poll_ms_ = 1;
  uint64_t lease_wait_max_ms_ = 60000;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> load_failures_{0};
  std::atomic<uint64_t> stores_{0};
  std::atomic<uint64_t> lease_waits_{0};
  std::atomic<uint64_t> lease_takeovers_{0};
  mutable std::atomic<uint64_t> manifest_rebuilds_{0};
  std::atomic<uint64_t> deserialize_nanos_{0};
  std::atomic<uint64_t> serialize_nanos_{0};
};

}  // namespace engine
}  // namespace nsf

#endif  // SRC_ENGINE_DISK_CACHE_H_
