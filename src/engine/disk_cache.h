// On-disk tier of the Engine's two-level code cache: serialized
// CompiledArtifact files under one cache directory, keyed by
// (module_hash, CodegenOptions::Fingerprint()).
//
//   nsfa-<module_hash:016x>-<fingerprint:016x>.bin
//
// Safety properties (the disk is shared state — other threads, other
// processes, and stray editors all touch it):
//   - Writes are atomic: serialize to a uniquely named .tmp file in the same
//     directory, then rename() over the final name. Readers never observe a
//     half-written artifact.
//   - Loads reject anything the codec rejects (bad magic/version/checksum,
//     truncation) AND any artifact whose stored key disagrees with the file
//     name's key; rejected files are deleted and the caller recompiles.
//     A load failure is never fatal.
//   - Eviction is LRU by file modification time, bounded by max_bytes: every
//     load hit touches its file's mtime, and a store that pushes the
//     directory over budget evicts oldest-first until it fits (tracked by a
//     running size counter so in-budget stores never pay a directory walk;
//     eviction walks resync it and also reclaim stale orphaned .tmp files).
//     Concurrent eviction from another process just makes some loads miss,
//     which is safe.
//
// Thread-safe. All counters are atomics; eviction is serialized in-process
// by a mutex so two stores don't double-delete.
#ifndef SRC_ENGINE_DISK_CACHE_H_
#define SRC_ENGINE_DISK_CACHE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "src/codegen/artifact.h"

namespace nsf {
namespace engine {

struct DiskCacheStats {
  uint64_t hits = 0;           // artifact loaded and accepted
  uint64_t misses = 0;         // no usable artifact (absent or rejected)
  uint64_t evictions = 0;      // files removed by the LRU size bound
  uint64_t load_failures = 0;  // present-but-rejected files (corruption, version)
  uint64_t stores = 0;         // artifacts written
  double deserialize_seconds = 0;  // wall time decoding accepted artifacts
  double serialize_seconds = 0;    // wall time encoding + writing artifacts
};

class DiskCodeCache {
 public:
  // An empty `dir` disables the tier (every call becomes a cheap no-op).
  // The directory is created on first use. max_bytes == 0 means unbounded.
  DiskCodeCache(std::string dir, uint64_t max_bytes);

  bool enabled() const { return !dir_.empty(); }
  const std::string& dir() const { return dir_; }
  uint64_t max_bytes() const { return max_bytes_; }

  // Loads and decodes the artifact for the key. True on an accepted artifact
  // (counted as a hit; the file's mtime is refreshed for LRU). False on a
  // miss or any rejection — rejected files are deleted so they are not
  // re-parsed on every future miss.
  bool Load(uint64_t module_hash, uint64_t fingerprint, CompiledArtifact* out);

  // Serializes and atomically publishes the artifact, then enforces the size
  // bound. Failures (disk full, permissions) are swallowed: the disk tier is
  // an optimization, never a correctness dependency.
  void Store(const CompiledArtifact& artifact);

  // Deletes the key's file, counting a load failure — for artifacts the
  // caller loaded successfully but rejected AFTER Load() accepted them
  // (semantic verification, src/codegen/verify.h). The running size counter
  // deliberately isn't adjusted; the next eviction walk resyncs it, exactly
  // as for Load()'s own rejects.
  void Discard(uint64_t module_hash, uint64_t fingerprint);

  // Sum of artifact file sizes currently in the directory.
  uint64_t DirSizeBytes() const;

  // Full path of the artifact file for a key (exposed for tests that corrupt
  // or truncate cache entries on purpose).
  std::string PathForKey(uint64_t module_hash, uint64_t fingerprint) const;

  DiskCacheStats stats() const;
  void ResetStats();

 private:
  void EvictToFit();

  std::string dir_;
  uint64_t max_bytes_;
  bool dir_ready_ = false;      // directory creation attempted and succeeded
  std::mutex dir_mu_;           // guards dir_ready_, the size counter, and eviction walks
  // Running estimate of the directory's artifact bytes, so stores only pay a
  // directory walk when the budget is actually crossed: seeded from one scan
  // on the first store, incremented per store, resynced to the exact total by
  // every eviction walk. Guarded by dir_mu_.
  bool size_seeded_ = false;
  uint64_t approx_bytes_ = 0;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> load_failures_{0};
  std::atomic<uint64_t> stores_{0};
  std::atomic<uint64_t> deserialize_nanos_{0};
  std::atomic<uint64_t> serialize_nanos_{0};
};

}  // namespace engine
}  // namespace nsf

#endif  // SRC_ENGINE_DISK_CACHE_H_
