#include "src/engine/executor.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "src/support/str.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/trace.h"

namespace nsf {
namespace engine {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

}  // namespace

namespace {

// The body of one request-rep, early-returning on each failure path.
// ExecuteRequest wraps it so wall clock and latency telemetry are recorded
// exactly once on EVERY path — compile errors, instantiate failures, and
// traps used to vanish from the executor.request_ns histogram entirely,
// biasing its percentiles toward the (typically faster) successes.
void ExecuteRequestBody(Session* session, const RunRequest& request, BatchRunResult* r,
                        bool reset_first) {
  // Isolation: every run starts from a fresh kernel + VFS, so nothing staged
  // by a previous run on this worker is visible.
  if (reset_first) {
    session->Reset();
  }

  CompileInfo cinfo;
  CompiledModuleRef code =
      session->engine()->CompileWorkload(request.spec, request.options, &cinfo);
  r->cache_hit = cinfo.hit;
  r->compiled_backend = cinfo.compiled;
  r->disk_loaded = cinfo.disk_loaded;
  r->compile_joined = cinfo.joined;
  if (!code->ok) {
    r->error = code->error;
    return;
  }
  r->compile = code->stats();

  if (request.spec.setup) {
    request.spec.setup(session->kernel());
  }
  InstanceOptions iopts;
  iopts.argv = request.spec.argv;
  iopts.entry = request.spec.entry;
  iopts.fuel = request.spec.fuel;
  std::string err;
  std::unique_ptr<Instance> instance = session->Instantiate(code, std::move(iopts), &err);
  if (instance == nullptr) {
    r->error = err;
    return;
  }
  r->outcome = instance->Run();
  if (!r->outcome.ok) {
    r->error = request.spec.name + " trapped: " + r->outcome.error;
    return;
  }
  if (request.collect_outputs) {
    for (const std::string& path : request.spec.output_files) {
      std::vector<uint8_t> bytes;
      session->fs().ReadFile(path, &bytes);
      r->outputs.push_back({path, std::move(bytes)});
    }
  }
  r->ok = true;
  // Feed the run-history table: future LPT schedules order by this key's
  // observed simulated seconds instead of warm-up instruction counts.
  session->engine()->tiering().RecordRun(request.spec.name, r->outcome.seconds);
}

}  // namespace

BatchRunResult ExecuteRequest(Session* session, const RunRequest& request,
                              size_t request_index, int rep, int worker,
                              bool reset_first) {
  BatchRunResult r;
  r.request_index = request_index;
  r.rep = rep;
  r.worker = worker;
  telemetry::Span span("request", "executor");
  if (span.active()) {
    span.arg("workload", request.spec.name);
    span.arg("rep", rep);
  }
  auto t0 = std::chrono::steady_clock::now();
  ExecuteRequestBody(session, request, &r, reset_first);
  r.wall_seconds = SecondsSince(t0);

  // Request latency, tagged by outcome: executor.request_ns holds every
  // request (percentiles INCLUDING failures), the _ok/_failed pair splits the
  // population so either side can be read in isolation.
  static telemetry::Histogram& request_ns =
      *telemetry::MetricsRegistry::Global().GetHistogram("executor.request_ns");
  static telemetry::Histogram& request_ok_ns =
      *telemetry::MetricsRegistry::Global().GetHistogram("executor.request_ok_ns");
  static telemetry::Histogram& request_failed_ns =
      *telemetry::MetricsRegistry::Global().GetHistogram("executor.request_failed_ns");
  request_ns.RecordSeconds(r.wall_seconds);
  (r.ok ? request_ok_ns : request_failed_ns).RecordSeconds(r.wall_seconds);

  if (span.active()) {
    span.arg("cache_hit", r.cache_hit ? "true" : "false");
    span.arg("ok", r.ok ? "true" : "false");
    span.arg("sim_seconds", r.outcome.seconds);
  }
  return r;
}

void FinalizeBatchReport(BatchReport* report) {
  report->ok_runs = 0;
  report->failed_runs = 0;
  report->sim_seconds_total = 0;
  report->failed_sim_seconds = 0;
  report->worker_sim_seconds.assign(std::max(report->workers, 1), 0.0);
  for (const BatchRunResult& r : report->runs) {
    if (r.ok) {
      report->ok_runs++;
      report->sim_seconds_total += r.outcome.seconds;
      if (r.worker >= 0 && r.worker < static_cast<int>(report->worker_sim_seconds.size())) {
        report->worker_sim_seconds[r.worker] += r.outcome.seconds;
      }
    } else {
      // A trapped run may carry partial simulated time; counting it into the
      // totals above would inflate throughput and skew the makespan with
      // work whose results were discarded.
      report->failed_runs++;
      report->failed_sim_seconds += r.outcome.seconds;
    }
  }
  report->sim_makespan_seconds = 0;
  for (double s : report->worker_sim_seconds) {
    report->sim_makespan_seconds = std::max(report->sim_makespan_seconds, s);
  }
}

// --- Session::RunBatch (declared in engine.h) ---

BatchReport Session::RunBatch(const std::vector<RunRequest>& requests) {
  telemetry::Span span("batch", "executor");
  span.arg("requests", static_cast<uint64_t>(requests.size()));
  BatchReport report;
  report.workers = 1;
  report.schedule = SchedulePolicy::kFifo;  // serial: order is the schedule
  report.stats_before = engine_->Stats();
  auto t0 = std::chrono::steady_clock::now();
  for (size_t i = 0; i < requests.size(); i++) {
    for (int rep = 0; rep < requests[i].reps; rep++) {
      report.runs.push_back(ExecuteRequest(this, requests[i], i, rep, 0));
    }
  }
  report.wall_seconds = SecondsSince(t0);
  report.stats_after = engine_->Stats();
  FinalizeBatchReport(&report);
  return report;
}

// --- ExecutorPool ---

ExecutorPool::ExecutorPool(Engine* engine, int workers) : engine_(engine) {
  int n = std::max(1, workers);
  threads_.reserve(n);
  for (int i = 0; i < n; i++) {
    threads_.emplace_back([this, i] { WorkerMain(i); });
  }
}

ExecutorPool::~ExecutorPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& t : threads_) {
    t.join();
  }
}

void ExecutorPool::WorkerMain(int worker_index) {
  // The worker's Session lives on its own thread for the pool's lifetime;
  // ExecuteRequest Reset()s it before every job. Constructing it also
  // registers this thread's epoch slot with the EBR domain, so the thread's
  // first warm code-cache hit is wait-free from the start.
  if (telemetry::TraceEnabled()) {
    telemetry::TraceRecorder::Global().SetThreadName(StrFormat("worker-%d", worker_index));
  }
  Session session(engine_);
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock, [&] { return shutdown_ || next_job_ < jobs_.size(); });
      if (shutdown_ && next_job_ >= jobs_.size()) {
        return;
      }
      job = jobs_[next_job_++];
    }
    BatchRunResult result =
        ExecuteRequest(&session, *job.request, job.request_index, job.rep, worker_index);
    {
      std::lock_guard<std::mutex> lock(mu_);
      (*results_)[job.slot] = std::move(result);
      jobs_done_++;
      if (jobs_done_ == jobs_.size()) {
        cv_done_.notify_all();
      }
    }
  }
}

const char* SchedulePolicyName(SchedulePolicy policy) {
  return policy == SchedulePolicy::kLpt ? "lpt" : "fifo";
}

BatchReport ExecutorPool::Run(const std::vector<RunRequest>& requests,
                              SchedulePolicy schedule) {
  std::lock_guard<std::mutex> run_lock(run_mu_);
  telemetry::Span span("batch", "executor");
  if (span.active()) {
    span.arg("requests", static_cast<uint64_t>(requests.size()));
    span.arg("schedule", SchedulePolicyName(schedule));
    span.arg("workers", workers());
  }

  BatchReport report;
  report.workers = workers();
  report.schedule = schedule;
  report.stats_before = engine_->Stats();

  size_t total_jobs = 0;
  for (const RunRequest& r : requests) {
    total_jobs += static_cast<size_t>(std::max(0, r.reps));
  }
  report.runs.resize(total_jobs);

  // LPT: one work estimate per request (all reps of a request share it) —
  // the observed mean simulated seconds when the run-history table has the
  // key, else the profiled-work fallback. 0 for cold workloads, so a batch
  // with no history or profiles keeps its queue order under the stable sort
  // — the documented FIFO fallback.
  std::vector<double> request_work(requests.size(), 0.0);
  if (schedule == SchedulePolicy::kLpt) {
    for (size_t i = 0; i < requests.size(); i++) {
      uint64_t observed_runs = 0;
      request_work[i] = engine_->tiering().EstimateSeconds(requests[i].spec.name, &observed_runs);
      if (observed_runs > 0) {
        report.lpt_observed_requests++;
      }
    }
  }

  auto t0 = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(mu_);
    jobs_.clear();
    jobs_.reserve(total_jobs);
    size_t slot = 0;
    for (size_t i = 0; i < requests.size(); i++) {
      for (int rep = 0; rep < requests[i].reps; rep++) {
        jobs_.push_back(Job{&requests[i], i, rep, slot++});
      }
    }
    if (schedule == SchedulePolicy::kLpt) {
      // Result slots are fixed by (request_index, rep); only the dispatch
      // order changes, so reordering jobs_ never perturbs report.runs order.
      std::stable_sort(jobs_.begin(), jobs_.end(), [&](const Job& a, const Job& b) {
        return request_work[a.request_index] > request_work[b.request_index];
      });
    }
    next_job_ = 0;
    jobs_done_ = 0;
    results_ = &report.runs;
  }
  cv_work_.notify_all();

  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_done_.wait(lock, [&] { return jobs_done_ == jobs_.size(); });
    results_ = nullptr;
    jobs_.clear();
    next_job_ = 0;
    jobs_done_ = 0;
  }
  report.wall_seconds = SecondsSince(t0);
  report.stats_after = engine_->Stats();
  FinalizeBatchReport(&report);
  // Persist what this batch taught the run-history table. ~Engine used to be
  // the only save point, so a killed process lost every observed run; now at
  // most one batch of history is at risk. No-op without a cache_dir.
  engine_->FlushRunHistory();
  return report;
}

}  // namespace engine
}  // namespace nsf
