// Embedder-style engine API — the single way code runs in this repo.
//
// Modeled on the Engine/Store/Module/Instance shape real Wasm engines expose
// (V8, SpiderMonkey — the toolchains the paper measures):
//
//   Engine   — process-wide and THREAD-SAFE: owns a content-addressed,
//              TWO-LEVEL CodeCache keyed by (module hash via the encoder,
//              CodegenOptions fingerprint) and a TieringPolicy wrapping the
//              PGO TierManager. Compilation is compile-once-run-many even
//              under concurrency AND across processes: the in-memory tier is
//              sharded into mutex-guarded shards (selected by module-hash
//              prefix) with a per-entry "compiling" latch, and behind it sits
//              an optional on-disk tier (src/engine/disk_cache.h) of
//              serialized CompiledArtifact files — a warm cache directory
//              makes a fresh process skip every backend compile.
//   Session  — one BrowsixKernel + VFS staging area, single-threaded by
//              design: each worker thread owns its own Session. Many modules
//              can be instantiated into one session; they share the
//              filesystem. Reset() drops all staged state.
//   Instance — a CompiledModule bound into a Session with argv/entry/fuel,
//              reusable across repeated runs (each Run() gets a fresh
//              machine and process; the compiled code is shared).
//
// Typical embedding:
//
//   engine::Engine eng;                       // share freely across threads
//   auto code = eng.Compile(BuildModule(), CodegenOptions::ChromeV8());
//   engine::Session session(&eng);            // one per thread
//   session.fs().WriteFile("/data/input.txt", "...");
//   auto inst = session.Instantiate(code, {.argv = {"prog"}}, &err);
//   engine::RunOutcome out = inst->Run();   // re-running never recompiles
//
// Set NSF_CACHE_DIR (or EngineConfig::cache_dir) to persist compiled
// artifacts across processes; NSF_CACHE_MAX_BYTES bounds the directory with
// LRU eviction.
//
// For parallel batch execution over a pool of Sessions, see
// src/engine/executor.h (ExecutorPool / Session::RunBatch).
#ifndef SRC_ENGINE_ENGINE_H_
#define SRC_ENGINE_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/codegen/artifact.h"
#include "src/codegen/codegen.h"
#include "src/engine/disk_cache.h"
#include "src/engine/ebr.h"
#include "src/engine/workload.h"
#include "src/kernel/kernel.h"
#include "src/machine/decode.h"
#include "src/machine/machine.h"
#include "src/profile/sampled.h"
#include "src/profile/tier.h"
#include "src/wasm/module.h"

namespace nsf {
namespace engine {

class BackgroundTierer;

// A compiled (module, options) pair, shared by every caller that requests
// the same content. Immutable once published by the Engine. The payload is a
// self-contained CompiledArtifact (src/codegen/artifact.h) — exactly what
// the disk tier serializes — plus the engine-level outcome envelope.
struct CompiledModule {
  bool ok = false;
  std::string error;      // "module invalid: ..." / "compile failed: ..."
  bool from_disk = false; // deserialized from the disk tier, not compiled
  CompiledArtifact artifact;
  // Predecoded simulator stream (src/machine/decode.h) over artifact's
  // program. Built exactly once per code-cache entry — after a backend
  // compile AND after a disk-tier artifact load — so every Instance and every
  // run shares it; references `artifact`, which this struct owns.
  std::shared_ptr<const DecodedProgram> decoded;

  // Builds `decoded` from the (linked) compiled program. Called by the
  // Engine at publish time; idempotent.
  void BuildDecoded() {
    if (decoded == nullptr && ok) {
      decoded = std::make_shared<DecodedProgram>(Predecode(artifact.program()));
    }
  }
  const DecodedProgram* decoded_program() const { return decoded.get(); }

  const Module& module() const { return artifact.module; }
  uint64_t module_hash() const { return artifact.module_hash; }
  uint64_t fingerprint() const { return artifact.options_fingerprint; }
  const std::string& profile_name() const { return artifact.profile_name; }
  CompileTier tier() const { return artifact.tier; }
  const CompileResult& compiled() const { return artifact.compiled; }
  const MProgram& program() const { return artifact.compiled.program; }
  const CompileStats& stats() const { return artifact.compiled.stats; }
};

using CompiledModuleRef = std::shared_ptr<const CompiledModule>;

// Content-addressed, two-level cache of successful compiles, safe for
// concurrent use.
//
// Level 1 (memory) is split into a WAIT-FREE hit path and a mutex-guarded
// slow path:
//
//   Hit path: each shard publishes its completed entries into an
//   open-addressed hash index of immutable nodes. A warm hit pins an epoch
//   (src/engine/ebr.h), acquire-loads the table and the node, copies the
//   CompiledModuleRef, and unpins — no mutex, no CAS, no retry loop: a
//   saturated 16-thread warm workload performs zero lock acquisitions
//   (EngineStats::lock_waits stays 0). Writers replace or grow the index
//   under the shard mutex and RETIRE displaced nodes/tables through the EBR
//   domain, which frees them only after every pinned reader has moved on.
//
//   Slow path (misses, in-flight compiles, publishes): the key space is
//   split across `shard_count` independently-locked shards selected by the
//   top bits of the module hash, so unrelated compiles never contend on one
//   mutex. Each in-flight compile parks a latch in its entry: the first
//   requester of a key becomes the leader; every concurrent requester of the
//   same key blocks on the latch and shares the leader's result (exactly one
//   backend invocation per key).
//
// `lockfree_reads = false` keeps the index maintained but routes every hit
// through the shard mutex — the A/B baseline bench/cache_contention measures
// against.
//
// Level 2 (disk, optional): before compiling, the leader probes the disk
// tier for a serialized artifact of the key and — on an accepted load —
// publishes it exactly like a compile result. After a successful backend
// compile the leader persists the artifact. Corrupt/version-mismatched disk
// entries are rejected and recompiled; they can never wedge or crash a
// caller.
// Where one Compile() call's result came from — per-call truth for the
// caller that wants to attribute latency to the machinery that produced it
// (the serving loop tags requests stalled by cold compiles and disk loads
// with exactly this). Diffing EngineStats cannot provide it: under
// concurrency another thread's compile lands between any two snapshots.
struct CompileInfo {
  bool hit = false;          // served from either cache tier (incl. joining
                             // another thread's successful in-flight compile)
  bool joined = false;       // blocked on another thread's in-flight compile
  bool compiled = false;     // this call ran the backend compiler
  bool disk_loaded = false;  // this call deserialized the artifact from disk
};

class CodeCache {
 public:
  explicit CodeCache(size_t shard_count = kDefaultShards, std::string disk_dir = "",
                     uint64_t disk_max_bytes = 0, bool lockfree_reads = true);
  ~CodeCache();

  // Returns the cached module for (module_hash, fingerprint) or invokes
  // `compile` to produce it. Failed compiles are delivered to every waiter
  // but not retained, so a later request retries. `*info` reports where the
  // result came from: info->hit — served from the cache (a completed memory
  // entry, or the leader loading the key's artifact from the disk tier);
  // info->joined — blocked on another thread's in-flight compile;
  // info->compiled / info->disk_loaded — this call was the leader and paid
  // the backend compile / the disk deserialization itself.
  CompiledModuleRef GetOrCompile(uint64_t module_hash, uint64_t fingerprint,
                                 const std::function<CompiledModuleRef()>& compile,
                                 CompileInfo* info);

  // Read-only probe of the MEMORY tier (no latch or disk interaction): the
  // completed entry or null.
  CompiledModuleRef Lookup(uint64_t module_hash, uint64_t fingerprint) const;

  // Hot code swap (continuous tiering): replaces the published code for
  // (module_hash, fingerprint) with `code` — the background tierer publishes
  // PGO'd code under the BASE options key so every future warm lookup
  // transparently serves the new tier. The safe point is one release-store
  // into the wait-free hit index: readers that already pinned the old node
  // finish on the old entry (their CompiledModuleRef keeps it alive however
  // long the run takes), the displaced index node is retired through the EBR
  // domain, and nothing is ever freed in place. An in-flight compile latch
  // for the key, if any, is left untouched.
  void Republish(uint64_t module_hash, uint64_t fingerprint, const CompiledModuleRef& code);

  size_t size() const;
  void Clear();  // memory tier only; the disk tier persists by design
  size_t shard_count() const { return shards_.size(); }
  bool lockfree_reads() const { return lockfree_reads_; }

  DiskCodeCache& disk() { return disk_; }
  const DiskCodeCache& disk() const { return disk_; }

  // Contention telemetry: how often a shard lock was found held, and the
  // total wall time spent blocked on shard locks.
  uint64_t lock_waits() const { return lock_waits_.load(std::memory_order_relaxed); }
  double lock_wait_seconds() const {
    return static_cast<double>(lock_wait_nanos_.load(std::memory_order_relaxed)) * 1e-9;
  }
  // Disk artifacts that decoded cleanly (checksum passed) but failed the
  // semantic MProgram/DecodedProgram verifiers — deleted and recompiled,
  // exactly like corrupt files.
  uint64_t verify_rejects() const { return verify_rejects_.load(std::memory_order_relaxed); }
  void ResetTelemetry() {
    lock_waits_.store(0, std::memory_order_relaxed);
    lock_wait_nanos_.store(0, std::memory_order_relaxed);
    verify_rejects_.store(0, std::memory_order_relaxed);
    disk_.ResetStats();
  }

  static constexpr size_t kDefaultShards = 16;  // rounded up to a power of two

 private:
  struct Latch {
    std::mutex mu;
    std::condition_variable cv;
    bool ready = false;
    CompiledModuleRef result;
  };
  struct Entry {
    CompiledModuleRef code;        // published once a compile succeeded
    std::shared_ptr<Latch> latch;  // present while a compile is in flight
  };

  // One immutable published entry in the wait-free hit index. Readers copy
  // `code` while epoch-pinned (the node keeps the control block alive);
  // displaced nodes are retired through the EBR domain, never deleted in
  // place.
  struct IndexNode {
    uint64_t module_hash;
    uint64_t fingerprint;
    CompiledModuleRef code;
  };
  // Open-addressed, power-of-two table of release-published node pointers.
  // Append-mostly: slots go null -> node (insert) or node -> node (same-key
  // republish); removal only happens wholesale (Clear retires the table).
  // Writers keep the load factor <= 1/2, so reader probes always terminate
  // at a null slot. The table owns its slot array, never the nodes.
  struct IndexTable {
    explicit IndexTable(size_t cap)
        : capacity(cap), slots(new std::atomic<IndexNode*>[cap]()) {}
    size_t capacity;
    std::unique_ptr<std::atomic<IndexNode*>[]> slots;
  };

  struct Shard {
    mutable std::mutex mu;
    std::map<std::pair<uint64_t, uint64_t>, Entry> entries;
    // The wait-free hit index: mutated only under `mu`, read by anyone under
    // an epoch guard. Null until the first publish.
    std::atomic<IndexTable*> index{nullptr};
    size_t index_live = 0;  // nodes in the table (writer-side bookkeeping)
  };

  Shard& ShardFor(uint64_t module_hash) const {
    // Prefix (top bits) of the content hash selects the shard; shard count is
    // a power of two so the mask is exact.
    return *shards_[(module_hash >> 48) & (shards_.size() - 1)];
  }
  // Locks `shard.mu`, accounting blocked time into the contention counters.
  std::unique_lock<std::mutex> LockShard(const Shard& shard) const;
  // Publishes `result` for `key` under the shard lock and releases `latch`
  // waiters. Successful results are retained; failures drop the entry.
  void Publish(Shard& shard, const std::pair<uint64_t, uint64_t>& key,
               const std::shared_ptr<Latch>& latch, const CompiledModuleRef& result);

  // Wait-free probe of `shard`'s hit index (epoch-pinned; no locks).
  CompiledModuleRef IndexLookup(const Shard& shard, uint64_t module_hash,
                                uint64_t fingerprint) const;
  // Inserts/replaces `key -> code` in the index. Caller holds `shard.mu`.
  // Grows the table at load factor 1/2; displaced nodes and replaced tables
  // are retired through the EBR domain.
  void IndexInsert(Shard& shard, uint64_t module_hash, uint64_t fingerprint,
                   const CompiledModuleRef& code);
  // Places `node` into `table` (single-writer, pre-publish or under `mu`).
  static void IndexPlace(IndexTable* table, IndexNode* node);

  std::vector<std::unique_ptr<Shard>> shards_;
  DiskCodeCache disk_;
  const bool lockfree_reads_;
  mutable std::atomic<uint64_t> lock_waits_{0};
  mutable std::atomic<uint64_t> lock_wait_nanos_{0};
  std::atomic<uint64_t> verify_rejects_{0};

  static constexpr size_t kIndexInitialCapacity = 16;
};

// Engine-owned tier-up policy: wraps the PGO TierManager so profiling and
// profile-guided recompilation are an engine concern, not a caller concern.
//
// Thread-safe with per-workload warm-up latches (the same leader/joiner
// pattern CodeCache::GetOrCompile uses): the first caller for a workload
// name becomes the leader and runs the interpreter warm-up while concurrent
// callers for the SAME name wait on its latch — but warm-ups of DIFFERENT
// names proceed in parallel instead of serializing behind one global mutex.
class TieringPolicy {
 public:
  explicit TieringPolicy(TierConfig config = TierConfig()) : manager_(config) {}

  // Profile-guided options for `spec` over `base`. The warm-up interpreter
  // run happens at most once per workload name (TierManager caches the
  // profile). On warm-up failure returns `base` unchanged and sets *error.
  // *paid_warmup (optional) reports whether THIS call paid warm-up wall time
  // — it ran the interpreter warm-up or blocked on another thread's — as
  // opposed to the cached-profile fast path; serving attributes tier_warmup
  // tail events from exactly this bit.
  CodegenOptions TierUp(const WorkloadSpec& spec, const CodegenOptions& base,
                        std::string* error, bool* paid_warmup = nullptr);

  // True when `name`'s profile is already cached (no warm-up would run).
  bool HasProfile(const std::string& name) const;

  // Publishes an externally obtained profile (disk-persisted from a previous
  // process, or reconstructed from sampling) under `name`, so subsequent
  // TierUp calls skip the interpreter warm-up. First writer wins; returns
  // the cached node-stable profile either way. Thread-safe.
  const Profile* InsertProfile(const std::string& name, Profile profile);

  // Profiled work estimate for LPT batch scheduling: the warm-up profile's
  // total interpreted instruction count (monotone in simulated seconds), or
  // 0 when the workload was never profiled. Thread-safe, never profiles.
  uint64_t ProfiledWork(const std::string& name) const;

  // --- Run-history table (observed per-key simulated seconds) ---
  // Every batch run records its workload's simulated seconds here;
  // ExecutorPool's LPT schedule prefers these observed means over the
  // warm-up instruction counts, which misestimate whenever interpreted and
  // compiled instruction mixes diverge. Thread-safe.
  void RecordRun(const std::string& name, double sim_seconds);

  // Runs recorded since the last successful SaveHistory: the cheap "is there
  // anything new to persist" check behind Engine::FlushRunHistory.
  uint64_t HistoryDirty() const { return history_dirty_.load(std::memory_order_relaxed); }

  // Persistence (NSF_CACHE_DIR/run_history via the Engine): a fresh process
  // starts with the previous process's observed means, so its FIRST LPT
  // batch already schedules by history instead of falling back to warm-up
  // estimates. Text lines "<runs> <total_sim_seconds> <name>"; unparsable
  // lines are skipped, a missing file is a clean empty table. Load MERGES
  // into the current table (summing runs/seconds per key); Save writes
  // atomically (tmp + rename) and reports success. Thread-safe.
  bool LoadHistory(const std::string& path);
  bool SaveHistory(const std::string& path) const;
  size_t HistorySize() const;
  // Mean observed simulated seconds for `name`; 0 when never recorded.
  double ObservedSeconds(const std::string& name) const;
  uint64_t ObservedRuns(const std::string& name) const;
  // The LPT work estimate, in (approximate) seconds: the observed mean when
  // the run history has this key, else the warm-up profile's instruction
  // count at a nominal 3.5e9 instructions/second (the cost model's clock —
  // only the ORDER matters, so a rough bridge between the two unit systems
  // is fine), else 0 — an all-zero batch keeps queue order under the stable
  // sort, which is the documented FIFO fallback. `observed_runs` (optional)
  // receives the key's run-history depth under the same lock acquisition,
  // so schedulers don't pay a second lock round-trip per request.
  double EstimateSeconds(const std::string& name, uint64_t* observed_runs = nullptr) const;

  // Not synchronized — only touch the raw manager from one thread.
  TierManager& manager() { return manager_; }
  uint64_t warmup_runs() const { return warmup_runs_.load(std::memory_order_relaxed); }
  void ResetWarmupCount() { warmup_runs_.store(0, std::memory_order_relaxed); }

 private:
  struct WarmupLatch {
    std::mutex mu;
    std::condition_variable cv;
    bool ready = false;
    const Profile* profile = nullptr;  // null = warm-up failed
    std::string error;
  };

  struct RunHistory {
    uint64_t runs = 0;
    double total_sim_seconds = 0;
  };

  mutable std::mutex mu_;  // guards manager_'s cache, inflight_, history_
  TierManager manager_;
  std::map<std::string, std::shared_ptr<WarmupLatch>> inflight_;
  std::map<std::string, RunHistory> history_;
  std::atomic<uint64_t> warmup_runs_{0};  // interpreter warm-ups actually executed
  // Runs recorded since the last successful save; mutable because SaveHistory
  // (const) clears it once the table is durably on disk.
  mutable std::atomic<uint64_t> history_dirty_{0};
};

// Reads NSF_CACHE_DIR: the disk tier's directory ("" = disabled).
std::string DefaultCacheDir();
// Reads NSF_CACHE_MAX_BYTES; defaults to 256 MiB. 0 = unbounded.
uint64_t DefaultDiskCacheMaxBytes();

struct EngineConfig {
  bool cache_enabled = true;   // table2-style compile-time benches disable it
  size_t cache_shards = CodeCache::kDefaultShards;
  // Wait-free warm-hit read path (epoch-protected index). Disabling routes
  // every hit through the shard mutex — the contention baseline
  // bench/cache_contention measures against; production keeps it on.
  bool cache_lockfree_reads = true;
  // Disk tier: empty disables persistence. Defaults honor the NSF_CACHE_DIR /
  // NSF_CACHE_MAX_BYTES environment so every bench binary persists compiles
  // when the caller exports a cache directory.
  std::string cache_dir = DefaultCacheDir();
  uint64_t disk_cache_max_bytes = DefaultDiskCacheMaxBytes();
  TierConfig tiering;
  // --- Continuous tiering ---
  // sample_period N != 0 arms the predecoded interpreter's sampled profiling:
  // every Nth back-edge/call records into the module's shared SampledProfile
  // sink (default 0 = hooks disabled, zero shared-state traffic, and
  // PerfCounters identical either way). background_tiering additionally
  // starts an engine-owned recompilation thread that watches the sample
  // totals of every workload compiled through CompileWorkload and, once a
  // module crosses tier_hot_samples, runs the PGO pipeline off the serve
  // path and hot-swaps the result into the code cache under the base key.
  bool background_tiering = false;
  uint32_t sample_period = 0;
  uint64_t tier_hot_samples = 64;
  double tier_scan_period_seconds = 0.005;
};

// Aggregate counters surfaced into every BENCH_*.json (engine_stats block).
// Snapshot of the engine's internal atomics; under concurrency the totals
// obey hits + misses == Compile() calls and compiles + disk_hits == unique
// successful keys (joiners of an in-flight compile count as hits, tracked
// separately in compile_joins).
struct EngineStats {
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;         // includes compile failures
  uint64_t compiles = 0;             // actual backend invocations
  uint64_t compile_joins = 0;        // waited on another thread's compile
  uint64_t tier_warmups = 0;         // interpreter profiling runs
  uint64_t lock_waits = 0;           // shard-lock acquisitions that blocked
  double lock_wait_seconds = 0;      // wall time blocked on shard locks
  double compile_seconds = 0;        // wall clock spent compiling
  double compile_seconds_saved = 0;  // sum of cached-entry compile times on hits
  // Disk tier (zero when no cache_dir is configured):
  uint64_t disk_hits = 0;            // artifacts deserialized from disk
  uint64_t disk_misses = 0;          // leader probes that found no usable file
  uint64_t disk_evictions = 0;       // files removed by the LRU size bound
  uint64_t disk_load_failures = 0;   // corrupt/mismatched files rejected
  uint64_t disk_stores = 0;          // artifacts persisted
  uint64_t disk_lease_waits = 0;     // cold compiles that waited on another process's lease
  uint64_t disk_lease_takeovers = 0;  // stale lease files forcibly reclaimed
  uint64_t disk_manifest_rebuilds = 0;  // manifest missing/corrupt -> directory scan
  double deserialize_seconds = 0;    // wall time decoding disk artifacts
  double serialize_seconds = 0;      // wall time encoding + writing artifacts
  // Disk artifacts that passed the codec's checksum but failed semantic
  // verification (src/codegen/verify.h) — deleted + recompiled, never run.
  uint64_t verify_rejects = 0;
  // Continuous tiering (zero unless EngineConfig::background_tiering):
  uint64_t tier_swaps = 0;             // hot swaps published into the code cache
  uint64_t background_recompiles = 0;  // PGO compiles run by the tierer thread
};

class Session;

// Thread-safe: Compile/CompileWorkload/TierUp/Stats may be called from any
// number of threads sharing one Engine.
class Engine {
 public:
  // With a cache_dir configured, construction loads the persisted run-history
  // table (cache_dir/run_history) and destruction saves it — the tiering
  // policy's observed-seconds estimates survive process restarts alongside
  // the compiled artifacts themselves.
  explicit Engine(EngineConfig config = EngineConfig());
  ~Engine();

  // Saves the run-history table to cache_dir/run_history now (also done by
  // the destructor). No-op without a cache_dir; true on a successful write.
  bool SaveRunHistory() const;
  // Persists the run-history table only if runs were recorded since the last
  // save — the crash-safety valve for long-lived processes: ~Engine is the
  // only other save point, and a killed process loses everything it observed.
  // ExecutorPool::Run flushes after every batch and the serving loop flushes
  // on a period, so at most one batch / one flush window of history is ever
  // at risk. Cheap when clean or when no cache_dir is configured (one
  // relaxed atomic load). True when a write happened and succeeded.
  bool FlushRunHistory() const;
  // The run_history file path for this engine's cache_dir ("" when disabled).
  std::string RunHistoryPath() const;

  // Compile-or-fetch. On a miss the CompiledModule retains a copy of the
  // module for import binding and export lookup; a hit copies nothing.
  // Never returns null — check (*result).ok. Failed compiles are not cached.
  // *was_hit (optional) reports whether this call was served from the cache
  // (either tier, including joining another thread's in-flight compile) —
  // per-call truth, unlike diffing Stats() which races under concurrency.
  CompiledModuleRef Compile(const Module& module, const CodegenOptions& options,
                            bool* was_hit = nullptr);

  // As above, with full per-call attribution: whether THIS call hit, joined,
  // ran the backend compiler, or deserialized the artifact from disk.
  CompiledModuleRef Compile(const Module& module, const CodegenOptions& options,
                            CompileInfo* info);

  // Builds spec.build() and compiles it.
  CompiledModuleRef CompileWorkload(const WorkloadSpec& spec, const CodegenOptions& options,
                                    bool* was_hit = nullptr);
  CompiledModuleRef CompileWorkload(const WorkloadSpec& spec, const CodegenOptions& options,
                                    CompileInfo* info);

  // Profile-guided options for `spec` via the engine's TieringPolicy. With a
  // disk cache this first tries the profile persisted by a previous process
  // (skipping the interpreter warm-up entirely) and persists any fresh
  // warm-up's profile for the next process. *paid_warmup (optional) reports
  // whether this call paid warm-up wall time (ran it or blocked on one).
  CodegenOptions TierUp(const WorkloadSpec& spec, const CodegenOptions& base,
                        std::string* error, bool* paid_warmup = nullptr);

  // The shared sampling sink for `code`'s module, sized to its function
  // count (created on first request). Null when sampling is disabled
  // (config().sample_period == 0) or `code` is not runnable.
  std::shared_ptr<SampledProfile> SamplerFor(const CompiledModuleRef& code);

  // Registers a base-tier compile with the background tierer: once the
  // module's sample total crosses tier_hot_samples the tierer recompiles it
  // with PGO and hot-swaps the result under (module_hash, fingerprint).
  // No-op unless background tiering + sampling are both enabled; deduped by
  // key. CompileWorkload calls this automatically for un-profiled options.
  void WatchForTierUp(const CompiledModuleRef& code, const WorkloadSpec& spec,
                      const CodegenOptions& base);

  // Blocks until the background tierer has swapped every watch whose sample
  // count already crossed the threshold (tests/benches; no-op otherwise).
  void DrainTierer();

  EngineStats Stats() const;
  void ResetStats();
  size_t CacheSize() const { return cache_.size(); }
  void ClearCache() { cache_.Clear(); }

  const EngineConfig& config() const { return config_; }
  TieringPolicy& tiering() { return tiering_; }
  const TieringPolicy& tiering() const { return tiering_; }
  CodeCache& cache() { return cache_; }

 private:
  friend class BackgroundTierer;

  // One compile, bypassing the cache: validation + backend + stats.
  CompiledModuleRef CompileUncached(const Module& module, uint64_t module_hash,
                                    const CodegenOptions& options, uint64_t fingerprint);
  static void AddSeconds(std::atomic<uint64_t>* nanos, double seconds) {
    nanos->fetch_add(static_cast<uint64_t>(seconds * 1e9), std::memory_order_relaxed);
  }

  EngineConfig config_;
  TieringPolicy tiering_;
  CodeCache cache_;

  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> cache_misses_{0};
  std::atomic<uint64_t> compiles_{0};
  std::atomic<uint64_t> compile_joins_{0};
  std::atomic<uint64_t> compile_nanos_{0};
  std::atomic<uint64_t> saved_nanos_{0};

  // Continuous tiering. samplers_ maps module_hash -> shared sink; the
  // tierer thread is constructed last / destroyed first so it can never
  // outlive the cache or tiering policy it feeds.
  mutable std::mutex sampler_mu_;
  std::map<uint64_t, std::shared_ptr<SampledProfile>> samplers_;
  std::atomic<uint64_t> tier_swaps_{0};
  std::atomic<uint64_t> background_recompiles_{0};
  std::unique_ptr<BackgroundTierer> tierer_;
};

// Per-instance execution parameters.
struct InstanceOptions {
  std::vector<std::string> argv = {"prog"};
  std::string entry = "main";
  uint64_t fuel = 0;  // 0 = machine default cap
  // Interpreter core. kPredecoded is the production path; kLegacy selects
  // the reference switch interpreter (differential tests, perf baselines).
  SimDispatch dispatch = SimDispatch::kPredecoded;
};

// One run's observable result (the harness layers validation and statistics
// on top of this).
struct RunOutcome {
  bool ok = false;
  std::string error;
  uint64_t exit_code = 0;
  PerfCounters counters;
  double seconds = 0;          // simulated wall clock (cycles / clock)
  double browsix_seconds = 0;  // time charged to the Browsix kernel
  uint64_t syscalls = 0;
  std::string stdout_text;
};

class Instance;
struct RunRequest;
struct BatchReport;

// One Browsix kernel + VFS. Instances created from the same Session share
// the filesystem; Reset() replaces the kernel so no staged file survives.
// A Session is deliberately NOT thread-safe: it is the unit of per-worker
// state. Give each thread its own Session (ExecutorPool does exactly that);
// the Engine behind them is safely shared.
class Session {
 public:
  explicit Session(Engine* engine);

  BrowsixKernel& kernel() { return *kernel_; }
  MemFs& fs();

  // Drops every staged file and all kernel accounting. References previously
  // returned by kernel()/fs() are invalidated; live Instances pick up the
  // fresh kernel on their next Run(). The machine-buffer pool deliberately
  // SURVIVES Reset: recycled buffers are scrubbed back to zero by the
  // machine that used them, so reuse is invisible to isolation — only the
  // 8 MB-per-run allocation cost disappears.
  void Reset();

  // Pool of simulated stack/heap/table buffers recycled across this
  // session's runs (SimMachine scrubs dirtied ranges on release).
  SimBufferPool& buffer_pool() { return buffer_pool_; }

  // Binds compiled code into this session. Returns null and sets *error when
  // the compile failed or the entry export is missing. The Instance holds a
  // reference to `code` and a pointer to this Session (which must outlive it).
  std::unique_ptr<Instance> Instantiate(CompiledModuleRef code,
                                        InstanceOptions options = InstanceOptions(),
                                        std::string* error = nullptr);

  // Executes `requests` on THIS session, serially, with Reset() isolation
  // between runs, and aggregates per-run counters into a BatchReport — the
  // single-worker degenerate case of ExecutorPool::Run (src/engine/executor.h).
  BatchReport RunBatch(const std::vector<RunRequest>& requests);

  Engine* engine() { return engine_; }

 private:
  Engine* engine_;
  std::unique_ptr<BrowsixKernel> kernel_;
  SimBufferPool buffer_pool_;
};

// Compiled code bound to a session with fixed argv/entry/fuel. Run() executes
// the entry on a fresh machine and process each time — repeated runs share
// the compiled program (never recompiling) and the session's filesystem.
class Instance {
 public:
  // Executes the entry function once. The measurement window covers
  // execution only, mirroring the paper ("after WebAssembly JIT compilation
  // concludes"): compilation happened at Engine::Compile time.
  RunOutcome Run();

  // Executes an arbitrary exported function with integer stack args (the
  // compiled-code ABI), on a fresh machine and process like Run(). exit_code
  // carries the function's return register. Used by tests and micro-benches.
  RunOutcome RunExport(const std::string& name, const std::vector<uint64_t>& args);

  const CompiledModule& code() const { return *code_; }
  const InstanceOptions& options() const { return options_; }
  Session* session() { return session_; }
  uint32_t entry_index() const { return entry_index_; }
  uint64_t runs() const { return runs_; }

 private:
  friend class Session;
  Instance(Session* session, CompiledModuleRef code, InstanceOptions options,
           uint32_t entry_index)
      : session_(session),
        code_(std::move(code)),
        options_(std::move(options)),
        entry_index_(entry_index) {}

  RunOutcome RunAtIndex(uint32_t func_index, const std::vector<uint64_t>& args);

  Session* session_;
  CompiledModuleRef code_;
  InstanceOptions options_;
  uint32_t entry_index_;
  uint64_t runs_ = 0;
  // The module's shared sampling sink, resolved once at Instantiate time
  // (null when EngineConfig::sample_period == 0). Each run's machine buffers
  // samples locally and folds them here on teardown.
  std::shared_ptr<SampledProfile> sampler_;
};

}  // namespace engine
}  // namespace nsf

#endif  // SRC_ENGINE_ENGINE_H_
