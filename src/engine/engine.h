// Embedder-style engine API — the single way code runs in this repo.
//
// Modeled on the Engine/Store/Module/Instance shape real Wasm engines expose
// (V8, SpiderMonkey — the toolchains the paper measures):
//
//   Engine   — process-wide: owns a content-addressed CodeCache keyed by
//              (module hash via the encoder, CodegenOptions fingerprint) and
//              a TieringPolicy wrapping the PGO TierManager. Compilation is
//              compile-once-run-many: repeated compiles of the same
//              (module, options) pair return the cached CompiledModule.
//   Session  — one BrowsixKernel + VFS staging area. Many modules can be
//              instantiated into one session; they share the filesystem.
//              Reset() drops all staged state.
//   Instance — a CompiledModule bound into a Session with argv/entry/fuel,
//              reusable across repeated runs (each Run() gets a fresh
//              machine and process; the compiled code is shared).
//
// Typical embedding:
//
//   engine::Engine eng;
//   auto code = eng.Compile(BuildModule(), CodegenOptions::ChromeV8());
//   engine::Session session(&eng);
//   session.fs().WriteFile("/data/input.txt", "...");
//   auto inst = session.Instantiate(code, {.argv = {"prog"}}, &err);
//   engine::RunOutcome out = inst->Run();   // re-running never recompiles
#ifndef SRC_ENGINE_ENGINE_H_
#define SRC_ENGINE_ENGINE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/codegen/codegen.h"
#include "src/engine/workload.h"
#include "src/kernel/kernel.h"
#include "src/machine/machine.h"
#include "src/profile/tier.h"
#include "src/wasm/module.h"

namespace nsf {
namespace engine {

// A compiled (module, options) pair, shared by every caller that requests
// the same content. Immutable once published by the Engine.
struct CompiledModule {
  bool ok = false;
  std::string error;            // "module invalid: ..." / "compile failed: ..."
  Module module;                // retained for import binding + export lookup
  uint64_t module_hash = 0;     // HashModule(module)
  uint64_t fingerprint = 0;     // options.Fingerprint()
  std::string profile_name;     // options.profile_name at compile time
  CompileResult compiled;       // program, stats, func_map, import_hooks

  const MProgram& program() const { return compiled.program; }
  const CompileStats& stats() const { return compiled.stats; }
};

using CompiledModuleRef = std::shared_ptr<const CompiledModule>;

// Content-addressed cache of successful compiles.
class CodeCache {
 public:
  CompiledModuleRef Lookup(uint64_t module_hash, uint64_t fingerprint) const;
  void Insert(CompiledModuleRef code);
  size_t size() const { return entries_.size(); }
  void Clear() { entries_.clear(); }

 private:
  std::map<std::pair<uint64_t, uint64_t>, CompiledModuleRef> entries_;
};

// Engine-owned tier-up policy: wraps the PGO TierManager so profiling and
// profile-guided recompilation are an engine concern, not a caller concern.
class TieringPolicy {
 public:
  explicit TieringPolicy(TierConfig config = TierConfig()) : manager_(config) {}

  // Profile-guided options for `spec` over `base`. The warm-up interpreter
  // run happens at most once per workload name (TierManager caches the
  // profile). On warm-up failure returns `base` unchanged and sets *error.
  CodegenOptions TierUp(const WorkloadSpec& spec, const CodegenOptions& base,
                        std::string* error);

  TierManager& manager() { return manager_; }
  uint64_t warmup_runs() const { return warmup_runs_; }
  void ResetWarmupCount() { warmup_runs_ = 0; }

 private:
  TierManager manager_;
  uint64_t warmup_runs_ = 0;  // interpreter warm-ups actually executed
};

struct EngineConfig {
  bool cache_enabled = true;   // table2-style compile-time benches disable it
  TierConfig tiering;
};

// Aggregate counters surfaced into every BENCH_*.json (engine_stats block).
struct EngineStats {
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;         // includes compile failures
  uint64_t compiles = 0;             // actual backend invocations
  uint64_t tier_warmups = 0;         // interpreter profiling runs
  double compile_seconds = 0;        // wall clock spent compiling
  double compile_seconds_saved = 0;  // sum of cached-entry compile times on hits
};

class Session;

class Engine {
 public:
  explicit Engine(EngineConfig config = EngineConfig());

  // Compile-or-fetch. On a miss the CompiledModule retains a copy of the
  // module for import binding and export lookup; a hit copies nothing.
  // Never returns null — check (*result).ok. Failed compiles are not cached.
  CompiledModuleRef Compile(const Module& module, const CodegenOptions& options);

  // Builds spec.build() and compiles it.
  CompiledModuleRef CompileWorkload(const WorkloadSpec& spec, const CodegenOptions& options);

  // Profile-guided options for `spec` via the engine's TieringPolicy.
  CodegenOptions TierUp(const WorkloadSpec& spec, const CodegenOptions& base,
                        std::string* error);

  EngineStats Stats() const;
  void ResetStats() {
    stats_ = EngineStats();
    tiering_.ResetWarmupCount();
  }
  size_t CacheSize() const { return cache_.size(); }
  void ClearCache() { cache_.Clear(); }

  const EngineConfig& config() const { return config_; }
  TieringPolicy& tiering() { return tiering_; }

 private:
  EngineConfig config_;
  TieringPolicy tiering_;
  CodeCache cache_;
  EngineStats stats_;
};

// Per-instance execution parameters.
struct InstanceOptions {
  std::vector<std::string> argv = {"prog"};
  std::string entry = "main";
  uint64_t fuel = 0;  // 0 = machine default cap
};

// One run's observable result (the harness layers validation and statistics
// on top of this).
struct RunOutcome {
  bool ok = false;
  std::string error;
  uint64_t exit_code = 0;
  PerfCounters counters;
  double seconds = 0;          // simulated wall clock (cycles / clock)
  double browsix_seconds = 0;  // time charged to the Browsix kernel
  uint64_t syscalls = 0;
  std::string stdout_text;
};

class Instance;

// One Browsix kernel + VFS. Instances created from the same Session share
// the filesystem; Reset() replaces the kernel so no staged file survives.
class Session {
 public:
  explicit Session(Engine* engine);

  BrowsixKernel& kernel() { return *kernel_; }
  MemFs& fs();

  // Drops every staged file and all kernel accounting. References previously
  // returned by kernel()/fs() are invalidated; live Instances pick up the
  // fresh kernel on their next Run().
  void Reset();

  // Binds compiled code into this session. Returns null and sets *error when
  // the compile failed or the entry export is missing. The Instance holds a
  // reference to `code` and a pointer to this Session (which must outlive it).
  std::unique_ptr<Instance> Instantiate(CompiledModuleRef code,
                                        InstanceOptions options = InstanceOptions(),
                                        std::string* error = nullptr);

  Engine* engine() { return engine_; }

 private:
  Engine* engine_;
  std::unique_ptr<BrowsixKernel> kernel_;
};

// Compiled code bound to a session with fixed argv/entry/fuel. Run() executes
// the entry on a fresh machine and process each time — repeated runs share
// the compiled program (never recompiling) and the session's filesystem.
class Instance {
 public:
  // Executes the entry function once. The measurement window covers
  // execution only, mirroring the paper ("after WebAssembly JIT compilation
  // concludes"): compilation happened at Engine::Compile time.
  RunOutcome Run();

  // Executes an arbitrary exported function with integer stack args (the
  // compiled-code ABI), on a fresh machine and process like Run(). exit_code
  // carries the function's return register. Used by tests and micro-benches.
  RunOutcome RunExport(const std::string& name, const std::vector<uint64_t>& args);

  const CompiledModule& code() const { return *code_; }
  const InstanceOptions& options() const { return options_; }
  Session* session() { return session_; }
  uint32_t entry_index() const { return entry_index_; }
  uint64_t runs() const { return runs_; }

 private:
  friend class Session;
  Instance(Session* session, CompiledModuleRef code, InstanceOptions options,
           uint32_t entry_index)
      : session_(session),
        code_(std::move(code)),
        options_(std::move(options)),
        entry_index_(entry_index) {}

  RunOutcome RunAtIndex(uint32_t func_index, const std::vector<uint64_t>& args);

  Session* session_;
  CompiledModuleRef code_;
  InstanceOptions options_;
  uint32_t entry_index_;
  uint64_t runs_ = 0;
};

}  // namespace engine
}  // namespace nsf

#endif  // SRC_ENGINE_ENGINE_H_
