// Embedder-style engine API — the single way code runs in this repo.
//
// Modeled on the Engine/Store/Module/Instance shape real Wasm engines expose
// (V8, SpiderMonkey — the toolchains the paper measures):
//
//   Engine   — process-wide and THREAD-SAFE: owns a content-addressed
//              CodeCache keyed by (module hash via the encoder, CodegenOptions
//              fingerprint) and a TieringPolicy wrapping the PGO TierManager.
//              Compilation is compile-once-run-many even under concurrency:
//              the cache is sharded into mutex-guarded shards (selected by
//              module-hash prefix) and each entry carries a "compiling" latch,
//              so two threads requesting the same (module, options) pair block
//              on one compile instead of duplicating the work.
//   Session  — one BrowsixKernel + VFS staging area, single-threaded by
//              design: each worker thread owns its own Session. Many modules
//              can be instantiated into one session; they share the
//              filesystem. Reset() drops all staged state.
//   Instance — a CompiledModule bound into a Session with argv/entry/fuel,
//              reusable across repeated runs (each Run() gets a fresh
//              machine and process; the compiled code is shared).
//
// Typical embedding:
//
//   engine::Engine eng;                       // share freely across threads
//   auto code = eng.Compile(BuildModule(), CodegenOptions::ChromeV8());
//   engine::Session session(&eng);            // one per thread
//   session.fs().WriteFile("/data/input.txt", "...");
//   auto inst = session.Instantiate(code, {.argv = {"prog"}}, &err);
//   engine::RunOutcome out = inst->Run();   // re-running never recompiles
//
// For parallel batch execution over a pool of Sessions, see
// src/engine/executor.h (ExecutorPool / Session::RunBatch).
#ifndef SRC_ENGINE_ENGINE_H_
#define SRC_ENGINE_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/codegen/codegen.h"
#include "src/engine/workload.h"
#include "src/kernel/kernel.h"
#include "src/machine/machine.h"
#include "src/profile/tier.h"
#include "src/wasm/module.h"

namespace nsf {
namespace engine {

// A compiled (module, options) pair, shared by every caller that requests
// the same content. Immutable once published by the Engine.
struct CompiledModule {
  bool ok = false;
  std::string error;            // "module invalid: ..." / "compile failed: ..."
  Module module;                // retained for import binding + export lookup
  uint64_t module_hash = 0;     // HashModule(module)
  uint64_t fingerprint = 0;     // options.Fingerprint()
  std::string profile_name;     // options.profile_name at compile time
  CompileResult compiled;       // program, stats, func_map, import_hooks

  const MProgram& program() const { return compiled.program; }
  const CompileStats& stats() const { return compiled.stats; }
};

using CompiledModuleRef = std::shared_ptr<const CompiledModule>;

// Content-addressed cache of successful compiles, safe for concurrent use.
// The key space is split across `shard_count` independently-locked shards
// selected by the top bits of the module hash, so unrelated compiles never
// contend on one mutex. Each in-flight compile parks a latch in its entry:
// the first requester of a key becomes the leader and compiles; every
// concurrent requester of the same key blocks on the latch and shares the
// leader's result (exactly one backend invocation per unique key).
class CodeCache {
 public:
  explicit CodeCache(size_t shard_count = kDefaultShards);

  // Returns the cached module for (module_hash, fingerprint) or invokes
  // `compile` to produce it. Failed compiles are delivered to every waiter
  // but not retained, so a later request retries. Outputs:
  //   *was_hit — a completed entry was found (no waiting, no compiling)
  //   *joined  — blocked on another thread's in-flight compile of this key
  CompiledModuleRef GetOrCompile(uint64_t module_hash, uint64_t fingerprint,
                                 const std::function<CompiledModuleRef()>& compile,
                                 bool* was_hit, bool* joined);

  // Read-only probe (no latch interaction): the completed entry or null.
  CompiledModuleRef Lookup(uint64_t module_hash, uint64_t fingerprint) const;

  size_t size() const;
  void Clear();
  size_t shard_count() const { return shards_.size(); }

  // Contention telemetry: how often a shard lock was found held, and the
  // total wall time spent blocked on shard locks.
  uint64_t lock_waits() const { return lock_waits_.load(std::memory_order_relaxed); }
  double lock_wait_seconds() const {
    return static_cast<double>(lock_wait_nanos_.load(std::memory_order_relaxed)) * 1e-9;
  }
  void ResetTelemetry() {
    lock_waits_.store(0, std::memory_order_relaxed);
    lock_wait_nanos_.store(0, std::memory_order_relaxed);
  }

  static constexpr size_t kDefaultShards = 16;  // rounded up to a power of two

 private:
  struct Latch {
    std::mutex mu;
    std::condition_variable cv;
    bool ready = false;
    CompiledModuleRef result;
  };
  struct Entry {
    CompiledModuleRef code;        // published once a compile succeeded
    std::shared_ptr<Latch> latch;  // present while a compile is in flight
  };
  struct Shard {
    mutable std::mutex mu;
    std::map<std::pair<uint64_t, uint64_t>, Entry> entries;
  };

  Shard& ShardFor(uint64_t module_hash) const {
    // Prefix (top bits) of the content hash selects the shard; shard count is
    // a power of two so the mask is exact.
    return *shards_[(module_hash >> 48) & (shards_.size() - 1)];
  }
  // Locks `shard.mu`, accounting blocked time into the contention counters.
  std::unique_lock<std::mutex> LockShard(const Shard& shard) const;

  std::vector<std::unique_ptr<Shard>> shards_;
  mutable std::atomic<uint64_t> lock_waits_{0};
  mutable std::atomic<uint64_t> lock_wait_nanos_{0};
};

// Engine-owned tier-up policy: wraps the PGO TierManager so profiling and
// profile-guided recompilation are an engine concern, not a caller concern.
// Thread-safe: warm-up runs for one engine are serialized under a mutex, so
// concurrent TierUp calls for the same workload name execute exactly one
// interpreter warm-up (the second caller finds the cached profile).
class TieringPolicy {
 public:
  explicit TieringPolicy(TierConfig config = TierConfig()) : manager_(config) {}

  // Profile-guided options for `spec` over `base`. The warm-up interpreter
  // run happens at most once per workload name (TierManager caches the
  // profile). On warm-up failure returns `base` unchanged and sets *error.
  CodegenOptions TierUp(const WorkloadSpec& spec, const CodegenOptions& base,
                        std::string* error);

  // Not synchronized — only touch the raw manager from one thread.
  TierManager& manager() { return manager_; }
  uint64_t warmup_runs() const { return warmup_runs_.load(std::memory_order_relaxed); }
  void ResetWarmupCount() { warmup_runs_.store(0, std::memory_order_relaxed); }

 private:
  std::mutex mu_;
  TierManager manager_;
  std::atomic<uint64_t> warmup_runs_{0};  // interpreter warm-ups actually executed
};

struct EngineConfig {
  bool cache_enabled = true;   // table2-style compile-time benches disable it
  size_t cache_shards = CodeCache::kDefaultShards;
  TierConfig tiering;
};

// Aggregate counters surfaced into every BENCH_*.json (engine_stats block).
// Snapshot of the engine's internal atomics; under concurrency the totals
// obey hits + misses == Compile() calls and compiles == unique successful
// keys (joiners of an in-flight compile count as hits, tracked separately
// in compile_joins).
struct EngineStats {
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;         // includes compile failures
  uint64_t compiles = 0;             // actual backend invocations
  uint64_t compile_joins = 0;        // waited on another thread's compile
  uint64_t tier_warmups = 0;         // interpreter profiling runs
  uint64_t lock_waits = 0;           // shard-lock acquisitions that blocked
  double lock_wait_seconds = 0;      // wall time blocked on shard locks
  double compile_seconds = 0;        // wall clock spent compiling
  double compile_seconds_saved = 0;  // sum of cached-entry compile times on hits
};

class Session;

// Thread-safe: Compile/CompileWorkload/TierUp/Stats may be called from any
// number of threads sharing one Engine.
class Engine {
 public:
  explicit Engine(EngineConfig config = EngineConfig());

  // Compile-or-fetch. On a miss the CompiledModule retains a copy of the
  // module for import binding and export lookup; a hit copies nothing.
  // Never returns null — check (*result).ok. Failed compiles are not cached.
  // *was_hit (optional) reports whether this call was served from the cache
  // (including joining another thread's in-flight compile) — per-call truth,
  // unlike diffing Stats() which races under concurrency.
  CompiledModuleRef Compile(const Module& module, const CodegenOptions& options,
                            bool* was_hit = nullptr);

  // Builds spec.build() and compiles it.
  CompiledModuleRef CompileWorkload(const WorkloadSpec& spec, const CodegenOptions& options,
                                    bool* was_hit = nullptr);

  // Profile-guided options for `spec` via the engine's TieringPolicy.
  CodegenOptions TierUp(const WorkloadSpec& spec, const CodegenOptions& base,
                        std::string* error);

  EngineStats Stats() const;
  void ResetStats();
  size_t CacheSize() const { return cache_.size(); }
  void ClearCache() { cache_.Clear(); }

  const EngineConfig& config() const { return config_; }
  TieringPolicy& tiering() { return tiering_; }

 private:
  // One compile, bypassing the cache: validation + backend + stats.
  CompiledModuleRef CompileUncached(const Module& module, uint64_t module_hash,
                                    const CodegenOptions& options, uint64_t fingerprint);
  static void AddSeconds(std::atomic<uint64_t>* nanos, double seconds) {
    nanos->fetch_add(static_cast<uint64_t>(seconds * 1e9), std::memory_order_relaxed);
  }

  EngineConfig config_;
  TieringPolicy tiering_;
  CodeCache cache_;

  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> cache_misses_{0};
  std::atomic<uint64_t> compiles_{0};
  std::atomic<uint64_t> compile_joins_{0};
  std::atomic<uint64_t> compile_nanos_{0};
  std::atomic<uint64_t> saved_nanos_{0};
};

// Per-instance execution parameters.
struct InstanceOptions {
  std::vector<std::string> argv = {"prog"};
  std::string entry = "main";
  uint64_t fuel = 0;  // 0 = machine default cap
};

// One run's observable result (the harness layers validation and statistics
// on top of this).
struct RunOutcome {
  bool ok = false;
  std::string error;
  uint64_t exit_code = 0;
  PerfCounters counters;
  double seconds = 0;          // simulated wall clock (cycles / clock)
  double browsix_seconds = 0;  // time charged to the Browsix kernel
  uint64_t syscalls = 0;
  std::string stdout_text;
};

class Instance;
struct RunRequest;
struct BatchReport;

// One Browsix kernel + VFS. Instances created from the same Session share
// the filesystem; Reset() replaces the kernel so no staged file survives.
// A Session is deliberately NOT thread-safe: it is the unit of per-worker
// state. Give each thread its own Session (ExecutorPool does exactly that);
// the Engine behind them is safely shared.
class Session {
 public:
  explicit Session(Engine* engine);

  BrowsixKernel& kernel() { return *kernel_; }
  MemFs& fs();

  // Drops every staged file and all kernel accounting. References previously
  // returned by kernel()/fs() are invalidated; live Instances pick up the
  // fresh kernel on their next Run().
  void Reset();

  // Binds compiled code into this session. Returns null and sets *error when
  // the compile failed or the entry export is missing. The Instance holds a
  // reference to `code` and a pointer to this Session (which must outlive it).
  std::unique_ptr<Instance> Instantiate(CompiledModuleRef code,
                                        InstanceOptions options = InstanceOptions(),
                                        std::string* error = nullptr);

  // Executes `requests` on THIS session, serially, with Reset() isolation
  // between runs, and aggregates per-run counters into a BatchReport — the
  // single-worker degenerate case of ExecutorPool::Run (src/engine/executor.h).
  BatchReport RunBatch(const std::vector<RunRequest>& requests);

  Engine* engine() { return engine_; }

 private:
  Engine* engine_;
  std::unique_ptr<BrowsixKernel> kernel_;
};

// Compiled code bound to a session with fixed argv/entry/fuel. Run() executes
// the entry on a fresh machine and process each time — repeated runs share
// the compiled program (never recompiling) and the session's filesystem.
class Instance {
 public:
  // Executes the entry function once. The measurement window covers
  // execution only, mirroring the paper ("after WebAssembly JIT compilation
  // concludes"): compilation happened at Engine::Compile time.
  RunOutcome Run();

  // Executes an arbitrary exported function with integer stack args (the
  // compiled-code ABI), on a fresh machine and process like Run(). exit_code
  // carries the function's return register. Used by tests and micro-benches.
  RunOutcome RunExport(const std::string& name, const std::vector<uint64_t>& args);

  const CompiledModule& code() const { return *code_; }
  const InstanceOptions& options() const { return options_; }
  Session* session() { return session_; }
  uint32_t entry_index() const { return entry_index_; }
  uint64_t runs() const { return runs_; }

 private:
  friend class Session;
  Instance(Session* session, CompiledModuleRef code, InstanceOptions options,
           uint32_t entry_index)
      : session_(session),
        code_(std::move(code)),
        options_(std::move(options)),
        entry_index_(entry_index) {}

  RunOutcome RunAtIndex(uint32_t func_index, const std::vector<uint64_t>& args);

  Session* session_;
  CompiledModuleRef code_;
  InstanceOptions options_;
  uint32_t entry_index_;
  uint64_t runs_ = 0;
};

}  // namespace engine
}  // namespace nsf

#endif  // SRC_ENGINE_ENGINE_H_
