#include "src/engine/disk_cache.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <system_error>
#include <utility>
#include <vector>

#include "src/support/str.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/trace.h"
#include "src/wasm/artifact_codec.h"

namespace nsf {
namespace engine {

namespace fs = std::filesystem;

namespace {

constexpr const char* kFilePrefix = "nsfa-";
constexpr const char* kFileSuffix = ".bin";
// Orphaned .tmp files (a writer died between write and rename) older than
// this are reclaimed by the next eviction walk; younger ones may still be
// in flight and are left alone.
constexpr auto kStaleTmpAge = std::chrono::minutes(10);

// A published artifact file: "nsfa-<key>.bin" exactly — not an in-flight or
// orphaned "nsfa-<key>.bin.tmp.N". The single filter every size/eviction
// walk uses, so the enforced bound and DirSizeBytes() always agree.
bool IsArtifactFile(const std::string& name) {
  return name.rfind(kFilePrefix, 0) == 0 && name.size() >= 4 &&
         name.compare(name.size() - 4, 4, kFileSuffix) == 0;
}

bool IsTmpFile(const std::string& name) {
  return name.rfind(kFilePrefix, 0) == 0 && name.find(".tmp.") != std::string::npos;
}

uint64_t NanosSince(std::chrono::steady_clock::time_point t0) {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now() - t0)
                                   .count());
}

bool ReadWholeFile(const std::string& path, std::vector<uint8_t>* out) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return false;
  }
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  if (size < 0) {
    std::fclose(f);
    return false;
  }
  std::fseek(f, 0, SEEK_SET);
  out->resize(static_cast<size_t>(size));
  size_t read = size == 0 ? 0 : std::fread(out->data(), 1, out->size(), f);
  std::fclose(f);
  return read == out->size();
}

bool WriteWholeFile(const std::string& path, const std::vector<uint8_t>& bytes) {
  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return false;
  }
  size_t written = bytes.empty() ? 0 : std::fwrite(bytes.data(), 1, bytes.size(), f);
  bool ok = std::fclose(f) == 0 && written == bytes.size();
  return ok;
}

}  // namespace

DiskCodeCache::DiskCodeCache(std::string dir, uint64_t max_bytes)
    : dir_(std::move(dir)), max_bytes_(max_bytes) {}

std::string DiskCodeCache::PathForKey(uint64_t module_hash, uint64_t fingerprint) const {
  return dir_ + "/" + kFilePrefix +
         StrFormat("%016llx-%016llx", static_cast<unsigned long long>(module_hash),
                   static_cast<unsigned long long>(fingerprint)) +
         kFileSuffix;
}

bool DiskCodeCache::Load(uint64_t module_hash, uint64_t fingerprint, CompiledArtifact* out) {
  if (!enabled()) {
    return false;
  }
  telemetry::Span span("disk.load", "engine");
  std::string path = PathForKey(module_hash, fingerprint);
  std::vector<uint8_t> bytes;
  auto t0 = std::chrono::steady_clock::now();
  if (!ReadWholeFile(path, &bytes)) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    span.arg("outcome", "miss");
    return false;
  }
  std::string error;
  bool accepted = DeserializeArtifact(bytes, out, &error) &&
                  out->module_hash == module_hash && out->options_fingerprint == fingerprint;
  if (!accepted) {
    // Corrupt, truncated, version-mismatched, or mis-keyed: delete so the
    // recompile that follows can repopulate a clean entry.
    std::error_code ec;
    fs::remove(path, ec);
    load_failures_.fetch_add(1, std::memory_order_relaxed);
    misses_.fetch_add(1, std::memory_order_relaxed);
    span.arg("outcome", "rejected");
    return false;
  }
  uint64_t deser_ns = NanosSince(t0);
  deserialize_nanos_.fetch_add(deser_ns, std::memory_order_relaxed);
  hits_.fetch_add(1, std::memory_order_relaxed);
  static telemetry::Histogram& deserialize_ns =
      *telemetry::MetricsRegistry::Global().GetHistogram("engine.disk.deserialize_ns");
  deserialize_ns.Record(deser_ns);
  if (span.active()) {
    span.arg("outcome", "hit");
    span.arg("bytes", static_cast<uint64_t>(bytes.size()));
  }
  // LRU touch: a hit makes this entry the newest. Failure is harmless (the
  // file may have been evicted by another process between read and touch).
  std::error_code ec;
  fs::last_write_time(path, fs::file_time_type::clock::now(), ec);
  return true;
}

void DiskCodeCache::Discard(uint64_t module_hash, uint64_t fingerprint) {
  if (!enabled()) {
    return;
  }
  std::error_code ec;
  fs::remove(PathForKey(module_hash, fingerprint), ec);
  load_failures_.fetch_add(1, std::memory_order_relaxed);
}

void DiskCodeCache::Store(const CompiledArtifact& artifact) {
  if (!enabled() || !artifact.ok()) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(dir_mu_);
    if (!dir_ready_) {
      std::error_code ec;
      fs::create_directories(dir_, ec);
      if (ec && !fs::is_directory(dir_, ec)) {
        return;  // cannot create the cache dir; skip persistence quietly
      }
      dir_ready_ = true;
    }
  }
  telemetry::Span span("disk.store", "engine");
  auto t0 = std::chrono::steady_clock::now();
  std::vector<uint8_t> bytes = SerializeArtifact(artifact);
  if (span.active()) {
    span.arg("bytes", static_cast<uint64_t>(bytes.size()));
  }
  std::string path = PathForKey(artifact.module_hash, artifact.options_fingerprint);
  // Unique tmp name per (thread, store): two racing writers of one key both
  // rename complete files; last rename wins and both are valid.
  static std::atomic<uint64_t> tmp_counter{0};
  std::string tmp = path + StrFormat(".tmp.%llu", static_cast<unsigned long long>(
                                                      tmp_counter.fetch_add(1)));
  if (!WriteWholeFile(tmp, bytes)) {
    std::error_code ec;
    fs::remove(tmp, ec);
    return;
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return;
  }
  uint64_t ser_ns = NanosSince(t0);
  serialize_nanos_.fetch_add(ser_ns, std::memory_order_relaxed);
  stores_.fetch_add(1, std::memory_order_relaxed);
  static telemetry::Histogram& serialize_ns =
      *telemetry::MetricsRegistry::Global().GetHistogram("engine.disk.serialize_ns");
  serialize_ns.Record(ser_ns);
  if (max_bytes_ != 0) {
    // Track the directory's size with a running counter instead of walking
    // it on every store: seed once from a real scan, add what we write, and
    // resync from the exact walk whenever eviction runs. The bound is
    // enforced per-writer: other writers' stores (and our own re-stores of
    // an existing key, which double-count here) go unseen until the next
    // resync — both errors only delay or hasten a walk, never corrupt it,
    // and any writer's next over-budget store converges the whole directory.
    bool over_budget;
    {
      std::lock_guard<std::mutex> lock(dir_mu_);
      if (!size_seeded_) {
        approx_bytes_ = DirSizeBytes();  // includes the file just renamed
        size_seeded_ = true;
      } else {
        approx_bytes_ += bytes.size();
      }
      over_budget = approx_bytes_ > max_bytes_;
    }
    if (over_budget) {
      EvictToFit();
    }
  }
}

uint64_t DiskCodeCache::DirSizeBytes() const {
  if (!enabled()) {
    return 0;
  }
  uint64_t total = 0;
  std::error_code ec;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir_, ec)) {
    if (!IsArtifactFile(entry.path().filename().string())) {
      continue;
    }
    std::error_code size_ec;
    uint64_t size = entry.file_size(size_ec);
    if (!size_ec) {
      total += size;
    }
  }
  return total;
}

void DiskCodeCache::EvictToFit() {
  // One evictor at a time in this process; cross-process races only cause
  // redundant/failed removals, which are ignored.
  telemetry::Span span("disk.evict", "engine");
  uint64_t evicted_before = evictions_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(dir_mu_);
  struct FileInfo {
    fs::path path;
    uint64_t size = 0;
    fs::file_time_type mtime;
  };
  std::vector<FileInfo> files;
  uint64_t total = 0;
  std::error_code ec;
  const auto now = fs::file_time_type::clock::now();
  for (const fs::directory_entry& entry : fs::directory_iterator(dir_, ec)) {
    std::string name = entry.path().filename().string();
    std::error_code stat_ec;
    if (IsTmpFile(name)) {
      // Reclaim orphans from writers that died mid-store; recent .tmp files
      // may still be in flight (about to be renamed) and are left alone.
      fs::file_time_type mtime = entry.last_write_time(stat_ec);
      if (!stat_ec && now - mtime > kStaleTmpAge) {
        fs::remove(entry.path(), stat_ec);
      }
      continue;
    }
    if (!IsArtifactFile(name)) {
      continue;
    }
    FileInfo info;
    info.path = entry.path();
    info.size = entry.file_size(stat_ec);
    if (stat_ec) {
      continue;
    }
    info.mtime = entry.last_write_time(stat_ec);
    if (stat_ec) {
      continue;
    }
    total += info.size;
    files.push_back(std::move(info));
  }
  if (total > max_bytes_) {
    std::sort(files.begin(), files.end(),
              [](const FileInfo& a, const FileInfo& b) { return a.mtime < b.mtime; });
    for (const FileInfo& f : files) {
      if (total <= max_bytes_) {
        break;
      }
      std::error_code rm_ec;
      if (fs::remove(f.path, rm_ec) && !rm_ec) {
        evictions_.fetch_add(1, std::memory_order_relaxed);
      }
      // Count the bytes as gone either way: if removal failed because another
      // process already evicted it, the space is reclaimed all the same.
      total -= std::min(total, f.size);
    }
  }
  // Resync the running counter from the exact walk (also folds in anything
  // other processes stored since the last resync).
  approx_bytes_ = total;
  if (span.active()) {
    span.arg("evicted", evictions_.load(std::memory_order_relaxed) - evicted_before);
    span.arg("dir_bytes", total);
  }
}

DiskCacheStats DiskCodeCache::stats() const {
  DiskCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.load_failures = load_failures_.load(std::memory_order_relaxed);
  s.stores = stores_.load(std::memory_order_relaxed);
  s.deserialize_seconds =
      static_cast<double>(deserialize_nanos_.load(std::memory_order_relaxed)) * 1e-9;
  s.serialize_seconds =
      static_cast<double>(serialize_nanos_.load(std::memory_order_relaxed)) * 1e-9;
  return s;
}

void DiskCodeCache::ResetStats() {
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
  load_failures_.store(0, std::memory_order_relaxed);
  stores_.store(0, std::memory_order_relaxed);
  deserialize_nanos_.store(0, std::memory_order_relaxed);
  serialize_nanos_.store(0, std::memory_order_relaxed);
}

}  // namespace engine
}  // namespace nsf
