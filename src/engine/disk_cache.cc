#include "src/engine/disk_cache.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <system_error>
#include <thread>
#include <utility>
#include <vector>

#include "src/profile/profile.h"
#include "src/support/str.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/trace.h"
#include "src/wasm/artifact_codec.h"

namespace nsf {
namespace engine {

namespace fs = std::filesystem;

namespace {

constexpr const char* kFilePrefix = "nsfa-";
constexpr const char* kFileSuffix = ".bin";
constexpr const char* kLockSuffix = ".bin.lock";
constexpr const char* kManifestName = "manifest.nsf";
constexpr const char* kManifestHeader = "nsf-manifest v1";
// Orphaned .tmp and .lock files (a writer died between write and rename, or
// a lease holder crashed) older than this are reclaimed by the next manifest
// rebuild scan; younger ones may still be in flight and are left alone.
constexpr auto kStaleOrphanAge = std::chrono::minutes(10);

// A published artifact file: "nsfa-<key>.bin" exactly — not an in-flight or
// orphaned "nsfa-<key>.bin.tmp.N", a ".bin.lock" lease, or the manifest.
// The single filter every manifest rebuild uses, so the enforced bound and
// DirSizeBytes() always agree.
bool IsArtifactFile(const std::string& name) {
  return name.rfind(kFilePrefix, 0) == 0 && name.size() >= 4 &&
         name.compare(name.size() - 4, 4, kFileSuffix) == 0;
}

bool IsTmpFile(const std::string& name) {
  return name.find(".tmp.") != std::string::npos;
}

bool IsLockFile(const std::string& name) {
  return name.rfind(kFilePrefix, 0) == 0 && name.size() >= 9 &&
         name.compare(name.size() - 9, 9, kLockSuffix) == 0;
}

std::string FileNameForKey(uint64_t module_hash, uint64_t fingerprint) {
  return kFilePrefix +
         StrFormat("%016llx-%016llx", static_cast<unsigned long long>(module_hash),
                   static_cast<unsigned long long>(fingerprint)) +
         kFileSuffix;
}

// Tiering-profile files: "nsfp-" so the artifact filter (and therefore the
// manifest, the LRU bound, and eviction) never sees them. The name is hashed
// because workload names are arbitrary strings; FNV-1a is process-independent
// (unlike std::hash) so warm processes find cold processes' files.
constexpr const char* kProfilePrefix = "nsfp-";

uint64_t HashWorkloadName(const std::string& name) {
  uint64_t h = 1469598103934665603ull;
  for (char c : name) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::string FileNameForProfile(const std::string& name) {
  return kProfilePrefix +
         StrFormat("%016llx", static_cast<unsigned long long>(HashWorkloadName(name))) +
         kFileSuffix;
}

uint64_t NanosSince(std::chrono::steady_clock::time_point t0) {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now() - t0)
                                   .count());
}

bool ReadWholeFile(const std::string& path, std::vector<uint8_t>* out) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return false;
  }
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  if (size < 0) {
    std::fclose(f);
    return false;
  }
  std::fseek(f, 0, SEEK_SET);
  out->resize(static_cast<size_t>(size));
  size_t read = size == 0 ? 0 : std::fread(out->data(), 1, out->size(), f);
  std::fclose(f);
  return read == out->size();
}

bool WriteWholeFile(const std::string& path, const void* data, size_t size) {
  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return false;
  }
  size_t written = size == 0 ? 0 : std::fwrite(data, 1, size, f);
  bool ok = std::fclose(f) == 0 && written == size;
  return ok;
}

}  // namespace

DiskCodeCache::DiskCodeCache(std::string dir, uint64_t max_bytes)
    : dir_(std::move(dir)), max_bytes_(max_bytes) {}

DiskCodeCache::~DiskCodeCache() {
  // Flush recency updates accumulated by Load() hits, so a fresh process
  // (which trusts the manifest) inherits this one's LRU order.
  std::lock_guard<std::mutex> lock(dir_mu_);
  if (manifest_loaded_ && manifest_dirty_) {
    PersistManifestLocked();
  }
}

std::string DiskCodeCache::PathForKey(uint64_t module_hash, uint64_t fingerprint) const {
  return dir_ + "/" + FileNameForKey(module_hash, fingerprint);
}

std::string DiskCodeCache::LockPathForKey(uint64_t module_hash, uint64_t fingerprint) const {
  return PathForKey(module_hash, fingerprint) + ".lock";
}

void DiskCodeCache::SetLeaseTimingForTest(uint64_t stale_age_ms, uint64_t poll_ms,
                                          uint64_t wait_max_ms) {
  lease_stale_age_ms_ = stale_age_ms;
  lease_poll_ms_ = poll_ms;
  lease_wait_max_ms_ = wait_max_ms;
}

// --- manifest -------------------------------------------------------------

void DiskCodeCache::PersistManifestLocked() const {
  std::string text = kManifestHeader;
  text += '\n';
  for (const auto& [name, entry] : manifest_) {
    text += StrFormat("%s %llu %llu\n", name.c_str(),
                      static_cast<unsigned long long>(entry.size),
                      static_cast<unsigned long long>(entry.recency));
  }
  // Atomic publish, same discipline as artifacts: unique tmp, then rename.
  static std::atomic<uint64_t> tmp_counter{0};
  std::string path = dir_ + "/" + kManifestName;
  std::string tmp = path + StrFormat(".tmp.%llu", static_cast<unsigned long long>(
                                                      tmp_counter.fetch_add(1)));
  if (!WriteWholeFile(tmp, text.data(), text.size())) {
    std::error_code ec;
    fs::remove(tmp, ec);
    return;  // stays dirty; the next persist point retries
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return;
  }
  manifest_dirty_ = false;
}

void DiskCodeCache::RebuildManifestLocked() const {
  manifest_.clear();
  manifest_total_bytes_ = 0;
  recency_clock_ = 0;
  manifest_rebuilds_.fetch_add(1, std::memory_order_relaxed);
  struct Scanned {
    std::string name;
    uint64_t size = 0;
    fs::file_time_type mtime;
  };
  std::vector<Scanned> files;
  std::error_code ec;
  const auto now = fs::file_time_type::clock::now();
  for (const fs::directory_entry& entry : fs::directory_iterator(dir_, ec)) {
    std::string name = entry.path().filename().string();
    std::error_code stat_ec;
    if (IsTmpFile(name) || IsLockFile(name)) {
      // Reclaim orphans from writers/lease-holders that died mid-flight;
      // recent ones may still be live and are left alone. (Live leases are
      // far younger than this: BeginCompile presumes them stale after
      // seconds, not minutes.)
      fs::file_time_type mtime = entry.last_write_time(stat_ec);
      if (!stat_ec && now - mtime > kStaleOrphanAge) {
        fs::remove(entry.path(), stat_ec);
      }
      continue;
    }
    if (!IsArtifactFile(name)) {
      continue;
    }
    Scanned s;
    s.name = std::move(name);
    s.size = entry.file_size(stat_ec);
    if (stat_ec) {
      continue;
    }
    s.mtime = entry.last_write_time(stat_ec);
    if (stat_ec) {
      continue;
    }
    files.push_back(std::move(s));
  }
  // Seed the logical LRU clock from mtime order, so the rebuilt manifest
  // preserves whatever recency the file system still knows about.
  std::sort(files.begin(), files.end(),
            [](const Scanned& a, const Scanned& b) { return a.mtime < b.mtime; });
  for (const Scanned& s : files) {
    manifest_[s.name] = ManifestEntry{s.size, ++recency_clock_};
    manifest_total_bytes_ += s.size;
  }
  manifest_dirty_ = true;
}

namespace {

// Parses a manifest file's text into (name -> {size, recency}). False on any
// malformation — a truncated final line, a bad header, an entry that is not
// an artifact name — so callers fall back to the directory scan.
bool ParseManifestText(const std::string& text,
                       std::map<std::string, uint64_t>* sizes,
                       std::map<std::string, uint64_t>* recencies) {
  size_t pos = 0;
  bool first = true;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) {
      return false;  // truncated final line: treat as corrupt
    }
    std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (first) {
      if (line != kManifestHeader) {
        return false;
      }
      first = false;
      continue;
    }
    char name[256];
    unsigned long long size = 0, recency = 0;
    if (std::sscanf(line.c_str(), "%255s %llu %llu", name, &size, &recency) != 3 ||
        !IsArtifactFile(name)) {
      return false;
    }
    (*sizes)[name] = size;
    (*recencies)[name] = recency;
  }
  return !first;
}

}  // namespace

void DiskCodeCache::EnsureManifestLocked() const {
  if (manifest_loaded_) {
    return;
  }
  manifest_loaded_ = true;
  std::vector<uint8_t> bytes;
  std::map<std::string, uint64_t> sizes, recencies;
  if (!ReadWholeFile(dir_ + "/" + kManifestName, &bytes) ||
      !ParseManifestText(std::string(bytes.begin(), bytes.end()), &sizes, &recencies)) {
    RebuildManifestLocked();
    return;
  }
  for (const auto& [name, size] : sizes) {
    uint64_t recency = recencies[name];
    manifest_[name] = ManifestEntry{size, recency};
    manifest_total_bytes_ += size;
    recency_clock_ = std::max<uint64_t>(recency_clock_, recency);
  }
}

void DiskCodeCache::MergeManifestFromDiskLocked() const {
  std::vector<uint8_t> bytes;
  std::map<std::string, uint64_t> sizes, recencies;
  if (!ReadWholeFile(dir_ + "/" + kManifestName, &bytes) ||
      !ParseManifestText(std::string(bytes.begin(), bytes.end()), &sizes, &recencies)) {
    return;  // nothing usable to merge; memory stays authoritative
  }
  for (const auto& [name, size] : sizes) {
    uint64_t recency = recencies[name];
    auto it = manifest_.find(name);
    if (it == manifest_.end()) {
      // Stored by another process. If its file is already gone again, the
      // eviction that follows drops the entry when removal fails.
      manifest_[name] = ManifestEntry{size, recency};
      manifest_total_bytes_ += size;
      manifest_dirty_ = true;
    } else if (recency > it->second.recency) {
      it->second.recency = recency;  // touched more recently elsewhere
      manifest_dirty_ = true;
    }
    recency_clock_ = std::max<uint64_t>(recency_clock_, recency);
  }
}

void DiskCodeCache::ManifestEraseLocked(const std::string& name) const {
  auto it = manifest_.find(name);
  if (it == manifest_.end()) {
    return;
  }
  manifest_total_bytes_ -= std::min(manifest_total_bytes_, it->second.size);
  manifest_.erase(it);
  manifest_dirty_ = true;
}

// --- artifact I/O ---------------------------------------------------------

bool DiskCodeCache::Load(uint64_t module_hash, uint64_t fingerprint, CompiledArtifact* out) {
  if (!enabled()) {
    return false;
  }
  telemetry::Span span("disk.load", "engine");
  std::string name = FileNameForKey(module_hash, fingerprint);
  std::string path = dir_ + "/" + name;
  std::vector<uint8_t> bytes;
  auto t0 = std::chrono::steady_clock::now();
  if (!ReadWholeFile(path, &bytes)) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    span.arg("outcome", "miss");
    return false;
  }
  std::string error;
  bool accepted = DeserializeArtifact(bytes, out, &error) &&
                  out->module_hash == module_hash && out->options_fingerprint == fingerprint;
  if (!accepted) {
    // Corrupt, truncated, version-mismatched, or mis-keyed: delete so the
    // recompile that follows can repopulate a clean entry.
    std::error_code ec;
    fs::remove(path, ec);
    {
      std::lock_guard<std::mutex> lock(dir_mu_);
      if (manifest_loaded_) {
        ManifestEraseLocked(name);
      }
    }
    load_failures_.fetch_add(1, std::memory_order_relaxed);
    misses_.fetch_add(1, std::memory_order_relaxed);
    span.arg("outcome", "rejected");
    return false;
  }
  uint64_t deser_ns = NanosSince(t0);
  deserialize_nanos_.fetch_add(deser_ns, std::memory_order_relaxed);
  hits_.fetch_add(1, std::memory_order_relaxed);
  static telemetry::Histogram& deserialize_ns =
      *telemetry::MetricsRegistry::Global().GetHistogram("engine.disk.deserialize_ns");
  deserialize_ns.Record(deser_ns);
  if (span.active()) {
    span.arg("outcome", "hit");
    span.arg("bytes", static_cast<uint64_t>(bytes.size()));
  }
  // LRU touch: a hit makes this entry the newest — in the manifest (flushed
  // at destruction, merged by whoever evicts next) and on disk via mtime,
  // the ground truth manifest rebuilds fall back on. Loads are cold-path
  // (once per key per process), so forcing the manifest in here never taxes
  // a warm request. Failure is harmless (the file may have been evicted
  // between read and touch).
  {
    std::lock_guard<std::mutex> lock(dir_mu_);
    EnsureManifestLocked();
    auto it = manifest_.find(name);
    if (it != manifest_.end()) {
      it->second.recency = ++recency_clock_;
    } else {
      // Stored by a process whose manifest write we never saw: adopt it.
      manifest_[name] = ManifestEntry{static_cast<uint64_t>(bytes.size()), ++recency_clock_};
      manifest_total_bytes_ += bytes.size();
    }
    manifest_dirty_ = true;
  }
  std::error_code ec;
  fs::last_write_time(path, fs::file_time_type::clock::now(), ec);
  return true;
}

void DiskCodeCache::Discard(uint64_t module_hash, uint64_t fingerprint) {
  if (!enabled()) {
    return;
  }
  std::string name = FileNameForKey(module_hash, fingerprint);
  std::error_code ec;
  fs::remove(dir_ + "/" + name, ec);
  {
    std::lock_guard<std::mutex> lock(dir_mu_);
    if (manifest_loaded_) {
      ManifestEraseLocked(name);
    }
  }
  load_failures_.fetch_add(1, std::memory_order_relaxed);
}

bool DiskCodeCache::EnsureDirLocked() {
  if (!dir_ready_) {
    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec && !fs::is_directory(dir_, ec)) {
      return false;  // cannot create the cache dir; skip persistence quietly
    }
    dir_ready_ = true;
  }
  return true;
}

void DiskCodeCache::Store(const CompiledArtifact& artifact) {
  if (!enabled() || !artifact.ok()) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(dir_mu_);
    if (!EnsureDirLocked()) {
      return;
    }
  }
  telemetry::Span span("disk.store", "engine");
  auto t0 = std::chrono::steady_clock::now();
  std::vector<uint8_t> bytes = SerializeArtifact(artifact);
  if (span.active()) {
    span.arg("bytes", static_cast<uint64_t>(bytes.size()));
  }
  std::string name = FileNameForKey(artifact.module_hash, artifact.options_fingerprint);
  std::string path = dir_ + "/" + name;
  // Unique tmp name per (thread, store): two racing writers of one key both
  // rename complete files; last rename wins and both are valid.
  static std::atomic<uint64_t> tmp_counter{0};
  std::string tmp = path + StrFormat(".tmp.%llu", static_cast<unsigned long long>(
                                                      tmp_counter.fetch_add(1)));
  if (!WriteWholeFile(tmp, bytes.data(), bytes.size())) {
    std::error_code ec;
    fs::remove(tmp, ec);
    return;
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return;
  }
  uint64_t ser_ns = NanosSince(t0);
  serialize_nanos_.fetch_add(ser_ns, std::memory_order_relaxed);
  stores_.fetch_add(1, std::memory_order_relaxed);
  static telemetry::Histogram& serialize_ns =
      *telemetry::MetricsRegistry::Global().GetHistogram("engine.disk.serialize_ns");
  serialize_ns.Record(ser_ns);
  // Account the new entry in the manifest (loading it first if this is the
  // first touch — a one-time seed that later stores never repeat) and
  // enforce the size bound off the manifest total: no directory walk on
  // either side of the budget. Other processes' concurrent stores go unseen
  // until a rebuild — that drift only delays eviction, never corrupts it,
  // because eviction drops entries whose files are already gone.
  std::lock_guard<std::mutex> lock(dir_mu_);
  EnsureManifestLocked();
  ManifestEraseLocked(name);  // re-store of an existing key: replace, not add
  manifest_[name] = ManifestEntry{bytes.size(), ++recency_clock_};
  manifest_total_bytes_ += bytes.size();
  manifest_dirty_ = true;
  if (max_bytes_ != 0 && manifest_total_bytes_ > max_bytes_) {
    EvictToFit();  // persists the manifest
  } else {
    PersistManifestLocked();
  }
}

std::string DiskCodeCache::ProfilePathForName(const std::string& name) const {
  return dir_ + "/" + FileNameForProfile(name);
}

bool DiskCodeCache::LoadProfile(const std::string& name, Profile* out) {
  if (!enabled()) {
    return false;
  }
  std::string path = ProfilePathForName(name);
  std::vector<uint8_t> bytes;
  if (!ReadWholeFile(path, &bytes)) {
    return false;
  }
  std::string error;
  if (!Profile::ParseBinary(bytes, out, &error)) {
    // Same policy as corrupt artifacts: delete so the next miss recollects
    // instead of re-parsing a bad file forever.
    std::error_code ec;
    fs::remove(path, ec);
    load_failures_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

void DiskCodeCache::StoreProfile(const std::string& name, const Profile& profile) {
  if (!enabled()) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(dir_mu_);
    if (!EnsureDirLocked()) {
      return;
    }
  }
  std::vector<uint8_t> bytes = profile.SerializeBinary();
  std::string path = ProfilePathForName(name);
  // Atomic publish, same discipline as artifacts; racing writers of one name
  // both rename complete files and last rename wins.
  static std::atomic<uint64_t> tmp_counter{0};
  std::string tmp = path + StrFormat(".tmp.%llu", static_cast<unsigned long long>(
                                                      tmp_counter.fetch_add(1)));
  if (!WriteWholeFile(tmp, bytes.data(), bytes.size())) {
    std::error_code ec;
    fs::remove(tmp, ec);
    return;
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
  }
}

uint64_t DiskCodeCache::DirSizeBytes() const {
  if (!enabled()) {
    return 0;
  }
  std::lock_guard<std::mutex> lock(dir_mu_);
  EnsureManifestLocked();
  return manifest_total_bytes_;
}

void DiskCodeCache::EvictToFit() {
  // Caller holds dir_mu_ with the manifest loaded. LRU by manifest recency;
  // cross-process races only cause removals of already-gone files, which
  // just drop the stale manifest entry.
  telemetry::Span span("disk.evict", "engine");
  // Fold in other processes' persisted view first, so their LRU touches and
  // stores are honored before anything is chosen for removal.
  MergeManifestFromDiskLocked();
  uint64_t evicted = 0;
  std::vector<std::pair<uint64_t, std::string>> order;  // (recency, name)
  order.reserve(manifest_.size());
  for (const auto& [name, entry] : manifest_) {
    order.emplace_back(entry.recency, name);
  }
  std::sort(order.begin(), order.end());
  for (const auto& [recency, name] : order) {
    if (manifest_total_bytes_ <= max_bytes_) {
      break;
    }
    std::error_code rm_ec;
    if (fs::remove(dir_ + "/" + name, rm_ec) && !rm_ec) {
      evictions_.fetch_add(1, std::memory_order_relaxed);
      evicted++;
    }
    // Drop the entry either way: if removal failed because another process
    // already evicted the file, the space is reclaimed all the same.
    ManifestEraseLocked(name);
  }
  PersistManifestLocked();
  if (span.active()) {
    span.arg("evicted", evicted);
    span.arg("dir_bytes", manifest_total_bytes_);
  }
}

// --- cross-process compile lease ------------------------------------------

bool DiskCodeCache::Exists(uint64_t module_hash, uint64_t fingerprint) const {
  if (!enabled()) {
    return false;
  }
  std::error_code ec;
  return fs::exists(PathForKey(module_hash, fingerprint), ec) && !ec;
}

bool DiskCodeCache::BeginCompile(uint64_t module_hash, uint64_t fingerprint) {
  if (!enabled()) {
    return true;
  }
  {
    std::lock_guard<std::mutex> lock(dir_mu_);
    if (!EnsureDirLocked()) {
      return true;  // no shared directory, nothing to serialize against
    }
  }
  const std::string lock_path = LockPathForKey(module_hash, fingerprint);
  const auto t0 = std::chrono::steady_clock::now();
  const auto stale_age = std::chrono::milliseconds(lease_stale_age_ms_);
  const auto wait_max = std::chrono::milliseconds(lease_wait_max_ms_);
  telemetry::Span span("disk.lease", "engine");
  bool waited = false;
  for (;;) {
    // Exclusive create is the acquisition: exactly one process's open()
    // succeeds for a given path. Contents are for humans inspecting the dir.
    int fd = ::open(lock_path.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
    if (fd >= 0) {
      std::string who = StrFormat("pid %d\n", static_cast<int>(::getpid()));
      ssize_t ignored = ::write(fd, who.data(), who.size());
      (void)ignored;
      ::close(fd);
      if (span.active()) {
        span.arg("outcome", waited ? "acquired_after_wait" : "acquired");
        span.arg("wait_ns", NanosSince(t0));
      }
      return true;
    }
    if (errno != EEXIST) {
      // The filesystem won't give us a lease (permissions, read-only, ...).
      // Compile without one — duplicated work, never incorrectness.
      span.arg("outcome", "unavailable");
      return true;
    }
    std::error_code ec;
    fs::file_time_type mtime = fs::last_write_time(lock_path, ec);
    if (ec) {
      continue;  // vanished between open and stat: retry the create at once
    }
    bool stale = fs::file_time_type::clock::now() - mtime > stale_age;
    bool timed_out = std::chrono::steady_clock::now() - t0 > wait_max;
    if (stale || timed_out) {
      // Presume the holder dead (stale) or wedged (timeout backstop): take
      // the lease over by force. If the removal races another waiter's, the
      // loop just re-contends the create.
      fs::remove(lock_path, ec);
      lease_takeovers_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (!waited) {
      waited = true;
      lease_waits_.fetch_add(1, std::memory_order_relaxed);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(lease_poll_ms_));
    if (!fs::exists(lock_path, ec) && !ec) {
      // The holder released: its artifact should be on disk now. Don't
      // acquire — report "lost the race" so the caller re-probes Load().
      if (span.active()) {
        span.arg("outcome", "yielded");
        span.arg("wait_ns", NanosSince(t0));
      }
      return false;
    }
  }
}

void DiskCodeCache::EndCompile(uint64_t module_hash, uint64_t fingerprint) {
  if (!enabled()) {
    return;
  }
  std::error_code ec;
  fs::remove(LockPathForKey(module_hash, fingerprint), ec);
}

DiskCacheStats DiskCodeCache::stats() const {
  DiskCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.load_failures = load_failures_.load(std::memory_order_relaxed);
  s.stores = stores_.load(std::memory_order_relaxed);
  s.lease_waits = lease_waits_.load(std::memory_order_relaxed);
  s.lease_takeovers = lease_takeovers_.load(std::memory_order_relaxed);
  s.manifest_rebuilds = manifest_rebuilds_.load(std::memory_order_relaxed);
  s.deserialize_seconds =
      static_cast<double>(deserialize_nanos_.load(std::memory_order_relaxed)) * 1e-9;
  s.serialize_seconds =
      static_cast<double>(serialize_nanos_.load(std::memory_order_relaxed)) * 1e-9;
  return s;
}

void DiskCodeCache::ResetStats() {
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
  load_failures_.store(0, std::memory_order_relaxed);
  stores_.store(0, std::memory_order_relaxed);
  lease_waits_.store(0, std::memory_order_relaxed);
  lease_takeovers_.store(0, std::memory_order_relaxed);
  manifest_rebuilds_.store(0, std::memory_order_relaxed);
  deserialize_nanos_.store(0, std::memory_order_relaxed);
  serialize_nanos_.store(0, std::memory_order_relaxed);
}

}  // namespace engine
}  // namespace nsf
