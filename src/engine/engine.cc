#include "src/engine/engine.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <system_error>
#include <utility>

#include "src/codegen/verify.h"
#include "src/engine/tierer.h"
#include "src/machine/verify_decoded.h"
#include "src/runtime/runtime.h"
#include "src/support/str.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/trace.h"
#include "src/wasm/encoder.h"
#include "src/wasm/validator.h"

namespace nsf {
namespace engine {

namespace {

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

// Instrumentation handles, resolved once. Time histograms are nanoseconds
// (`_ns` convention, src/telemetry/metrics.h).
telemetry::Histogram& Hist(const char* name) {
  return *telemetry::MetricsRegistry::Global().GetHistogram(name);
}
telemetry::Counter& Count(const char* name) {
  return *telemetry::MetricsRegistry::Global().GetCounter(name);
}

uint64_t ElapsedNs(std::chrono::steady_clock::time_point t0) {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now() - t0)
                                   .count());
}

}  // namespace

std::string DefaultCacheDir() {
  const char* dir = std::getenv("NSF_CACHE_DIR");
  return dir != nullptr ? std::string(dir) : std::string();
}

uint64_t DefaultDiskCacheMaxBytes() {
  const char* v = std::getenv("NSF_CACHE_MAX_BYTES");
  if (v != nullptr) {
    return static_cast<uint64_t>(std::strtoull(v, nullptr, 10));
  }
  return 256ull << 20;  // 256 MiB default budget for the disk tier
}

namespace {

// Probe-start mix for the hit index. The shard was already selected by the
// hash's top bits, so the probe position must come from a full remix or
// same-shard keys would cluster.
size_t IndexHash(uint64_t module_hash, uint64_t fingerprint) {
  uint64_t x = module_hash ^ (fingerprint + 0x9e3779b97f4a7c15ull);
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  return static_cast<size_t>(x);
}

}  // namespace

// --- CodeCache ---

CodeCache::CodeCache(size_t shard_count, std::string disk_dir, uint64_t disk_max_bytes,
                     bool lockfree_reads)
    : disk_(std::move(disk_dir), disk_max_bytes), lockfree_reads_(lockfree_reads) {
  size_t n = RoundUpPow2(shard_count == 0 ? 1 : shard_count);
  shards_.reserve(n);
  for (size_t i = 0; i < n; i++) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

CodeCache::~CodeCache() {
  // No readers can be probing a cache being destroyed; the live tables and
  // nodes are freed directly. Anything already retired belongs to the EBR
  // domain and is reclaimed on its own schedule.
  for (auto& shard : shards_) {
    IndexTable* t = shard->index.load(std::memory_order_relaxed);
    if (t != nullptr) {
      for (size_t i = 0; i < t->capacity; i++) {
        delete t->slots[i].load(std::memory_order_relaxed);
      }
      delete t;
    }
  }
}

CompiledModuleRef CodeCache::IndexLookup(const Shard& shard, uint64_t module_hash,
                                         uint64_t fingerprint) const {
  // The entire warm hit: pin, acquire-load table and node, copy the ref,
  // unpin. Wait-free — no mutex, no CAS, no retry loop. The epoch pin keeps
  // every node and table reachable here alive until the guard drops; the
  // shared_ptr copy keeps the module alive after it.
  ebr::EbrGuard guard(ebr::EbrDomain::Global());
  const IndexTable* t = shard.index.load(std::memory_order_acquire);
  if (t == nullptr) {
    return nullptr;
  }
  const size_t mask = t->capacity - 1;
  size_t i = IndexHash(module_hash, fingerprint) & mask;
  while (true) {
    IndexNode* n = t->slots[i].load(std::memory_order_acquire);
    if (n == nullptr) {
      return nullptr;  // load factor <= 1/2 guarantees a null terminator
    }
    if (n->module_hash == module_hash && n->fingerprint == fingerprint) {
      return n->code;
    }
    i = (i + 1) & mask;
  }
}

void CodeCache::IndexPlace(IndexTable* table, IndexNode* node) {
  const size_t mask = table->capacity - 1;
  size_t i = IndexHash(node->module_hash, node->fingerprint) & mask;
  while (table->slots[i].load(std::memory_order_relaxed) != nullptr) {
    i = (i + 1) & mask;
  }
  // Relaxed is enough pre-publish (a fresh table) — the release store of the
  // table pointer publishes the contents. Release costs nothing extra here
  // and also covers the in-place insert path.
  table->slots[i].store(node, std::memory_order_release);
}

void CodeCache::IndexInsert(Shard& shard, uint64_t module_hash, uint64_t fingerprint,
                            const CompiledModuleRef& code) {
  IndexTable* t = shard.index.load(std::memory_order_relaxed);
  if (t == nullptr || (shard.index_live + 1) * 2 > t->capacity) {
    // Grow (or first allocate) at load factor 1/2: build the successor table
    // off to the side, carry the live nodes over, publish with a release
    // store, and retire the old table — a reader still probing it finishes
    // safely under its epoch pin.
    size_t cap = t == nullptr ? kIndexInitialCapacity : t->capacity * 2;
    IndexTable* bigger = new IndexTable(cap);
    if (t != nullptr) {
      for (size_t i = 0; i < t->capacity; i++) {
        IndexNode* n = t->slots[i].load(std::memory_order_relaxed);
        if (n != nullptr) {
          IndexPlace(bigger, n);
        }
      }
    }
    shard.index.store(bigger, std::memory_order_release);
    if (t != nullptr) {
      ebr::EbrDomain::Global().Retire(t);
    }
    t = bigger;
  }
  const size_t mask = t->capacity - 1;
  size_t i = IndexHash(module_hash, fingerprint) & mask;
  while (true) {
    IndexNode* n = t->slots[i].load(std::memory_order_relaxed);
    if (n == nullptr) {
      t->slots[i].store(new IndexNode{module_hash, fingerprint, code},
                        std::memory_order_release);
      shard.index_live++;
      return;
    }
    if (n->module_hash == module_hash && n->fingerprint == fingerprint) {
      // Same-key republish (e.g. a tier-up recompile): point the slot at the
      // new immutable node and retire the displaced one — a reader that
      // already acquired it keeps a valid snapshot until its guard drops.
      t->slots[i].store(new IndexNode{module_hash, fingerprint, code},
                        std::memory_order_release);
      ebr::EbrDomain::Global().Retire(n);
      return;
    }
    i = (i + 1) & mask;
  }
}

std::unique_lock<std::mutex> CodeCache::LockShard(const Shard& shard) const {
  std::unique_lock<std::mutex> lock(shard.mu, std::try_to_lock);
  if (!lock.owns_lock()) {
    auto t0 = std::chrono::steady_clock::now();
    lock.lock();
    uint64_t waited_ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() - t0)
            .count());
    lock_waits_.fetch_add(1, std::memory_order_relaxed);
    lock_wait_nanos_.fetch_add(waited_ns, std::memory_order_relaxed);
    static telemetry::Histogram& wait_ns = Hist("engine.cache.lock_wait_ns");
    wait_ns.Record(waited_ns);
  }
  return lock;
}

CompiledModuleRef CodeCache::Lookup(uint64_t module_hash, uint64_t fingerprint) const {
  const Shard& shard = ShardFor(module_hash);
  if (lockfree_reads_) {
    // The index holds exactly the completed entries, so the wait-free probe
    // answers the same question without the lock.
    return IndexLookup(shard, module_hash, fingerprint);
  }
  std::unique_lock<std::mutex> lock = LockShard(shard);
  auto it = shard.entries.find({module_hash, fingerprint});
  return it == shard.entries.end() ? nullptr : it->second.code;
}

void CodeCache::Republish(uint64_t module_hash, uint64_t fingerprint,
                          const CompiledModuleRef& code) {
  Shard& shard = ShardFor(module_hash);
  std::unique_lock<std::mutex> lock = LockShard(shard);
  // Preserve any in-flight latch: a concurrent leader for this key will
  // overwrite entry.code when it publishes, which is the normal last-writer
  // race for a republish — both values are correct code for the key.
  Entry& entry = shard.entries[{module_hash, fingerprint}];
  entry.code = code;
  // The swap point readers actually observe: the same-key path of
  // IndexInsert points the slot at a fresh node and EBR-retires the old one.
  IndexInsert(shard, module_hash, fingerprint, code);
}

void CodeCache::Publish(Shard& shard, const std::pair<uint64_t, uint64_t>& key,
                        const std::shared_ptr<Latch>& latch, const CompiledModuleRef& result) {
  {
    std::unique_lock<std::mutex> lock = LockShard(shard);
    auto it = shard.entries.find(key);
    if (it != shard.entries.end()) {
      if (result != nullptr && result->ok) {
        it->second.code = result;
        it->second.latch = nullptr;
        // Publish into the wait-free hit index under the same lock (the
        // shard mutex is the index's single-writer exclusion).
        IndexInsert(shard, key.first, key.second, result);
      } else {
        // Failed compiles are not cached: drop the placeholder entry entirely.
        shard.entries.erase(it);
      }
    }
  }
  {
    std::lock_guard<std::mutex> lk(latch->mu);
    latch->result = result;
    latch->ready = true;
  }
  latch->cv.notify_all();
}

CompiledModuleRef CodeCache::GetOrCompile(uint64_t module_hash, uint64_t fingerprint,
                                          const std::function<CompiledModuleRef()>& compile,
                                          CompileInfo* info) {
  *info = CompileInfo();
  Shard& shard = ShardFor(module_hash);
  std::pair<uint64_t, uint64_t> key{module_hash, fingerprint};

  if (lockfree_reads_) {
    // The wait-free warm-hit path: an epoch-pinned index probe, no mutex.
    // Under saturation this is the only code concurrent warm callers run —
    // lock_waits stays 0 no matter how many threads hammer one key.
    const auto t0 = std::chrono::steady_clock::now();
    CompiledModuleRef hit = IndexLookup(shard, module_hash, fingerprint);
    if (hit != nullptr) {
      info->hit = true;
      static telemetry::Counter& mem_hits = Count("engine.cache.mem_hit");
      mem_hits.Add();
      static telemetry::Histogram& hit_ns = Hist("engine.cache.hit_ns");
      hit_ns.Record(ElapsedNs(t0));
      return hit;
    }
  }

  std::shared_ptr<Latch> latch;
  bool leader = false;
  {
    const auto lock_t0 = std::chrono::steady_clock::now();
    std::unique_lock<std::mutex> lock = LockShard(shard);
    Entry& entry = shard.entries[key];
    if (entry.code != nullptr) {
      // Mutex-path hit: either lockfree_reads is off (the A/B baseline), or
      // the entry was published between the index probe and this lock.
      info->hit = true;
      static telemetry::Counter& mem_hits = Count("engine.cache.mem_hit");
      mem_hits.Add();
      static telemetry::Histogram& hit_ns = Hist("engine.cache.hit_ns");
      hit_ns.Record(ElapsedNs(lock_t0));
      return entry.code;
    }
    static telemetry::Counter& mem_misses = Count("engine.cache.mem_miss");
    mem_misses.Add();
    if (entry.latch != nullptr) {
      latch = entry.latch;  // someone else is compiling this key right now
    } else {
      entry.latch = latch = std::make_shared<Latch>();  // we are the leader
      leader = true;
    }
  }

  if (!leader) {
    // Join the in-flight compile: block until the leader publishes, then
    // share its result (which may be a failure — the caller sees the same
    // error the leader saw, and the key stays uncached for retries).
    info->joined = true;
    telemetry::Span span("cache.join", "engine");
    const auto t0 = std::chrono::steady_clock::now();
    std::unique_lock<std::mutex> lk(latch->mu);
    latch->cv.wait(lk, [&] { return latch->ready; });
    static telemetry::Histogram& join_wait_ns = Hist("engine.cache.join_wait_ns");
    join_wait_ns.Record(ElapsedNs(t0));
    return latch->result;
  }

  // Leader: everything from here to Publish() runs OUTSIDE the shard lock so
  // other keys in this shard stay serviceable. If the disk probe or the
  // compile callback throws (bad_alloc is the realistic case), waiters must
  // still be released and the placeholder dropped — a dead latch would wedge
  // the key forever — so publish a failed result before propagating.
  CompiledModuleRef result;
  bool compiled_here = false;
  bool lease_held = false;
  // Level 2: probe the disk tier before paying a backend compile. An
  // accepted artifact is published exactly like a compile result; anything
  // unusable (absent, truncated, version drift, checksum mismatch) falls
  // through to the compiler. Runs up to twice per miss: once cold, and once
  // more after losing the cross-process compile lease to another process
  // (whose artifact should then be on disk).
  auto probe_disk = [&]() -> CompiledModuleRef {
    auto loaded = std::make_shared<CompiledModule>();
    if (!disk_.Load(module_hash, fingerprint, &loaded->artifact)) {
      return nullptr;
    }
    // Semantic verification of every loaded program, unconditionally:
    // the codec's checksum catches torn bytes; this catches an artifact
    // whose bytes are internally consistent but whose *program* is not
    // (a stale encoder, a hostile edit with a repaired checksum, a codec
    // bug). A failing artifact is treated exactly like a corrupt file —
    // deleted, counted, recompiled — and is never executed.
    const auto v0 = std::chrono::steady_clock::now();
    std::string diag = VerifyMachine(loaded->artifact.program());
    if (diag.empty()) {
      loaded->ok = true;
      loaded->from_disk = true;
      // Predecode is part of publishing a cache entry regardless of which
      // tier produced it: a warm-disk process pays it once per key here,
      // never per Instance or per run.
      loaded->BuildDecoded();
#if defined(NSF_VERIFY_IR) || !defined(NDEBUG)
      diag = VerifyDecodedProgram(loaded->artifact.program(), *loaded->decoded);
#endif
    }
    static telemetry::Histogram& verify_ns = Hist("engine.disk.verify_ns");
    verify_ns.Record(ElapsedNs(v0));
    if (!diag.empty()) {
      disk_.Discard(module_hash, fingerprint);
      verify_rejects_.fetch_add(1, std::memory_order_relaxed);
      static telemetry::Counter& rejects = Count("engine.verify_reject");
      rejects.Add();
      return nullptr;
    }
    info->hit = true;  // served from the cache — just the slower tier
    info->disk_loaded = true;
    return loaded;
  };
  try {
    if (disk_.enabled()) {
      result = probe_disk();
      if (result == nullptr) {
        // Cold everywhere. Serialize the compile across PROCESSES sharing
        // this cache dir: take the key's lease, or — if another process beat
        // us to it and already released — load its artifact instead of
        // recompiling. Winners Store() before EndCompile(), so once we get
        // past BeginCompile, an artifact existing means somebody published
        // between our cold probe and now: load it rather than recompile.
        // (The plain cold path stats one stat here, not a counted miss.)
        lease_held = disk_.BeginCompile(module_hash, fingerprint);
        if (disk_.Exists(module_hash, fingerprint)) {
          result = probe_disk();
        }
      }
    }
    if (result == nullptr) {
      result = compile();
      compiled_here = true;
      info->compiled = true;
    }
  } catch (...) {
    if (lease_held) {
      disk_.EndCompile(module_hash, fingerprint);
    }
    auto aborted = std::make_shared<CompiledModule>();
    aborted->artifact.module_hash = module_hash;
    aborted->artifact.options_fingerprint = fingerprint;
    aborted->error = "compile failed: exception during compilation";
    Publish(shard, key, latch, std::move(aborted));
    throw;
  }
  Publish(shard, key, latch, result);
  // Persist AFTER publishing so waiters are never blocked on file I/O, and
  // release the cross-process lease only once the artifact is on disk — a
  // lease loser that wakes up must find something to load.
  if (compiled_here && result != nullptr && result->ok) {
    disk_.Store(result->artifact);
  }
  if (lease_held) {
    disk_.EndCompile(module_hash, fingerprint);
  }
  return result;
}

size_t CodeCache::size() const {
  size_t n = 0;
  for (const auto& shard : shards_) {
    std::unique_lock<std::mutex> lock = LockShard(*shard);
    for (const auto& [key, entry] : shard->entries) {
      n += entry.code != nullptr ? 1 : 0;
    }
  }
  return n;
}

void CodeCache::Clear() {
  // Only completed entries are dropped; an entry with an in-flight compile
  // keeps its latch so the leader's publish still finds it. The hit index is
  // detached wholesale and RETIRED — a reader mid-probe finishes against the
  // old table under its epoch pin, and the nodes are freed only after every
  // such reader has unpinned.
  for (const auto& shard : shards_) {
    std::unique_lock<std::mutex> lock = LockShard(*shard);
    for (auto it = shard->entries.begin(); it != shard->entries.end();) {
      if (it->second.latch == nullptr) {
        it = shard->entries.erase(it);
      } else {
        it->second.code = nullptr;
        ++it;
      }
    }
    IndexTable* t = shard->index.load(std::memory_order_relaxed);
    if (t != nullptr) {
      shard->index.store(nullptr, std::memory_order_release);
      shard->index_live = 0;
      for (size_t i = 0; i < t->capacity; i++) {
        IndexNode* n = t->slots[i].load(std::memory_order_relaxed);
        if (n != nullptr) {
          ebr::EbrDomain::Global().Retire(n);
        }
      }
      ebr::EbrDomain::Global().Retire(t);
    }
  }
}

// --- TieringPolicy ---

CodegenOptions TieringPolicy::TierUp(const WorkloadSpec& spec, const CodegenOptions& base,
                                     std::string* error, bool* paid_warmup) {
  if (paid_warmup != nullptr) {
    *paid_warmup = false;
  }
  // Per-workload leader/latch (mirroring CodeCache::GetOrCompile): only
  // same-name requests share one warm-up; distinct workloads profile in
  // parallel. Profile pointers stay valid because TierManager's cache is
  // node-stable.
  std::shared_ptr<WarmupLatch> latch;
  bool leader = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const Profile* cached = manager_.CachedProfile(spec.name);
    if (cached != nullptr) {
      return manager_.TierUp(base, cached);
    }
    auto it = inflight_.find(spec.name);
    if (it != inflight_.end()) {
      latch = it->second;  // another thread is warming this workload up
    } else {
      latch = std::make_shared<WarmupLatch>();
      inflight_[spec.name] = latch;
      leader = true;
    }
  }

  // Both the leader and anyone who blocks on its latch pay warm-up wall time
  // on this call path — that, not "who ran the interpreter", is the bit
  // serving's tail attribution needs.
  if (paid_warmup != nullptr) {
    *paid_warmup = true;
  }

  if (!leader) {
    std::unique_lock<std::mutex> lk(latch->mu);
    latch->cv.wait(lk, [&] { return latch->ready; });
    if (latch->profile == nullptr) {
      *error = latch->error;
      return base;
    }
    return manager_.TierUp(base, latch->profile);
  }

  // Leader: run the interpreter warm-up OUTSIDE the policy lock so other
  // workloads' warm-ups (and cached-profile fast paths) proceed concurrently.
  // Counted whether or not it succeeds — failures are not cached and will
  // run again on the next request.
  warmup_runs_.fetch_add(1, std::memory_order_relaxed);
  telemetry::Span span("tier.warmup", "engine");
  span.arg("workload", spec.name);
  const auto warmup_t0 = std::chrono::steady_clock::now();
  Profile profile;
  std::string warmup_error;
  bool collected = false;
  try {
    collected = manager_.Collect(spec, &profile, &warmup_error);
    static telemetry::Histogram& warmup_ns = Hist("engine.tier.warmup_ns");
    warmup_ns.Record(ElapsedNs(warmup_t0));
  } catch (...) {
    // Release waiters before propagating: a dead latch would wedge the name.
    {
      std::lock_guard<std::mutex> lock(mu_);
      inflight_.erase(spec.name);
    }
    {
      std::lock_guard<std::mutex> lk(latch->mu);
      latch->error = spec.name + ": exception during warm-up";
      latch->ready = true;
    }
    latch->cv.notify_all();
    throw;
  }

  const Profile* published = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (collected) {
      published = manager_.Insert(spec.name, std::move(profile));
    }
    inflight_.erase(spec.name);
  }
  {
    std::lock_guard<std::mutex> lk(latch->mu);
    latch->profile = published;
    latch->error = warmup_error;
    latch->ready = true;
  }
  latch->cv.notify_all();

  if (published == nullptr) {
    *error = warmup_error;
    return base;
  }
  return manager_.TierUp(base, published);
}

uint64_t TieringPolicy::ProfiledWork(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Profile* p = manager_.CachedProfile(name);
  return p != nullptr ? p->total_instrs() : 0;
}

bool TieringPolicy::HasProfile(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return manager_.CachedProfile(name) != nullptr;
}

const Profile* TieringPolicy::InsertProfile(const std::string& name, Profile profile) {
  std::lock_guard<std::mutex> lock(mu_);
  return manager_.Insert(name, std::move(profile));
}

void TieringPolicy::RecordRun(const std::string& name, double sim_seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  RunHistory& h = history_[name];
  h.runs++;
  h.total_sim_seconds += sim_seconds;
  history_dirty_.fetch_add(1, std::memory_order_relaxed);
}

double TieringPolicy::ObservedSeconds(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = history_.find(name);
  return it != history_.end() && it->second.runs > 0
             ? it->second.total_sim_seconds / static_cast<double>(it->second.runs)
             : 0.0;
}

uint64_t TieringPolicy::ObservedRuns(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = history_.find(name);
  return it != history_.end() ? it->second.runs : 0;
}

bool TieringPolicy::LoadHistory(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    return false;
  }
  telemetry::Span span("history.load", "engine");
  std::map<std::string, RunHistory> loaded;
  char line[1024];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    // "<runs> <total_sim_seconds> <name>" — the name last so it may contain
    // spaces; anything that doesn't parse is skipped, never fatal.
    char* end = nullptr;
    unsigned long long runs = std::strtoull(line, &end, 10);
    if (end == line || *end != ' ') {
      continue;
    }
    char* end2 = nullptr;
    double seconds = std::strtod(end + 1, &end2);
    if (end2 == end + 1 || *end2 != ' ') {
      continue;
    }
    std::string name(end2 + 1);
    while (!name.empty() && (name.back() == '\n' || name.back() == '\r')) {
      name.pop_back();
    }
    if (name.empty() || runs == 0) {
      continue;
    }
    RunHistory& h = loaded[name];
    h.runs += runs;
    h.total_sim_seconds += seconds;
  }
  std::fclose(f);
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, h] : loaded) {
    RunHistory& dst = history_[name];
    dst.runs += h.runs;
    dst.total_sim_seconds += h.total_sim_seconds;
  }
  span.arg("keys", static_cast<uint64_t>(loaded.size()));
  return true;
}

bool TieringPolicy::SaveHistory(const std::string& path) const {
  std::map<std::string, RunHistory> snapshot;
  uint64_t dirty_at_snapshot = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot = history_;
    dirty_at_snapshot = history_dirty_.load(std::memory_order_relaxed);
  }
  if (snapshot.empty()) {
    return false;  // nothing observed; leave any previous file untouched
  }
  telemetry::Span span("history.save", "engine");
  // Atomic publish, mirroring DiskCodeCache::Store: readers (and a racing
  // saver in another process) only ever see a complete table.
  static std::atomic<uint64_t> tmp_counter{0};
  std::string tmp = path + StrFormat(".tmp.%llu", static_cast<unsigned long long>(
                                                      tmp_counter.fetch_add(1)));
  FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  for (const auto& [name, h] : snapshot) {
    std::fprintf(f, "%llu %.9g %s\n", static_cast<unsigned long long>(h.runs),
                 h.total_sim_seconds, name.c_str());
  }
  bool ok = std::fclose(f) == 0;
  if (ok) {
    ok = std::rename(tmp.c_str(), path.c_str()) == 0;
  }
  if (!ok) {
    std::remove(tmp.c_str());
  }
  if (ok) {
    // Only the runs captured in the snapshot are durable; recordings that
    // raced in since stay dirty for the next flush.
    history_dirty_.fetch_sub(dirty_at_snapshot, std::memory_order_relaxed);
  }
  span.arg("keys", static_cast<uint64_t>(snapshot.size()));
  return ok;
}

size_t TieringPolicy::HistorySize() const {
  std::lock_guard<std::mutex> lock(mu_);
  return history_.size();
}

double TieringPolicy::EstimateSeconds(const std::string& name, uint64_t* observed_runs) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = history_.find(name);
  uint64_t runs = it != history_.end() ? it->second.runs : 0;
  if (observed_runs != nullptr) {
    *observed_runs = runs;
  }
  if (runs > 0) {
    return it->second.total_sim_seconds / static_cast<double>(runs);
  }
  const Profile* p = manager_.CachedProfile(name);
  // Nominal instructions/second bridge; only the relative order matters.
  return p != nullptr ? static_cast<double>(p->total_instrs()) / 3.5e9 : 0.0;
}

// --- Engine ---

Engine::Engine(EngineConfig config)
    : config_(config),
      tiering_(config.tiering),
      cache_(config.cache_shards, config.cache_dir, config.disk_cache_max_bytes,
             config.cache_lockfree_reads) {
  if (!config_.cache_dir.empty()) {
    tiering_.LoadHistory(RunHistoryPath());
  }
  // Background tiering needs the sampling signal (sample_period == 0 would
  // never mark a module hot) and the cache (the hot swap IS a cache
  // republish); without either, don't start the thread at all.
  if (config_.background_tiering && config_.sample_period != 0 && config_.cache_enabled) {
    tierer_ = std::make_unique<BackgroundTierer>(this, config_.tier_hot_samples,
                                                 config_.tier_scan_period_seconds);
  }
}

Engine::~Engine() {
  // Stop the tierer before anything it feeds (cache, tiering policy, stats)
  // starts tearing down.
  tierer_.reset();
  SaveRunHistory();
}

std::string Engine::RunHistoryPath() const {
  return config_.cache_dir.empty() ? std::string() : config_.cache_dir + "/run_history";
}

bool Engine::SaveRunHistory() const {
  std::string path = RunHistoryPath();
  if (path.empty()) {
    return false;
  }
  // The cache dir may not exist yet (disk stores create it lazily; a
  // run-history-only session may never store an artifact).
  std::error_code ec;
  std::filesystem::create_directories(config_.cache_dir, ec);
  return tiering_.SaveHistory(path);
}

bool Engine::FlushRunHistory() const {
  if (config_.cache_dir.empty() || tiering_.HistoryDirty() == 0) {
    return false;
  }
  return SaveRunHistory();
}

CompiledModuleRef Engine::CompileUncached(const Module& module, uint64_t module_hash,
                                          const CodegenOptions& options, uint64_t fingerprint) {
  telemetry::Span span("compile", "engine");
  span.arg("profile", options.profile_name.c_str());
  auto result = std::make_shared<CompiledModule>();
  {
    telemetry::Span vspan("validate", "engine");
    const auto t0 = std::chrono::steady_clock::now();
    ValidationResult vr = ValidateModule(module);
    static telemetry::Histogram& validate_ns = Hist("engine.validate_ns");
    validate_ns.Record(ElapsedNs(t0));
    if (!vr.ok) {
      result->artifact.module_hash = module_hash;
      result->artifact.options_fingerprint = fingerprint;
      result->artifact.profile_name = options.profile_name;
      result->error = "module invalid: " + vr.error;
      return result;
    }
  }
  compiles_.fetch_add(1, std::memory_order_relaxed);
  result->artifact = BuildArtifact(module, options, module_hash, fingerprint);
  AddSeconds(&compile_nanos_, result->stats().seconds);
  static telemetry::Histogram& compile_ns = Hist("engine.compile_ns");
  compile_ns.RecordSeconds(result->stats().seconds);
  if (!result->artifact.ok()) {
    result->error = "compile failed: " + result->artifact.compiled.error;
    return result;
  }
  result->ok = true;
  result->BuildDecoded();
  // Decoded cross-check at the compile boundary (the pass pipeline's IR and
  // machine verification already ran inside CompileModule when verify_ir):
  // every decoded record must round-trip to the MInstr it came from before
  // the entry is published.
  if (options.verify_ir) {
    const auto t0 = std::chrono::steady_clock::now();
    std::string diag = VerifyDecodedProgram(result->artifact.program(), *result->decoded);
    static telemetry::Histogram& verify_ns = Hist("engine.decode.verify_ns");
    verify_ns.Record(ElapsedNs(t0));
    if (!diag.empty()) {
      result->ok = false;
      result->decoded = nullptr;
      result->error = "decode verify failed: " + diag;
    }
  }
  return result;
}

CompiledModuleRef Engine::Compile(const Module& module, const CodegenOptions& options,
                                  CompileInfo* info) {
  uint64_t module_hash = HashModule(module);
  uint64_t fingerprint = options.Fingerprint();
  *info = CompileInfo();
  if (!config_.cache_enabled) {
    cache_misses_.fetch_add(1, std::memory_order_relaxed);
    info->compiled = true;
    return CompileUncached(module, module_hash, options, fingerprint);
  }

  CompiledModuleRef result = cache_.GetOrCompile(
      module_hash, fingerprint,
      [&] { return CompileUncached(module, module_hash, options, fingerprint); }, info);

  if (info->joined) {
    compile_joins_.fetch_add(1, std::memory_order_relaxed);
  }
  // Joining another thread's successful compile counts as a hit: the caller
  // was served without paying a backend compile of its own.
  if (info->joined && result != nullptr && result->ok) {
    info->hit = true;
  }
  if (info->hit) {
    cache_hits_.fetch_add(1, std::memory_order_relaxed);
    // A disk-tier hit still saves the artifact's original backend compile
    // time — that is exactly the warm-start win the stats quantify.
    AddSeconds(&saved_nanos_, result->stats().seconds);
  } else {
    cache_misses_.fetch_add(1, std::memory_order_relaxed);
  }
  return result;
}

CompiledModuleRef Engine::Compile(const Module& module, const CodegenOptions& options,
                                  bool* was_hit) {
  CompileInfo info;
  CompiledModuleRef result = Compile(module, options, &info);
  if (was_hit != nullptr) {
    *was_hit = info.hit;
  }
  return result;
}

CompiledModuleRef Engine::CompileWorkload(const WorkloadSpec& spec,
                                          const CodegenOptions& options, bool* was_hit) {
  CompileInfo info;
  CompiledModuleRef result = CompileWorkload(spec, options, &info);
  if (was_hit != nullptr) {
    *was_hit = info.hit;
  }
  return result;
}

CompiledModuleRef Engine::CompileWorkload(const WorkloadSpec& spec,
                                          const CodegenOptions& options, CompileInfo* info) {
  CompiledModuleRef result = Compile(spec.build(), options, info);
  // A workload compile is the one place the engine has both the runnable
  // spec and the options key, so continuous tiering registers here.
  WatchForTierUp(result, spec, options);
  return result;
}

CodegenOptions Engine::TierUp(const WorkloadSpec& spec, const CodegenOptions& base,
                              std::string* error, bool* paid_warmup) {
  // Profile persistence (satellite to the disk artifact tier): a previous
  // process's warm-up profile lives next to the artifacts, so a warm process
  // seeds the in-memory profile cache and skips the interpreter run.
  if (cache_.disk().enabled() && !tiering_.HasProfile(spec.name)) {
    Profile loaded;
    if (cache_.disk().LoadProfile(spec.name, &loaded)) {
      tiering_.InsertProfile(spec.name, std::move(loaded));
      static telemetry::Counter& profile_loads = Count("engine.tier.profile_disk_load");
      profile_loads.Add();
    }
  }
  bool warmed = false;
  CodegenOptions tiered = tiering_.TierUp(spec, base, error, &warmed);
  if (paid_warmup != nullptr) {
    *paid_warmup = warmed;
  }
  // Persist a fresh warm-up's profile for the next process. Joiners may
  // duplicate the leader's write with identical bytes — StoreProfile writes
  // tmp + rename, so the race is harmless and only spans the cold window.
  if (warmed && cache_.disk().enabled() && tiered.profile != nullptr) {
    cache_.disk().StoreProfile(spec.name, *tiered.profile);
  }
  return tiered;
}

std::shared_ptr<SampledProfile> Engine::SamplerFor(const CompiledModuleRef& code) {
  if (config_.sample_period == 0 || code == nullptr || !code->ok) {
    return nullptr;
  }
  std::lock_guard<std::mutex> lock(sampler_mu_);
  std::shared_ptr<SampledProfile>& slot = samplers_[code->module_hash()];
  if (slot == nullptr) {
    slot = std::make_shared<SampledProfile>(
        static_cast<uint32_t>(code->program().funcs.size()), config_.sample_period);
  }
  return slot;
}

void Engine::WatchForTierUp(const CompiledModuleRef& code, const WorkloadSpec& spec,
                            const CodegenOptions& base) {
  // Only base-tier code is watched: options that already carry a profile ARE
  // the tiered artifact, and re-tiering it would loop.
  if (tierer_ == nullptr || code == nullptr || !code->ok || base.profile != nullptr) {
    return;
  }
  // After a hot swap, a warm hit on the base key hands back the TIERED
  // module (that is the point of the swap) — its profile name no longer
  // matches the requested base options. Watching it would re-tier forever.
  if (code->profile_name() != base.profile_name) {
    return;
  }
  std::shared_ptr<SampledProfile> sampler = SamplerFor(code);
  if (sampler != nullptr) {
    tierer_->Watch(code, spec, base, std::move(sampler));
  }
}

void Engine::DrainTierer() {
  if (tierer_ != nullptr) {
    tierer_->Drain();
  }
}

EngineStats Engine::Stats() const {
  EngineStats s;
  s.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  s.cache_misses = cache_misses_.load(std::memory_order_relaxed);
  s.compiles = compiles_.load(std::memory_order_relaxed);
  s.compile_joins = compile_joins_.load(std::memory_order_relaxed);
  s.tier_warmups = tiering_.warmup_runs();
  s.lock_waits = cache_.lock_waits();
  s.lock_wait_seconds = cache_.lock_wait_seconds();
  s.compile_seconds = static_cast<double>(compile_nanos_.load(std::memory_order_relaxed)) * 1e-9;
  s.compile_seconds_saved =
      static_cast<double>(saved_nanos_.load(std::memory_order_relaxed)) * 1e-9;
  DiskCacheStats d = cache_.disk().stats();
  s.disk_hits = d.hits;
  s.disk_misses = d.misses;
  s.disk_evictions = d.evictions;
  s.disk_load_failures = d.load_failures;
  s.disk_stores = d.stores;
  s.disk_lease_waits = d.lease_waits;
  s.disk_lease_takeovers = d.lease_takeovers;
  s.disk_manifest_rebuilds = d.manifest_rebuilds;
  s.deserialize_seconds = d.deserialize_seconds;
  s.serialize_seconds = d.serialize_seconds;
  s.verify_rejects = cache_.verify_rejects();
  s.tier_swaps = tier_swaps_.load(std::memory_order_relaxed);
  s.background_recompiles = background_recompiles_.load(std::memory_order_relaxed);
  return s;
}

void Engine::ResetStats() {
  cache_hits_.store(0, std::memory_order_relaxed);
  cache_misses_.store(0, std::memory_order_relaxed);
  compiles_.store(0, std::memory_order_relaxed);
  compile_joins_.store(0, std::memory_order_relaxed);
  compile_nanos_.store(0, std::memory_order_relaxed);
  saved_nanos_.store(0, std::memory_order_relaxed);
  tier_swaps_.store(0, std::memory_order_relaxed);
  background_recompiles_.store(0, std::memory_order_relaxed);
  cache_.ResetTelemetry();  // keep lock_waits + disk stats consistent with the zeros
  tiering_.ResetWarmupCount();
}

// --- Session ---

Session::Session(Engine* engine)
    : engine_(engine), kernel_(std::make_unique<BrowsixKernel>()) {
  // Each worker thread owns its Session (executor.cc / serving.cc construct
  // one per thread), so this pre-registers the thread's epoch slot — the
  // first warm-hit probe never pays EBR registration.
  ebr::EbrDomain::Global().RegisterCurrentThread();
}

MemFs& Session::fs() { return kernel_->fs(); }

void Session::Reset() { kernel_ = std::make_unique<BrowsixKernel>(); }

std::unique_ptr<Instance> Session::Instantiate(CompiledModuleRef code,
                                               InstanceOptions options, std::string* error) {
  if (code == nullptr || !code->ok) {
    if (error != nullptr) {
      *error = code == nullptr ? "null compiled module" : code->error;
    }
    return nullptr;
  }
  const Export* entry = code->module().FindExport(options.entry, ExternalKind::kFunc);
  if (entry == nullptr) {
    if (error != nullptr) {
      *error = "no entry export " + options.entry;
    }
    return nullptr;
  }
  std::unique_ptr<Instance> inst(
      new Instance(this, std::move(code), std::move(options), entry->index));
  // Resolve the module's sampling sink once per Instance, not per run (null
  // unless EngineConfig::sample_period is set).
  inst->sampler_ = engine_->SamplerFor(inst->code_);
  return inst;
}

// --- Instance ---

RunOutcome Instance::Run() { return RunAtIndex(entry_index_, {}); }

RunOutcome Instance::RunExport(const std::string& name, const std::vector<uint64_t>& args) {
  const Export* e = code_->module().FindExport(name, ExternalKind::kFunc);
  if (e == nullptr) {
    RunOutcome out;
    out.error = "no entry export " + name;
    return out;
  }
  return RunAtIndex(e->index, args);
}

RunOutcome Instance::RunAtIndex(uint32_t func_index, const std::vector<uint64_t>& args) {
  RunOutcome out;
  telemetry::Span span("run", "engine");
  span.arg("profile", code_->profile_name());
  const auto run_t0 = std::chrono::steady_clock::now();
  // Fresh machine and process per run: repeated runs of one Instance must not
  // see each other's heap, only the session's shared filesystem. The machine
  // executes the module's shared DecodedProgram (predecoded once at cache
  // publish) and borrows its big buffers from the session's pool — both are
  // invisible to results, they only remove per-run setup cost.
  SimMachine machine(&code_->program(), code_->decoded_program(), &session_->buffer_pool());
  machine.set_dispatch(options_.dispatch);
  if (sampler_ != nullptr) {
    machine.set_sampler(sampler_.get(), session_->engine()->config().sample_period);
  }
  if (options_.fuel != 0) {
    machine.set_fuel(options_.fuel);
  }
  MachineMemPort port(&machine);
  auto process = session_->kernel().CreateProcess(&port, options_.argv);
  BindSyscalls(&machine, code_->compiled(), code_->module(), process.get());

  // Stack-args ABI: args staged below the stack top, rsp as if just called.
  uint64_t args_base = kStackBase + kStackSize - 8 * args.size();
  for (size_t i = 0; i < args.size(); i++) {
    machine.WriteStack(args_base + 8 * i, args[i]);
  }
  machine.ResetCounters();
  MachineResult mr = machine.RunAt(func_index, args_base);
  runs_++;
  static telemetry::Histogram& run_ns = Hist("engine.run_ns");
  run_ns.Record(ElapsedNs(run_t0));
  if (!mr.ok) {
    out.error = mr.error;
    span.arg("error", mr.error);
    return out;
  }
  out.ok = true;
  out.exit_code = mr.ret_i;
  out.counters = machine.counters();
  out.seconds = machine.SecondsFromCycles(out.counters.cycles());
  out.browsix_seconds = machine.SecondsFromCycles(machine.host_micro_cycles() / 4);
  out.syscalls = process->syscall_count();
  out.stdout_text = process->StdoutString();
  static telemetry::Histogram& run_sim_ns = Hist("engine.run_sim_ns");
  run_sim_ns.RecordSeconds(out.seconds);
  if (span.active()) {
    span.arg("instructions", out.counters.instructions_retired);
    span.arg("sim_seconds", out.seconds);
    span.arg("syscalls", out.syscalls);
  }
  return out;
}

}  // namespace engine
}  // namespace nsf
