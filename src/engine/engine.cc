#include "src/engine/engine.h"

#include <utility>

#include "src/runtime/runtime.h"
#include "src/support/str.h"
#include "src/wasm/encoder.h"
#include "src/wasm/validator.h"

namespace nsf {
namespace engine {

// --- CodeCache ---

CompiledModuleRef CodeCache::Lookup(uint64_t module_hash, uint64_t fingerprint) const {
  auto it = entries_.find({module_hash, fingerprint});
  return it == entries_.end() ? nullptr : it->second;
}

void CodeCache::Insert(CompiledModuleRef code) {
  entries_[{code->module_hash, code->fingerprint}] = std::move(code);
}

// --- TieringPolicy ---

CodegenOptions TieringPolicy::TierUp(const WorkloadSpec& spec, const CodegenOptions& base,
                                     std::string* error) {
  // No cached profile means TierUpFor executes the warm-up interpreter run —
  // count it whether or not it succeeds (failures are not cached and will
  // run again on the next request).
  if (!manager_.HasProfileFor(spec.name)) {
    warmup_runs_++;
  }
  return manager_.TierUpFor(spec, base, error);
}

// --- Engine ---

Engine::Engine(EngineConfig config) : config_(config), tiering_(config.tiering) {}

CompiledModuleRef Engine::Compile(const Module& module, const CodegenOptions& options) {
  uint64_t module_hash = HashModule(module);
  uint64_t fingerprint = options.Fingerprint();
  if (config_.cache_enabled) {
    CompiledModuleRef cached = cache_.Lookup(module_hash, fingerprint);
    if (cached != nullptr) {
      stats_.cache_hits++;
      stats_.compile_seconds_saved += cached->compiled.stats.seconds;
      return cached;
    }
  }
  stats_.cache_misses++;

  auto result = std::make_shared<CompiledModule>();
  result->module_hash = module_hash;
  result->fingerprint = fingerprint;
  result->profile_name = options.profile_name;
  result->module = module;
  ValidationResult vr = ValidateModule(result->module);
  if (!vr.ok) {
    result->error = "module invalid: " + vr.error;
    return result;
  }
  stats_.compiles++;
  result->compiled = CompileModule(result->module, options);
  stats_.compile_seconds += result->compiled.stats.seconds;
  if (!result->compiled.ok) {
    result->error = "compile failed: " + result->compiled.error;
    return result;
  }
  result->ok = true;
  if (config_.cache_enabled) {
    cache_.Insert(result);
  }
  return result;
}

CompiledModuleRef Engine::CompileWorkload(const WorkloadSpec& spec,
                                          const CodegenOptions& options) {
  return Compile(spec.build(), options);
}

CodegenOptions Engine::TierUp(const WorkloadSpec& spec, const CodegenOptions& base,
                              std::string* error) {
  return tiering_.TierUp(spec, base, error);
}

EngineStats Engine::Stats() const {
  EngineStats s = stats_;
  s.tier_warmups = tiering_.warmup_runs();
  return s;
}

// --- Session ---

Session::Session(Engine* engine)
    : engine_(engine), kernel_(std::make_unique<BrowsixKernel>()) {}

MemFs& Session::fs() { return kernel_->fs(); }

void Session::Reset() { kernel_ = std::make_unique<BrowsixKernel>(); }

std::unique_ptr<Instance> Session::Instantiate(CompiledModuleRef code,
                                               InstanceOptions options, std::string* error) {
  if (code == nullptr || !code->ok) {
    if (error != nullptr) {
      *error = code == nullptr ? "null compiled module" : code->error;
    }
    return nullptr;
  }
  const Export* entry = code->module.FindExport(options.entry, ExternalKind::kFunc);
  if (entry == nullptr) {
    if (error != nullptr) {
      *error = "no entry export " + options.entry;
    }
    return nullptr;
  }
  return std::unique_ptr<Instance>(
      new Instance(this, std::move(code), std::move(options), entry->index));
}

// --- Instance ---

RunOutcome Instance::Run() { return RunAtIndex(entry_index_, {}); }

RunOutcome Instance::RunExport(const std::string& name, const std::vector<uint64_t>& args) {
  const Export* e = code_->module.FindExport(name, ExternalKind::kFunc);
  if (e == nullptr) {
    RunOutcome out;
    out.error = "no entry export " + name;
    return out;
  }
  return RunAtIndex(e->index, args);
}

RunOutcome Instance::RunAtIndex(uint32_t func_index, const std::vector<uint64_t>& args) {
  RunOutcome out;
  // Fresh machine and process per run: repeated runs of one Instance must not
  // see each other's heap, only the session's shared filesystem.
  SimMachine machine(&code_->compiled.program);
  if (options_.fuel != 0) {
    machine.set_fuel(options_.fuel);
  }
  MachineMemPort port(&machine);
  auto process = session_->kernel().CreateProcess(&port, options_.argv);
  BindSyscalls(&machine, code_->compiled, code_->module, process.get());

  // Stack-args ABI: args staged below the stack top, rsp as if just called.
  uint64_t args_base = kStackBase + kStackSize - 8 * args.size();
  for (size_t i = 0; i < args.size(); i++) {
    machine.WriteStack(args_base + 8 * i, args[i]);
  }
  machine.ResetCounters();
  MachineResult mr = machine.RunAt(func_index, args_base);
  runs_++;
  if (!mr.ok) {
    out.error = mr.error;
    return out;
  }
  out.ok = true;
  out.exit_code = mr.ret_i;
  out.counters = machine.counters();
  out.seconds = machine.SecondsFromCycles(out.counters.cycles());
  out.browsix_seconds = machine.SecondsFromCycles(machine.host_micro_cycles() / 4);
  out.syscalls = process->syscall_count();
  out.stdout_text = process->StdoutString();
  return out;
}

}  // namespace engine
}  // namespace nsf
