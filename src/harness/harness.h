// BROWSIX-SPEC: the benchmark harness — a thin statistics/validation layer
// over the embedder Engine (src/engine/). The harness no longer wires the
// pipeline itself: it compiles through the Engine's content-addressed code
// cache (so repeated reps and A/B ablations never recompile an identical
// (module, options) pair), runs through Session/Instance, captures
// performance counters, validates outputs (`cmp` against the native-profile
// reference, exactly as SPEC validates against reference outputs), and
// aggregates statistics for the paper's tables and figures.
#ifndef SRC_HARNESS_HARNESS_H_
#define SRC_HARNESS_HARNESS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/codegen/codegen.h"
#include "src/engine/engine.h"
#include "src/engine/executor.h"
#include "src/engine/workload.h"
#include "src/machine/machine.h"

namespace nsf {

struct RunResult {
  bool ok = false;
  std::string error;
  PerfCounters counters;
  double seconds = 0;           // simulated wall clock (cycles / clock)
  double browsix_seconds = 0;   // time charged to the Browsix kernel
  uint64_t syscalls = 0;
  uint64_t exit_code = 0;
  std::string stdout_text;
  std::vector<std::pair<std::string, std::vector<uint8_t>>> outputs;
  CompileStats compile;
  bool cache_hit = false;       // compiled code came from the engine cache
  bool validated = false;       // outputs matched the reference run
};

// Mean / standard-error pair, as the paper reports (5 runs).
struct Sample {
  double mean = 0;
  double stderr_ = 0;
};

double GeoMean(const std::vector<double>& xs);
double Median(std::vector<double> xs);

class BenchHarness {
 public:
  // Owns a private Engine.
  BenchHarness();
  // Shares `engine` (not owned) so several harnesses — or a bench binary and
  // its harness — aggregate one code cache and one stats block.
  explicit BenchHarness(engine::Engine* engine);

  // Executes `spec` once under `options` via Engine/Session/Instance. The
  // compile is served from the engine's code cache when an identical
  // (module, options) pair was compiled before. Counters cover only the
  // program's execution (compilation excluded), mirroring the paper's
  // measurement window.
  RunResult Measure(const WorkloadSpec& spec, const CodegenOptions& options);

  // Measure + output validation against the reference (native-profile) run.
  RunResult MeasureValidated(const WorkloadSpec& spec, const CodegenOptions& options);

  // Result of MeasureBatch: the engine-level report plus one RunResult per
  // run in report.runs order (request-index major, then rep). Exception: when
  // a reference run fails during validation, the batch never executes —
  // all_ok is false, report is empty (workers=0, no runs), and results holds
  // a single RunResult whose error names the failed reference.
  struct BatchMeasure {
    engine::BatchReport report;
    std::vector<RunResult> results;
    bool all_ok = false;  // every run ok (and validated, when validating)
  };

  // Executes `requests` across `workers` parallel Sessions (ExecutorPool over
  // this harness's engine) and converts every run into a RunResult. With
  // `validate`, reference (native-profile) outputs are computed serially
  // first — once per distinct workload name, cached like MeasureValidated —
  // and every parallel run's outputs are cmp'd against them.
  BatchMeasure MeasureBatch(const std::vector<engine::RunRequest>& requests, int workers,
                            bool validate = true);

  // Seconds with jitter samples for table rendering: a documented, seeded
  // ±0.5% jitter model produces the reported mean ± stderr (the simulator
  // itself is deterministic).
  Sample JitteredSeconds(const WorkloadSpec& spec, const CodegenOptions& options, double seconds,
                         int reps = 5) const;

  // The reference (native) outputs are cached per workload name. Must not be
  // called while a Measure*/MeasureBatch on another thread is in flight: the
  // batch path holds pointers into the cache for its duration.
  void ClearReferenceCache() {
    std::lock_guard<std::mutex> lock(reference_mu_);
    reference_outputs_.clear();
  }

  engine::Engine& engine() { return *engine_; }

 private:
  using Outputs = std::vector<std::pair<std::string, std::vector<uint8_t>>>;

  // Computes (or fetches) the cached reference outputs for `spec`. Returns
  // null and sets *error when the reference run fails. The returned pointer
  // stays valid for the harness's lifetime (node-stable map).
  const Outputs* EnsureReference(const WorkloadSpec& spec, std::string* error);

  std::unique_ptr<engine::Engine> owned_engine_;
  engine::Engine* engine_;
  std::mutex reference_mu_;  // guards reference_outputs_
  std::map<std::string, Outputs> reference_outputs_;
};

// --- Rendering helpers shared by the bench binaries ---

// Renders an aligned ASCII table; row 0 is the header.
std::string RenderTable(const std::vector<std::vector<std::string>>& rows);

// Renders a CSV block.
std::string RenderCsv(const std::vector<std::vector<std::string>>& rows);

// Renders a horizontal ASCII bar chart: one row per (label, value).
std::string RenderBars(const std::vector<std::pair<std::string, double>>& data, double unit_value,
                       const std::string& unit_label, int width = 48);

}  // namespace nsf

#endif  // SRC_HARNESS_HARNESS_H_
