// BROWSIX-SPEC: the benchmark harness. Registers workloads, runs them under
// each toolchain profile on the simulated machine, captures performance
// counters, validates outputs (`cmp` against the native-profile reference,
// exactly as SPEC validates against reference outputs), and aggregates
// statistics for the paper's tables and figures.
#ifndef SRC_HARNESS_HARNESS_H_
#define SRC_HARNESS_HARNESS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/codegen/codegen.h"
#include "src/kernel/kernel.h"
#include "src/machine/machine.h"
#include "src/wasm/module.h"

namespace nsf {

// A benchmark program: how to build its module, stage its inputs, and which
// output files constitute its result.
struct WorkloadSpec {
  std::string name;                         // e.g. "401.bzip2"
  std::function<Module()> build;            // builds the Wasm module
  std::function<void(BrowsixKernel&)> setup;  // stages input files
  std::vector<std::string> argv = {"prog"};
  std::string entry = "main";
  std::vector<std::string> output_files;    // validated via cmp
  uint64_t fuel = 0;                        // 0 = machine default cap
};

struct RunResult {
  bool ok = false;
  std::string error;
  PerfCounters counters;
  double seconds = 0;           // simulated wall clock (cycles / clock)
  double browsix_seconds = 0;   // time charged to the Browsix kernel
  uint64_t syscalls = 0;
  uint64_t exit_code = 0;
  std::string stdout_text;
  std::vector<std::pair<std::string, std::vector<uint8_t>>> outputs;
  CompileStats compile;
  bool validated = false;       // outputs matched the reference run
};

// Mean / standard-error pair, as the paper reports (5 runs).
struct Sample {
  double mean = 0;
  double stderr_ = 0;
};

double GeoMean(const std::vector<double>& xs);
double Median(std::vector<double> xs);

class BenchHarness {
 public:
  BenchHarness() = default;

  // Executes `spec` once under `options`. The module is compiled, loaded
  // onto a fresh machine + kernel, inputs staged, and the entry function
  // run. Counters cover only the program's execution (compilation excluded),
  // mirroring the paper's measurement window.
  RunResult RunOnce(const WorkloadSpec& spec, const CodegenOptions& options);

  // Runs `spec` under `options`, validating outputs against the reference
  // (native-profile) run. `reps` simulated repetitions produce the reported
  // mean ± stderr through a documented, seeded ±0.5% jitter model (the
  // simulator itself is deterministic).
  RunResult RunValidated(const WorkloadSpec& spec, const CodegenOptions& options);

  // Seconds with jitter samples for table rendering.
  Sample JitteredSeconds(const WorkloadSpec& spec, const CodegenOptions& options, double seconds,
                         int reps = 5) const;

  // The reference (native) outputs are cached per workload name.
  void ClearReferenceCache() { reference_outputs_.clear(); }

 private:
  std::map<std::string, std::vector<std::pair<std::string, std::vector<uint8_t>>>>
      reference_outputs_;
};

// --- Rendering helpers shared by the bench binaries ---

// Renders an aligned ASCII table; row 0 is the header.
std::string RenderTable(const std::vector<std::vector<std::string>>& rows);

// Renders a CSV block.
std::string RenderCsv(const std::vector<std::vector<std::string>>& rows);

// Renders a horizontal ASCII bar chart: one row per (label, value).
std::string RenderBars(const std::vector<std::pair<std::string, double>>& data, double unit_value,
                       const std::string& unit_label, int width = 48);

}  // namespace nsf

#endif  // SRC_HARNESS_HARNESS_H_
