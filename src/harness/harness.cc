#include "src/harness/harness.h"

#include <algorithm>
#include <cmath>

#include "src/support/rng.h"
#include "src/support/str.h"

namespace nsf {

double GeoMean(const std::vector<double>& xs) {
  if (xs.empty()) {
    return 0;
  }
  double log_sum = 0;
  for (double x : xs) {
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

double Median(std::vector<double> xs) {
  if (xs.empty()) {
    return 0;
  }
  std::sort(xs.begin(), xs.end());
  size_t n = xs.size();
  return n % 2 == 1 ? xs[n / 2] : 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

BenchHarness::BenchHarness()
    : owned_engine_(std::make_unique<engine::Engine>()), engine_(owned_engine_.get()) {}

BenchHarness::BenchHarness(engine::Engine* engine) : engine_(engine) {}

namespace {

// Converts an engine-level batch run into the harness's RunResult shape.
// The single place outcome fields are copied — Measure and MeasureBatch both
// funnel through it.
RunResult FromBatchRun(const engine::BatchRunResult& run) {
  RunResult r;
  r.ok = run.ok;
  r.error = run.error;
  r.cache_hit = run.cache_hit;
  r.compile = run.compile;
  if (run.ok) {
    r.exit_code = run.outcome.exit_code;
    r.counters = run.outcome.counters;
    r.seconds = run.outcome.seconds;
    r.browsix_seconds = run.outcome.browsix_seconds;
    r.syscalls = run.outcome.syscalls;
    r.stdout_text = run.outcome.stdout_text;
    r.outputs = run.outputs;
  }
  return r;
}

}  // namespace

RunResult BenchHarness::Measure(const WorkloadSpec& spec, const CodegenOptions& options) {
  // One run through the engine-level pipeline (the same ExecuteRequest the
  // batch path uses) on a throwaway single-use Session.
  engine::RunRequest request;
  request.spec = spec;
  request.options = options;
  engine::Session session(engine_);
  return FromBatchRun(
      engine::ExecuteRequest(&session, request, 0, 0, 0, /*reset_first=*/false));
}

const BenchHarness::Outputs* BenchHarness::EnsureReference(const WorkloadSpec& spec,
                                                           std::string* error) {
  // Reference outputs come from the native profile (SPEC's reference run).
  // The lock spans the reference run so concurrent callers compute it once;
  // map nodes are stable, so returned pointers survive later insertions.
  std::lock_guard<std::mutex> lock(reference_mu_);
  auto it = reference_outputs_.find(spec.name);
  if (it == reference_outputs_.end()) {
    RunResult ref = Measure(spec, CodegenOptions::NativeClang());
    if (!ref.ok) {
      *error = "reference run failed: " + ref.error;
      return nullptr;
    }
    it = reference_outputs_.emplace(spec.name, std::move(ref.outputs)).first;
  }
  return &it->second;
}

namespace {

// cmp `outputs` against the reference bytes, path by path.
bool OutputsMatch(const std::vector<std::pair<std::string, std::vector<uint8_t>>>& outputs,
                  const std::vector<std::pair<std::string, std::vector<uint8_t>>>& reference) {
  if (outputs.size() != reference.size()) {
    return false;
  }
  for (size_t i = 0; i < outputs.size(); i++) {
    if (outputs[i].first != reference[i].first || outputs[i].second != reference[i].second) {
      return false;
    }
  }
  return true;
}

}  // namespace

RunResult BenchHarness::MeasureValidated(const WorkloadSpec& spec,
                                         const CodegenOptions& options) {
  std::string ref_error;
  const Outputs* reference = EnsureReference(spec, &ref_error);
  if (reference == nullptr) {
    RunResult fail;
    fail.error = ref_error;
    return fail;
  }
  RunResult r = Measure(spec, options);
  if (!r.ok) {
    return r;
  }
  r.validated = OutputsMatch(r.outputs, *reference);
  if (!r.validated) {
    r.error = spec.name + ": output mismatch vs reference";
  }
  return r;
}

BenchHarness::BatchMeasure BenchHarness::MeasureBatch(
    const std::vector<engine::RunRequest>& requests, int workers, bool validate) {
  BatchMeasure out;
  // References first, serially: the parallel phase then only reads the cache.
  std::vector<const Outputs*> references(requests.size(), nullptr);
  if (validate) {
    for (size_t i = 0; i < requests.size(); i++) {
      std::string ref_error;
      references[i] = EnsureReference(requests[i].spec, &ref_error);
      if (references[i] == nullptr) {
        RunResult fail;
        fail.error = ref_error;
        out.results.assign(1, std::move(fail));
        return out;
      }
    }
  }

  // Validation needs the output files back regardless of what the caller set
  // on the requests — otherwise every run would "mismatch" an empty vector.
  std::vector<engine::RunRequest> to_run = requests;
  if (validate) {
    for (engine::RunRequest& r : to_run) {
      r.collect_outputs = true;
    }
  }

  engine::ExecutorPool pool(engine_, workers);
  out.report = pool.Run(to_run);

  out.all_ok = true;
  out.results.reserve(out.report.runs.size());
  for (const engine::BatchRunResult& run : out.report.runs) {
    RunResult r = FromBatchRun(run);
    if (r.ok && validate) {
      r.validated = OutputsMatch(run.outputs, *references[run.request_index]);
      if (!r.validated) {
        r.error = requests[run.request_index].spec.name + ": output mismatch vs reference";
      }
    }
    if (!r.ok || (validate && !r.validated)) {
      out.all_ok = false;
    }
    out.results.push_back(std::move(r));
  }
  return out;
}

Sample BenchHarness::JitteredSeconds(const WorkloadSpec& spec, const CodegenOptions& options,
                                     double seconds, int reps) const {
  // Deterministic per-(workload, profile) jitter, ±0.5%, modeling the
  // run-to-run variance the paper reports as standard error.
  Rng rng(Fnv1a(spec.name + "|" + options.profile_name));
  std::vector<double> samples;
  samples.reserve(reps);
  for (int i = 0; i < reps; i++) {
    double eps = (rng.NextDouble() - 0.5) * 0.01;
    samples.push_back(seconds * (1.0 + eps));
  }
  double mean = 0;
  for (double s : samples) {
    mean += s;
  }
  mean /= reps;
  double var = 0;
  for (double s : samples) {
    var += (s - mean) * (s - mean);
  }
  var /= std::max(1, reps - 1);
  Sample out;
  out.mean = mean;
  out.stderr_ = std::sqrt(var / reps);
  return out;
}

std::string RenderTable(const std::vector<std::vector<std::string>>& rows) {
  if (rows.empty()) {
    return "";
  }
  std::vector<size_t> widths;
  for (const auto& row : rows) {
    if (widths.size() < row.size()) {
      widths.resize(row.size(), 0);
    }
    for (size_t c = 0; c < row.size(); c++) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out;
  for (size_t r = 0; r < rows.size(); r++) {
    for (size_t c = 0; c < rows[r].size(); c++) {
      std::string cell = rows[r][c];
      cell.resize(widths[c], ' ');
      out += cell;
      if (c + 1 != rows[r].size()) {
        out += "  ";
      }
    }
    out += "\n";
    if (r == 0) {
      for (size_t c = 0; c < widths.size(); c++) {
        out += std::string(widths[c], '-');
        if (c + 1 != widths.size()) {
          out += "  ";
        }
      }
      out += "\n";
    }
  }
  return out;
}

std::string RenderCsv(const std::vector<std::vector<std::string>>& rows) {
  std::string out;
  for (const auto& row : rows) {
    out += StrJoin(row, ",") + "\n";
  }
  return out;
}

std::string RenderBars(const std::vector<std::pair<std::string, double>>& data,
                       double unit_value, const std::string& unit_label, int width) {
  double max_v = 0;
  size_t max_label = 0;
  for (const auto& [label, v] : data) {
    max_v = std::max(max_v, v);
    max_label = std::max(max_label, label.size());
  }
  if (max_v <= 0) {
    max_v = 1;
  }
  std::string out;
  for (const auto& [label, v] : data) {
    std::string padded = label;
    padded.resize(max_label, ' ');
    int bars = static_cast<int>(v / max_v * width + 0.5);
    out += StrFormat("%s |%s%s %.3f%s\n", padded.c_str(), std::string(bars, '#').c_str(),
                     std::string(width - bars, ' ').c_str(), v, unit_label.c_str());
  }
  if (unit_value > 0) {
    out += StrFormat("(reference line: %.2f%s)\n", unit_value, unit_label.c_str());
  }
  return out;
}

}  // namespace nsf
