#include "src/harness/harness.h"

#include <algorithm>
#include <cmath>

#include "src/runtime/runtime.h"
#include "src/support/rng.h"
#include "src/support/str.h"
#include "src/wasm/validator.h"

namespace nsf {

double GeoMean(const std::vector<double>& xs) {
  if (xs.empty()) {
    return 0;
  }
  double log_sum = 0;
  for (double x : xs) {
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

double Median(std::vector<double> xs) {
  if (xs.empty()) {
    return 0;
  }
  std::sort(xs.begin(), xs.end());
  size_t n = xs.size();
  return n % 2 == 1 ? xs[n / 2] : 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

RunResult BenchHarness::RunOnce(const WorkloadSpec& spec, const CodegenOptions& options) {
  RunResult result;
  Module module = spec.build();
  ValidationResult vr = ValidateModule(module);
  if (!vr.ok) {
    result.error = "module invalid: " + vr.error;
    return result;
  }
  CompileResult compiled = CompileModule(module, options);
  if (!compiled.ok) {
    result.error = "compile failed: " + compiled.error;
    return result;
  }
  result.compile = compiled.stats;

  BrowsixKernel kernel;
  if (spec.setup) {
    spec.setup(kernel);
  }
  SimMachine machine(&compiled.program);
  if (spec.fuel != 0) {
    machine.set_fuel(spec.fuel);
  }
  MachineMemPort port(&machine);
  auto process = kernel.CreateProcess(&port, spec.argv);
  BindSyscalls(&machine, compiled, module, process.get());

  const Export* entry = module.FindExport(spec.entry, ExternalKind::kFunc);
  if (entry == nullptr) {
    result.error = "no entry export " + spec.entry;
    return result;
  }
  // The measurement window starts after compilation, as in the paper
  // ("after WebAssembly JIT compilation concludes").
  machine.ResetCounters();
  MachineResult mr = machine.RunAt(entry->index, kStackBase + kStackSize);
  if (!mr.ok) {
    result.error = StrFormat("%s trapped: %s", spec.name.c_str(), mr.error.c_str());
    return result;
  }
  result.ok = true;
  result.exit_code = mr.ret_i;
  result.counters = machine.counters();
  result.seconds = machine.SecondsFromCycles(result.counters.cycles());
  result.browsix_seconds = machine.SecondsFromCycles(machine.host_micro_cycles() / 4);
  result.syscalls = process->syscall_count();
  result.stdout_text = process->StdoutString();
  for (const std::string& path : spec.output_files) {
    std::vector<uint8_t> bytes;
    kernel.fs().ReadFile(path, &bytes);
    result.outputs.push_back({path, std::move(bytes)});
  }
  return result;
}

RunResult BenchHarness::RunValidated(const WorkloadSpec& spec, const CodegenOptions& options) {
  // Reference outputs come from the native profile (SPEC's reference run).
  auto it = reference_outputs_.find(spec.name);
  if (it == reference_outputs_.end()) {
    RunResult ref = RunOnce(spec, CodegenOptions::NativeClang());
    if (!ref.ok) {
      RunResult fail;
      fail.error = "reference run failed: " + ref.error;
      return fail;
    }
    it = reference_outputs_.emplace(spec.name, std::move(ref.outputs)).first;
  }
  RunResult r = RunOnce(spec, options);
  if (!r.ok) {
    return r;
  }
  // cmp each output file against the reference bytes.
  r.validated = r.outputs.size() == it->second.size();
  for (size_t i = 0; r.validated && i < r.outputs.size(); i++) {
    r.validated = r.outputs[i].first == it->second[i].first &&
                  r.outputs[i].second == it->second[i].second;
  }
  if (!r.validated) {
    r.error = spec.name + ": output mismatch vs reference";
  }
  return r;
}

Sample BenchHarness::JitteredSeconds(const WorkloadSpec& spec, const CodegenOptions& options,
                                     double seconds, int reps) const {
  // Deterministic per-(workload, profile) jitter, ±0.5%, modeling the
  // run-to-run variance the paper reports as standard error.
  Rng rng(Fnv1a(spec.name + "|" + options.profile_name));
  std::vector<double> samples;
  samples.reserve(reps);
  for (int i = 0; i < reps; i++) {
    double eps = (rng.NextDouble() - 0.5) * 0.01;
    samples.push_back(seconds * (1.0 + eps));
  }
  double mean = 0;
  for (double s : samples) {
    mean += s;
  }
  mean /= reps;
  double var = 0;
  for (double s : samples) {
    var += (s - mean) * (s - mean);
  }
  var /= std::max(1, reps - 1);
  Sample out;
  out.mean = mean;
  out.stderr_ = std::sqrt(var / reps);
  return out;
}

std::string RenderTable(const std::vector<std::vector<std::string>>& rows) {
  if (rows.empty()) {
    return "";
  }
  std::vector<size_t> widths;
  for (const auto& row : rows) {
    if (widths.size() < row.size()) {
      widths.resize(row.size(), 0);
    }
    for (size_t c = 0; c < row.size(); c++) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out;
  for (size_t r = 0; r < rows.size(); r++) {
    for (size_t c = 0; c < rows[r].size(); c++) {
      std::string cell = rows[r][c];
      cell.resize(widths[c], ' ');
      out += cell;
      if (c + 1 != rows[r].size()) {
        out += "  ";
      }
    }
    out += "\n";
    if (r == 0) {
      for (size_t c = 0; c < widths.size(); c++) {
        out += std::string(widths[c], '-');
        if (c + 1 != widths.size()) {
          out += "  ";
        }
      }
      out += "\n";
    }
  }
  return out;
}

std::string RenderCsv(const std::vector<std::vector<std::string>>& rows) {
  std::string out;
  for (const auto& row : rows) {
    out += StrJoin(row, ",") + "\n";
  }
  return out;
}

std::string RenderBars(const std::vector<std::pair<std::string, double>>& data,
                       double unit_value, const std::string& unit_label, int width) {
  double max_v = 0;
  size_t max_label = 0;
  for (const auto& [label, v] : data) {
    max_v = std::max(max_v, v);
    max_label = std::max(max_label, label.size());
  }
  if (max_v <= 0) {
    max_v = 1;
  }
  std::string out;
  for (const auto& [label, v] : data) {
    std::string padded = label;
    padded.resize(max_label, ' ');
    int bars = static_cast<int>(v / max_v * width + 0.5);
    out += StrFormat("%s |%s%s %.3f%s\n", padded.c_str(), std::string(bars, '#').c_str(),
                     std::string(width - bars, ' ').c_str(), v, unit_label.c_str());
  }
  if (unit_value > 0) {
    out += StrFormat("(reference line: %.2f%s)\n", unit_value, unit_label.c_str());
  }
  return out;
}

}  // namespace nsf
