#include "src/harness/harness.h"

#include <algorithm>
#include <cmath>

#include "src/support/rng.h"
#include "src/support/str.h"

namespace nsf {

double GeoMean(const std::vector<double>& xs) {
  if (xs.empty()) {
    return 0;
  }
  double log_sum = 0;
  for (double x : xs) {
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

double Median(std::vector<double> xs) {
  if (xs.empty()) {
    return 0;
  }
  std::sort(xs.begin(), xs.end());
  size_t n = xs.size();
  return n % 2 == 1 ? xs[n / 2] : 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

BenchHarness::BenchHarness()
    : owned_engine_(std::make_unique<engine::Engine>()), engine_(owned_engine_.get()) {}

BenchHarness::BenchHarness(engine::Engine* engine) : engine_(engine) {}

RunResult BenchHarness::Measure(const WorkloadSpec& spec, const CodegenOptions& options) {
  RunResult result;
  uint64_t hits_before = engine_->Stats().cache_hits;
  engine::CompiledModuleRef code = engine_->CompileWorkload(spec, options);
  if (!code->ok) {
    result.error = code->error;
    return result;
  }
  result.compile = code->stats();
  result.cache_hit = engine_->Stats().cache_hits > hits_before;

  engine::Session session(engine_);
  if (spec.setup) {
    spec.setup(session.kernel());
  }
  engine::InstanceOptions iopts;
  iopts.argv = spec.argv;
  iopts.entry = spec.entry;
  iopts.fuel = spec.fuel;
  std::string err;
  std::unique_ptr<engine::Instance> instance =
      session.Instantiate(code, std::move(iopts), &err);
  if (instance == nullptr) {
    result.error = err;
    return result;
  }
  engine::RunOutcome out = instance->Run();
  if (!out.ok) {
    result.error = StrFormat("%s trapped: %s", spec.name.c_str(), out.error.c_str());
    return result;
  }
  result.ok = true;
  result.exit_code = out.exit_code;
  result.counters = out.counters;
  result.seconds = out.seconds;
  result.browsix_seconds = out.browsix_seconds;
  result.syscalls = out.syscalls;
  result.stdout_text = std::move(out.stdout_text);
  for (const std::string& path : spec.output_files) {
    std::vector<uint8_t> bytes;
    session.fs().ReadFile(path, &bytes);
    result.outputs.push_back({path, std::move(bytes)});
  }
  return result;
}

RunResult BenchHarness::MeasureValidated(const WorkloadSpec& spec,
                                         const CodegenOptions& options) {
  // Reference outputs come from the native profile (SPEC's reference run).
  auto it = reference_outputs_.find(spec.name);
  if (it == reference_outputs_.end()) {
    RunResult ref = Measure(spec, CodegenOptions::NativeClang());
    if (!ref.ok) {
      RunResult fail;
      fail.error = "reference run failed: " + ref.error;
      return fail;
    }
    it = reference_outputs_.emplace(spec.name, std::move(ref.outputs)).first;
  }
  RunResult r = Measure(spec, options);
  if (!r.ok) {
    return r;
  }
  // cmp each output file against the reference bytes.
  r.validated = r.outputs.size() == it->second.size();
  for (size_t i = 0; r.validated && i < r.outputs.size(); i++) {
    r.validated = r.outputs[i].first == it->second[i].first &&
                  r.outputs[i].second == it->second[i].second;
  }
  if (!r.validated) {
    r.error = spec.name + ": output mismatch vs reference";
  }
  return r;
}

Sample BenchHarness::JitteredSeconds(const WorkloadSpec& spec, const CodegenOptions& options,
                                     double seconds, int reps) const {
  // Deterministic per-(workload, profile) jitter, ±0.5%, modeling the
  // run-to-run variance the paper reports as standard error.
  Rng rng(Fnv1a(spec.name + "|" + options.profile_name));
  std::vector<double> samples;
  samples.reserve(reps);
  for (int i = 0; i < reps; i++) {
    double eps = (rng.NextDouble() - 0.5) * 0.01;
    samples.push_back(seconds * (1.0 + eps));
  }
  double mean = 0;
  for (double s : samples) {
    mean += s;
  }
  mean /= reps;
  double var = 0;
  for (double s : samples) {
    var += (s - mean) * (s - mean);
  }
  var /= std::max(1, reps - 1);
  Sample out;
  out.mean = mean;
  out.stderr_ = std::sqrt(var / reps);
  return out;
}

std::string RenderTable(const std::vector<std::vector<std::string>>& rows) {
  if (rows.empty()) {
    return "";
  }
  std::vector<size_t> widths;
  for (const auto& row : rows) {
    if (widths.size() < row.size()) {
      widths.resize(row.size(), 0);
    }
    for (size_t c = 0; c < row.size(); c++) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out;
  for (size_t r = 0; r < rows.size(); r++) {
    for (size_t c = 0; c < rows[r].size(); c++) {
      std::string cell = rows[r][c];
      cell.resize(widths[c], ' ');
      out += cell;
      if (c + 1 != rows[r].size()) {
        out += "  ";
      }
    }
    out += "\n";
    if (r == 0) {
      for (size_t c = 0; c < widths.size(); c++) {
        out += std::string(widths[c], '-');
        if (c + 1 != widths.size()) {
          out += "  ";
        }
      }
      out += "\n";
    }
  }
  return out;
}

std::string RenderCsv(const std::vector<std::vector<std::string>>& rows) {
  std::string out;
  for (const auto& row : rows) {
    out += StrJoin(row, ",") + "\n";
  }
  return out;
}

std::string RenderBars(const std::vector<std::pair<std::string, double>>& data,
                       double unit_value, const std::string& unit_label, int width) {
  double max_v = 0;
  size_t max_label = 0;
  for (const auto& [label, v] : data) {
    max_v = std::max(max_v, v);
    max_label = std::max(max_label, label.size());
  }
  if (max_v <= 0) {
    max_v = 1;
  }
  std::string out;
  for (const auto& [label, v] : data) {
    std::string padded = label;
    padded.resize(max_label, ' ');
    int bars = static_cast<int>(v / max_v * width + 0.5);
    out += StrFormat("%s |%s%s %.3f%s\n", padded.c_str(), std::string(bars, '#').c_str(),
                     std::string(width - bars, ' ').c_str(), v, unit_label.c_str());
  }
  if (unit_value > 0) {
    out += StrFormat("(reference line: %.2f%s)\n", unit_value, unit_label.c_str());
  }
  return out;
}

}  // namespace nsf
