// Optimization passes over the VOp IR (see opt.cc for pass semantics).
#ifndef SRC_CODEGEN_OPT_H_
#define SRC_CODEGEN_OPT_H_

#include "src/codegen/ir.h"

namespace nsf {

// Removes pure ops whose results are unused (to fixpoint).
void DeadCodeElim(VFunc* vf);

// Forwards single-def copies and re-runs DCE.
void CopyPropagate(VFunc* vf);

// Rotates top-test loops into bottom-test form (native profile).
void RotateLoops(VFunc* vf);

// Folds add/shl address chains into [base+index*scale+disp] operands.
void FuseAddressing(VFunc* vf);

// Fuses load/modify/store into register-memory ALU instructions.
void FuseAluMem(VFunc* vf);

}  // namespace nsf

#endif  // SRC_CODEGEN_OPT_H_
