// Optimization passes over the VOp IR (see opt.cc for pass semantics).
#ifndef SRC_CODEGEN_OPT_H_
#define SRC_CODEGEN_OPT_H_

#include <functional>

#include "src/codegen/ir.h"
#include "src/profile/profile.h"

namespace nsf {

// Removes pure ops whose results are unused (to fixpoint).
void DeadCodeElim(VFunc* vf);

// Forwards single-def copies and re-runs DCE.
void CopyPropagate(VFunc* vf);

// Rotates top-test loops into bottom-test form (native profile).
void RotateLoops(VFunc* vf);

// PGO variant: rotates only loops whose header label satisfies `pred`
// (hotness gating; RotateLoops is this with an always-true predicate).
void RotateLoopsIf(VFunc* vf, const std::function<bool(uint32_t header_label)>& pred);

// PGO block placement: if-arms the profile says (almost) never execute are
// moved to the function tail and the guarding branch is inverted, so the hot
// path falls through straight-line (fewer taken branches, cold bytes out of
// the hot icache lines).
void PgoSinkColdBlocks(VFunc* vf, const FuncProfile& fp);

// PGO devirtualization: rewrites a monomorphic call_indirect site into
//   if (table_index == hot_elem) call hot_func; else call_indirect ...
// skipping the bounds/null/signature checking sequence on the hot path.
// `resolve(elem, sig)` returns the joint function index baked into table
// element `elem` when it exists and matches signature `sig`, else -1.
void PgoDevirtualize(VFunc* vf, const FuncProfile& fp,
                     const std::function<int64_t(uint32_t elem, uint32_t sig)>& resolve);

// Folds add/shl address chains into [base+index*scale+disp] operands.
void FuseAddressing(VFunc* vf);

// Fuses load/modify/store into register-memory ALU instructions.
void FuseAluMem(VFunc* vf);

}  // namespace nsf

#endif  // SRC_CODEGEN_OPT_H_
