#include "src/codegen/ir.h"

#include <functional>

#include "src/support/str.h"

namespace nsf {

void ForEachUse(const VOp& op, const std::function<void(uint32_t)>& fn) {
  auto visit = [&fn](uint32_t v) {
    if (v != kNoVReg) {
      fn(v);
    }
  };
  switch (op.k) {
    case VOp::K::kParam:
    case VOp::K::kConst:
    case VOp::K::kConstF:
    case VOp::K::kGlobalGet:
    case VOp::K::kLabel:
    case VOp::K::kBr:
    case VOp::K::kTrap:
    case VOp::K::kMemSize:
      break;
    case VOp::K::kMove:
    case VOp::K::kUn:
    case VOp::K::kGlobalSet:
    case VOp::K::kBrIf:
    case VOp::K::kMemGrow:
    case VOp::K::kRet:
      visit(op.a);
      break;
    case VOp::K::kBin:
    case VOp::K::kCmp:
    case VOp::K::kBrCmp:
      visit(op.a);
      visit(op.b);
      break;
    case VOp::K::kSelect:
      visit(op.a);
      visit(op.b);
      visit(op.c);
      break;
    case VOp::K::kLoad:
      visit(op.a);
      if (op.fuse_scale != 0) {
        visit(op.b);
      }
      break;
    case VOp::K::kStore:
      visit(op.a);
      visit(op.b);
      if (op.fuse_scale != 0) {
        visit(op.c);
      }
      break;
    case VOp::K::kCall:
      for (uint32_t v : op.args) {
        visit(v);
      }
      break;
    case VOp::K::kCallInd:
      visit(op.a);
      for (uint32_t v : op.args) {
        visit(v);
      }
      break;
  }
}

uint32_t DefOf(const VOp& op) {
  switch (op.k) {
    case VOp::K::kStore:
    case VOp::K::kGlobalSet:
    case VOp::K::kLabel:
    case VOp::K::kBr:
    case VOp::K::kBrIf:
    case VOp::K::kBrCmp:
    case VOp::K::kRet:
    case VOp::K::kTrap:
      return kNoVReg;
    default:
      return op.d;
  }
}

bool IsPure(const VOp& op) {
  switch (op.k) {
    case VOp::K::kConst:
    case VOp::K::kConstF:
    case VOp::K::kMove:
    case VOp::K::kCmp:
    case VOp::K::kSelect:
      return true;
    case VOp::K::kUn:
    case VOp::K::kBin:
      // div/rem can trap; everything else is pure.
      switch (op.wop) {
        case Opcode::kI32DivS:
        case Opcode::kI32DivU:
        case Opcode::kI32RemS:
        case Opcode::kI32RemU:
        case Opcode::kI64DivS:
        case Opcode::kI64DivU:
        case Opcode::kI64RemS:
        case Opcode::kI64RemU:
        case Opcode::kI32TruncF32S:
        case Opcode::kI32TruncF32U:
        case Opcode::kI32TruncF64S:
        case Opcode::kI32TruncF64U:
        case Opcode::kI64TruncF32S:
        case Opcode::kI64TruncF32U:
        case Opcode::kI64TruncF64S:
        case Opcode::kI64TruncF64U:
          return false;
        default:
          return true;
      }
    default:
      return false;
  }
}

std::string VOpToString(const VOp& op) {
  switch (op.k) {
    case VOp::K::kParam:
      return StrFormat("v%u = param %llu", op.d, (unsigned long long)op.imm);
    case VOp::K::kConst:
      return StrFormat("v%u = const %lld", op.d, (long long)op.imm);
    case VOp::K::kConstF:
      return StrFormat("v%u = constf 0x%llx", op.d, (unsigned long long)op.imm);
    case VOp::K::kMove:
      return StrFormat("v%u = v%u", op.d, op.a);
    case VOp::K::kUn:
      return StrFormat("v%u = %s v%u", op.d, OpcodeName(op.wop), op.a);
    case VOp::K::kBin:
      return StrFormat("v%u = %s v%u, v%u", op.d, OpcodeName(op.wop), op.a, op.b);
    case VOp::K::kCmp:
      return StrFormat("v%u = cmp.%s v%u, v%u", op.d, CondName(op.cond), op.a, op.b);
    case VOp::K::kSelect:
      return StrFormat("v%u = select v%u ? v%u : v%u", op.d, op.c, op.a, op.b);
    case VOp::K::kLoad:
      if (op.fuse_scale != 0) {
        return StrFormat("v%u = load [v%u + v%u*%u + %d] w%u", op.d, op.a, op.b, op.fuse_scale,
                         op.offset, op.width);
      }
      return StrFormat("v%u = load [v%u + %d] w%u", op.d, op.a, op.offset, op.width);
    case VOp::K::kStore:
      if (op.fuse_scale != 0) {
        return StrFormat("store [v%u + v%u*%u + %d] = v%u w%u", op.a, op.c, op.fuse_scale,
                         op.offset, op.b, op.width);
      }
      return StrFormat("store [v%u + %d] = v%u w%u", op.a, op.offset, op.b, op.width);
    case VOp::K::kGlobalGet:
      return StrFormat("v%u = global[%llu]", op.d, (unsigned long long)op.imm);
    case VOp::K::kGlobalSet:
      return StrFormat("global[%llu] = v%u", (unsigned long long)op.imm, op.a);
    case VOp::K::kLabel:
      return StrFormat("L%u:", op.label);
    case VOp::K::kBr:
      return StrFormat("br L%u", op.label);
    case VOp::K::kBrIf:
      return StrFormat("br_if%s v%u, L%u", op.negate ? "_not" : "", op.a, op.label);
    case VOp::K::kBrCmp:
      return StrFormat("br_cmp.%s v%u, v%u, L%u", CondName(op.cond), op.a, op.b, op.label);
    case VOp::K::kCall:
      return StrFormat("v%u = call f%u (%zu args)", op.d, op.func, op.args.size());
    case VOp::K::kCallInd:
      return StrFormat("v%u = call_indirect [v%u] sig%u (%zu args)", op.d, op.a, op.sig,
                       op.args.size());
    case VOp::K::kMemSize:
      return StrFormat("v%u = memory.size", op.d);
    case VOp::K::kMemGrow:
      return StrFormat("v%u = memory.grow v%u", op.d, op.a);
    case VOp::K::kRet:
      return op.a == kNoVReg ? "ret" : StrFormat("ret v%u", op.a);
    case VOp::K::kTrap:
      return "trap";
  }
  return "?";
}

}  // namespace nsf
