// Emission: VOps with an Allocation become MInstrs.
//
// ABI (both backends; documented in DESIGN.md):
//   - arguments passed on the stack, pushed by the caller below its rsp;
//     callee reads them at [rbp + 16 + i*8]
//   - return value in rax (int) / xmm0 (fp)
//   - every allocatable register is callee-saved: the prologue stores the
//     ones the function uses into the frame and the epilogue restores them
//   - r10/r11 and xmm14/xmm15 are emission scratch, never allocated
//   - rax/rdx/rcx have fixed roles (division pair, shift count)
//
// Profile-specific shapes handled here:
//   - heap access: [vreg_base + kHeapBase] displacement (native) vs
//     [heap_base_reg + vreg] (JIT)
//   - per-function stack checks (cmp rsp against a limit slot in memory)
//   - call_indirect table checks (bounds + null + signature)
//   - the extra loop-entry jump of the Chrome profile
#include "src/codegen/emit.h"

#include <unordered_map>

#include "src/support/str.h"

namespace nsf {

namespace {

constexpr Gpr kScratch0 = Gpr::kR10;
constexpr Gpr kScratch1 = Gpr::kR11;
constexpr Xmm kFpScratch0 = Xmm::kXmm14;
constexpr Xmm kFpScratch1 = Xmm::kXmm15;

class Emitter {
 public:
  Emitter(const VFunc& vf, const Allocation& alloc, const CodegenOptions& options,
          const EmitEnv& env)
      : vf_(vf), alloc_(alloc), options_(options), env_(env) {}

  MFunction Run() {
    out_.name = vf_.name;
    num_saved_ = static_cast<uint32_t>(alloc_.used_gprs.size() + alloc_.used_xmms.size());
    // Frame: [rbp-8 .. rbp-8*num_saved] saved regs, then spill slots.
    frame_slots_ = num_saved_ + alloc_.num_slots;
    out_.frame_slots = frame_slots_;

    EmitPrologue();
    for (size_t i = 0; i < vf_.ops.size(); i++) {
      EmitOp(vf_.ops[i]);
    }
    // Shared epilogue + out-of-line trap stubs.
    BindLabel(epilogue_label_);
    EmitEpilogue();
    for (const auto& [label, kind] : trap_stubs_) {
      BindLabel(label);
      MInstr t;
      t.op = MOp::kCallHost;
      t.func = kind;
      Push(t);
    }
    ResolveLabels();
    return std::move(out_);
  }

 private:
  // ---- label management ----
  uint32_t NewLabel() { return next_label_++; }

  void BindLabel(uint32_t label) { label_pos_[label] = static_cast<uint32_t>(out_.code.size()); }

  void Push(MInstr instr) { out_.code.push_back(std::move(instr)); }

  void PushJump(uint32_t label) {
    MInstr j = MInstr::Jump(0);
    j.label = label;
    pending_.push_back(static_cast<uint32_t>(out_.code.size()));
    Push(j);
  }

  void PushJcc(Cond cond, uint32_t label) {
    MInstr j = MInstr::JumpCc(cond, 0);
    j.label = label;
    pending_.push_back(static_cast<uint32_t>(out_.code.size()));
    Push(j);
  }

  void ResolveLabels() {
    for (uint32_t idx : pending_) {
      out_.code[idx].label = label_pos_.at(out_.code[idx].label);
    }
  }

  // ---- frame addressing ----
  MemRef SlotRef(uint32_t slot) {
    return MemRef::BaseDisp(Gpr::kRbp, -8 * static_cast<int32_t>(num_saved_ + slot + 1));
  }

  MemRef SavedRef(uint32_t i) {
    return MemRef::BaseDisp(Gpr::kRbp, -8 * static_cast<int32_t>(i + 1));
  }

  MemRef ParamRef(uint32_t i) {
    return MemRef::BaseDisp(Gpr::kRbp, 16 + 8 * static_cast<int32_t>(i));
  }

  // ---- operand materialization ----
  // Returns the physical GPR holding vreg v, loading from the spill slot
  // into `scratch` when needed.
  Gpr UseGpr(uint32_t v, Gpr scratch) {
    if (alloc_.IsReg(v)) {
      return alloc_.GprOf(v);
    }
    MInstr ld;
    ld.op = MOp::kLoad;
    ld.dst = Operand::R(scratch);
    ld.src = Operand::M(SlotRef(alloc_.SlotOf(v)));
    ld.width = 8;
    Push(ld);
    return scratch;
  }

  Xmm UseXmm(uint32_t v, Xmm scratch) {
    if (alloc_.IsReg(v)) {
      return alloc_.XmmOf(v);
    }
    MInstr ld;
    ld.op = MOp::kMovsd;
    ld.dst = Operand::X(scratch);
    ld.src = Operand::M(SlotRef(alloc_.SlotOf(v)));
    ld.width = 8;
    Push(ld);
    return scratch;
  }

  // Destination register for defining vreg v (scratch when spilled); caller
  // must invoke StoreIfSpilled(v, reg) afterward.
  Gpr DefGpr(uint32_t v, Gpr scratch) { return alloc_.IsReg(v) ? alloc_.GprOf(v) : scratch; }
  Xmm DefXmm(uint32_t v, Xmm scratch) { return alloc_.IsReg(v) ? alloc_.XmmOf(v) : scratch; }

  void StoreIfSpilled(uint32_t v, Gpr reg) {
    if (alloc_.IsReg(v) || alloc_.loc[v] == -1) {
      return;
    }
    MInstr st;
    st.op = MOp::kStore;
    st.dst = Operand::M(SlotRef(alloc_.SlotOf(v)));
    st.src = Operand::R(reg);
    st.width = 8;
    Push(st);
  }

  void StoreIfSpilledX(uint32_t v, Xmm reg) {
    if (alloc_.IsReg(v) || alloc_.loc[v] == -1) {
      return;
    }
    MInstr st;
    st.op = MOp::kMovsd;
    st.dst = Operand::M(SlotRef(alloc_.SlotOf(v)));
    st.src = Operand::X(reg);
    st.width = 8;
    Push(st);
  }

  // Heap memory operand for an access with unfused address vreg `a`.
  MemRef HeapRef(uint32_t a_vreg, int32_t offset, Gpr scratch) {
    Gpr a = UseGpr(a_vreg, scratch);
    if (options_.heap_base_in_disp) {
      return MemRef::BaseDisp(a, static_cast<int32_t>(kHeapBase) + offset);
    }
    return MemRef::BaseIndex(options_.heap_base_reg, a, 1, offset);
  }

  // Heap memory operand for a fused access: base + index*scale + offset.
  MemRef FusedHeapRef(uint32_t base_v, uint32_t index_v, uint8_t scale, int32_t offset) {
    Gpr base = UseGpr(base_v, kScratch0);
    Gpr index = UseGpr(index_v, kScratch1);
    MemRef m = MemRef::BaseIndex(base, index, scale, offset);
    if (options_.heap_base_in_disp) {
      m.disp += static_cast<int32_t>(kHeapBase);
    }
    // Without a folded heap base the fused form still needs the base
    // register; fused addressing is only enabled for the native profile,
    // which folds the base, so this path is native-only in practice.
    return m;
  }

  uint32_t TrapStub(uint32_t builtin_kind) {
    for (const auto& [label, kind] : trap_stubs_) {
      if (kind == builtin_kind) {
        return label;
      }
    }
    uint32_t label = NewLabel();
    trap_stubs_.push_back({label, builtin_kind});
    return label;
  }

  void EmitPrologue() {
    MInstr push_rbp;
    push_rbp.op = MOp::kPush;
    push_rbp.dst = Operand::R(Gpr::kRbp);
    Push(push_rbp);
    Push(MInstr::RR(MOp::kMov, Gpr::kRbp, Gpr::kRsp, 8));
    if (frame_slots_ > 0) {
      Push(MInstr::RI(MOp::kSub, Gpr::kRsp, 8 * frame_slots_, 8));
    }
    // Stack-overflow check (JIT profiles, §6.2.2).
    if (options_.stack_check) {
      MInstr ld;
      ld.op = MOp::kLoad;
      ld.dst = Operand::R(kScratch0);
      ld.src = Operand::M(MemRef::Abs(static_cast<int32_t>(
          kGlobalsBase + 8 * MProgram::kStackLimitSlot)));
      ld.width = 8;
      ld.comment = "stack limit";
      Push(ld);
      MInstr cmp = MInstr::RR(MOp::kCmp, Gpr::kRsp, kScratch0, 8);
      cmp.comment = "stack check";
      Push(cmp);
      PushJcc(Cond::kB, TrapStub(kBuiltinTrapStack));
    }
    // Save callee-saved registers this function uses.
    uint32_t i = 0;
    for (Gpr g : alloc_.used_gprs) {
      Push(MInstr::MR(MOp::kStore, SavedRef(i++), g, 8));
    }
    for (Xmm x : alloc_.used_xmms) {
      MInstr st;
      st.op = MOp::kMovsd;
      st.dst = Operand::M(SavedRef(i++));
      st.src = Operand::X(x);
      st.width = 8;
      Push(st);
    }
  }

  void EmitEpilogue() {
    uint32_t i = 0;
    for (Gpr g : alloc_.used_gprs) {
      Push(MInstr::RM(MOp::kLoad, g, SavedRef(i++), 8));
    }
    for (Xmm x : alloc_.used_xmms) {
      MInstr ld;
      ld.op = MOp::kMovsd;
      ld.dst = Operand::X(x);
      ld.src = Operand::M(SavedRef(i++));
      ld.width = 8;
      Push(ld);
    }
    Push(MInstr::RR(MOp::kMov, Gpr::kRsp, Gpr::kRbp, 8));
    MInstr pop_rbp;
    pop_rbp.op = MOp::kPop;
    pop_rbp.dst = Operand::R(Gpr::kRbp);
    Push(pop_rbp);
    MInstr ret;
    ret.op = MOp::kRet;
    Push(ret);
  }

  void EmitMoveGpr(uint32_t d, uint32_t a, uint8_t width) {
    if (alloc_.loc[d] == -1) {
      return;  // dead destination
    }
    if (alloc_.IsReg(d) && alloc_.IsReg(a) && alloc_.GprOf(d) == alloc_.GprOf(a)) {
      return;  // coalesced
    }
    if (alloc_.IsSpill(d) && alloc_.IsSpill(a) && alloc_.SlotOf(d) == alloc_.SlotOf(a)) {
      return;
    }
    Gpr src = UseGpr(a, kScratch0);
    Gpr dst = DefGpr(d, src);
    if (alloc_.IsReg(d)) {
      Push(MInstr::RR(MOp::kMov, dst, src, width == 4 ? 4 : 8));
    }
    StoreIfSpilled(d, src);
  }

  void EmitMoveXmm(uint32_t d, uint32_t a) {
    if (alloc_.loc[d] == -1) {
      return;
    }
    if (alloc_.IsReg(d) && alloc_.IsReg(a) && alloc_.XmmOf(d) == alloc_.XmmOf(a)) {
      return;
    }
    if (alloc_.IsSpill(d) && alloc_.IsSpill(a) && alloc_.SlotOf(d) == alloc_.SlotOf(a)) {
      return;
    }
    Xmm src = UseXmm(a, kFpScratch0);
    if (alloc_.IsReg(d)) {
      MInstr mv;
      mv.op = MOp::kMovsd;
      mv.dst = Operand::X(alloc_.XmmOf(d));
      mv.src = Operand::X(src);
      Push(mv);
    }
    StoreIfSpilledX(d, src);
  }

  // Loads a 64-bit immediate into a register (short form when it fits).
  void LoadImm(Gpr reg, uint64_t bits, uint8_t width) {
    int64_t sv = static_cast<int64_t>(bits);
    if (width == 8 && (sv > INT32_MAX || sv < INT32_MIN)) {
      MInstr mi = MInstr::RI(MOp::kMovImm64, reg, sv, 8);
      Push(mi);
    } else {
      Push(MInstr::RI(MOp::kMov, reg, static_cast<int64_t>(
          width == 4 ? static_cast<int64_t>(static_cast<uint32_t>(bits)) : sv), width));
    }
  }

  void EmitCmpSet(const VOp& op) {
    // Compare and materialize 0/1.
    if (op.is_fp) {
      EmitFpCompare(op.a, op.b, op.width);
      Gpr d = DefGpr(op.d, kScratch0);
      if (op.cond == Cond::kE) {
        // equal and ordered: sete && setnp
        MInstr s1;
        s1.op = MOp::kSetcc;
        s1.cond = Cond::kE;
        s1.dst = Operand::R(d);
        Push(s1);
        MInstr s2;
        s2.op = MOp::kSetcc;
        s2.cond = Cond::kNp;
        s2.dst = Operand::R(kScratch1);
        Push(s2);
        Push(MInstr::RR(MOp::kAnd, d, kScratch1, 4));
      } else if (op.cond == Cond::kNe) {
        MInstr s1;
        s1.op = MOp::kSetcc;
        s1.cond = Cond::kNe;
        s1.dst = Operand::R(d);
        Push(s1);
        MInstr s2;
        s2.op = MOp::kSetcc;
        s2.cond = Cond::kP;
        s2.dst = Operand::R(kScratch1);
        Push(s2);
        Push(MInstr::RR(MOp::kOr, d, kScratch1, 4));
      } else {
        MInstr s;
        s.op = MOp::kSetcc;
        s.cond = op.cond;
        s.dst = Operand::R(d);
        Push(s);
      }
      StoreIfSpilled(op.d, d);
      return;
    }
    Gpr a = UseGpr(op.a, kScratch0);
    Gpr b = UseGpr(op.b, kScratch1);
    Push(MInstr::RR(MOp::kCmp, a, b, op.width));
    Gpr d = DefGpr(op.d, kScratch0);
    MInstr s;
    s.op = MOp::kSetcc;
    s.cond = op.cond;
    s.dst = Operand::R(d);
    Push(s);
    StoreIfSpilled(op.d, d);
  }

  void EmitFpCompare(uint32_t a, uint32_t b, uint8_t width) {
    Xmm xa = UseXmm(a, kFpScratch0);
    Xmm xb = UseXmm(b, kFpScratch1);
    MInstr cmp;
    cmp.op = width == 4 ? MOp::kUcomiss : MOp::kUcomisd;
    cmp.dst = Operand::X(xa);
    cmp.src = Operand::X(xb);
    Push(cmp);
  }

  void EmitBin(const VOp& op) {
    if (op.is_fp) {
      EmitFpBin(op);
      return;
    }
    switch (op.wop) {
      case Opcode::kI32DivS:
      case Opcode::kI32DivU:
      case Opcode::kI32RemS:
      case Opcode::kI32RemU:
      case Opcode::kI64DivS:
      case Opcode::kI64DivU:
      case Opcode::kI64RemS:
      case Opcode::kI64RemU:
        EmitDiv(op);
        return;
      case Opcode::kI32Shl:
      case Opcode::kI32ShrS:
      case Opcode::kI32ShrU:
      case Opcode::kI32Rotl:
      case Opcode::kI32Rotr:
      case Opcode::kI64Shl:
      case Opcode::kI64ShrS:
      case Opcode::kI64ShrU:
      case Opcode::kI64Rotl:
      case Opcode::kI64Rotr:
        EmitShift(op);
        return;
      default:
        break;
    }
    MOp mop;
    switch (op.wop) {
      case Opcode::kI32Add:
      case Opcode::kI64Add:
        mop = MOp::kAdd;
        break;
      case Opcode::kI32Sub:
      case Opcode::kI64Sub:
        mop = MOp::kSub;
        break;
      case Opcode::kI32Mul:
      case Opcode::kI64Mul:
        mop = MOp::kImul;
        break;
      case Opcode::kI32And:
      case Opcode::kI64And:
        mop = MOp::kAnd;
        break;
      case Opcode::kI32Or:
      case Opcode::kI64Or:
        mop = MOp::kOr;
        break;
      default:
        mop = MOp::kXor;
        break;
    }
    // d = a op b: mov d, a; op d, b (two-operand machine).
    Gpr a = UseGpr(op.a, kScratch0);
    Gpr d = DefGpr(op.d, kScratch0);
    bool d_is_b = alloc_.IsReg(op.d) && alloc_.IsReg(op.b) &&
                  alloc_.GprOf(op.d) == alloc_.GprOf(op.b);
    if (d_is_b) {
      // mov into scratch to avoid clobbering b.
      Push(MInstr::RR(MOp::kMov, kScratch0, a, op.width));
      Gpr b = UseGpr(op.b, kScratch1);
      Push(MInstr::RR(mop, kScratch0, b, op.width));
      Push(MInstr::RR(MOp::kMov, alloc_.GprOf(op.d), kScratch0, op.width));
      return;
    }
    if (d != a || !alloc_.IsReg(op.d) || !alloc_.IsReg(op.a) ||
        alloc_.GprOf(op.d) != alloc_.GprOf(op.a)) {
      if (!(alloc_.IsReg(op.d) && alloc_.IsReg(op.a) &&
            alloc_.GprOf(op.d) == alloc_.GprOf(op.a))) {
        Push(MInstr::RR(MOp::kMov, d, a, op.width));
      }
    }
    Gpr b = UseGpr(op.b, kScratch1);
    Push(MInstr::RR(mop, d, b, op.width));
    StoreIfSpilled(op.d, d);
  }

  void EmitDiv(const VOp& op) {
    bool is_signed = op.wop == Opcode::kI32DivS || op.wop == Opcode::kI32RemS ||
                     op.wop == Opcode::kI64DivS || op.wop == Opcode::kI64RemS;
    bool is_rem = op.wop == Opcode::kI32RemS || op.wop == Opcode::kI32RemU ||
                  op.wop == Opcode::kI64RemS || op.wop == Opcode::kI64RemU;
    // rem_s INT_MIN % -1 must yield 0, but idiv traps; engines and compilers
    // guard it. We emit the guard for rem_s only: cmp b,-1; je zero-path.
    Gpr a = UseGpr(op.a, kScratch0);
    Push(MInstr::RR(MOp::kMov, Gpr::kRax, a, op.width));
    Gpr b = UseGpr(op.b, kScratch1);
    uint32_t done = NewLabel();
    if (is_rem && is_signed) {
      Push(MInstr::RI(MOp::kCmp, b, -1, op.width));
      uint32_t not_m1 = NewLabel();
      PushJcc(Cond::kNe, not_m1);
      Push(MInstr::RI(MOp::kMov, Gpr::kRdx, 0, op.width));
      PushJump(done);
      BindLabel(not_m1);
    }
    if (is_signed) {
      MInstr cdq;
      cdq.op = MOp::kCdq;
      cdq.width = op.width;
      Push(cdq);
    } else {
      Push(MInstr::RI(MOp::kMov, Gpr::kRdx, 0, op.width));
    }
    MInstr div;
    div.op = is_signed ? MOp::kIdiv : MOp::kDiv;
    div.src = Operand::R(b);
    div.width = op.width;
    Push(div);
    BindLabel(done);
    Gpr result = is_rem ? Gpr::kRdx : Gpr::kRax;
    Gpr d = DefGpr(op.d, kScratch0);
    Push(MInstr::RR(MOp::kMov, d, result, op.width));
    StoreIfSpilled(op.d, d);
  }

  void EmitShift(const VOp& op) {
    MOp mop;
    switch (op.wop) {
      case Opcode::kI32Shl:
      case Opcode::kI64Shl:
        mop = MOp::kShl;
        break;
      case Opcode::kI32ShrU:
      case Opcode::kI64ShrU:
        mop = MOp::kShr;
        break;
      case Opcode::kI32ShrS:
      case Opcode::kI64ShrS:
        mop = MOp::kSar;
        break;
      case Opcode::kI32Rotl:
      case Opcode::kI64Rotl:
        mop = MOp::kRol;
        break;
      default:
        mop = MOp::kRor;
        break;
    }
    // count -> rcx; value -> d (via scratch when needed).
    Gpr b = UseGpr(op.b, kScratch1);
    Push(MInstr::RR(MOp::kMov, Gpr::kRcx, b, op.width));
    Gpr a = UseGpr(op.a, kScratch0);
    Gpr d = DefGpr(op.d, kScratch0);
    if (!(alloc_.IsReg(op.d) && alloc_.IsReg(op.a) &&
          alloc_.GprOf(op.d) == alloc_.GprOf(op.a))) {
      Push(MInstr::RR(MOp::kMov, d, a, op.width));
    }
    MInstr sh;
    sh.op = mop;
    sh.dst = Operand::R(d);
    sh.src2 = Operand::R(Gpr::kRcx);
    sh.width = op.width;
    Push(sh);
    StoreIfSpilled(op.d, d);
  }

  void EmitFpBin(const VOp& op) {
    if (op.wop == Opcode::kF64Copysign || op.wop == Opcode::kF32Copysign) {
      EmitCopysign(op);
      return;
    }
    bool f32 = op.width == 4;
    MOp mop;
    switch (op.wop) {
      case Opcode::kF64Add:
      case Opcode::kF32Add:
        mop = f32 ? MOp::kAddss : MOp::kAddsd;
        break;
      case Opcode::kF64Sub:
      case Opcode::kF32Sub:
        mop = f32 ? MOp::kSubss : MOp::kSubsd;
        break;
      case Opcode::kF64Mul:
      case Opcode::kF32Mul:
        mop = f32 ? MOp::kMulss : MOp::kMulsd;
        break;
      case Opcode::kF64Div:
      case Opcode::kF32Div:
        mop = f32 ? MOp::kDivss : MOp::kDivsd;
        break;
      case Opcode::kF64Min:
      case Opcode::kF32Min:
        mop = f32 ? MOp::kMinss : MOp::kMinsd;
        break;
      default:
        mop = f32 ? MOp::kMaxss : MOp::kMaxsd;
        break;
    }
    Xmm a = UseXmm(op.a, kFpScratch0);
    Xmm d = DefXmm(op.d, kFpScratch0);
    bool d_is_b = alloc_.IsReg(op.d) && alloc_.IsReg(op.b) &&
                  alloc_.XmmOf(op.d) == alloc_.XmmOf(op.b);
    if (d_is_b) {
      MInstr mv;
      mv.op = MOp::kMovsd;
      mv.dst = Operand::X(kFpScratch0);
      mv.src = Operand::X(a);
      Push(mv);
      Xmm b = UseXmm(op.b, kFpScratch1);
      MInstr alu;
      alu.op = mop;
      alu.dst = Operand::X(kFpScratch0);
      alu.src = Operand::X(b);
      Push(alu);
      MInstr mv2;
      mv2.op = MOp::kMovsd;
      mv2.dst = Operand::X(alloc_.XmmOf(op.d));
      mv2.src = Operand::X(kFpScratch0);
      Push(mv2);
      return;
    }
    if (!(alloc_.IsReg(op.d) && alloc_.IsReg(op.a) &&
          alloc_.XmmOf(op.d) == alloc_.XmmOf(op.a))) {
      MInstr mv;
      mv.op = MOp::kMovsd;
      mv.dst = Operand::X(d);
      mv.src = Operand::X(a);
      Push(mv);
    }
    Xmm b = UseXmm(op.b, kFpScratch1);
    MInstr alu;
    alu.op = mop;
    alu.dst = Operand::X(d);
    alu.src = Operand::X(b);
    Push(alu);
    StoreIfSpilledX(op.d, d);
  }

  void EmitCopysign(const VOp& op) {
    bool f32 = op.width == 4;
    uint64_t sign_mask = f32 ? 0x80000000ull : 0x8000000000000000ull;
    uint64_t abs_mask = f32 ? 0x7fffffffull : 0x7fffffffffffffffull;
    // d = (a & abs_mask) | (b & sign_mask)
    Xmm a = UseXmm(op.a, kFpScratch0);
    MInstr mv;
    mv.op = MOp::kMovsd;
    mv.dst = Operand::X(kFpScratch0);
    mv.src = Operand::X(a);
    Push(mv);
    MInstr andm;
    andm.op = MOp::kAndpd;
    andm.dst = Operand::X(kFpScratch0);
    andm.src = Operand::Imm(static_cast<int64_t>(abs_mask));
    Push(andm);
    Xmm b = UseXmm(op.b, kFpScratch1);
    MInstr mv2;
    mv2.op = MOp::kMovsd;
    mv2.dst = Operand::X(kFpScratch1);
    mv2.src = Operand::X(b);
    Push(mv2);
    MInstr andm2;
    andm2.op = MOp::kAndpd;
    andm2.dst = Operand::X(kFpScratch1);
    andm2.src = Operand::Imm(static_cast<int64_t>(sign_mask));
    Push(andm2);
    MInstr orm;
    orm.op = MOp::kOrpd;
    orm.dst = Operand::X(kFpScratch0);
    orm.src = Operand::X(kFpScratch1);
    Push(orm);
    Xmm d = DefXmm(op.d, kFpScratch0);
    if (alloc_.IsReg(op.d)) {
      MInstr mv3;
      mv3.op = MOp::kMovsd;
      mv3.dst = Operand::X(d);
      mv3.src = Operand::X(kFpScratch0);
      Push(mv3);
    }
    StoreIfSpilledX(op.d, kFpScratch0);
  }

  void EmitUn(const VOp& op) {
    switch (op.wop) {
      case Opcode::kI32Clz:
      case Opcode::kI64Clz:
      case Opcode::kI32Ctz:
      case Opcode::kI64Ctz:
      case Opcode::kI32Popcnt:
      case Opcode::kI64Popcnt: {
        MOp mop = (op.wop == Opcode::kI32Clz || op.wop == Opcode::kI64Clz) ? MOp::kLzcnt
                  : (op.wop == Opcode::kI32Ctz || op.wop == Opcode::kI64Ctz) ? MOp::kTzcnt
                                                                             : MOp::kPopcnt;
        uint8_t w = (op.wop == Opcode::kI32Clz || op.wop == Opcode::kI32Ctz ||
                     op.wop == Opcode::kI32Popcnt)
                        ? 4
                        : 8;
        Gpr a = UseGpr(op.a, kScratch0);
        Gpr d = DefGpr(op.d, kScratch0);
        MInstr mi;
        mi.op = mop;
        mi.dst = Operand::R(d);
        mi.src = Operand::R(a);
        mi.width = w;
        Push(mi);
        StoreIfSpilled(op.d, d);
        return;
      }
      case Opcode::kI32WrapI64: {
        Gpr a = UseGpr(op.a, kScratch0);
        Gpr d = DefGpr(op.d, kScratch0);
        Push(MInstr::RR(MOp::kMov, d, a, 4));  // 32-bit mov zero-extends
        StoreIfSpilled(op.d, d);
        return;
      }
      case Opcode::kI64ExtendI32S: {
        Gpr a = UseGpr(op.a, kScratch0);
        Gpr d = DefGpr(op.d, kScratch0);
        MInstr mi;
        mi.op = MOp::kMovsxd;
        mi.dst = Operand::R(d);
        mi.src = Operand::R(a);
        mi.width = 8;
        Push(mi);
        StoreIfSpilled(op.d, d);
        return;
      }
      case Opcode::kI64ExtendI32U: {
        Gpr a = UseGpr(op.a, kScratch0);
        Gpr d = DefGpr(op.d, kScratch0);
        Push(MInstr::RR(MOp::kMov, d, a, 4));
        StoreIfSpilled(op.d, d);
        return;
      }
      case Opcode::kF64Neg:
      case Opcode::kF32Neg:
      case Opcode::kF64Abs:
      case Opcode::kF32Abs: {
        bool is_abs = op.wop == Opcode::kF64Abs || op.wop == Opcode::kF32Abs;
        bool f32 = op.width == 4;
        uint64_t mask = is_abs ? (f32 ? 0x7fffffffull : 0x7fffffffffffffffull)
                               : (f32 ? 0x80000000ull : 0x8000000000000000ull);
        Xmm a = UseXmm(op.a, kFpScratch0);
        Xmm d = DefXmm(op.d, kFpScratch0);
        if (!(alloc_.IsReg(op.d) && alloc_.IsReg(op.a) &&
              alloc_.XmmOf(op.d) == alloc_.XmmOf(op.a))) {
          MInstr mv;
          mv.op = MOp::kMovsd;
          mv.dst = Operand::X(d);
          mv.src = Operand::X(a);
          Push(mv);
        }
        MInstr mi;
        mi.op = is_abs ? MOp::kAndpd : MOp::kXorpd;
        mi.dst = Operand::X(d);
        mi.src = Operand::Imm(static_cast<int64_t>(mask));
        Push(mi);
        StoreIfSpilledX(op.d, d);
        return;
      }
      case Opcode::kF64Sqrt:
      case Opcode::kF32Sqrt: {
        Xmm a = UseXmm(op.a, kFpScratch0);
        Xmm d = DefXmm(op.d, kFpScratch0);
        MInstr mi;
        mi.op = op.width == 4 ? MOp::kSqrtss : MOp::kSqrtsd;
        mi.dst = Operand::X(d);
        mi.src = Operand::X(a);
        Push(mi);
        StoreIfSpilledX(op.d, d);
        return;
      }
      case Opcode::kF64Ceil:
      case Opcode::kF64Floor:
      case Opcode::kF64Trunc:
      case Opcode::kF64Nearest:
      case Opcode::kF32Ceil:
      case Opcode::kF32Floor:
      case Opcode::kF32Trunc:
      case Opcode::kF32Nearest: {
        int mode;
        switch (op.wop) {
          case Opcode::kF64Nearest:
          case Opcode::kF32Nearest:
            mode = 0;
            break;
          case Opcode::kF64Floor:
          case Opcode::kF32Floor:
            mode = 1;
            break;
          case Opcode::kF64Ceil:
          case Opcode::kF32Ceil:
            mode = 2;
            break;
          default:
            mode = 3;
            break;
        }
        Xmm a = UseXmm(op.a, kFpScratch0);
        Xmm d = DefXmm(op.d, kFpScratch0);
        MInstr mi;
        mi.op = op.width == 4 ? MOp::kRoundss : MOp::kRoundsd;
        mi.dst = Operand::X(d);
        mi.src = Operand::X(a);
        mi.src2 = Operand::Imm(mode);
        Push(mi);
        StoreIfSpilledX(op.d, d);
        return;
      }
      // Conversions.
      case Opcode::kI32TruncF32S:
      case Opcode::kI32TruncF32U:
      case Opcode::kI32TruncF64S:
      case Opcode::kI32TruncF64U:
      case Opcode::kI64TruncF32S:
      case Opcode::kI64TruncF32U:
      case Opcode::kI64TruncF64S:
      case Opcode::kI64TruncF64U: {
        bool from32 = op.wop == Opcode::kI32TruncF32S || op.wop == Opcode::kI32TruncF32U ||
                      op.wop == Opcode::kI64TruncF32S || op.wop == Opcode::kI64TruncF32U;
        bool to64 = op.wop == Opcode::kI64TruncF32S || op.wop == Opcode::kI64TruncF32U ||
                    op.wop == Opcode::kI64TruncF64S || op.wop == Opcode::kI64TruncF64U;
        bool uns = op.wop == Opcode::kI32TruncF32U || op.wop == Opcode::kI32TruncF64U ||
                   op.wop == Opcode::kI64TruncF32U || op.wop == Opcode::kI64TruncF64U;
        Xmm a = UseXmm(op.a, kFpScratch0);
        Gpr d = DefGpr(op.d, kScratch0);
        MInstr mi;
        mi.op = from32 ? MOp::kCvttss2si : MOp::kCvttsd2si;
        mi.dst = Operand::R(d);
        mi.src = Operand::X(a);
        mi.width = to64 ? 8 : 4;
        mi.sign_extend = !uns;
        Push(mi);
        StoreIfSpilled(op.d, d);
        return;
      }
      case Opcode::kF64ConvertI32S:
      case Opcode::kF64ConvertI32U:
      case Opcode::kF64ConvertI64S:
      case Opcode::kF64ConvertI64U:
      case Opcode::kF32ConvertI32S:
      case Opcode::kF32ConvertI32U:
      case Opcode::kF32ConvertI64S:
      case Opcode::kF32ConvertI64U: {
        bool to32 = op.wop == Opcode::kF32ConvertI32S || op.wop == Opcode::kF32ConvertI32U ||
                    op.wop == Opcode::kF32ConvertI64S || op.wop == Opcode::kF32ConvertI64U;
        bool from64 = op.wop == Opcode::kF64ConvertI64S || op.wop == Opcode::kF64ConvertI64U ||
                      op.wop == Opcode::kF32ConvertI64S || op.wop == Opcode::kF32ConvertI64U;
        bool uns = op.wop == Opcode::kF64ConvertI32U || op.wop == Opcode::kF64ConvertI64U ||
                   op.wop == Opcode::kF32ConvertI32U || op.wop == Opcode::kF32ConvertI64U;
        Gpr a = UseGpr(op.a, kScratch0);
        Xmm d = DefXmm(op.d, kFpScratch0);
        MInstr mi;
        mi.op = to32 ? MOp::kCvtsi2ss : MOp::kCvtsi2sd;
        mi.dst = Operand::X(d);
        mi.src = Operand::R(a);
        mi.width = from64 ? 8 : 4;
        mi.sign_extend = !uns;
        Push(mi);
        StoreIfSpilledX(op.d, d);
        return;
      }
      case Opcode::kF64PromoteF32: {
        Xmm a = UseXmm(op.a, kFpScratch0);
        Xmm d = DefXmm(op.d, kFpScratch0);
        MInstr mi;
        mi.op = MOp::kCvtss2sd;
        mi.dst = Operand::X(d);
        mi.src = Operand::X(a);
        Push(mi);
        StoreIfSpilledX(op.d, d);
        return;
      }
      case Opcode::kF32DemoteF64: {
        Xmm a = UseXmm(op.a, kFpScratch0);
        Xmm d = DefXmm(op.d, kFpScratch0);
        MInstr mi;
        mi.op = MOp::kCvtsd2ss;
        mi.dst = Operand::X(d);
        mi.src = Operand::X(a);
        Push(mi);
        StoreIfSpilledX(op.d, d);
        return;
      }
      case Opcode::kI32ReinterpretF32:
      case Opcode::kI64ReinterpretF64: {
        Xmm a = UseXmm(op.a, kFpScratch0);
        Gpr d = DefGpr(op.d, kScratch0);
        MInstr mi;
        mi.op = MOp::kMovqFromXmm;
        mi.dst = Operand::R(d);
        mi.src = Operand::X(a);
        Push(mi);
        if (op.wop == Opcode::kI32ReinterpretF32) {
          Push(MInstr::RR(MOp::kMov, d, d, 4));  // truncate to low 32
        }
        StoreIfSpilled(op.d, d);
        return;
      }
      case Opcode::kF32ReinterpretI32:
      case Opcode::kF64ReinterpretI64: {
        Gpr a = UseGpr(op.a, kScratch0);
        Xmm d = DefXmm(op.d, kFpScratch0);
        MInstr mi;
        mi.op = MOp::kMovqToXmm;
        mi.dst = Operand::X(d);
        mi.src = Operand::R(a);
        Push(mi);
        StoreIfSpilledX(op.d, d);
        return;
      }
      default:
        break;
    }
  }

  void EmitLoad(const VOp& op) {
    MemRef mem = op.fuse_scale != 0 ? FusedHeapRef(op.a, op.b, op.fuse_scale, op.offset)
                                    : HeapRef(op.a, op.offset, kScratch0);
    if (op.is_fp) {
      Xmm d = DefXmm(op.d, kFpScratch0);
      MInstr mi;
      mi.op = op.width == 4 ? MOp::kMovss : MOp::kMovsd;
      mi.dst = Operand::X(d);
      mi.src = Operand::M(mem);
      mi.width = op.width;
      Push(mi);
      StoreIfSpilledX(op.d, d);
      return;
    }
    Gpr d = DefGpr(op.d, kScratch1);
    MInstr mi;
    mi.op = MOp::kLoad;
    mi.dst = Operand::R(d);
    mi.src = Operand::M(mem);
    mi.width = op.width;
    mi.sign_extend = op.sign;
    Push(mi);
    StoreIfSpilled(op.d, d);
  }

  void EmitStore(const VOp& op) {
    MemRef mem = op.fuse_scale != 0 ? FusedHeapRef(op.a, op.c, op.fuse_scale, op.offset)
                                    : HeapRef(op.a, op.offset, kScratch0);
    if (op.alu_op != Opcode::kNop) {
      // Register-memory ALU form (native fusion).
      MOp mop;
      switch (op.alu_op) {
        case Opcode::kI32Add:
        case Opcode::kI64Add:
          mop = MOp::kAdd;
          break;
        case Opcode::kI32Sub:
        case Opcode::kI64Sub:
          mop = MOp::kSub;
          break;
        case Opcode::kI32And:
          mop = MOp::kAnd;
          break;
        case Opcode::kI32Or:
          mop = MOp::kOr;
          break;
        default:
          mop = MOp::kXor;
          break;
      }
      Gpr v = UseGpr(op.b, kScratch1);
      MInstr mi;
      mi.op = mop;
      mi.dst = Operand::M(mem);
      mi.src = Operand::R(v);
      mi.width = op.width;
      Push(mi);
      return;
    }
    if (op.is_fp) {
      Xmm v = UseXmm(op.b, kFpScratch0);
      MInstr mi;
      mi.op = op.width == 4 ? MOp::kMovss : MOp::kMovsd;
      mi.dst = Operand::M(mem);
      mi.src = Operand::X(v);
      mi.width = op.width;
      Push(mi);
      return;
    }
    Gpr v = UseGpr(op.b, kScratch1);
    MInstr mi;
    mi.op = MOp::kStore;
    mi.dst = Operand::M(mem);
    mi.src = Operand::R(v);
    mi.width = op.width;
    Push(mi);
  }

  void EmitCallCommon(const VOp& op, bool indirect) {
    // Indirect: checks + load target into kScratch1 first.
    if (indirect) {
      Gpr t = UseGpr(op.a, kScratch0);
      uint32_t table_size = static_cast<uint32_t>(env_.table_size);
      if (options_.indirect_check) {
        MInstr cmp = MInstr::RI(MOp::kCmp, t, table_size, 4);
        cmp.comment = "table bounds check";
        Push(cmp);
        PushJcc(Cond::kAe, TrapStub(kBuiltinTrapOob));
        // Load sig id.
        MInstr lds;
        lds.op = MOp::kLoad;
        lds.dst = Operand::R(kScratch1);
        lds.src = Operand::M(MemRef{std::nullopt, t, 8, static_cast<int32_t>(kTableBase)});
        lds.width = 4;
        lds.comment = "load sig id";
        Push(lds);
        MInstr cmpn = MInstr::RI(MOp::kCmp, kScratch1, -1, 4);
        cmpn.comment = "null check";
        Push(cmpn);
        PushJcc(Cond::kE, TrapStub(kBuiltinTrapNull));
        MInstr cmps = MInstr::RI(MOp::kCmp, kScratch1, env_.sig_ids.at(op.sig), 4);
        cmps.comment = "signature check";
        Push(cmps);
        PushJcc(Cond::kNe, TrapStub(kBuiltinTrapSig));
      }
      MInstr ldf;
      ldf.op = MOp::kLoad;
      ldf.dst = Operand::R(kScratch1);
      ldf.src = Operand::M(MemRef{std::nullopt, t, 8, static_cast<int32_t>(kTableBase) + 4});
      ldf.width = 4;
      ldf.comment = "load target";
      Push(ldf);
    }
    // Arguments: pushed into the outgoing area below rsp.
    uint32_t nargs = static_cast<uint32_t>(op.args.size());
    if (nargs > 0) {
      Push(MInstr::RI(MOp::kSub, Gpr::kRsp, 8 * nargs, 8));
      for (uint32_t i = 0; i < nargs; i++) {
        uint32_t v = op.args[i];
        if (vf_.vregs[v].is_fp) {
          Xmm x = UseXmm(v, kFpScratch0);
          MInstr st;
          st.op = MOp::kMovsd;
          st.dst = Operand::M(MemRef::BaseDisp(Gpr::kRsp, 8 * static_cast<int32_t>(i)));
          st.src = Operand::X(x);
          Push(st);
        } else {
          Gpr g = UseGpr(v, kScratch0);
          Push(MInstr::MR(MOp::kStore, MemRef::BaseDisp(Gpr::kRsp, 8 * static_cast<int32_t>(i)),
                          g, 8));
        }
      }
    }
    if (indirect) {
      MInstr call;
      call.op = MOp::kCallReg;
      call.dst = Operand::R(kScratch1);
      Push(call);
    } else {
      MInstr call;
      call.op = MOp::kCall;
      call.func = op.func;
      Push(call);
    }
    if (nargs > 0) {
      Push(MInstr::RI(MOp::kAdd, Gpr::kRsp, 8 * nargs, 8));
    }
    // Result.
    if (op.d != kNoVReg && alloc_.loc[op.d] != -1) {
      if (op.is_fp) {
        Xmm d = DefXmm(op.d, kFpScratch0);
        if (alloc_.IsReg(op.d)) {
          MInstr mv;
          mv.op = MOp::kMovsd;
          mv.dst = Operand::X(d);
          mv.src = Operand::X(Xmm::kXmm0);
          Push(mv);
          StoreIfSpilledX(op.d, d);
        } else {
          StoreIfSpilledX(op.d, Xmm::kXmm0);
        }
      } else {
        Gpr d = DefGpr(op.d, Gpr::kRax);
        if (alloc_.IsReg(op.d)) {
          Push(MInstr::RR(MOp::kMov, d, Gpr::kRax, 8));
        }
        StoreIfSpilled(op.d, Gpr::kRax);
      }
    }
  }

  void EmitOp(const VOp& op) {
    switch (op.k) {
      case VOp::K::kParam: {
        if (alloc_.loc[op.d] == -1) {
          return;
        }
        if (op.is_fp) {
          Xmm d = DefXmm(op.d, kFpScratch0);
          MInstr ld;
          ld.op = MOp::kMovsd;
          ld.dst = Operand::X(d);
          ld.src = Operand::M(ParamRef(static_cast<uint32_t>(op.imm)));
          Push(ld);
          StoreIfSpilledX(op.d, d);
        } else {
          Gpr d = DefGpr(op.d, kScratch0);
          Push(MInstr::RM(MOp::kLoad, d, ParamRef(static_cast<uint32_t>(op.imm)), 8));
          StoreIfSpilled(op.d, d);
        }
        return;
      }
      case VOp::K::kConst: {
        if (alloc_.loc[op.d] == -1) {
          return;
        }
        Gpr d = DefGpr(op.d, kScratch0);
        LoadImm(d, op.imm, op.width);
        StoreIfSpilled(op.d, d);
        return;
      }
      case VOp::K::kConstF: {
        if (alloc_.loc[op.d] == -1) {
          return;
        }
        // Materialize through a GPR (engines use a constant pool load; the
        // instruction count is comparable).
        LoadImm(kScratch0, op.imm, 8);
        Xmm d = DefXmm(op.d, kFpScratch0);
        MInstr mi;
        mi.op = MOp::kMovqToXmm;
        mi.dst = Operand::X(d);
        mi.src = Operand::R(kScratch0);
        Push(mi);
        StoreIfSpilledX(op.d, d);
        return;
      }
      case VOp::K::kMove:
        if (op.is_fp) {
          EmitMoveXmm(op.d, op.a);
        } else {
          EmitMoveGpr(op.d, op.a, op.width);
        }
        return;
      case VOp::K::kUn:
        EmitUn(op);
        return;
      case VOp::K::kBin:
        EmitBin(op);
        return;
      case VOp::K::kCmp:
        EmitCmpSet(op);
        return;
      case VOp::K::kSelect: {
        Gpr c = UseGpr(op.c, kScratch0);
        MInstr tst = MInstr::RR(MOp::kTest, c, c, 4);
        Push(tst);
        uint32_t use_b = NewLabel();
        uint32_t done = NewLabel();
        PushJcc(Cond::kE, use_b);
        if (op.is_fp) {
          EmitMoveXmm(op.d, op.a);
        } else {
          EmitMoveGpr(op.d, op.a, op.width);
        }
        PushJump(done);
        BindLabel(use_b);
        if (op.is_fp) {
          EmitMoveXmm(op.d, op.b);
        } else {
          EmitMoveGpr(op.d, op.b, op.width);
        }
        BindLabel(done);
        return;
      }
      case VOp::K::kLoad:
        EmitLoad(op);
        return;
      case VOp::K::kStore:
        EmitStore(op);
        return;
      case VOp::K::kGlobalGet: {
        if (alloc_.loc[op.d] == -1) {
          return;
        }
        MemRef mem = MemRef::Abs(static_cast<int32_t>(kGlobalsBase + 8 * (1 + op.imm)));
        if (op.is_fp) {
          Xmm d = DefXmm(op.d, kFpScratch0);
          MInstr ld;
          ld.op = MOp::kMovsd;
          ld.dst = Operand::X(d);
          ld.src = Operand::M(mem);
          Push(ld);
          StoreIfSpilledX(op.d, d);
        } else {
          Gpr d = DefGpr(op.d, kScratch0);
          Push(MInstr::RM(MOp::kLoad, d, mem, 8));
          StoreIfSpilled(op.d, d);
        }
        return;
      }
      case VOp::K::kGlobalSet: {
        MemRef mem = MemRef::Abs(static_cast<int32_t>(kGlobalsBase + 8 * (1 + op.imm)));
        if (op.is_fp) {
          Xmm a = UseXmm(op.a, kFpScratch0);
          MInstr st;
          st.op = MOp::kMovsd;
          st.dst = Operand::M(mem);
          st.src = Operand::X(a);
          Push(st);
        } else {
          Gpr a = UseGpr(op.a, kScratch0);
          Push(MInstr::MR(MOp::kStore, mem, a, 8));
        }
        return;
      }
      case VOp::K::kLabel: {
        if (options_.loop_entry_jump && IsLoopHeader(op.label)) {
          // V8 shape: an extra jump into the loop (skipping reload code).
          uint32_t skip = NewLabel();
          PushJump(skip);
          BindLabel(skip);
        }
        BindLabel(UserLabel(op.label));
        return;
      }
      case VOp::K::kBr:
        PushJump(UserLabel(op.label));
        return;
      case VOp::K::kBrIf: {
        Gpr a = UseGpr(op.a, kScratch0);
        Push(MInstr::RR(MOp::kTest, a, a, 4));
        PushJcc(op.negate ? Cond::kE : Cond::kNe, UserLabel(op.label));
        return;
      }
      case VOp::K::kBrCmp: {
        Gpr a = UseGpr(op.a, kScratch0);
        Gpr b = UseGpr(op.b, kScratch1);
        Push(MInstr::RR(MOp::kCmp, a, b, op.width));
        PushJcc(op.cond, UserLabel(op.label));
        return;
      }
      case VOp::K::kCall:
        EmitCallCommon(op, false);
        return;
      case VOp::K::kCallInd:
        EmitCallCommon(op, true);
        return;
      case VOp::K::kMemSize: {
        MInstr call;
        call.op = MOp::kCallHost;
        call.func = kBuiltinMemorySize;
        Push(call);
        Gpr d = DefGpr(op.d, Gpr::kRax);
        if (alloc_.IsReg(op.d)) {
          Push(MInstr::RR(MOp::kMov, d, Gpr::kRax, 4));
        }
        StoreIfSpilled(op.d, Gpr::kRax);
        return;
      }
      case VOp::K::kMemGrow: {
        MInstr push_rdi;
        push_rdi.op = MOp::kPush;
        push_rdi.dst = Operand::R(Gpr::kRdi);
        Push(push_rdi);
        Gpr a = UseGpr(op.a, kScratch0);
        Push(MInstr::RR(MOp::kMov, Gpr::kRdi, a, 4));
        MInstr call;
        call.op = MOp::kCallHost;
        call.func = kBuiltinMemoryGrow;
        Push(call);
        MInstr pop_rdi;
        pop_rdi.op = MOp::kPop;
        pop_rdi.dst = Operand::R(Gpr::kRdi);
        Push(pop_rdi);
        Gpr d = DefGpr(op.d, Gpr::kRax);
        if (alloc_.IsReg(op.d)) {
          Push(MInstr::RR(MOp::kMov, d, Gpr::kRax, 4));
        }
        StoreIfSpilled(op.d, Gpr::kRax);
        return;
      }
      case VOp::K::kRet: {
        if (op.a != kNoVReg) {
          if (op.is_fp) {
            Xmm a = UseXmm(op.a, kFpScratch0);
            if (a != Xmm::kXmm0) {
              MInstr mv;
              mv.op = MOp::kMovsd;
              mv.dst = Operand::X(Xmm::kXmm0);
              mv.src = Operand::X(a);
              Push(mv);
            }
          } else {
            Gpr a = UseGpr(op.a, kScratch0);
            if (a != Gpr::kRax) {
              Push(MInstr::RR(MOp::kMov, Gpr::kRax, a, 8));
            }
          }
        }
        PushJump(epilogue_label_);
        return;
      }
      case VOp::K::kTrap: {
        MInstr call;
        call.op = MOp::kCallHost;
        call.func = kBuiltinTrapUnreachable;
        Push(call);
        return;
      }
    }
  }

  bool IsLoopHeader(uint32_t user_label) const {
    for (uint32_t h : vf_.loop_headers) {
      if (h == user_label) {
        return true;
      }
    }
    return false;
  }

  // User (VOp) labels and emission-internal labels share one space: user
  // label i maps to internal label i; internal labels start above them.
  uint32_t UserLabel(uint32_t label) { return label; }

  const VFunc& vf_;
  const Allocation& alloc_;
  const CodegenOptions& options_;
  const EmitEnv& env_;
  MFunction out_;
  uint32_t num_saved_ = 0;
  uint32_t frame_slots_ = 0;
  uint32_t next_label_;
  uint32_t epilogue_label_;
  std::unordered_map<uint32_t, uint32_t> label_pos_;
  std::vector<uint32_t> pending_;
  std::vector<std::pair<uint32_t, uint32_t>> trap_stubs_;

 public:
  void Init() {
    next_label_ = vf_.next_label;
    epilogue_label_ = NewLabel();
  }
};

}  // namespace

MFunction EmitFunction(const VFunc& vf, const Allocation& alloc, const CodegenOptions& options,
                       const EmitEnv& env) {
  Emitter e(vf, alloc, options, env);
  e.Init();
  return e.Run();
}

}  // namespace nsf
