#include "src/codegen/artifact.h"

#include "src/profile/profile.h"
#include "src/support/str.h"
#include "src/wasm/encoder.h"

namespace nsf {

CompiledArtifact BuildArtifact(const Module& module, const CodegenOptions& options,
                               uint64_t module_hash, uint64_t options_fingerprint) {
  CompiledArtifact artifact;
  artifact.module = module;
  artifact.module_hash = module_hash;
  artifact.options_fingerprint = options_fingerprint;
  artifact.profile_name = options.profile_name;
  // The tier tag mirrors Fingerprint()'s notion of an active profile: a
  // profile nothing consumes leaves the artifact baseline.
  bool pgo_active = options.profile != nullptr &&
                    (options.pgo_layout || options.pgo_rotate_hot_loops ||
                     options.devirtualize_monomorphic);
  if (pgo_active) {
    artifact.tier = CompileTier::kProfiled;
    std::vector<uint8_t> pbytes = options.profile->SerializeBinary();
    artifact.profile_fingerprint = Fnv1a(pbytes.data(), pbytes.size());
  }
  artifact.compiled = CompileModule(artifact.module, options);
  return artifact;
}

CompiledArtifact BuildArtifact(const Module& module, const CodegenOptions& options) {
  return BuildArtifact(module, options, HashModule(module), options.Fingerprint());
}

}  // namespace nsf
