// Emission of allocated IR into machine functions.
#ifndef SRC_CODEGEN_EMIT_H_
#define SRC_CODEGEN_EMIT_H_

#include <unordered_map>

#include "src/codegen/codegen.h"
#include "src/codegen/regalloc.h"
#include "src/machine/machine.h"

namespace nsf {

// Module-level facts the emitter needs.
struct EmitEnv {
  uint32_t table_size = 0;
  // Wasm type index -> signature id baked into the table image.
  std::unordered_map<uint32_t, uint32_t> sig_ids;
};

MFunction EmitFunction(const VFunc& vf, const Allocation& alloc, const CodegenOptions& options,
                       const EmitEnv& env);

}  // namespace nsf

#endif  // SRC_CODEGEN_EMIT_H_
