// Pipeline verifiers. See verify.h for what each one guarantees.
//
// Both verifiers share the same skeleton: structural checks first (indices,
// labels, operand shapes — anything checkable per-instruction), then a
// forward dataflow with INTERSECTION meet over predecessors, so "defined"
// means defined on every path from entry. Unreachable blocks start from the
// top element (everything defined) and therefore never produce false
// positives; real engines' verifiers (LLVM's MachineVerifier) make the same
// choice.
#include "src/codegen/verify.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/support/str.h"
#include "src/wasm/types.h"
#include "src/x64/regs.h"

namespace nsf {

namespace {

// ---------------------------------------------------------------------------
// Shared CFG machinery
// ---------------------------------------------------------------------------

// Basic blocks as [begin, end) instruction ranges with at most two successors
// (fallthrough + branch target). Works for both IRs here: each has a single
// conditional-branch shape and no indirect branches.
struct Block {
  size_t begin = 0;
  size_t end = 0;
  int succ[2] = {-1, -1};
  int nsucc = 0;
};

// Splits [0, n) into blocks. `is_leader[i]` marks instruction i as a block
// start (entry, label/branch targets, fall-past-terminator points).
std::vector<Block> BuildBlocks(const std::vector<bool>& is_leader, size_t n) {
  std::vector<Block> blocks;
  for (size_t i = 0; i < n; i++) {
    if (i == 0 || is_leader[i]) {
      blocks.push_back(Block{i, i + 1, {-1, -1}, 0});
    } else {
      blocks.back().end = i + 1;
    }
  }
  return blocks;
}

int BlockOf(const std::vector<Block>& blocks, size_t instr) {
  // Blocks are sorted and disjoint; binary search by begin.
  size_t lo = 0;
  size_t hi = blocks.size();
  while (lo + 1 < hi) {
    size_t mid = (lo + hi) / 2;
    if (blocks[mid].begin <= instr) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return static_cast<int>(lo);
}

// ---------------------------------------------------------------------------
// IR verifier
// ---------------------------------------------------------------------------

bool IsIrBranch(const VOp& op) {
  return op.k == VOp::K::kBr || op.k == VOp::K::kBrIf || op.k == VOp::K::kBrCmp;
}

bool IsIrTerminator(const VOp& op) {
  return IsIrBranch(op) || op.k == VOp::K::kRet || op.k == VOp::K::kTrap;
}

// Growable bitset for vreg dataflow (functions can have thousands of vregs).
class VRegSet {
 public:
  explicit VRegSet(size_t n, bool all) : words_((n + 63) / 64, all ? ~0ull : 0) {}
  void Set(size_t i) { words_[i >> 6] |= 1ull << (i & 63); }
  bool Get(size_t i) const { return (words_[i >> 6] >> (i & 63)) & 1; }
  void IntersectWith(const VRegSet& o) {
    for (size_t i = 0; i < words_.size(); i++) {
      words_[i] &= o.words_[i];
    }
  }
  bool operator==(const VRegSet& o) const { return words_ == o.words_; }

 private:
  std::vector<uint64_t> words_;
};

// Looks up the signature of joint function index `func`, or null with *err.
const FuncType* SigOfFunc(const Module& module, uint32_t func, std::string* err) {
  if (func >= module.NumTotalFuncs()) {
    *err = StrFormat("call target f%u out of range (%u functions)", func, module.NumTotalFuncs());
    return nullptr;
  }
  uint32_t type_index = module.IsImportedFunc(func) ? module.FuncImportOf(func).type_index
                                                    : module.DefinedFunc(func).type_index;
  if (type_index >= module.types.size()) {
    *err = StrFormat("call target f%u has type index %u out of range", func, type_index);
    return nullptr;
  }
  return &module.types[type_index];
}

// Class/width/signature consistency for one op. Returns "" when consistent.
// kUn and kGlobalGet/kGlobalSet value classes are intentionally unchecked:
// conversions legitimately mix classes and globals are raw 64-bit slots.
std::string CheckOpClasses(const VFunc& vf, const VOp& op, const Module& module) {
  auto fp = [&vf](uint32_t v) { return vf.vregs[v].is_fp; };
  auto want_int = [&](uint32_t v, const char* what) -> std::string {
    if (v != kNoVReg && fp(v)) {
      return StrFormat("%s v%u must be int-class, is fp", what, v);
    }
    return "";
  };
  auto want_class = [&](uint32_t v, bool want_fp, const char* what) -> std::string {
    if (v != kNoVReg && fp(v) != want_fp) {
      return StrFormat("%s v%u is %s-class, expected %s", what, v, fp(v) ? "fp" : "int",
                       want_fp ? "fp" : "int");
    }
    return "";
  };
  auto check_sig = [&](const FuncType& sig) -> std::string {
    if (op.args.size() != sig.params.size()) {
      return StrFormat("call passes %zu args, signature wants %zu params", op.args.size(),
                       sig.params.size());
    }
    for (size_t a = 0; a < op.args.size(); a++) {
      std::string e = want_class(op.args[a], IsFloat(sig.params[a]),
                                 StrFormat("call arg #%zu", a).c_str());
      if (!e.empty()) {
        return e;
      }
    }
    if (op.d != kNoVReg) {
      if (sig.results.empty()) {
        return StrFormat("call defines v%u but the signature has no result", op.d);
      }
      return want_class(op.d, IsFloat(sig.results[0]), "call result");
    }
    return "";
  };

  switch (op.k) {
    case VOp::K::kParam:
      if (op.imm >= vf.num_params) {
        return StrFormat("param index %llu out of range (%u params)",
                         static_cast<unsigned long long>(op.imm), vf.num_params);
      }
      return "";
    case VOp::K::kConst:
      return want_class(op.d, false, "const result");
    case VOp::K::kConstF:
      return want_class(op.d, true, "constf result");
    case VOp::K::kMove:
      if (fp(op.d) != fp(op.a)) {
        return StrFormat("move mixes classes: v%u is %s, v%u is %s", op.d,
                         fp(op.d) ? "fp" : "int", op.a, fp(op.a) ? "fp" : "int");
      }
      return want_class(op.d, op.is_fp, "move (op.is_fp disagrees with)");
    case VOp::K::kBin: {
      std::string e = want_class(op.d, op.is_fp, "bin result");
      if (e.empty()) e = want_class(op.a, op.is_fp, "bin lhs");
      if (e.empty()) e = want_class(op.b, op.is_fp, "bin rhs");
      return e;
    }
    case VOp::K::kCmp: {
      std::string e = want_int(op.d, "cmp result");
      if (e.empty()) e = want_class(op.a, op.is_fp, "cmp lhs");
      if (e.empty()) e = want_class(op.b, op.is_fp, "cmp rhs");
      return e;
    }
    case VOp::K::kSelect: {
      std::string e = want_int(op.c, "select condition");
      if (e.empty() && (fp(op.d) != fp(op.a) || fp(op.d) != fp(op.b))) {
        e = StrFormat("select mixes classes: d v%u=%s a v%u=%s b v%u=%s", op.d,
                      fp(op.d) ? "fp" : "int", op.a, fp(op.a) ? "fp" : "int", op.b,
                      fp(op.b) ? "fp" : "int");
      }
      return e;
    }
    case VOp::K::kLoad: {
      std::string e = want_class(op.d, op.is_fp, "load result");
      if (e.empty()) e = want_int(op.a, "load base");
      if (e.empty() && op.fuse_scale != 0) e = want_int(op.b, "load index");
      if (e.empty() && op.width != 1 && op.width != 2 && op.width != 4 && op.width != 8) {
        e = StrFormat("load width %u invalid", op.width);
      }
      if (e.empty() && op.is_fp && op.width < 4) {
        e = StrFormat("fp load width %u invalid", op.width);
      }
      return e;
    }
    case VOp::K::kStore: {
      std::string e = want_class(op.b, op.is_fp, "store value");
      if (e.empty()) e = want_int(op.a, "store base");
      if (e.empty() && op.fuse_scale != 0) e = want_int(op.c, "store index");
      if (e.empty() && op.width != 1 && op.width != 2 && op.width != 4 && op.width != 8) {
        e = StrFormat("store width %u invalid", op.width);
      }
      if (e.empty() && op.alu_op != Opcode::kNop && op.is_fp) {
        e = "register-memory ALU store must be int-class";
      }
      return e;
    }
    case VOp::K::kGlobalGet:
    case VOp::K::kGlobalSet:
      if (op.imm > module.NumTotalGlobals()) {  // slot space is [0, globals]
        return StrFormat("global slot %llu out of range (%u wasm globals + stack limit)",
                         static_cast<unsigned long long>(op.imm), module.NumTotalGlobals());
      }
      return "";
    case VOp::K::kBrIf:
      return want_int(op.a, "br_if condition");
    case VOp::K::kBrCmp: {
      std::string e = want_class(op.a, op.is_fp, "br_cmp lhs");
      if (e.empty()) e = want_class(op.b, op.is_fp, "br_cmp rhs");
      return e;
    }
    case VOp::K::kCall: {
      std::string e;
      const FuncType* sig = SigOfFunc(module, op.func, &e);
      return sig == nullptr ? e : check_sig(*sig);
    }
    case VOp::K::kCallInd: {
      if (op.sig >= module.types.size()) {
        return StrFormat("call_indirect signature %u out of range (%zu types)", op.sig,
                         module.types.size());
      }
      std::string e = want_int(op.a, "call_indirect table index");
      return e.empty() ? check_sig(module.types[op.sig]) : e;
    }
    case VOp::K::kMemSize:
      return want_int(op.d, "memory.size result");
    case VOp::K::kMemGrow: {
      std::string e = want_int(op.d, "memory.grow result");
      return e.empty() ? want_int(op.a, "memory.grow pages") : e;
    }
    case VOp::K::kRet:
      if (op.a != kNoVReg) {
        if (!vf.has_ret) {
          return StrFormat("ret v%u in a function with no result", op.a);
        }
        return want_class(op.a, vf.ret_fp, "ret value");
      }
      return "";
    case VOp::K::kUn:
    case VOp::K::kLabel:
    case VOp::K::kBr:
    case VOp::K::kTrap:
      return "";
  }
  return "";
}

}  // namespace

std::string VerifyIR(const VFunc& vf, const Module& module) {
  const std::vector<VOp>& ops = vf.ops;
  const size_t n = ops.size();
  const size_t nv = vf.vregs.size();
  auto at = [&](size_t i, const std::string& msg) {
    return StrFormat("func '%s' (wasm #%u) op #%zu [%s]: %s", vf.name.c_str(), vf.wasm_index, i,
                     VOpToString(ops[i]).c_str(), msg.c_str());
  };

  for (size_t v = 0; v < nv; v++) {
    if (vf.vregs[v].width != 4 && vf.vregs[v].width != 8) {
      return StrFormat("func '%s' (wasm #%u): vreg v%zu has width %u (want 4 or 8)",
                       vf.name.c_str(), vf.wasm_index, v, vf.vregs[v].width);
    }
  }

  // Structural pass: vreg ids in range, labels unique and in range.
  std::unordered_map<uint32_t, size_t> label_at;
  for (size_t i = 0; i < n; i++) {
    const VOp& op = ops[i];
    uint32_t d = DefOf(op);
    if (d != kNoVReg && d >= nv) {
      return at(i, StrFormat("defines out-of-range vreg v%u (%zu vregs)", d, nv));
    }
    std::string bad;
    ForEachUse(op, [&bad, nv](uint32_t v) {
      if (bad.empty() && v >= nv) {
        bad = StrFormat("uses out-of-range vreg v%u (%zu vregs)", v, nv);
      }
    });
    if (!bad.empty()) {
      return at(i, bad);
    }
    if (op.k == VOp::K::kLabel) {
      if (op.label >= vf.next_label) {
        return at(i, StrFormat("label L%u >= next_label %u", op.label, vf.next_label));
      }
      auto inserted = label_at.emplace(op.label, i);
      if (!inserted.second) {
        return at(i, StrFormat("duplicate label L%u (first bound at op #%zu)", op.label,
                               inserted.first->second));
      }
    }
  }
  for (size_t i = 0; i < n; i++) {
    if (IsIrBranch(ops[i]) && label_at.find(ops[i].label) == label_at.end()) {
      return at(i, StrFormat("branch to undefined label L%u", ops[i].label));
    }
  }

  // Class / width / signature consistency.
  for (size_t i = 0; i < n; i++) {
    std::string e = CheckOpClasses(vf, ops[i], module);
    if (!e.empty()) {
      return at(i, e);
    }
  }

  // Forward def-before-use dataflow over vregs.
  std::vector<bool> leader(n, false);
  for (size_t i = 0; i < n; i++) {
    if (ops[i].k == VOp::K::kLabel) {
      leader[i] = true;
    }
    if (IsIrTerminator(ops[i]) && i + 1 < n) {
      leader[i + 1] = true;
    }
  }
  std::vector<Block> blocks = BuildBlocks(leader, n);
  if (blocks.empty()) {
    return "";
  }
  for (size_t b = 0; b < blocks.size(); b++) {
    Block& blk = blocks[b];
    const VOp& last = ops[blk.end - 1];
    if (IsIrBranch(last)) {
      blk.succ[blk.nsucc++] = BlockOf(blocks, label_at[last.label]);
    }
    bool falls = last.k != VOp::K::kBr && last.k != VOp::K::kRet && last.k != VOp::K::kTrap;
    if (falls && blk.end < n) {
      blk.succ[blk.nsucc++] = static_cast<int>(b) + 1;
    }
  }
  std::vector<std::vector<int>> preds(blocks.size());
  for (size_t b = 0; b < blocks.size(); b++) {
    for (int s = 0; s < blocks[b].nsucc; s++) {
      preds[blocks[b].succ[s]].push_back(static_cast<int>(b));
    }
  }

  auto block_in = [&](size_t b, const std::vector<VRegSet>& outs) {
    // Entry meets a virtual empty predecessor (nothing defined at entry);
    // unreachable blocks keep the top element and never report.
    VRegSet in(nv, b != 0);
    if (b != 0) {
      bool first = true;
      for (int p : preds[b]) {
        if (first) {
          in = outs[p];
          first = false;
        } else {
          in.IntersectWith(outs[p]);
        }
      }
    } else {
      // still meet real predecessors (a loop back to op #0): intersection
      // with the empty entry set stays empty, which is exactly right.
    }
    return in;
  };

  std::vector<VRegSet> outs(blocks.size(), VRegSet(nv, true));
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t b = 0; b < blocks.size(); b++) {
      VRegSet cur = block_in(b, outs);
      for (size_t i = blocks[b].begin; i < blocks[b].end; i++) {
        uint32_t d = DefOf(ops[i]);
        if (d != kNoVReg) {
          cur.Set(d);
        }
      }
      if (!(cur == outs[b])) {
        outs[b] = cur;
        changed = true;
      }
    }
  }
  for (size_t b = 0; b < blocks.size(); b++) {
    VRegSet cur = block_in(b, outs);
    for (size_t i = blocks[b].begin; i < blocks[b].end; i++) {
      uint32_t bad_use = kNoVReg;
      ForEachUse(ops[i], [&bad_use, &cur](uint32_t v) {
        if (bad_use == kNoVReg && !cur.Get(v)) {
          bad_use = v;
        }
      });
      if (bad_use != kNoVReg) {
        return at(i, StrFormat("use of v%u before definition (not defined on every path "
                               "reaching this op)",
                               bad_use));
      }
      uint32_t d = DefOf(ops[i]);
      if (d != kNoVReg) {
        cur.Set(d);
      }
    }
  }
  return "";
}

// ---------------------------------------------------------------------------
// MProgram verifier
// ---------------------------------------------------------------------------

namespace {

// Register-state mask for the machine dataflow: one bit per GPR, one per XMM,
// plus a "compare state live" bit. Fits a uint64_t.
constexpr int kXmmBase = kNumGprs;
constexpr int kFlagsBit = kXmmBase + kNumXmms;
inline uint64_t GprMask(Gpr g) { return 1ull << static_cast<int>(g); }
inline uint64_t XmmMask(Xmm x) { return 1ull << (kXmmBase + static_cast<int>(x)); }
constexpr uint64_t kFlagsMask = 1ull << kFlagsBit;

// Registers the machine initializes before entering ANY function
// (SimMachine::Run/RunAt): the stack pointer, both heap-base conventions
// (rbx for the V8-profile codegen, r15 for the SpiderMonkey profile), and
// the six entry argument registers. Everything else must be defined before
// it is read — modulo the callee-save allowance below.
constexpr uint64_t kEntryLive =
    (1ull << static_cast<int>(Gpr::kRsp)) | (1ull << static_cast<int>(Gpr::kRbx)) |
    (1ull << static_cast<int>(Gpr::kR15)) | (1ull << static_cast<int>(Gpr::kRdi)) |
    (1ull << static_cast<int>(Gpr::kRsi)) | (1ull << static_cast<int>(Gpr::kRdx)) |
    (1ull << static_cast<int>(Gpr::kRcx)) | (1ull << static_cast<int>(Gpr::kR8)) |
    (1ull << static_cast<int>(Gpr::kR9));

// Scratch registers the emitter never allocates; a call may clobber them
// (callees use them freely and do not save them), so they die at calls —
// along with the compare state, which no emitted code carries across a call.
constexpr uint64_t kCallClobbered =
    (1ull << static_cast<int>(Gpr::kR10)) | (1ull << static_cast<int>(Gpr::kR11)) |
    (1ull << (kXmmBase + static_cast<int>(Xmm::kXmm14))) |
    (1ull << (kXmmBase + static_cast<int>(Xmm::kXmm15))) | kFlagsMask;

bool IsRmwOp(MOp op) {
  switch (op) {
    case MOp::kAdd:
    case MOp::kSub:
    case MOp::kImul:
    case MOp::kAnd:
    case MOp::kOr:
    case MOp::kXor:
    case MOp::kNeg:
    case MOp::kNot:
    case MOp::kShl:
    case MOp::kShr:
    case MOp::kSar:
    case MOp::kRol:
    case MOp::kRor:
    case MOp::kAddsd:
    case MOp::kSubsd:
    case MOp::kMulsd:
    case MOp::kDivsd:
    case MOp::kMinsd:
    case MOp::kMaxsd:
    case MOp::kAndpd:
    case MOp::kXorpd:
    case MOp::kOrpd:
    case MOp::kAddss:
    case MOp::kSubss:
    case MOp::kMulss:
    case MOp::kDivss:
    case MOp::kMinss:
    case MOp::kMaxss:
      return true;
    default:
      return false;
  }
}

// Pure dst <- f(src) shapes: dst is written without being read.
bool IsPureDefOp(MOp op) {
  switch (op) {
    case MOp::kMov:
    case MOp::kMovImm64:
    case MOp::kLoad:
    case MOp::kStore:  // dst is the memory operand; handled as a store
    case MOp::kLea:
    case MOp::kLzcnt:
    case MOp::kTzcnt:
    case MOp::kPopcnt:
    case MOp::kMovsxd:
    case MOp::kMovsd:
    case MOp::kMovss:
    case MOp::kSqrtsd:
    case MOp::kSqrtss:
    case MOp::kCvtsi2sd:
    case MOp::kCvtsi2ss:
    case MOp::kCvttsd2si:
    case MOp::kCvttss2si:
    case MOp::kCvtss2sd:
    case MOp::kCvtsd2ss:
    case MOp::kRoundsd:
    case MOp::kRoundss:
    case MOp::kMovqToXmm:
    case MOp::kMovqFromXmm:
      return true;
    default:
      return false;
  }
}

// One instruction's effect on the defined-register mask. When `report` is
// set, reads of undefined registers produce a diagnostic in *err (first one
// wins); the fixpoint iteration runs with report=false because only the def
// side matters for convergence.
void StepMachineInstr(const MInstr& in, uint64_t* live, bool report, std::string* err) {
  auto fail = [&](const std::string& msg) {
    if (report && err->empty()) {
      *err = msg;
    }
  };
  auto read_gpr = [&](Gpr g) {
    if ((*live & GprMask(g)) == 0) {
      fail(StrFormat("reads %s before any definition on this path", GprName(g)));
    }
  };
  auto read_xmm = [&](Xmm x) {
    if ((*live & XmmMask(x)) == 0) {
      fail(StrFormat("reads %s before any definition on this path", XmmName(x)));
    }
  };
  auto read_mem = [&](const MemRef& m) {
    if (m.base.has_value()) {
      read_gpr(*m.base);
    }
    if (m.index.has_value()) {
      read_gpr(*m.index);
    }
  };
  auto read_op = [&](const Operand& o) {
    switch (o.kind) {
      case OperandKind::kGpr:
        read_gpr(o.gpr);
        break;
      case OperandKind::kXmm:
        read_xmm(o.xmm);
        break;
      case OperandKind::kMem:
        read_mem(o.mem);
        break;
      case OperandKind::kImm:
      case OperandKind::kNone:
        break;
    }
  };
  auto def_op = [&](const Operand& o) {
    if (o.kind == OperandKind::kGpr) {
      *live |= GprMask(o.gpr);
    } else if (o.kind == OperandKind::kXmm) {
      *live |= XmmMask(o.xmm);
    }
  };
  auto read_flags = [&](const char* what) {
    if ((*live & kFlagsMask) == 0) {
      fail(StrFormat("%s with no compare state produced on this path", what));
    }
  };
  auto call_effects = [&]() {
    *live &= ~kCallClobbered;
    *live |= GprMask(Gpr::kRax) | XmmMask(Xmm::kXmm0);
  };
  // The prologue's callee-saves (and the import stubs' pushes) legitimately
  // read registers that still hold the CALLER's values: a push, or a
  // register store into the frame's save area, is a save — the source needs
  // no prior definition.
  auto is_frame_save = [&]() {
    return in.dst.is_mem() && in.dst.mem.base.has_value() && *in.dst.mem.base == Gpr::kRbp &&
           in.dst.mem.disp < 0 && (in.src.is_reg() || in.src.is_xmm());
  };

  switch (in.op) {
    case MOp::kPush:
      return;  // a save: the pushed register needs no prior definition
    case MOp::kPop:
      def_op(in.dst);
      return;
    case MOp::kXchg:
      read_op(in.dst);
      read_op(in.src);
      return;
    case MOp::kCmp:
    case MOp::kTest:
    case MOp::kUcomisd:
    case MOp::kUcomiss:
      read_op(in.dst);
      read_op(in.src);
      *live |= kFlagsMask;
      return;
    case MOp::kSetcc:
      read_flags("setcc");
      def_op(in.dst);
      return;
    case MOp::kJcc:
      read_flags("jcc");
      return;
    case MOp::kJmp:
    case MOp::kRet:
    case MOp::kNop:
      return;
    case MOp::kCdq:
      read_gpr(Gpr::kRax);
      *live |= GprMask(Gpr::kRdx);
      return;
    case MOp::kIdiv:
    case MOp::kDiv:
      read_gpr(Gpr::kRax);
      read_gpr(Gpr::kRdx);
      read_op(in.dst);
      read_op(in.src);
      *live |= GprMask(Gpr::kRax) | GprMask(Gpr::kRdx);
      return;
    case MOp::kCall:
    case MOp::kCallHost:
      call_effects();
      return;
    case MOp::kCallReg:
      read_op(in.dst);
      call_effects();
      return;
    default:
      break;
  }

  if (IsRmwOp(in.op)) {
    // xor r, r / xorpd x, x zero an undefined register by idiom: def only.
    bool zero_idiom =
        (in.op == MOp::kXor && in.dst.is_reg() && in.src.is_reg() && in.dst.gpr == in.src.gpr) ||
        (in.op == MOp::kXorpd && in.dst.is_xmm() && in.src.is_xmm() && in.dst.xmm == in.src.xmm);
    if (!zero_idiom) {
      read_op(in.dst);
      read_op(in.src);
      read_op(in.src2);  // shift counts in rcx
    }
    if (in.dst.is_mem()) {
      read_mem(in.dst.mem);
    } else {
      def_op(in.dst);
    }
    return;
  }
  if (IsPureDefOp(in.op)) {
    if (in.dst.is_mem()) {
      read_mem(in.dst.mem);
      if (!is_frame_save()) {
        read_op(in.src);
      }
    } else {
      read_op(in.src);
      read_op(in.src2);
      def_op(in.dst);
    }
    return;
  }
  // Any MOp not classified above gets no dataflow modeling; structural
  // checks still apply. (Currently unreachable: the switch + classes cover
  // the whole enum.)
}

}  // namespace

std::string VerifyMachineFunction(const MProgram& prog, size_t func_index) {
  const MFunction& f = prog.funcs[func_index];
  const std::vector<MInstr>& code = f.code;
  const size_t n = code.size();
  auto at = [&](size_t i, const std::string& msg) {
    return StrFormat("machine func '%s' (#%zu) instr #%zu [%s]: %s", f.name.c_str(), func_index,
                     i, MInstrToString(code[i]).c_str(), msg.c_str());
  };

  // Structural pass: branch/call targets and rbp frame discipline.
  for (size_t i = 0; i < n; i++) {
    const MInstr& in = code[i];
    if ((in.op == MOp::kJmp || in.op == MOp::kJcc) && in.label >= n) {
      return at(i, StrFormat("branch target %u out of range (%zu instructions)", in.label, n));
    }
    if (in.op == MOp::kCall && in.func >= prog.funcs.size()) {
      return at(i, StrFormat("call target f%u out of range (%zu functions)", in.func,
                             prog.funcs.size()));
    }
    const Operand* operands[] = {&in.dst, &in.src, &in.src2};
    for (const Operand* o : operands) {
      if (!o->is_mem() || !o->mem.base.has_value() || *o->mem.base != Gpr::kRbp) {
        continue;
      }
      const MemRef& m = o->mem;
      if (m.index.has_value()) {
        return at(i, "indexed rbp addressing (frame accesses are [rbp + disp] only)");
      }
      if (m.disp % 8 != 0) {
        return at(i, StrFormat("misaligned frame access [rbp%+d]", m.disp));
      }
      if (m.disp < 0) {
        if (-(static_cast<int64_t>(m.disp)) / 8 > f.frame_slots) {
          return at(i, StrFormat("frame access [rbp%+d] outside the %u-slot frame", m.disp,
                                 f.frame_slots));
        }
      } else if (m.disp < 16) {
        return at(i, StrFormat("frame access [rbp%+d] hits the saved-rbp/return slots", m.disp));
      }
    }
  }
  if (n == 0) {
    return "";
  }

  // Register + compare-state def-before-use dataflow.
  std::vector<bool> leader(n, false);
  for (size_t i = 0; i < n; i++) {
    const MInstr& in = code[i];
    if (in.op == MOp::kJmp || in.op == MOp::kJcc) {
      leader[in.label] = true;
      if (i + 1 < n) {
        leader[i + 1] = true;
      }
    } else if (in.op == MOp::kRet && i + 1 < n) {
      leader[i + 1] = true;
    }
  }
  std::vector<Block> blocks = BuildBlocks(leader, n);
  for (size_t b = 0; b < blocks.size(); b++) {
    Block& blk = blocks[b];
    const MInstr& last = code[blk.end - 1];
    if (last.op == MOp::kJmp || last.op == MOp::kJcc) {
      blk.succ[blk.nsucc++] = BlockOf(blocks, last.label);
    }
    if (last.op != MOp::kJmp && last.op != MOp::kRet && blk.end < n) {
      blk.succ[blk.nsucc++] = static_cast<int>(b) + 1;
    }
  }
  std::vector<std::vector<int>> preds(blocks.size());
  for (size_t b = 0; b < blocks.size(); b++) {
    for (int s = 0; s < blocks[b].nsucc; s++) {
      preds[blocks[b].succ[s]].push_back(static_cast<int>(b));
    }
  }
  constexpr uint64_t kAll = ~0ull;
  auto block_in = [&](size_t b, const std::vector<uint64_t>& outs) -> uint64_t {
    uint64_t in = b == 0 ? kEntryLive : kAll;
    for (int p : preds[b]) {
      in &= outs[p];
    }
    return b == 0 ? (in & kEntryLive) | kEntryLive : in;  // entry regs always live at entry
  };
  std::vector<uint64_t> outs(blocks.size(), kAll);
  bool changed = true;
  std::string unused;
  while (changed) {
    changed = false;
    for (size_t b = 0; b < blocks.size(); b++) {
      uint64_t cur = block_in(b, outs);
      for (size_t i = blocks[b].begin; i < blocks[b].end; i++) {
        StepMachineInstr(code[i], &cur, /*report=*/false, &unused);
      }
      if (cur != outs[b]) {
        outs[b] = cur;
        changed = true;
      }
    }
  }
  for (size_t b = 0; b < blocks.size(); b++) {
    uint64_t cur = block_in(b, outs);
    for (size_t i = blocks[b].begin; i < blocks[b].end; i++) {
      std::string err;
      StepMachineInstr(code[i], &cur, /*report=*/true, &err);
      if (!err.empty()) {
        return at(i, err);
      }
    }
  }
  return "";
}

std::string VerifyMachine(const MProgram& prog) {
  if (!prog.layout_order.empty()) {
    if (prog.layout_order.size() != prog.funcs.size()) {
      return StrFormat("layout_order has %zu entries for %zu functions",
                       prog.layout_order.size(), prog.funcs.size());
    }
    std::vector<bool> seen(prog.funcs.size(), false);
    for (uint32_t v : prog.layout_order) {
      if (v >= prog.funcs.size() || seen[v]) {
        return StrFormat("layout_order is not a permutation of [0, %zu): entry %u %s",
                         prog.funcs.size(), v, v >= prog.funcs.size() ? "out of range" : "repeated");
      }
      seen[v] = true;
    }
  }
  if (!prog.funcs.empty() && prog.entry_func >= prog.funcs.size()) {
    return StrFormat("entry_func %u out of range (%zu functions)", prog.entry_func,
                     prog.funcs.size());
  }
  for (size_t t = 0; t < prog.table.size(); t++) {
    const MProgram::TableEntry& e = prog.table[t];
    if (e.func_index != UINT32_MAX && e.func_index >= prog.funcs.size()) {
      return StrFormat("table[%zu] targets f%u out of range (%zu functions)", t, e.func_index,
                       prog.funcs.size());
    }
    if (e.func_index != UINT32_MAX && e.sig_id == UINT32_MAX) {
      return StrFormat("table[%zu] has a target f%u but a null signature", t, e.func_index);
    }
  }
  for (const auto& gi : prog.global_inits) {
    if (gi.first >= prog.num_globals) {
      return StrFormat("global init slot %u out of range (%u slots)", gi.first,
                       prog.num_globals);
    }
  }
  const uint64_t memory_bytes = static_cast<uint64_t>(prog.memory_pages) * 65536;
  for (const auto& seg : prog.data_segments) {
    if (static_cast<uint64_t>(seg.first) + seg.second.size() > memory_bytes) {
      return StrFormat("data segment [%u, %u+%zu) outside initial memory (%llu bytes)",
                       seg.first, seg.first, seg.second.size(),
                       static_cast<unsigned long long>(memory_bytes));
    }
  }
  for (size_t i = 0; i < prog.funcs.size(); i++) {
    std::string e = VerifyMachineFunction(prog, i);
    if (!e.empty()) {
      return e;
    }
  }
  return "";
}

}  // namespace nsf
