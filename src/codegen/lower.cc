// Lowering: abstract interpretation of the Wasm operand stack into VOps.
#include <cassert>

#include "src/codegen/codegen.h"

namespace nsf {

namespace {

struct BlockCtx {
  Opcode op = Opcode::kBlock;      // kBlock / kLoop / kIf
  uint32_t br_label = 0;           // where a branch to this label jumps
  uint32_t end_label = 0;          // label at end; loops: structural only
  uint32_t result_vreg = kNoVReg;  // kNoVReg when void
  bool result_fp = false;
  uint8_t result_width = 4;
  size_t stack_base = 0;           // operand stack height at entry
  bool after_else = false;
};

struct ValEntry {
  uint32_t vreg;
};

class Lowerer {
 public:
  Lowerer(const Module& module, uint32_t defined_index, const CodegenOptions& options)
      : module_(module),
        func_(module.functions[defined_index]),
        type_(module.types[func_.type_index]),
        options_(options) {
    vf_.wasm_index = module.NumImportedFuncs() + defined_index;
    vf_.name = func_.debug_name.empty()
                   ? "f" + std::to_string(vf_.wasm_index)
                   : func_.debug_name;
    vf_.num_params = static_cast<uint32_t>(type_.params.size());
    vf_.has_ret = !type_.results.empty();
    if (vf_.has_ret) {
      vf_.ret_fp = IsFloat(type_.results[0]);
    }
  }

  VFunc Run() {
    // Materialize params + locals as dedicated vregs.
    for (size_t i = 0; i < type_.params.size(); i++) {
      uint32_t v = NewForType(type_.params[i]);
      locals_.push_back(v);
      VOp op;
      op.k = VOp::K::kParam;
      op.d = v;
      op.imm = i;
      op.width = vf_.vregs[v].width;
      op.is_fp = vf_.vregs[v].is_fp;
      vf_.ops.push_back(op);
    }
    for (ValType t : func_.locals) {
      uint32_t v = NewForType(t);
      locals_.push_back(v);
      // Zero-initialize (Wasm semantics).
      VOp op;
      if (IsFloat(t)) {
        op.k = VOp::K::kConstF;
        op.is_fp = true;
      } else {
        op.k = VOp::K::kConst;
      }
      op.d = v;
      op.imm = 0;
      op.width = vf_.vregs[v].width;
      vf_.ops.push_back(op);
    }
    // Implicit function block.
    BlockCtx fb;
    fb.op = Opcode::kBlock;
    fb.end_label = vf_.NewLabel();
    fb.br_label = fb.end_label;
    fb.result_vreg = vf_.has_ret ? NewForType(type_.results[0]) : kNoVReg;
    fb.result_fp = vf_.has_ret && vf_.ret_fp;
    fb.result_width = vf_.has_ret ? WidthOf(type_.results[0]) : 4;
    blocks_.push_back(fb);

    for (size_t pc = 0; pc < func_.body.size(); pc++) {
      LowerInstr(func_.body[pc]);
      if (blocks_.empty()) {
        break;  // final end consumed
      }
    }
    return std::move(vf_);
  }

 private:
  static uint8_t WidthOf(ValType t) { return Is64Bit(t) ? 8 : 4; }

  uint32_t NewForType(ValType t) { return vf_.NewVReg(IsFloat(t), WidthOf(t)); }

  void Push(uint32_t vreg) { stack_.push_back(ValEntry{vreg}); }

  uint32_t Pop() {
    size_t base = blocks_.empty() ? 0 : blocks_.back().stack_base;
    if (stack_.empty() || stack_.size() <= base) {
      // Unreachable-code filler: produce a dummy vreg.
      return vf_.NewVReg(false, 4);
    }
    uint32_t v = stack_.back().vreg;
    stack_.pop_back();
    return v;
  }

  VOp& Emit(VOp op) {
    vf_.ops.push_back(std::move(op));
    return vf_.ops.back();
  }

  void EmitLabel(uint32_t label) {
    VOp op;
    op.k = VOp::K::kLabel;
    op.label = label;
    Emit(op);
  }

  void EmitBr(uint32_t label) {
    VOp op;
    op.k = VOp::K::kBr;
    op.label = label;
    Emit(op);
  }

  // Emits the value move a branch to `target` must perform (block results).
  void EmitBranchValueMove(const BlockCtx& target) {
    if (target.op != Opcode::kLoop && target.result_vreg != kNoVReg) {
      // Peek (not pop): conditional branches fall through keeping the value.
      uint32_t src = stack_.empty() ? vf_.NewVReg(target.result_fp, target.result_width)
                                    : stack_.back().vreg;
      VOp mv;
      mv.k = VOp::K::kMove;
      mv.d = target.result_vreg;
      mv.a = src;
      mv.is_fp = target.result_fp;
      mv.width = target.result_width;
      Emit(mv);
    }
  }

  BlockCtx& BlockAt(uint32_t depth) { return blocks_[blocks_.size() - 1 - depth]; }

  uint32_t UnOut(Opcode op) {
    // Result class/width of a unary op.
    switch (op) {
      case Opcode::kI32Eqz:
      case Opcode::kI64Eqz:
      case Opcode::kI32Clz:
      case Opcode::kI32Ctz:
      case Opcode::kI32Popcnt:
      case Opcode::kI32WrapI64:
      case Opcode::kI32TruncF32S:
      case Opcode::kI32TruncF32U:
      case Opcode::kI32TruncF64S:
      case Opcode::kI32TruncF64U:
      case Opcode::kI32ReinterpretF32:
        return vf_.NewVReg(false, 4);
      case Opcode::kI64Clz:
      case Opcode::kI64Ctz:
      case Opcode::kI64Popcnt:
      case Opcode::kI64ExtendI32S:
      case Opcode::kI64ExtendI32U:
      case Opcode::kI64TruncF32S:
      case Opcode::kI64TruncF32U:
      case Opcode::kI64TruncF64S:
      case Opcode::kI64TruncF64U:
      case Opcode::kI64ReinterpretF64:
        return vf_.NewVReg(false, 8);
      case Opcode::kF32Abs:
      case Opcode::kF32Neg:
      case Opcode::kF32Ceil:
      case Opcode::kF32Floor:
      case Opcode::kF32Trunc:
      case Opcode::kF32Nearest:
      case Opcode::kF32Sqrt:
      case Opcode::kF32ConvertI32S:
      case Opcode::kF32ConvertI32U:
      case Opcode::kF32ConvertI64S:
      case Opcode::kF32ConvertI64U:
      case Opcode::kF32DemoteF64:
      case Opcode::kF32ReinterpretI32:
        return vf_.NewVReg(true, 4);
      default:
        return vf_.NewVReg(true, 8);
    }
  }

  void LowerCompare(Cond cond, bool is_fp, uint8_t width, bool swap = false) {
    uint32_t b = Pop();
    uint32_t a = Pop();
    if (swap) {
      std::swap(a, b);
    }
    uint32_t d = vf_.NewVReg(false, 4);
    VOp op;
    op.k = VOp::K::kCmp;
    op.d = d;
    op.a = a;
    op.b = b;
    op.cond = cond;
    op.is_fp = is_fp;
    op.width = width;
    Emit(op);
    Push(d);
  }

  void LowerBin(Opcode wop, bool is_fp, uint8_t width) {
    uint32_t b = Pop();
    uint32_t a = Pop();
    uint32_t d = vf_.NewVReg(is_fp, width);
    VOp op;
    op.k = VOp::K::kBin;
    op.wop = wop;
    op.d = d;
    op.a = a;
    op.b = b;
    op.is_fp = is_fp;
    op.width = width;
    Emit(op);
    Push(d);
    MaybeCoerce(d, is_fp, width);
  }

  void LowerUn(Opcode wop) {
    uint32_t a = Pop();
    uint32_t d = UnOut(wop);
    VOp op;
    op.k = VOp::K::kUn;
    op.wop = wop;
    op.d = d;
    op.a = a;
    op.is_fp = vf_.vregs[d].is_fp;
    op.width = vf_.vregs[d].width;
    Emit(op);
    Push(d);
  }

  // asm.js profile: coercion move after integer/float arithmetic (the
  // residue of |0 and +x annotations).
  void MaybeCoerce(uint32_t v, bool is_fp, uint8_t width) {
    if (!options_.asmjs_coercions) {
      return;
    }
    uint32_t t = vf_.NewVReg(is_fp, width);
    VOp mv;
    mv.k = VOp::K::kMove;
    mv.d = t;
    mv.a = v;
    mv.is_fp = is_fp;
    mv.width = width;
    Emit(mv);
    stack_.back().vreg = t;
  }

  void LowerInstr(const Instr& instr) {
    switch (instr.op) {
      case Opcode::kNop:
        break;
      case Opcode::kUnreachable: {
        VOp op;
        op.k = VOp::K::kTrap;
        Emit(op);
        break;
      }
      case Opcode::kBlock: {
        BlockCtx b;
        b.op = Opcode::kBlock;
        b.end_label = vf_.NewLabel();
        b.br_label = b.end_label;
        b.stack_base = stack_.size();
        if (instr.block_type != kVoidBlockType) {
          ValType t = static_cast<ValType>(static_cast<uint8_t>(instr.block_type & 0x7f));
          b.result_vreg = NewForType(t);
          b.result_fp = IsFloat(t);
          b.result_width = WidthOf(t);
        }
        blocks_.push_back(b);
        break;
      }
      case Opcode::kLoop: {
        BlockCtx b;
        b.op = Opcode::kLoop;
        b.br_label = vf_.NewLabel();   // loop header
        b.end_label = vf_.NewLabel();  // not a branch target; structural only
        b.stack_base = stack_.size();
        if (instr.block_type != kVoidBlockType) {
          ValType t = static_cast<ValType>(static_cast<uint8_t>(instr.block_type & 0x7f));
          b.result_vreg = NewForType(t);
          b.result_fp = IsFloat(t);
          b.result_width = WidthOf(t);
        }
        blocks_.push_back(b);
        vf_.loop_headers.push_back(b.br_label);
        EmitLabel(b.br_label);
        break;
      }
      case Opcode::kIf: {
        uint32_t cond = Pop();
        BlockCtx b;
        b.op = Opcode::kIf;
        b.end_label = vf_.NewLabel();
        b.br_label = b.end_label;
        b.stack_base = stack_.size();
        if (instr.block_type != kVoidBlockType) {
          ValType t = static_cast<ValType>(static_cast<uint8_t>(instr.block_type & 0x7f));
          b.result_vreg = NewForType(t);
          b.result_fp = IsFloat(t);
          b.result_width = WidthOf(t);
        }
        // else_label: where to go when false.
        uint32_t else_label = vf_.NewLabel();
        else_labels_.push_back(else_label);
        blocks_.push_back(b);
        VOp br;
        br.k = VOp::K::kBrIf;
        br.a = cond;
        br.negate = true;  // branch when condition is zero
        br.label = else_label;
        br.psite = next_branch_site_++;
        Emit(br);
        break;
      }
      case Opcode::kElse: {
        BlockCtx& b = blocks_.back();
        // Then-arm result move + jump to end.
        if (b.result_vreg != kNoVReg) {
          uint32_t v = Pop();
          VOp mv;
          mv.k = VOp::K::kMove;
          mv.d = b.result_vreg;
          mv.a = v;
          mv.is_fp = b.result_fp;
          mv.width = b.result_width;
          Emit(mv);
        }
        EmitBr(b.end_label);
        EmitLabel(else_labels_.back());
        else_labels_.back() = UINT32_MAX;  // consumed
        b.after_else = true;
        stack_.resize(b.stack_base);
        break;
      }
      case Opcode::kEnd: {
        BlockCtx b = blocks_.back();
        // Fall-through result move (popped while `b` is still the innermost
        // block so Pop() sees the right stack base).
        if (b.result_vreg != kNoVReg && stack_.size() > b.stack_base) {
          uint32_t v = Pop();
          VOp mv;
          mv.k = VOp::K::kMove;
          mv.d = b.result_vreg;
          mv.a = v;
          mv.is_fp = b.result_fp;
          mv.width = b.result_width;
          Emit(mv);
        }
        blocks_.pop_back();
        if (b.op == Opcode::kIf && !b.after_else) {
          // If without else: the else label lands here.
          EmitLabel(else_labels_.back());
          else_labels_.pop_back();
        } else if (b.op == Opcode::kIf || b.after_else) {
          else_labels_.pop_back();
        }
        EmitLabel(b.end_label);
        stack_.resize(b.stack_base);
        if (blocks_.empty()) {
          // Function end.
          VOp ret;
          ret.k = VOp::K::kRet;
          ret.a = b.result_vreg;
          ret.is_fp = b.result_fp;
          ret.width = b.result_width;
          Emit(ret);
        } else if (b.result_vreg != kNoVReg) {
          Push(b.result_vreg);
        }
        break;
      }
      case Opcode::kBr: {
        BlockCtx& target = BlockAt(instr.a);
        EmitBranchValueMove(target);
        EmitBr(target.br_label);
        break;
      }
      case Opcode::kBrIf: {
        uint32_t cond = Pop();
        uint32_t psite = next_branch_site_++;
        BlockCtx& target = BlockAt(instr.a);
        EmitBranchValueMove(target);
        // Fuse a preceding compare into a compare-and-branch when the
        // condition was just produced by kCmp and is otherwise unused.
        if (!vf_.ops.empty()) {
          VOp& prev = vf_.ops.back();
          if (prev.k == VOp::K::kCmp && prev.d == cond && !prev.is_fp) {
            VOp br;
            br.k = VOp::K::kBrCmp;
            br.a = prev.a;
            br.b = prev.b;
            br.cond = prev.cond;
            br.width = prev.width;
            br.label = target.br_label;
            br.psite = psite;
            vf_.ops.back() = br;
            break;
          }
        }
        VOp br;
        br.k = VOp::K::kBrIf;
        br.a = cond;
        br.label = target.br_label;
        br.psite = psite;
        Emit(br);
        break;
      }
      case Opcode::kBrTable: {
        uint32_t idx = Pop();
        // Chain of compare-and-branch (engines may emit jump tables; a chain
        // keeps both backends comparable and is what baseline tiers do).
        for (size_t i = 0; i + 1 < instr.table.size(); i++) {
          BlockCtx& target = BlockAt(instr.table[i]);
          EmitBranchValueMove(target);
          uint32_t k = vf_.NewVReg(false, 4);
          VOp c;
          c.k = VOp::K::kConst;
          c.d = k;
          c.imm = i;
          c.width = 4;
          Emit(c);
          VOp br;
          br.k = VOp::K::kBrCmp;
          br.a = idx;
          br.b = k;
          br.cond = Cond::kE;
          br.width = 4;
          br.label = target.br_label;
          Emit(br);
        }
        BlockCtx& def = BlockAt(instr.table.back());
        EmitBranchValueMove(def);
        EmitBr(def.br_label);
        break;
      }
      case Opcode::kReturn: {
        VOp ret;
        ret.k = VOp::K::kRet;
        if (vf_.has_ret) {
          ret.a = Pop();
          ret.is_fp = vf_.ret_fp;
          ret.width = WidthOf(type_.results[0]);
        }
        Emit(ret);
        break;
      }
      case Opcode::kCall: {
        const FuncType& sig = module_.FuncTypeOf(instr.a);
        VOp call;
        call.k = VOp::K::kCall;
        call.func = instr.a;
        call.args.resize(sig.params.size());
        for (size_t i = sig.params.size(); i > 0; i--) {
          call.args[i - 1] = Pop();
        }
        if (!sig.results.empty()) {
          call.d = NewForType(sig.results[0]);
          call.is_fp = IsFloat(sig.results[0]);
          call.width = WidthOf(sig.results[0]);
        }
        uint32_t d = call.d;
        Emit(call);
        if (d != kNoVReg) {
          Push(d);
        }
        break;
      }
      case Opcode::kCallIndirect: {
        const FuncType& sig = module_.types[instr.a];
        VOp call;
        call.k = VOp::K::kCallInd;
        call.sig = instr.a;
        call.psite = next_indirect_site_++;
        call.a = Pop();  // table index
        call.args.resize(sig.params.size());
        for (size_t i = sig.params.size(); i > 0; i--) {
          call.args[i - 1] = Pop();
        }
        if (!sig.results.empty()) {
          call.d = NewForType(sig.results[0]);
          call.is_fp = IsFloat(sig.results[0]);
          call.width = WidthOf(sig.results[0]);
        }
        uint32_t d = call.d;
        Emit(call);
        if (d != kNoVReg) {
          Push(d);
        }
        break;
      }
      case Opcode::kDrop:
        Pop();
        break;
      case Opcode::kSelect: {
        uint32_t c = Pop();
        uint32_t b = Pop();
        uint32_t a = Pop();
        uint32_t d = vf_.NewVReg(vf_.vregs[a].is_fp, vf_.vregs[a].width);
        VOp op;
        op.k = VOp::K::kSelect;
        op.d = d;
        op.a = a;
        op.b = b;
        op.c = c;
        op.is_fp = vf_.vregs[a].is_fp;
        op.width = vf_.vregs[a].width;
        Emit(op);
        Push(d);
        break;
      }
      case Opcode::kLocalGet: {
        uint32_t lv = locals_[instr.a];
        uint32_t t = vf_.NewVReg(vf_.vregs[lv].is_fp, vf_.vregs[lv].width);
        VOp mv;
        mv.k = VOp::K::kMove;
        mv.d = t;
        mv.a = lv;
        mv.is_fp = vf_.vregs[lv].is_fp;
        mv.width = vf_.vregs[lv].width;
        Emit(mv);
        Push(t);
        break;
      }
      case Opcode::kLocalSet: {
        uint32_t v = Pop();
        uint32_t lv = locals_[instr.a];
        VOp mv;
        mv.k = VOp::K::kMove;
        mv.d = lv;
        mv.a = v;
        mv.is_fp = vf_.vregs[lv].is_fp;
        mv.width = vf_.vregs[lv].width;
        Emit(mv);
        break;
      }
      case Opcode::kLocalTee: {
        uint32_t v = stack_.empty() ? vf_.NewVReg(false, 4) : stack_.back().vreg;
        uint32_t lv = locals_[instr.a];
        VOp mv;
        mv.k = VOp::K::kMove;
        mv.d = lv;
        mv.a = v;
        mv.is_fp = vf_.vregs[lv].is_fp;
        mv.width = vf_.vregs[lv].width;
        Emit(mv);
        break;
      }
      case Opcode::kGlobalGet: {
        GlobalType gt = module_.GlobalTypeOf(instr.a);
        uint32_t d = NewForType(gt.type);
        VOp op;
        op.k = VOp::K::kGlobalGet;
        op.d = d;
        op.imm = instr.a;
        op.is_fp = IsFloat(gt.type);
        op.width = WidthOf(gt.type);
        Emit(op);
        Push(d);
        break;
      }
      case Opcode::kGlobalSet: {
        GlobalType gt = module_.GlobalTypeOf(instr.a);
        VOp op;
        op.k = VOp::K::kGlobalSet;
        op.a = Pop();
        op.imm = instr.a;
        op.is_fp = IsFloat(gt.type);
        op.width = WidthOf(gt.type);
        Emit(op);
        break;
      }
      case Opcode::kMemorySize: {
        uint32_t d = vf_.NewVReg(false, 4);
        VOp op;
        op.k = VOp::K::kMemSize;
        op.d = d;
        Emit(op);
        Push(d);
        break;
      }
      case Opcode::kMemoryGrow: {
        uint32_t a = Pop();
        uint32_t d = vf_.NewVReg(false, 4);
        VOp op;
        op.k = VOp::K::kMemGrow;
        op.d = d;
        op.a = a;
        Emit(op);
        Push(d);
        break;
      }
      case Opcode::kI32Const: {
        uint32_t d = vf_.NewVReg(false, 4);
        VOp op;
        op.k = VOp::K::kConst;
        op.d = d;
        op.imm = instr.imm;
        op.width = 4;
        Emit(op);
        Push(d);
        break;
      }
      case Opcode::kI64Const: {
        uint32_t d = vf_.NewVReg(false, 8);
        VOp op;
        op.k = VOp::K::kConst;
        op.d = d;
        op.imm = instr.imm;
        op.width = 8;
        Emit(op);
        Push(d);
        break;
      }
      case Opcode::kF32Const: {
        uint32_t d = vf_.NewVReg(true, 4);
        VOp op;
        op.k = VOp::K::kConstF;
        op.d = d;
        op.imm = instr.imm;
        op.is_fp = true;
        op.width = 4;
        Emit(op);
        Push(d);
        break;
      }
      case Opcode::kF64Const: {
        uint32_t d = vf_.NewVReg(true, 8);
        VOp op;
        op.k = VOp::K::kConstF;
        op.d = d;
        op.imm = instr.imm;
        op.is_fp = true;
        op.width = 8;
        Emit(op);
        Push(d);
        break;
      }
      default:
        LowerNumericOrMemory(instr);
        break;
    }
  }

  void LowerNumericOrMemory(const Instr& instr) {
    uint8_t byte = static_cast<uint8_t>(instr.op);
    // Memory accesses.
    if (byte >= 0x28 && byte <= 0x35) {  // loads
      uint32_t addr = Pop();
      bool is_fp = instr.op == Opcode::kF32Load || instr.op == Opcode::kF64Load;
      uint8_t value_width = 8;
      uint8_t access_width = 8;
      bool sign = false;
      switch (instr.op) {
        case Opcode::kI32Load: value_width = 4; access_width = 4; break;
        case Opcode::kI64Load: value_width = 8; access_width = 8; break;
        case Opcode::kF32Load: value_width = 4; access_width = 4; break;
        case Opcode::kF64Load: value_width = 8; access_width = 8; break;
        case Opcode::kI32Load8S: value_width = 4; access_width = 1; sign = true; break;
        case Opcode::kI32Load8U: value_width = 4; access_width = 1; break;
        case Opcode::kI32Load16S: value_width = 4; access_width = 2; sign = true; break;
        case Opcode::kI32Load16U: value_width = 4; access_width = 2; break;
        case Opcode::kI64Load8S: value_width = 8; access_width = 1; sign = true; break;
        case Opcode::kI64Load8U: value_width = 8; access_width = 1; break;
        case Opcode::kI64Load16S: value_width = 8; access_width = 2; sign = true; break;
        case Opcode::kI64Load16U: value_width = 8; access_width = 2; break;
        case Opcode::kI64Load32S: value_width = 8; access_width = 4; sign = true; break;
        case Opcode::kI64Load32U: value_width = 8; access_width = 4; break;
        default: break;
      }
      uint32_t d = vf_.NewVReg(is_fp, value_width);
      VOp op;
      op.k = VOp::K::kLoad;
      op.d = d;
      op.a = addr;
      op.offset = static_cast<int32_t>(instr.b);
      op.width = access_width;
      op.sign = sign;
      op.is_fp = is_fp;
      Emit(op);
      Push(d);
      return;
    }
    if (byte >= 0x36 && byte <= 0x3e) {  // stores
      uint32_t value = Pop();
      uint32_t addr = Pop();
      uint8_t access_width = 4;
      bool is_fp = instr.op == Opcode::kF32Store || instr.op == Opcode::kF64Store;
      switch (instr.op) {
        case Opcode::kI32Store: access_width = 4; break;
        case Opcode::kI64Store: access_width = 8; break;
        case Opcode::kF32Store: access_width = 4; break;
        case Opcode::kF64Store: access_width = 8; break;
        case Opcode::kI32Store8: access_width = 1; break;
        case Opcode::kI32Store16: access_width = 2; break;
        case Opcode::kI64Store8: access_width = 1; break;
        case Opcode::kI64Store16: access_width = 2; break;
        case Opcode::kI64Store32: access_width = 4; break;
        default: break;
      }
      VOp op;
      op.k = VOp::K::kStore;
      op.a = addr;
      op.b = value;
      op.offset = static_cast<int32_t>(instr.b);
      op.width = access_width;
      op.is_fp = is_fp;
      Emit(op);
      return;
    }
    // Comparisons producing i32.
    switch (instr.op) {
      case Opcode::kI32Eqz:
      case Opcode::kI64Eqz: {
        // x == 0 via compare against constant zero.
        uint8_t w = instr.op == Opcode::kI64Eqz ? 8 : 4;
        uint32_t zero = vf_.NewVReg(false, w);
        VOp c;
        c.k = VOp::K::kConst;
        c.d = zero;
        c.imm = 0;
        c.width = w;
        Emit(c);
        Push(zero);
        LowerCompare(Cond::kE, false, w);
        return;
      }
      case Opcode::kI32Eq: LowerCompare(Cond::kE, false, 4); return;
      case Opcode::kI32Ne: LowerCompare(Cond::kNe, false, 4); return;
      case Opcode::kI32LtS: LowerCompare(Cond::kL, false, 4); return;
      case Opcode::kI32LtU: LowerCompare(Cond::kB, false, 4); return;
      case Opcode::kI32GtS: LowerCompare(Cond::kG, false, 4); return;
      case Opcode::kI32GtU: LowerCompare(Cond::kA, false, 4); return;
      case Opcode::kI32LeS: LowerCompare(Cond::kLe, false, 4); return;
      case Opcode::kI32LeU: LowerCompare(Cond::kBe, false, 4); return;
      case Opcode::kI32GeS: LowerCompare(Cond::kGe, false, 4); return;
      case Opcode::kI32GeU: LowerCompare(Cond::kAe, false, 4); return;
      case Opcode::kI64Eq: LowerCompare(Cond::kE, false, 8); return;
      case Opcode::kI64Ne: LowerCompare(Cond::kNe, false, 8); return;
      case Opcode::kI64LtS: LowerCompare(Cond::kL, false, 8); return;
      case Opcode::kI64LtU: LowerCompare(Cond::kB, false, 8); return;
      case Opcode::kI64GtS: LowerCompare(Cond::kG, false, 8); return;
      case Opcode::kI64GtU: LowerCompare(Cond::kA, false, 8); return;
      case Opcode::kI64LeS: LowerCompare(Cond::kLe, false, 8); return;
      case Opcode::kI64LeU: LowerCompare(Cond::kBe, false, 8); return;
      case Opcode::kI64GeS: LowerCompare(Cond::kGe, false, 8); return;
      // FP compares: ucomisd semantics require unsigned-style conditions.
      // a < b  <=>  ucomisd b, a sets "above" — we encode as swapped A/AE.
      case Opcode::kF32Eq: LowerCompare(Cond::kE, true, 4); return;
      case Opcode::kF32Ne: LowerCompare(Cond::kNe, true, 4); return;
      case Opcode::kF32Lt: LowerCompare(Cond::kA, true, 4, /*swap=*/true); return;
      case Opcode::kF32Gt: LowerCompare(Cond::kA, true, 4); return;
      case Opcode::kF32Le: LowerCompare(Cond::kAe, true, 4, /*swap=*/true); return;
      case Opcode::kF32Ge: LowerCompare(Cond::kAe, true, 4); return;
      case Opcode::kF64Eq: LowerCompare(Cond::kE, true, 8); return;
      case Opcode::kF64Ne: LowerCompare(Cond::kNe, true, 8); return;
      case Opcode::kF64Lt: LowerCompare(Cond::kA, true, 8, /*swap=*/true); return;
      case Opcode::kF64Gt: LowerCompare(Cond::kA, true, 8); return;
      case Opcode::kF64Le: LowerCompare(Cond::kAe, true, 8, /*swap=*/true); return;
      case Opcode::kF64Ge: LowerCompare(Cond::kAe, true, 8); return;
      case Opcode::kI64GeU: LowerCompare(Cond::kAe, false, 8); return;
      default:
        break;
    }
    // Unary ops.
    switch (instr.op) {
      case Opcode::kI32Clz:
      case Opcode::kI32Ctz:
      case Opcode::kI32Popcnt:
      case Opcode::kI64Clz:
      case Opcode::kI64Ctz:
      case Opcode::kI64Popcnt:
      case Opcode::kI32WrapI64:
      case Opcode::kI64ExtendI32S:
      case Opcode::kI64ExtendI32U:
      case Opcode::kF32Abs:
      case Opcode::kF32Neg:
      case Opcode::kF32Ceil:
      case Opcode::kF32Floor:
      case Opcode::kF32Trunc:
      case Opcode::kF32Nearest:
      case Opcode::kF32Sqrt:
      case Opcode::kF64Abs:
      case Opcode::kF64Neg:
      case Opcode::kF64Ceil:
      case Opcode::kF64Floor:
      case Opcode::kF64Trunc:
      case Opcode::kF64Nearest:
      case Opcode::kF64Sqrt:
      case Opcode::kI32TruncF32S:
      case Opcode::kI32TruncF32U:
      case Opcode::kI32TruncF64S:
      case Opcode::kI32TruncF64U:
      case Opcode::kI64TruncF32S:
      case Opcode::kI64TruncF32U:
      case Opcode::kI64TruncF64S:
      case Opcode::kI64TruncF64U:
      case Opcode::kF32ConvertI32S:
      case Opcode::kF32ConvertI32U:
      case Opcode::kF32ConvertI64S:
      case Opcode::kF32ConvertI64U:
      case Opcode::kF32DemoteF64:
      case Opcode::kF64ConvertI32S:
      case Opcode::kF64ConvertI32U:
      case Opcode::kF64ConvertI64S:
      case Opcode::kF64ConvertI64U:
      case Opcode::kF64PromoteF32:
      case Opcode::kI32ReinterpretF32:
      case Opcode::kI64ReinterpretF64:
      case Opcode::kF32ReinterpretI32:
      case Opcode::kF64ReinterpretI64:
        LowerUn(instr.op);
        return;
      default:
        break;
    }
    // Binary ops.
    switch (instr.op) {
      case Opcode::kI32Add:
      case Opcode::kI32Sub:
      case Opcode::kI32Mul:
      case Opcode::kI32DivS:
      case Opcode::kI32DivU:
      case Opcode::kI32RemS:
      case Opcode::kI32RemU:
      case Opcode::kI32And:
      case Opcode::kI32Or:
      case Opcode::kI32Xor:
      case Opcode::kI32Shl:
      case Opcode::kI32ShrS:
      case Opcode::kI32ShrU:
      case Opcode::kI32Rotl:
      case Opcode::kI32Rotr:
        LowerBin(instr.op, false, 4);
        return;
      case Opcode::kI64Add:
      case Opcode::kI64Sub:
      case Opcode::kI64Mul:
      case Opcode::kI64DivS:
      case Opcode::kI64DivU:
      case Opcode::kI64RemS:
      case Opcode::kI64RemU:
      case Opcode::kI64And:
      case Opcode::kI64Or:
      case Opcode::kI64Xor:
      case Opcode::kI64Shl:
      case Opcode::kI64ShrS:
      case Opcode::kI64ShrU:
      case Opcode::kI64Rotl:
      case Opcode::kI64Rotr:
        LowerBin(instr.op, false, 8);
        return;
      case Opcode::kF32Add:
      case Opcode::kF32Sub:
      case Opcode::kF32Mul:
      case Opcode::kF32Div:
      case Opcode::kF32Min:
      case Opcode::kF32Max:
      case Opcode::kF32Copysign:
        LowerBin(instr.op, true, 4);
        return;
      case Opcode::kF64Add:
      case Opcode::kF64Sub:
      case Opcode::kF64Mul:
      case Opcode::kF64Div:
      case Opcode::kF64Min:
      case Opcode::kF64Max:
      case Opcode::kF64Copysign:
        LowerBin(instr.op, true, 8);
        return;
      default:
        break;
    }
  }

  const Module& module_;
  const Function& func_;
  const FuncType& type_;
  const CodegenOptions& options_;
  VFunc vf_;
  std::vector<uint32_t> locals_;
  std::vector<ValEntry> stack_;
  std::vector<BlockCtx> blocks_;
  std::vector<uint32_t> else_labels_;
  // Profile-site ordinals, counted in body order exactly as the interpreter's
  // ProfileCollector counts them (see src/profile/profile.h). Loop sites need
  // no counter: vf_.loop_headers[i] is the i-th kLoop by construction.
  uint32_t next_branch_site_ = 0;
  uint32_t next_indirect_site_ = 0;
};

}  // namespace

VFunc LowerFunction(const Module& module, uint32_t defined_index,
                    const CodegenOptions& options) {
  return Lowerer(module, defined_index, options).Run();
}

}  // namespace nsf
