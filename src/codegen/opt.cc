// IR optimization passes. Which passes run is profile-dependent:
//   - loop rotation (native): top-test loops become bottom-test loops with a
//     single conditional branch per iteration (the Clang shape of Figure 7b);
//   - addressing fusion (native): add/shl address arithmetic folds into
//     [base + index*scale + disp] memory operands;
//   - copy propagation + dead-code elimination (both; JIT engines also run
//     these in their optimizing tiers).
#include "src/codegen/opt.h"

#include <unordered_map>

namespace nsf {

namespace {

// Recomputes per-vreg use counts.
std::vector<uint32_t> CountUses(const VFunc& vf) {
  std::vector<uint32_t> uses(vf.vregs.size(), 0);
  for (const VOp& op : vf.ops) {
    ForEachUse(op, [&uses](uint32_t v) { uses[v]++; });
  }
  return uses;
}

std::vector<uint32_t> CountDefs(const VFunc& vf) {
  std::vector<uint32_t> defs(vf.vregs.size(), 0);
  for (const VOp& op : vf.ops) {
    uint32_t d = DefOf(op);
    if (d != kNoVReg) {
      defs[d]++;
    }
  }
  return defs;
}

}  // namespace

void DeadCodeElim(VFunc* vf) {
  // Iterate to fixpoint: removing a pure op may kill its operands' last uses.
  bool changed = true;
  while (changed) {
    changed = false;
    std::vector<uint32_t> uses = CountUses(*vf);
    std::vector<VOp> kept;
    kept.reserve(vf->ops.size());
    for (VOp& op : vf->ops) {
      uint32_t d = DefOf(op);
      if (d != kNoVReg && uses[d] == 0 && IsPure(op)) {
        changed = true;
        continue;
      }
      kept.push_back(std::move(op));
    }
    vf->ops = std::move(kept);
  }
}

void CopyPropagate(VFunc* vf) {
  // Forward-propagates `d = Move a` when both d and a are single-def (SSA-ish
  // values produced by lowering; Wasm locals are multi-def and excluded).
  std::vector<uint32_t> defs = CountDefs(*vf);
  std::unordered_map<uint32_t, uint32_t> alias;  // d -> a
  for (const VOp& op : vf->ops) {
    if (op.k == VOp::K::kMove && defs[op.d] == 1 && defs[op.a] == 1) {
      uint32_t root = op.a;
      auto it = alias.find(root);
      if (it != alias.end()) {
        root = it->second;
      }
      alias[op.d] = root;
    }
  }
  if (alias.empty()) {
    return;
  }
  auto resolve = [&alias](uint32_t v) {
    auto it = alias.find(v);
    return it == alias.end() ? v : it->second;
  };
  for (VOp& op : vf->ops) {
    op.a = op.a == kNoVReg ? op.a : resolve(op.a);
    op.b = op.b == kNoVReg ? op.b : resolve(op.b);
    op.c = op.c == kNoVReg ? op.c : resolve(op.c);
    for (uint32_t& v : op.args) {
      v = resolve(v);
    }
  }
  DeadCodeElim(vf);
}

void RotateLoops(VFunc* vf) {
  RotateLoopsIf(vf, [](uint32_t) { return true; });
}

void RotateLoopsIf(VFunc* vf, const std::function<bool(uint32_t)>& pred) {
  // Pattern:
  //   Label(H) ; <pure test region> ; BrCmp(E,...) ; body ; Br(H) ; Label(E)
  // becomes
  //   <test region> ; BrCmp(E,...) ; Label(H) ; body ;
  //   <test region'> ; BrCmp(H, !cond) ; Label(E)
  // All other branches to H or E are left valid (H stays a label; E stays).
  // Requires: exactly one branch targets H (the back edge).
  std::vector<VOp>& ops = vf->ops;
  // Count branch targets.
  std::unordered_map<uint32_t, uint32_t> target_count;
  for (const VOp& op : ops) {
    if (op.k == VOp::K::kBr || op.k == VOp::K::kBrIf || op.k == VOp::K::kBrCmp) {
      target_count[op.label]++;
    }
  }
  for (size_t h = 0; h < ops.size(); h++) {
    if (ops[h].k != VOp::K::kLabel) {
      continue;
    }
    uint32_t header = ops[h].label;
    if (!pred(header)) {
      continue;
    }
    // Collect the pure test region.
    size_t t = h + 1;
    while (t < ops.size() && IsPure(ops[t])) {
      t++;
    }
    if (t >= ops.size() || ops[t].k != VOp::K::kBrCmp) {
      continue;
    }
    uint32_t exit_label = ops[t].label;
    if (target_count[header] != 1) {
      continue;  // multiple back edges / continues; keep simple shape
    }
    // Find the back edge Br(header) followed by Label(exit), possibly with
    // intervening structural labels (the Wasm loop's own end label).
    size_t back = t + 1;
    bool found = false;
    for (; back + 1 < ops.size(); back++) {
      if (ops[back].k == VOp::K::kBr && ops[back].label == header) {
        size_t look = back + 1;
        while (look < ops.size() && ops[look].k == VOp::K::kLabel) {
          if (ops[look].label == exit_label) {
            found = true;
            break;
          }
          look++;
        }
        if (found) {
          break;
        }
      }
    }
    if (!found) {
      continue;
    }
    // Build the rotated sequence.
    std::vector<VOp> test_region(ops.begin() + h + 1, ops.begin() + t);
    VOp exit_br = ops[t];
    VOp bottom_br = exit_br;
    bottom_br.cond = NegateCond(exit_br.cond);
    bottom_br.label = header;

    // The bottom copy of the test region re-defines the same vregs as the
    // entry copy, which turns short SSA-ish intervals into multi-def live
    // ranges spanning the whole loop — pressure a linear-scan allocator
    // answers with hot-loop spills. When every test-region def is consumed
    // only inside the region (plus the branch itself), rename the bottom
    // copy's defs to fresh vregs so both copies stay short-lived.
    std::vector<VOp> bottom_region = test_region;
    {
      std::vector<uint32_t> total_uses(vf->vregs.size(), 0);
      for (const VOp& op : ops) {
        ForEachUse(op, [&total_uses](uint32_t v) { total_uses[v]++; });
      }
      std::vector<uint32_t> local_uses(vf->vregs.size(), 0);
      for (const VOp& op : test_region) {
        ForEachUse(op, [&local_uses](uint32_t v) { local_uses[v]++; });
      }
      ForEachUse(exit_br, [&local_uses](uint32_t v) { local_uses[v]++; });
      bool renameable = true;
      for (const VOp& op : test_region) {
        uint32_t d = DefOf(op);
        if (d != kNoVReg && total_uses[d] != local_uses[d]) {
          renameable = false;
          break;
        }
      }
      if (renameable) {
        std::unordered_map<uint32_t, uint32_t> rename;
        auto fix = [&rename](uint32_t& v) {
          auto it = rename.find(v);
          if (it != rename.end()) {
            v = it->second;
          }
        };
        for (VOp& op : bottom_region) {
          if (op.a != kNoVReg) fix(op.a);
          if (op.b != kNoVReg) fix(op.b);
          if (op.c != kNoVReg) fix(op.c);
          for (uint32_t& v : op.args) {
            fix(v);
          }
          uint32_t d = DefOf(op);
          if (d != kNoVReg) {
            uint32_t nd = vf->NewVReg(vf->vregs[d].is_fp, vf->vregs[d].width);
            rename[d] = nd;
            op.d = nd;
          }
        }
        if (bottom_br.a != kNoVReg) fix(bottom_br.a);
        if (bottom_br.b != kNoVReg) fix(bottom_br.b);
      }
    }

    std::vector<VOp> rotated;
    rotated.reserve(ops.size() + test_region.size() + 2);
    // Prefix.
    rotated.insert(rotated.end(), ops.begin(), ops.begin() + h);
    // Entry guard.
    rotated.insert(rotated.end(), test_region.begin(), test_region.end());
    rotated.push_back(exit_br);
    // Header label + body.
    VOp lbl;
    lbl.k = VOp::K::kLabel;
    lbl.label = header;
    rotated.push_back(lbl);
    rotated.insert(rotated.end(), ops.begin() + t + 1, ops.begin() + back);
    // Bottom test.
    rotated.insert(rotated.end(), bottom_region.begin(), bottom_region.end());
    rotated.push_back(bottom_br);
    // Exit label and suffix.
    rotated.insert(rotated.end(), ops.begin() + back + 1, ops.end());
    ops = std::move(rotated);
    // Restart scanning after this loop (indices shifted).
    h += test_region.size() + 1;
  }
}

void PgoSinkColdBlocks(VFunc* vf, const FuncProfile& fp) {
  // An `if` lowers to `BrIf(!cond) -> else_label ; <then arm> ; ... ;
  // Label(else_label)`. When the profile says the branch-to-else fires
  // (essentially) always, the then-arm is cold: sink it to the function
  // tail behind a fresh label and invert the branch, so the common path
  // falls through without a taken branch and without fetching cold bytes.
  // Only straight-line arms (no internal labels) are moved; arms ending in
  // a fallthrough get an explicit jump back to the join point.
  constexpr uint64_t kMinExecutions = 16;
  constexpr double kMinTakenFraction = 0.9995;
  std::vector<VOp>& ops = vf->ops;
  std::vector<VOp> cold_tail;
  for (size_t i = 0; i < ops.size(); i++) {
    VOp& br = ops[i];
    if (br.k != VOp::K::kBrIf || !br.negate || br.psite == UINT32_MAX ||
        br.psite >= fp.branches.size()) {
      continue;
    }
    const BranchSiteProfile& site = fp.branches[br.psite];
    if (site.total() < kMinExecutions ||
        static_cast<double>(site.taken) <
            kMinTakenFraction * static_cast<double>(site.total())) {
      continue;
    }
    // The then-arm extends to the first label, which must be the branch
    // target (arms containing labels — nested control flow — stay put).
    size_t j = i + 1;
    while (j < ops.size() && ops[j].k != VOp::K::kLabel) {
      j++;
    }
    if (j >= ops.size() || ops[j].label != br.label || j == i + 1) {
      continue;
    }
    uint32_t cold_label = vf->NewLabel();
    VOp lbl;
    lbl.k = VOp::K::kLabel;
    lbl.label = cold_label;
    cold_tail.push_back(lbl);
    for (size_t k = i + 1; k < j; k++) {
      cold_tail.push_back(std::move(ops[k]));
    }
    const VOp& last = cold_tail.back();
    if (last.k != VOp::K::kBr && last.k != VOp::K::kRet && last.k != VOp::K::kTrap) {
      VOp back;
      back.k = VOp::K::kBr;
      back.label = br.label;
      cold_tail.push_back(back);
    }
    br.negate = false;
    br.label = cold_label;
    ops.erase(ops.begin() + i + 1, ops.begin() + j);
  }
  ops.insert(ops.end(), cold_tail.begin(), cold_tail.end());
}

void PgoDevirtualize(VFunc* vf, const FuncProfile& fp,
                     const std::function<int64_t(uint32_t, uint32_t)>& resolve) {
  bool any = false;
  for (const VOp& op : vf->ops) {
    if (op.k == VOp::K::kCallInd) {
      any = true;
      break;
    }
  }
  if (!any) {
    return;
  }
  std::vector<VOp> out;
  out.reserve(vf->ops.size() + 8);
  for (VOp& op : vf->ops) {
    uint32_t elem = 0;
    if (op.k != VOp::K::kCallInd || op.psite == UINT32_MAX ||
        op.psite >= fp.indirect_sites.size() ||
        !fp.indirect_sites[op.psite].Monomorphic(&elem)) {
      out.push_back(std::move(op));
      continue;
    }
    int64_t target = resolve(elem, op.sig);
    if (target < 0) {
      out.push_back(std::move(op));
      continue;
    }
    uint32_t kreg = vf->NewVReg(false, 4);
    uint32_t slow = vf->NewLabel();
    uint32_t join = vf->NewLabel();
    VOp c;
    c.k = VOp::K::kConst;
    c.d = kreg;
    c.imm = elem;
    c.width = 4;
    out.push_back(c);
    VOp guard;
    guard.k = VOp::K::kBrCmp;
    guard.a = op.a;
    guard.b = kreg;
    guard.cond = Cond::kNe;
    guard.width = 4;
    guard.label = slow;
    out.push_back(guard);
    VOp direct;
    direct.k = VOp::K::kCall;
    direct.func = static_cast<uint32_t>(target);
    direct.d = op.d;
    direct.args = op.args;
    direct.is_fp = op.is_fp;
    direct.width = op.width;
    out.push_back(direct);
    VOp br;
    br.k = VOp::K::kBr;
    br.label = join;
    out.push_back(br);
    VOp slbl;
    slbl.k = VOp::K::kLabel;
    slbl.label = slow;
    out.push_back(slbl);
    out.push_back(std::move(op));  // the polymorphic fallback
    VOp jlbl;
    jlbl.k = VOp::K::kLabel;
    jlbl.label = join;
    out.push_back(jlbl);
  }
  vf->ops = std::move(out);
}

void FuseAddressing(VFunc* vf) {
  // Folds, for single-use address chains feeding kLoad/kStore:
  //   t1 = shl idx, k        (k <= 3)
  //   t2 = add base, t1
  //   load [t2 + off]   =>   load [base + idx*(1<<k) + off]
  // plus the simpler    t2 = add base, idx  =>  [base + idx*1 + off].
  // Also fuses register-memory ALU forms:
  //   t = load [A] ; u = add t, v ; store [A] = u
  //     =>  addmem [A], v   (represented as kStore with wop/b=v, fuse via imm)
  std::vector<uint32_t> uses = CountUses(*vf);
  std::vector<uint32_t> defs = CountDefs(*vf);
  // Map vreg -> defining op index (single-def only).
  std::vector<int32_t> def_at(vf->vregs.size(), -1);
  for (size_t i = 0; i < vf->ops.size(); i++) {
    uint32_t d = DefOf(vf->ops[i]);
    if (d != kNoVReg) {
      def_at[d] = defs[d] == 1 ? static_cast<int32_t>(i) : -2;
    }
  }

  auto try_fuse_addr = [&](VOp& op, uint32_t addr_vreg, bool is_store) {
    if (addr_vreg == kNoVReg || def_at[addr_vreg] < 0 || uses[addr_vreg] != 1) {
      return;
    }
    VOp& add_op = vf->ops[def_at[addr_vreg]];
    if (add_op.k != VOp::K::kBin || add_op.wop != Opcode::kI32Add) {
      return;
    }
    uint32_t base = add_op.a;
    uint32_t index = add_op.b;
    uint8_t scale = 1;
    // Try to fold a shift on the index side.
    if (index != kNoVReg && def_at[index] >= 0 && uses[index] == 1) {
      VOp& shl_op = vf->ops[def_at[index]];
      if (shl_op.k == VOp::K::kBin && shl_op.wop == Opcode::kI32Shl && shl_op.b != kNoVReg &&
          def_at[shl_op.b] >= 0) {
        VOp& cnt = vf->ops[def_at[shl_op.b]];
        if (cnt.k == VOp::K::kConst && cnt.imm <= 3) {
          scale = static_cast<uint8_t>(1u << cnt.imm);
          index = shl_op.a;
          // Mark the shl dead by zeroing its use (DCE cleans up).
          uses[shl_op.d] = 0;
          shl_op.k = VOp::K::kConst;  // neutered; DCE removes (d unused)
          shl_op.wop = Opcode::kNop;
        }
      }
    }
    // Rewrite the access.
    if (is_store) {
      op.a = base;
      op.c = index;
    } else {
      op.a = base;
      op.b = index;
    }
    op.fuse_scale = scale;
    uses[addr_vreg] = 0;
    add_op.k = VOp::K::kConst;  // neutered
    add_op.wop = Opcode::kNop;
  };

  for (VOp& op : vf->ops) {
    if (op.k == VOp::K::kLoad && op.fuse_scale == 0) {
      try_fuse_addr(op, op.a, false);
    } else if (op.k == VOp::K::kStore && op.fuse_scale == 0) {
      try_fuse_addr(op, op.a, true);
    }
  }
  DeadCodeElim(vf);
}

void FuseAluMem(VFunc* vf) {
  // Rewrites load/modify/store over the same address into a register-memory
  // ALU op (kStore with alu_op set), the §5.1.1 addressing-mode point:
  //   t = load [a + off]      (single use)
  //   u = add/sub/and/or/xor t, v   (or v, t for commutative add)
  //   store [a + off] = u     (u single use; no store/call between)
  std::vector<uint32_t> uses = CountUses(*vf);
  std::vector<uint32_t> defs = CountDefs(*vf);
  std::vector<int32_t> def_at(vf->vregs.size(), -1);
  for (size_t i = 0; i < vf->ops.size(); i++) {
    uint32_t d = DefOf(vf->ops[i]);
    if (d != kNoVReg) {
      def_at[d] = defs[d] == 1 ? static_cast<int32_t>(i) : -2;
    }
  }
  auto same_addr = [](const VOp& x, const VOp& y, uint32_t x_index, uint32_t y_index) {
    return x.a == y.a && x.offset == y.offset && x.fuse_scale == y.fuse_scale &&
           (x.fuse_scale == 0 || x_index == y_index);
  };
  for (size_t s = 0; s < vf->ops.size(); s++) {
    VOp& store = vf->ops[s];
    if (store.k != VOp::K::kStore || store.is_fp || store.alu_op != Opcode::kNop) {
      continue;
    }
    uint32_t u = store.b;
    if (u == kNoVReg || def_at[u] < 0 || uses[u] != 1) {
      continue;
    }
    size_t bi = static_cast<size_t>(def_at[u]);
    VOp& bin = vf->ops[bi];
    if (bin.k != VOp::K::kBin) {
      continue;
    }
    Opcode wop = bin.wop;
    if (wop != Opcode::kI32Add && wop != Opcode::kI32Sub && wop != Opcode::kI32And &&
        wop != Opcode::kI32Or && wop != Opcode::kI32Xor && wop != Opcode::kI64Add &&
        wop != Opcode::kI64Sub) {
      continue;
    }
    // One operand of the bin must be a single-use load from the same address.
    uint32_t load_v = kNoVReg;
    uint32_t other = kNoVReg;
    bool commutative = wop == Opcode::kI32Add || wop == Opcode::kI32And ||
                       wop == Opcode::kI32Or || wop == Opcode::kI32Xor ||
                       wop == Opcode::kI64Add;
    for (int side = 0; side < 2; side++) {
      uint32_t cand = side == 0 ? bin.a : bin.b;
      uint32_t oth = side == 0 ? bin.b : bin.a;
      if (side == 1 && !commutative) {
        break;  // sub: only [mem] - reg form matches load-on-left
      }
      if (cand != kNoVReg && def_at[cand] >= 0 && uses[cand] == 1) {
        VOp& ld = vf->ops[def_at[cand]];
        if (ld.k == VOp::K::kLoad && !ld.is_fp && ld.width == store.width &&
            same_addr(ld, store, ld.b, store.c)) {
          load_v = cand;
          other = oth;
          break;
        }
      }
    }
    if (load_v == kNoVReg) {
      continue;
    }
    size_t li = static_cast<size_t>(def_at[load_v]);
    if (li > bi || bi > s) {
      continue;
    }
    // Safety: no stores/calls/labels/branches between load and store, and the
    // address vregs must not be redefined in between.
    bool safe = true;
    for (size_t k = li + 1; k < s && safe; k++) {
      const VOp& mid = vf->ops[k];
      switch (mid.k) {
        case VOp::K::kStore:
        case VOp::K::kGlobalSet:
        case VOp::K::kCall:
        case VOp::K::kCallInd:
        case VOp::K::kMemGrow:
        case VOp::K::kLabel:
        case VOp::K::kBr:
        case VOp::K::kBrIf:
        case VOp::K::kBrCmp:
        case VOp::K::kRet:
        case VOp::K::kTrap:
          safe = false;
          break;
        default: {
          uint32_t d = DefOf(mid);
          if (d != kNoVReg && (d == store.a || (store.fuse_scale != 0 && d == store.c) ||
                               d == other)) {
            safe = false;
          }
          break;
        }
      }
    }
    if (!safe) {
      continue;
    }
    // Rewrite: store becomes ALU-with-memory-destination; load and bin die.
    store.alu_op = wop;
    store.b = other;
    uses[load_v] = 0;
    uses[u] = 0;
    vf->ops[li].k = VOp::K::kConst;
    vf->ops[li].wop = Opcode::kNop;
    bin.k = VOp::K::kConst;
    bin.wop = Opcode::kNop;
  }
  DeadCodeElim(vf);
}

}  // namespace nsf
