// CompiledArtifact: the compilation pipeline's product as ONE self-contained,
// relocatable value — the module (for import binding and export lookup), the
// compiled MProgram with its layout order and per-function frame metadata,
// the compile statistics, and the provenance needed for content-addressed
// caching (module hash, options fingerprint, tier tag, profile fingerprint).
//
// "Relocatable" means nothing in the artifact depends on where code was
// linked: code_base / instr_offsets / total_code_bytes are assigned by
// MProgram::Link(), which is deterministic given the function bodies and
// layout_order, so the serializer (src/wasm/artifact_codec.h) omits them and
// deserialization re-links. Two artifacts built from the same (module,
// options) content are byte-identical once serialized.
#ifndef SRC_CODEGEN_ARTIFACT_H_
#define SRC_CODEGEN_ARTIFACT_H_

#include <cstdint>
#include <string>

#include "src/codegen/codegen.h"
#include "src/wasm/module.h"

namespace nsf {

// Compilation tier the artifact was produced at.
enum class CompileTier : uint8_t {
  kBaseline = 0,  // no profile consumed
  kProfiled = 1,  // PGO recompilation (a profile fed at least one pgo pass)
};

struct CompiledArtifact {
  Module module;                     // retained for imports + export lookup
  uint64_t module_hash = 0;          // HashModule(module)
  uint64_t options_fingerprint = 0;  // CodegenOptions::Fingerprint()
  std::string profile_name;          // cosmetic label at compile time
  CompileTier tier = CompileTier::kBaseline;
  // FNV-1a over the consumed profile's binary serialization; 0 when the
  // artifact is baseline. Lets cache consumers audit which profile produced
  // a tiered artifact without deserializing the profile itself.
  uint64_t profile_fingerprint = 0;
  CompileResult compiled;            // program, stats, func_map, import_hooks

  bool ok() const { return compiled.ok; }
  const MProgram& program() const { return compiled.program; }
  const CompileStats& stats() const { return compiled.stats; }
};

// Compiles `module` (assumed validated) under `options` into an artifact,
// filling every provenance field. `module_hash` / `options_fingerprint` are
// accepted precomputed because every caller (the Engine's code cache) already
// derived them to form the cache key.
CompiledArtifact BuildArtifact(const Module& module, const CodegenOptions& options,
                               uint64_t module_hash, uint64_t options_fingerprint);

// Convenience overload computing both key halves.
CompiledArtifact BuildArtifact(const Module& module, const CodegenOptions& options);

}  // namespace nsf

#endif  // SRC_CODEGEN_ARTIFACT_H_
