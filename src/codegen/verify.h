// Pipeline verifiers (the LLVM -verify-machineinstrs idea for this repo):
// machine-checkable invariants over the two compiler-owned representations,
// run between optimization passes (CodegenOptions::verify_ir) and over every
// artifact the engine is about to trust (disk-cache loads, always).
//
//   VerifyIR      — the VOp IR between LowerFunction and AllocateRegisters:
//                   CFG well-formedness (unique labels, every branch target
//                   exists), forward def-before-use dataflow over vregs
//                   (intersection meet across predecessors, so a value must
//                   be defined on EVERY path reaching a use), class/width
//                   consistency against VRegInfo, and call arity + argument
//                   classes against the module's signatures.
//   VerifyMachine — the emitted MProgram: branch targets inside the
//                   function, rbp frame discipline (spill/save slots within
//                   frame_slots, parameter slots at [rbp+16+8i]), physical-
//                   register def-before-use under the machine's entry
//                   convention (rsp, heap-base rbx/r15 and the six arg
//                   registers are live-in; callee-saves of untouched
//                   registers are recognized; calls clobber the scratch
//                   registers and the compare state), a flags dataflow
//                   (every jcc/setcc must see a cmp/test/ucomis on all
//                   paths — the MProgram-side half of fused-pair legality),
//                   layout_order being a permutation, and table/global/data
//                   bounds.
//
// Every checker returns "" when the input is valid, else one diagnostic
// naming the function, the instruction index, and the violated invariant.
// The caller prepends pass context (src/codegen/codegen.cc does).
#ifndef SRC_CODEGEN_VERIFY_H_
#define SRC_CODEGEN_VERIFY_H_

#include <cstddef>
#include <string>

#include "src/codegen/ir.h"
#include "src/wasm/module.h"
#include "src/x64/insts.h"

namespace nsf {

// Verifies one function's IR against `module` (signatures for call arity and
// argument classes, global/function index bounds).
std::string VerifyIR(const VFunc& vf, const Module& module);

// Verifies one emitted function. `prog` provides call-target and table
// bounds; the function need not be linked (no code_base use).
std::string VerifyMachineFunction(const MProgram& prog, size_t func_index);

// Whole-program check: every function plus program-level invariants
// (layout_order permutation, entry/table/global/data bounds).
std::string VerifyMachine(const MProgram& prog);

}  // namespace nsf

#endif  // SRC_CODEGEN_VERIFY_H_
