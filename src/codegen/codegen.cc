#include "src/codegen/codegen.h"

#include <algorithm>
#include <chrono>

#include "src/codegen/emit.h"
#include "src/codegen/opt.h"
#include "src/codegen/regalloc.h"
#include "src/codegen/verify.h"
#include "src/profile/profile.h"
#include "src/support/str.h"
#include "src/telemetry/metrics.h"

namespace nsf {

uint64_t CodegenOptions::Fingerprint() const {
  // Canonical byte serialization of every semantic field, hashed with
  // FNV-1a. Fields are length-prefixed or fixed-width so no two distinct
  // option values can serialize to the same byte string.
  std::vector<uint8_t> bytes;
  auto put8 = [&bytes](uint8_t v) { bytes.push_back(v); };
  auto put32 = [&bytes](uint32_t v) {
    for (int i = 0; i < 4; i++) {
      bytes.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  };
  put8(static_cast<uint8_t>(regalloc));
  put8(fuse_addressing);
  put8(heap_base_in_disp);
  put8(static_cast<uint8_t>(heap_base_reg));
  put32(static_cast<uint32_t>(reserved_gprs.size()));
  for (Gpr r : reserved_gprs) {
    put8(static_cast<uint8_t>(r));
  }
  put32(static_cast<uint32_t>(reserved_xmms.size()));
  for (Xmm r : reserved_xmms) {
    put8(static_cast<uint8_t>(r));
  }
  put8(rotate_loops);
  put8(loop_entry_jump);
  put8(stack_check);
  put8(indirect_check);
  put8(asmjs_coercions);
  put32(extra_opt_passes);
  // PGO flags only matter when a profile is attached, and the profile only
  // matters when a flag consumes it — hash the *effective* configuration.
  bool pgo_active =
      profile != nullptr && (pgo_layout || pgo_rotate_hot_loops || devirtualize_monomorphic);
  put8(pgo_active);
  if (pgo_active) {
    put8(pgo_layout);
    put8(pgo_rotate_hot_loops);
    put8(devirtualize_monomorphic);
    std::vector<uint8_t> pbytes = profile->SerializeBinary();
    put32(static_cast<uint32_t>(pbytes.size()));
    bytes.insert(bytes.end(), pbytes.begin(), pbytes.end());
  }
  return Fnv1a(bytes.data(), bytes.size());
}

CodegenOptions CodegenOptions::NativeClang() {
  CodegenOptions o;
  o.profile_name = "native-clang";
  o.regalloc = RegAllocKind::kGraphColor;
  o.fuse_addressing = true;
  o.heap_base_in_disp = true;
  o.rotate_loops = true;
  o.stack_check = false;
  o.indirect_check = false;
  // Offline compilers afford many more passes (Table 2's compile-time gap).
  o.extra_opt_passes = 24;
  return o;
}

CodegenOptions CodegenOptions::ChromeV8() {
  CodegenOptions o;
  o.profile_name = "chrome-v8";
  o.regalloc = RegAllocKind::kLinearScan;
  o.fuse_addressing = false;
  o.heap_base_in_disp = false;
  o.heap_base_reg = Gpr::kRbx;        // V8 keeps the memory start in a register
  o.reserved_gprs = {Gpr::kR13};      // GC root array (paper §6.1.1)
  o.reserved_xmms = {Xmm::kXmm13};    // V8 FP scratch
  o.rotate_loops = false;
  o.loop_entry_jump = true;           // §5.1.3 extra jumps
  o.stack_check = true;
  o.indirect_check = true;
  return o;
}

CodegenOptions CodegenOptions::FirefoxSM() {
  CodegenOptions o;
  o.profile_name = "firefox-spidermonkey";
  o.regalloc = RegAllocKind::kLinearScan;
  o.fuse_addressing = false;
  o.heap_base_in_disp = false;
  o.heap_base_reg = Gpr::kR15;        // SpiderMonkey heap pointer (§6.1.1)
  o.reserved_gprs = {};               // r11/xmm15 (SM scratch) already universal
  o.reserved_xmms = {};
  o.rotate_loops = false;
  o.loop_entry_jump = false;
  o.stack_check = true;
  o.indirect_check = true;
  return o;
}

CodegenOptions CodegenOptions::ChromeAsmJs() {
  CodegenOptions o = ChromeV8();
  o.profile_name = "chrome-asmjs";
  o.asmjs_coercions = true;
  o.reserved_gprs.push_back(Gpr::kRsi);  // JS context register
  return o;
}

CodegenOptions CodegenOptions::FirefoxAsmJs() {
  CodegenOptions o = FirefoxSM();
  o.profile_name = "firefox-asmjs";
  o.asmjs_coercions = true;
  o.reserved_gprs.push_back(Gpr::kRsi);
  return o;
}

CodegenOptions CodegenOptions::ChromeV8_2017() {
  CodegenOptions o = ChromeV8();
  o.profile_name = "chrome-v8-2017";
  // The 2017-era tier: more redundant moves survive and one more register is
  // burned on engine bookkeeping.
  o.asmjs_coercions = true;
  o.reserved_gprs.push_back(Gpr::kRdi);
  return o;
}

CodegenOptions CodegenOptions::ChromeV8_2018() {
  CodegenOptions o = ChromeV8();
  o.profile_name = "chrome-v8-2018";
  o.reserved_gprs.push_back(Gpr::kRdi);
  return o;
}

namespace {

// Builds the stub MFunction for imported function `import_index` with `sig`:
// marshal up to 6 stack arguments into registers, then invoke the host hook.
MFunction BuildImportStub(uint32_t import_index, const FuncType& sig, const std::string& name) {
  MFunction f;
  f.name = "import:" + name;
  static const Gpr kArgRegs[6] = {Gpr::kRdi, Gpr::kRsi, Gpr::kRdx,
                                  Gpr::kRcx, Gpr::kR8,  Gpr::kR9};
  uint32_t n = std::min<uint32_t>(static_cast<uint32_t>(sig.params.size()), 6);
  // The arg registers are allocatable (callee-saved) in caller code, so the
  // stub preserves them around the host call.
  for (uint32_t i = 0; i < n; i++) {
    MInstr push;
    push.op = MOp::kPush;
    push.dst = Operand::R(kArgRegs[i]);
    f.code.push_back(push);
  }
  for (uint32_t i = 0; i < n; i++) {
    // Args sit above the return address and the saves:
    // [rsp + 8*n_saves + 8 + 8*i].
    f.code.push_back(MInstr::RM(MOp::kLoad, kArgRegs[i],
                                MemRef::BaseDisp(Gpr::kRsp, 8 * (int)n + 8 + 8 * (int)i), 8));
  }
  MInstr call;
  call.op = MOp::kCallHost;
  call.func = import_index;
  f.code.push_back(call);
  for (uint32_t i = n; i > 0; i--) {
    MInstr pop;
    pop.op = MOp::kPop;
    pop.dst = Operand::R(kArgRegs[i - 1]);
    f.code.push_back(pop);
  }
  MInstr ret;
  ret.op = MOp::kRet;
  f.code.push_back(ret);
  return f;
}

}  // namespace

CompileResult CompileModule(const Module& module, const CodegenOptions& options) {
  auto t0 = std::chrono::steady_clock::now();
  CompileResult result;
  MProgram& prog = result.program;

  EmitEnv env;
  if (!module.tables.empty()) {
    env.table_size = module.tables[0].limits.min;
  }
  for (uint32_t t = 0; t < module.types.size(); t++) {
    env.sig_ids[t] = t;
  }

  uint32_t imported = module.NumImportedFuncs();
  // Import stubs occupy the first `imported` MProgram slots, so MProgram
  // function indices equal joint Wasm function indices.
  uint32_t import_seen = 0;
  for (const Import& imp : module.imports) {
    if (imp.kind != ExternalKind::kFunc) {
      continue;
    }
    prog.funcs.push_back(
        BuildImportStub(import_seen, module.types[imp.type_index], imp.module + "." + imp.name));
    result.import_hooks.push_back(import_seen);
    import_seen++;
  }

  // Table image, built before the function loop so PGO devirtualization can
  // resolve profiled table elements to direct call targets.
  if (!module.tables.empty()) {
    prog.table.assign(env.table_size, MProgram::TableEntry{});
    for (const ElementSegment& seg : module.elements) {
      uint32_t offset = static_cast<uint32_t>(seg.offset.imm);
      for (size_t i = 0; i < seg.func_indices.size(); i++) {
        uint32_t fi = seg.func_indices[i];
        if (offset + i < prog.table.size()) {
          uint32_t type_index;
          if (fi < imported) {
            type_index = module.FuncImportOf(fi).type_index;
          } else {
            type_index = module.functions[fi - imported].type_index;
          }
          prog.table[offset + i] = MProgram::TableEntry{type_index, fi};
        }
      }
    }
  }
  auto resolve_elem = [&prog, &env](uint32_t elem, uint32_t sig) -> int64_t {
    if (elem >= prog.table.size()) {
      return -1;
    }
    const MProgram::TableEntry& e = prog.table[elem];
    auto it = env.sig_ids.find(sig);
    if (e.func_index == UINT32_MAX || it == env.sig_ids.end() || e.sig_id != it->second) {
      return -1;
    }
    return e.func_index;
  };

  // Back-edge count above which a profiled loop is worth rotating.
  constexpr uint64_t kHotLoopMinTrips = 64;

  CompileStats& stats = result.stats;
  // Pass-boundary IR verification (CodegenOptions::verify_ir): `verify_after`
  // runs the verifier after the named pass and turns the first violation into
  // a failed compile. Timing feeds the codegen.verify_ir_ns histogram; the
  // total is accumulated across functions and passes.
  uint64_t verify_ns = 0;
  VFunc* verify_vf = nullptr;
  auto verify_after = [&](const char* pass) -> bool {
    if (!options.verify_ir) {
      return true;
    }
    auto v0 = std::chrono::steady_clock::now();
    std::string diag = VerifyIR(*verify_vf, module);
    verify_ns += static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                             v0)
            .count());
    if (!diag.empty()) {
      result.ok = false;
      result.error = StrFormat("IR verify failed after pass '%s': %s", pass, diag.c_str());
      return false;
    }
    return true;
  };
  for (uint32_t d = 0; d < module.functions.size(); d++) {
    const uint64_t func_verify_start = verify_ns;
    const FuncProfile* fprof = nullptr;
    if (options.profile != nullptr && imported + d < options.profile->num_funcs()) {
      fprof = &options.profile->func(imported + d);
    }
    VFunc vf = LowerFunction(module, d, options);
    verify_vf = &vf;
    stats.vops += vf.ops.size();
    if (!verify_after("lower")) {
      return result;
    }
    // Devirtualization first: it matches kCallInd sites by their profile
    // ordinal, which later passes are free to shuffle.
    if (options.devirtualize_monomorphic && fprof != nullptr) {
      PgoDevirtualize(&vf, *fprof, resolve_elem);
      if (!verify_after("pgo_devirtualize")) {
        return result;
      }
    }
    // Copy propagation models the move coalescing a graph-coloring allocator
    // performs; the linear-scan JIT profiles keep their moves (§6.1.2).
    if (options.regalloc == RegAllocKind::kGraphColor) {
      CopyPropagate(&vf);
      if (!verify_after("copy_propagate")) {
        return result;
      }
    }
    if (options.rotate_loops) {
      RotateLoops(&vf);
      if (!verify_after("rotate_loops")) {
        return result;
      }
    } else if (options.pgo_rotate_hot_loops && fprof != nullptr) {
      RotateLoopsIf(&vf, [&vf, fprof](uint32_t header) {
        for (size_t i = 0; i < vf.loop_headers.size(); i++) {
          if (vf.loop_headers[i] == header) {
            return i < fprof->loop_trips.size() &&
                   fprof->loop_trips[i] >= kHotLoopMinTrips;
          }
        }
        return false;
      });
      if (!verify_after("pgo_rotate_hot_loops")) {
        return result;
      }
    }
    if (options.pgo_layout && fprof != nullptr) {
      PgoSinkColdBlocks(&vf, *fprof);
      if (!verify_after("pgo_sink_cold_blocks")) {
        return result;
      }
    }
    if (options.fuse_addressing) {
      FuseAddressing(&vf);
      FuseAluMem(&vf);
      if (!verify_after("fuse_addressing")) {
        return result;
      }
    }
    // Extra passes model offline-compiler optimization budgets; the passes
    // are idempotent, so they cost time without changing the output.
    for (uint32_t p = 0; p < options.extra_opt_passes; p++) {
      CopyPropagate(&vf);
      if (options.fuse_addressing) {
        FuseAddressing(&vf);
        FuseAluMem(&vf);
      }
      ComputeLiveness(vf);
      if (!verify_after(StrFormat("extra_opt_pass_%u", p).c_str())) {
        return result;
      }
    }
    Allocation alloc = AllocateRegisters(vf, options);
    stats.spill_slots += alloc.num_slots;
    prog.funcs.push_back(EmitFunction(vf, alloc, options, env));
    stats.minstrs += prog.funcs.back().code.size();
    // Recorded PER FUNCTION (all pass boundaries of this function summed),
    // not per module: the CI budget alarm bounds this histogram's p99
    // against a per-function budget, which a module total would dilute or
    // blow purely on function count.
    if (options.verify_ir && verify_ns > func_verify_start) {
      telemetry::MetricsRegistry::Global()
          .GetHistogram("codegen.verify_ir_ns")
          ->Record(verify_ns - func_verify_start);
    }
  }

  // PGO code layout: place functions hottest-first so the hot working set
  // shares L1i lines (extends the Figure 10 experiment with the fix). A
  // profile collected for a different module shape (size mismatch) keeps
  // the identity layout.
  if (options.pgo_layout && options.profile != nullptr &&
      options.profile->num_funcs() == prog.funcs.size()) {
    prog.layout_order = options.profile->FunctionsByHotness();
  }

  // Memory + data.
  for (const MemorySec& m : module.memories) {
    prog.memory_pages = m.limits.min;
    prog.max_memory_pages = m.limits.max.value_or(kMaxMemoryPages);
  }
  for (const Import& imp : module.imports) {
    if (imp.kind == ExternalKind::kMemory) {
      prog.memory_pages = imp.limits.min;
      prog.max_memory_pages = imp.limits.max.value_or(kMaxMemoryPages);
    }
  }
  for (const DataSegment& seg : module.data) {
    prog.data_segments.push_back({static_cast<uint32_t>(seg.offset.imm), seg.bytes});
  }

  // Globals: slot 0 is the stack limit; Wasm global g lives in slot 1+g.
  prog.num_globals = module.NumTotalGlobals() + 1;
  uint32_t gbase = module.NumImportedGlobals();
  for (uint32_t g = 0; g < module.globals.size(); g++) {
    const Global& gl = module.globals[g];
    uint64_t bits = 0;
    switch (gl.init.op) {
      case Opcode::kI32Const:
        bits = static_cast<uint32_t>(gl.init.imm);
        break;
      case Opcode::kI64Const:
      case Opcode::kF64Const:
      case Opcode::kF32Const:
        bits = gl.init.imm;
        break;
      default:
        break;  // global.get of import: left zero; embedder initializes
    }
    prog.global_inits.push_back({1 + gbase + g, bits});
  }

  prog.Link();
  stats.code_bytes = prog.total_code_bytes;

  // Whole-program machine verification after linking: emission and layout
  // are pass boundaries too.
  if (options.verify_ir) {
    auto v0 = std::chrono::steady_clock::now();
    std::string diag = VerifyMachine(prog);
    telemetry::MetricsRegistry::Global()
        .GetHistogram("codegen.verify_machine_ns")
        ->Record(static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                           std::chrono::steady_clock::now() - v0)
                                           .count()));
    if (!diag.empty()) {
      result.ok = false;
      result.error = StrFormat("machine verify failed after 'emit+link': %s", diag.c_str());
      return result;
    }
  }

  result.func_map.resize(module.NumTotalFuncs());
  for (uint32_t i = 0; i < result.func_map.size(); i++) {
    result.func_map[i] = i;
  }

  auto t1 = std::chrono::steady_clock::now();
  stats.seconds = std::chrono::duration<double>(t1 - t0).count();
  result.ok = true;
  return result;
}

}  // namespace nsf
