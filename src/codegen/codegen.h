// Wasm -> simulated-x64 compiler. A CodegenOptions value selects which of
// the paper's code-generation behaviours are active; the named profiles
// correspond to the toolchains the paper measures:
//
//   NativeClang(): offline-compiler quality — graph-coloring register
//     allocation, full addressing-mode fusion (incl. register-memory ALU
//     forms), loop rotation (single conditional branch per iteration), heap
//     base folded into displacements, no sandbox checks.
//   ChromeV8(): linear-scan allocation, reserved registers (r13 GC root,
//     r10 scratch, rbx heap base, xmm13 scratch), no addressing fusion,
//     top-test loops with an extra loop-entry jump (§5.1.3), per-function
//     stack-overflow checks, indirect-call checks.
//   FirefoxSM(): linear-scan allocation, reserved registers (r15 heap base,
//     r11 scratch, xmm15 scratch), no addressing fusion, top-test loops,
//     stack checks, indirect-call checks.
//   ChromeAsmJs()/FirefoxAsmJs(): the JIT profiles plus asm.js overheads
//     (coercion moves after arithmetic, fewer allocatable registers).
#ifndef SRC_CODEGEN_CODEGEN_H_
#define SRC_CODEGEN_CODEGEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/codegen/ir.h"
#include "src/wasm/module.h"
#include "src/x64/insts.h"

namespace nsf {

class Profile;

enum class RegAllocKind : uint8_t { kLinearScan, kGraphColor };

struct CodegenOptions {
  std::string profile_name = "custom";
  RegAllocKind regalloc = RegAllocKind::kGraphColor;
  // Fold add/shl address arithmetic into [base+index*scale+disp] operands and
  // use register-memory ALU forms (add [mem], reg).
  bool fuse_addressing = true;
  // Heap base as a constant displacement (native) instead of a reserved
  // base register (JIT profiles reserve one; see reserved_gprs).
  bool heap_base_in_disp = true;
  Gpr heap_base_reg = Gpr::kRbx;  // used when !heap_base_in_disp
  // Registers withheld from allocation (beyond the universal rsp/rbp/rax/
  // rdx/rcx/scratch exclusions).
  std::vector<Gpr> reserved_gprs;
  std::vector<Xmm> reserved_xmms;
  // Rotate top-test loops into bottom-test form (1 branch/iteration).
  bool rotate_loops = true;
  // Emit an extra unconditional jump at loop entry (V8 codegen shape, §5.1.3).
  bool loop_entry_jump = false;
  // Per-function stack-overflow check (§6.2.2).
  bool stack_check = false;
  // call_indirect bounds + signature checks (§6.2.3).
  bool indirect_check = false;
  // asm.js-style coercions: an extra move after every arithmetic result
  // (models JavaScript |0 / +x coercion traffic surviving codegen).
  bool asmjs_coercions = false;
  // Extra optimization passes, modeling offline-compiler compile time
  // (Table 2); each pass re-runs fusion + DCE.
  uint32_t extra_opt_passes = 0;

  // --- Profile-guided optimization (src/profile/) ---
  // Execution profile from a warm-up run (not owned; must outlive the
  // compile). Null disables every pgo_* flag below.
  const Profile* profile = nullptr;
  // Hotness-ordered function layout (hot code packed first, cutting L1i
  // misses) plus cold if-arm sinking with branch inversion.
  bool pgo_layout = false;
  // Rotate profiled-hot loops into bottom-test form even when rotate_loops
  // is off — recovers the §5.1.3 extra-branch cost for the JIT profiles
  // without paying rotation's code growth on cold loops.
  bool pgo_rotate_hot_loops = false;
  // Guarded direct calls for monomorphic indirect-call sites, skipping the
  // bounds/null/signature checks (§6.2.3) on the hot path.
  bool devirtualize_monomorphic = false;

  // Run the IR verifier (src/codegen/verify.h) after lowering and between
  // every optimization pass, and the MProgram verifier after linking. A
  // failure aborts the compile with result.error naming the offending pass,
  // function, and instruction. On by default in Debug builds; force on
  // anywhere with -DNSF_VERIFY_IR=ON. Deliberately EXCLUDED from
  // Fingerprint() below — verification never changes generated code, so a
  // cache entry produced with it off is still valid with it on.
#if defined(NSF_VERIFY_IR) || !defined(NDEBUG)
  bool verify_ir = true;
#else
  bool verify_ir = false;
#endif

  // Content fingerprint over every field that affects generated code,
  // including the attached profile's serialized contents. `profile_name` is
  // cosmetic and deliberately excluded: two options values that generate
  // identical code fingerprint equal, which is what a content-addressed
  // code cache wants. Unused PGO state (a profile attached with every pgo
  // flag off, or flags set with no profile) does not perturb the result.
  uint64_t Fingerprint() const;

  static CodegenOptions NativeClang();
  static CodegenOptions ChromeV8();
  static CodegenOptions FirefoxSM();
  static CodegenOptions ChromeAsmJs();
  static CodegenOptions FirefoxAsmJs();
  // Era profiles for the Figure 1 history experiment: progressively weaker
  // versions of ChromeV8 (2017 lacks several optimizations).
  static CodegenOptions ChromeV8_2017();
  static CodegenOptions ChromeV8_2018();
};

struct CompileStats {
  double seconds = 0;           // wall-clock compile time
  uint64_t vops = 0;            // IR size after lowering
  uint64_t minstrs = 0;         // emitted machine instructions
  uint64_t spill_slots = 0;     // total spill slots across functions
  uint64_t code_bytes = 0;
};

struct CompileResult {
  bool ok = false;
  std::string error;
  MProgram program;
  CompileStats stats;
  // Joint wasm function index -> MProgram function index (identity here, but
  // kept explicit for callers).
  std::vector<uint32_t> func_map;
  // Host-hook index for each imported function, in import order.
  std::vector<uint32_t> import_hooks;
};

// Compiles a validated module. Imported functions become stub MFunctions
// that marshal stack arguments into registers and invoke host hook `i` (the
// i-th function import). The caller registers matching hooks on the machine.
CompileResult CompileModule(const Module& module, const CodegenOptions& options);

// Lowers a single function to IR (exposed for tests and the case study).
VFunc LowerFunction(const Module& module, uint32_t defined_index, const CodegenOptions& options);

}  // namespace nsf

#endif  // SRC_CODEGEN_CODEGEN_H_
