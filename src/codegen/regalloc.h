// Register allocation over the VOp IR.
//
// Two allocators implement the paper's §6.1.2 contrast:
//   - LinearScan: the fast single-pass allocator browser JITs use
//     (Poletto/Sarkar style over whole-function intervals, no coalescing,
//     no lifetime holes) — cheap to run, produces more spills and moves.
//   - GraphColor: Chaitin/Briggs-style coloring with conservative move
//     coalescing — what offline compilers afford.
#ifndef SRC_CODEGEN_REGALLOC_H_
#define SRC_CODEGEN_REGALLOC_H_

#include <cstdint>
#include <vector>

#include "src/codegen/codegen.h"
#include "src/codegen/ir.h"

namespace nsf {

// Location assignment per vreg.
struct Allocation {
  // loc[v]: >= 0  -> physical register id (Gpr or Xmm value, by class)
  //         == -1 -> never materialized (dead)
  //         <= -2 -> spill slot (-2 - loc == slot index)
  std::vector<int32_t> loc;
  uint32_t num_slots = 0;
  uint32_t num_spilled_vregs = 0;
  std::vector<Gpr> used_gprs;  // callee-save bookkeeping
  std::vector<Xmm> used_xmms;

  bool IsReg(uint32_t v) const { return loc[v] >= 0; }
  bool IsSpill(uint32_t v) const { return loc[v] <= -2; }
  uint32_t SlotOf(uint32_t v) const { return static_cast<uint32_t>(-2 - loc[v]); }
  Gpr GprOf(uint32_t v) const { return static_cast<Gpr>(loc[v]); }
  Xmm XmmOf(uint32_t v) const { return static_cast<Xmm>(loc[v]); }
};

// Per-op liveness (exposed for tests).
struct Liveness {
  // live_out[i]: bitset over vregs, packed 64 per word.
  std::vector<std::vector<uint64_t>> live_out;
  uint32_t words = 0;
};

Liveness ComputeLiveness(const VFunc& vf);

// Allocates registers for `vf` using pools derived from `options`.
Allocation AllocateRegisters(const VFunc& vf, const CodegenOptions& options);

// The register pools a profile allocates from (exposed for tests/benches).
std::vector<Gpr> AllocatableGprs(const CodegenOptions& options);
std::vector<Xmm> AllocatableXmms(const CodegenOptions& options);

}  // namespace nsf

#endif  // SRC_CODEGEN_REGALLOC_H_
