#include "src/codegen/regalloc.h"

#include <algorithm>
#include <bit>
#include <functional>
#include <unordered_map>
#include <unordered_set>

namespace nsf {

namespace {

// Universal exclusions: rsp/rbp (frame), rax/rdx (division + return),
// rcx (shift counts), r10/r11 (emission scratch).
bool UniversallyExcluded(Gpr g) {
  switch (g) {
    case Gpr::kRsp:
    case Gpr::kRbp:
    case Gpr::kRax:
    case Gpr::kRdx:
    case Gpr::kRcx:
    case Gpr::kR10:
    case Gpr::kR11:
      return true;
    default:
      return false;
  }
}

// xmm0 (return), xmm14/xmm15 (emission scratch).
bool UniversallyExcludedXmm(Xmm x) {
  return x == Xmm::kXmm0 || x == Xmm::kXmm14 || x == Xmm::kXmm15;
}

}  // namespace

std::vector<Gpr> AllocatableGprs(const CodegenOptions& options) {
  std::vector<Gpr> pool;
  for (int i = 0; i < kNumGprs; i++) {
    Gpr g = static_cast<Gpr>(i);
    if (UniversallyExcluded(g)) {
      continue;
    }
    if (!options.heap_base_in_disp && g == options.heap_base_reg) {
      continue;
    }
    bool reserved = false;
    for (Gpr r : options.reserved_gprs) {
      reserved = reserved || r == g;
    }
    if (!reserved) {
      pool.push_back(g);
    }
  }
  return pool;
}

std::vector<Xmm> AllocatableXmms(const CodegenOptions& options) {
  std::vector<Xmm> pool;
  for (int i = 0; i < kNumXmms; i++) {
    Xmm x = static_cast<Xmm>(i);
    if (UniversallyExcludedXmm(x)) {
      continue;
    }
    bool reserved = false;
    for (Xmm r : options.reserved_xmms) {
      reserved = reserved || r == x;
    }
    if (!reserved) {
      pool.push_back(x);
    }
  }
  return pool;
}

Liveness ComputeLiveness(const VFunc& vf) {
  const size_t n = vf.ops.size();
  const uint32_t words = static_cast<uint32_t>((vf.vregs.size() + 63) / 64);
  Liveness lv;
  lv.words = words;
  lv.live_out.assign(n, std::vector<uint64_t>(words, 0));

  // Label -> op index.
  std::unordered_map<uint32_t, uint32_t> label_at;
  for (size_t i = 0; i < n; i++) {
    if (vf.ops[i].k == VOp::K::kLabel) {
      label_at[vf.ops[i].label] = static_cast<uint32_t>(i);
    }
  }

  auto succs = [&](size_t i, uint32_t out[2]) -> int {
    const VOp& op = vf.ops[i];
    int count = 0;
    switch (op.k) {
      case VOp::K::kBr:
        out[count++] = label_at.at(op.label);
        break;
      case VOp::K::kBrIf:
      case VOp::K::kBrCmp:
        out[count++] = label_at.at(op.label);
        if (i + 1 < n) {
          out[count++] = static_cast<uint32_t>(i + 1);
        }
        break;
      case VOp::K::kRet:
      case VOp::K::kTrap:
        break;
      default:
        if (i + 1 < n) {
          out[count++] = static_cast<uint32_t>(i + 1);
        }
        break;
    }
    return count;
  };

  // Fixpoint backward dataflow at op granularity.
  bool changed = true;
  std::vector<uint64_t> live(words);
  while (changed) {
    changed = false;
    for (size_t ii = n; ii > 0; ii--) {
      size_t i = ii - 1;
      // live_out = union of live_in(succ); live_in(s) = (live_out(s) - def) | use.
      std::fill(live.begin(), live.end(), 0);
      uint32_t sc[2];
      int ns = succs(i, sc);
      for (int s = 0; s < ns; s++) {
        const VOp& sop = vf.ops[sc[s]];
        // live_in of successor.
        std::vector<uint64_t> in = lv.live_out[sc[s]];
        uint32_t d = DefOf(sop);
        if (d != kNoVReg) {
          in[d / 64] &= ~(uint64_t{1} << (d % 64));
        }
        ForEachUse(sop, [&in](uint32_t v) { in[v / 64] |= uint64_t{1} << (v % 64); });
        for (uint32_t w = 0; w < words; w++) {
          live[w] |= in[w];
        }
      }
      if (live != lv.live_out[i]) {
        lv.live_out[i] = live;
        changed = true;
      }
    }
  }
  return lv;
}

namespace {

struct Interval {
  uint32_t vreg = 0;
  uint32_t start = 0;
  uint32_t end = 0;
  uint32_t weight = 0;  // spill-cost proxy: use count (loop-weighted for GC)
  bool is_fp = false;
};

// Builds whole-function live intervals from per-op liveness.
std::vector<Interval> BuildIntervals(const VFunc& vf, const Liveness& lv) {
  const uint32_t kNone = UINT32_MAX;
  std::vector<uint32_t> first(vf.vregs.size(), kNone);
  std::vector<uint32_t> last(vf.vregs.size(), 0);
  std::vector<uint32_t> weight(vf.vregs.size(), 0);
  auto touch = [&](uint32_t v, uint32_t i) {
    if (first[v] == kNone) {
      first[v] = i;
    }
    first[v] = std::min(first[v], i);
    last[v] = std::max(last[v], i);
  };
  for (uint32_t i = 0; i < vf.ops.size(); i++) {
    const VOp& op = vf.ops[i];
    uint32_t d = DefOf(op);
    if (d != kNoVReg) {
      touch(d, i);
      weight[d]++;
    }
    ForEachUse(op, [&](uint32_t v) {
      touch(v, i);
      weight[v]++;
    });
    for (uint32_t w = 0; w < lv.words; w++) {
      uint64_t bits = lv.live_out[i][w];
      while (bits != 0) {
        uint32_t bit = static_cast<uint32_t>(std::countr_zero(bits));
        bits &= bits - 1;
        touch(w * 64 + bit, i + 1 <= vf.ops.size() ? i + 1 : i);
      }
    }
  }
  std::vector<Interval> out;
  for (uint32_t v = 0; v < vf.vregs.size(); v++) {
    if (first[v] == kNone) {
      continue;
    }
    Interval iv;
    iv.vreg = v;
    iv.start = first[v];
    iv.end = last[v];
    iv.weight = weight[v];
    iv.is_fp = vf.vregs[v].is_fp;
    out.push_back(iv);
  }
  return out;
}

// --- Linear scan (per class) ---
void LinearScanClass(std::vector<Interval> intervals, uint32_t num_regs,
                     std::vector<int32_t>* loc, uint32_t* next_slot,
                     std::vector<bool>* used_regs, uint32_t* spills) {
  std::sort(intervals.begin(), intervals.end(), [](const Interval& a, const Interval& b) {
    return a.start < b.start || (a.start == b.start && a.vreg < b.vreg);
  });
  struct Active {
    uint32_t end;
    uint32_t vreg;
    uint32_t reg;
  };
  std::vector<Active> active;  // kept sorted by end
  std::vector<bool> free_reg(num_regs, true);

  for (const Interval& iv : intervals) {
    // Expire old intervals.
    size_t keep = 0;
    for (size_t i = 0; i < active.size(); i++) {
      if (active[i].end >= iv.start) {
        active[keep++] = active[i];
      } else {
        free_reg[active[i].reg] = true;
      }
    }
    active.resize(keep);
    // Find a free register.
    int32_t reg = -1;
    for (uint32_t r = 0; r < num_regs; r++) {
      if (free_reg[r]) {
        reg = static_cast<int32_t>(r);
        break;
      }
    }
    if (reg >= 0) {
      free_reg[reg] = false;
      (*used_regs)[reg] = true;
      (*loc)[iv.vreg] = reg;
      active.push_back(Active{iv.end, iv.vreg, static_cast<uint32_t>(reg)});
      std::sort(active.begin(), active.end(),
                [](const Active& a, const Active& b) { return a.end < b.end; });
      continue;
    }
    // Spill: the active interval with the furthest end, or this one.
    Active* victim = active.empty() ? nullptr : &active.back();
    if (victim != nullptr && victim->end > iv.end) {
      (*loc)[iv.vreg] = (*loc)[victim->vreg];
      (*loc)[victim->vreg] = -2 - static_cast<int32_t>((*next_slot)++);
      (*spills)++;
      victim->vreg = iv.vreg;
      victim->end = iv.end;
      std::sort(active.begin(), active.end(),
                [](const Active& a, const Active& b) { return a.end < b.end; });
    } else {
      (*loc)[iv.vreg] = -2 - static_cast<int32_t>((*next_slot)++);
      (*spills)++;
    }
  }
}

// --- Graph coloring (per class) ---
void GraphColorClass(const VFunc& vf, const Liveness& lv, const std::vector<Interval>& intervals,
                     bool fp_class, uint32_t num_regs, std::vector<int32_t>* loc,
                     uint32_t* next_slot, std::vector<bool>* used_regs, uint32_t* spills) {
  // Node set: vregs of this class that appear.
  std::vector<uint32_t> nodes;
  std::vector<int32_t> node_of(vf.vregs.size(), -1);
  for (const Interval& iv : intervals) {
    node_of[iv.vreg] = static_cast<int32_t>(nodes.size());
    nodes.push_back(iv.vreg);
  }
  const size_t nn = nodes.size();
  std::vector<std::unordered_set<uint32_t>> adj(nn);
  std::vector<uint32_t> weight(nn, 0);
  for (size_t i = 0; i < nodes.size(); i++) {
    weight[i] = intervals[i].weight;
  }

  auto interfere = [&](uint32_t a, uint32_t b) {
    if (a == b) {
      return;
    }
    adj[a].insert(b);
    adj[b].insert(a);
  };

  // Def interferes with live-out (minus move sources — allows coalescing).
  for (size_t i = 0; i < vf.ops.size(); i++) {
    const VOp& op = vf.ops[i];
    uint32_t d = DefOf(op);
    if (d == kNoVReg || vf.vregs[d].is_fp != fp_class || node_of[d] < 0) {
      continue;
    }
    uint32_t dn = static_cast<uint32_t>(node_of[d]);
    uint32_t move_src = op.k == VOp::K::kMove ? op.a : kNoVReg;
    for (uint32_t w = 0; w < lv.words; w++) {
      uint64_t bits = lv.live_out[i][w];
      while (bits != 0) {
        uint32_t bit = static_cast<uint32_t>(std::countr_zero(bits));
        bits &= bits - 1;
        uint32_t v = w * 64 + bit;
        if (v != d && v != move_src && vf.vregs[v].is_fp == fp_class && node_of[v] >= 0) {
          interfere(dn, static_cast<uint32_t>(node_of[v]));
        }
      }
    }
  }

  // Conservative move coalescing (Briggs): merge move-related nodes when the
  // merged node has < num_regs high-degree neighbors.
  std::vector<int32_t> merged_into(nn, -1);
  std::function<uint32_t(uint32_t)> find = [&](uint32_t x) {
    while (merged_into[x] >= 0) {
      x = static_cast<uint32_t>(merged_into[x]);
    }
    return x;
  };
  for (const VOp& op : vf.ops) {
    if (op.k != VOp::K::kMove || op.a == kNoVReg) {
      continue;
    }
    if (vf.vregs[op.d].is_fp != fp_class || node_of[op.d] < 0 || node_of[op.a] < 0) {
      continue;
    }
    uint32_t x = find(static_cast<uint32_t>(node_of[op.d]));
    uint32_t y = find(static_cast<uint32_t>(node_of[op.a]));
    if (x == y || adj[x].count(y) != 0) {
      continue;
    }
    // Briggs test on the union.
    std::unordered_set<uint32_t> combined;
    for (uint32_t t : adj[x]) {
      combined.insert(find(t));
    }
    for (uint32_t t : adj[y]) {
      combined.insert(find(t));
    }
    combined.erase(x);
    combined.erase(y);
    uint32_t high = 0;
    for (uint32_t t : combined) {
      if (adj[t].size() >= num_regs) {
        high++;
      }
    }
    if (high >= num_regs) {
      continue;
    }
    // Merge y into x.
    merged_into[y] = static_cast<int32_t>(x);
    for (uint32_t t : adj[y]) {
      uint32_t tt = find(t);
      if (tt != x) {
        adj[x].insert(tt);
        adj[tt].insert(x);
      }
    }
    weight[x] += weight[y];
  }

  // Rebuild adjacency over representatives.
  std::vector<std::unordered_set<uint32_t>> radj(nn);
  for (uint32_t i = 0; i < nn; i++) {
    uint32_t ri = find(i);
    for (uint32_t t : adj[i]) {
      uint32_t rt = find(t);
      if (ri != rt) {
        radj[ri].insert(rt);
        radj[rt].insert(ri);
      }
    }
  }

  // Chaitin-Briggs simplify/spill with optimistic coloring.
  std::vector<uint32_t> reps;
  for (uint32_t i = 0; i < nn; i++) {
    if (find(i) == i) {
      reps.push_back(i);
    }
  }
  std::vector<std::unordered_set<uint32_t>> work = radj;
  std::vector<bool> removed(nn, false);
  std::vector<uint32_t> stack;
  size_t remaining = reps.size();
  while (remaining > 0) {
    bool simplified = false;
    for (uint32_t r : reps) {
      if (!removed[r] && work[r].size() < num_regs) {
        stack.push_back(r);
        removed[r] = true;
        remaining--;
        for (uint32_t t : radj[r]) {
          work[t].erase(r);
        }
        simplified = true;
      }
    }
    if (simplified) {
      continue;
    }
    // Pick a spill candidate: lowest weight / degree ratio.
    uint32_t best = UINT32_MAX;
    double best_score = 0;
    for (uint32_t r : reps) {
      if (removed[r]) {
        continue;
      }
      double score = static_cast<double>(weight[r]) / (1.0 + work[r].size());
      if (best == UINT32_MAX || score < best_score) {
        best = r;
        best_score = score;
      }
    }
    stack.push_back(best);
    removed[best] = true;
    remaining--;
    for (uint32_t t : radj[best]) {
      work[t].erase(best);
    }
  }

  // Optimistic assignment.
  std::vector<int32_t> color(nn, -1);
  while (!stack.empty()) {
    uint32_t r = stack.back();
    stack.pop_back();
    std::vector<bool> taken(num_regs, false);
    for (uint32_t t : radj[r]) {
      if (color[t] >= 0) {
        taken[color[t]] = true;
      }
    }
    int32_t c = -1;
    for (uint32_t k = 0; k < num_regs; k++) {
      if (!taken[k]) {
        c = static_cast<int32_t>(k);
        break;
      }
    }
    color[r] = c;  // -1 -> spilled
  }

  // Write assignments back through the union-find.
  std::unordered_map<uint32_t, int32_t> rep_slot;
  for (uint32_t i = 0; i < nn; i++) {
    uint32_t r = find(i);
    int32_t c = color[r];
    if (c >= 0) {
      (*loc)[nodes[i]] = c;
      (*used_regs)[c] = true;
    } else {
      auto it = rep_slot.find(r);
      if (it == rep_slot.end()) {
        it = rep_slot.emplace(r, -2 - static_cast<int32_t>((*next_slot)++)).first;
        (*spills)++;
      }
      (*loc)[nodes[i]] = it->second;
    }
  }
}

}  // namespace

Allocation AllocateRegisters(const VFunc& vf, const CodegenOptions& options) {
  Liveness lv = ComputeLiveness(vf);
  std::vector<Interval> all = BuildIntervals(vf, lv);
  std::vector<Interval> ints;
  std::vector<Interval> fps;
  for (const Interval& iv : all) {
    (iv.is_fp ? fps : ints).push_back(iv);
  }

  std::vector<Gpr> gpr_pool = AllocatableGprs(options);
  std::vector<Xmm> xmm_pool = AllocatableXmms(options);

  Allocation alloc;
  alloc.loc.assign(vf.vregs.size(), -1);
  std::vector<bool> gpr_used(gpr_pool.size(), false);
  std::vector<bool> xmm_used(xmm_pool.size(), false);
  std::vector<int32_t> pool_loc(vf.vregs.size(), -1);

  if (options.regalloc == RegAllocKind::kLinearScan) {
    LinearScanClass(ints, static_cast<uint32_t>(gpr_pool.size()), &pool_loc, &alloc.num_slots,
                    &gpr_used, &alloc.num_spilled_vregs);
    LinearScanClass(fps, static_cast<uint32_t>(xmm_pool.size()), &pool_loc, &alloc.num_slots,
                    &xmm_used, &alloc.num_spilled_vregs);
  } else {
    GraphColorClass(vf, lv, ints, false, static_cast<uint32_t>(gpr_pool.size()), &pool_loc,
                    &alloc.num_slots, &gpr_used, &alloc.num_spilled_vregs);
    GraphColorClass(vf, lv, fps, true, static_cast<uint32_t>(xmm_pool.size()), &pool_loc,
                    &alloc.num_slots, &xmm_used, &alloc.num_spilled_vregs);
  }

  // Translate pool indices to machine register ids.
  for (uint32_t v = 0; v < vf.vregs.size(); v++) {
    int32_t p = pool_loc[v];
    if (p == -1 || p <= -2) {
      alloc.loc[v] = p;
      continue;
    }
    if (vf.vregs[v].is_fp) {
      alloc.loc[v] = static_cast<int32_t>(xmm_pool[p]);
    } else {
      alloc.loc[v] = static_cast<int32_t>(gpr_pool[p]);
    }
  }
  for (size_t i = 0; i < gpr_pool.size(); i++) {
    if (gpr_used[i]) {
      alloc.used_gprs.push_back(gpr_pool[i]);
    }
  }
  for (size_t i = 0; i < xmm_pool.size(); i++) {
    if (xmm_used[i]) {
      alloc.used_xmms.push_back(xmm_pool[i]);
    }
  }
  return alloc;
}

}  // namespace nsf
