// Virtual-register IR sitting between Wasm bytecode and the simulated x64
// target. The lowering pass abstract-interprets the Wasm operand stack into
// three-address VOps; optimization passes rewrite them; register allocation
// assigns physical registers; emission produces MInstrs.
#ifndef SRC_CODEGEN_IR_H_
#define SRC_CODEGEN_IR_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/wasm/module.h"
#include "src/x64/insts.h"

namespace nsf {

inline constexpr uint32_t kNoVReg = UINT32_MAX;

// Value class of a virtual register.
struct VRegInfo {
  bool is_fp = false;
  uint8_t width = 4;  // 4 or 8
};

struct VOp {
  enum class K : uint8_t {
    kParam,     // d <- incoming argument `imm` (stack slot read at emission)
    kConst,     // d <- imm (int, width)
    kConstF,    // d <- imm bit pattern (fp, width 4/8)
    kMove,      // d <- a (same class)
    kUn,        // d <- wop(a)
    kBin,       // d <- wop(a, b)
    kCmp,       // d <- (a `cond` b) as 0/1; fp_cmp when is_fp
    kSelect,    // d <- c != 0 ? a : b
    kLoad,      // d <- heap[a + offset], width/sign/is_fp
                //   after fusion, may carry base/index/scale in a/b/imm
    kStore,     // heap[a + offset] <- b
    kGlobalGet, // d <- globals[imm]
    kGlobalSet, // globals[imm] <- a
    kLabel,     // label `label`
    kBr,        // jump label
    kBrIf,      // if (a != 0) jump label  (negate: if a == 0)
    kBrCmp,     // if (a `cond` b) jump label (fused compare+branch)
    kCall,      // d? <- call func(args)
    kCallInd,   // d? <- call_indirect a with sig `sig` (args)
    kMemSize,   // d <- memory.size
    kMemGrow,   // d <- memory.grow(a)
    kRet,       // return a (or nothing when a == kNoVReg)
    kTrap,      // unconditional trap (unreachable)
  };

  K k = K::kConst;
  Opcode wop = Opcode::kNop;  // semantic selector for kUn/kBin
  uint32_t d = kNoVReg;
  uint32_t a = kNoVReg;
  uint32_t b = kNoVReg;
  uint32_t c = kNoVReg;
  uint64_t imm = 0;
  int32_t offset = 0;
  uint32_t label = 0;
  uint32_t func = 0;
  uint32_t sig = 0;
  uint8_t width = 4;
  bool sign = false;
  bool is_fp = false;
  bool negate = false;
  Cond cond = Cond::kE;
  std::vector<uint32_t> args;

  // Fused addressing (filled by the addressing-mode pass, native profile):
  // when scale != 0, a kLoad address is a + b*scale + offset and a kStore
  // address is a + c*scale + offset.
  uint8_t fuse_scale = 0;
  // Profile-site ordinal (src/profile/): which Wasm-level branch site
  // (kBrIf/kBrCmp lowered from `if`/`br_if`) or indirect-call site this op
  // came from; UINT32_MAX when unprofiled (e.g. br_table compare chains).
  uint32_t psite = UINT32_MAX;
  // Register-memory ALU fusion (kStore only): when not kNop, the store is
  // actually `alu_op [addr], b` — a load-modify-store in one instruction.
  Opcode alu_op = Opcode::kNop;
};

// One function in IR form.
struct VFunc {
  std::string name;
  uint32_t wasm_index = 0;     // joint function index
  uint32_t num_params = 0;
  bool ret_fp = false;
  bool has_ret = false;
  std::vector<VRegInfo> vregs;
  std::vector<VOp> ops;
  uint32_t next_label = 0;
  // Labels of loop headers (for the profile-specific loop-entry jump).
  std::vector<uint32_t> loop_headers;

  uint32_t NewVReg(bool is_fp, uint8_t width) {
    vregs.push_back(VRegInfo{is_fp, width});
    return static_cast<uint32_t>(vregs.size()) - 1;
  }
  uint32_t NewLabel() { return next_label++; }
};

// Returns the vregs read by `op` (up to 3 plus args).
void ForEachUse(const VOp& op, const std::function<void(uint32_t)>& fn);
// Returns the vreg defined by `op`, or kNoVReg.
uint32_t DefOf(const VOp& op);
// True if the op has no side effects and its result being dead makes it
// removable.
bool IsPure(const VOp& op);

std::string VOpToString(const VOp& op);

}  // namespace nsf

#endif  // SRC_CODEGEN_IR_H_
