#include "src/telemetry/metrics.h"

#include <algorithm>
#include <cmath>

#include "src/support/str.h"

namespace nsf {
namespace telemetry {

namespace {

void AtomicMin(std::atomic<uint64_t>* target, uint64_t v) {
  uint64_t cur = target->load(std::memory_order_relaxed);
  while (v < cur && !target->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<uint64_t>* target, uint64_t v) {
  uint64_t cur = target->load(std::memory_order_relaxed);
  while (v > cur && !target->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

// --- Histogram ---

uint32_t Histogram::BucketFor(uint64_t value) {
  if (value < 2 * kSubCount) {
    return static_cast<uint32_t>(value);  // exact low range
  }
  uint32_t msb = 63 - static_cast<uint32_t>(__builtin_clzll(value));
  uint32_t shift = msb - kSubBits;  // >= 1 here
  uint32_t sub = static_cast<uint32_t>(value >> shift) & (kSubCount - 1);
  return 2 * kSubCount + (shift - 1) * kSubCount + sub;
}

uint64_t Histogram::BucketMidpoint(uint32_t bucket) {
  if (bucket < 2 * kSubCount) {
    return bucket;  // exact buckets represent themselves
  }
  uint32_t shift = (bucket - 2 * kSubCount) / kSubCount + 1;
  uint32_t sub = (bucket - 2 * kSubCount) % kSubCount;
  uint64_t lower = static_cast<uint64_t>(kSubCount + sub) << shift;
  uint64_t width = uint64_t{1} << shift;
  return lower + width / 2;
}

void Histogram::Record(uint64_t value) {
  buckets_[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  AtomicMin(&min_, value);
  AtomicMax(&max_, value);
}

uint64_t Histogram::min() const {
  uint64_t v = min_.load(std::memory_order_relaxed);
  return v == UINT64_MAX ? 0 : v;
}

uint64_t Histogram::max() const { return max_.load(std::memory_order_relaxed); }

uint64_t Histogram::Percentile(double q) const {
  uint64_t total = count();
  if (total == 0) {
    return 0;
  }
  q = std::clamp(q, 0.0, 1.0);
  uint64_t rank = static_cast<uint64_t>(std::ceil(q * static_cast<double>(total)));
  if (rank == 0) {
    rank = 1;
  }
  uint64_t seen = 0;
  for (uint32_t b = 0; b < kNumBuckets; b++) {
    seen += buckets_[b].load(std::memory_order_relaxed);
    if (seen >= rank) {
      // Clamp the midpoint into the observed range so tails never report a
      // value outside [min, max] (the last bucket may be mostly empty).
      return std::clamp(BucketMidpoint(b), min(), max());
    }
  }
  return max();  // racing recorders bumped count_ before their bucket landed
}

Histogram::Snapshot Histogram::TakeSnapshot() const {
  Snapshot s;
  s.count = count();
  s.sum = sum();
  s.min = min();
  s.max = max();
  s.p50 = Percentile(0.50);
  s.p90 = Percentile(0.90);
  s.p99 = Percentile(0.99);
  s.p999 = Percentile(0.999);
  return s;
}

void Histogram::Reset() {
  for (auto& b : buckets_) {
    b.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

// --- MetricsRegistry ---

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* instance = new MetricsRegistry();  // never destroyed
  return *instance;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (gauges_.count(name) != 0 || histograms_.count(name) != 0) {
    return nullptr;
  }
  auto& slot = counters_[name];
  if (slot == nullptr) {
    slot.reset(new Counter(name));
  }
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (counters_.count(name) != 0 || histograms_.count(name) != 0) {
    return nullptr;
  }
  auto& slot = gauges_[name];
  if (slot == nullptr) {
    slot.reset(new Gauge(name));
  }
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (counters_.count(name) != 0 || gauges_.count(name) != 0) {
    return nullptr;
  }
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot.reset(new Histogram(name));
  }
  return slot.get();
}

std::string MetricsRegistry::DumpJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out += StrFormat("%s\"%s\":%llu", first ? "" : ",", name.c_str(),
                     static_cast<unsigned long long>(c->value()));
    first = false;
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out += StrFormat("%s\"%s\":%.6f", first ? "" : ",", name.c_str(), g->value());
    first = false;
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    Histogram::Snapshot s = h->TakeSnapshot();
    out += StrFormat(
        "%s\"%s\":{\"count\":%llu,\"sum\":%llu,\"min\":%llu,\"max\":%llu,"
        "\"p50\":%llu,\"p90\":%llu,\"p99\":%llu,\"p999\":%llu}",
        first ? "" : ",", name.c_str(), static_cast<unsigned long long>(s.count),
        static_cast<unsigned long long>(s.sum), static_cast<unsigned long long>(s.min),
        static_cast<unsigned long long>(s.max), static_cast<unsigned long long>(s.p50),
        static_cast<unsigned long long>(s.p90), static_cast<unsigned long long>(s.p99),
        static_cast<unsigned long long>(s.p999));
    first = false;
  }
  out += "}}";
  return out;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) {
    c->Reset();
  }
  for (auto& [name, g] : gauges_) {
    g->Reset();
  }
  for (auto& [name, h] : histograms_) {
    h->Reset();
  }
}

size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

}  // namespace telemetry
}  // namespace nsf
