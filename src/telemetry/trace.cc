#include "src/telemetry/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "src/support/str.h"

namespace nsf {
namespace telemetry {

std::atomic<bool> g_trace_enabled{false};

namespace {

// The recorder epoch: first NowNs() call. steady_clock so spans never go
// backwards under NTP adjustments.
std::chrono::steady_clock::time_point Epoch() {
  static const std::chrono::steady_clock::time_point epoch = std::chrono::steady_clock::now();
  return epoch;
}

std::string JsonQuote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  out += "\"";
  return out;
}

void AppendArgsJson(std::string* out, const std::vector<std::pair<std::string, std::string>>& args) {
  *out += "{";
  for (size_t i = 0; i < args.size(); i++) {
    *out += (i == 0 ? "" : ",");
    *out += JsonQuote(args[i].first) + ":" + args[i].second;
  }
  *out += "}";
}

// One "X" (complete) event line. ts/dur in microseconds, 3 decimals.
void AppendEventJson(std::string* out, const TraceEvent& e, uint32_t tid) {
  *out += StrFormat("{\"name\":%s,\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
                    "\"pid\":1,\"tid\":%u,\"args\":",
                    JsonQuote(e.name).c_str(), e.cat,
                    static_cast<double>(e.start_ns) / 1e3, static_cast<double>(e.dur_ns) / 1e3,
                    tid);
  AppendArgsJson(out, e.args);
  *out += "}";
}

}  // namespace

uint64_t TraceRecorder::NowNs() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now() - Epoch())
                                   .count());
}

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* instance = new TraceRecorder();  // never destroyed
  return *instance;
}

void TraceRecorder::Start(const std::string& path, size_t ring_capacity) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    path_ = path;
    ring_capacity_ = ring_capacity == 0 ? 1 : ring_capacity;
  }
  Epoch();  // pin the epoch no later than trace start
  g_trace_enabled.store(true, std::memory_order_relaxed);
}

void TraceRecorder::StartFromEnv() {
  const char* path = std::getenv("NSF_TRACE");
  if (path == nullptr || path[0] == '\0') {
    return;
  }
  Start(path);
  std::atexit([] {
    TraceRecorder& r = TraceRecorder::Global();
    r.Stop();
    if (r.Flush()) {
      fprintf(stderr, "  wrote trace %s (%llu spans, %llu dropped)\n", r.path().c_str(),
              static_cast<unsigned long long>(r.recorded()),
              static_cast<unsigned long long>(r.dropped()));
    }
  });
}

void TraceRecorder::Stop() { g_trace_enabled.store(false, std::memory_order_relaxed); }

TraceRecorder::ThreadBuffer* TraceRecorder::BufferForThisThread() {
  // Registered once per thread; the shared_ptr in buffers_ keeps the buffer
  // alive for flushing even after the thread exits.
  thread_local std::shared_ptr<ThreadBuffer> buffer;
  if (buffer == nullptr) {
    buffer = std::make_shared<ThreadBuffer>();
    std::lock_guard<std::mutex> lock(mu_);
    buffer->tid = next_tid_++;
    buffer->ring.reserve(std::min(ring_capacity_, size_t{1024}));
    buffers_.push_back(buffer);
  }
  return buffer.get();
}

void TraceRecorder::SetThreadName(const std::string& name) {
  ThreadBuffer* buf = BufferForThisThread();
  std::lock_guard<std::mutex> lock(buf->mu);
  buf->name = name;
}

void TraceRecorder::Record(TraceEvent event) {
  size_t capacity;
  {
    std::lock_guard<std::mutex> lock(mu_);
    capacity = ring_capacity_;
  }
  ThreadBuffer* buf = BufferForThisThread();
  std::lock_guard<std::mutex> lock(buf->mu);  // uncontended except vs Flush
  buf->recorded++;
  if (buf->ring.size() < capacity) {
    buf->ring.push_back(std::move(event));
  } else {
    // Ring full: overwrite oldest so a long run keeps its most recent spans.
    buf->ring[buf->next] = std::move(event);
    buf->next = (buf->next + 1) % buf->ring.size();
  }
}

uint64_t TraceRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t n = 0;
  for (const auto& buf : buffers_) {
    std::lock_guard<std::mutex> bl(buf->mu);
    n += buf->recorded - buf->ring.size();
  }
  return n;
}

uint64_t TraceRecorder::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t n = 0;
  for (const auto& buf : buffers_) {
    std::lock_guard<std::mutex> bl(buf->mu);
    n += buf->recorded;
  }
  return n;
}

std::string TraceRecorder::DumpJson() const {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    buffers = buffers_;
  }
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
         "\"args\":{\"name\":\"nsf\"}}";
  for (const auto& buf : buffers) {
    std::lock_guard<std::mutex> bl(buf->mu);
    if (!buf->name.empty()) {
      out += StrFormat(",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%u,"
                       "\"args\":{\"name\":%s}}",
                       buf->tid, JsonQuote(buf->name).c_str());
    }
    // Oldest-first: on a wrapped ring the cursor marks the oldest entry.
    size_t n = buf->ring.size();
    for (size_t i = 0; i < n; i++) {
      const TraceEvent& e = buf->ring[(buf->next + i) % n];
      out += ",";
      AppendEventJson(&out, e, buf->tid);
    }
  }
  out += "]}";
  return out;
}

bool TraceRecorder::Flush() {
  std::string path;
  {
    std::lock_guard<std::mutex> lock(mu_);
    path = path_;
  }
  if (path.empty()) {
    return false;
  }
  std::string json = DumpJson();
  FILE* f = fopen(path.c_str(), "w");
  if (f == nullptr) {
    fprintf(stderr, "!! cannot write trace %s\n", path.c_str());
    return false;
  }
  fputs(json.c_str(), f);
  fputc('\n', f);
  fclose(f);
  return true;
}

void TraceRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& buf : buffers_) {
    std::lock_guard<std::mutex> bl(buf->mu);
    buf->ring.clear();
    buf->next = 0;
    buf->recorded = 0;
  }
}

namespace {
// `NSF_TRACE=out.json <binary>` works with zero code in main(): recording
// arms before main and flushes at exit.
const bool g_trace_env_init = [] {
  TraceRecorder::Global().StartFromEnv();
  return true;
}();
}  // namespace

// --- Span ---

void Span::Begin(const char* name, const char* cat) {
  impl_ = std::make_unique<TraceEvent>();
  impl_->name = name;
  impl_->cat = cat;
  impl_->start_ns = TraceRecorder::NowNs();
}

void Span::End() {
  impl_->dur_ns = TraceRecorder::NowNs() - impl_->start_ns;
  TraceRecorder::Global().Record(std::move(*impl_));
  impl_.reset();
}

void Span::arg(const char* key, const std::string& value) {
  if (impl_ != nullptr) {
    impl_->args.emplace_back(key, JsonQuote(value));
  }
}

void Span::arg(const char* key, const char* value) {
  if (impl_ != nullptr) {
    impl_->args.emplace_back(key, JsonQuote(value));
  }
}

void Span::arg(const char* key, uint64_t value) {
  if (impl_ != nullptr) {
    impl_->args.emplace_back(key, StrFormat("%llu", static_cast<unsigned long long>(value)));
  }
}

void Span::arg(const char* key, double value) {
  if (impl_ != nullptr) {
    impl_->args.emplace_back(key, StrFormat("%.6f", value));
  }
}

}  // namespace telemetry
}  // namespace nsf
