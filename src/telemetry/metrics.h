// Process-wide metrics registry: the always-on half of the telemetry
// subsystem (the on-demand half is span tracing, src/telemetry/trace.h).
//
// Three instrument kinds, registered by name and dumpable as one JSON
// object (every BENCH_*.json embeds it as its `telemetry` block):
//
//   Counter   — monotonically increasing count (lock-free atomic add).
//   Gauge     — last-written value (lock-free atomic store of a double).
//   Histogram — log-bucketed latency/value distribution with percentile
//               extraction (p50/p90/p99/p999). Recording is a handful of
//               relaxed atomic ops on a fixed bucket array: cheap enough to
//               stay on in production paths, which is the point — the
//               serving-mode SLO work optimizes exactly these percentiles.
//
// Usage pattern at an instrumentation site (the lookup happens once, the hot
// path is only the atomic ops):
//
//   static telemetry::Counter& hits =
//       *telemetry::MetricsRegistry::Global().GetCounter("engine.cache.hit");
//   hits.Add();
//
// Time histograms record NANOSECONDS by convention and carry a `_ns` name
// suffix; Histogram itself is unit-agnostic over uint64 values.
//
// Thread safety: registration takes a mutex (once per site); instrument
// pointers are stable for the registry's lifetime; all recording is
// lock-free atomics. Reset() zeroes values but never invalidates pointers.
#ifndef SRC_TELEMETRY_METRICS_H_
#define SRC_TELEMETRY_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace nsf {
namespace telemetry {

class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  explicit Counter(std::string name) : name_(std::move(name)) {}
  std::string name_;
  std::atomic<uint64_t> value_{0};
};

class Gauge {
 public:
  void Set(double v) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    __builtin_memcpy(&bits, &v, sizeof(bits));
    bits_.store(bits, std::memory_order_relaxed);
  }
  double value() const {
    uint64_t bits = bits_.load(std::memory_order_relaxed);
    double v;
    __builtin_memcpy(&v, &bits, sizeof(v));
    return v;
  }
  const std::string& name() const { return name_; }
  void Reset() { Set(0.0); }

 private:
  friend class MetricsRegistry;
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  std::string name_;
  std::atomic<uint64_t> bits_{0};
};

// Log-bucketed histogram over uint64 values (HdrHistogram-style): values
// below 2^(kSubBits+1) get exact buckets; above that, each power-of-two
// octave is split into 2^kSubBits sub-buckets, bounding the relative error
// of any reported quantile by 1/2^kSubBits (12.5% at kSubBits=3), while the
// whole 64-bit range fits one fixed array of atomics.
class Histogram {
 public:
  static constexpr uint32_t kSubBits = 3;
  static constexpr uint32_t kSubCount = 1u << kSubBits;  // sub-buckets per octave
  // Exact buckets [0, 2*kSubCount) + one run of kSubCount per octave above.
  static constexpr uint32_t kNumBuckets = 2 * kSubCount + (63 - kSubBits) * kSubCount;

  void Record(uint64_t value);
  void RecordSeconds(double seconds) {  // convention: time histograms store ns
    Record(seconds <= 0 ? 0 : static_cast<uint64_t>(seconds * 1e9));
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t min() const;  // 0 when empty
  uint64_t max() const;

  // Value at quantile q in [0,1] (0.5 = median): the representative value
  // (bucket midpoint) of the bucket holding the ceil(q*count)-th recording.
  // 0 when empty. Approximation error is bounded by the bucket's relative
  // width (<= 1/kSubCount above the exact range, exact below it).
  uint64_t Percentile(double q) const;

  struct Snapshot {
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t min = 0;
    uint64_t max = 0;
    uint64_t p50 = 0;
    uint64_t p90 = 0;
    uint64_t p99 = 0;
    uint64_t p999 = 0;
  };
  // One coherent-enough view for reporting: buckets are read individually
  // (relaxed), so a snapshot taken during concurrent recording may be off by
  // in-flight recordings — fine for telemetry, never for correctness.
  Snapshot TakeSnapshot() const;

  const std::string& name() const { return name_; }
  void Reset();

  // Bucket mapping, exposed for tests: index for a value, and the
  // representative (midpoint) value reported for that bucket.
  static uint32_t BucketFor(uint64_t value);
  static uint64_t BucketMidpoint(uint32_t bucket);

 private:
  friend class MetricsRegistry;
  explicit Histogram(std::string name) : name_(std::move(name)) {}

  std::string name_;
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
};

// Name -> instrument map. One process-wide instance (Global()); tests may
// construct private registries.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& Global();

  // Register-or-get; returned pointers are stable for the registry's
  // lifetime. A name registers at most one kind: requesting an existing name
  // as a different kind returns null (callers treat that as a programming
  // error; it cannot happen with distinct metric names).
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  // {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,min,max,
  // p50,p90,p99,p999}}} — keys sorted by name (std::map iteration order), so
  // the shape is deterministic even though the values are live.
  std::string DumpJson() const;

  // Zeroes every registered instrument (pointers stay valid). Benches use
  // this to scope the telemetry block to one phase.
  void Reset();

  size_t size() const;

 private:
  mutable std::mutex mu_;  // guards the maps only, never the instruments
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace telemetry
}  // namespace nsf

#endif  // SRC_TELEMETRY_METRICS_H_
