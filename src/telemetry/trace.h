// Span tracing: the on-demand half of the telemetry subsystem.
//
// RAII `Span`s record (thread, start, duration, key/value args) into
// per-thread ring buffers; the recorder flushes them on demand as Chrome
// `trace_event`-format JSON, so a run opens directly in chrome://tracing or
// https://ui.perfetto.dev. Export
//
//   NSF_TRACE=/tmp/run.json ./engine_parallel
//
// and every instrumented phase — compiles, disk-cache loads, tier-up
// warm-ups, predecode, per-request runs on their worker lanes — appears on a
// timeline, one track per thread (flush happens automatically at exit).
//
// Cost contract: tracing COMPILED IN BUT DISABLED must be near-free. A
// disabled Span construction is one relaxed atomic load and a branch; no
// allocation, no clock read, no locks. Arg formatting only happens on active
// spans. (The dispatch inner loop is never span-instrumented at all —
// per-handler visibility there is the separate NSF_DISPATCH_STATS build,
// see src/machine/decode.h.)
//
// Thread safety: recording is per-thread (a thread only writes its own
// buffer, under an uncontended buffer mutex that exists so Flush can read
// live buffers); Start/Stop/Flush may be called from any thread.
#ifndef SRC_TELEMETRY_TRACE_H_
#define SRC_TELEMETRY_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace nsf {
namespace telemetry {

// Global on/off for the span fast path. Read with TraceEnabled(); flipped
// only by TraceRecorder::Start/Stop.
extern std::atomic<bool> g_trace_enabled;
inline bool TraceEnabled() { return g_trace_enabled.load(std::memory_order_relaxed); }

// One completed span. `args` values are pre-rendered JSON (strings arrive
// quoted+escaped, numbers raw), so flushing is pure concatenation.
struct TraceEvent {
  std::string name;
  const char* cat = "engine";
  uint64_t start_ns = 0;  // since trace start
  uint64_t dur_ns = 0;
  std::vector<std::pair<std::string, std::string>> args;
};

class TraceRecorder {
 public:
  static TraceRecorder& Global();

  // Enables recording. `path` is where Flush()/the exit hook writes the JSON
  // ("" = Start records but only DumpJson() retrieves it). Idempotent while
  // already started. `ring_capacity` bounds each thread's buffer; overflow
  // overwrites the oldest events (dropped count is reported in the JSON).
  void Start(const std::string& path, size_t ring_capacity = kDefaultRingCapacity);

  // Reads NSF_TRACE; starts when set. Called once from a static initializer
  // so `NSF_TRACE=out.json <any binary>` needs no code changes; also
  // registers an atexit flush.
  void StartFromEnv();

  // Disables recording (in-flight spans finish into the buffers and are
  // retained). Does not flush.
  void Stop();

  // Writes DumpJson() to the Start() path (no-op without one). True on
  // success. Safe to call while other threads record.
  bool Flush();

  // The whole trace as Chrome trace-event JSON:
  //   {"displayTimeUnit":"ms","traceEvents":[...]}
  // Includes process/thread metadata events; ts/dur are microseconds.
  std::string DumpJson() const;

  // Drops all recorded events and thread registrations of finished threads
  // (live threads keep their lanes). Used by tests.
  void Clear();

  // Names the calling thread's lane in the trace (e.g. "worker-3").
  void SetThreadName(const std::string& name);

  void Record(TraceEvent event);

  bool started() const { return TraceEnabled(); }
  const std::string& path() const { return path_; }
  uint64_t dropped() const;
  uint64_t recorded() const;

  // Nanoseconds since the recorder's epoch (trace start). Monotonic.
  static uint64_t NowNs();

  static constexpr size_t kDefaultRingCapacity = 1 << 16;

 private:
  struct ThreadBuffer {
    std::mutex mu;
    uint32_t tid = 0;
    std::string name;
    std::vector<TraceEvent> ring;  // capacity-bounded, oldest overwritten
    size_t next = 0;               // ring write cursor
    uint64_t recorded = 0;         // total Record() calls (>= ring occupancy)
  };

  TraceRecorder() = default;
  ThreadBuffer* BufferForThisThread();

  mutable std::mutex mu_;  // guards buffers_ registration + path/capacity
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
  std::string path_;
  size_t ring_capacity_ = kDefaultRingCapacity;
  uint32_t next_tid_ = 1;
};

// RAII scoped span. Inactive (and free) unless the recorder is enabled at
// construction time. The name is captured as const char* for the common
// static-literal case; dynamic detail belongs in args:
//
//   telemetry::Span span("compile", "engine");
//   span.arg("workload", spec.name);   // no-op when inactive
class Span {
 public:
  explicit Span(const char* name, const char* cat = "engine") {
    if (TraceEnabled()) {
      Begin(name, cat);
    }
  }
  ~Span() {
    if (impl_ != nullptr) {
      End();
    }
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  bool active() const { return impl_ != nullptr; }

  void arg(const char* key, const std::string& value);
  void arg(const char* key, const char* value);
  void arg(const char* key, uint64_t value);
  void arg(const char* key, int value) { arg(key, static_cast<uint64_t>(value)); }
  void arg(const char* key, unsigned value) { arg(key, static_cast<uint64_t>(value)); }
  void arg(const char* key, double value);

 private:
  void Begin(const char* name, const char* cat);
  void End();

  std::unique_ptr<TraceEvent> impl_;  // doubles as the "active" flag
};

}  // namespace telemetry
}  // namespace nsf

#endif  // SRC_TELEMETRY_TRACE_H_
